package iprism

import (
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	road, err := NewStraightRoad(2, 3.5, -100, 500)
	if err != nil {
		t.Fatal(err)
	}
	eval := NewEvaluator(DefaultReachConfig())
	ego := VehicleState{Pos: V(0, 1.75), Speed: 10}
	lead := NewVehicleActor(1, VehicleState{Pos: V(14, 1.75), Speed: 2})
	res := eval.EvaluateWithPrediction(road, ego, []*Actor{lead})
	if res.Combined <= 0 {
		t.Errorf("combined STI = %v, want > 0", res.Combined)
	}
	if len(res.PerActor) != 1 || res.PerActor[0] <= 0 {
		t.Errorf("per-actor STI = %v", res.PerActor)
	}
}

func TestFacadeScenarioGeneration(t *testing.T) {
	scns := GenerateScenarios(GhostCutIn, 5, 1)
	if len(scns) != 5 {
		t.Fatalf("scenarios = %d", len(scns))
	}
	w, err := scns[0].Build()
	if err != nil {
		t.Fatal(err)
	}
	if w.Ego == nil {
		t.Fatal("no ego in built world")
	}
}

func TestFacadePrediction(t *testing.T) {
	a := NewVehicleActor(1, VehicleState{Speed: 10})
	tr := PredictCVTR(a, 6, 0.5)
	if tr.Len() != 7 {
		t.Errorf("trajectory length = %d", tr.Len())
	}
	p := NewPedestrianActor(2, VehicleState{Speed: 1.4})
	if p.Width != 0.6 {
		t.Errorf("pedestrian width = %v", p.Width)
	}
}

func TestFacadeMetrics(t *testing.T) {
	road, _ := NewStraightRoad(2, 3.5, -100, 500)
	lead := NewVehicleActor(1, VehicleState{Pos: V(30, 1.75), Speed: 5})
	s := MetricScene{
		Map:       road,
		Ego:       VehicleState{Pos: V(0, 1.75), Speed: 10},
		EgoParams: DefaultVehicleParams(),
		Actors:    []*Actor{lead},
		Trajs:     []Trajectory{PredictCVTR(lead, 30, 0.1)},
		Horizon:   3,
		Dt:        0.1,
	}
	if ttc := TTC(s); ttc <= 0 || ttc > 10 {
		t.Errorf("TTC = %v", ttc)
	}
	if d := DistCIPA(s); d <= 0 || d > 30 {
		t.Errorf("DistCIPA = %v", d)
	}
}
