package iprism

import (
	"repro/internal/monitor"
)

// RiskSample is one instant of online risk assessment.
type RiskSample = monitor.Sample

// RiskMonitor wraps any Driver and records STI / TTC / Dist. CIPA while
// the ADS drives — the online risk-assessment use case of §V-A/V-B. The
// monitor is passive: it never modifies the ADS control. It is safe for
// concurrent use; the scoring service (internal/server) shares the same
// implementation for its session API.
type RiskMonitor = monitor.Monitor

// NewRiskMonitor builds a monitor that samples every stride simulator
// steps (minimum 1).
func NewRiskMonitor(cfg ReachConfig, stride int) (*RiskMonitor, error) {
	return monitor.New(cfg, stride)
}
