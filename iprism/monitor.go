package iprism

import (
	"math"

	"repro/internal/actor"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sti"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// telRecordSeconds times one monitor sample (STI + TTC + Dist. CIPA) — the
// per-tick cost of the online risk assessor of §V-A/V-B.
var telRecordSeconds = telemetry.NewHistogram("monitor.record.seconds", telemetry.LatencyBuckets())

// RiskSample is one instant of online risk assessment.
type RiskSample struct {
	Time     float64
	STI      float64 // combined STI, [0, 1]
	TTC      float64 // seconds; +Inf when no in-path closing actor
	DistCIPA float64 // metres; +Inf when no in-path actor
	// MostThreatening is the ID of the highest-STI actor, or -1.
	MostThreatening int
}

// RiskMonitor wraps any Driver and records STI / TTC / Dist. CIPA while
// the ADS drives — the online risk-assessment use case of §V-A/V-B. The
// monitor is passive: it never modifies the ADS control.
type RiskMonitor struct {
	eval   *sti.Evaluator
	stride int

	samples []RiskSample
}

// NewRiskMonitor builds a monitor that samples every stride simulator
// steps (minimum 1).
func NewRiskMonitor(cfg ReachConfig, stride int) (*RiskMonitor, error) {
	eval, err := sti.NewEvaluator(cfg)
	if err != nil {
		return nil, err
	}
	if stride < 1 {
		stride = 1
	}
	return &RiskMonitor{eval: eval, stride: stride}, nil
}

// Samples returns a copy of the recorded trace; callers may mutate it
// freely without corrupting the monitor's history.
func (m *RiskMonitor) Samples() []RiskSample {
	out := make([]RiskSample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Reset clears the recorded trace.
func (m *RiskMonitor) Reset() { m.samples = nil }

// PeakSTI returns the maximum recorded combined STI. NaN samples are
// skipped, matching RiskyIntervals.
func (m *RiskMonitor) PeakSTI() float64 {
	peak := 0.0
	for _, s := range m.samples {
		if !math.IsNaN(s.STI) && s.STI > peak {
			peak = s.STI
		}
	}
	return peak
}

// Telemetry returns a snapshot of the process-wide telemetry registry —
// the risk-assessment counters and latency histograms accumulated so far
// (all zero unless EnableTelemetry has been called). See DESIGN.md
// "Observability" for the metric index.
func (m *RiskMonitor) Telemetry() TelemetrySnapshot {
	return telemetry.Default().Snapshot()
}

// Wrap returns a Driver that delegates to inner while recording risk.
func (m *RiskMonitor) Wrap(inner Driver) Driver {
	return &monitoredDriver{inner: inner, monitor: m}
}

type monitoredDriver struct {
	inner   Driver
	monitor *RiskMonitor
	steps   int
}

func (d *monitoredDriver) Reset() {
	d.inner.Reset()
	d.steps = 0
}

func (d *monitoredDriver) Act(obs sim.Observation) vehicle.Control {
	if d.steps%d.monitor.stride == 0 {
		d.monitor.record(obs)
	}
	d.steps++
	return d.inner.Act(obs)
}

func (m *RiskMonitor) record(obs sim.Observation) {
	defer telRecordSeconds.Start().Stop()
	cfg := m.eval.Config()
	res := m.eval.EvaluateWithPrediction(obs.Map, obs.Ego, obs.Actors)
	steps := cfg.NumSlices()
	scene := metrics.Scene{
		Map:       obs.Map,
		Ego:       obs.Ego,
		EgoParams: obs.EgoParams,
		Actors:    obs.Actors,
		Trajs:     actor.PredictAll(obs.Actors, steps, cfg.SliceDt),
		Horizon:   cfg.Horizon,
		Dt:        cfg.SliceDt,
	}
	idx, _ := res.MostThreatening()
	id := -1
	if idx >= 0 {
		id = obs.Actors[idx].ID
	}
	m.samples = append(m.samples, RiskSample{
		Time:            obs.Time,
		STI:             res.Combined,
		TTC:             metrics.TTC(scene),
		DistCIPA:        metrics.DistCIPA(scene),
		MostThreatening: id,
	})
}

// RiskyIntervals returns the [start, end) time intervals during which the
// recorded STI exceeded the threshold.
func (m *RiskMonitor) RiskyIntervals(threshold float64) [][2]float64 {
	var out [][2]float64
	open := false
	start := 0.0
	for _, s := range m.samples {
		risky := s.STI > threshold && !math.IsNaN(s.STI)
		switch {
		case risky && !open:
			open, start = true, s.Time
		case !risky && open:
			open = false
			out = append(out, [2]float64{start, s.Time})
		}
	}
	if open && len(m.samples) > 0 {
		out = append(out, [2]float64{start, m.samples[len(m.samples)-1].Time})
	}
	return out
}
