package iprism

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/agent"
)

func TestComputeTubeAndRender(t *testing.T) {
	road, _ := NewStraightRoad(2, 3.5, -50, 300)
	ego := VehicleState{Pos: V(0, 1.75), Speed: 10}
	actors := []*Actor{NewVehicleActor(1, VehicleState{Pos: V(15, 1.75), Speed: 2})}

	cfg := DefaultReachConfig()
	cfg.RecordPoints = true
	tube := ComputeTube(road, ego, actors, cfg)
	if tube.Volume <= 0 || len(tube.Points) == 0 {
		t.Fatalf("tube = %+v", tube)
	}

	eval := NewEvaluator(DefaultReachConfig())
	svg := RenderSVG(RenderScene{
		Map: road, Ego: ego, Actors: actors,
		Risk: eval.EvaluateWithPrediction(road, ego, actors),
		Tube: &tube, Title: "facade",
	}, RenderOptions{Window: 60})
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "facade") {
		t.Error("render output malformed")
	}
}

func TestEpisodeTraceRoundTripViaFacade(t *testing.T) {
	scn := GenerateScenarios(LeadSlowdown, 5, 3)[0]
	w, err := scn.Build()
	if err != nil {
		t.Fatal(err)
	}
	out := RunRecordedEpisode(w, agent.NewLBC(agent.DefaultLBCConfig()), nil)
	if len(out.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	path := filepath.Join(t.TempDir(), "ep.jsonl")
	if err := SaveEpisodeTrace(path, out, scn.Dt); err != nil {
		t.Fatal(err)
	}
	header, steps, err := LoadEpisodeTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if header.Steps != out.Steps || len(steps) != len(out.Trace) {
		t.Errorf("round trip mismatch: %+v vs %d steps", header, len(out.Trace))
	}
}

func TestScenarioSuiteRoundTripViaFacade(t *testing.T) {
	scns := GenerateScenarios(RearEnd, 4, 9)
	path := filepath.Join(t.TempDir(), "suite.json")
	if err := SaveScenarioSuite(scns, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScenarioSuite(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 4 || loaded[2].Typology != RearEnd {
		t.Errorf("loaded = %+v", loaded)
	}
}
