package iprism

import (
	"repro/internal/server"
)

// Serving facade: the online risk-scoring service from internal/server.
type (
	// RiskServerConfig tunes the scoring service (pool size, queue depth,
	// request deadlines, micro-batching). The zero value serves with the
	// paper's reach configuration and conservative capacity defaults.
	RiskServerConfig = server.Config
	// RiskServer is a running (or startable) scoring service.
	RiskServer = server.Server
)

// NewRiskServer builds the scoring service without binding a listener; use
// its Handler for in-process embedding or Start/Shutdown to serve.
func NewRiskServer(cfg RiskServerConfig) (*RiskServer, error) { return server.New(cfg) }

// ServeRisk builds the service and listens on addr (":0" picks a port; the
// bound address is available from Addr). Stop it with Shutdown, which
// drains every accepted request before returning.
func ServeRisk(addr string, cfg RiskServerConfig) (*RiskServer, error) {
	s, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	return s, nil
}
