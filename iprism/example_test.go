package iprism_test

import (
	"fmt"

	"repro/iprism"
)

// Compute the Safety-Threat Indicator for a scene with a slow lead and an
// alongside vehicle: the alongside vehicle never crosses the ego's path,
// yet it removes escape routes and carries nonzero risk.
func Example() {
	road, _ := iprism.NewStraightRoad(2, 3.5, -100, 500)
	ego := iprism.VehicleState{Pos: iprism.V(0, 1.75), Speed: 10}
	actors := []*iprism.Actor{
		iprism.NewVehicleActor(1, iprism.VehicleState{Pos: iprism.V(14, 1.75), Speed: 2}),
		iprism.NewVehicleActor(2, iprism.VehicleState{Pos: iprism.V(2, 5.25), Speed: 10}),
	}

	eval := iprism.NewEvaluator(iprism.DefaultReachConfig())
	res := eval.EvaluateWithPrediction(road, ego, actors)

	fmt.Println("lead risky:", res.PerActor[0] > 0)
	fmt.Println("alongside risky:", res.PerActor[1] > 0)
	fmt.Println("combined dominates:", res.Combined >= res.PerActor[0])
	// Output:
	// lead risky: true
	// alongside risky: true
	// combined dominates: true
}

// Rank the actors in a scene by threat and extract the risk envelope.
func ExampleResult_rank() {
	road, _ := iprism.NewStraightRoad(2, 3.5, -100, 500)
	ego := iprism.VehicleState{Pos: iprism.V(0, 1.75), Speed: 10}
	actors := []*iprism.Actor{
		iprism.NewVehicleActor(1, iprism.VehicleState{Pos: iprism.V(200, 5.25), Speed: 10}), // far away
		iprism.NewVehicleActor(2, iprism.VehicleState{Pos: iprism.V(12, 1.75), Speed: 0}),   // blocking
	}
	eval := iprism.NewEvaluator(iprism.DefaultReachConfig())
	res := eval.EvaluateWithPrediction(road, ego, actors)

	idx, _ := res.MostThreatening()
	fmt.Println("most threatening actor ID:", actors[idx].ID)
	fmt.Println("envelope size:", len(res.RiskEnvelope(0.9)))
	// Output:
	// most threatening actor ID: 2
	// envelope size: 1
}

// Generate scenarios from an NHTSA typology and inspect their
// hyperparameters.
func ExampleGenerateScenarios() {
	scns := iprism.GenerateScenarios(iprism.GhostCutIn, 3, 42)
	fmt.Println("instances:", len(scns))
	fmt.Println("typology:", scns[0].Typology)
	_, hasSpeed := scns[0].Hyper["speed_lane_change"]
	fmt.Println("has cut-in speed:", hasSpeed)
	// Output:
	// instances: 3
	// typology: ghost cut-in
	// has cut-in speed: true
}
