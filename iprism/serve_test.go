package iprism_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/iprism"
)

func TestServeRiskScoresOverHTTP(t *testing.T) {
	s, err := iprism.ServeRisk("127.0.0.1:0", iprism.RiskServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	road, err := iprism.NewStraightRoad(2, 3.5, -100, 400)
	if err != nil {
		t.Fatal(err)
	}
	ego := iprism.VehicleState{Pos: iprism.V(0, 1.75), Speed: 10}
	actors := []*iprism.Actor{
		iprism.NewVehicleActor(1, iprism.VehicleState{Pos: iprism.V(14, 1.75), Speed: 3}),
	}
	sc, err := iprism.NewScene(road, ego, actors, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := iprism.EncodeScene(sc)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post("http://"+s.Addr()+"/v1/score", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Combined float64 `json:"combined_sti"`
		Actors   []struct {
			ID  int     `json:"id"`
			STI float64 `json:"sti"`
		} `json:"actors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Actors) != 1 || out.Actors[0].ID != 1 {
		t.Fatalf("actors = %+v", out.Actors)
	}
	if out.Actors[0].STI <= 0 {
		t.Errorf("slow lead STI = %v, want > 0", out.Actors[0].STI)
	}
}
