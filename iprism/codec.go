package iprism

import (
	"repro/internal/scene"
)

// Versioned scene wire format. Scenes are the request unit of the scoring
// service (cmd/iprism-serve), the load generator and dataset tooling; every
// document carries SceneVersion and decoding rejects unknown versions. See
// DESIGN.md "Serving" for the full schema.
type (
	// Scene is one scoring request: road geometry, ego state, actors.
	Scene = scene.Scene
	// SceneState is a kinematic vehicle state on the wire.
	SceneState = scene.State
	// SceneActor is a road user on the wire, optionally carrying the
	// client's own predicted trajectory.
	SceneActor = scene.Actor
	// SceneRoad is the tagged union of supported road geometries.
	SceneRoad = scene.Road
)

// SceneVersion is the wire-format identifier this build speaks.
const SceneVersion = scene.Version

// EncodeScene marshals a scene, stamping the current SceneVersion.
func EncodeScene(s Scene) ([]byte, error) { return scene.Encode(s) }

// DecodeScene unmarshals and validates one scene document, rejecting
// missing or unsupported versions.
func DecodeScene(data []byte) (Scene, error) { return scene.Decode(data) }

// NewScene builds a wire scene from library types at time t. Supported map
// families are StraightRoad and RingRoad.
func NewScene(m Map, ego VehicleState, actors []*Actor, t float64) (Scene, error) {
	return scene.FromParts(m, ego, actors, t)
}

// MaterializeScene converts a wire scene back into library types. trajs[i]
// is non-zero only for actors that carried an explicit trajectory; hasTrajs
// reports whether any did.
func MaterializeScene(s Scene) (m Map, ego VehicleState, actors []*Actor, trajs []Trajectory, hasTrajs bool, err error) {
	return s.Materialize()
}
