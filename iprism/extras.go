package iprism

import (
	"repro/internal/reach"
	"repro/internal/render"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// RenderScene is a Fig. 7-style SVG frame description.
type RenderScene = render.Scene

// RenderOptions control SVG rendering.
type RenderOptions = render.Options

// RenderSVG draws a scene (road, reach-tube, STI-coloured actors) as SVG.
func RenderSVG(s RenderScene, opt RenderOptions) string { return render.SVG(s, opt) }

// ComputeTube runs Algorithm 1 directly, returning the ego's reach-tube
// against the given actors (CVTR-predicted). Set cfg.RecordPoints to use
// the result with RenderSVG.
func ComputeTube(m Map, ego VehicleState, actors []*Actor, cfg ReachConfig) reach.Tube {
	trajs := make([]Trajectory, len(actors))
	for i, a := range actors {
		trajs[i] = PredictCVTR(a, cfg.NumSlices(), cfg.SliceDt)
	}
	obs := reach.BuildObstacles(actors, trajs, cfg)
	return reach.Compute(m, obs.Collide(), ego, cfg)
}

// SaveEpisodeTrace writes a recorded episode to a JSON-Lines file.
func SaveEpisodeTrace(path string, out Outcome, dt float64) error {
	return sim.SaveTrace(path, out, dt)
}

// LoadEpisodeTrace reads a trace written by SaveEpisodeTrace.
func LoadEpisodeTrace(path string) (sim.TraceHeader, []sim.StepRecord, error) {
	return sim.LoadTrace(path)
}

// RunRecordedEpisode is RunEpisode with step-by-step trace recording.
func RunRecordedEpisode(w *World, driver Driver, mit Mitigator) Outcome {
	return sim.Run(w, driver, mit, sim.RunConfig{RecordTrace: true})
}

// SaveScenarioSuite exports scenario instances as JSON (the equivalent of
// the paper's published 4810-scenario benchmark artefact).
func SaveScenarioSuite(scns []Scenario, path string) error {
	return scenario.SaveSuite(scns, path)
}

// LoadScenarioSuite imports a suite written by SaveScenarioSuite.
func LoadScenarioSuite(path string) ([]Scenario, error) {
	return scenario.LoadSuite(path)
}
