// Package iprism is the public facade of the iPrism reproduction: risk
// assessment with the Safety-Threat Indicator (STI) and risk mitigation
// with the RL-based Safety-hazard Mitigation Controller (SMC), as described
// in "iPrism: Characterize and Mitigate Risk by Quantifying Change in
// Escape Routes" (DSN 2024).
//
// Typical use:
//
//	eval := iprism.NewEvaluator(iprism.DefaultReachConfig())
//	res := eval.EvaluateWithPrediction(roadMap, egoState, actors)
//	fmt.Println(res.Combined, res.PerActor)
//
// and, for closed-loop mitigation on top of any ADS driver:
//
//	ctrl, _, err := iprism.TrainSMC(trainScenarios, makeDriver, iprism.DefaultSMCConfig(), episodes)
//	outcome := iprism.RunEpisode(world, driver, ctrl)
package iprism

import (
	"context"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/sti"
	"repro/internal/vehicle"
)

// Core geometry and dynamics types.
type (
	// Vec2 is a 2-D point or displacement in metres.
	Vec2 = geom.Vec2
	// VehicleState is the kinematic bicycle-model state [x, y, θ, v].
	VehicleState = vehicle.State
	// VehicleParams describes a vehicle's physical limits and footprint.
	VehicleParams = vehicle.Params
	// Actor is a road user other than (or including) the ego vehicle.
	Actor = actor.Actor
	// Trajectory is a time-ordered state sequence X_{t:t+k}.
	Trajectory = actor.Trajectory
	// Map is a drivable-area model 𝓜.
	Map = roadmap.Map
	// StraightRoad is a straight multi-lane road.
	StraightRoad = roadmap.StraightRoad
	// RingRoad is the roundabout map family.
	RingRoad = roadmap.RingRoad
)

// Risk assessment types.
type (
	// ReachConfig parameterises the reach-tube computation (Algorithm 1).
	ReachConfig = reach.Config
	// Evaluator computes STI (Eqs. 4–5).
	Evaluator = sti.Evaluator
	// EvaluatorOptions tunes the evaluator: the per-actor counterfactual
	// fan-out width, and SharedExpansion, which derives every
	// counterfactual tube from one masked expansion (bitwise-identical
	// results, ~O(1) in actor count instead of O(N)).
	EvaluatorOptions = sti.Options
	// Result holds per-actor and combined STI for one instant.
	Result = sti.Result
)

// Mitigation types.
type (
	// SMC is the trained Safety-hazard Mitigation Controller.
	SMC = smc.SMC
	// SMCConfig parameterises SMC features, reward (Eq. 8) and training.
	SMCConfig = smc.Config
	// Scenario is a safety-critical scenario instance (§IV-B1).
	Scenario = scenario.Scenario
	// Typology is an NHTSA-derived scenario family.
	Typology = scenario.Typology
	// World is the simulation state.
	World = sim.World
	// Driver is an autonomous driving system under test.
	Driver = sim.Driver
	// Mitigator is a safety controller layered over a Driver.
	Mitigator = sim.Mitigator
	// Outcome summarises an episode.
	Outcome = sim.Outcome
)

// Baseline risk-metric types (§IV-C).
type (
	// MetricScene is the common input to TTC / Dist. CIPA / PKL.
	MetricScene = metrics.Scene
	// PKLModel is the learned planner-KL-divergence cost model.
	PKLModel = metrics.PKLModel
)

// V constructs a Vec2.
func V(x, y float64) Vec2 { return geom.V(x, y) }

// DefaultReachConfig returns the paper's reach-tube configuration:
// k = 3 s horizon, Δt = 0.5 s slices, boundary-control enumeration.
func DefaultReachConfig() ReachConfig { return reach.DefaultConfig() }

// DefaultVehicleParams returns the sedan parameters used throughout the
// evaluation.
func DefaultVehicleParams() VehicleParams { return vehicle.DefaultParams() }

// NewEvaluator constructs an STI evaluator; it panics on an invalid
// configuration (use sti.NewEvaluator via the internal packages for error
// returns). Per-actor counterfactuals fan out over GOMAXPROCS workers by
// default; use NewEvaluatorWithOptions to bound or disable the fan-out.
func NewEvaluator(cfg ReachConfig) *Evaluator { return sti.MustNewEvaluator(cfg) }

// NewEvaluatorWithOptions constructs an STI evaluator with explicit
// options. Evaluation results are identical at any worker count and with
// SharedExpansion on or off; the shared-expansion engine only changes how
// fast dense scenes evaluate.
func NewEvaluatorWithOptions(cfg ReachConfig, opts EvaluatorOptions) (*Evaluator, error) {
	return sti.NewEvaluatorOptions(cfg, opts)
}

// NewVehicleActor creates a standard-sized vehicle actor.
func NewVehicleActor(id int, state VehicleState) *Actor { return actor.NewVehicle(id, state) }

// NewPedestrianActor creates a pedestrian actor.
func NewPedestrianActor(id int, state VehicleState) *Actor { return actor.NewPedestrian(id, state) }

// PredictCVTR forecasts an actor's trajectory with the constant-velocity-
// and-turn-rate model used online by the SMC (§IV-C).
func PredictCVTR(a *Actor, steps int, dt float64) Trajectory {
	return actor.PredictCVTR(a, steps, dt)
}

// NewStraightRoad constructs a straight multi-lane road map.
func NewStraightRoad(lanes int, laneWidth, xMin, xMax float64) (*StraightRoad, error) {
	return roadmap.NewStraightRoad(lanes, laneWidth, xMin, xMax)
}

// DefaultSMCConfig returns the SMC configuration used in the evaluation
// (brake/accelerate actions, STI-dominated Eq. 8 reward).
func DefaultSMCConfig() SMCConfig { return smc.DefaultConfig() }

// TrainSMC learns the mitigation policy ψ* on the given scenarios with the
// supplied ADS in the loop.
func TrainSMC(scns []Scenario, makeDriver func() Driver, cfg SMCConfig, episodes int) (*SMC, smc.TrainResult, error) {
	return smc.Train(scns, makeDriver, cfg, episodes)
}

// TrainSMCContext is TrainSMC with cancellation and checkpoint/resume:
// training stops at the next episode boundary when ctx is cancelled,
// returning the partial result (and a final checkpoint when opts configures
// one). cfg.EpisodeWorkers > 1 runs the pipelined parallel trainer.
func TrainSMCContext(ctx context.Context, scns []Scenario, makeDriver func() Driver, cfg SMCConfig, episodes int, opts smc.TrainOptions) (*SMC, smc.TrainResult, error) {
	return smc.TrainContext(ctx, scns, makeDriver, cfg, episodes, opts)
}

// GenerateScenarios samples n instances of an NHTSA typology (§IV-B1) under
// a deterministic seed, validity-filtered where the typology requires it.
func GenerateScenarios(ty Typology, n int, seed int64) []Scenario {
	return scenario.GenerateValid(ty, n, seed)
}

// RunEpisode drives one scenario episode with an optional mitigator.
func RunEpisode(w *World, driver Driver, mit Mitigator) Outcome {
	return sim.Run(w, driver, mit, sim.RunConfig{})
}

// Scenario typology re-exports.
const (
	GhostCutIn      = scenario.GhostCutIn
	LeadCutIn       = scenario.LeadCutIn
	LeadSlowdown    = scenario.LeadSlowdown
	FrontAccident   = scenario.FrontAccident
	RearEnd         = scenario.RearEnd
	RoundaboutCutIn = scenario.RoundaboutCutIn
)

// TTC returns the minimum time-to-collision over in-path actors.
func TTC(s MetricScene) float64 { return metrics.TTC(s) }

// DistCIPA returns the distance to the closest in-path actor.
func DistCIPA(s MetricScene) float64 { return metrics.DistCIPA(s) }
