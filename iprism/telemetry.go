package iprism

import "repro/internal/telemetry"

// Observability facade. The instrumented hot paths (STI evaluation,
// reach-tube computation, the simulator step loop, SMC training) collect
// nothing until EnableTelemetry is called, so library users pay no
// overhead by default. See DESIGN.md "Observability" for the metric index
// and the journal schema.

// Telemetry types.
type (
	// TelemetrySnapshot is a JSON-serialisable copy of every metric
	// (counters, gauges, histogram percentiles) at one instant.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryServer is a running expvar+pprof HTTP endpoint.
	TelemetryServer = telemetry.Server
	// TelemetryJournal is a JSONL event journal for episode/training events.
	TelemetryJournal = telemetry.Journal
)

// EnableTelemetry turns on metric collection globally.
func EnableTelemetry() { telemetry.Enable() }

// DisableTelemetry turns off metric collection globally.
func DisableTelemetry() { telemetry.Disable() }

// TelemetrySnapshotNow captures the current process-wide metric snapshot.
func TelemetrySnapshotNow() TelemetrySnapshot { return telemetry.Default().Snapshot() }

// ServeTelemetry starts an HTTP server on addr exposing /debug/vars
// (expvar, including the "iprism" metric snapshot), /debug/telemetry, and
// /debug/pprof/*. It does not implicitly call EnableTelemetry.
func ServeTelemetry(addr string) (*TelemetryServer, error) { return telemetry.Serve(addr) }

// OpenTelemetryJournal creates a JSONL journal at path and installs it as
// the process-wide event sink (SMC training episodes, suite progress).
// Close the returned journal to flush it; closing does not detach it —
// pass nil to SetTelemetryJournal for that.
func OpenTelemetryJournal(path string) (*TelemetryJournal, error) {
	j, err := telemetry.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	telemetry.SetJournal(j)
	return j, nil
}

// SetTelemetryJournal installs (or, with nil, detaches) the process-wide
// event journal.
func SetTelemetryJournal(j *TelemetryJournal) { telemetry.SetJournal(j) }
