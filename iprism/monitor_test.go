package iprism

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/sim"
)

// White-box trace tests (Reset/copy semantics/NaN handling/intervals) live
// with the implementation in internal/monitor; the tests here exercise the
// facade against a real closed-loop episode.

func TestRiskMonitorRecordsTrace(t *testing.T) {
	scns := GenerateScenarios(LeadSlowdown, 10, 5)
	scn := scns[0]
	w, err := scn.Build()
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewRiskMonitor(DefaultReachConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	driver := mon.Wrap(agent.NewLBC(agent.DefaultLBCConfig()))
	out := sim.Run(w, driver, nil, sim.RunConfig{MaxSteps: scn.MaxSteps})

	samples := mon.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	wantSamples := (out.Steps + 4) / 5
	if len(samples) != wantSamples {
		t.Errorf("samples = %d, want %d (stride 5 over %d steps)", len(samples), wantSamples, out.Steps)
	}
	for _, s := range samples {
		if s.STI < 0 || s.STI > 1 {
			t.Fatalf("STI out of range: %v", s.STI)
		}
		if s.TTC < 0 {
			t.Fatalf("TTC negative: %v", s.TTC)
		}
	}
	// The lead-slowdown scenario has a lead in range: the most threatening
	// actor should eventually be identified.
	found := false
	for _, s := range samples {
		if s.MostThreatening == 1 {
			found = true
		}
	}
	if !found {
		t.Error("lead never identified as most threatening")
	}
	if mon.PeakSTI() <= 0 {
		t.Errorf("peak STI = %v, want > 0", mon.PeakSTI())
	}
}

func TestRiskMonitorTelemetrySnapshot(t *testing.T) {
	EnableTelemetry()
	t.Cleanup(DisableTelemetry)
	mon := &RiskMonitor{}
	snap := mon.Telemetry()
	if snap.Counters == nil || snap.Histograms == nil {
		t.Fatalf("snapshot maps not populated: %+v", snap)
	}
	// The instrumented metrics register at package init, so the snapshot
	// must already list the monitor's latency histogram.
	if _, ok := snap.Histograms["monitor.record.seconds"]; !ok {
		t.Error("monitor.record.seconds missing from snapshot")
	}
}

func TestRiskMonitorInvalidConfig(t *testing.T) {
	cfg := DefaultReachConfig()
	cfg.Horizon = -1
	if _, err := NewRiskMonitor(cfg, 1); err == nil {
		t.Error("invalid config accepted")
	}
}
