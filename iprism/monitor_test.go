package iprism

import (
	"math"
	"testing"

	"repro/internal/agent"
	"repro/internal/sim"
)

func TestRiskMonitorRecordsTrace(t *testing.T) {
	scns := GenerateScenarios(LeadSlowdown, 10, 5)
	scn := scns[0]
	w, err := scn.Build()
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewRiskMonitor(DefaultReachConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	driver := mon.Wrap(agent.NewLBC(agent.DefaultLBCConfig()))
	out := sim.Run(w, driver, nil, sim.RunConfig{MaxSteps: scn.MaxSteps})

	samples := mon.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	wantSamples := (out.Steps + 4) / 5
	if len(samples) != wantSamples {
		t.Errorf("samples = %d, want %d (stride 5 over %d steps)", len(samples), wantSamples, out.Steps)
	}
	for _, s := range samples {
		if s.STI < 0 || s.STI > 1 {
			t.Fatalf("STI out of range: %v", s.STI)
		}
		if s.TTC < 0 {
			t.Fatalf("TTC negative: %v", s.TTC)
		}
	}
	// The lead-slowdown scenario has a lead in range: the most threatening
	// actor should eventually be identified.
	found := false
	for _, s := range samples {
		if s.MostThreatening == 1 {
			found = true
		}
	}
	if !found {
		t.Error("lead never identified as most threatening")
	}
	if mon.PeakSTI() <= 0 {
		t.Errorf("peak STI = %v, want > 0", mon.PeakSTI())
	}
}

func TestRiskMonitorReset(t *testing.T) {
	mon, err := NewRiskMonitor(DefaultReachConfig(), 0) // stride floors to 1
	if err != nil {
		t.Fatal(err)
	}
	mon.samples = []RiskSample{{Time: 1}}
	mon.Reset()
	if len(mon.Samples()) != 0 {
		t.Error("Reset did not clear samples")
	}
	if mon.PeakSTI() != 0 {
		t.Error("peak of empty trace should be 0")
	}
}

func TestSamplesReturnsCopy(t *testing.T) {
	mon := &RiskMonitor{}
	mon.samples = []RiskSample{{Time: 1, STI: 0.5}, {Time: 2, STI: 0.7}}
	got := mon.Samples()
	got[0].STI = 99 // must not corrupt the monitor's trace
	got[1].Time = -1
	if mon.samples[0].STI != 0.5 || mon.samples[1].Time != 2 {
		t.Errorf("mutating the returned slice corrupted the trace: %+v", mon.samples)
	}
	// Appending to the copy must not leak into the monitor either.
	_ = append(got, RiskSample{Time: 3})
	if len(mon.samples) != 2 {
		t.Errorf("append to copy grew the trace: %d samples", len(mon.samples))
	}
}

func TestPeakSTISkipsNaN(t *testing.T) {
	mon := &RiskMonitor{}
	mon.samples = []RiskSample{
		{Time: 0, STI: 0.3},
		{Time: 1, STI: math.NaN()},
		{Time: 2, STI: 0.4},
	}
	if got := mon.PeakSTI(); got != 0.4 {
		t.Errorf("PeakSTI = %v, want 0.4 (NaN skipped)", got)
	}
	mon.samples = []RiskSample{{Time: 0, STI: math.NaN()}}
	if got := mon.PeakSTI(); got != 0 {
		t.Errorf("PeakSTI of all-NaN trace = %v, want 0", got)
	}
}

func TestRiskMonitorTelemetrySnapshot(t *testing.T) {
	EnableTelemetry()
	t.Cleanup(DisableTelemetry)
	mon := &RiskMonitor{}
	snap := mon.Telemetry()
	if snap.Counters == nil || snap.Histograms == nil {
		t.Fatalf("snapshot maps not populated: %+v", snap)
	}
	// The instrumented metrics register at package init, so the snapshot
	// must already list the monitor's latency histogram.
	if _, ok := snap.Histograms["monitor.record.seconds"]; !ok {
		t.Error("monitor.record.seconds missing from snapshot")
	}
}

func TestRiskMonitorInvalidConfig(t *testing.T) {
	cfg := DefaultReachConfig()
	cfg.Horizon = -1
	if _, err := NewRiskMonitor(cfg, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRiskyIntervals(t *testing.T) {
	mon := &RiskMonitor{}
	mon.samples = []RiskSample{
		{Time: 0, STI: 0},
		{Time: 1, STI: 0.4},
		{Time: 2, STI: 0.5},
		{Time: 3, STI: 0},
		{Time: 4, STI: 0.6},
	}
	got := mon.RiskyIntervals(0.3)
	if len(got) != 2 {
		t.Fatalf("intervals = %v", got)
	}
	if got[0] != [2]float64{1, 3} {
		t.Errorf("first interval = %v", got[0])
	}
	if got[1] != [2]float64{4, 4} {
		t.Errorf("open-ended interval = %v", got[1])
	}
	if got := mon.RiskyIntervals(math.Inf(1)); len(got) != 0 {
		t.Errorf("no interval should exceed +Inf: %v", got)
	}
}
