package geom

import "sort"

// Polygon is a simple polygon described by its vertices in order.
type Polygon []Vec2

// Area returns the unsigned area of the polygon (shoelace formula).
func (p Polygon) Area() float64 {
	if len(p) < 3 {
		return 0
	}
	sum := 0.0
	for i := range p {
		j := (i + 1) % len(p)
		sum += p[i].Cross(p[j])
	}
	if sum < 0 {
		sum = -sum
	}
	return sum / 2
}

// ContainsPoint reports whether pt is inside the polygon using the winding
// ray-crossing test. Points exactly on an edge may be reported either way.
func (p Polygon) ContainsPoint(pt Vec2) bool {
	inside := false
	n := len(p)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		pi, pj := p[i], p[j]
		if (pi.Y > pt.Y) != (pj.Y > pt.Y) {
			xCross := (pj.X-pi.X)*(pt.Y-pi.Y)/(pj.Y-pi.Y) + pi.X
			if pt.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// Centroid returns the arithmetic mean of the polygon's vertices.
func (p Polygon) Centroid() Vec2 {
	var c Vec2
	if len(p) == 0 {
		return c
	}
	for _, v := range p {
		c = c.Add(v)
	}
	return c.Scale(1 / float64(len(p)))
}

// ConvexHull returns the convex hull of the given points in counter-clockwise
// order (Andrew's monotone chain). The input is not modified.
func ConvexHull(points []Vec2) Polygon {
	if len(points) < 3 {
		out := make(Polygon, len(points))
		copy(out, points)
		return out
	}
	pts := make([]Vec2, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	var lower, upper []Vec2
	for _, p := range pts {
		for len(lower) >= 2 && lower[len(lower)-1].Sub(lower[len(lower)-2]).Cross(p.Sub(lower[len(lower)-2])) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(pts) - 1; i >= 0; i-- {
		p := pts[i]
		for len(upper) >= 2 && upper[len(upper)-1].Sub(upper[len(upper)-2]).Cross(p.Sub(upper[len(upper)-2])) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return Polygon(hull)
}

// SegmentsIntersect reports whether closed segments [a1,a2] and [b1,b2]
// intersect (including touching endpoints and collinear overlap).
func SegmentsIntersect(a1, a2, b1, b2 Vec2) bool {
	d1 := orient(b1, b2, a1)
	d2 := orient(b1, b2, a2)
	d3 := orient(a1, a2, b1)
	d4 := orient(a1, a2, b2)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return (d1 == 0 && onSegment(b1, b2, a1)) ||
		(d2 == 0 && onSegment(b1, b2, a2)) ||
		(d3 == 0 && onSegment(a1, a2, b1)) ||
		(d4 == 0 && onSegment(a1, a2, b2))
}

func orient(a, b, c Vec2) float64 { return b.Sub(a).Cross(c.Sub(a)) }

func onSegment(a, b, p Vec2) bool {
	return p.X >= minF(a.X, b.X) && p.X <= maxF(a.X, b.X) &&
		p.Y >= minF(a.Y, b.Y) && p.Y <= maxF(a.Y, b.Y)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
