package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoxCorners(t *testing.T) {
	b := NewBox(V(0, 0), 4, 2, 0)
	cs := b.Corners()
	want := [4]Vec2{{2, 1}, {-2, 1}, {-2, -1}, {2, -1}}
	for i := range cs {
		if !vecAlmostEq(cs[i], want[i], 1e-12) {
			t.Errorf("corner %d = %v, want %v", i, cs[i], want[i])
		}
	}
}

func TestBoxCornersRotated(t *testing.T) {
	b := NewBox(V(1, 1), 2, 2, math.Pi/4)
	cs := b.Corners()
	// A unit-half-extent square rotated 45° has corners sqrt(2) away along
	// the diagonals.
	d := math.Sqrt2
	want := [4]Vec2{{1, 1 + d}, {1 - d, 1}, {1, 1 - d}, {1 + d, 1}}
	for i := range cs {
		if !vecAlmostEq(cs[i], want[i], 1e-9) {
			t.Errorf("corner %d = %v, want %v", i, cs[i], want[i])
		}
	}
}

func TestBoxContainsPoint(t *testing.T) {
	b := NewBox(V(0, 0), 4, 2, 0)
	tests := []struct {
		p    Vec2
		want bool
	}{
		{V(0, 0), true},
		{V(1.9, 0.9), true},
		{V(2.1, 0), false},
		{V(0, 1.1), false},
		{V(-2, -1), true}, // on boundary
	}
	for _, tt := range tests {
		if got := b.ContainsPoint(tt.p); got != tt.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestBoxIntersects(t *testing.T) {
	tests := []struct {
		name string
		a, b Box
		want bool
	}{
		{
			name: "identical",
			a:    NewBox(V(0, 0), 4, 2, 0),
			b:    NewBox(V(0, 0), 4, 2, 0),
			want: true,
		},
		{
			name: "separated along x",
			a:    NewBox(V(0, 0), 4, 2, 0),
			b:    NewBox(V(10, 0), 4, 2, 0),
			want: false,
		},
		{
			name: "overlapping offset",
			a:    NewBox(V(0, 0), 4, 2, 0),
			b:    NewBox(V(3, 0.5), 4, 2, 0),
			want: true,
		},
		{
			name: "rotated diamond overlapping corner gap",
			a:    NewBox(V(0, 0), 2, 2, 0),
			// A box whose corner nearly touches but axis test separates.
			b:    NewBox(V(2.2, 2.2), 2, 2, math.Pi/4),
			want: false,
		},
		{
			name: "rotated overlapping",
			a:    NewBox(V(0, 0), 4, 2, 0),
			b:    NewBox(V(2, 1), 4, 2, math.Pi/3),
			want: true,
		},
		{
			name: "thin crossing boxes",
			a:    NewBox(V(0, 0), 10, 0.5, 0),
			b:    NewBox(V(0, 0), 10, 0.5, math.Pi/2),
			want: true,
		},
		{
			name: "parallel lanes no overlap",
			a:    NewBox(V(0, 0), 4.7, 2, 0),
			b:    NewBox(V(0, 3.5), 4.7, 2, 0),
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			// Intersection must be symmetric.
			if got := tt.b.Intersects(tt.a); got != tt.want {
				t.Errorf("Intersects (reversed) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBoxInflate(t *testing.T) {
	b := NewBox(V(0, 0), 4, 2, 0).Inflate(0.5)
	if b.HalfLen != 2.5 || b.HalfWid != 1.5 {
		t.Errorf("Inflate = %+v", b)
	}
	b = NewBox(V(0, 0), 1, 1, 0).Inflate(-2)
	if b.HalfLen != 0 || b.HalfWid != 0 {
		t.Errorf("Inflate floor = %+v", b)
	}
}

func TestBoxAABB(t *testing.T) {
	b := NewBox(V(0, 0), 2, 2, math.Pi/4)
	min, max := b.AABB()
	d := math.Sqrt2
	if !vecAlmostEq(min, V(-d, -d), 1e-9) || !vecAlmostEq(max, V(d, d), 1e-9) {
		t.Errorf("AABB = %v %v", min, max)
	}
}

func TestBoxArea(t *testing.T) {
	if got := NewBox(V(0, 0), 4, 2, 1.2).Area(); !almostEq(got, 8, 1e-12) {
		t.Errorf("Area = %v", got)
	}
}

// Property: if the corners of one box are inside the other, they intersect;
// and disjoint bounding circles imply no intersection. Random fuzzing against
// a point-sampling oracle.
func TestBoxIntersectsAgainstSamplingOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		a := randomBox(rng)
		b := randomBox(rng)
		got := a.Intersects(b)
		oracle := boxOverlapOracle(a, b)
		// The sampling oracle can miss small overlaps, so only assert in the
		// direction it is reliable: oracle says overlap => SAT must agree.
		if oracle && !got {
			t.Fatalf("iter %d: oracle found overlap but Intersects=false\na=%+v\nb=%+v", iter, a, b)
		}
	}
}

func randomBox(rng *rand.Rand) Box {
	return NewBox(
		V(rng.Float64()*10-5, rng.Float64()*10-5),
		0.5+rng.Float64()*5,
		0.5+rng.Float64()*3,
		rng.Float64()*2*math.Pi,
	)
}

// boxOverlapOracle densely samples points of each box and tests containment
// in the other.
func boxOverlapOracle(a, b Box) bool {
	const n = 12
	sample := func(src, dst Box) bool {
		for i := 0; i <= n; i++ {
			for j := 0; j <= n; j++ {
				u := float64(i)/n*2 - 1
				v := float64(j)/n*2 - 1
				ax, ay := src.Axes()
				p := src.Center.Add(ax.Scale(u * src.HalfLen)).Add(ay.Scale(v * src.HalfWid))
				if dst.ContainsPoint(p) {
					return true
				}
			}
		}
		return false
	}
	return sample(a, b) || sample(b, a)
}
