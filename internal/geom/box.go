package geom

import "math"

// Box is an oriented rectangle (OBB): the footprint of a vehicle or other
// physical object. Heading is the direction of the +length axis in radians.
type Box struct {
	Center  Vec2
	HalfLen float64 // half extent along the heading axis
	HalfWid float64 // half extent perpendicular to the heading axis
	Heading float64
}

// NewBox constructs an oriented box from a centre, full length, full width
// and heading.
func NewBox(center Vec2, length, width, heading float64) Box {
	return Box{Center: center, HalfLen: length / 2, HalfWid: width / 2, Heading: heading}
}

// Axes returns the box's local unit axes (longitudinal, lateral).
func (b Box) Axes() (Vec2, Vec2) {
	s, c := math.Sincos(b.Heading)
	return Vec2{c, s}, Vec2{-s, c}
}

// Corners returns the four corners in counter-clockwise order.
func (b Box) Corners() [4]Vec2 {
	ax, ay := b.Axes()
	dl := ax.Scale(b.HalfLen)
	dw := ay.Scale(b.HalfWid)
	return [4]Vec2{
		b.Center.Add(dl).Add(dw),
		b.Center.Sub(dl).Add(dw),
		b.Center.Sub(dl).Sub(dw),
		b.Center.Add(dl).Sub(dw),
	}
}

// ContainsPoint reports whether p lies inside (or on the boundary of) b.
func (b Box) ContainsPoint(p Vec2) bool {
	d := p.Sub(b.Center)
	ax, ay := b.Axes()
	return math.Abs(d.Dot(ax)) <= b.HalfLen+1e-12 && math.Abs(d.Dot(ay)) <= b.HalfWid+1e-12
}

// Area returns the area of the box.
func (b Box) Area() float64 { return 4 * b.HalfLen * b.HalfWid }

// BoundingRadius returns the radius of the circumscribed circle, useful for
// cheap broad-phase rejection before the exact SAT test.
func (b Box) BoundingRadius() float64 { return math.Hypot(b.HalfLen, b.HalfWid) }

// Intersects reports whether two oriented boxes overlap, using the
// separating-axis theorem specialised for rectangles (4 candidate axes).
func (b Box) Intersects(o Box) bool {
	// Broad phase: bounding circles.
	r := b.BoundingRadius() + o.BoundingRadius()
	if b.Center.DistSq(o.Center) > r*r {
		return false
	}
	bx, by := b.Axes()
	ox, oy := o.Axes()
	axes := [4]Vec2{bx, by, ox, oy}
	d := o.Center.Sub(b.Center)
	for _, axis := range axes {
		// Projected half-extents of each box onto axis.
		pb := b.HalfLen*math.Abs(bx.Dot(axis)) + b.HalfWid*math.Abs(by.Dot(axis))
		po := o.HalfLen*math.Abs(ox.Dot(axis)) + o.HalfWid*math.Abs(oy.Dot(axis))
		if math.Abs(d.Dot(axis)) > pb+po {
			return false
		}
	}
	return true
}

// Inflate returns a copy of b grown by margin on every side. A negative
// margin shrinks the box (extents are floored at zero).
func (b Box) Inflate(margin float64) Box {
	b.HalfLen = math.Max(0, b.HalfLen+margin)
	b.HalfWid = math.Max(0, b.HalfWid+margin)
	return b
}

// PreparedBox caches the derived geometry of a Box — unit axes, bounding
// radius, corners and AABB — so repeated intersection and drivability tests
// against the same box skip the per-call trigonometry. The reach-tube hot
// path prepares every obstacle footprint once per evaluation and every ego
// footprint once per sub-step instead of once per pairwise test.
type PreparedBox struct {
	Box      Box
	Ax, Ay   Vec2    // unit axes (longitudinal, lateral)
	Radius   float64 // bounding-circle radius
	Corners  [4]Vec2 // counter-clockwise corners
	Min, Max Vec2    // AABB corners
}

// Prepare computes the cached geometry of b: the values Box.Axes,
// Box.BoundingRadius, Box.Corners and Box.AABB would return (AABB up to the
// sign of zero, which no comparison distinguishes), so tests routed through
// a PreparedBox decide identically.
func (b Box) Prepare() PreparedBox {
	p := PreparedBox{Box: b}
	p.Ax, p.Ay = b.Axes()
	p.Radius = math.Hypot(b.HalfLen, b.HalfWid)
	dl := p.Ax.Scale(b.HalfLen)
	dw := p.Ay.Scale(b.HalfWid)
	p.Corners = [4]Vec2{
		b.Center.Add(dl).Add(dw),
		b.Center.Sub(dl).Add(dw),
		b.Center.Sub(dl).Sub(dw),
		b.Center.Add(dl).Sub(dw),
	}
	p.Min, p.Max = p.Corners[0], p.Corners[0]
	for _, c := range p.Corners[1:] {
		if c.X < p.Min.X {
			p.Min.X = c.X
		}
		if c.Y < p.Min.Y {
			p.Min.Y = c.Y
		}
		if c.X > p.Max.X {
			p.Max.X = c.X
		}
		if c.Y > p.Max.Y {
			p.Max.Y = c.Y
		}
	}
	return p
}

// Intersects reports whether the two prepared boxes overlap. It agrees with
// Box.Intersects on every input: the extra AABB rejection is conservative
// (disjoint AABBs imply disjoint boxes) and the circle and SAT phases use
// the cached values of the exact quantities Box.Intersects recomputes.
func (b *PreparedBox) Intersects(o *PreparedBox) bool {
	if b.Min.X > o.Max.X || o.Min.X > b.Max.X || b.Min.Y > o.Max.Y || o.Min.Y > b.Max.Y {
		return false
	}
	r := b.Radius + o.Radius
	if b.Box.Center.DistSq(o.Box.Center) > r*r {
		return false
	}
	bx, by := b.Ax, b.Ay
	ox, oy := o.Ax, o.Ay
	axes := [4]Vec2{bx, by, ox, oy}
	d := o.Box.Center.Sub(b.Box.Center)
	for _, axis := range axes {
		pb := b.Box.HalfLen*math.Abs(bx.Dot(axis)) + b.Box.HalfWid*math.Abs(by.Dot(axis))
		po := o.Box.HalfLen*math.Abs(ox.Dot(axis)) + o.Box.HalfWid*math.Abs(oy.Dot(axis))
		if math.Abs(d.Dot(axis)) > pb+po {
			return false
		}
	}
	return true
}

// AABB returns the axis-aligned bounding box of b as (min, max) corners.
func (b Box) AABB() (Vec2, Vec2) {
	cs := b.Corners()
	min, max := cs[0], cs[0]
	for _, c := range cs[1:] {
		min.X = math.Min(min.X, c.X)
		min.Y = math.Min(min.Y, c.Y)
		max.X = math.Max(max.X, c.X)
		max.Y = math.Max(max.Y, c.Y)
	}
	return min, max
}
