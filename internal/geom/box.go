package geom

import "math"

// Box is an oriented rectangle (OBB): the footprint of a vehicle or other
// physical object. Heading is the direction of the +length axis in radians.
type Box struct {
	Center  Vec2
	HalfLen float64 // half extent along the heading axis
	HalfWid float64 // half extent perpendicular to the heading axis
	Heading float64
}

// NewBox constructs an oriented box from a centre, full length, full width
// and heading.
func NewBox(center Vec2, length, width, heading float64) Box {
	return Box{Center: center, HalfLen: length / 2, HalfWid: width / 2, Heading: heading}
}

// Axes returns the box's local unit axes (longitudinal, lateral).
func (b Box) Axes() (Vec2, Vec2) {
	s, c := math.Sincos(b.Heading)
	return Vec2{c, s}, Vec2{-s, c}
}

// Corners returns the four corners in counter-clockwise order.
func (b Box) Corners() [4]Vec2 {
	ax, ay := b.Axes()
	dl := ax.Scale(b.HalfLen)
	dw := ay.Scale(b.HalfWid)
	return [4]Vec2{
		b.Center.Add(dl).Add(dw),
		b.Center.Sub(dl).Add(dw),
		b.Center.Sub(dl).Sub(dw),
		b.Center.Add(dl).Sub(dw),
	}
}

// ContainsPoint reports whether p lies inside (or on the boundary of) b.
func (b Box) ContainsPoint(p Vec2) bool {
	d := p.Sub(b.Center)
	ax, ay := b.Axes()
	return math.Abs(d.Dot(ax)) <= b.HalfLen+1e-12 && math.Abs(d.Dot(ay)) <= b.HalfWid+1e-12
}

// Area returns the area of the box.
func (b Box) Area() float64 { return 4 * b.HalfLen * b.HalfWid }

// BoundingRadius returns the radius of the circumscribed circle, useful for
// cheap broad-phase rejection before the exact SAT test.
func (b Box) BoundingRadius() float64 { return math.Hypot(b.HalfLen, b.HalfWid) }

// Intersects reports whether two oriented boxes overlap, using the
// separating-axis theorem specialised for rectangles (4 candidate axes).
func (b Box) Intersects(o Box) bool {
	// Broad phase: bounding circles.
	r := b.BoundingRadius() + o.BoundingRadius()
	if b.Center.DistSq(o.Center) > r*r {
		return false
	}
	bx, by := b.Axes()
	ox, oy := o.Axes()
	axes := [4]Vec2{bx, by, ox, oy}
	d := o.Center.Sub(b.Center)
	for _, axis := range axes {
		// Projected half-extents of each box onto axis.
		pb := b.HalfLen*math.Abs(bx.Dot(axis)) + b.HalfWid*math.Abs(by.Dot(axis))
		po := o.HalfLen*math.Abs(ox.Dot(axis)) + o.HalfWid*math.Abs(oy.Dot(axis))
		if math.Abs(d.Dot(axis)) > pb+po {
			return false
		}
	}
	return true
}

// Inflate returns a copy of b grown by margin on every side. A negative
// margin shrinks the box (extents are floored at zero).
func (b Box) Inflate(margin float64) Box {
	b.HalfLen = math.Max(0, b.HalfLen+margin)
	b.HalfWid = math.Max(0, b.HalfWid+margin)
	return b
}

// PreparedBox caches the derived geometry of a Box — unit axes, bounding
// radius and AABB — so repeated intersection and drivability tests against
// the same box skip the per-call trigonometry. The reach-tube hot path
// prepares every obstacle footprint once per evaluation and every ego
// footprint once per sub-step instead of once per pairwise test. Corners
// are not cached: the SAT intersection test never touches them, and the one
// consumer that needs them (ring-road drivability) derives them from the
// cached axes.
type PreparedBox struct {
	Box      Box
	Ax, Ay   Vec2    // unit axes (longitudinal, lateral)
	Radius   float64 // bounding-circle radius
	Min, Max Vec2    // AABB corners
}

// Prepare computes the cached geometry of b: the values Box.Axes,
// Box.BoundingRadius, Box.Corners and Box.AABB would return (AABB up to the
// sign of zero, which no comparison distinguishes), so tests routed through
// a PreparedBox decide identically.
func (b Box) Prepare() PreparedBox {
	var p PreparedBox
	b.PrepareInto(&p)
	return p
}

// PrepareInto is Prepare writing into caller-owned memory, so hot loops
// (one ego footprint per reach-tube sub-step) reuse a single PreparedBox
// instead of copying the ~15-word struct out of every call.
func (b Box) PrepareInto(p *PreparedBox) {
	s, c := math.Sincos(b.Heading)
	b.PrepareIntoAxes(p, s, c)
}

// PrepareIntoAxes is PrepareInto with sin(b.Heading) and cos(b.Heading)
// supplied by the caller — for hot loops that already track the heading's
// sine and cosine incrementally (see vehicle.Params.StepPath) and can skip
// the per-footprint Sincos.
func (b Box) PrepareIntoAxes(p *PreparedBox, sin, cos float64) {
	p.Box = b
	p.Radius = math.Hypot(b.HalfLen, b.HalfWid)
	p.moveTo(b.Center, sin, cos)
}

// MoveTo repositions a prepared box to a new centre and heading, reusing
// the prepared half-extents and bounding radius (which depend only on the
// footprint dimensions). sin, cos must equal sincos(heading). The result
// matches re-preparing the moved box, with the AABB computed in closed form
// from the axis extents instead of a corner scan — equal to within 1 ulp,
// and still a valid bounding box for every intersection or drivability
// decision. The reach-tube sweep uses this to prepare one ego footprint per
// sub-step with no per-step trigonometry at all.
func (p *PreparedBox) MoveTo(center Vec2, heading, sin, cos float64) {
	p.Box.Center, p.Box.Heading = center, heading
	p.Ax, p.Ay = Vec2{cos, sin}, Vec2{-sin, cos}
	ex := math.Abs(cos*p.Box.HalfLen) + math.Abs(sin*p.Box.HalfWid)
	ey := math.Abs(sin*p.Box.HalfLen) + math.Abs(cos*p.Box.HalfWid)
	p.Min = Vec2{center.X - ex, center.Y - ey}
	p.Max = Vec2{center.X + ex, center.Y + ey}
}

func (p *PreparedBox) moveTo(center Vec2, sin, cos float64) {
	p.Ax, p.Ay = Vec2{cos, sin}, Vec2{-sin, cos}
	dl := p.Ax.Scale(p.Box.HalfLen)
	dw := p.Ay.Scale(p.Box.HalfWid)
	corners := [4]Vec2{
		center.Add(dl).Add(dw),
		center.Sub(dl).Add(dw),
		center.Sub(dl).Sub(dw),
		center.Add(dl).Sub(dw),
	}
	p.Min, p.Max = corners[0], corners[0]
	for _, c := range corners[1:] {
		if c.X < p.Min.X {
			p.Min.X = c.X
		}
		if c.Y < p.Min.Y {
			p.Min.Y = c.Y
		}
		if c.X > p.Max.X {
			p.Max.X = c.X
		}
		if c.Y > p.Max.Y {
			p.Max.Y = c.Y
		}
	}
}

// CornersInto writes the box's counter-clockwise corners, derived from the
// cached axes, into out. They equal Box.Corners() without the trigonometry.
func (p *PreparedBox) CornersInto(out *[4]Vec2) {
	dl := p.Ax.Scale(p.Box.HalfLen)
	dw := p.Ay.Scale(p.Box.HalfWid)
	out[0] = p.Box.Center.Add(dl).Add(dw)
	out[1] = p.Box.Center.Sub(dl).Add(dw)
	out[2] = p.Box.Center.Sub(dl).Sub(dw)
	out[3] = p.Box.Center.Add(dl).Sub(dw)
}

// Intersects reports whether the two prepared boxes overlap. It agrees with
// Box.Intersects on every input: the extra AABB rejection is conservative
// (disjoint AABBs imply disjoint boxes) and the circle and SAT phases use
// the cached values of the exact quantities Box.Intersects recomputes.
func (b *PreparedBox) Intersects(o *PreparedBox) bool {
	if b.Min.X > o.Max.X || o.Min.X > b.Max.X || b.Min.Y > o.Max.Y || o.Min.Y > b.Max.Y {
		return false
	}
	r := b.Radius + o.Radius
	if b.Box.Center.DistSq(o.Box.Center) > r*r {
		return false
	}
	bx, by := b.Ax, b.Ay
	ox, oy := o.Ax, o.Ay
	axes := [4]Vec2{bx, by, ox, oy}
	d := o.Box.Center.Sub(b.Box.Center)
	for _, axis := range axes {
		pb := b.Box.HalfLen*math.Abs(bx.Dot(axis)) + b.Box.HalfWid*math.Abs(by.Dot(axis))
		po := o.Box.HalfLen*math.Abs(ox.Dot(axis)) + o.Box.HalfWid*math.Abs(oy.Dot(axis))
		if math.Abs(d.Dot(axis)) > pb+po {
			return false
		}
	}
	return true
}

// AABB returns the axis-aligned bounding box of b as (min, max) corners.
func (b Box) AABB() (Vec2, Vec2) {
	cs := b.Corners()
	min, max := cs[0], cs[0]
	for _, c := range cs[1:] {
		min.X = math.Min(min.X, c.X)
		min.Y = math.Min(min.Y, c.Y)
		max.X = math.Max(max.X, c.X)
		max.Y = math.Max(max.Y, c.Y)
	}
	return min, max
}
