package geom

import "math"

// Box is an oriented rectangle (OBB): the footprint of a vehicle or other
// physical object. Heading is the direction of the +length axis in radians.
type Box struct {
	Center  Vec2
	HalfLen float64 // half extent along the heading axis
	HalfWid float64 // half extent perpendicular to the heading axis
	Heading float64
}

// NewBox constructs an oriented box from a centre, full length, full width
// and heading.
func NewBox(center Vec2, length, width, heading float64) Box {
	return Box{Center: center, HalfLen: length / 2, HalfWid: width / 2, Heading: heading}
}

// Axes returns the box's local unit axes (longitudinal, lateral).
func (b Box) Axes() (Vec2, Vec2) {
	s, c := math.Sincos(b.Heading)
	return Vec2{c, s}, Vec2{-s, c}
}

// Corners returns the four corners in counter-clockwise order.
func (b Box) Corners() [4]Vec2 {
	ax, ay := b.Axes()
	dl := ax.Scale(b.HalfLen)
	dw := ay.Scale(b.HalfWid)
	return [4]Vec2{
		b.Center.Add(dl).Add(dw),
		b.Center.Sub(dl).Add(dw),
		b.Center.Sub(dl).Sub(dw),
		b.Center.Add(dl).Sub(dw),
	}
}

// ContainsPoint reports whether p lies inside (or on the boundary of) b.
func (b Box) ContainsPoint(p Vec2) bool {
	d := p.Sub(b.Center)
	ax, ay := b.Axes()
	return math.Abs(d.Dot(ax)) <= b.HalfLen+1e-12 && math.Abs(d.Dot(ay)) <= b.HalfWid+1e-12
}

// Area returns the area of the box.
func (b Box) Area() float64 { return 4 * b.HalfLen * b.HalfWid }

// BoundingRadius returns the radius of the circumscribed circle, useful for
// cheap broad-phase rejection before the exact SAT test.
func (b Box) BoundingRadius() float64 { return math.Hypot(b.HalfLen, b.HalfWid) }

// Intersects reports whether two oriented boxes overlap, using the
// separating-axis theorem specialised for rectangles (4 candidate axes).
func (b Box) Intersects(o Box) bool {
	// Broad phase: bounding circles.
	r := b.BoundingRadius() + o.BoundingRadius()
	if b.Center.DistSq(o.Center) > r*r {
		return false
	}
	bx, by := b.Axes()
	ox, oy := o.Axes()
	axes := [4]Vec2{bx, by, ox, oy}
	d := o.Center.Sub(b.Center)
	for _, axis := range axes {
		// Projected half-extents of each box onto axis.
		pb := b.HalfLen*math.Abs(bx.Dot(axis)) + b.HalfWid*math.Abs(by.Dot(axis))
		po := o.HalfLen*math.Abs(ox.Dot(axis)) + o.HalfWid*math.Abs(oy.Dot(axis))
		if math.Abs(d.Dot(axis)) > pb+po {
			return false
		}
	}
	return true
}

// Inflate returns a copy of b grown by margin on every side. A negative
// margin shrinks the box (extents are floored at zero).
func (b Box) Inflate(margin float64) Box {
	b.HalfLen = math.Max(0, b.HalfLen+margin)
	b.HalfWid = math.Max(0, b.HalfWid+margin)
	return b
}

// AABB returns the axis-aligned bounding box of b as (min, max) corners.
func (b Box) AABB() (Vec2, Vec2) {
	cs := b.Corners()
	min, max := cs[0], cs[0]
	for _, c := range cs[1:] {
		min.X = math.Min(min.X, c.X)
		min.Y = math.Min(min.Y, c.Y)
		max.X = math.Max(max.X, c.X)
		max.Y = math.Max(max.Y, c.Y)
	}
	return min, max
}
