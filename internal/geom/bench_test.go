package geom

import (
	"math"
	"testing"
)

func BenchmarkBoxIntersects(b *testing.B) {
	x := NewBox(V(0, 0), 4.7, 2.0, 0.2)
	y := NewBox(V(3, 1), 4.7, 2.0, -0.4)
	for i := 0; i < b.N; i++ {
		x.Intersects(y)
	}
}

func BenchmarkBoxIntersectsBroadPhaseReject(b *testing.B) {
	x := NewBox(V(0, 0), 4.7, 2.0, 0.2)
	y := NewBox(V(100, 0), 4.7, 2.0, -0.4)
	for i := 0; i < b.N; i++ {
		x.Intersects(y)
	}
}

func BenchmarkConvexHull(b *testing.B) {
	pts := make([]Vec2, 64)
	for i := range pts {
		a := float64(i) * 0.7
		pts[i] = V(math.Cos(a)*float64(i%7), math.Sin(a)*float64(i%5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvexHull(pts)
	}
}

func BenchmarkGridMark(b *testing.B) {
	g := NewOccupancyGrid(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Mark(V(float64(i%100), float64(i%37)))
	}
}
