package geom

// MaskGrid is an OccupancyGrid whose cells carry a world mask instead of a
// single occupied bit. The shared-expansion counterfactual engine (package
// reach) uses one MaskGrid to measure every reach-tube volume in a single
// pass: bit w of a cell's mask records that the cell was traversed by a
// state surviving in counterfactual world w, so the per-world cell count —
// and with it the paper's |T|, |T^{/i}| — falls out of one grid.
//
// A mask is `words` consecutive uint64s (bit w lives in word w/64). The
// common words==1 case keeps the single-value MarkBits/BitsAt fast path;
// wider grids use MarkWords/WordsAt with caller-provided slices so the hot
// loop stays allocation-free.
//
// Cell addressing is identical to OccupancyGrid (exact packed cell indices,
// open addressing, generation-stamped O(1) Reset), so a MaskGrid restricted
// to one bit marks exactly the cells an OccupancyGrid would.
//
// The zero value is not usable; construct with NewMaskGrid or
// NewMaskGridWords.
type MaskGrid struct {
	cellSize float64
	words    int
	cells    []uint64 // packed (ix, iy) cell indices
	masks    []uint64 // accumulated per-cell world masks, stride `words`
	gen      []uint32
	cur      uint32
	count    int
}

// NewMaskGrid creates a single-word (≤64 worlds) masked grid with the given
// cell edge length in metres. cellSize must be positive.
func NewMaskGrid(cellSize float64) *MaskGrid {
	return NewMaskGridWords(cellSize, 1)
}

// NewMaskGridWords creates a masked grid whose cells carry words×64-bit
// masks. cellSize must be positive; words must be at least 1.
func NewMaskGridWords(cellSize float64, words int) *MaskGrid {
	if cellSize <= 0 {
		cellSize = 1
	}
	if words < 1 {
		words = 1
	}
	return &MaskGrid{cellSize: cellSize, words: words, cur: 1}
}

// CellSize returns the grid resolution in metres.
func (g *MaskGrid) CellSize() float64 { return g.cellSize }

// Words returns the number of 64-bit words in each cell's mask.
func (g *MaskGrid) Words() int { return g.words }

// MarkBits ORs bits into the mask of the cell containing p and returns the
// bits that were not yet set there — the worlds for which this cell is
// newly occupied. Callers tally per-world cell counts from the return
// value, so a cell is counted exactly once per world. Only valid on
// single-word grids (Words() == 1); wider grids use MarkWords.
func (g *MaskGrid) MarkBits(p Vec2, mask uint64) uint64 {
	if 2*(g.count+1) > len(g.cells) {
		g.grow()
	}
	k := g.key(p)
	slot := uint64(len(g.cells) - 1)
	for i := hashCell(k) & slot; ; i = (i + 1) & slot {
		if g.gen[i] != g.cur {
			g.cells[i] = k
			g.masks[i] = mask
			g.gen[i] = g.cur
			g.count++
			return mask
		}
		if g.cells[i] == k {
			newBits := mask &^ g.masks[i]
			g.masks[i] |= mask
			return newBits
		}
	}
}

// MarkWords is MarkBits for multi-word masks: it ORs mask (len Words())
// into the cell containing p and writes the bits that were not yet set
// there into newBits (len Words()), word-aligned with mask. Both slices are
// caller-owned so the hot loop allocates nothing.
func (g *MaskGrid) MarkWords(p Vec2, mask, newBits []uint64) {
	if 2*(g.count+1) > len(g.cells) {
		g.grow()
	}
	k := g.key(p)
	slot := uint64(len(g.cells) - 1)
	for i := hashCell(k) & slot; ; i = (i + 1) & slot {
		if g.gen[i] != g.cur {
			g.cells[i] = k
			copy(g.masks[int(i)*g.words:int(i)*g.words+g.words], mask)
			g.gen[i] = g.cur
			g.count++
			copy(newBits, mask)
			return
		}
		if g.cells[i] == k {
			base := int(i) * g.words
			for w := range mask {
				newBits[w] = mask[w] &^ g.masks[base+w]
				g.masks[base+w] |= mask[w]
			}
			return
		}
	}
}

// BitsAt returns the accumulated mask of the cell containing p (zero if the
// cell was never marked). Only valid on single-word grids; wider grids use
// WordsAt.
func (g *MaskGrid) BitsAt(p Vec2) uint64 {
	if len(g.cells) == 0 {
		return 0
	}
	k := g.key(p)
	slot := uint64(len(g.cells) - 1)
	for i := hashCell(k) & slot; ; i = (i + 1) & slot {
		if g.gen[i] != g.cur {
			return 0
		}
		if g.cells[i] == k {
			return g.masks[i]
		}
	}
}

// WordsAt copies the accumulated mask of the cell containing p into dst
// (len Words()), zero-filled if the cell was never marked.
func (g *MaskGrid) WordsAt(p Vec2, dst []uint64) {
	clear(dst)
	if len(g.cells) == 0 {
		return
	}
	k := g.key(p)
	slot := uint64(len(g.cells) - 1)
	for i := hashCell(k) & slot; ; i = (i + 1) & slot {
		if g.gen[i] != g.cur {
			return
		}
		if g.cells[i] == k {
			copy(dst, g.masks[int(i)*g.words:int(i)*g.words+g.words])
			return
		}
	}
}

// Cells returns the number of cells with at least one bit set.
func (g *MaskGrid) Cells() int { return g.count }

// Reset clears every cell while retaining allocated capacity.
func (g *MaskGrid) Reset() {
	g.cur++
	g.count = 0
	if g.cur == 0 { // stamp wrapped: old entries would look live again
		clear(g.gen)
		g.cur = 1
	}
}

func (g *MaskGrid) grow() {
	capOld := len(g.cells)
	capNew := 1024
	if capOld > 0 {
		capNew = capOld * 2
	}
	oldCells, oldMasks, oldGen := g.cells, g.masks, g.gen
	g.cells = make([]uint64, capNew)
	g.masks = make([]uint64, capNew*g.words)
	g.gen = make([]uint32, capNew)
	slot := uint64(capNew - 1)
	for i, gen := range oldGen {
		if gen != g.cur {
			continue
		}
		k := oldCells[i]
		for j := hashCell(k) & slot; ; j = (j + 1) & slot {
			if g.gen[j] != g.cur {
				g.cells[j] = k
				copy(g.masks[int(j)*g.words:int(j)*g.words+g.words], oldMasks[i*g.words:i*g.words+g.words])
				g.gen[j] = g.cur
				break
			}
		}
	}
}

// key packs the cell indices of p into one 64-bit value, exactly as
// OccupancyGrid does, so both grids agree on cell membership.
func (g *MaskGrid) key(p Vec2) uint64 {
	ix := uint32(int32(floorDiv(p.X, g.cellSize)))
	iy := uint32(int32(floorDiv(p.Y, g.cellSize)))
	return uint64(ix) | uint64(iy)<<32
}
