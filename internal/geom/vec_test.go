package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec2, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol)
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2)
	b := V(3, -4)
	if got := a.Add(b); got != V(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1*3+2*(-4) {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != 1*(-4)-2*3 {
		t.Errorf("Cross = %v", got)
	}
	if got := b.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := b.NormSq(); got != 25 {
		t.Errorf("NormSq = %v", got)
	}
	if got := a.Dist(V(1, 2)); got != 0 {
		t.Errorf("Dist to self = %v", got)
	}
}

func TestVecUnit(t *testing.T) {
	u := V(3, 4).Unit()
	if !vecAlmostEq(u, V(0.6, 0.8), 1e-12) {
		t.Errorf("Unit = %v", u)
	}
	if got := (Vec2{}).Unit(); got != (Vec2{}) {
		t.Errorf("Unit of zero vector = %v, want zero", got)
	}
}

func TestVecRotate(t *testing.T) {
	r := V(1, 0).Rotate(math.Pi / 2)
	if !vecAlmostEq(r, V(0, 1), 1e-12) {
		t.Errorf("Rotate 90° = %v", r)
	}
	r = V(1, 0).Rotate(math.Pi)
	if !vecAlmostEq(r, V(-1, 0), 1e-12) {
		t.Errorf("Rotate 180° = %v", r)
	}
}

func TestVecAngle(t *testing.T) {
	if got := V(0, 1).Angle(); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("Angle = %v", got)
	}
	if got := V(-1, 0).Angle(); !almostEq(got, math.Pi, 1e-12) {
		t.Errorf("Angle = %v", got)
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0), V(10, -10)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V(5, -5) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct {
		give, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
		{5 * math.Pi / 2, math.Pi / 2},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.give); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	if got := AngleDiff(0.1, -0.1); !almostEq(got, 0.2, 1e-12) {
		t.Errorf("AngleDiff = %v", got)
	}
	// Wrap-around: 179° vs -179° differ by 2°, not 358°.
	a, b := math.Pi-0.01, -math.Pi+0.01
	if got := AngleDiff(a, b); !almostEq(got, -0.02, 1e-9) {
		t.Errorf("AngleDiff wrap = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp above = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp below = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp inside = %v", got)
	}
}

// Property: rotation preserves vector length.
func TestRotatePreservesNorm(t *testing.T) {
	f := func(x, y, angle float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) ||
			math.IsNaN(angle) || math.IsInf(angle, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		v := V(x, y)
		r := v.Rotate(math.Mod(angle, 2*math.Pi))
		return almostEq(v.Norm(), r.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NormalizeAngle output always lies in (-π, π] and preserves the
// angle modulo 2π.
func TestNormalizeAngleRange(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		a = math.Mod(a, 1e9)
		n := NormalizeAngle(a)
		if n <= -math.Pi || n > math.Pi+1e-12 {
			return false
		}
		// sin/cos must be unchanged.
		return almostEq(math.Sin(a), math.Sin(n), 1e-6) && almostEq(math.Cos(a), math.Cos(n), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a.Dot(b) == b.Dot(a) and a.Cross(b) == -b.Cross(a).
func TestDotCrossSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a, b := V(math.Mod(ax, 1e3), math.Mod(ay, 1e3)), V(math.Mod(bx, 1e3), math.Mod(by, 1e3))
		return a.Dot(b) == b.Dot(a) && a.Cross(b) == -b.Cross(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
