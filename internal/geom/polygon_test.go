package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPolygonArea(t *testing.T) {
	tests := []struct {
		name string
		give Polygon
		want float64
	}{
		{"empty", Polygon{}, 0},
		{"degenerate", Polygon{V(0, 0), V(1, 1)}, 0},
		{"unit square ccw", Polygon{V(0, 0), V(1, 0), V(1, 1), V(0, 1)}, 1},
		{"unit square cw", Polygon{V(0, 0), V(0, 1), V(1, 1), V(1, 0)}, 1},
		{"triangle", Polygon{V(0, 0), V(4, 0), V(0, 3)}, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Area(); !almostEq(got, tt.want, 1e-12) {
				t.Errorf("Area = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	square := Polygon{V(0, 0), V(2, 0), V(2, 2), V(0, 2)}
	if !square.ContainsPoint(V(1, 1)) {
		t.Error("centre should be inside")
	}
	if square.ContainsPoint(V(3, 1)) {
		t.Error("outside point reported inside")
	}
	if square.ContainsPoint(V(-0.1, 1)) {
		t.Error("outside-left point reported inside")
	}
}

func TestPolygonCentroid(t *testing.T) {
	square := Polygon{V(0, 0), V(2, 0), V(2, 2), V(0, 2)}
	if got := square.Centroid(); !vecAlmostEq(got, V(1, 1), 1e-12) {
		t.Errorf("Centroid = %v", got)
	}
	if got := (Polygon{}).Centroid(); got != (Vec2{}) {
		t.Errorf("empty Centroid = %v", got)
	}
}

func TestConvexHull(t *testing.T) {
	pts := []Vec2{
		{0, 0}, {2, 0}, {2, 2}, {0, 2},
		{1, 1}, {0.5, 0.5}, {1.5, 0.2}, // interior points
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4 (%v)", len(hull), hull)
	}
	if got := hull.Area(); !almostEq(got, 4, 1e-12) {
		t.Errorf("hull area = %v, want 4", got)
	}
}

func TestConvexHullSmallInputs(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Errorf("hull of nil = %v", got)
	}
	one := []Vec2{{1, 2}}
	if got := ConvexHull(one); len(got) != 1 || got[0] != one[0] {
		t.Errorf("hull of one point = %v", got)
	}
}

// Property: all input points lie inside (or on the boundary of) their convex
// hull, and the hull is convex (all cross products of consecutive edges have
// the same sign).
func TestConvexHullProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 3 + rng.Intn(40)
		pts := make([]Vec2, n)
		for i := range pts {
			pts[i] = V(rng.Float64()*20-10, rng.Float64()*20-10)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue // collinear degenerate input
		}
		// Convexity.
		for i := range hull {
			a := hull[i]
			b := hull[(i+1)%len(hull)]
			c := hull[(i+2)%len(hull)]
			if b.Sub(a).Cross(c.Sub(b)) < -1e-9 {
				t.Fatalf("iter %d: hull not convex at %d: %v", iter, i, hull)
			}
		}
		// Containment: every input point within hull (allow boundary slop by
		// inflating test with tiny epsilon via area comparison).
		for _, p := range pts {
			if !hullContains(hull, p, 1e-9) {
				t.Fatalf("iter %d: point %v outside hull %v", iter, p, hull)
			}
		}
	}
}

func hullContains(hull Polygon, p Vec2, eps float64) bool {
	for i := range hull {
		a := hull[i]
		b := hull[(i+1)%len(hull)]
		if b.Sub(a).Cross(p.Sub(a)) < -eps {
			return false
		}
	}
	return true
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		name           string
		a1, a2, b1, b2 Vec2
		want           bool
	}{
		{"crossing", V(0, 0), V(2, 2), V(0, 2), V(2, 0), true},
		{"parallel apart", V(0, 0), V(2, 0), V(0, 1), V(2, 1), false},
		{"touching endpoint", V(0, 0), V(1, 1), V(1, 1), V(2, 0), true},
		{"collinear overlapping", V(0, 0), V(2, 0), V(1, 0), V(3, 0), true},
		{"collinear disjoint", V(0, 0), V(1, 0), V(2, 0), V(3, 0), false},
		{"T shape", V(0, 0), V(2, 0), V(1, 0), V(1, 2), true},
		{"near miss", V(0, 0), V(2, 0), V(1, 0.01), V(1, 2), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SegmentsIntersect(tt.a1, tt.a2, tt.b1, tt.b2); got != tt.want {
				t.Errorf("SegmentsIntersect = %v, want %v", got, tt.want)
			}
			if got := SegmentsIntersect(tt.b1, tt.b2, tt.a1, tt.a2); got != tt.want {
				t.Errorf("SegmentsIntersect (swapped) = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestGridMarkCount(t *testing.T) {
	g := NewOccupancyGrid(1)
	if !g.Mark(V(0.5, 0.5)) {
		t.Error("first mark should be new")
	}
	if g.Mark(V(0.9, 0.1)) {
		t.Error("same-cell mark should not be new")
	}
	if !g.Mark(V(1.5, 0.5)) {
		t.Error("adjacent cell should be new")
	}
	if got := g.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if got := g.Area(); got != 2 {
		t.Errorf("Area = %v, want 2", got)
	}
	if !g.Occupied(V(0.2, 0.7)) {
		t.Error("cell should be occupied")
	}
	g.Reset()
	if g.Count() != 0 {
		t.Error("Reset should clear cells")
	}
}

func TestGridNegativeCoordinates(t *testing.T) {
	g := NewOccupancyGrid(1)
	g.Mark(V(-0.5, -0.5))
	g.Mark(V(0.5, 0.5))
	if g.Count() != 2 {
		t.Errorf("cells at ±0.5 must differ; Count = %d", g.Count())
	}
	// -0.5 and -0.9 share the [-1, 0) cell.
	if g.Mark(V(-0.9, -0.9)) {
		t.Error("(-0.9,-0.9) should share the (-1..0) cell with (-0.5,-0.5)")
	}
}

func TestGridInvalidCellSize(t *testing.T) {
	g := NewOccupancyGrid(-1)
	if g.CellSize() != 1 {
		t.Errorf("invalid cell size should default to 1, got %v", g.CellSize())
	}
}

func TestGridAreaScalesWithCellSize(t *testing.T) {
	g := NewOccupancyGrid(0.5)
	g.Mark(V(0.1, 0.1))
	if got := g.Area(); !almostEq(got, 0.25, 1e-12) {
		t.Errorf("Area = %v, want 0.25", got)
	}
}

func TestGridDenseCoverage(t *testing.T) {
	g := NewOccupancyGrid(1)
	for x := 0.0; x < 10; x += 0.25 {
		for y := 0.0; y < 10; y += 0.25 {
			g.Mark(V(x, y))
		}
	}
	if got := g.Count(); got != 100 {
		t.Errorf("dense 10x10 coverage = %d cells, want 100", got)
	}
}

func TestFloorDivMatchesMathFloor(t *testing.T) {
	for _, x := range []float64{-5.5, -1, -0.1, 0, 0.1, 1, 2.9, 1e5} {
		for _, c := range []float64{0.5, 1, 2.5} {
			want := math.Floor(x / c)
			if got := floorDiv(x, c); got != want {
				t.Errorf("floorDiv(%v,%v) = %v, want %v", x, c, got, want)
			}
		}
	}
}
