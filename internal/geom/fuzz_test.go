package geom

import (
	"math"
	"testing"
)

func FuzzNormalizeAngle(f *testing.F) {
	for _, seed := range []float64{0, math.Pi, -math.Pi, 100, -1e6, 1e-12} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, a float64) {
		// Beyond ~1e6 rad the double-precision reduction by 2π drifts from
		// math.Sin's high-precision argument reduction; angles that large
		// are out of scope for road geometry.
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			t.Skip()
		}
		n := NormalizeAngle(a)
		if n <= -math.Pi-1e-9 || n > math.Pi+1e-9 {
			t.Fatalf("NormalizeAngle(%v) = %v out of (-π, π]", a, n)
		}
		if math.Abs(math.Sin(a)-math.Sin(n)) > 1e-6 {
			t.Fatalf("NormalizeAngle(%v) = %v changed the angle", a, n)
		}
	})
}

func FuzzBoxIntersectsSymmetry(f *testing.F) {
	f.Add(0.0, 0.0, 4.0, 2.0, 0.0, 3.0, 1.0, 4.0, 2.0, 0.5)
	f.Add(1.0, -2.0, 2.0, 2.0, 1.0, 1.5, -1.0, 3.0, 1.0, -0.7)
	f.Fuzz(func(t *testing.T, ax, ay, al, aw, ah, bx, by, bl, bw, bh float64) {
		for _, v := range []float64{ax, ay, al, aw, ah, bx, by, bl, bw, bh} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		a := NewBox(V(ax, ay), math.Abs(al), math.Abs(aw), ah)
		b := NewBox(V(bx, by), math.Abs(bl), math.Abs(bw), bh)
		if a.Intersects(b) != b.Intersects(a) {
			t.Fatalf("intersection not symmetric: %+v vs %+v", a, b)
		}
		// A box always intersects itself (if non-degenerate).
		if al != 0 && aw != 0 && !a.Intersects(a) {
			t.Fatalf("box does not intersect itself: %+v", a)
		}
	})
}

func FuzzGridMarkOccupied(f *testing.F) {
	f.Add(0.5, 0.5, 1.0)
	f.Add(-3.2, 7.7, 0.25)
	f.Fuzz(func(t *testing.T, x, y, cell float64) {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(cell) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(cell, 0) {
			t.Skip()
		}
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 || cell <= 1e-3 || cell > 1e3 {
			t.Skip()
		}
		g := NewOccupancyGrid(cell)
		g.Mark(V(x, y))
		if !g.Occupied(V(x, y)) {
			t.Fatalf("marked cell not occupied: (%v, %v) cell %v", x, y, cell)
		}
		if g.Count() != 1 {
			t.Fatalf("count = %d after one mark", g.Count())
		}
	})
}
