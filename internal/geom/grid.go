package geom

// OccupancyGrid discretises the plane into square cells and records which
// cells have been visited. The iPrism reach-tube uses it to approximate the
// state-space volume |T| of the set of escape routes: a tube that marks more
// cells covers a larger portion of the drivable area.
//
// Cells are stored in an open-addressed hash set (generation-stamped so
// Reset is O(1)); membership is decided by exact cell-index equality, so
// the structure behaves identically to a map keyed by cell index.
//
// The zero value is not usable; construct with NewOccupancyGrid.
type OccupancyGrid struct {
	cellSize float64
	cells    []uint64 // packed (ix, iy) cell indices
	gen      []uint32
	cur      uint32
	count    int
}

// NewOccupancyGrid creates a grid with the given cell edge length in metres.
// cellSize must be positive.
func NewOccupancyGrid(cellSize float64) *OccupancyGrid {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &OccupancyGrid{cellSize: cellSize, cur: 1}
}

// CellSize returns the grid resolution in metres.
func (g *OccupancyGrid) CellSize() float64 { return g.cellSize }

// Mark records the cell containing p as occupied. It reports whether the
// cell was newly marked.
func (g *OccupancyGrid) Mark(p Vec2) bool {
	if 2*(g.count+1) > len(g.cells) {
		g.grow()
	}
	k := g.key(p)
	mask := uint64(len(g.cells) - 1)
	for i := hashCell(k) & mask; ; i = (i + 1) & mask {
		if g.gen[i] != g.cur {
			g.cells[i] = k
			g.gen[i] = g.cur
			g.count++
			return true
		}
		if g.cells[i] == k {
			return false
		}
	}
}

// Occupied reports whether the cell containing p has been marked.
func (g *OccupancyGrid) Occupied(p Vec2) bool {
	if len(g.cells) == 0 {
		return false
	}
	k := g.key(p)
	mask := uint64(len(g.cells) - 1)
	for i := hashCell(k) & mask; ; i = (i + 1) & mask {
		if g.gen[i] != g.cur {
			return false
		}
		if g.cells[i] == k {
			return true
		}
	}
}

// Count returns the number of occupied cells.
func (g *OccupancyGrid) Count() int { return g.count }

// Area returns the total occupied area in square metres.
func (g *OccupancyGrid) Area() float64 {
	return float64(g.count) * g.cellSize * g.cellSize
}

// Reset clears all occupied cells while retaining allocated capacity.
func (g *OccupancyGrid) Reset() {
	g.cur++
	g.count = 0
	if g.cur == 0 { // stamp wrapped: old entries would look live again
		clear(g.gen)
		g.cur = 1
	}
}

func (g *OccupancyGrid) grow() {
	capOld := len(g.cells)
	capNew := 1024
	if capOld > 0 {
		capNew = capOld * 2
	}
	oldCells, oldGen := g.cells, g.gen
	g.cells = make([]uint64, capNew)
	g.gen = make([]uint32, capNew)
	mask := uint64(capNew - 1)
	for i, gen := range oldGen {
		if gen != g.cur {
			continue
		}
		k := oldCells[i]
		for j := hashCell(k) & mask; ; j = (j + 1) & mask {
			if g.gen[j] != g.cur {
				g.cells[j] = k
				g.gen[j] = g.cur
				break
			}
		}
	}
}

// key packs the cell indices of p into one 64-bit value (exact: each index
// occupies its own 32-bit half).
func (g *OccupancyGrid) key(p Vec2) uint64 {
	ix := uint32(int32(floorDiv(p.X, g.cellSize)))
	iy := uint32(int32(floorDiv(p.Y, g.cellSize)))
	return uint64(ix) | uint64(iy)<<32
}

func hashCell(k uint64) uint64 {
	k *= 0x9e3779b97f4a7c15
	k ^= k >> 32
	k *= 0xff51afd7ed558ccd
	return k ^ (k >> 29)
}

func floorDiv(x, cell float64) float64 {
	q := x / cell
	// Truncation differs from floor for negatives; adjust.
	t := float64(int64(q))
	if q < 0 && q != t {
		t--
	}
	return t
}
