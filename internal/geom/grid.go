package geom

// OccupancyGrid discretises the plane into square cells and records which
// cells have been visited. The iPrism reach-tube uses it to approximate the
// state-space volume |T| of the set of escape routes: a tube that marks more
// cells covers a larger portion of the drivable area.
//
// The zero value is not usable; construct with NewOccupancyGrid.
type OccupancyGrid struct {
	cellSize float64
	cells    map[cellKey]struct{}
}

type cellKey struct{ ix, iy int32 }

// NewOccupancyGrid creates a grid with the given cell edge length in metres.
// cellSize must be positive.
func NewOccupancyGrid(cellSize float64) *OccupancyGrid {
	if cellSize <= 0 {
		cellSize = 1
	}
	return &OccupancyGrid{cellSize: cellSize, cells: make(map[cellKey]struct{}, 256)}
}

// CellSize returns the grid resolution in metres.
func (g *OccupancyGrid) CellSize() float64 { return g.cellSize }

// Mark records the cell containing p as occupied. It reports whether the
// cell was newly marked.
func (g *OccupancyGrid) Mark(p Vec2) bool {
	k := g.key(p)
	if _, ok := g.cells[k]; ok {
		return false
	}
	g.cells[k] = struct{}{}
	return true
}

// Occupied reports whether the cell containing p has been marked.
func (g *OccupancyGrid) Occupied(p Vec2) bool {
	_, ok := g.cells[g.key(p)]
	return ok
}

// Count returns the number of occupied cells.
func (g *OccupancyGrid) Count() int { return len(g.cells) }

// Area returns the total occupied area in square metres.
func (g *OccupancyGrid) Area() float64 {
	return float64(len(g.cells)) * g.cellSize * g.cellSize
}

// Reset clears all occupied cells while retaining allocated capacity.
func (g *OccupancyGrid) Reset() { clear(g.cells) }

func (g *OccupancyGrid) key(p Vec2) cellKey {
	return cellKey{
		ix: int32(floorDiv(p.X, g.cellSize)),
		iy: int32(floorDiv(p.Y, g.cellSize)),
	}
}

func floorDiv(x, cell float64) float64 {
	q := x / cell
	// Truncation differs from floor for negatives; adjust.
	t := float64(int64(q))
	if q < 0 && q != t {
		t--
	}
	return t
}
