package geom

import (
	"math/rand"
	"testing"
)

// PreparedBox is a pure cache: every derived quantity and every intersection
// decision must match the Box methods it shadows.
func TestPreparedBoxMatchesBox(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		a, b := randomBox(rng), randomBox(rng)
		pa, pb := a.Prepare(), b.Prepare()

		if pa.Box != a {
			t.Fatalf("trial %d: Prepare lost the box: %+v vs %+v", trial, pa.Box, a)
		}
		ax, ay := a.Axes()
		if pa.Ax != ax || pa.Ay != ay {
			t.Errorf("trial %d: axes (%v, %v) vs (%v, %v)", trial, pa.Ax, pa.Ay, ax, ay)
		}
		if pa.Radius != a.BoundingRadius() {
			t.Errorf("trial %d: radius %v vs %v", trial, pa.Radius, a.BoundingRadius())
		}
		var cs [4]Vec2
		pa.CornersInto(&cs)
		if cs != a.Corners() {
			t.Errorf("trial %d: corners %v vs %v", trial, cs, a.Corners())
		}
		min, max := a.AABB()
		if pa.Min != min || pa.Max != max {
			t.Errorf("trial %d: AABB (%v, %v) vs (%v, %v)", trial, pa.Min, pa.Max, min, max)
		}
		if got, want := pa.Intersects(&pb), a.Intersects(b); got != want {
			t.Errorf("trial %d: prepared Intersects = %v, Box.Intersects = %v (a=%+v b=%+v)",
				trial, got, want, a, b)
		}
	}
}
