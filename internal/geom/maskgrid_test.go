package geom

import (
	"math/rand"
	"testing"
)

func TestMaskGridMarkBitsReturnsNewBits(t *testing.T) {
	g := NewMaskGrid(1)
	p := V(0.5, 0.5)
	if got := g.MarkBits(p, 0b0101); got != 0b0101 {
		t.Fatalf("first mark returned %b, want 0101", got)
	}
	if got := g.MarkBits(p, 0b0011); got != 0b0010 {
		t.Fatalf("overlapping mark returned %b, want 0010", got)
	}
	if got := g.MarkBits(p, 0b0111); got != 0 {
		t.Fatalf("fully covered mark returned %b, want 0", got)
	}
	if got := g.BitsAt(p); got != 0b0111 {
		t.Fatalf("accumulated mask %b, want 0111", got)
	}
	if g.Cells() != 1 {
		t.Fatalf("cells %d, want 1", g.Cells())
	}
}

func TestMaskGridCellAddressingMatchesOccupancyGrid(t *testing.T) {
	// A MaskGrid restricted to one bit must mark exactly the cells an
	// OccupancyGrid marks: same floor division, same packed key, so the
	// shared-expansion volumes equal the legacy Area counts cell-for-cell.
	rng := rand.New(rand.NewSource(8))
	mg := NewMaskGrid(0.75)
	og := NewOccupancyGrid(0.75)
	for i := 0; i < 5000; i++ {
		p := V((rng.Float64()-0.5)*200, (rng.Float64()-0.5)*200)
		newBit := mg.MarkBits(p, 1) != 0
		fresh := og.Mark(p)
		if newBit != fresh {
			t.Fatalf("point %v: MaskGrid new=%v OccupancyGrid new=%v", p, newBit, fresh)
		}
	}
	if mg.Cells() != og.Count() {
		t.Fatalf("cell counts diverge: %d vs %d", mg.Cells(), og.Count())
	}
}

func TestMaskGridResetReuse(t *testing.T) {
	g := NewMaskGrid(1)
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			g.MarkBits(V(float64(i), float64(round)), uint64(1)<<uint(i%64))
		}
		if g.Cells() != 100 {
			t.Fatalf("round %d: cells %d, want 100", round, g.Cells())
		}
		g.Reset()
		if g.Cells() != 0 {
			t.Fatalf("round %d: cells after reset %d", round, g.Cells())
		}
		if g.BitsAt(V(0, float64(round))) != 0 {
			t.Fatalf("round %d: stale bits survive reset", round)
		}
	}
}

func TestMaskGridGrowthPreservesMasks(t *testing.T) {
	g := NewMaskGrid(1)
	const n = 3000 // well past the initial table size, forcing rehashes
	for i := 0; i < n; i++ {
		g.MarkBits(V(float64(i), 0), uint64(i)|1)
	}
	if g.Cells() != n {
		t.Fatalf("cells %d, want %d", g.Cells(), n)
	}
	for i := 0; i < n; i++ {
		if got, want := g.BitsAt(V(float64(i), 0)), uint64(i)|1; got != want {
			t.Fatalf("cell %d: mask %b, want %b after growth", i, got, want)
		}
	}
}

func TestMaskGridMarkWordsReturnsNewBits(t *testing.T) {
	g := NewMaskGridWords(1, 2)
	if g.Words() != 2 {
		t.Fatalf("Words() = %d, want 2", g.Words())
	}
	p := V(0.5, 0.5)
	newBits := make([]uint64, 2)
	g.MarkWords(p, []uint64{0b0101, 0b1000}, newBits)
	if newBits[0] != 0b0101 || newBits[1] != 0b1000 {
		t.Fatalf("first mark returned %b/%b, want 0101/1000", newBits[0], newBits[1])
	}
	g.MarkWords(p, []uint64{0b0011, 0b1100}, newBits)
	if newBits[0] != 0b0010 || newBits[1] != 0b0100 {
		t.Fatalf("overlapping mark returned %b/%b, want 0010/0100", newBits[0], newBits[1])
	}
	g.MarkWords(p, []uint64{0b0111, 0b1100}, newBits)
	if newBits[0] != 0 || newBits[1] != 0 {
		t.Fatalf("fully covered mark returned %b/%b, want 0/0", newBits[0], newBits[1])
	}
	acc := make([]uint64, 2)
	g.WordsAt(p, acc)
	if acc[0] != 0b0111 || acc[1] != 0b1100 {
		t.Fatalf("accumulated mask %b/%b, want 0111/1100", acc[0], acc[1])
	}
	if g.Cells() != 1 {
		t.Fatalf("cells %d, want 1", g.Cells())
	}
	g.WordsAt(V(50, 50), acc)
	if acc[0] != 0 || acc[1] != 0 {
		t.Fatalf("unmarked cell reads %b/%b, want zeros", acc[0], acc[1])
	}
}

// A multi-word grid must behave exactly like one single-word grid per word:
// the per-word newly-set bits and accumulated masks of random markings have
// to agree word for word, including across table growth.
func TestMaskGridWordsMatchPerWordGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const words = 3
	wide := NewMaskGridWords(0.75, words)
	narrow := make([]*MaskGrid, words)
	for w := range narrow {
		narrow[w] = NewMaskGrid(0.75)
	}
	mask := make([]uint64, words)
	newBits := make([]uint64, words)
	for i := 0; i < 4000; i++ {
		p := V((rng.Float64()-0.5)*100, (rng.Float64()-0.5)*100)
		for w := range mask {
			mask[w] = rng.Uint64()
		}
		wide.MarkWords(p, mask, newBits)
		for w := range mask {
			if got := narrow[w].MarkBits(p, mask[w]); got != newBits[w] {
				t.Fatalf("point %v word %d: new bits %b, per-word grid %b", p, w, newBits[w], got)
			}
		}
	}
	if wide.Cells() != narrow[0].Cells() {
		t.Fatalf("cell counts diverge: %d vs %d", wide.Cells(), narrow[0].Cells())
	}
	acc := make([]uint64, words)
	for i := 0; i < 1000; i++ {
		p := V((rng.Float64()-0.5)*100, (rng.Float64()-0.5)*100)
		wide.WordsAt(p, acc)
		for w := range acc {
			if got := narrow[w].BitsAt(p); got != acc[w] {
				t.Fatalf("point %v word %d: mask %b, per-word grid %b", p, w, acc[w], got)
			}
		}
	}
}

func TestMaskGridWordsResetReuse(t *testing.T) {
	g := NewMaskGridWords(1, 2)
	mask := []uint64{^uint64(0), 1}
	newBits := make([]uint64, 2)
	acc := make([]uint64, 2)
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			g.MarkWords(V(float64(i), float64(round)), mask, newBits)
		}
		if g.Cells() != 100 {
			t.Fatalf("round %d: cells %d, want 100", round, g.Cells())
		}
		g.Reset()
		if g.Cells() != 0 {
			t.Fatalf("round %d: cells after reset %d", round, g.Cells())
		}
		g.WordsAt(V(0, float64(round)), acc)
		if acc[0] != 0 || acc[1] != 0 {
			t.Fatalf("round %d: stale bits survive reset", round)
		}
	}
}
