package geom

import (
	"math/rand"
	"testing"
)

func TestMaskGridMarkBitsReturnsNewBits(t *testing.T) {
	g := NewMaskGrid(1)
	p := V(0.5, 0.5)
	if got := g.MarkBits(p, 0b0101); got != 0b0101 {
		t.Fatalf("first mark returned %b, want 0101", got)
	}
	if got := g.MarkBits(p, 0b0011); got != 0b0010 {
		t.Fatalf("overlapping mark returned %b, want 0010", got)
	}
	if got := g.MarkBits(p, 0b0111); got != 0 {
		t.Fatalf("fully covered mark returned %b, want 0", got)
	}
	if got := g.BitsAt(p); got != 0b0111 {
		t.Fatalf("accumulated mask %b, want 0111", got)
	}
	if g.Cells() != 1 {
		t.Fatalf("cells %d, want 1", g.Cells())
	}
}

func TestMaskGridCellAddressingMatchesOccupancyGrid(t *testing.T) {
	// A MaskGrid restricted to one bit must mark exactly the cells an
	// OccupancyGrid marks: same floor division, same packed key, so the
	// shared-expansion volumes equal the legacy Area counts cell-for-cell.
	rng := rand.New(rand.NewSource(8))
	mg := NewMaskGrid(0.75)
	og := NewOccupancyGrid(0.75)
	for i := 0; i < 5000; i++ {
		p := V((rng.Float64()-0.5)*200, (rng.Float64()-0.5)*200)
		newBit := mg.MarkBits(p, 1) != 0
		fresh := og.Mark(p)
		if newBit != fresh {
			t.Fatalf("point %v: MaskGrid new=%v OccupancyGrid new=%v", p, newBit, fresh)
		}
	}
	if mg.Cells() != og.Count() {
		t.Fatalf("cell counts diverge: %d vs %d", mg.Cells(), og.Count())
	}
}

func TestMaskGridResetReuse(t *testing.T) {
	g := NewMaskGrid(1)
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			g.MarkBits(V(float64(i), float64(round)), uint64(1)<<uint(i%64))
		}
		if g.Cells() != 100 {
			t.Fatalf("round %d: cells %d, want 100", round, g.Cells())
		}
		g.Reset()
		if g.Cells() != 0 {
			t.Fatalf("round %d: cells after reset %d", round, g.Cells())
		}
		if g.BitsAt(V(0, float64(round))) != 0 {
			t.Fatalf("round %d: stale bits survive reset", round)
		}
	}
}

func TestMaskGridGrowthPreservesMasks(t *testing.T) {
	g := NewMaskGrid(1)
	const n = 3000 // well past the initial table size, forcing rehashes
	for i := 0; i < n; i++ {
		g.MarkBits(V(float64(i), 0), uint64(i)|1)
	}
	if g.Cells() != n {
		t.Fatalf("cells %d, want %d", g.Cells(), n)
	}
	for i := 0; i < n; i++ {
		if got, want := g.BitsAt(V(float64(i), 0)), uint64(i)|1; got != want {
			t.Fatalf("cell %d: mask %b, want %b after growth", i, got, want)
		}
	}
}
