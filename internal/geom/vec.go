// Package geom provides the 2-D geometric primitives used throughout the
// iPrism reproduction: vectors, poses, oriented bounding boxes with
// separating-axis overlap tests, polygons, and occupancy grids for
// reach-tube volume estimation.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a point or displacement in the 2-D plane. Units are metres.
type Vec2 struct {
	X, Y float64
}

// V is shorthand for constructing a Vec2.
func V(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v · w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar cross product (z-component of v × w).
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// NormSq returns the squared Euclidean length of v.
func (v Vec2) NormSq() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// DistSq returns the squared Euclidean distance between v and w.
func (v Vec2) DistSq(w Vec2) float64 { return v.Sub(w).NormSq() }

// Unit returns the unit vector in the direction of v, or the zero vector if
// v has (near-)zero length.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n < 1e-12 {
		return Vec2{}
	}
	return v.Scale(1 / n)
}

// Rotate returns v rotated counter-clockwise by angle radians.
func (v Vec2) Rotate(angle float64) Vec2 {
	s, c := math.Sincos(angle)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Angle returns the direction of v in radians in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec2) Lerp(w Vec2, t float64) Vec2 {
	return Vec2{v.X + (w.X-v.X)*t, v.Y + (w.Y-v.Y)*t}
}

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// NormalizeAngle wraps an angle into (-π, π].
func NormalizeAngle(a float64) float64 {
	// Mod leaves |a| < 2π unchanged, so the (hot-path) common case of an
	// angle already within one turn skips it entirely without changing the
	// result.
	if a <= -2*math.Pi || a >= 2*math.Pi {
		a = math.Mod(a, 2*math.Pi)
	}
	switch {
	case a > math.Pi:
		a -= 2 * math.Pi
	case a <= -math.Pi:
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the signed smallest difference a-b wrapped into (-π, π].
func AngleDiff(a, b float64) float64 { return NormalizeAngle(a - b) }

// Clamp restricts x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
