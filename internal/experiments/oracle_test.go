package experiments

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// rearOracle: accelerate away from a closing rear actor unless the front
// gap is unsafe.
type rearOracle struct{}

func (rearOracle) Reset() {}
func (rearOracle) Mitigate(obs sim.Observation, ads vehicle.Control) (vehicle.Control, bool) {
	var rearClosing, frontGap float64 = 0, 1e9
	for _, a := range obs.Actors {
		dx := a.State.Pos.X - obs.Ego.Pos.X
		dy := a.State.Pos.Y - obs.Ego.Pos.Y
		if dy > 1.8 || dy < -1.8 {
			continue
		}
		if dx < 0 && a.State.Speed > obs.Ego.Speed {
			c := a.State.Speed - obs.Ego.Speed
			if c > rearClosing && dx > -80 {
				rearClosing = c
			}
		}
		if dx > 0 && dx < frontGap {
			frontGap = dx
		}
	}
	if rearClosing > 0 && frontGap > 25 {
		return vehicle.Control{Accel: obs.EgoParams.MaxAccel, Steer: ads.Steer}, true
	}
	return ads, false
}

func TestRearEndOracleAvoidability(t *testing.T) {
	opt := tinyOptions()
	scns := scenario.GenerateValid(scenario.RearEnd, 60, opt.Seed+4)
	lbc := func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }
	base, err := runSuite(scns, opt.Workers, lbc, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	var tas []int
	for i, o := range base {
		if o.Collision {
			tas = append(tas, i)
		}
	}
	mit, err := runSuite(scns, opt.Workers, lbc, func() (sim.Mitigator, error) { return rearOracle{}, nil }, false)
	if err != nil {
		t.Fatal(err)
	}
	saved := 0
	for _, i := range tas {
		if !mit[i].Collision {
			saved++
		}
	}
	t.Logf("rear-end oracle: TAS=%d saved=%d (%.0f%%)", len(tas), saved, 100*float64(saved)/float64(len(tas)))
	// Structural claims of the §V-C extension: braking cannot fix the
	// rear-end typology, but an acceleration oracle avoids a substantial
	// minority of accidents (the paper's SMC reaches 37%), while most
	// remain physically unavoidable.
	if frac := float64(len(tas)) / float64(len(scns)); frac < 0.5 {
		t.Errorf("rear-end TAS fraction = %.2f, want >= 0.5 (paper: 0.77)", frac)
	}
	savedFrac := float64(saved) / float64(len(tas))
	if savedFrac < 0.1 || savedFrac > 0.7 {
		t.Errorf("oracle save fraction = %.2f, want in [0.1, 0.7] (paper SMC: 0.37)", savedFrac)
	}
}
