package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestReportSmoke runs the one-command report generator at minimal scale
// and checks the document structure.
func TestReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full report")
	}
	opt := tinyOptions()
	opt.ScenariosPerTypology = 12
	opt.TrainEpisodes = 8

	var sb strings.Builder
	fixed := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return fixed }
	if err := Report(&sb, opt, clock); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# iPrism reproduction report",
		"## Table I",
		"## Table II",
		"## Tables III & IV",
		"## Fig. 5",
		"## Fig. 6",
		"## Fig. 7",
		"## Roundabout generalisation",
		"STI |",
		"2026-07-06T12:00:00Z",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportInvalidOptions(t *testing.T) {
	opt := DefaultOptions()
	opt.Workers = 0
	var sb strings.Builder
	if err := Report(&sb, opt, time.Now); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestActionAblationOnMissingSuite(t *testing.T) {
	if _, err := ActionAblationOn(nil, 99, tinyOptions()); err == nil {
		t.Error("missing suite accepted")
	}
}
