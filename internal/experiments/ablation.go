package experiments

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smc"
)

// ActionSetResult is one row of the action-space ablation.
type ActionSetResult struct {
	Name    string
	Actions []smc.Action
	TAS     int
	CA      int
	CAPct   float64
}

// ActionAblation studies the SMC's action space on the rear-end typology —
// the paper's §V-C argument: braking alone cannot mitigate a threat from
// behind, acceleration can, and the lane-change extension (§VII) adds a
// further escape dimension.
func ActionAblation(suites []Suite, opt Options) ([]ActionSetResult, error) {
	return ActionAblationOn(suites, scenario.RearEnd, opt)
}

// ActionAblationOn runs the action-space ablation on an arbitrary typology.
func ActionAblationOn(suites []Suite, ty scenario.Typology, opt Options) ([]ActionSetResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	rear, ok := findSuite(suites, ty)
	if !ok {
		return nil, fmt.Errorf("experiments: missing %v suite", ty)
	}
	eval, err := stiEvaluator(opt)
	if err != nil {
		return nil, err
	}
	trainIdx, err := selectTrainingScenario(rear, opt, eval)
	if err != nil {
		return nil, err
	}
	lbc := func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }
	tas := rear.Accidents()

	sets := []ActionSetResult{
		{Name: "brake only", Actions: []smc.Action{smc.NoOp, smc.Brake}},
		{Name: "brake+accelerate", Actions: []smc.Action{smc.NoOp, smc.Brake, smc.Accelerate}},
		{Name: "brake+accel+lane-change", Actions: []smc.Action{
			smc.NoOp, smc.Brake, smc.Accelerate, smc.LaneLeft, smc.LaneRight,
		}},
	}
	for i := range sets {
		// The same training seed as the Table III rear-end SMC, so the only
		// difference between rows is the action set.
		cfg := opt.smcConfig(true, opt.Seed+7)
		cfg.Actions = sets[i].Actions
		ctrl, _, err := smc.Train([]scenario.Scenario{rear.Scenarios[trainIdx]}, lbc, cfg, opt.TrainEpisodes)
		if err != nil {
			return nil, fmt.Errorf("experiments: train %q: %w", sets[i].Name, err)
		}
		r, err := evaluateAgent(rear.Scenarios, tas, opt, lbc,
			func() (sim.Mitigator, error) { return ctrl.CloneForRun(), nil })
		if err != nil {
			return nil, err
		}
		sets[i].TAS = r.TAS
		sets[i].CA = r.CA
		sets[i].CAPct = r.CAPct
	}
	return sets, nil
}
