package experiments

import (
	"testing"

	"repro/internal/scenario"
)

func TestPKLDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	suites, opt := buildTinySuites(t)
	all, holdout, err := FitPKLModels(suites, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PKL-All weights:     %v", all.W)
	t.Logf("PKL-Holdout weights: %v", holdout.W)
	if all.W == holdout.W {
		t.Error("PKL-All and PKL-Holdout fitted identical weights; holdout split broken")
	}
	for _, suite := range suites {
		if suite.Typology == scenario.FrontAccident {
			continue
		}
		acc := suite.Accidents()
		if len(acc) == 0 {
			continue
		}
		tw, err := newTraceWorld(suite.Scenarios[acc[0]], suite.Outcomes[acc[0]].Trace)
		if err != nil {
			t.Fatal(err)
		}
		maxAll, maxHold := 0.0, 0.0
		var tail []float64
		for ts := 0; ts < tw.steps(); ts += opt.MetricStride {
			sc := tw.scene(ts, opt.Reach.Horizon)
			v := all.PKLCombined(sc)
			tail = append(tail, v)
			if v > maxAll {
				maxAll = v
			}
			if v := holdout.PKLCombined(sc); v > maxHold {
				maxHold = v
			}
		}
		if len(tail) > 8 {
			tail = tail[len(tail)-8:]
		}
		t.Logf("%-14s max PKL-All %.3f  max PKL-Holdout %.3f  tail %v", suite.Typology, maxAll, maxHold, tail)
		if maxAll <= 0 {
			t.Errorf("%v: PKL-All never flags an accident trace", suite.Typology)
		}
	}
}
