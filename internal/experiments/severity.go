package experiments

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/stats"
)

// SeverityResult compares collision severity (relative impact speed) with
// and without iPrism on one typology — an extension analysis: even where
// mitigation cannot prevent the accident, proactive braking sheds kinetic
// energy before impact.
type SeverityResult struct {
	Typology scenario.Typology
	// Baseline statistics over the baseline agent's collisions.
	BaselineCollisions int
	BaselineMeanImpact float64 // m/s
	BaselineP90Impact  float64
	// Mitigated statistics over the *remaining* collisions with iPrism.
	MitigatedCollisions int
	MitigatedMeanImpact float64
	MitigatedP90Impact  float64
}

// Severity trains (or reuses) an SMC for the typology and measures impact
// speeds with and without it.
func Severity(suites []Suite, ty scenario.Typology, ctrl *smc.SMC, opt Options) (SeverityResult, error) {
	res := SeverityResult{Typology: ty}
	suite, ok := findSuite(suites, ty)
	if !ok {
		return res, fmt.Errorf("experiments: missing %v suite", ty)
	}
	if err := opt.Validate(); err != nil {
		return res, err
	}
	lbc := func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }

	var base []float64
	for _, o := range suite.Outcomes {
		if o.Collision {
			base = append(base, o.ImpactSpeed)
		}
	}
	res.BaselineCollisions = len(base)
	res.BaselineMeanImpact = stats.Mean(base)
	res.BaselineP90Impact = stats.Percentile(base, 90)

	if ctrl == nil {
		eval, err := stiEvaluator(opt)
		if err != nil {
			return res, err
		}
		idx, err := selectTrainingScenario(suite, opt, eval)
		if err != nil {
			return res, err
		}
		ctrl, _, err = smc.Train([]scenario.Scenario{suite.Scenarios[idx]}, lbc,
			opt.smcConfig(true, opt.Seed), opt.TrainEpisodes)
		if err != nil {
			return res, err
		}
	}
	outcomes, err := runSuite(suite.Scenarios, opt.Workers, lbc,
		func() (sim.Mitigator, error) { return ctrl.CloneForRun(), nil }, false)
	if err != nil {
		return res, err
	}
	var mitigated []float64
	for _, o := range outcomes {
		if o.Collision {
			mitigated = append(mitigated, o.ImpactSpeed)
		}
	}
	res.MitigatedCollisions = len(mitigated)
	res.MitigatedMeanImpact = stats.Mean(mitigated)
	res.MitigatedP90Impact = stats.Percentile(mitigated, 90)
	return res, nil
}
