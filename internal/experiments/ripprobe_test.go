package experiments

import (
	"testing"

	"repro/internal/agent"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func TestRIPBaselineCrashProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("probe")
	}
	opt := tinyOptions()
	opt.ScenariosPerTypology = 40
	for _, ty := range []scenario.Typology{scenario.GhostCutIn, scenario.LeadCutIn, scenario.LeadSlowdown} {
		scns := scenario.GenerateValid(ty, opt.ScenariosPerTypology, opt.Seed+int64(ty)-1)
		rip, err := runSuite(scns, opt.Workers, func() sim.Driver { return agent.NewRIP(agent.DefaultRIPConfig()) }, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		lbc, err := runSuite(scns, opt.Workers, func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		rc, lc := 0, 0
		for i := range scns {
			if rip[i].Collision {
				rc++
			}
			if lbc[i].Collision {
				lc++
			}
		}
		t.Logf("%-14s RIP %d/%d   LBC %d/%d", ty, rc, len(scns), lc, len(scns))
		// §V-C: despite targeting OOD scenarios, RIP underperforms the
		// baseline on the NHTSA typologies.
		if rc == 0 {
			t.Errorf("%v: RIP crashed in no scenarios; its OOD weakness is gone", ty)
		}
		if ty != scenario.GhostCutIn && rc <= lc {
			t.Errorf("%v: RIP (%d) should crash at least as often as LBC (%d)", ty, rc, lc)
		}
	}
}
