// Package experiments regenerates every table and figure of the paper's
// evaluation section on top of the simulator substrate: Table I (scenario
// suite + baseline accidents), Table II (LTFMA per risk metric), Table III
// (mitigation efficacy), Table IV (mitigation activation timing), Fig. 4
// (risk characterisation traces), Fig. 5 (STI with and without iPrism),
// Fig. 6 (dataset STI distribution), Fig. 7 (mined case studies), and the
// roundabout generalisation study.
package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/reach"
	"repro/internal/rl"
	"repro/internal/smc"
	"repro/internal/sti"
)

// Options scale the experiments. Paper scale is 1000 scenarios per typology
// and 100 training episodes; the defaults are sized for minutes-level runs
// with the same qualitative results.
type Options struct {
	// ScenariosPerTypology is the suite size per typology (paper: 1000).
	ScenariosPerTypology int
	// Seed drives scenario sampling and RL training.
	Seed int64
	// Workers bounds the parallel episode runners.
	Workers int
	// TrainEpisodes is the SMC training budget per typology (paper: 100).
	TrainEpisodes int
	// MetricStride evaluates offline risk metrics every N simulator steps.
	MetricStride int
	// Reach configures every STI evaluation.
	Reach reach.Config
}

// DefaultOptions returns a laptop-scale configuration.
func DefaultOptions() Options {
	return Options{
		ScenariosPerTypology: 100,
		Seed:                 2024,
		Workers:              runtime.GOMAXPROCS(0),
		TrainEpisodes:        60,
		MetricStride:         2,
		Reach:                reach.DefaultConfig(),
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.ScenariosPerTypology < 1 {
		return fmt.Errorf("experiments: need at least one scenario per typology, got %d", o.ScenariosPerTypology)
	}
	if o.Workers < 1 {
		return fmt.Errorf("experiments: need at least one worker, got %d", o.Workers)
	}
	if o.TrainEpisodes < 1 {
		return fmt.Errorf("experiments: need at least one training episode, got %d", o.TrainEpisodes)
	}
	if o.MetricStride < 1 {
		return fmt.Errorf("experiments: metric stride must be >= 1, got %d", o.MetricStride)
	}
	return o.Reach.Validate()
}

// smcConfig builds the SMC configuration for the options.
func (o Options) smcConfig(useSTI bool, seed int64) smc.Config {
	cfg := smc.DefaultConfig()
	cfg.Reach = o.Reach
	cfg.UseSTI = useSTI
	ddqn := rl.DefaultDDQNConfig()
	ddqn.Seed = seed
	// Roughly half the training budget is exploration.
	ddqn.EpsDecaySteps = o.TrainEpisodes * 100
	cfg.DDQN = ddqn
	return cfg
}

// stiEvaluator constructs an evaluator from the options. Experiments
// parallelise at the episode/trace level via o.Workers, so the evaluator's
// inner counterfactual fan-out is pinned to one worker — total concurrency
// stays bounded by o.Workers instead of multiplying with it. The shared-
// expansion engine is on: results are bitwise-identical to the legacy
// per-actor path (the Shared/MaskGrid differential suites) and dense scenes
// evaluate superlinearly faster.
func stiEvaluator(o Options) (*sti.Evaluator, error) {
	return sti.NewEvaluatorOptions(o.Reach, sti.Options{Workers: 1, SharedExpansion: true})
}
