package experiments

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/stats"
	"repro/internal/sti"
)

// Agent row labels of Table III.
const (
	AgentLBCiPrism = "LBC+SMC w/ STI (LBC+iPrism)"
	AgentLBCNoSTI  = "LBC+SMC w/o STI"
	AgentLBCACA    = "LBC+TTC-based ACA"
	AgentRIPiPrism = "RIP+SMC w/ STI (RIP+iPrism)"
)

// AgentTypologyResult is one cell group of Table III: an agent's accident
// prevention on one typology.
type AgentTypologyResult struct {
	Typology scenario.Typology
	TAS      int     // accident scenarios of the underlying baseline agent
	CA       int     // of those, how many the mitigation prevented
	CAPct    float64 // CA / TAS × 100
	TCRPct   float64 // total collisions of the mitigated agent / suite size × 100
	// MitigationTimes collects the first-mitigation times (s) across the
	// suite for Table IV (only scenarios where mitigation fired).
	MitigationTimes []float64
}

// TableIIIResult holds the full mitigation comparison.
type TableIIIResult struct {
	Typologies []scenario.Typology
	// Rows[agent][i] is the agent's result on Typologies[i].
	Rows map[string][]AgentTypologyResult
	// RearEnd is the §V-C extension: SMC with acceleration on the rear-end
	// typology (TAS from the LBC baseline).
	RearEnd AgentTypologyResult
	// TrainScenarioID[typology] records which instance trained the SMC.
	TrainScenarioID map[scenario.Typology]int
}

// mitigationTypologies are the Table III columns.
var mitigationTypologies = []scenario.Typology{
	scenario.GhostCutIn, scenario.LeadCutIn, scenario.LeadSlowdown,
}

// TableIII trains the SMCs and runs the full §V-C comparison.
func TableIII(suites []Suite, opt Options) (TableIIIResult, error) {
	res := TableIIIResult{
		Rows:            make(map[string][]AgentTypologyResult),
		TrainScenarioID: make(map[scenario.Typology]int),
	}
	if err := opt.Validate(); err != nil {
		return res, err
	}
	eval, err := stiEvaluator(opt)
	if err != nil {
		return res, err
	}
	lbc := func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }
	rip := func() sim.Driver { return agent.NewRIP(agent.DefaultRIPConfig()) }

	for _, ty := range mitigationTypologies {
		suite, ok := findSuite(suites, ty)
		if !ok {
			return res, fmt.Errorf("experiments: missing %v suite", ty)
		}
		trainIdx, err := selectTrainingScenario(suite, opt, eval)
		if err != nil {
			return res, err
		}
		res.Typologies = append(res.Typologies, ty)
		res.TrainScenarioID[ty] = trainIdx
		trainScn := []scenario.Scenario{suite.Scenarios[trainIdx]}

		withSTI, _, err := smc.Train(trainScn, lbc, opt.smcConfig(true, opt.Seed), opt.TrainEpisodes)
		if err != nil {
			return res, fmt.Errorf("experiments: train %v SMC: %w", ty, err)
		}
		withoutSTI, _, err := smc.Train(trainScn, lbc, opt.smcConfig(false, opt.Seed), opt.TrainEpisodes)
		if err != nil {
			return res, fmt.Errorf("experiments: train %v ablation SMC: %w", ty, err)
		}

		// LBC-based rows share the LBC TAS set.
		tas := suite.Accidents()
		for name, mit := range map[string]func() (sim.Mitigator, error){
			AgentLBCiPrism: func() (sim.Mitigator, error) { return withSTI.CloneForRun(), nil },
			AgentLBCNoSTI:  func() (sim.Mitigator, error) { return withoutSTI.CloneForRun(), nil },
			AgentLBCACA:    func() (sim.Mitigator, error) { return agent.NewACA(agent.DefaultACAConfig()), nil },
		} {
			r, err := evaluateAgent(suite.Scenarios, tas, opt, lbc, mit)
			if err != nil {
				return res, err
			}
			r.Typology = ty
			res.Rows[name] = append(res.Rows[name], r)
		}

		// RIP baseline has its own TAS set; iPrism (trained on LBC) is
		// transferred unchanged — the generalisation claim.
		ripOutcomes, err := runSuite(suite.Scenarios, opt.Workers, rip, nil, false)
		if err != nil {
			return res, err
		}
		var ripTAS []int
		for i, o := range ripOutcomes {
			if o.Collision {
				ripTAS = append(ripTAS, i)
			}
		}
		r, err := evaluateAgent(suite.Scenarios, ripTAS, opt, rip,
			func() (sim.Mitigator, error) { return withSTI.CloneForRun(), nil })
		if err != nil {
			return res, err
		}
		r.Typology = ty
		res.Rows[AgentRIPiPrism] = append(res.Rows[AgentRIPiPrism], r)
	}

	// Rear-end extension: braking alone cannot fix it; the SMC's
	// acceleration action can (§V-C "Extension to other mitigation
	// actions").
	rear, ok := findSuite(suites, scenario.RearEnd)
	if !ok {
		return res, fmt.Errorf("experiments: missing rear-end suite")
	}
	trainIdx, err := selectTrainingScenario(rear, opt, eval)
	if err != nil {
		return res, err
	}
	res.TrainScenarioID[scenario.RearEnd] = trainIdx
	rearSMC, _, err := smc.Train([]scenario.Scenario{rear.Scenarios[trainIdx]}, lbc,
		opt.smcConfig(true, opt.Seed+7), opt.TrainEpisodes)
	if err != nil {
		return res, err
	}
	rearRes, err := evaluateAgent(rear.Scenarios, rear.Accidents(), opt, lbc,
		func() (sim.Mitigator, error) { return rearSMC.CloneForRun(), nil })
	if err != nil {
		return res, err
	}
	rearRes.Typology = scenario.RearEnd
	res.RearEnd = rearRes
	return res, nil
}

// evaluateAgent runs driver+mitigator over the suite and scores it against
// the given TAS set.
func evaluateAgent(scns []scenario.Scenario, tas []int, opt Options, makeDriver func() sim.Driver, makeMitigator func() (sim.Mitigator, error)) (AgentTypologyResult, error) {
	outcomes, err := runSuite(scns, opt.Workers, makeDriver, makeMitigator, false)
	if err != nil {
		return AgentTypologyResult{}, err
	}
	r := AgentTypologyResult{TAS: len(tas)}
	collisions := 0
	for i, o := range outcomes {
		if o.Collision {
			collisions++
		}
		if t := o.FirstMitigationTime(scns[i].Dt); t >= 0 {
			r.MitigationTimes = append(r.MitigationTimes, t)
		}
	}
	for _, idx := range tas {
		if !outcomes[idx].Collision {
			r.CA++
		}
	}
	if r.TAS > 0 {
		r.CAPct = float64(r.CA) / float64(r.TAS) * 100
	}
	if len(scns) > 0 {
		r.TCRPct = float64(collisions) / float64(len(scns)) * 100
	}
	return r, nil
}

// selectTrainingScenario picks, among the suite's accident scenarios, the
// one with the highest average combined STI before the accident (§IV-B1).
func selectTrainingScenario(suite Suite, opt Options, eval *sti.Evaluator) (int, error) {
	accidents := suite.Accidents()
	if len(accidents) == 0 {
		return 0, fmt.Errorf("experiments: %v has no accident scenarios to train on", suite.Typology)
	}
	best, bestAvg := accidents[0], -1.0
	for _, idx := range accidents {
		tw, err := newTraceWorld(suite.Scenarios[idx], suite.Outcomes[idx].Trace)
		if err != nil {
			return 0, err
		}
		var vals []float64
		last := suite.Outcomes[idx].CollisionStep
		if last >= tw.steps() {
			last = tw.steps() - 1
		}
		for t := 0; t <= last; t += opt.MetricStride * 3 {
			vals = append(vals, eval.EvaluateCombined(tw.m, tw.ego(t), tw.actors(t), tw.futures(t)))
		}
		if avg := stats.Mean(vals); avg > bestAvg {
			best, bestAvg = idx, avg
		}
	}
	return best, nil
}

func findSuite(suites []Suite, ty scenario.Typology) (Suite, bool) {
	for _, s := range suites {
		if s.Typology == ty {
			return s, true
		}
	}
	return Suite{}, false
}

// TableIVRow is one column of Table IV: average first-mitigation times.
type TableIVRow struct {
	Typology scenario.Typology
	IPrism   float64 // LBC+SMC w/ STI average activation time (s)
	ACA      float64 // LBC+TTC-based ACA average activation time (s)
	LeadTime float64 // ACA − iPrism (positive: iPrism acts earlier)
}

// TableIV derives the activation-timing comparison from the Table III runs.
func TableIV(t3 TableIIIResult) []TableIVRow {
	rows := make([]TableIVRow, 0, len(t3.Typologies))
	for i, ty := range t3.Typologies {
		ip := stats.Mean(t3.Rows[AgentLBCiPrism][i].MitigationTimes)
		aca := stats.Mean(t3.Rows[AgentLBCACA][i].MitigationTimes)
		rows = append(rows, TableIVRow{
			Typology: ty,
			IPrism:   ip,
			ACA:      aca,
			LeadTime: aca - ip,
		})
	}
	return rows
}
