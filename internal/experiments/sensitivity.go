package experiments

import (
	"fmt"
	"sort"

	"repro/internal/scenario"
	"repro/internal/stats"
)

// SensitivityRow reports how strongly one hyperparameter drives accidents:
// the point-biserial correlation between the hyperparameter's value and the
// crash indicator across the suite. §IV-B1 argues that "safety criticality
// varies with hyperparameter values" — this quantifies it per knob.
type SensitivityRow struct {
	Hyperparameter string
	Correlation    float64
}

// Sensitivity computes per-hyperparameter crash correlations for a suite.
// Rows are sorted by absolute correlation, strongest first.
func Sensitivity(suite Suite) ([]SensitivityRow, error) {
	if len(suite.Scenarios) < 3 {
		return nil, fmt.Errorf("experiments: need at least 3 scenarios, got %d", len(suite.Scenarios))
	}
	crashes := make([]float64, len(suite.Scenarios))
	for i, o := range suite.Outcomes {
		if o.Collision {
			crashes[i] = 1
		}
	}
	var rows []SensitivityRow
	for _, name := range scenario.Hyperparameters(suite.Typology) {
		values := make([]float64, len(suite.Scenarios))
		for i, s := range suite.Scenarios {
			values[i] = s.Hyper[name]
		}
		rows = append(rows, SensitivityRow{
			Hyperparameter: name,
			Correlation:    stats.Pearson(values, crashes),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		return abs(rows[i].Correlation) > abs(rows[j].Correlation)
	})
	return rows, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
