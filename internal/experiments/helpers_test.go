package experiments

import (
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func TestMeanSDString(t *testing.T) {
	cell := MeanSD{Mean: 3.694, SD: 0.125}
	if got := cell.String(); got != "3.69 (0.12)" {
		t.Errorf("String = %q", got)
	}
}

func TestTableIVEmpty(t *testing.T) {
	rows := TableIV(TableIIIResult{})
	if len(rows) != 0 {
		t.Errorf("rows = %v", rows)
	}
}

func TestFindSuite(t *testing.T) {
	suites := []Suite{{Typology: scenario.GhostCutIn}, {Typology: scenario.RearEnd}}
	if s, ok := findSuite(suites, scenario.RearEnd); !ok || s.Typology != scenario.RearEnd {
		t.Error("findSuite missed an existing suite")
	}
	if _, ok := findSuite(suites, scenario.LeadCutIn); ok {
		t.Error("findSuite invented a suite")
	}
}

func TestSuiteAccidents(t *testing.T) {
	s := Suite{Outcomes: []sim.Outcome{
		{Collision: true}, {Collision: false}, {Collision: true},
	}}
	got := s.Accidents()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Accidents = %v", got)
	}
}

func TestTableIEmptySuites(t *testing.T) {
	if rows := TableI(nil); len(rows) != 0 {
		t.Errorf("rows = %v", rows)
	}
}

func TestContainsHelper(t *testing.T) {
	if !contains([]int{1, 3, 5}, 3) || contains([]int{1, 3, 5}, 2) {
		t.Error("contains misbehaves")
	}
}

func TestDemonstratedChoiceMapping(t *testing.T) {
	tests := []struct {
		accel float64
		want  int
	}{
		{-4, 1},  // brake → longitudinal 0 → 0*3 + keep(1)
		{0, 4},   // coast → longitudinal 1 → 1*3 + keep(1)
		{0.5, 4}, // mild accel still counts as "keep speed"
		{3, 7},   // accelerate → longitudinal 2 → 2*3 + keep(1)
	}
	for _, tt := range tests {
		tw := &traceWorld{trace: []sim.StepRecord{{
			EgoControl: vehicle.Control{Accel: tt.accel},
		}}}
		if got := demonstratedChoice(tw, 0); got != tt.want {
			t.Errorf("demonstratedChoice(accel=%v) = %d, want %d", tt.accel, got, tt.want)
		}
	}
}

func TestSeverityMissingSuite(t *testing.T) {
	if _, err := Severity(nil, scenario.RearEnd, nil, tinyOptions()); err == nil {
		t.Error("missing suite accepted")
	}
}

func TestRoundaboutNeedsController(t *testing.T) {
	opt := tinyOptions()
	opt.ScenariosPerTypology = 2
	if _, err := Roundabout(nil, opt); err == nil {
		t.Error("nil controller accepted")
	}
}
