package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/dataset"
	"repro/internal/scenario"
)

// Report runs the complete evaluation — every table and figure — and
// writes a markdown report to w. This is the "one command reproduces the
// paper" entry point behind cmd/iprism-report. The clock parameter stamps
// the report header (pass time.Now from main).
func Report(w io.Writer, opt Options, clock func() time.Time) error {
	if err := opt.Validate(); err != nil {
		return err
	}
	started := clock()
	fmt.Fprintf(w, "# iPrism reproduction report\n\n")
	fmt.Fprintf(w, "Generated %s · %d scenarios/typology · %d training episodes · seed %d\n\n",
		started.Format(time.RFC3339), opt.ScenariosPerTypology, opt.TrainEpisodes, opt.Seed)

	fmt.Fprintf(w, "## Table I — scenario suites and baseline accidents\n\n")
	suites, err := BuildSuites(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| Typology | Instances | Baseline accidents | Paper (n=1000) |\n|---|---|---|---|\n")
	paperT1 := map[scenario.Typology]string{
		scenario.GhostCutIn: "519", scenario.LeadCutIn: "170",
		scenario.LeadSlowdown: "118", scenario.FrontAccident: "0 (of 810)",
		scenario.RearEnd: "770",
	}
	for _, r := range TableI(suites) {
		fmt.Fprintf(w, "| %s | %d | %d | %s |\n", r.Typology, r.Instances, r.Accidents, paperT1[r.Typology])
	}

	fmt.Fprintf(w, "\n## Table II — LTFMA (seconds)\n\n")
	t2, err := TableII(suites, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| Metric |")
	for _, ty := range t2.Typologies {
		fmt.Fprintf(w, " %s |", ty)
	}
	fmt.Fprintf(w, " Average | Paper avg |\n|---|")
	for range t2.Typologies {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintf(w, "---|---|\n")
	paperT2 := map[string]float64{
		"TTC": 0.83, "Dist. CIPA": 1.38, "PKL-All": 0.75, "PKL-Holdout": 1.19, "STI": 3.69,
	}
	for _, name := range MetricNames {
		fmt.Fprintf(w, "| %s |", name)
		for _, cell := range t2.LTFMA[name] {
			fmt.Fprintf(w, " %s |", cell)
		}
		fmt.Fprintf(w, " %.2f | %.2f |\n", t2.Average[name], paperT2[name])
	}

	fmt.Fprintf(w, "\n## Tables III & IV — mitigation efficacy and timing\n\n")
	t3, err := TableIII(suites, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| Agent |")
	for _, ty := range t3.Typologies {
		fmt.Fprintf(w, " %s CA%%/TCR%% |", ty)
	}
	fmt.Fprintf(w, "\n|---|")
	for range t3.Typologies {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintf(w, "\n")
	for _, name := range []string{AgentLBCiPrism, AgentLBCNoSTI, AgentLBCACA, AgentRIPiPrism} {
		fmt.Fprintf(w, "| %s |", name)
		for _, r := range t3.Rows[name] {
			fmt.Fprintf(w, " %.0f / %.1f |", r.CAPct, r.TCRPct)
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "\nRear-end extension (acceleration): CA %d/%d = %.0f%% (paper 37%%)\n\n",
		t3.RearEnd.CA, t3.RearEnd.TAS, t3.RearEnd.CAPct)
	fmt.Fprintf(w, "| Typology | iPrism first action (s) | ACA first action (s) | Lead time (s) |\n|---|---|---|---|\n")
	for _, row := range TableIV(t3) {
		fmt.Fprintf(w, "| %s | %.2f | %.2f | %.2f |\n", row.Typology, row.IPrism, row.ACA, row.LeadTime)
	}

	fmt.Fprintf(w, "\n## Fig. 5 — ghost cut-in STI with and without iPrism\n\n")
	ctrl, err := TrainGhostCutInSMC(suites, opt)
	if err != nil {
		return err
	}
	f5, err := Fig5(suites, ctrl, opt, 12)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "STI peak: LBC %.2f vs LBC+iPrism %.2f (paper: iPrism consistently lower)\n",
		seriesPeak(f5.LBC.Mean), seriesPeak(f5.IPrism.Mean))

	fmt.Fprintf(w, "\n## Fig. 6 — real-world-corpus STI distribution\n\n")
	f6, err := Fig6(dataset.DefaultCorpusConfig(), opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| | p50 | p75 | p90 | p99 |\n|---|---|---|---|---|\n")
	fmt.Fprintf(w, "| actor STI | %.2f | %.2f | %.2f | %.2f |\n", f6.Actor.P50, f6.Actor.P75, f6.Actor.P90, f6.Actor.P99)
	fmt.Fprintf(w, "| combined STI | %.2f | %.2f | %.2f | %.2f |\n", f6.Combined.P50, f6.Combined.P75, f6.Combined.P90, f6.Combined.P99)
	fmt.Fprintf(w, "\nActor STI exactly zero: %.0f%% of %d samples (paper: ~90%%).\n", f6.ActorZeroFraction*100, f6.Samples)

	fmt.Fprintf(w, "\n## Fig. 7 — case studies\n\n")
	f7, err := Fig7(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| Case | Key-actor STI | Combined |\n|---|---|---|\n")
	for _, c := range f7 {
		fmt.Fprintf(w, "| %s | %.2f | %.2f |\n", c.Name, c.KeySTI, c.Combined)
	}

	fmt.Fprintf(w, "\n## Roundabout generalisation\n\n")
	rb, err := Roundabout(ctrl, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ring pilot: %d/%d collisions; with transferred iPrism: %d/%d (%.0f%% of pilot accidents mitigated; paper: 18.6%%).\n",
		rb.RIPCollisions, rb.Instances, rb.IPrismCollisions, rb.Instances, rb.Mitigated*100)

	fmt.Fprintf(w, "\n---\nTotal wall-clock: %s\n", clock().Sub(started).Round(time.Second))
	return nil
}

func seriesPeak(xs []float64) float64 {
	peak := 0.0
	for _, x := range xs {
		if x > peak {
			peak = x
		}
	}
	return peak
}
