package experiments

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/stats"
	"repro/internal/sti"
)

// Fig4Series is the mean±SD time series of one metric on one typology,
// split into safe and accident scenario populations (the two line styles of
// Fig. 4).
type Fig4Series struct {
	Typology scenario.Typology
	Metric   string // "STI", "PKL", "TTC"
	Safe     stats.Series
	Accident stats.Series
	// Dt is the time distance between consecutive series points.
	Dt float64
}

// Fig4 computes the risk characterisation traces for every typology and
// the three plotted metrics.
func Fig4(suites []Suite, opt Options) ([]Fig4Series, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	eval, err := stiEvaluator(opt)
	if err != nil {
		return nil, err
	}
	pklAll, _, err := FitPKLModels(suites, opt)
	if err != nil {
		return nil, err
	}
	var out []Fig4Series
	for _, suite := range suites {
		safe := map[string][][]float64{}
		accident := map[string][][]float64{}
		for i := range suite.Scenarios {
			tw, err := newTraceWorld(suite.Scenarios[i], suite.Outcomes[i].Trace)
			if err != nil {
				return nil, err
			}
			traces := metricTraces(tw, opt, eval, pklAll)
			dst := safe
			if suite.Outcomes[i].Collision {
				dst = accident
			}
			for name, tr := range traces {
				dst[name] = append(dst[name], tr)
			}
		}
		for _, name := range []string{"STI", "PKL", "TTC", "CIPA"} {
			out = append(out, Fig4Series{
				Typology: suite.Typology,
				Metric:   name,
				Safe:     stats.Aggregate(safe[name]),
				Accident: stats.Aggregate(accident[name]),
				Dt:       suite.Scenarios[0].Dt * float64(opt.MetricStride),
			})
		}
	}
	return out, nil
}

// metricTraces computes the STI/PKL/TTC traces of one episode.
func metricTraces(tw *traceWorld, opt Options, eval *sti.Evaluator, pkl *metrics.PKLModel) map[string][]float64 {
	out := map[string][]float64{}
	for t := 0; t < tw.steps(); t += opt.MetricStride {
		sc := tw.scene(t, opt.Reach.Horizon)
		out["STI"] = append(out["STI"], eval.EvaluateCombined(tw.m, sc.Ego, sc.Actors, sc.Trajs))
		out["PKL"] = append(out["PKL"], pkl.PKLCombined(sc))
		ttc := metrics.TTC(sc)
		if ttc > 10 {
			ttc = 10 // cap +Inf for plottable series, as in Fig. 4's axes
		}
		out["TTC"] = append(out["TTC"], ttc)
		// The paper computes Dist. CIPA too but omits its plot for space,
		// noting the trends are similar to TTC's; the CSV includes it.
		cipa := metrics.DistCIPA(sc)
		if cipa > 60 {
			cipa = 60
		}
		out["CIPA"] = append(out["CIPA"], cipa)
	}
	return out
}

// Fig5Result holds the ghost cut-in STI traces with and without iPrism.
type Fig5Result struct {
	LBC    stats.Series
	IPrism stats.Series
	Dt     float64
}

// Fig5 re-runs a sample of ghost cut-in scenarios under the bare baseline
// and under LBC+iPrism, recording combined STI traces for both.
func Fig5(suites []Suite, ctrl *smc.SMC, opt Options, sample int) (Fig5Result, error) {
	var res Fig5Result
	suite, ok := findSuite(suites, scenario.GhostCutIn)
	if !ok {
		return res, fmt.Errorf("experiments: missing ghost cut-in suite")
	}
	if err := opt.Validate(); err != nil {
		return res, err
	}
	eval, err := stiEvaluator(opt)
	if err != nil {
		return res, err
	}
	if sample <= 0 || sample > len(suite.Scenarios) {
		sample = len(suite.Scenarios)
	}
	var lbcTraces, iprismTraces [][]float64
	for i := 0; i < sample; i++ {
		scn := suite.Scenarios[i]
		// Baseline traces come from the recorded suite run.
		tw, err := newTraceWorld(scn, suite.Outcomes[i].Trace)
		if err != nil {
			return res, err
		}
		lbcTraces = append(lbcTraces, stiTrace(tw, opt, eval))

		// Mitigated run.
		w, err := scn.Build()
		if err != nil {
			return res, err
		}
		out := sim.Run(w, agent.NewLBC(agent.DefaultLBCConfig()), ctrl.CloneForRun(),
			sim.RunConfig{MaxSteps: scn.MaxSteps, RecordTrace: true})
		tw2, err := newTraceWorld(scn, out.Trace)
		if err != nil {
			return res, err
		}
		iprismTraces = append(iprismTraces, stiTrace(tw2, opt, eval))
	}
	res.LBC = stats.Aggregate(lbcTraces)
	res.IPrism = stats.Aggregate(iprismTraces)
	res.Dt = suite.Scenarios[0].Dt * float64(opt.MetricStride)
	return res, nil
}

func stiTrace(tw *traceWorld, opt Options, eval *sti.Evaluator) []float64 {
	var out []float64
	for t := 0; t < tw.steps(); t += opt.MetricStride {
		out = append(out, eval.EvaluateCombined(tw.m, tw.ego(t), tw.actors(t), tw.futures(t)))
	}
	return out
}

// Fig6Result is the dataset STI characterisation (percentile rows).
type Fig6Result struct {
	Actor    dataset.PercentileRow
	Combined dataset.PercentileRow
	// ActorZeroFraction is the share of exactly-zero per-actor samples.
	ActorZeroFraction float64
	Samples           int
}

// Fig6 generates the synthetic real-world corpus and characterises its STI
// distribution.
func Fig6(corpus dataset.CorpusConfig, opt Options) (Fig6Result, error) {
	var res Fig6Result
	logs, err := dataset.GenerateCorpus(corpus)
	if err != nil {
		return res, err
	}
	eval, err := stiEvaluator(opt)
	if err != nil {
		return res, err
	}
	c := dataset.Characterize(logs, eval, opt.MetricStride*3)
	res.Actor = dataset.Row(c.ActorSTI)
	res.Combined = dataset.Row(c.CombinedSTI)
	res.ActorZeroFraction = dataset.ZeroFraction(c.ActorSTI)
	res.Samples = len(c.CombinedSTI)
	return res, nil
}

// Fig7Case is one evaluated case study.
type Fig7Case struct {
	Name     string
	PerActor []float64
	Combined float64
	KeyActor int
	KeySTI   float64
}

// Fig7 evaluates the four §V-D case studies.
func Fig7(opt Options) ([]Fig7Case, error) {
	eval, err := stiEvaluator(opt)
	if err != nil {
		return nil, err
	}
	var out []Fig7Case
	for _, c := range dataset.CaseStudies() {
		res := c.Evaluate(eval)
		out = append(out, Fig7Case{
			Name:     c.Name,
			PerActor: res.PerActor,
			Combined: res.Combined,
			KeyActor: c.KeyActor,
			KeySTI:   res.PerActor[c.KeyActor],
		})
	}
	return out, nil
}

// SeparationResult quantifies the paper's §V-B takeaway (a): combined STI
// is statistically different between safe and accident scenarios.
type SeparationResult struct {
	Typology scenario.Typology
	// SafePeaks / AccidentPeaks are the per-episode mean combined STI:
	// peaks alone do not separate (a safe ghost cut-in also spikes while
	// the cutter swerves), but sustained risk does — accident episodes
	// climb to 1 and stay there.
	SafePeaks     []float64
	AccidentPeaks []float64
	// WelchT / DF / CohenD compare the two populations.
	WelchT float64
	DF     float64
	CohenD float64
}

// STISeparation computes, per typology with both safe and accident
// populations, the statistical separation of peak combined STI.
func STISeparation(suites []Suite, opt Options) ([]SeparationResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	eval, err := stiEvaluator(opt)
	if err != nil {
		return nil, err
	}
	var out []SeparationResult
	for _, suite := range suites {
		res := SeparationResult{Typology: suite.Typology}
		for i := range suite.Scenarios {
			tw, err := newTraceWorld(suite.Scenarios[i], suite.Outcomes[i].Trace)
			if err != nil {
				return nil, err
			}
			meanSTI := stats.Mean(stiTrace(tw, opt, eval))
			if suite.Outcomes[i].Collision {
				res.AccidentPeaks = append(res.AccidentPeaks, meanSTI)
			} else {
				res.SafePeaks = append(res.SafePeaks, meanSTI)
			}
		}
		if len(res.SafePeaks) < 2 || len(res.AccidentPeaks) < 2 {
			continue // nothing to separate
		}
		res.WelchT, res.DF = stats.WelchT(res.AccidentPeaks, res.SafePeaks)
		res.CohenD = stats.CohenD(res.AccidentPeaks, res.SafePeaks)
		out = append(out, res)
	}
	return out, nil
}
