package experiments

import (
	"fmt"

	"repro/internal/agent"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/smc"
)

// RoundaboutResult is the §V-C generalisation study: the RIP-analogue ring
// pilot on the roundabout ghost cut-in typology, with and without iPrism.
type RoundaboutResult struct {
	Instances     int
	RIPCollisions int
	// IPrismCollisions counts collisions with the (LBC-trained) SMC
	// transferred onto the ring pilot.
	IPrismCollisions int
	// Mitigated is the share of RIP accidents iPrism prevented.
	Mitigated float64
}

// Roundabout runs the roundabout study with a pre-trained SMC (trained on
// straight-road scenarios, transferred unchanged).
func Roundabout(ctrl *smc.SMC, opt Options) (RoundaboutResult, error) {
	var res RoundaboutResult
	if err := opt.Validate(); err != nil {
		return res, err
	}
	scns := scenario.Generate(scenario.RoundaboutCutIn, opt.ScenariosPerTypology, opt.Seed+99)
	res.Instances = len(scns)
	pilot := func() sim.Driver { return agent.NewRingPilot(agent.DefaultRingPilotConfig()) }

	base, err := runSuite(scns, opt.Workers, pilot, nil, false)
	if err != nil {
		return res, err
	}
	var tas []int
	for i, o := range base {
		if o.Collision {
			res.RIPCollisions++
			tas = append(tas, i)
		}
	}
	if ctrl == nil {
		return res, fmt.Errorf("experiments: roundabout needs a trained SMC")
	}
	mitigated, err := runSuite(scns, opt.Workers, pilot,
		func() (sim.Mitigator, error) { return ctrl.CloneForRun(), nil }, false)
	if err != nil {
		return res, err
	}
	prevented := 0
	for i, o := range mitigated {
		if o.Collision {
			res.IPrismCollisions++
		} else if contains(tas, i) {
			prevented++
		}
	}
	if len(tas) > 0 {
		res.Mitigated = float64(prevented) / float64(len(tas))
	}
	return res, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TrainGhostCutInSMC is a convenience used by Fig. 5, the roundabout study
// and the cmd tools: trains an SMC on the ghost cut-in typology's selected
// training scenario.
func TrainGhostCutInSMC(suites []Suite, opt Options) (*smc.SMC, error) {
	suite, ok := findSuite(suites, scenario.GhostCutIn)
	if !ok {
		return nil, fmt.Errorf("experiments: missing ghost cut-in suite")
	}
	eval, err := stiEvaluator(opt)
	if err != nil {
		return nil, err
	}
	idx, err := selectTrainingScenario(suite, opt, eval)
	if err != nil {
		return nil, err
	}
	lbc := func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }
	ctrl, _, err := smc.Train([]scenario.Scenario{suite.Scenarios[idx]}, lbc,
		opt.smcConfig(true, opt.Seed), opt.TrainEpisodes)
	return ctrl, err
}
