package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/sti"
)

// MeanSD is a "mean (sd)" table cell.
type MeanSD struct {
	Mean, SD float64
}

// String renders the cell in the paper's format.
func (m MeanSD) String() string { return stats.FormatMeanSD(m.Mean, m.SD) }

// MetricNames lists the Table II rows in paper order.
var MetricNames = []string{"TTC", "Dist. CIPA", "PKL-All", "PKL-Holdout", "STI"}

// TableIIResult holds LTFMA statistics per metric per typology.
type TableIIResult struct {
	// Typologies are the columns (typologies in which the baseline had
	// accidents; front accident is excluded as in the paper).
	Typologies []scenario.Typology
	// LTFMA[metric][i] is the lead time for Typologies[i], in seconds.
	LTFMA map[string][]MeanSD
	// Average[metric] is the all-scenario average of the typology means.
	Average map[string]float64
}

// TableII computes the LTFMA comparison (§V-A) over the baseline suites:
// for every accident scenario, each metric's risk trace is binarised and
// the consecutive risky time immediately before the accident is averaged.
func TableII(suites []Suite, opt Options) (TableIIResult, error) {
	res := TableIIResult{
		LTFMA:   make(map[string][]MeanSD, len(MetricNames)),
		Average: make(map[string]float64, len(MetricNames)),
	}
	if err := opt.Validate(); err != nil {
		return res, err
	}
	pklAll, pklHoldout, err := FitPKLModels(suites, opt)
	if err != nil {
		return res, err
	}
	eval, err := stiEvaluator(opt)
	if err != nil {
		return res, err
	}
	th := metrics.DefaultThresholds()

	for _, suite := range suites {
		accidents := suite.Accidents()
		if len(accidents) == 0 {
			continue // front accident: nothing to lead-time
		}
		res.Typologies = append(res.Typologies, suite.Typology)
		perMetric := map[string][]float64{}
		for _, idx := range accidents {
			tw, err := newTraceWorld(suite.Scenarios[idx], suite.Outcomes[idx].Trace)
			if err != nil {
				return res, err
			}
			lt, err := leadTimes(tw, suite.Outcomes[idx].CollisionStep, opt, eval, pklAll, pklHoldout, th)
			if err != nil {
				return res, err
			}
			for name, v := range lt {
				perMetric[name] = append(perMetric[name], v)
			}
		}
		for _, name := range MetricNames {
			mean, sd := stats.MeanStd(perMetric[name])
			res.LTFMA[name] = append(res.LTFMA[name], MeanSD{Mean: mean, SD: sd})
		}
	}
	for _, name := range MetricNames {
		var means []float64
		for _, cell := range res.LTFMA[name] {
			means = append(means, cell.Mean)
		}
		res.Average[name] = stats.Mean(means)
	}
	return res, nil
}

// leadTimes computes every metric's LTFMA for one accident trace.
func leadTimes(tw *traceWorld, collisionStep int, opt Options, eval *sti.Evaluator, pklAll, pklHoldout *metrics.PKLModel, th metrics.Thresholds) (map[string]float64, error) {
	stride := opt.MetricStride
	horizon := opt.Reach.Horizon
	var riskTTC, riskCIPA, riskPKLAll, riskPKLHold, riskSTI []bool
	// The lead-time window ends at the last instant strictly before the
	// collision: at the contact step itself the ego is already colliding
	// and "warning" is meaningless.
	last := collisionStep - 1
	if last >= tw.steps() {
		last = tw.steps() - 1
	}
	if last < 0 {
		last = 0
	}
	for t := 0; t <= last; t += stride {
		sc := tw.scene(t, horizon)
		riskTTC = append(riskTTC, th.TTCRisk(metrics.TTC(sc)))
		riskCIPA = append(riskCIPA, th.DistCIPARisk(metrics.DistCIPA(sc)))
		riskPKLAll = append(riskPKLAll, th.PKLRisk(pklAll.PKLCombined(sc)))
		riskPKLHold = append(riskPKLHold, th.PKLRisk(pklHoldout.PKLCombined(sc)))
		stiVal := eval.EvaluateCombined(tw.m, sc.Ego, sc.Actors, sc.Trajs)
		riskSTI = append(riskSTI, th.STIRisk(stiVal))
	}
	dt := tw.dt * float64(stride)
	lastIdx := len(riskTTC) - 1
	return map[string]float64{
		"TTC":         metrics.LTFMA(riskTTC, lastIdx, dt),
		"Dist. CIPA":  metrics.LTFMA(riskCIPA, lastIdx, dt),
		"PKL-All":     metrics.LTFMA(riskPKLAll, lastIdx, dt),
		"PKL-Holdout": metrics.LTFMA(riskPKLHold, lastIdx, dt),
		"STI":         metrics.LTFMA(riskSTI, lastIdx, dt),
	}, nil
}

// FitPKLModels fits the PKL cost model on baseline driving demonstrations:
// PKL-All on every typology, PKL-Holdout on all typologies except the two
// cut-ins (§V-A).
func FitPKLModels(suites []Suite, opt Options) (all, holdout *metrics.PKLModel, err error) {
	var allSamples, holdoutSamples []metrics.PKLSample
	const perSuite = 120
	for _, suite := range suites {
		count := 0
		for i := range suite.Scenarios {
			if count >= perSuite {
				break
			}
			tw, err := newTraceWorld(suite.Scenarios[i], suite.Outcomes[i].Trace)
			if err != nil {
				return nil, nil, err
			}
			for t := 0; t < tw.steps() && count < perSuite; t += opt.MetricStride * 5 {
				sc := tw.scene(t, opt.Reach.Horizon)
				sample := metrics.PKLSample{
					Features: metrics.CandidateFeatures(sc, -1, false),
					Choice:   demonstratedChoice(tw, t),
				}
				allSamples = append(allSamples, sample)
				if suite.Typology != scenario.GhostCutIn && suite.Typology != scenario.LeadCutIn {
					holdoutSamples = append(holdoutSamples, sample)
				}
				count++
			}
		}
	}
	all = metrics.DefaultPKLModel()
	holdout = metrics.DefaultPKLModel()
	if len(allSamples) == 0 {
		return nil, nil, fmt.Errorf("experiments: no PKL demonstrations collected")
	}
	if _, err := all.Fit(allSamples, 60, 0.1); err != nil {
		return nil, nil, err
	}
	if len(holdoutSamples) > 0 {
		if _, err := holdout.Fit(holdoutSamples, 60, 0.1); err != nil {
			return nil, nil, err
		}
	}
	return all, holdout, nil
}

// demonstratedChoice maps the baseline agent's recorded control at step t
// to the nearest candidate manoeuvre index (the demonstrator never changes
// lanes, so the lateral component is always "keep").
func demonstratedChoice(tw *traceWorld, t int) int {
	accel := tw.trace[t].EgoControl.Accel
	// Candidate longitudinal profiles: {MaxBrake/2, 0, MaxAccel/2}.
	longIdx := 1
	switch {
	case accel < -1:
		longIdx = 0
	case accel > 1:
		longIdx = 2
	}
	const latKeep = 1
	return longIdx*3 + latKeep
}
