package experiments

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/scenario"
)

// tinyOptions keeps the integration tests minutes-scale while preserving
// the experiment shapes.
func tinyOptions() Options {
	opt := DefaultOptions()
	opt.ScenariosPerTypology = 16
	opt.TrainEpisodes = 12
	opt.MetricStride = 4
	opt.Workers = 2
	return opt
}

func TestOptionsValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Options)
	}{
		{"zero scenarios", func(o *Options) { o.ScenariosPerTypology = 0 }},
		{"zero workers", func(o *Options) { o.Workers = 0 }},
		{"zero episodes", func(o *Options) { o.TrainEpisodes = 0 }},
		{"zero stride", func(o *Options) { o.MetricStride = 0 }},
		{"bad reach", func(o *Options) { o.Reach.Horizon = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := DefaultOptions()
			tt.mutate(&o)
			if err := o.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
}

func buildTinySuites(t *testing.T) ([]Suite, Options) {
	t.Helper()
	opt := tinyOptions()
	suites, err := BuildSuites(opt)
	if err != nil {
		t.Fatal(err)
	}
	return suites, opt
}

func TestBuildSuitesAndTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("suite integration")
	}
	suites, _ := buildTinySuites(t)
	if len(suites) != 5 {
		t.Fatalf("suites = %d", len(suites))
	}
	rows := TableI(suites)
	byTy := map[scenario.Typology]TableIRow{}
	for _, r := range rows {
		byTy[r.Typology] = r
		if len(r.Hyperparameters) != 3 {
			t.Errorf("%v hyperparameters = %v", r.Typology, r.Hyperparameters)
		}
		if r.Instances == 0 {
			t.Errorf("%v has no instances", r.Typology)
		}
	}
	// Table I shape: front accident has zero ego accidents; ghost cut-in
	// and rear-end are the most accident-prone.
	if byTy[scenario.FrontAccident].Accidents != 0 {
		t.Errorf("front accident accidents = %d, want 0", byTy[scenario.FrontAccident].Accidents)
	}
	if byTy[scenario.GhostCutIn].Accidents == 0 || byTy[scenario.RearEnd].Accidents == 0 {
		t.Error("cut-in/rear-end suites must contain baseline accidents")
	}
	// Traces must be recorded for the offline studies.
	if len(suites[0].Outcomes[0].Trace) == 0 {
		t.Error("suite outcomes missing traces")
	}
}

func TestTableIILTFMAShape(t *testing.T) {
	if testing.Short() {
		t.Skip("LTFMA integration")
	}
	suites, opt := buildTinySuites(t)
	res, err := TableII(suites, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Typologies) == 0 {
		t.Fatal("no typologies with accidents")
	}
	for _, name := range MetricNames {
		if len(res.LTFMA[name]) != len(res.Typologies) {
			t.Fatalf("metric %q rows = %d, want %d", name, len(res.LTFMA[name]), len(res.Typologies))
		}
	}
	t.Logf("LTFMA averages: TTC=%.2f CIPA=%.2f PKL-All=%.2f PKL-Holdout=%.2f STI=%.2f",
		res.Average["TTC"], res.Average["Dist. CIPA"], res.Average["PKL-All"],
		res.Average["PKL-Holdout"], res.Average["STI"])
	// The headline claim: STI leads every other metric on average.
	for _, name := range []string{"TTC", "Dist. CIPA", "PKL-All"} {
		if res.Average["STI"] <= res.Average[name] {
			t.Errorf("STI average LTFMA %.2f should exceed %s %.2f",
				res.Average["STI"], name, res.Average[name])
		}
	}
	// Ghost cut-in: frontal metrics are blind (near-zero lead time).
	for i, ty := range res.Typologies {
		if ty != scenario.GhostCutIn {
			continue
		}
		if ttc := res.LTFMA["TTC"][i].Mean; ttc > 1.0 {
			t.Errorf("ghost cut-in TTC lead time = %.2f, want ~0", ttc)
		}
		if sti := res.LTFMA["STI"][i].Mean; sti < 1.0 {
			t.Errorf("ghost cut-in STI lead time = %.2f, want >= 1", sti)
		}
	}
}

func TestFig4SeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trace integration")
	}
	suites, opt := buildTinySuites(t)
	series, err := Fig4(suites[:1], opt) // ghost cut-in only, for speed
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4 metrics (STI, PKL, TTC, CIPA)", len(series))
	}
	for _, s := range series {
		if s.Dt <= 0 {
			t.Errorf("%s Dt = %v", s.Metric, s.Dt)
		}
		if s.Accident.Len() == 0 {
			t.Errorf("%s accident series empty", s.Metric)
		}
		if s.Metric == "STI" {
			// Accident STI traces should climb towards 1 near the end.
			end := s.Accident.Mean[s.Accident.Len()-1]
			if end < 0.5 {
				t.Errorf("accident STI final mean = %v, want >= 0.5", end)
			}
		}
	}
}

func TestFig6LongTail(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus integration")
	}
	opt := tinyOptions()
	corpus := dataset.DefaultCorpusConfig()
	corpus.Logs = 10
	corpus.Steps = 100
	res, err := Fig6(corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Fatal("no samples")
	}
	if res.Actor.P50 != 0 {
		t.Errorf("actor p50 = %v, want 0 (paper: 0.0)", res.Actor.P50)
	}
	if res.ActorZeroFraction < 0.6 {
		t.Errorf("actor zero fraction = %v, want >= 0.6", res.ActorZeroFraction)
	}
	if res.Combined.P99 > 1 {
		t.Errorf("combined p99 = %v", res.Combined.P99)
	}
}

func TestFig7Cases(t *testing.T) {
	res, err := Fig7(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("cases = %d", len(res))
	}
	for _, c := range res {
		if c.KeySTI <= 0 {
			t.Errorf("%s key actor STI = %v, want > 0", c.Name, c.KeySTI)
		}
		if math.IsNaN(c.Combined) {
			t.Errorf("%s combined NaN", c.Name)
		}
	}
}

// The full mitigation pipeline: Table III + IV + Fig. 5 + roundabout. This
// is the most expensive integration test in the repository.
func TestMitigationPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full mitigation pipeline")
	}
	opt := tinyOptions()
	opt.TrainEpisodes = 40 // enough for the policies to stop degenerating
	suites, err := BuildSuites(opt)
	if err != nil {
		t.Fatal(err)
	}

	t3, err := TableIII(suites, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Typologies) != 3 {
		t.Fatalf("typologies = %v", t3.Typologies)
	}
	for _, name := range []string{AgentLBCiPrism, AgentLBCNoSTI, AgentLBCACA, AgentRIPiPrism} {
		if len(t3.Rows[name]) != 3 {
			t.Fatalf("agent %q rows = %d", name, len(t3.Rows[name]))
		}
	}
	for i, ty := range t3.Typologies {
		ip := t3.Rows[AgentLBCiPrism][i]
		aca := t3.Rows[AgentLBCACA][i]
		t.Logf("%-14s iPrism CA%%=%.0f TCR%%=%.1f | ACA CA%%=%.0f TCR%%=%.1f (TAS %d)",
			ty, ip.CAPct, ip.TCRPct, aca.CAPct, aca.TCRPct, ip.TAS)
	}
	t.Logf("rear-end: CA %d/%d (%.0f%%)", t3.RearEnd.CA, t3.RearEnd.TAS, t3.RearEnd.CAPct)

	// Shape assertions (Table III): iPrism substantially beats ACA on the
	// ghost cut-in (side threat), and prevents a nontrivial share of
	// rear-end accidents via acceleration.
	ghostIdx := indexOf(t3.Typologies, scenario.GhostCutIn)
	if t3.Rows[AgentLBCiPrism][ghostIdx].CAPct <= t3.Rows[AgentLBCACA][ghostIdx].CAPct {
		t.Errorf("ghost cut-in: iPrism CA%% %.0f should beat ACA %.0f",
			t3.Rows[AgentLBCiPrism][ghostIdx].CAPct, t3.Rows[AgentLBCACA][ghostIdx].CAPct)
	}
	if t3.RearEnd.TAS > 0 && t3.RearEnd.CAPct <= 0 {
		t.Error("rear-end: acceleration-capable SMC should prevent some accidents")
	}

	// Table IV: activation timing exists for mitigating agents.
	t4 := TableIV(t3)
	if len(t4) != 3 {
		t.Fatalf("table IV rows = %d", len(t4))
	}
	for _, row := range t4 {
		t.Logf("%-14s iPrism %.2fs ACA %.2fs lead %.2fs", row.Typology, row.IPrism, row.ACA, row.LeadTime)
	}

	// Fig. 5: iPrism's mean STI over ghost cut-in must end lower than the
	// bare baseline's (the mitigation flattens the risk curve).
	ctrl, err := TrainGhostCutInSMC(suites, opt)
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5(suites, ctrl, opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f5.LBC.Len() == 0 || f5.IPrism.Len() == 0 {
		t.Fatal("Fig5 series empty")
	}
	lbcPeak, iprismPeak := peak(f5.LBC.Mean), peak(f5.IPrism.Mean)
	t.Logf("Fig5 STI peaks: LBC %.2f iPrism %.2f", lbcPeak, iprismPeak)
	if iprismPeak >= lbcPeak {
		t.Errorf("iPrism STI peak %.2f should be below LBC peak %.2f", iprismPeak, lbcPeak)
	}

	// Roundabout generalisation: transferred SMC reduces ring collisions.
	rb, err := Roundabout(ctrl, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("roundabout: pilot %d/%d collisions, +iPrism %d/%d (mitigated %.0f%%)",
		rb.RIPCollisions, rb.Instances, rb.IPrismCollisions, rb.Instances, rb.Mitigated*100)
	if rb.RIPCollisions == 0 {
		t.Error("ring pilot should collide in the roundabout cut-in typology")
	}
	if rb.IPrismCollisions > rb.RIPCollisions {
		t.Errorf("iPrism made the roundabout worse: %d > %d", rb.IPrismCollisions, rb.RIPCollisions)
	}
}

func indexOf(tys []scenario.Typology, ty scenario.Typology) int {
	for i, t := range tys {
		if t == ty {
			return i
		}
	}
	return -1
}

func peak(xs []float64) float64 {
	best := 0.0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}

// §V-B takeaway (a): combined STI is statistically different between safe
// and accident populations.
func TestSTISeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("separation integration")
	}
	opt := tinyOptions()
	opt.ScenariosPerTypology = 24
	suites, err := BuildSuites(opt)
	if err != nil {
		t.Fatal(err)
	}
	seps, err := STISeparation(suites, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seps) == 0 {
		t.Fatal("no typology had both safe and accident populations")
	}
	for _, s := range seps {
		t.Logf("%-14s accident peaks n=%d safe peaks n=%d  t=%.1f (df %.0f)  d=%.1f",
			s.Typology, len(s.AccidentPeaks), len(s.SafePeaks), s.WelchT, s.DF, s.CohenD)
		if s.WelchT <= 2 {
			t.Errorf("%v: accident STI peaks not separated from safe (t=%v)", s.Typology, s.WelchT)
		}
		if s.CohenD <= 0.8 {
			t.Errorf("%v: effect size %v too small", s.Typology, s.CohenD)
		}
	}
}

// §IV-B1: safety criticality varies with hyperparameter values — e.g. on
// the ghost cut-in, closer and slower cut-ins crash more.
func TestSensitivityGhostCutIn(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep")
	}
	opt := tinyOptions()
	opt.ScenariosPerTypology = 60
	suites, err := BuildSuites(opt)
	if err != nil {
		t.Fatal(err)
	}
	ghost, _ := findSuite(suites, scenario.GhostCutIn)
	rows, err := Sensitivity(ghost)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		t.Logf("%-22s corr %.2f", r.Hyperparameter, r.Correlation)
		byName[r.Hyperparameter] = r.Correlation
	}
	// Slower post-cut speeds and nearer cut-in points increase crashes.
	if byName["speed_lane_change"] >= 0 {
		t.Errorf("cut speed correlation = %v, want negative (slower is deadlier)",
			byName["speed_lane_change"])
	}
	if byName["distance_lane_change"] >= 0 {
		t.Errorf("cut distance correlation = %v, want negative (closer is deadlier)",
			byName["distance_lane_change"])
	}
}

func TestSensitivityNeedsScenarios(t *testing.T) {
	if _, err := Sensitivity(Suite{}); err == nil {
		t.Error("tiny suite accepted")
	}
}
