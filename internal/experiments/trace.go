package experiments

import (
	"repro/internal/actor"
	"repro/internal/metrics"
	"repro/internal/roadmap"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// traceWorld reconstructs, from a recorded episode trace, everything the
// offline risk metrics need at step t: the ego state, the actor set (with
// yaw estimates), and each actor's ground-truth future trajectory for the
// remainder of the episode.
type traceWorld struct {
	m     roadmap.Map
	dt    float64
	trace []sim.StepRecord
}

func newTraceWorld(scn scenario.Scenario, trace []sim.StepRecord) (*traceWorld, error) {
	w, err := scn.Build()
	if err != nil {
		return nil, err
	}
	return &traceWorld{m: w.Map, dt: scn.Dt, trace: trace}, nil
}

func (tw *traceWorld) steps() int { return len(tw.trace) }

func (tw *traceWorld) ego(t int) vehicle.State { return tw.trace[t].Ego }

// actors reconstructs the actor set at step t. Scenario NPCs are all
// standard vehicles.
func (tw *traceWorld) actors(t int) []*actor.Actor {
	rec := tw.trace[t]
	out := make([]*actor.Actor, len(rec.ActorStates))
	for i, s := range rec.ActorStates {
		a := actor.NewVehicle(i+1, s)
		a.YawRate = rec.ActorYaws[i]
		out[i] = a
	}
	return out
}

// futures returns the recorded ground-truth trajectories from step t on.
func (tw *traceWorld) futures(t int) []actor.Trajectory {
	n := len(tw.trace[t].ActorStates)
	out := make([]actor.Trajectory, n)
	for i := 0; i < n; i++ {
		states := make([]vehicle.State, 0, len(tw.trace)-t)
		for k := t; k < len(tw.trace); k++ {
			states = append(states, tw.trace[k].ActorStates[i])
		}
		out[i] = actor.Trajectory{Dt: tw.dt, States: states}
	}
	return out
}

// scene assembles the metrics.Scene at step t with ground-truth futures.
func (tw *traceWorld) scene(t int, horizon float64) metrics.Scene {
	return metrics.Scene{
		Map:       tw.m,
		Ego:       tw.ego(t),
		EgoParams: vehicle.DefaultParams(),
		Actors:    tw.actors(t),
		Trajs:     tw.futures(t),
		Horizon:   horizon,
		Dt:        tw.dt,
	}
}
