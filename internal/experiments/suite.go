package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Suite telemetry: scenarios_done counts completed episodes across all
// workers (live suite progress over expvar); episodes_per_sec is the
// aggregate throughput of the last finished suite.
var (
	telSuiteScenarios = telemetry.NewCounter("experiments.suite.scenarios_done")
	telSuiteThroughpt = telemetry.NewGauge("experiments.suite.episodes_per_sec")
)

// Suite is the generated scenario set of one typology together with the
// baseline (LBC) episode outcomes, traces included.
type Suite struct {
	Typology  scenario.Typology
	Scenarios []scenario.Scenario
	Outcomes  []sim.Outcome
}

// Accidents returns the indices of scenarios in which the baseline agent
// collided (the TAS set of Table III).
func (s Suite) Accidents() []int {
	var out []int
	for i, o := range s.Outcomes {
		if o.Collision {
			out = append(out, i)
		}
	}
	return out
}

// BuildSuites generates the five typologies' suites and runs the LBC
// baseline over every instance (with trace recording for the offline
// metric studies). Front-accident instances are validity-filtered as in
// the paper.
func BuildSuites(opt Options) ([]Suite, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	suites := make([]Suite, len(scenario.Typologies))
	for i, ty := range scenario.Typologies {
		sp := telemetry.StartSpan("experiments.build_suite")
		scns := scenario.GenerateValid(ty, opt.ScenariosPerTypology, opt.Seed+int64(i))
		outcomes, err := runSuite(scns, opt.Workers, func() sim.Driver {
			return agent.NewLBC(agent.DefaultLBCConfig())
		}, nil, true)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v suite: %w", ty, err)
		}
		suites[i] = Suite{Typology: ty, Scenarios: scns, Outcomes: outcomes}
		elapsed := sp.End()
		if telemetry.JournalActive() {
			accidents := 0
			for _, o := range outcomes {
				if o.Collision {
					accidents++
				}
			}
			telemetry.Emit("experiments.suite", map[string]any{
				"typology":  ty.String(),
				"scenarios": len(scns),
				"accidents": accidents,
				"seconds":   elapsed.Seconds(),
			})
		}
	}
	return suites, nil
}

// runSuite executes every scenario with a fresh driver (and optionally a
// fresh mitigator) using a bounded worker pool.
func runSuite(scns []scenario.Scenario, workers int, makeDriver func() sim.Driver, makeMitigator func() (sim.Mitigator, error), record bool) ([]sim.Outcome, error) {
	start := time.Now()
	outcomes := make([]sim.Outcome, len(scns))
	errs := make([]error, len(scns))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range scns {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			w, err := scns[i].Build()
			if err != nil {
				errs[i] = err
				return
			}
			var mit sim.Mitigator
			if makeMitigator != nil {
				mit, err = makeMitigator()
				if err != nil {
					errs[i] = err
					return
				}
			}
			outcomes[i] = sim.Run(w, makeDriver(), mit, sim.RunConfig{
				MaxSteps:    scns[i].MaxSteps,
				RecordTrace: record,
			})
			telSuiteScenarios.Inc()
		}(i)
	}
	wg.Wait()
	if d := time.Since(start).Seconds(); d > 0 {
		telSuiteThroughpt.Set(float64(len(scns)) / d)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outcomes, nil
}

// TableIRow is one row of Table I.
type TableIRow struct {
	Typology        scenario.Typology
	Instances       int
	Hyperparameters []string
	Accidents       int
}

// TableI summarises the suites into Table I rows.
func TableI(suites []Suite) []TableIRow {
	rows := make([]TableIRow, len(suites))
	for i, s := range suites {
		rows[i] = TableIRow{
			Typology:        s.Typology,
			Instances:       len(s.Scenarios),
			Hyperparameters: scenario.Hyperparameters(s.Typology),
			Accidents:       len(s.Accidents()),
		}
	}
	return rows
}
