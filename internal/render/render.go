// Package render draws street scenes as SVG in the style of the paper's
// Fig. 7: the road surface in grey, the ego vehicle in yellow with its
// reach-tube shaded green, and the other actors coloured from green (no
// risk) to red (the scene's most threatening actor) by their STI.
package render

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/sti"
	"repro/internal/vehicle"
)

// Scene bundles everything one frame needs.
type Scene struct {
	Map    roadmap.Map
	Ego    vehicle.State
	Actors []*actor.Actor
	// Risk holds the STI evaluation used to colour actors and annotate the
	// frame; zero-valued fields are drawn neutrally.
	Risk sti.Result
	// Tube, when non-nil, is drawn as the ego's escape routes. Compute it
	// with reach.Config.RecordPoints set.
	Tube *reach.Tube
	// Title is drawn in the frame's corner.
	Title string
}

// Options control the rendering.
type Options struct {
	// Scale is pixels per metre (default 6).
	Scale float64
	// Margin is drawn around the map bounds in metres (default 5).
	Margin float64
	// Window, when positive, clips the longitudinal extent to ±Window
	// metres around the ego instead of drawing the whole map.
	Window float64
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 6
	}
	return o.Scale
}

func (o Options) margin() float64 {
	if o.Margin <= 0 {
		return 5
	}
	return o.Margin
}

// SVG renders the scene to an SVG document.
func SVG(s Scene, opt Options) string {
	min, max := s.Map.Bounds()
	if w := opt.Window; w > 0 {
		if lo := s.Ego.Pos.X - w; lo > min.X {
			min.X = lo
		}
		if hi := s.Ego.Pos.X + w; hi < max.X {
			max.X = hi
		}
	}
	m := opt.margin()
	min = min.Sub(geom.V(m, m))
	max = max.Add(geom.V(m, m))
	px := opt.scale()
	w := (max.X - min.X) * px
	h := (max.Y - min.Y) * px

	// SVG y grows downwards; world y grows upwards. Flip.
	toX := func(x float64) float64 { return (x - min.X) * px }
	toY := func(y float64) float64 { return h - (y-min.Y)*px }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="#f4f1ea"/>` + "\n")

	drawMap(&b, s.Map, toX, toY, px)
	if s.Tube != nil {
		drawTube(&b, s.Tube, toX, toY, px)
	}
	drawActors(&b, s, toX, toY, px)
	drawBox(&b, geom.NewBox(s.Ego.Pos, 4.7, 2.0, s.Ego.Heading), "#f5c518", "#4d3d00", toX, toY)

	if s.Title != "" {
		fmt.Fprintf(&b, `<text x="10" y="20" font-family="sans-serif" font-size="14" fill="#333">%s</text>`+"\n", escape(s.Title))
	}
	if s.Risk.Combined > 0 {
		fmt.Fprintf(&b, `<text x="10" y="38" font-family="sans-serif" font-size="12" fill="#333">combined STI %.2f</text>`+"\n", s.Risk.Combined)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func drawMap(b *strings.Builder, m roadmap.Map, toX, toY func(float64) float64, px float64) {
	switch road := m.(type) {
	case *roadmap.StraightRoad:
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#b9b9b9"/>`+"\n",
			toX(road.XMin), toY(road.Width()), (road.XMax-road.XMin)*px, road.Width()*px)
		for lane := 1; lane < road.NumLanes; lane++ {
			y := toY(float64(lane) * road.LaneWidth)
			fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ffffff" stroke-width="1" stroke-dasharray="8 8"/>`+"\n",
				toX(road.XMin), y, toX(road.XMax), y)
		}
	case *roadmap.RingRoad:
		cx, cy := toX(road.Center.X), toY(road.Center.Y)
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#b9b9b9"/>`+"\n", cx, cy, road.OuterR*px)
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#f4f1ea"/>`+"\n", cx, cy, road.InnerR*px)
	}
}

func drawTube(b *strings.Builder, tube *reach.Tube, toX, toY func(float64) float64, px float64) {
	size := px * 1.0
	for _, p := range tube.Points {
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#61c06a" fill-opacity="0.35"/>`+"\n",
			toX(p.X)-size/2, toY(p.Y)-size/2, size, size)
	}
}

func drawActors(b *strings.Builder, s Scene, toX, toY func(float64) float64, px float64) {
	maxSTI := 0.0
	for _, v := range s.Risk.PerActor {
		if v > maxSTI {
			maxSTI = v
		}
	}
	for i, a := range s.Actors {
		risk := 0.0
		if i < len(s.Risk.PerActor) && maxSTI > 0 {
			risk = s.Risk.PerActor[i] / maxSTI
		}
		fill := riskColor(risk)
		drawBox(b, a.Footprint(), fill, "#333333", toX, toY)
		if i < len(s.Risk.PerActor) {
			fmt.Fprintf(b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" fill="#222" text-anchor="middle">%.2f</text>`+"\n",
				toX(a.State.Pos.X), toY(a.State.Pos.Y)-8, s.Risk.PerActor[i])
		}
	}
}

func drawBox(b *strings.Builder, box geom.Box, fill, stroke string, toX, toY func(float64) float64) {
	cs := box.Corners()
	var pts []string
	for _, c := range cs {
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", toX(c.X), toY(c.Y)))
	}
	fmt.Fprintf(b, `<polygon points="%s" fill="%s" stroke="%s" stroke-width="1"/>`+"\n",
		strings.Join(pts, " "), fill, stroke)
}

// riskColor interpolates green → amber → red over [0, 1].
func riskColor(t float64) string {
	t = geom.Clamp(t, 0, 1)
	var r, g float64
	if t < 0.5 {
		r = 2 * t * 255
		g = 200
	} else {
		r = 255
		g = 200 * (1 - t) * 2
	}
	return fmt.Sprintf("#%02x%02x40", int(math.Round(r)), int(math.Round(g)))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
