package render

import (
	"strings"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/sti"
	"repro/internal/vehicle"
)

func testScene(t *testing.T) Scene {
	t.Helper()
	road := roadmap.MustStraightRoad(2, 3.5, -20, 80)
	ego := vehicle.State{Pos: geom.V(0, 1.75), Speed: 9}
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 2}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 9}),
	}
	eval := sti.MustNewEvaluator(reach.DefaultConfig())
	risk := eval.EvaluateWithPrediction(road, ego, actors)

	cfg := reach.DefaultConfig()
	cfg.RecordPoints = true
	trajs := actor.PredictAll(actors, cfg.NumSlices(), cfg.SliceDt)
	obs := reach.BuildObstacles(actors, trajs, cfg)
	tube := reach.Compute(road, obs.Collide(), ego, cfg)

	return Scene{
		Map:    road,
		Ego:    ego,
		Actors: actors,
		Risk:   risk,
		Tube:   &tube,
		Title:  `ego & "friends" <scene>`,
	}
}

func TestSVGStructure(t *testing.T) {
	svg := SVG(testScene(t), Options{})
	for _, want := range []string{
		"<svg", "</svg>", // document
		"#b9b9b9",             // road surface
		"stroke-dasharray",    // lane markings
		"#f5c518",             // ego
		"fill-opacity",        // tube cells
		"combined STI",        // annotation
		"&quot;friends&quot;", // escaping
		"&lt;scene&gt;",       // escaping
		`font-size="10"`,      // per-actor STI labels
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polygon") != 3 { // ego + 2 actors
		t.Errorf("polygon count = %d, want 3", strings.Count(svg, "<polygon"))
	}
}

func TestSVGTubeRecorded(t *testing.T) {
	s := testScene(t)
	if len(s.Tube.Points) == 0 {
		t.Fatal("tube points not recorded")
	}
	svg := SVG(s, Options{})
	if strings.Count(svg, "fill-opacity") < len(s.Tube.Points) {
		t.Errorf("tube cells not all drawn: %d < %d",
			strings.Count(svg, "fill-opacity"), len(s.Tube.Points))
	}
}

func TestSVGRingRoad(t *testing.T) {
	ring, err := roadmap.NewRingRoad(geom.V(0, 0), 18, 27)
	if err != nil {
		t.Fatal(err)
	}
	pos, heading := ring.PoseAt(24, 0)
	svg := SVG(Scene{
		Map: ring,
		Ego: vehicle.State{Pos: pos, Heading: heading, Speed: 8},
	}, Options{Scale: 4})
	if strings.Count(svg, "<circle") != 2 {
		t.Errorf("ring should draw two circles, got %d", strings.Count(svg, "<circle"))
	}
}

func TestSVGWithoutOptionalParts(t *testing.T) {
	road := roadmap.MustStraightRoad(1, 3.5, 0, 50)
	svg := SVG(Scene{Map: road, Ego: vehicle.State{Pos: geom.V(10, 1.75)}}, Options{})
	if strings.Contains(svg, "combined STI") {
		t.Error("zero-risk scene should not be annotated")
	}
	if strings.Contains(svg, "<text") {
		t.Error("no title and no risk: no text expected")
	}
}

func TestRiskColorGradient(t *testing.T) {
	low := riskColor(0)
	mid := riskColor(0.5)
	high := riskColor(1)
	if low == high || low == mid {
		t.Errorf("gradient degenerate: %s %s %s", low, mid, high)
	}
	if high != "#ff0040" {
		t.Errorf("full risk colour = %s, want #ff0040", high)
	}
	if !strings.HasPrefix(low, "#00c8") {
		t.Errorf("zero risk colour = %s, want green", low)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.scale() != 6 || o.margin() != 5 {
		t.Errorf("defaults = %v %v", o.scale(), o.margin())
	}
	o = Options{Scale: 2, Margin: 1}
	if o.scale() != 2 || o.margin() != 1 {
		t.Errorf("overrides = %v %v", o.scale(), o.margin())
	}
}

func TestSVGWindowClipsExtent(t *testing.T) {
	road := roadmap.MustStraightRoad(2, 3.5, -500, 500)
	full := SVG(Scene{Map: road, Ego: vehicle.State{Pos: geom.V(0, 1.75)}}, Options{})
	clipped := SVG(Scene{Map: road, Ego: vehicle.State{Pos: geom.V(0, 1.75)}}, Options{Window: 50})
	if !strings.Contains(full, `width="6060"`) { // (1000+2*5) m * 6 px
		t.Errorf("full width unexpected: %s", full[:120])
	}
	if !strings.Contains(clipped, `width="660"`) { // (50+50+2*5) m * 6 px
		t.Errorf("clipped width unexpected: %s", clipped[:120])
	}
}
