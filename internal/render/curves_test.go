package render

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// journalEvents builds a deterministic synthetic training journal: reward
// climbs with noise, epsilon anneals, loss decays. Values mimic what
// smc.Train emits but need no simulation.
func journalEvents(n int) []telemetry.Event {
	evs := make([]telemetry.Event, 0, n+2)
	evs = append(evs, telemetry.Event{Event: "run.start", Fields: map[string]any{"cmd": "test"}})
	for i := 0; i < n; i++ {
		x := float64(i)
		evs = append(evs, telemetry.Event{
			TS:    time.Unix(1700000000+int64(i), 0).UTC(),
			Event: "smc.episode",
			Fields: map[string]any{
				"episode": x,
				"reward":  -40 + x*0.9 + 12*math.Sin(x*0.7),
				"epsilon": math.Max(0.05, 1-x*0.016),
				"loss":    3.5*math.Exp(-x*0.04) + 0.3*math.Abs(math.Sin(x*1.3)),
				"steps":   float64(100 + i),
			},
		})
	}
	evs = append(evs, telemetry.Event{Event: "run.end"})
	return evs
}

func TestEpisodePoints(t *testing.T) {
	pts := EpisodePoints(journalEvents(60))
	if len(pts) != 60 {
		t.Fatalf("points = %d, want 60 (non-episode events must be skipped)", len(pts))
	}
	if pts[0].Episode != 0 || pts[59].Episode != 59 {
		t.Errorf("episode range = [%v, %v], want [0, 59]", pts[0].Episode, pts[59].Episode)
	}
	if pts[0].Epsilon != 1 {
		t.Errorf("first epsilon = %v, want 1", pts[0].Epsilon)
	}
	if pts[59].Loss >= pts[0].Loss {
		t.Errorf("loss did not decay: %v -> %v", pts[0].Loss, pts[59].Loss)
	}
}

func TestEpisodePointsEmpty(t *testing.T) {
	if pts := EpisodePoints([]telemetry.Event{{Event: "run.start"}}); pts != nil {
		t.Errorf("no episodes should yield nil, got %d points", len(pts))
	}
	if _, err := CurvesSVG(nil, CurveOptions{}); err == nil {
		t.Error("CurvesSVG on empty input should fail")
	}
}

func TestCurvesSVGGolden(t *testing.T) {
	svg, err := CurvesSVG(EpisodePoints(journalEvents(60)), CurveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "curves_golden.svg")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(svg), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if svg != string(want) {
		t.Errorf("curves SVG drifted from %s (run with -update to accept); got %d bytes, want %d",
			golden, len(svg), len(want))
	}
}

func TestCurvesSVGStructure(t *testing.T) {
	svg, err := CurvesSVG(EpisodePoints(journalEvents(60)), CurveOptions{Width: 400, Smooth: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>",
		">reward<", ">epsilon<", ">loss<", // panel labels
		"60 episodes",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("curves SVG missing %q", want)
		}
	}
	// Three series plus the reward moving-average overlay.
	if got := strings.Count(svg, "<polyline"); got != 4 {
		t.Errorf("polyline count = %d, want 4", got)
	}
	if got := strings.Count(svg, `stroke="#08306b"`); got != 1 {
		t.Errorf("smoothed overlay count = %d, want 1", got)
	}
}

func TestCurvesSVGFlatSeries(t *testing.T) {
	pts := []EpisodePoint{{Episode: 0, Reward: 5}, {Episode: 1, Reward: 5}}
	svg, err := CurvesSVG(pts, CurveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("flat series produced non-finite coordinates")
	}
}
