package render

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/telemetry"
)

// EpisodePoint is one smc.episode journal event distilled to the values the
// training-curve panels plot.
type EpisodePoint struct {
	Episode float64
	Reward  float64
	Epsilon float64
	Loss    float64
}

// EpisodePoints extracts the smc.episode events of a run journal, in
// journal order. Events of other kinds are ignored; missing numeric fields
// read as zero (encoding/json decodes journal numbers as float64).
func EpisodePoints(events []telemetry.Event) []EpisodePoint {
	var out []EpisodePoint
	for _, ev := range events {
		if ev.Event != "smc.episode" {
			continue
		}
		num := func(key string) float64 {
			v, _ := ev.Fields[key].(float64)
			return v
		}
		out = append(out, EpisodePoint{
			Episode: num("episode"),
			Reward:  num("reward"),
			Epsilon: num("epsilon"),
			Loss:    num("loss"),
		})
	}
	return out
}

// CurveOptions control training-curve rendering.
type CurveOptions struct {
	// Width is the SVG width in pixels (default 720).
	Width int
	// Smooth is the moving-average window drawn over the reward panel;
	// 0 picks max(1, n/20).
	Smooth int
}

// CurvesSVG renders the paper-style training curves of an SMC run — reward
// (with a moving-average overlay), exploration ε and TD loss per episode —
// as three stacked SVG panels sharing the episode axis. It fails only when
// points is empty.
func CurvesSVG(points []EpisodePoint, opt CurveOptions) (string, error) {
	if len(points) == 0 {
		return "", fmt.Errorf("render: no smc.episode events to plot")
	}
	width := opt.Width
	if width <= 0 {
		width = 720
	}
	const panelH, padT, padB, padL, padR = 150, 24, 28, 56, 16
	height := 3*panelH + padT

	xs := make([]float64, len(points))
	for i, p := range points {
		xs[i] = p.Episode
	}
	smooth := opt.Smooth
	if smooth <= 0 {
		smooth = len(points) / 20
		if smooth < 1 {
			smooth = 1
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13" fill="#333">SMC training — %d episodes</text>`+"\n", padL, len(points))

	panels := []struct {
		label  string
		color  string
		series []float64
		smooth bool
	}{
		{"reward", "#2c7fb8", collect(points, func(p EpisodePoint) float64 { return p.Reward }), true},
		{"epsilon", "#35978f", collect(points, func(p EpisodePoint) float64 { return p.Epsilon }), false},
		{"loss", "#d95f0e", collect(points, func(p EpisodePoint) float64 { return p.Loss }), false},
	}
	for i, p := range panels {
		top := padT + i*panelH
		drawPanel(&b, panel{
			x0: padL, y0: top + 8, w: width - padL - padR, h: panelH - padB - 8,
			label: p.label, color: p.color, xs: xs, ys: p.series,
		})
		if p.smooth && smooth > 1 {
			sm := movingAverage(p.series, smooth)
			drawPolyline(&b, panelGeom(panel{x0: padL, y0: top + 8, w: width - padL - padR, h: panelH - padB - 8, xs: xs, ys: p.series}), xs, sm, "#08306b", 2)
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

func collect(points []EpisodePoint, f func(EpisodePoint) float64) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = f(p)
	}
	return out
}

func movingAverage(ys []float64, window int) []float64 {
	out := make([]float64, len(ys))
	sum := 0.0
	for i, y := range ys {
		sum += y
		if i >= window {
			sum -= ys[i-window]
		}
		n := i + 1
		if n > window {
			n = window
		}
		out[i] = sum / float64(n)
	}
	return out
}

type panel struct {
	x0, y0, w, h int
	label, color string
	xs, ys       []float64
}

type geomFns struct {
	toX, toY func(float64) float64
}

// panelGeom builds the data→pixel transforms for a panel, padding flat
// series so a constant line still draws mid-panel.
func panelGeom(p panel) geomFns {
	xMin, xMax := minMax(p.xs)
	yMin, yMax := minMax(p.ys)
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMin, yMax = yMin-1, yMax+1
	} else {
		pad := (yMax - yMin) * 0.08
		yMin, yMax = yMin-pad, yMax+pad
	}
	return geomFns{
		toX: func(x float64) float64 {
			return float64(p.x0) + (x-xMin)/(xMax-xMin)*float64(p.w)
		},
		toY: func(y float64) float64 {
			return float64(p.y0) + float64(p.h) - (y-yMin)/(yMax-yMin)*float64(p.h)
		},
	}
}

func drawPanel(b *strings.Builder, p panel) {
	g := panelGeom(p)
	yMin, yMax := minMax(p.ys)
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#fafafa" stroke="#ccc"/>`+"\n", p.x0, p.y0, p.w, p.h)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11" fill="#555">%s</text>`+"\n", p.x0, p.y0-2, p.label)
	// Min/max ticks on the value axis and the episode extent on x.
	fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="9" fill="#888" text-anchor="end">%.3g</text>`+"\n", p.x0-4, g.toY(yMax)+3, yMax)
	fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="9" fill="#888" text-anchor="end">%.3g</text>`+"\n", p.x0-4, g.toY(yMin)+3, yMin)
	xMin, xMax := minMax(p.xs)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="9" fill="#888">%.0f</text>`+"\n", p.x0, p.y0+p.h+12, xMin)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="9" fill="#888" text-anchor="end">%.0f</text>`+"\n", p.x0+p.w, p.y0+p.h+12, xMax)
	drawPolyline(b, g, p.xs, p.ys, p.color, 1)
}

func drawPolyline(b *strings.Builder, g geomFns, xs, ys []float64, color string, width int) {
	var pts strings.Builder
	for i := range xs {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.1f,%.1f", g.toX(xs[i]), g.toY(ys[i]))
	}
	fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%d"/>`+"\n", pts.String(), color, width)
}

func minMax(vs []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}
