package rl

import (
	"math/rand"
	"testing"
)

// BenchmarkDDQNTrainStep measures one Observe (replay push + batch
// gradient step) at the SMC's network size.
func BenchmarkDDQNTrainStep(b *testing.B) {
	cfg := DefaultDDQNConfig()
	cfg.WarmUp = 1
	d, err := NewDDQN(24, 3, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	state := make([]float64, 24)
	for i := range state {
		state[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(Transition{State: state, Action: i % 3, Reward: 1, Next: state, Done: i%7 == 0})
	}
}

// BenchmarkMLPForward measures one Q-network inference.
func BenchmarkMLPForward(b *testing.B) {
	m := MustNewMLP([]int{24, 64, 64, 3}, 1)
	x := make([]float64, 24)
	for i := range x {
		x[i] = float64(i) / 24
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}
