package rl

import (
	"encoding/json"
	"fmt"
	"os"
)

// mlpFile is the on-disk representation of a trained network.
type mlpFile struct {
	Sizes   []int       `json:"sizes"`
	Weights [][]float64 `json:"weights"`
	Biases  [][]float64 `json:"biases"`
}

// MarshalJSON implements json.Marshaler: weights only, no optimiser state.
func (m *MLP) MarshalJSON() ([]byte, error) {
	return json.Marshal(mlpFile{Sizes: m.sizes, Weights: m.weights, Biases: m.biases})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var f mlpFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("rl: decode network: %w", err)
	}
	restored, err := NewMLP(f.Sizes, 0)
	if err != nil {
		return err
	}
	if len(f.Weights) != len(restored.weights) || len(f.Biases) != len(restored.biases) {
		return fmt.Errorf("rl: layer count mismatch: %d weights for %v", len(f.Weights), f.Sizes)
	}
	for l := range restored.weights {
		if len(f.Weights[l]) != len(restored.weights[l]) || len(f.Biases[l]) != len(restored.biases[l]) {
			return fmt.Errorf("rl: layer %d shape mismatch", l)
		}
		copy(restored.weights[l], f.Weights[l])
		copy(restored.biases[l], f.Biases[l])
	}
	*m = *restored
	return nil
}

// MarshalJSON implements json.Marshaler for a frozen policy.
func (p *Policy) MarshalJSON() ([]byte, error) { return p.net.MarshalJSON() }

// UnmarshalJSON implements json.Unmarshaler.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var net MLP
	if err := net.UnmarshalJSON(data); err != nil {
		return err
	}
	p.net = &net
	return nil
}

// SavePolicy writes a policy's weights to path as JSON.
func SavePolicy(p *Policy, path string) error {
	data, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("rl: encode policy: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("rl: write policy: %w", err)
	}
	return nil
}

// LoadPolicy reads a policy saved by SavePolicy.
func LoadPolicy(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rl: read policy: %w", err)
	}
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	return &p, nil
}
