package rl

import "math/rand"

// Transition is one experience tuple (S_t, a_t, r_t, S_{t+1}, done).
type Transition struct {
	State  []float64
	Action int
	Reward float64
	Next   []float64
	Done   bool
}

// Replay is a fixed-capacity ring buffer of transitions with uniform
// sampling.
type Replay struct {
	buf  []Transition
	next int
	full bool
}

// NewReplay creates a buffer holding up to capacity transitions.
func NewReplay(capacity int) *Replay {
	if capacity < 1 {
		capacity = 1
	}
	return &Replay{buf: make([]Transition, 0, capacity)}
}

// Add appends a transition, evicting the oldest when full.
func (r *Replay) Add(t Transition) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
		return
	}
	r.full = true
	r.buf[r.next] = t
	r.next = (r.next + 1) % cap(r.buf)
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int { return len(r.buf) }

// Sample draws n transitions uniformly with replacement.
func (r *Replay) Sample(rng *rand.Rand, n int) []Transition {
	if len(r.buf) == 0 {
		return nil
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(len(r.buf))]
	}
	return out
}
