package rl

import (
	"fmt"
	"math/rand"
)

// DDQNConfig parameterises the Double-DQN trainer.
type DDQNConfig struct {
	Hidden        []int   // hidden layer sizes
	Gamma         float64 // discount factor
	LR            float64 // Adam learning rate
	BatchSize     int
	ReplayCap     int
	WarmUp        int     // transitions before training starts
	TargetSync    int     // training steps between target-network syncs
	EpsStart      float64 // initial exploration rate
	EpsEnd        float64 // final exploration rate
	EpsDecaySteps int     // linear decay horizon in environment steps
	Seed          int64
}

// DefaultDDQNConfig returns the configuration used for SMC training.
func DefaultDDQNConfig() DDQNConfig {
	return DDQNConfig{
		Hidden:        []int{64, 64},
		Gamma:         0.95,
		LR:            1e-3,
		BatchSize:     32,
		ReplayCap:     20000,
		WarmUp:        200,
		TargetSync:    250,
		EpsStart:      1.0,
		EpsEnd:        0.05,
		EpsDecaySteps: 5000,
		Seed:          1,
	}
}

// DDQN is a Double-DQN learner: the online network selects the best next
// action, the target network evaluates it — decoupling selection from
// evaluation to curb Q-value over-estimation (van Hasselt et al. [47]).
type DDQN struct {
	cfg     DDQNConfig
	online  *MLP
	target  *MLP
	replay  *Replay
	rng     *rand.Rand
	src     *countedSource
	actions int

	envSteps   int
	trainSteps int
}

// countedSource wraps the learner's seeded source and counts every draw, so
// a checkpoint can record the exact RNG position as (seed, draws) and resume
// by fast-forwarding. It deliberately implements only rand.Source (not
// Source64): rand.Rand then derives every method the learner uses (Float64,
// Intn) from Int63 alone, which keeps the value stream bit-identical to the
// unwrapped rand.NewSource the learner has always trained on.
type countedSource struct {
	src   rand.Source
	draws uint64
}

func (c *countedSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// NewDDQN builds a learner for the given state/action dimensions.
func NewDDQN(stateDim, actions int, cfg DDQNConfig) (*DDQN, error) {
	if stateDim < 1 || actions < 2 {
		return nil, fmt.Errorf("rl: invalid dimensions state=%d actions=%d", stateDim, actions)
	}
	sizes := append(append([]int{stateDim}, cfg.Hidden...), actions)
	online, err := NewMLP(sizes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	src := &countedSource{src: rand.NewSource(cfg.Seed)}
	return &DDQN{
		cfg:     cfg,
		online:  online,
		target:  online.Clone(),
		replay:  NewReplay(cfg.ReplayCap),
		rng:     rand.New(src),
		src:     src,
		actions: actions,
	}, nil
}

// Epsilon returns the current exploration rate.
func (d *DDQN) Epsilon() float64 {
	if d.cfg.EpsDecaySteps <= 0 {
		return d.cfg.EpsEnd
	}
	frac := float64(d.envSteps) / float64(d.cfg.EpsDecaySteps)
	if frac > 1 {
		frac = 1
	}
	return d.cfg.EpsStart + (d.cfg.EpsEnd-d.cfg.EpsStart)*frac
}

// SelectAction picks an ε-greedy action during training (explore=true) or
// the greedy action at inference (explore=false).
func (d *DDQN) SelectAction(state []float64, explore bool) int {
	if explore && d.rng.Float64() < d.Epsilon() {
		return d.rng.Intn(d.actions)
	}
	return argmax(d.online.Forward(state))
}

// Q returns the online network's Q-values for a state.
func (d *DDQN) Q(state []float64) []float64 { return d.online.Forward(state) }

// Observe records a transition and runs one training step once warm.
// It returns the training loss (0 when no step ran).
func (d *DDQN) Observe(t Transition) float64 {
	d.replay.Add(t)
	d.envSteps++
	if d.replay.Len() < d.cfg.WarmUp {
		return 0
	}
	return d.trainStep()
}

func (d *DDQN) trainStep() float64 {
	batch := d.replay.Sample(d.rng, d.cfg.BatchSize)
	inputs := make([][]float64, len(batch))
	actions := make([]int, len(batch))
	targets := make([]float64, len(batch))
	for i, tr := range batch {
		inputs[i] = tr.State
		actions[i] = tr.Action
		y := tr.Reward
		if !tr.Done {
			// Double-DQN target: online net selects, target net evaluates.
			best := argmax(d.online.Forward(tr.Next))
			y += d.cfg.Gamma * d.target.Forward(tr.Next)[best]
		}
		targets[i] = y
	}
	loss := d.online.TrainTargets(inputs, actions, targets, d.cfg.LR)
	d.trainSteps++
	if d.cfg.TargetSync > 0 && d.trainSteps%d.cfg.TargetSync == 0 {
		d.target.CopyWeightsFrom(d.online)
	}
	return loss
}

// Policy freezes the current online network into an inference-only policy.
func (d *DDQN) Policy() *Policy {
	return &Policy{net: d.online.Clone()}
}

// Policy is a frozen greedy policy over a trained Q-network.
type Policy struct {
	net *MLP
}

// Act returns the greedy action for a state.
func (p *Policy) Act(state []float64) int { return argmax(p.net.Forward(state)) }

// ActEpsilonGreedy returns an ε-greedy action drawn from the caller's RNG,
// mirroring SelectAction's draw order (one Float64, then Intn only on the
// explore branch). Parallel episode workers act from a frozen policy with
// the ε and RNG pinned at episode-dispatch time, which is what makes the
// pipelined schedule reproducible.
func (p *Policy) ActEpsilonGreedy(state []float64, eps float64, rng *rand.Rand, actions int) int {
	if rng.Float64() < eps {
		return rng.Intn(actions)
	}
	return argmax(p.net.Forward(state))
}

// Q returns the Q-values for a state.
func (p *Policy) Q(state []float64) []float64 { return p.net.Forward(state) }

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
