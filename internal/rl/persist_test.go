package rl

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

func TestMLPJSONRoundTrip(t *testing.T) {
	m := MustNewMLP([]int{4, 8, 3}, 11)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var restored MLP
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.4, 2, 0.7}
	a, b := m.Forward(x), restored.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-trip output mismatch: %v vs %v", a, b)
		}
	}
}

func TestMLPUnmarshalRejectsMalformed(t *testing.T) {
	var m MLP
	cases := []string{
		`{`,
		`{"sizes":[4],"weights":[],"biases":[]}`,
		`{"sizes":[2,3],"weights":[[1,2,3]],"biases":[[0,0,0]]}`, // wrong weight shape
		`{"sizes":[2,3],"weights":[[1,2,3,4,5,6]],"biases":[[0]]}`,
		`{"sizes":[2,3],"weights":[],"biases":[]}`,
	}
	for _, c := range cases {
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("malformed %q accepted", c)
		}
	}
}

func TestSaveLoadPolicy(t *testing.T) {
	d, err := NewDDQN(3, 2, DefaultDDQNConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := d.Policy()
	path := filepath.Join(t.TempDir(), "policy.json")
	if err := SavePolicy(p, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPolicy(path)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 0, -1}
	if loaded.Act(x) != p.Act(x) {
		t.Error("loaded policy disagrees with original")
	}
	qa, qb := p.Q(x), loaded.Q(x)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("Q mismatch: %v vs %v", qa, qb)
		}
	}
}

func TestLoadPolicyMissingFile(t *testing.T) {
	if _, err := LoadPolicy(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}
