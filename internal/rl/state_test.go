package rl

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// The counted source must be stream-transparent: wrapping rand.NewSource
// changes nothing about the values the learner draws (Float64 and Intn are
// both derived from Int63 when the source does not expose Source64), so a
// learner built on it trains bitwise-identically to the historical one.
func TestCountedSourceStreamMatchesPlainSource(t *testing.T) {
	plain := rand.New(rand.NewSource(42))
	counted := rand.New(&countedSource{src: rand.NewSource(42)})
	for i := 0; i < 1000; i++ {
		if p, c := plain.Float64(), counted.Float64(); p != c {
			t.Fatalf("Float64 draw %d diverged: %v != %v", i, p, c)
		}
		if p, c := plain.Intn(7), counted.Intn(7); p != c {
			t.Fatalf("Intn draw %d diverged: %d != %d", i, p, c)
		}
	}
}

// synthetic transition stream for learner tests.
func synthTransitions(seed int64, n, dim int) []Transition {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Transition, n)
	for i := range out {
		s := make([]float64, dim)
		nx := make([]float64, dim)
		for j := range s {
			s[j] = rng.NormFloat64()
			nx[j] = rng.NormFloat64()
		}
		out[i] = Transition{State: s, Action: rng.Intn(3), Reward: rng.Float64(), Next: nx, Done: rng.Intn(10) == 0}
	}
	return out
}

func testDDQNConfig() DDQNConfig {
	cfg := DefaultDDQNConfig()
	cfg.Hidden = []int{16}
	cfg.WarmUp = 20
	cfg.BatchSize = 8
	cfg.TargetSync = 15
	cfg.ReplayCap = 64
	cfg.Seed = 9
	return cfg
}

// Capturing a learner mid-training and restoring it must continue the exact
// run: identical action selections, identical Q-values, identical training
// losses — including through replay evictions, target syncs and Adam steps.
func TestDDQNStateRoundTripContinuesExactly(t *testing.T) {
	const dim, actions = 6, 3
	cfg := testDDQNConfig()
	stream := synthTransitions(4, 200, dim)

	ref, err := NewDDQN(dim, actions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range stream[:120] {
		ref.SelectAction(tr.State, true)
		ref.Observe(tr)
	}

	restored, err := RestoreDDQN(actions, cfg, ref.State())
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range stream[120:] {
		if a, b := ref.SelectAction(tr.State, true), restored.SelectAction(tr.State, true); a != b {
			t.Fatalf("step %d: action diverged after restore: %d != %d", i, a, b)
		}
		if la, lb := ref.Observe(tr), restored.Observe(tr); la != lb {
			t.Fatalf("step %d: loss diverged after restore: %v != %v", i, la, lb)
		}
	}
	qa, qb := ref.Q(stream[0].State), restored.Q(stream[0].State)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("final Q diverged at %d: %v != %v", i, qa[i], qb[i])
		}
	}
	if ref.Epsilon() != restored.Epsilon() {
		t.Fatalf("epsilon diverged: %v != %v", ref.Epsilon(), restored.Epsilon())
	}
}

// The JSON round trip of a full learner state (the checkpoint path) must
// preserve it losslessly — float64s survive encoding/json bit-for-bit.
func TestDDQNStateSurvivesJSON(t *testing.T) {
	const dim, actions = 4, 3
	cfg := testDDQNConfig()
	d, err := NewDDQN(dim, actions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range synthTransitions(5, 60, dim) {
		d.SelectAction(tr.State, true)
		d.Observe(tr)
	}
	raw, err := json.Marshal(d.State())
	if err != nil {
		t.Fatal(err)
	}
	var rt DDQNState
	if err := json.Unmarshal(raw, &rt); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreDDQN(actions, cfg, rt)
	if err != nil {
		t.Fatal(err)
	}
	probe := synthTransitions(6, 30, dim)
	for i, tr := range probe {
		if a, b := d.SelectAction(tr.State, true), restored.SelectAction(tr.State, true); a != b {
			t.Fatalf("step %d: action diverged after JSON round trip: %d != %d", i, a, b)
		}
		if la, lb := d.Observe(tr), restored.Observe(tr); la != lb {
			t.Fatalf("step %d: loss diverged after JSON round trip: %v != %v", i, la, lb)
		}
	}
}

// ActEpsilonGreedy with the learner's current ε and a cloned RNG position
// mirrors SelectAction's draw order, so frozen-snapshot acting in the
// parallel trainer explores exactly like an inline learner at that ε.
func TestActEpsilonGreedyMirrorsSelectAction(t *testing.T) {
	const dim, actions = 5, 3
	cfg := testDDQNConfig()
	cfg.EpsDecaySteps = 0 // pin ε at EpsEnd
	d, err := NewDDQN(dim, actions, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Policy()
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i, tr := range synthTransitions(7, 300, dim) {
		if a, b := d.SelectAction(tr.State, true), p.ActEpsilonGreedy(tr.State, cfg.EpsEnd, rng, actions); a != b {
			t.Fatalf("draw %d: snapshot acting diverged from inline learner: %d != %d", i, a, b)
		}
	}
}
