package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewMLPValidation(t *testing.T) {
	if _, err := NewMLP([]int{4}, 1); err == nil {
		t.Error("single-layer spec accepted")
	}
	if _, err := NewMLP([]int{4, 0, 2}, 1); err == nil {
		t.Error("zero-width layer accepted")
	}
	if _, err := NewMLP([]int{4, 8, 2}, 1); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestMustNewMLPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewMLP should panic")
		}
	}()
	MustNewMLP([]int{1}, 0)
}

func TestMLPDims(t *testing.T) {
	m := MustNewMLP([]int{5, 8, 3}, 1)
	if m.InputDim() != 5 || m.OutputDim() != 3 {
		t.Errorf("dims = %d %d", m.InputDim(), m.OutputDim())
	}
	out := m.Forward([]float64{1, 2, 3, 4, 5})
	if len(out) != 3 {
		t.Errorf("output size = %d", len(out))
	}
}

func TestMLPDeterministicSeed(t *testing.T) {
	a := MustNewMLP([]int{3, 6, 2}, 7)
	b := MustNewMLP([]int{3, 6, 2}, 7)
	x := []float64{0.5, -1, 2}
	oa, ob := a.Forward(x), b.Forward(x)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("same seed should give identical networks")
		}
	}
	c := MustNewMLP([]int{3, 6, 2}, 8)
	oc := c.Forward(x)
	if oa[0] == oc[0] && oa[1] == oc[1] {
		t.Error("different seeds should differ")
	}
}

func TestMLPLearnsRegression(t *testing.T) {
	// Fit f(x) = [x0+x1, x0-x1] on the selected-output loss.
	m := MustNewMLP([]int{2, 16, 2}, 3)
	rng := rand.New(rand.NewSource(5))
	var lastLoss float64
	for epoch := 0; epoch < 600; epoch++ {
		inputs := make([][]float64, 16)
		actions := make([]int, 16)
		targets := make([]float64, 16)
		for i := range inputs {
			x0, x1 := rng.Float64()*2-1, rng.Float64()*2-1
			inputs[i] = []float64{x0, x1}
			actions[i] = i % 2
			if actions[i] == 0 {
				targets[i] = x0 + x1
			} else {
				targets[i] = x0 - x1
			}
		}
		lastLoss = m.TrainTargets(inputs, actions, targets, 3e-3)
	}
	if lastLoss > 0.05 {
		t.Errorf("final loss = %v, want < 0.05", lastLoss)
	}
	out := m.Forward([]float64{0.3, 0.2})
	if math.Abs(out[0]-0.5) > 0.2 || math.Abs(out[1]-0.1) > 0.2 {
		t.Errorf("prediction = %v, want ~[0.5, 0.1]", out)
	}
}

func TestMLPTrainEmptyBatch(t *testing.T) {
	m := MustNewMLP([]int{2, 4, 2}, 1)
	if got := m.TrainTargets(nil, nil, nil, 0.01); got != 0 {
		t.Errorf("empty batch loss = %v", got)
	}
}

func TestMLPCloneIndependent(t *testing.T) {
	m := MustNewMLP([]int{2, 4, 2}, 1)
	c := m.Clone()
	x := []float64{1, -1}
	before := c.Forward(x)
	// Train the original heavily; the clone must not move.
	for i := 0; i < 50; i++ {
		m.TrainTargets([][]float64{x}, []int{0}, []float64{10}, 0.01)
	}
	after := c.Forward(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("clone shares weights with original")
		}
	}
	// CopyWeightsFrom re-syncs.
	c.CopyWeightsFrom(m)
	synced := c.Forward(x)
	trained := m.Forward(x)
	for i := range synced {
		if synced[i] != trained[i] {
			t.Fatal("CopyWeightsFrom did not sync")
		}
	}
}

func TestReplayRingBuffer(t *testing.T) {
	r := NewReplay(3)
	for i := 0; i < 5; i++ {
		r.Add(Transition{Action: i})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	// Oldest two evicted: remaining actions are 2, 3, 4 in some slots.
	seen := map[int]bool{}
	for _, tr := range r.buf {
		seen[tr.Action] = true
	}
	for _, a := range []int{2, 3, 4} {
		if !seen[a] {
			t.Errorf("action %d missing after eviction", a)
		}
	}
	if seen[0] || seen[1] {
		t.Error("evicted transitions still present")
	}
}

func TestReplaySample(t *testing.T) {
	r := NewReplay(10)
	rng := rand.New(rand.NewSource(1))
	if got := r.Sample(rng, 4); got != nil {
		t.Errorf("sampling empty buffer = %v", got)
	}
	r.Add(Transition{Action: 7})
	s := r.Sample(rng, 4)
	if len(s) != 4 {
		t.Fatalf("sample size = %d", len(s))
	}
	for _, tr := range s {
		if tr.Action != 7 {
			t.Error("sample returned foreign transition")
		}
	}
}

func TestReplayCapacityFloor(t *testing.T) {
	r := NewReplay(0)
	r.Add(Transition{})
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestDDQNValidation(t *testing.T) {
	if _, err := NewDDQN(0, 3, DefaultDDQNConfig()); err == nil {
		t.Error("zero state dim accepted")
	}
	if _, err := NewDDQN(4, 1, DefaultDDQNConfig()); err == nil {
		t.Error("single action accepted")
	}
}

func TestDDQNEpsilonDecay(t *testing.T) {
	cfg := DefaultDDQNConfig()
	cfg.EpsStart, cfg.EpsEnd, cfg.EpsDecaySteps = 1.0, 0.1, 100
	cfg.WarmUp = 1 << 30 // disable training for this test
	d, err := NewDDQN(2, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Epsilon(); got != 1.0 {
		t.Errorf("initial epsilon = %v", got)
	}
	for i := 0; i < 50; i++ {
		d.Observe(Transition{State: []float64{0, 0}, Next: []float64{0, 0}})
	}
	if got := d.Epsilon(); math.Abs(got-0.55) > 1e-9 {
		t.Errorf("mid epsilon = %v, want 0.55", got)
	}
	for i := 0; i < 200; i++ {
		d.Observe(Transition{State: []float64{0, 0}, Next: []float64{0, 0}})
	}
	if got := d.Epsilon(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("final epsilon = %v, want 0.1", got)
	}
}

func TestDDQNEpsilonNoDecayConfig(t *testing.T) {
	cfg := DefaultDDQNConfig()
	cfg.EpsDecaySteps = 0
	cfg.EpsEnd = 0.2
	d, err := NewDDQN(2, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Epsilon(); got != 0.2 {
		t.Errorf("epsilon = %v, want EpsEnd", got)
	}
}

// A tiny two-state MDP: state [1,0] → action 1 gives reward 1, action 0
// gives 0; state [0,1] → the reverse. D-DQN must learn the optimal policy.
func TestDDQNSolvesContextualBandit(t *testing.T) {
	cfg := DefaultDDQNConfig()
	cfg.Hidden = []int{16}
	cfg.WarmUp = 32
	cfg.BatchSize = 16
	cfg.EpsDecaySteps = 400
	cfg.LR = 5e-3
	cfg.Seed = 9
	d, err := NewDDQN(2, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	states := [][]float64{{1, 0}, {0, 1}}
	for i := 0; i < 1500; i++ {
		s := states[rng.Intn(2)]
		a := d.SelectAction(s, true)
		r := 0.0
		if (s[0] == 1 && a == 1) || (s[1] == 1 && a == 0) {
			r = 1
		}
		d.Observe(Transition{State: s, Action: a, Reward: r, Next: s, Done: true})
	}
	p := d.Policy()
	if p.Act(states[0]) != 1 {
		t.Errorf("policy([1,0]) = %d, want 1; Q=%v", p.Act(states[0]), p.Q(states[0]))
	}
	if p.Act(states[1]) != 0 {
		t.Errorf("policy([0,1]) = %d, want 0; Q=%v", p.Act(states[1]), p.Q(states[1]))
	}
}

// A 3-step chain MDP where the reward only arrives at the end: tests that
// bootstrapping propagates value backwards (γ > 0 path).
func TestDDQNLearnsDelayedReward(t *testing.T) {
	cfg := DefaultDDQNConfig()
	cfg.Hidden = []int{24}
	cfg.WarmUp = 64
	cfg.EpsDecaySteps = 2000
	cfg.LR = 3e-3
	cfg.TargetSync = 100
	cfg.Seed = 5
	d, err := NewDDQN(3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oneHot := func(i int) []float64 {
		s := make([]float64, 3)
		s[i] = 1
		return s
	}
	// Chain: s0 -a1-> s1 -a1-> s2 -a1-> terminal(+1); action 0 anywhere
	// terminates with 0 reward.
	for ep := 0; ep < 900; ep++ {
		pos := 0
		for {
			s := oneHot(pos)
			a := d.SelectAction(s, true)
			if a == 0 {
				d.Observe(Transition{State: s, Action: 0, Reward: 0, Next: s, Done: true})
				break
			}
			if pos == 2 {
				d.Observe(Transition{State: s, Action: 1, Reward: 1, Next: s, Done: true})
				break
			}
			next := oneHot(pos + 1)
			d.Observe(Transition{State: s, Action: 1, Reward: 0, Next: next, Done: false})
			pos++
		}
	}
	p := d.Policy()
	for pos := 0; pos < 3; pos++ {
		if got := p.Act(oneHot(pos)); got != 1 {
			t.Errorf("policy(s%d) = %d, want 1 (Q=%v)", pos, got, p.Q(oneHot(pos)))
		}
	}
	// Value should decay along the chain: Q(s2,1) > Q(s0,1).
	if p.Q(oneHot(2))[1] <= p.Q(oneHot(0))[1] {
		t.Errorf("value did not decay with distance to reward: %v vs %v",
			p.Q(oneHot(2))[1], p.Q(oneHot(0))[1])
	}
}

func TestArgmax(t *testing.T) {
	if got := argmax([]float64{1, 3, 2}); got != 1 {
		t.Errorf("argmax = %d", got)
	}
	if got := argmax([]float64{-5}); got != 0 {
		t.Errorf("argmax single = %d", got)
	}
	// Ties resolve to the first maximum.
	if got := argmax([]float64{2, 2}); got != 0 {
		t.Errorf("argmax tie = %d", got)
	}
}
