// Package rl implements the reinforcement-learning machinery behind
// iPrism's Safety-hazard Mitigation Controller: a from-scratch multilayer
// perceptron with Adam, an experience-replay buffer, and the Double-DQN
// training algorithm of van Hasselt et al. [47].
//
// The paper's SMC uses a CNN over camera frames as the Q-network backbone;
// this reproduction substitutes a ground-truth feature vector (see package
// smc), so an MLP suffices as the function approximator. The D-DQN logic —
// ε-greedy exploration, target network, decoupled action selection and
// evaluation — is reproduced faithfully.
package rl

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a fully connected network with ReLU hidden activations and a
// linear output layer, trained with Adam.
type MLP struct {
	sizes   []int
	weights [][]float64 // weights[l][j*in+i]: layer l, unit j, input i
	biases  [][]float64

	// Adam moments.
	mW, vW [][]float64
	mB, vB [][]float64
	adamT  int
}

// NewMLP constructs a network with the given layer sizes (input first,
// output last) and He-initialised weights drawn from the seeded source.
func NewMLP(sizes []int, seed int64) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("rl: need at least input and output layers, got %v", sizes)
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("rl: invalid layer size in %v", sizes)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(sizes) - 1
	m := &MLP{
		sizes:   append([]int(nil), sizes...),
		weights: make([][]float64, n),
		biases:  make([][]float64, n),
		mW:      make([][]float64, n),
		vW:      make([][]float64, n),
		mB:      make([][]float64, n),
		vB:      make([][]float64, n),
	}
	for l := 0; l < n; l++ {
		in, out := sizes[l], sizes[l+1]
		m.weights[l] = make([]float64, in*out)
		m.biases[l] = make([]float64, out)
		m.mW[l] = make([]float64, in*out)
		m.vW[l] = make([]float64, in*out)
		m.mB[l] = make([]float64, out)
		m.vB[l] = make([]float64, out)
		scale := math.Sqrt(2.0 / float64(in))
		for i := range m.weights[l] {
			m.weights[l][i] = rng.NormFloat64() * scale
		}
	}
	return m, nil
}

// MustNewMLP is NewMLP for known-good layer specifications.
func MustNewMLP(sizes []int, seed int64) *MLP {
	m, err := NewMLP(sizes, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// InputDim returns the input dimension.
func (m *MLP) InputDim() int { return m.sizes[0] }

// OutputDim returns the output dimension.
func (m *MLP) OutputDim() int { return m.sizes[len(m.sizes)-1] }

// Forward runs inference, returning a freshly allocated output vector.
func (m *MLP) Forward(x []float64) []float64 {
	acts := m.forwardActs(x)
	out := acts[len(acts)-1]
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// forwardActs returns the activation of every layer (input included).
func (m *MLP) forwardActs(x []float64) [][]float64 {
	acts := make([][]float64, len(m.sizes))
	acts[0] = x
	for l := 0; l < len(m.weights); l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		a := make([]float64, out)
		w := m.weights[l]
		prev := acts[l]
		for j := 0; j < out; j++ {
			sum := m.biases[l][j]
			row := w[j*in : (j+1)*in]
			for i, v := range prev {
				sum += row[i] * v
			}
			if l < len(m.weights)-1 && sum < 0 {
				sum = 0 // ReLU on hidden layers
			}
			a[j] = sum
		}
		acts[l+1] = a
	}
	return acts
}

// TrainTargets performs one Adam step of semi-gradient regression: for each
// sample, only the output unit actions[s] is regressed towards targets[s]
// (the DQN loss). It returns the mean squared error over the batch.
func (m *MLP) TrainTargets(inputs [][]float64, actions []int, targets []float64, lr float64) float64 {
	if len(inputs) == 0 {
		return 0
	}
	n := len(m.weights)
	gradW := make([][]float64, n)
	gradB := make([][]float64, n)
	for l := 0; l < n; l++ {
		gradW[l] = make([]float64, len(m.weights[l]))
		gradB[l] = make([]float64, len(m.biases[l]))
	}
	loss := 0.0
	for s, x := range inputs {
		acts := m.forwardActs(x)
		out := acts[len(acts)-1]
		a := actions[s]
		err := out[a] - targets[s]
		loss += err * err
		// Output-layer delta: only the selected unit has gradient.
		delta := make([]float64, m.OutputDim())
		delta[a] = 2 * err / float64(len(inputs))
		for l := n - 1; l >= 0; l-- {
			in := m.sizes[l]
			prev := acts[l]
			var nextDelta []float64
			if l > 0 {
				nextDelta = make([]float64, in)
			}
			w := m.weights[l]
			for j, d := range delta {
				if d == 0 {
					continue
				}
				gradB[l][j] += d
				row := w[j*in : (j+1)*in]
				grow := gradW[l][j*in : (j+1)*in]
				for i, v := range prev {
					grow[i] += d * v
					if l > 0 {
						nextDelta[i] += d * row[i]
					}
				}
			}
			if l > 0 {
				// ReLU derivative of the hidden activation.
				for i, v := range acts[l] {
					if v <= 0 {
						nextDelta[i] = 0
					}
				}
				delta = nextDelta
			}
		}
	}
	m.adamStep(gradW, gradB, lr)
	return loss / float64(len(inputs))
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func (m *MLP) adamStep(gradW, gradB [][]float64, lr float64) {
	m.adamT++
	c1 := 1 - math.Pow(adamBeta1, float64(m.adamT))
	c2 := 1 - math.Pow(adamBeta2, float64(m.adamT))
	for l := range m.weights {
		for i, g := range gradW[l] {
			m.mW[l][i] = adamBeta1*m.mW[l][i] + (1-adamBeta1)*g
			m.vW[l][i] = adamBeta2*m.vW[l][i] + (1-adamBeta2)*g*g
			m.weights[l][i] -= lr * (m.mW[l][i] / c1) / (math.Sqrt(m.vW[l][i]/c2) + adamEps)
		}
		for i, g := range gradB[l] {
			m.mB[l][i] = adamBeta1*m.mB[l][i] + (1-adamBeta1)*g
			m.vB[l][i] = adamBeta2*m.vB[l][i] + (1-adamBeta2)*g*g
			m.biases[l][i] -= lr * (m.mB[l][i] / c1) / (math.Sqrt(m.vB[l][i]/c2) + adamEps)
		}
	}
}

// Clone returns a deep copy of the network (weights only; fresh optimiser
// state), used for the D-DQN target network.
func (m *MLP) Clone() *MLP {
	c := MustNewMLP(m.sizes, 0)
	c.CopyWeightsFrom(m)
	return c
}

// CopyWeightsFrom overwrites this network's weights with src's (the target-
// network sync step). Layer shapes must match.
func (m *MLP) CopyWeightsFrom(src *MLP) {
	for l := range m.weights {
		copy(m.weights[l], src.weights[l])
		copy(m.biases[l], src.biases[l])
	}
}
