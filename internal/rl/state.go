package rl

import (
	"fmt"
	"math/rand"
)

// mlpState is the complete serialisable state of an MLP — unlike mlpFile
// (weights only, for deployed policies) it carries the Adam moments and step
// counter, so a restored network continues optimising exactly where the
// original stopped.
type mlpState struct {
	Sizes   []int       `json:"sizes"`
	Weights [][]float64 `json:"weights"`
	Biases  [][]float64 `json:"biases"`
	MW      [][]float64 `json:"m_w"`
	VW      [][]float64 `json:"v_w"`
	MB      [][]float64 `json:"m_b"`
	VB      [][]float64 `json:"v_b"`
	AdamT   int         `json:"adam_t"`
}

func captureMLP(m *MLP) mlpState {
	return mlpState{
		Sizes:   append([]int(nil), m.sizes...),
		Weights: copy2d(m.weights),
		Biases:  copy2d(m.biases),
		MW:      copy2d(m.mW),
		VW:      copy2d(m.vW),
		MB:      copy2d(m.mB),
		VB:      copy2d(m.vB),
		AdamT:   m.adamT,
	}
}

func restoreMLP(st mlpState) (*MLP, error) {
	m, err := NewMLP(st.Sizes, 0)
	if err != nil {
		return nil, err
	}
	for _, pair := range []struct {
		dst, src [][]float64
		name     string
	}{
		{m.weights, st.Weights, "weights"},
		{m.biases, st.Biases, "biases"},
		{m.mW, st.MW, "m_w"},
		{m.vW, st.VW, "v_w"},
		{m.mB, st.MB, "m_b"},
		{m.vB, st.VB, "v_b"},
	} {
		if len(pair.src) != len(pair.dst) {
			return nil, fmt.Errorf("rl: %s layer count mismatch: %d for %v", pair.name, len(pair.src), st.Sizes)
		}
		for l := range pair.dst {
			if len(pair.src[l]) != len(pair.dst[l]) {
				return nil, fmt.Errorf("rl: %s layer %d shape mismatch", pair.name, l)
			}
			copy(pair.dst[l], pair.src[l])
		}
	}
	m.adamT = st.AdamT
	return m, nil
}

func copy2d(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = append([]float64(nil), x...)
	}
	return out
}

// ReplayState is the serialisable state of a replay ring buffer.
type ReplayState struct {
	Cap  int          `json:"cap"`
	Buf  []Transition `json:"buf"`
	Next int          `json:"next"`
	Full bool         `json:"full"`
}

// State captures the buffer for checkpointing.
func (r *Replay) State() ReplayState {
	return ReplayState{
		Cap:  cap(r.buf),
		Buf:  append([]Transition(nil), r.buf...),
		Next: r.next,
		Full: r.full,
	}
}

// RestoreReplay rebuilds a buffer from a captured state.
func RestoreReplay(st ReplayState) (*Replay, error) {
	if st.Cap < 1 || len(st.Buf) > st.Cap || st.Next < 0 || st.Next >= st.Cap {
		return nil, fmt.Errorf("rl: invalid replay state cap=%d len=%d next=%d", st.Cap, len(st.Buf), st.Next)
	}
	r := &Replay{buf: make([]Transition, len(st.Buf), st.Cap), next: st.Next, full: st.Full}
	copy(r.buf, st.Buf)
	return r, nil
}

// DDQNState is the complete serialisable state of a learner mid-training:
// both networks with optimiser moments, the replay ring, the step counters
// driving the ε schedule and target syncs, and the RNG position. Restoring
// it and continuing produces the exact transition/update stream an
// uninterrupted run would have produced.
type DDQNState struct {
	Online     mlpState    `json:"online"`
	Target     mlpState    `json:"target"`
	Replay     ReplayState `json:"replay"`
	EnvSteps   int         `json:"env_steps"`
	TrainSteps int         `json:"train_steps"`
	RNGDraws   uint64      `json:"rng_draws"` // Int63 draws since seeding
}

// State captures the learner for checkpointing.
func (d *DDQN) State() DDQNState {
	return DDQNState{
		Online:     captureMLP(d.online),
		Target:     captureMLP(d.target),
		Replay:     d.replay.State(),
		EnvSteps:   d.envSteps,
		TrainSteps: d.trainSteps,
		RNGDraws:   d.src.draws,
	}
}

// RestoreDDQN rebuilds a learner from a captured state. cfg must match the
// run that produced the state (the RNG is re-seeded from cfg.Seed and
// fast-forwarded to the recorded draw position).
func RestoreDDQN(actions int, cfg DDQNConfig, st DDQNState) (*DDQN, error) {
	online, err := restoreMLP(st.Online)
	if err != nil {
		return nil, fmt.Errorf("rl: restore online net: %w", err)
	}
	target, err := restoreMLP(st.Target)
	if err != nil {
		return nil, fmt.Errorf("rl: restore target net: %w", err)
	}
	replay, err := RestoreReplay(st.Replay)
	if err != nil {
		return nil, err
	}
	wantCap := cfg.ReplayCap
	if wantCap < 1 {
		wantCap = 1
	}
	if st.Replay.Cap != wantCap {
		return nil, fmt.Errorf("rl: replay capacity %d does not match config %d", st.Replay.Cap, wantCap)
	}
	src := &countedSource{src: rand.NewSource(cfg.Seed)}
	for src.draws < st.RNGDraws {
		src.Int63()
	}
	return &DDQN{
		cfg:        cfg,
		online:     online,
		target:     target,
		replay:     replay,
		rng:        rand.New(src),
		src:        src,
		actions:    actions,
		envSteps:   st.EnvSteps,
		trainSteps: st.TrainSteps,
	}, nil
}
