package sim

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/vehicle"
)

func recordedOutcome(t *testing.T) Outcome {
	t.Helper()
	blocker := actor.NewVehicle(3, vehicle.State{Pos: geom.V(40, 1.75)})
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 15},
		[]*actor.Actor{blocker}, []Behavior{&Stationary{}})
	return Run(w, &testDriver{targetY: 1.75, speed: 15}, nil,
		RunConfig{MaxSteps: 100, RecordTrace: true})
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	out := recordedOutcome(t)
	if !out.Collision {
		t.Fatal("expected a collision episode")
	}
	path := filepath.Join(t.TempDir(), "episode.jsonl")
	if err := SaveTrace(path, out, 0.1); err != nil {
		t.Fatal(err)
	}
	header, steps, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !header.Collision || header.CollisionActor != 3 || header.Dt != 0.1 {
		t.Errorf("header = %+v", header)
	}
	if header.ImpactSpeed <= 0 {
		t.Errorf("impact speed = %v, want > 0", header.ImpactSpeed)
	}
	if len(steps) != len(out.Trace) {
		t.Fatalf("steps = %d, want %d", len(steps), len(out.Trace))
	}
	for i := range steps {
		if steps[i].Ego != out.Trace[i].Ego {
			t.Fatalf("step %d ego mismatch", i)
		}
		if steps[i].ActorStates[0] != out.Trace[i].ActorStates[0] {
			t.Fatalf("step %d actor mismatch", i)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
	if _, _, err := ReadTrace(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed header accepted")
	}
	if _, _, err := ReadTrace(strings.NewReader(`{"version":99}` + "\n")); err == nil {
		t.Error("future version accepted")
	}
	// Actor-count mismatch between header and steps.
	bad := `{"version":1,"dtSeconds":0.1,"numActors":2}
{"t":0,"ego":{},"u":{},"actors":[{}],"yaws":[0]}
`
	if _, _, err := ReadTrace(strings.NewReader(bad)); err == nil {
		t.Error("actor-count mismatch accepted")
	}
}

func TestLoadTraceMissingFile(t *testing.T) {
	if _, _, err := LoadTrace(filepath.Join(t.TempDir(), "none.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
}
