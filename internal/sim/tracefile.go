package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/vehicle"
)

// Episode traces serialise as JSON Lines: a header line followed by one
// line per step. The format lets external tooling (plotting, labelling,
// cross-run diffing) consume runs without linking against the simulator.

// TraceHeader is the first line of a trace file.
type TraceHeader struct {
	Version   int     `json:"version"`
	Dt        float64 `json:"dtSeconds"`
	NumActors int     `json:"numActors"`
	// Outcome summary.
	Collision      bool    `json:"collision"`
	CollisionStep  int     `json:"collisionStep"`
	CollisionActor int     `json:"collisionActor"`
	ImpactSpeed    float64 `json:"impactSpeedMps"`
	Completed      bool    `json:"completed"`
	Steps          int     `json:"steps"`
}

// traceLine is one serialised step.
type traceLine struct {
	Time        float64         `json:"t"`
	Ego         vehicle.State   `json:"ego"`
	EgoControl  vehicle.Control `json:"u"`
	Mitigated   bool            `json:"mitigated,omitempty"`
	ActorStates []vehicle.State `json:"actors"`
	ActorYaws   []float64       `json:"yaws"`
	Crashed     []bool          `json:"crashed,omitempty"`
}

const traceVersion = 1

// WriteTrace serialises an episode outcome (with its recorded trace) to w.
func WriteTrace(w io.Writer, out Outcome, dt float64) error {
	numActors := 0
	if len(out.Trace) > 0 {
		numActors = len(out.Trace[0].ActorStates)
	}
	enc := json.NewEncoder(w)
	header := TraceHeader{
		Version:        traceVersion,
		Dt:             dt,
		NumActors:      numActors,
		Collision:      out.Collision,
		CollisionStep:  out.CollisionStep,
		CollisionActor: out.CollisionActor,
		ImpactSpeed:    out.ImpactSpeed,
		Completed:      out.Completed,
		Steps:          out.Steps,
	}
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("sim: encode trace header: %w", err)
	}
	for _, rec := range out.Trace {
		line := traceLine{
			Time:        rec.Time,
			Ego:         rec.Ego,
			EgoControl:  rec.EgoControl,
			Mitigated:   rec.Mitigated,
			ActorStates: rec.ActorStates,
			ActorYaws:   rec.ActorYaws,
			Crashed:     rec.Crashed,
		}
		if err := enc.Encode(line); err != nil {
			return fmt.Errorf("sim: encode trace step: %w", err)
		}
	}
	return nil
}

// ReadTrace parses a trace written by WriteTrace, returning the header and
// the reconstructed step records.
func ReadTrace(r io.Reader) (TraceHeader, []StepRecord, error) {
	var header TraceHeader
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return header, nil, fmt.Errorf("sim: read trace header: %w", err)
		}
		return header, nil, fmt.Errorf("sim: empty trace")
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		return header, nil, fmt.Errorf("sim: decode trace header: %w", err)
	}
	if header.Version != traceVersion {
		return header, nil, fmt.Errorf("sim: unsupported trace version %d", header.Version)
	}
	var steps []StepRecord
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line traceLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return header, nil, fmt.Errorf("sim: decode trace step %d: %w", len(steps), err)
		}
		if len(line.ActorStates) != header.NumActors {
			return header, nil, fmt.Errorf("sim: step %d has %d actors, header says %d",
				len(steps), len(line.ActorStates), header.NumActors)
		}
		steps = append(steps, StepRecord{
			Time:        line.Time,
			Ego:         line.Ego,
			EgoControl:  line.EgoControl,
			Mitigated:   line.Mitigated,
			ActorStates: line.ActorStates,
			ActorYaws:   line.ActorYaws,
			Crashed:     line.Crashed,
		})
	}
	if err := sc.Err(); err != nil {
		return header, nil, fmt.Errorf("sim: read trace: %w", err)
	}
	return header, steps, nil
}

// SaveTrace writes an episode's trace to path.
func SaveTrace(path string, out Outcome, dt float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sim: create trace file: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := WriteTrace(bw, out, dt); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadTrace reads a trace file written by SaveTrace.
func LoadTrace(path string) (TraceHeader, []StepRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return TraceHeader{}, nil, fmt.Errorf("sim: open trace file: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}
