package sim

import (
	"math"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/vehicle"
)

func TestIDMFreeFlowReachesDesiredSpeed(t *testing.T) {
	car := actor.NewVehicle(1, vehicle.State{Pos: geom.V(0, 1.75), Speed: 0})
	w := newWorld(t, vehicle.State{Pos: geom.V(-500, 5.25)},
		[]*actor.Actor{car}, []Behavior{&IDM{TargetY: 1.75, DesiredSpeed: 14}})
	for i := 0; i < 600; i++ {
		w.Advance(vehicle.Control{Accel: -8})
	}
	if math.Abs(car.State.Speed-14) > 1.0 {
		t.Errorf("free-flow speed = %v, want ~14", car.State.Speed)
	}
}

func TestIDMFollowsLeaderWithoutCollision(t *testing.T) {
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(40, 1.75), Speed: 6})
	follower := actor.NewVehicle(2, vehicle.State{Pos: geom.V(0, 1.75), Speed: 14})
	w := newWorld(t, vehicle.State{Pos: geom.V(-500, 5.25)},
		[]*actor.Actor{lead, follower},
		[]Behavior{
			&Cruise{TargetY: 1.75, TargetSpeed: 6},
			&IDM{TargetY: 1.75, DesiredSpeed: 16},
		})
	for i := 0; i < 800; i++ {
		ev := w.Advance(vehicle.Control{Accel: -8})
		if ev.NPCCollision {
			t.Fatalf("IDM follower rear-ended its leader at step %d", i)
		}
	}
	// Converged to the leader's speed with a positive gap.
	if math.Abs(follower.State.Speed-6) > 1.5 {
		t.Errorf("follower speed = %v, want ~6", follower.State.Speed)
	}
	gap := lead.State.Pos.X - follower.State.Pos.X - 4.7
	if gap < 2 {
		t.Errorf("steady-state gap = %v, want >= min gap", gap)
	}
}

func TestIDMRespectsEgoAsLeader(t *testing.T) {
	follower := actor.NewVehicle(1, vehicle.State{Pos: geom.V(-30, 1.75), Speed: 14})
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 6},
		[]*actor.Actor{follower}, []Behavior{&IDM{TargetY: 1.75, DesiredSpeed: 16}})
	collided := false
	for i := 0; i < 600; i++ {
		obs := w.Observe()
		ev := w.Advance(laneKeepControl(&actor.Actor{State: obs.Ego}, 1.75, 6, obs.EgoParams))
		if ev.EgoCollision {
			collided = true
			break
		}
	}
	if collided {
		t.Fatal("IDM follower must not ram the ego")
	}
	if math.Abs(follower.State.Speed-6) > 1.5 {
		t.Errorf("follower speed = %v, want ~ego speed 6", follower.State.Speed)
	}
}

func TestIDMStopsForStationaryLeader(t *testing.T) {
	blocked := actor.NewVehicle(1, vehicle.State{Pos: geom.V(60, 1.75)})
	follower := actor.NewVehicle(2, vehicle.State{Pos: geom.V(0, 1.75), Speed: 12})
	w := newWorld(t, vehicle.State{Pos: geom.V(-500, 5.25)},
		[]*actor.Actor{blocked, follower},
		[]Behavior{&Stationary{}, &IDM{TargetY: 1.75, DesiredSpeed: 14}})
	for i := 0; i < 800; i++ {
		if ev := w.Advance(vehicle.Control{Accel: -8}); ev.NPCCollision {
			t.Fatalf("IDM follower hit the stationary vehicle at step %d", i)
		}
	}
	if follower.State.Speed > 0.5 {
		t.Errorf("follower should have stopped, speed = %v", follower.State.Speed)
	}
}

func TestIDMDefaultParameters(t *testing.T) {
	m := &IDM{}
	T, s0, a, b, delta := m.params()
	if T != 1.5 || s0 != 2 || a != 1.5 || b != 2 || delta != 4 {
		t.Errorf("defaults = %v %v %v %v %v", T, s0, a, b, delta)
	}
}
