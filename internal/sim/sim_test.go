package sim

import (
	"math"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

func road() *roadmap.StraightRoad {
	return roadmap.MustStraightRoad(2, 3.5, -100, 2000)
}

// testDriver is a trivial lane-keeping, constant-speed ADS for tests.
type testDriver struct {
	targetY float64
	speed   float64
}

func (d *testDriver) Reset() {}
func (d *testDriver) Act(obs Observation) vehicle.Control {
	return laneKeepControl(&actor.Actor{State: obs.Ego}, d.targetY, d.speed, obs.EgoParams)
}

// brakeMitigator brakes whenever any actor is within the given range.
type brakeMitigator struct{ rangeM float64 }

func (m *brakeMitigator) Reset() {}
func (m *brakeMitigator) Mitigate(obs Observation, ads vehicle.Control) (vehicle.Control, bool) {
	for _, a := range obs.Actors {
		if a.State.Pos.Dist(obs.Ego.Pos) < m.rangeM {
			return vehicle.Control{Accel: obs.EgoParams.MaxBrake, Steer: ads.Steer}, true
		}
	}
	return ads, false
}

func newWorld(t *testing.T, ego vehicle.State, actors []*actor.Actor, behaviors []Behavior) *World {
	t.Helper()
	w, err := NewWorld(road(), ego, geom.V(1000, 1.75), 0.1, actors, behaviors)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(road(), vehicle.State{}, geom.V(100, 0), 0, nil, nil); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := NewWorld(road(), vehicle.State{}, geom.V(100, 0), 0.1,
		[]*actor.Actor{actor.NewVehicle(1, vehicle.State{})}, nil); err == nil {
		t.Error("mismatched actors/behaviors accepted")
	}
}

func TestAdvanceMovesEgo(t *testing.T) {
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}, nil, nil)
	ev := w.Advance(vehicle.Control{})
	if ev.EgoCollision || ev.NPCCollision {
		t.Errorf("unexpected events: %+v", ev)
	}
	if w.Ego.State.Pos.X <= 0 {
		t.Error("ego did not move")
	}
	if w.Step != 1 {
		t.Errorf("step = %d", w.Step)
	}
}

func TestAdvanceDetectsEgoCollision(t *testing.T) {
	blocker := actor.NewVehicle(7, vehicle.State{Pos: geom.V(3, 1.75)})
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 10},
		[]*actor.Actor{blocker}, []Behavior{&Stationary{}})
	ev := w.Advance(vehicle.Control{})
	if !ev.EgoCollision {
		t.Fatal("collision not detected")
	}
	if ev.EgoCollisionActor != 7 {
		t.Errorf("collision actor = %d, want 7", ev.EgoCollisionActor)
	}
}

func TestAdvanceUpdatesYawRate(t *testing.T) {
	turning := actor.NewVehicle(1, vehicle.State{Pos: geom.V(50, 1.0), Speed: 10})
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 0},
		[]*actor.Actor{turning}, []Behavior{&Cruise{TargetY: 5.25, TargetSpeed: 10}})
	w.Advance(vehicle.Control{})
	if turning.YawRate <= 0 {
		t.Errorf("actor steering left should have positive yaw rate, got %v", turning.YawRate)
	}
}

func TestCruiseBehaviorConvergesToLane(t *testing.T) {
	c := actor.NewVehicle(1, vehicle.State{Pos: geom.V(0, 1.0), Speed: 8})
	w := newWorld(t, vehicle.State{Pos: geom.V(-50, 1.75), Speed: 0},
		[]*actor.Actor{c}, []Behavior{&Cruise{TargetY: 5.25, TargetSpeed: 12}})
	for i := 0; i < 300; i++ {
		w.Advance(vehicle.Control{})
	}
	if math.Abs(c.State.Pos.Y-5.25) > 0.3 {
		t.Errorf("cruise lateral = %v, want ~5.25", c.State.Pos.Y)
	}
	if math.Abs(c.State.Speed-12) > 0.5 {
		t.Errorf("cruise speed = %v, want ~12", c.State.Speed)
	}
}

func TestStationaryStaysPut(t *testing.T) {
	s := actor.NewVehicle(1, vehicle.State{Pos: geom.V(30, 1.75), Speed: 5})
	w := newWorld(t, vehicle.State{Pos: geom.V(-50, 1.75)},
		[]*actor.Actor{s}, []Behavior{&Stationary{}})
	for i := 0; i < 50; i++ {
		w.Advance(vehicle.Control{})
	}
	if s.State.Speed != 0 {
		t.Errorf("stationary actor speed = %v", s.State.Speed)
	}
}

func TestCutInGhostTrigger(t *testing.T) {
	// Ghost cut-in: actor starts behind the ego in the adjacent lane,
	// overtakes, and cuts in once sufficiently ahead.
	cutter := actor.NewVehicle(1, vehicle.State{Pos: geom.V(-30, 5.25), Speed: 20})
	behavior := &CutIn{
		FromY: 5.25, ToY: 1.75,
		CruiseSpeed: 20, CutSpeed: 18,
		TriggerDX: 5, TriggerWhenAhead: true,
	}
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 10},
		[]*actor.Actor{cutter}, []Behavior{behavior})
	ego := &testDriver{targetY: 1.75, speed: 10}
	for i := 0; i < 400 && !behavior.Triggered(); i++ {
		w.Advance(ego.Act(w.Observe()))
	}
	if !behavior.Triggered() {
		t.Fatal("ghost cut-in never triggered")
	}
	if cutter.State.Pos.X <= w.Ego.State.Pos.X {
		t.Error("cutter should be ahead of ego at trigger")
	}
	// After the trigger it converges to the ego lane.
	for i := 0; i < 300; i++ {
		w.Advance(ego.Act(w.Observe()))
	}
	if math.Abs(cutter.State.Pos.Y-1.75) > 0.5 {
		t.Errorf("cutter lateral = %v, want ~1.75", cutter.State.Pos.Y)
	}
}

func TestCutInLeadTrigger(t *testing.T) {
	// Lead cut-in: actor ahead in the adjacent lane cuts in as the ego
	// approaches within the trigger distance.
	cutter := actor.NewVehicle(1, vehicle.State{Pos: geom.V(60, 5.25), Speed: 5})
	behavior := &CutIn{
		FromY: 5.25, ToY: 1.75,
		CruiseSpeed: 5, CutSpeed: 5,
		TriggerDX: 25, TriggerWhenAhead: false,
	}
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 15},
		[]*actor.Actor{cutter}, []Behavior{behavior})
	for i := 0; i < 100 && !behavior.Triggered(); i++ {
		w.Advance(vehicle.Control{})
	}
	if !behavior.Triggered() {
		t.Fatal("lead cut-in never triggered")
	}
	gap := cutter.State.Pos.X - w.Ego.State.Pos.X
	if gap > 26 {
		t.Errorf("triggered at gap %v, want <= ~25", gap)
	}
}

func TestSlowdownBehavior(t *testing.T) {
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(40, 1.75), Speed: 10})
	behavior := &Slowdown{TargetY: 1.75, CruiseSpeed: 10, TriggerDX: 30, Decel: 6}
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 15},
		[]*actor.Actor{lead}, []Behavior{behavior})
	for i := 0; i < 200; i++ {
		w.Advance(vehicle.Control{}) // ego coasts at 15
		if behavior.Triggered() {
			break
		}
	}
	if !behavior.Triggered() {
		t.Fatal("slowdown never triggered")
	}
	for i := 0; i < 100; i++ {
		w.Advance(vehicle.Control{Accel: -8}) // ego brakes to avoid interfering
	}
	if lead.State.Speed > 0.1 {
		t.Errorf("lead should have stopped, speed = %v", lead.State.Speed)
	}
}

func TestFollowerTracksEgoLane(t *testing.T) {
	rammer := actor.NewVehicle(1, vehicle.State{Pos: geom.V(-25, 5.25), Speed: 20})
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 8},
		[]*actor.Actor{rammer}, []Behavior{&Follower{TargetSpeed: 20, TrackEgoLane: true}})
	for i := 0; i < 100; i++ {
		w.Advance(vehicle.Control{})
	}
	if math.Abs(rammer.State.Pos.Y-w.Ego.State.Pos.Y) > 1.0 {
		t.Errorf("follower lateral %v should track ego %v", rammer.State.Pos.Y, w.Ego.State.Pos.Y)
	}
}

func TestMergerCausesNPCCrash(t *testing.T) {
	// Two NPCs ahead of the ego in different lanes; one merges into the
	// other — the front-accident typology seed.
	a := actor.NewVehicle(1, vehicle.State{Pos: geom.V(30, 1.75), Speed: 12})
	b := actor.NewVehicle(2, vehicle.State{Pos: geom.V(32, 5.25), Speed: 12})
	w := newWorld(t, vehicle.State{Pos: geom.V(-20, 1.75), Speed: 5},
		[]*actor.Actor{a, b},
		[]Behavior{
			&Cruise{TargetY: 1.75, TargetSpeed: 12},
			&Merger{FromY: 5.25, ToY: 1.75, TargetSpeed: 12, TriggerX: 50},
		})
	crashed := false
	for i := 0; i < 400; i++ {
		ev := w.Advance(vehicle.Control{Accel: -2})
		if ev.NPCCollision {
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatal("merger never crashed into the other NPC")
	}
	if !w.Crashed[0] || !w.Crashed[1] {
		t.Error("both NPCs should be wrecked")
	}
	preA, preB := a.State.Pos, b.State.Pos
	for i := 0; i < 20; i++ {
		w.Advance(vehicle.Control{Accel: -2})
	}
	if a.State.Pos != preA || b.State.Pos != preB {
		t.Error("wrecked actors should freeze in place")
	}
}

func TestRunCompletesGoal(t *testing.T) {
	w, err := NewWorld(road(), vehicle.State{Pos: geom.V(0, 1.75), Speed: 10},
		geom.V(50, 1.75), 0.1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Run(w, &testDriver{targetY: 1.75, speed: 10}, nil, RunConfig{MaxSteps: 200})
	if !out.Completed {
		t.Fatalf("episode should complete: %+v", out)
	}
	if out.Collision {
		t.Error("no collision expected")
	}
	if out.FirstMitigationStep != -1 {
		t.Errorf("no mitigator: FirstMitigationStep = %d", out.FirstMitigationStep)
	}
}

func TestRunDetectsCollision(t *testing.T) {
	blocker := actor.NewVehicle(3, vehicle.State{Pos: geom.V(40, 1.75)})
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 15},
		[]*actor.Actor{blocker}, []Behavior{&Stationary{}})
	out := Run(w, &testDriver{targetY: 1.75, speed: 15}, nil, RunConfig{MaxSteps: 300})
	if !out.Collision {
		t.Fatal("blind driver should collide with the blocker")
	}
	if out.CollisionActor != 3 {
		t.Errorf("collision actor = %d", out.CollisionActor)
	}
	if out.CollisionStep < 0 || out.CollisionStep >= 300 {
		t.Errorf("collision step = %d", out.CollisionStep)
	}
}

func TestRunMitigatorPreventsCollision(t *testing.T) {
	blocker := actor.NewVehicle(3, vehicle.State{Pos: geom.V(60, 1.75)})
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 15},
		[]*actor.Actor{blocker}, []Behavior{&Stationary{}})
	out := Run(w, &testDriver{targetY: 1.75, speed: 15}, &brakeMitigator{rangeM: 40},
		RunConfig{MaxSteps: 400})
	if out.Collision {
		t.Fatal("mitigator should prevent the collision")
	}
	if out.FirstMitigationStep < 0 {
		t.Error("mitigation should have fired")
	}
}

func TestRunRecordsTrace(t *testing.T) {
	blocker := actor.NewVehicle(3, vehicle.State{Pos: geom.V(500, 1.75)})
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 10},
		[]*actor.Actor{blocker}, []Behavior{&Stationary{}})
	out := Run(w, &testDriver{targetY: 1.75, speed: 10}, nil,
		RunConfig{MaxSteps: 50, RecordTrace: true})
	if len(out.Trace) != out.Steps {
		t.Fatalf("trace length %d != steps %d", len(out.Trace), out.Steps)
	}
	// Trace[i] holds the world after step i has executed, so its timestamp
	// is (i+1)·dt — asserting 1.1 here guards against regressing to the
	// pre-step observation time, which is one dt stale for the recorded
	// states.
	rec := out.Trace[10]
	if rec.Time != 1.1 {
		t.Errorf("trace time = %v, want 1.1 ((10+1)*dt)", rec.Time)
	}
	if out.Trace[0].Time != 0.1 {
		t.Errorf("first trace time = %v, want 0.1 (post-step)", out.Trace[0].Time)
	}
	if len(rec.ActorStates) != 1 || len(rec.ActorYaws) != 1 || len(rec.Crashed) != 1 {
		t.Errorf("trace actor slices malformed: %+v", rec)
	}
	if rec.Ego.Pos.X <= out.Trace[0].Ego.Pos.X {
		t.Error("ego should progress through the trace")
	}
}

func TestRunStepHook(t *testing.T) {
	w := newWorld(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}, nil, nil)
	calls := 0
	Run(w, &testDriver{targetY: 1.75, speed: 10}, nil, RunConfig{
		MaxSteps: 25,
		StepHook: func(w *World, ev Events) { calls++ },
	})
	if calls != 25 {
		t.Errorf("hook calls = %d, want 25", calls)
	}
}

func TestOutcomeFirstMitigationTime(t *testing.T) {
	o := Outcome{FirstMitigationStep: 30}
	if got := o.FirstMitigationTime(0.1); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("FirstMitigationTime = %v", got)
	}
	o = Outcome{FirstMitigationStep: -1}
	if got := o.FirstMitigationTime(0.1); got != -1 {
		t.Errorf("FirstMitigationTime = %v, want -1", got)
	}
}

func TestRingCruiseStaysOnRing(t *testing.T) {
	ring, err := roadmap.NewRingRoad(geom.V(0, 0), 20, 27)
	if err != nil {
		t.Fatal(err)
	}
	pos, heading := ring.PoseAt(23.5, 0)
	cruiser := actor.NewVehicle(1, vehicle.State{Pos: pos, Heading: heading, Speed: 8})
	egoPos, egoHeading := ring.PoseAt(23.5, math.Pi)
	w, err := NewWorld(ring, vehicle.State{Pos: egoPos, Heading: egoHeading, Speed: 0},
		geom.V(1e9, 0), 0.1,
		[]*actor.Actor{cruiser}, []Behavior{&RingCruise{Radius: 23.5, TargetSpeed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		w.Advance(vehicle.Control{Accel: -8})
		if !ring.Drivable(cruiser.State.Pos) {
			t.Fatalf("ring cruiser left the road at step %d: %v", i, cruiser.State.Pos)
		}
	}
	// Should have made progress around the ring.
	if math.Abs(geom.AngleDiff(ring.AngleOf(cruiser.State.Pos), 0)) < 0.5 {
		t.Error("ring cruiser made no angular progress")
	}
}

func TestPedestrianParams(t *testing.T) {
	p := pedestrianParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("pedestrian params invalid: %v", err)
	}
	if p.MaxSpeed > 3 {
		t.Errorf("pedestrian max speed = %v", p.MaxSpeed)
	}
}
