package sim

import (
	"math"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/vehicle"
)

// laneKeepControl is the shared steering law for straight-road NPCs: a PD
// controller on lateral offset and heading error towards a target lane
// centre, plus a proportional speed controller.
func laneKeepControl(self *actor.Actor, targetY, targetSpeed float64, params vehicle.Params) vehicle.Control {
	latErr := targetY - self.State.Pos.Y
	headingErr := -self.State.Heading // road axis is +x
	steer := geom.Clamp(0.2*latErr+1.2*headingErr, -params.MaxSteer, params.MaxSteer)
	accel := geom.Clamp(1.5*(targetSpeed-self.State.Speed), params.MaxBrake, params.MaxAccel)
	return vehicle.Control{Accel: accel, Steer: steer}
}

// Cruise drives at a constant target speed in a fixed lane.
type Cruise struct {
	TargetY     float64
	TargetSpeed float64
}

var _ Behavior = (*Cruise)(nil)

// Reset implements Behavior.
func (c *Cruise) Reset() {}

// Control implements Behavior.
func (c *Cruise) Control(w *World, self *actor.Actor) vehicle.Control {
	return laneKeepControl(self, c.TargetY, c.TargetSpeed, w.NPCParams)
}

// Stationary never moves (parked vehicles, wrecks, standing pedestrians).
type Stationary struct{}

var _ Behavior = (*Stationary)(nil)

// Reset implements Behavior.
func (s *Stationary) Reset() {}

// Control implements Behavior.
func (s *Stationary) Control(*World, *actor.Actor) vehicle.Control {
	return vehicle.Control{Accel: -8}
}

// CutIn drives in its own lane until a longitudinal trigger relative to the
// ego fires, then merges into the target lane. Both the ghost cut-in and
// lead cut-in typologies are instances with different trigger geometry.
type CutIn struct {
	// FromY / ToY are the lane centres before and after the manoeuvre.
	FromY, ToY float64
	// CruiseSpeed before the trigger; CutSpeed during/after the manoeuvre.
	CruiseSpeed, CutSpeed float64
	// TriggerDX fires the manoeuvre when (self.x − ego.x) ≥ TriggerDX for a
	// ghost cut-in (catching up from behind) or ≤ TriggerDX for a lead
	// cut-in (ego approaching); see TriggerWhenAhead.
	TriggerDX float64
	// TriggerWhenAhead selects the comparison direction: true means the
	// trigger fires once the actor is at least TriggerDX ahead of the ego
	// (ghost cut-in); false fires once the gap to the ego shrinks below
	// TriggerDX (lead cut-in).
	TriggerWhenAhead bool

	triggered bool
}

var _ Behavior = (*CutIn)(nil)

// Reset implements Behavior.
func (c *CutIn) Reset() { c.triggered = false }

// Triggered reports whether the manoeuvre has started.
func (c *CutIn) Triggered() bool { return c.triggered }

// Control implements Behavior.
func (c *CutIn) Control(w *World, self *actor.Actor) vehicle.Control {
	dx := self.State.Pos.X - w.Ego.State.Pos.X
	if !c.triggered {
		if c.TriggerWhenAhead && dx >= c.TriggerDX {
			c.triggered = true
		}
		if !c.TriggerWhenAhead && dx <= c.TriggerDX && dx >= 0 {
			c.triggered = true
		}
	}
	if !c.triggered {
		return laneKeepControl(self, c.FromY, c.CruiseSpeed, w.NPCParams)
	}
	return laneKeepControl(self, c.ToY, c.CutSpeed, w.NPCParams)
}

// Slowdown cruises in the ego lane and brakes to a stop once the ego closes
// within TriggerDX metres behind it (lead-slowdown typology).
type Slowdown struct {
	TargetY     float64
	CruiseSpeed float64
	TriggerDX   float64
	Decel       float64 // positive magnitude of the braking rate

	triggered bool
}

var _ Behavior = (*Slowdown)(nil)

// Reset implements Behavior.
func (s *Slowdown) Reset() { s.triggered = false }

// Triggered reports whether braking has started.
func (s *Slowdown) Triggered() bool { return s.triggered }

// Control implements Behavior.
func (s *Slowdown) Control(w *World, self *actor.Actor) vehicle.Control {
	gap := self.State.Pos.X - w.Ego.State.Pos.X
	if !s.triggered && gap >= 0 && gap <= s.TriggerDX {
		s.triggered = true
	}
	if !s.triggered {
		return laneKeepControl(self, s.TargetY, s.CruiseSpeed, w.NPCParams)
	}
	u := laneKeepControl(self, s.TargetY, 0, w.NPCParams)
	u.Accel = -math.Abs(s.Decel)
	return u
}

// Follower tails the ego in the ego's lane at a target speed, ramming it
// from behind if the ego is slower (rear-end typology). It follows the
// ego's lateral position so braking alone cannot dodge it.
type Follower struct {
	TargetSpeed float64
	// TrackEgoLane makes the follower steer towards the ego's current y.
	TrackEgoLane bool
	LaneY        float64
}

var _ Behavior = (*Follower)(nil)

// Reset implements Behavior.
func (f *Follower) Reset() {}

// Control implements Behavior.
func (f *Follower) Control(w *World, self *actor.Actor) vehicle.Control {
	targetY := f.LaneY
	if f.TrackEgoLane {
		targetY = w.Ego.State.Pos.Y
	}
	return laneKeepControl(self, targetY, f.TargetSpeed, w.NPCParams)
}

// Merger changes from its current lane into a target lane after travelling
// TriggerX metres, without regard for other traffic — the behaviour that
// produces the NPC–NPC crash of the front-accident typology.
type Merger struct {
	FromY, ToY  float64
	TargetSpeed float64
	TriggerX    float64

	triggered bool
}

var _ Behavior = (*Merger)(nil)

// Reset implements Behavior.
func (m *Merger) Reset() { m.triggered = false }

// Control implements Behavior.
func (m *Merger) Control(w *World, self *actor.Actor) vehicle.Control {
	if !m.triggered && self.State.Pos.X >= m.TriggerX {
		m.triggered = true
	}
	y := m.FromY
	if m.triggered {
		y = m.ToY
	}
	return laneKeepControl(self, y, m.TargetSpeed, w.NPCParams)
}

// RingCruise follows the centreline of a ring road at a target speed —
// used by the roundabout extension scenarios.
type RingCruise struct {
	Radius      float64
	TargetSpeed float64
	// CutIn, when set, switches the target radius once the actor is within
	// TriggerArc radians behind the ego, squeezing the ego against the ring
	// edge (roundabout ghost cut-in analogue).
	CutRadius  float64
	TriggerArc float64
	CutIn      bool

	triggered bool
}

var _ Behavior = (*RingCruise)(nil)

// Reset implements Behavior.
func (r *RingCruise) Reset() { r.triggered = false }

// Control implements Behavior.
func (r *RingCruise) Control(w *World, self *actor.Actor) vehicle.Control {
	ring, ok := w.Map.(interface {
		AngleOf(geom.Vec2) float64
		PoseAt(float64, float64) (geom.Vec2, float64)
	})
	if !ok {
		return vehicle.Control{}
	}
	radius := r.Radius
	if r.CutIn {
		diff := geom.AngleDiff(ring.AngleOf(w.Ego.State.Pos), ring.AngleOf(self.State.Pos))
		if !r.triggered && diff >= 0 && diff < r.TriggerArc {
			r.triggered = true
		}
		if r.triggered {
			radius = r.CutRadius
		}
	}
	// Aim at a point slightly ahead on the target circle.
	lookAhead := 0.3 // radians of arc
	target, targetHeading := ring.PoseAt(radius, ring.AngleOf(self.State.Pos)+lookAhead)
	toTarget := target.Sub(self.State.Pos)
	headingErr := geom.AngleDiff(toTarget.Angle(), self.State.Heading)
	alignErr := geom.AngleDiff(targetHeading, self.State.Heading)
	steer := geom.Clamp(1.0*headingErr+0.3*alignErr, -0.6, 0.6)
	accel := geom.Clamp(1.5*(r.TargetSpeed-self.State.Speed), -8, 4)
	return vehicle.Control{Accel: accel, Steer: steer}
}
