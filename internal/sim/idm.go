package sim

import (
	"math"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/vehicle"
)

// IDM implements the Intelligent Driver Model (Treiber et al.) for
// realistic car-following NPCs: free-flow acceleration towards a desired
// speed with a smooth interaction term that maintains a safe dynamic gap to
// the nearest leader (ego included). It is the traffic model used by the
// synthetic real-world corpus, where compliant, human-like following
// matters for the STI distribution.
type IDM struct {
	TargetY      float64 // lane centre to keep
	DesiredSpeed float64 // v0 (m/s)
	TimeHeadway  float64 // T (s); default 1.5
	MinGap       float64 // s0 (m); default 2
	MaxAccel     float64 // a (m/s²); default 1.5
	ComfortDecel float64 // b (m/s²); default 2
	Exponent     float64 // δ; default 4
}

var _ Behavior = (*IDM)(nil)

// Reset implements Behavior.
func (m *IDM) Reset() {}

func (m *IDM) params() (T, s0, a, b, delta float64) {
	T, s0, a, b, delta = m.TimeHeadway, m.MinGap, m.MaxAccel, m.ComfortDecel, m.Exponent
	if T <= 0 {
		T = 1.5
	}
	if s0 <= 0 {
		s0 = 2
	}
	if a <= 0 {
		a = 1.5
	}
	if b <= 0 {
		b = 2
	}
	if delta <= 0 {
		delta = 4
	}
	return
}

// Control implements Behavior.
func (m *IDM) Control(w *World, self *actor.Actor) vehicle.Control {
	T, s0, a, b, delta := m.params()
	v := self.State.Speed
	v0 := math.Max(m.DesiredSpeed, 0.1)

	// Find the nearest leader in the same lane band (the ego counts too).
	gap, leadSpeed, found := m.leader(w, self)
	accel := a * (1 - math.Pow(v/v0, delta))
	if found {
		dv := v - leadSpeed
		sStar := s0 + math.Max(0, v*T+v*dv/(2*math.Sqrt(a*b)))
		accel -= a * (sStar / math.Max(gap, 0.5)) * (sStar / math.Max(gap, 0.5))
	}
	accel = geom.Clamp(accel, w.NPCParams.MaxBrake, w.NPCParams.MaxAccel)

	latErr := m.TargetY - self.State.Pos.Y
	headingErr := -self.State.Heading
	steer := geom.Clamp(0.2*latErr+1.2*headingErr, -w.NPCParams.MaxSteer, w.NPCParams.MaxSteer)
	return vehicle.Control{Accel: accel, Steer: steer}
}

// leader returns the bumper gap and speed of the nearest vehicle ahead in
// the same lane band.
func (m *IDM) leader(w *World, self *actor.Actor) (gap, speed float64, found bool) {
	best := math.Inf(1)
	consider := func(pos geom.Vec2, v float64, length float64) {
		dx := pos.X - self.State.Pos.X
		if dx <= 0 {
			return
		}
		if math.Abs(pos.Y-self.State.Pos.Y) > 2.0 {
			return
		}
		g := dx - length/2 - self.Length/2
		if g < best {
			best = g
			speed = v
			found = true
		}
	}
	consider(w.Ego.State.Pos, w.Ego.State.Speed, w.EgoParams.Length)
	for _, other := range w.Actors {
		if other == self {
			continue
		}
		consider(other.State.Pos, other.State.Speed, other.Length)
	}
	if !found {
		return 0, 0, false
	}
	return math.Max(best, 0), speed, true
}
