package sim

import (
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// Telemetry for the episode loop (collected only under telemetry.Enable).
var (
	telEpisodes    = telemetry.NewCounter("sim.episodes")
	telSteps       = telemetry.NewCounter("sim.steps")
	telCollisions  = telemetry.NewCounter("sim.collisions")
	telMitigations = telemetry.NewCounter("sim.mitigations")
	telStepSeconds = telemetry.NewHistogram("sim.step.seconds", telemetry.LatencyBuckets())
)

// StepRecord captures one simulation step for offline metric evaluation
// (Table II traces, Fig. 4/5 series).
type StepRecord struct {
	Time        float64
	Ego         vehicle.State
	EgoControl  vehicle.Control
	Mitigated   bool
	ActorStates []vehicle.State
	ActorYaws   []float64
	Crashed     []bool
}

// Outcome summarises an episode.
type Outcome struct {
	Collision      bool
	CollisionStep  int
	CollisionActor int
	// ImpactSpeed is the ego–actor relative speed at contact (m/s), valid
	// when Collision is set.
	ImpactSpeed  float64
	NPCCollision bool
	NPCCrashStep int
	Completed    bool // ego reached the goal
	Steps        int
	// FirstMitigationStep is the step of the first mitigation action, or -1
	// if the mitigator never fired (Table IV).
	FirstMitigationStep int
	Trace               []StepRecord
}

// FirstMitigationTime returns the wall-clock time of the first mitigation
// action, or -1 when none occurred.
func (o Outcome) FirstMitigationTime(dt float64) float64 {
	if o.FirstMitigationStep < 0 {
		return -1
	}
	return float64(o.FirstMitigationStep) * dt
}

// RunConfig controls an episode.
type RunConfig struct {
	MaxSteps    int
	RecordTrace bool
	// StopOnNPCCrash ends the episode when two NPCs collide (not used by
	// the evaluation; the front-accident typology keeps running so the ego
	// must react to the wreckage).
	StopOnNPCCrash bool
	// StepHook, when non-nil, runs after every world step with the post-step
	// world and the events; used by RL training to compute rewards.
	StepHook func(w *World, ev Events)
}

// Run drives one episode: each step the Driver acts on the observation, the
// Mitigator (if any) may overwrite the action, and the world advances.
// The episode ends on ego collision, goal completion, or MaxSteps.
func Run(w *World, driver Driver, mit Mitigator, cfg RunConfig) (out Outcome) {
	defer func() {
		telEpisodes.Inc()
		telSteps.Add(int64(out.Steps))
		if out.Collision {
			telCollisions.Inc()
		}
	}()
	driver.Reset()
	if mit != nil {
		mit.Reset()
	}
	for _, b := range w.Behaviors {
		b.Reset()
	}
	out = Outcome{FirstMitigationStep: -1, CollisionStep: -1, NPCCrashStep: -1}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 600
	}
	for step := 0; step < maxSteps; step++ {
		timer := telStepSeconds.Start()
		obs := w.Observe()
		u := driver.Act(obs)
		mitigated := false
		if mit != nil {
			u, mitigated = mit.Mitigate(obs, u)
			if mitigated {
				telMitigations.Inc()
				if out.FirstMitigationStep < 0 {
					out.FirstMitigationStep = step
				}
			}
		}
		ev := w.Advance(u)
		timer.Stop()
		if cfg.RecordTrace {
			out.Trace = append(out.Trace, record(w, u, mitigated))
		}
		if cfg.StepHook != nil {
			cfg.StepHook(w, ev)
		}
		out.Steps = step + 1
		if ev.NPCCollision && out.NPCCrashStep < 0 {
			out.NPCCollision = true
			out.NPCCrashStep = step
			if cfg.StopOnNPCCrash {
				return out
			}
		}
		if ev.EgoCollision {
			out.Collision = true
			out.CollisionStep = step
			out.CollisionActor = ev.EgoCollisionActor
			out.ImpactSpeed = ev.EgoImpactSpeed
			return out
		}
		if reachedGoal(w) {
			out.Completed = true
			return out
		}
	}
	return out
}

func reachedGoal(w *World) bool {
	// Goal semantics: progress past the goal's x (straight roads run +x).
	return w.Ego.State.Pos.X >= w.Goal.X
}

// record snapshots the post-step world. The timestamp is derived from the
// already-advanced step counter so it matches the states it accompanies
// (the pre-step observation time would be one dt stale).
func record(w *World, u vehicle.Control, mitigated bool) StepRecord {
	rec := StepRecord{
		Time:        float64(w.Step) * w.Dt,
		Ego:         w.Ego.State,
		EgoControl:  u,
		Mitigated:   mitigated,
		ActorStates: make([]vehicle.State, len(w.Actors)),
		ActorYaws:   make([]float64, len(w.Actors)),
		Crashed:     make([]bool, len(w.Actors)),
	}
	for i, a := range w.Actors {
		rec.ActorStates[i] = a.State
		rec.ActorYaws[i] = a.YawRate
	}
	copy(rec.Crashed, w.Crashed)
	return rec
}
