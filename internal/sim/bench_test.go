package sim

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

// BenchmarkWorldStep measures one simulator tick with five scripted NPCs.
func BenchmarkWorldStep(b *testing.B) {
	road := roadmap.MustStraightRoad(2, 3.5, -200, 5000)
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(30, 1.75), Speed: 10}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(-20, 1.75), Speed: 14}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(10, 5.25), Speed: 12}),
		actor.NewVehicle(4, vehicle.State{Pos: geom.V(60, 5.25), Speed: 9}),
		actor.NewVehicle(5, vehicle.State{Pos: geom.V(-50, 5.25), Speed: 11}),
	}
	behaviors := []Behavior{
		&Cruise{TargetY: 1.75, TargetSpeed: 10},
		&IDM{TargetY: 1.75, DesiredSpeed: 14},
		&Cruise{TargetY: 5.25, TargetSpeed: 12},
		&Slowdown{TargetY: 5.25, CruiseSpeed: 9, TriggerDX: 20, Decel: 6},
		&Follower{TargetSpeed: 11, TrackEgoLane: true},
	}
	w, err := NewWorld(road, vehicle.State{Pos: geom.V(0, 1.75), Speed: 12},
		geom.V(1e9, 0), 0.1, actors, behaviors)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Advance(vehicle.Control{Accel: 0.1})
	}
}
