// Package sim is the driving simulator substrate replacing CARLA in this
// reproduction: a deterministic fixed-step 2-D kinematic world with scripted
// NPC behaviours, oriented-box collision detection, a pluggable ADS driver
// and a pluggable mitigation controller (the ⊗ operator of Fig. 2 that lets
// SMC actions overwrite ADS actions).
package sim

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

// Observation is what the ego's driver and mitigator perceive each step.
// Actors carry ground-truth state; drivers model their own perception
// limits (range, field of view) on top.
type Observation struct {
	Map       roadmap.Map
	Step      int
	Time      float64
	Dt        float64
	Ego       vehicle.State
	EgoParams vehicle.Params
	Goal      geom.Vec2
	Actors    []*actor.Actor
}

// Driver is an autonomous driving system controlling the ego vehicle (the
// LBC-like baseline, the RIP-like ensemble, …).
type Driver interface {
	// Reset prepares the driver for a new episode.
	Reset()
	// Act returns the ego control for this step.
	Act(obs Observation) vehicle.Control
}

// Mitigator is a safety controller layered over a Driver; it may overwrite
// the ADS control (iPrism's SMC, the TTC-based ACA baseline).
type Mitigator interface {
	// Reset prepares the mitigator for a new episode.
	Reset()
	// Mitigate inspects the observation and the ADS control and returns the
	// control to execute plus whether a mitigation action was taken.
	Mitigate(obs Observation, ads vehicle.Control) (vehicle.Control, bool)
}

// Behavior scripts an NPC actor.
type Behavior interface {
	// Reset prepares the behaviour for a new episode.
	Reset()
	// Control returns the actor's control for this step.
	Control(w *World, self *actor.Actor) vehicle.Control
}

// World is the mutable simulation state.
type World struct {
	Map       roadmap.Map
	Dt        float64
	Step      int
	Ego       *actor.Actor
	EgoParams vehicle.Params
	Goal      geom.Vec2

	Actors    []*actor.Actor
	Behaviors []Behavior
	NPCParams vehicle.Params

	// Crashed[i] marks NPC i as wrecked (frozen in place) after an
	// NPC–NPC collision, as in the front-accident typology.
	Crashed []bool
}

// NewWorld builds a world. actors and behaviors must align.
func NewWorld(m roadmap.Map, egoStart vehicle.State, goal geom.Vec2, dt float64, actors []*actor.Actor, behaviors []Behavior) (*World, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("sim: dt must be positive, got %v", dt)
	}
	if len(actors) != len(behaviors) {
		return nil, fmt.Errorf("sim: %d actors but %d behaviors", len(actors), len(behaviors))
	}
	return &World{
		Map:       m,
		Dt:        dt,
		Ego:       actor.NewVehicle(0, egoStart),
		EgoParams: vehicle.DefaultParams(),
		Goal:      goal,
		Actors:    actors,
		Behaviors: behaviors,
		NPCParams: vehicle.DefaultParams(),
		Crashed:   make([]bool, len(actors)),
	}, nil
}

// Observe builds the current observation.
func (w *World) Observe() Observation {
	return Observation{
		Map:       w.Map,
		Step:      w.Step,
		Time:      float64(w.Step) * w.Dt,
		Dt:        w.Dt,
		Ego:       w.Ego.State,
		EgoParams: w.EgoParams,
		Goal:      w.Goal,
		Actors:    w.Actors,
	}
}

// Events reports what happened during one step.
type Events struct {
	EgoCollision      bool
	EgoCollisionActor int // actor ID, valid when EgoCollision
	// EgoImpactSpeed is the magnitude of the relative velocity between the
	// ego and the struck actor at contact (m/s): a proxy for collision
	// severity — mitigation that cannot prevent an accident can still
	// reduce its energy.
	EgoImpactSpeed float64
	NPCCollision   bool
}

// Advance steps the world once: NPC behaviours produce controls, every
// vehicle integrates its bicycle model, yaw rates are refreshed for CVTR
// prediction, and collisions are detected.
func (w *World) Advance(egoControl vehicle.Control) Events {
	// NPC controls are computed against the pre-step world state.
	controls := make([]vehicle.Control, len(w.Actors))
	for i, b := range w.Behaviors {
		if w.Crashed[i] {
			continue
		}
		controls[i] = b.Control(w, w.Actors[i])
	}

	stepActor(w.Ego, w.EgoParams, egoControl, w.Dt)
	for i, a := range w.Actors {
		if w.Crashed[i] {
			a.State.Speed = 0
			a.YawRate = 0
			continue
		}
		params := w.NPCParams
		if a.Kind == actor.KindPedestrian {
			params = pedestrianParams()
		}
		stepActor(a, params, controls[i], w.Dt)
	}
	w.Step++

	var ev Events
	egoFp := w.Ego.Footprint()
	for _, a := range w.Actors {
		if a.Kind == actor.KindStatic && !egoFp.Intersects(a.Footprint()) {
			continue
		}
		if egoFp.Intersects(a.Footprint()) {
			ev.EgoCollision = true
			ev.EgoCollisionActor = a.ID
			ev.EgoImpactSpeed = w.Ego.State.Velocity().Sub(a.State.Velocity()).Norm()
			break
		}
	}
	// NPC–NPC collisions wreck both participants.
	for i := 0; i < len(w.Actors); i++ {
		for j := i + 1; j < len(w.Actors); j++ {
			if w.Crashed[i] && w.Crashed[j] {
				continue
			}
			if w.Actors[i].Footprint().Intersects(w.Actors[j].Footprint()) {
				w.Crashed[i], w.Crashed[j] = true, true
				w.Actors[i].State.Speed = 0
				w.Actors[j].State.Speed = 0
				ev.NPCCollision = true
			}
		}
	}
	return ev
}

func stepActor(a *actor.Actor, params vehicle.Params, u vehicle.Control, dt float64) {
	before := a.State.Heading
	a.State = params.Step(a.State, u, dt)
	a.YawRate = geom.AngleDiff(a.State.Heading, before) / dt
}

func pedestrianParams() vehicle.Params {
	return vehicle.Params{
		WheelBase:   0.5,
		Length:      0.6,
		Width:       0.6,
		MaxSpeed:    2.5,
		MaxAccel:    1.5,
		MaxBrake:    -2.0,
		MaxSteer:    1.0,
		MaxLatAccel: 0,
	}
}
