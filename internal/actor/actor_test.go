package actor

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/vehicle"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		give Kind
		want string
	}{
		{KindVehicle, "vehicle"},
		{KindPedestrian, "pedestrian"},
		{KindStatic, "static"},
		{Kind(99), "Kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestNewVehicleDefaults(t *testing.T) {
	a := NewVehicle(3, vehicle.State{Pos: geom.V(1, 2), Speed: 5})
	if a.ID != 3 || a.Kind != KindVehicle {
		t.Errorf("vehicle actor = %+v", a)
	}
	if a.Length != 4.7 || a.Width != 2.0 {
		t.Errorf("vehicle size = %v x %v", a.Length, a.Width)
	}
}

func TestNewPedestrianDefaults(t *testing.T) {
	a := NewPedestrian(1, vehicle.State{})
	if a.Kind != KindPedestrian || a.Length != 0.6 || a.Width != 0.6 {
		t.Errorf("pedestrian = %+v", a)
	}
}

func TestFootprint(t *testing.T) {
	a := NewVehicle(1, vehicle.State{Pos: geom.V(10, 3), Heading: 0.5})
	fp := a.Footprint()
	if fp.Center != geom.V(10, 3) || fp.Heading != 0.5 {
		t.Errorf("footprint = %+v", fp)
	}
	if fp.HalfLen != 4.7/2 || fp.HalfWid != 1.0 {
		t.Errorf("footprint extents = %+v", fp)
	}
}

func TestClone(t *testing.T) {
	a := NewVehicle(1, vehicle.State{Speed: 5})
	c := a.Clone()
	c.State.Speed = 10
	c.ID = 2
	if a.State.Speed != 5 || a.ID != 1 {
		t.Error("Clone should not alias the original")
	}
}

func TestTrajectoryStateAt(t *testing.T) {
	tr := Trajectory{Dt: 0.1, States: []vehicle.State{
		{Speed: 1}, {Speed: 2}, {Speed: 3},
	}}
	if got := tr.StateAt(0).Speed; got != 1 {
		t.Errorf("StateAt(0) = %v", got)
	}
	if got := tr.StateAt(2).Speed; got != 3 {
		t.Errorf("StateAt(2) = %v", got)
	}
	if got := tr.StateAt(99).Speed; got != 3 {
		t.Errorf("StateAt past end should clamp, got %v", got)
	}
	if got := tr.StateAt(-1).Speed; got != 1 {
		t.Errorf("StateAt(-1) should clamp to first, got %v", got)
	}
	if got := (Trajectory{}).StateAt(0); got != (vehicle.State{}) {
		t.Errorf("empty trajectory StateAt = %v", got)
	}
}

func TestTrajectoryDuration(t *testing.T) {
	tr := Trajectory{Dt: 0.5, States: make([]vehicle.State, 7)}
	if got := tr.Duration(); got != 3.0 {
		t.Errorf("Duration = %v", got)
	}
	if got := (Trajectory{Dt: 0.5}).Duration(); got != 0 {
		t.Errorf("empty Duration = %v", got)
	}
}

func TestPredictCVTRStraight(t *testing.T) {
	a := NewVehicle(1, vehicle.State{Pos: geom.V(0, 0), Heading: 0, Speed: 10})
	tr := PredictCVTR(a, 5, 0.5)
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	last := tr.StateAt(5)
	if math.Abs(last.Pos.X-25) > 1e-9 || math.Abs(last.Pos.Y) > 1e-9 {
		t.Errorf("straight CVTR end = %v, want (25, 0)", last.Pos)
	}
	if last.Speed != 10 {
		t.Errorf("CVTR must hold speed, got %v", last.Speed)
	}
}

func TestPredictCVTRTurning(t *testing.T) {
	a := NewVehicle(1, vehicle.State{Speed: 5})
	a.YawRate = 0.2
	tr := PredictCVTR(a, 10, 0.1)
	end := tr.StateAt(10)
	if end.Heading <= 0 {
		t.Errorf("positive yaw rate should increase heading, got %v", end.Heading)
	}
	wantHeading := 0.2 * 1.0
	if math.Abs(end.Heading-wantHeading) > 1e-9 {
		t.Errorf("heading = %v, want %v", end.Heading, wantHeading)
	}
	if end.Pos.Y <= 0 {
		t.Errorf("turning left should move +y, got %v", end.Pos)
	}
}

func TestPredictCVTRFullCircle(t *testing.T) {
	// With constant yaw rate ω and speed v, CVTR traces a circle with radius
	// v/ω; after time 2π/ω the actor returns near the start.
	a := NewVehicle(1, vehicle.State{Speed: 5})
	a.YawRate = 0.5
	period := 2 * math.Pi / a.YawRate
	dt := 0.01
	steps := int(period / dt)
	tr := PredictCVTR(a, steps, dt)
	end := tr.StateAt(steps)
	if end.Pos.Norm() > 0.2 {
		t.Errorf("after full CVTR circle pos = %v, want near origin", end.Pos)
	}
}

func TestPredictAll(t *testing.T) {
	actors := []*Actor{
		NewVehicle(1, vehicle.State{Speed: 1}),
		NewVehicle(2, vehicle.State{Speed: 2}),
	}
	trs := PredictAll(actors, 3, 0.5)
	if len(trs) != 2 {
		t.Fatalf("len = %d", len(trs))
	}
	if trs[0].StateAt(3).Pos.X >= trs[1].StateAt(3).Pos.X {
		t.Error("faster actor should travel farther")
	}
}

func TestResample(t *testing.T) {
	// Record at 0.1s for 3s (31 states), resample to 0.5s for 6 steps.
	states := make([]vehicle.State, 31)
	for i := range states {
		states[i] = vehicle.State{Pos: geom.V(float64(i), 0)}
	}
	tr := Trajectory{Dt: 0.1, States: states}
	rs := tr.Resample(0.5, 6)
	if rs.Len() != 7 {
		t.Fatalf("resampled Len = %d, want 7", rs.Len())
	}
	for i := 0; i <= 6; i++ {
		want := float64(i * 5)
		if got := rs.StateAt(i).Pos.X; got != want {
			t.Errorf("resampled state %d x = %v, want %v", i, got, want)
		}
	}
}

func TestResampleEmpty(t *testing.T) {
	rs := (Trajectory{}).Resample(0.5, 6)
	if rs.Len() != 0 || rs.Dt != 0.5 {
		t.Errorf("resampled empty = %+v", rs)
	}
}

func TestResamplePastEndClamps(t *testing.T) {
	tr := Trajectory{Dt: 0.1, States: []vehicle.State{
		{Pos: geom.V(0, 0)}, {Pos: geom.V(1, 0)},
	}}
	rs := tr.Resample(0.5, 4)
	for i := 1; i <= 4; i++ {
		if got := rs.StateAt(i).Pos.X; got != 1 {
			t.Errorf("resample should clamp to final state, step %d = %v", i, got)
		}
	}
}
