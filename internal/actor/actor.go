// Package actor models road users other than (and including) the ego
// vehicle: their kinematic state, physical footprint, time-indexed
// trajectories X_{t:t+k}, and the constant-velocity-and-turn-rate (CVTR)
// trajectory predictor the paper uses for X̂ during SMC training/inference.
package actor

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/vehicle"
)

// Kind distinguishes actor categories; the Argoverse-analogue dataset uses
// pedestrians, the NHTSA scenarios only vehicles.
type Kind int

// Actor kinds.
const (
	KindVehicle Kind = iota + 1
	KindPedestrian
	KindStatic // parked vehicles, debris
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindVehicle:
		return "vehicle"
	case KindPedestrian:
		return "pedestrian"
	case KindStatic:
		return "static"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Actor is a road user with a footprint.
type Actor struct {
	ID      int
	Kind    Kind
	State   vehicle.State
	Length  float64
	Width   float64
	YawRate float64 // current turn rate, used by the CVTR predictor
}

// NewVehicle returns a standard-sized vehicle actor.
func NewVehicle(id int, state vehicle.State) *Actor {
	return &Actor{ID: id, Kind: KindVehicle, State: state, Length: 4.7, Width: 2.0}
}

// NewPedestrian returns a pedestrian actor.
func NewPedestrian(id int, state vehicle.State) *Actor {
	return &Actor{ID: id, Kind: KindPedestrian, State: state, Length: 0.6, Width: 0.6}
}

// Footprint returns the actor's oriented bounding box.
func (a *Actor) Footprint() geom.Box {
	return geom.NewBox(a.State.Pos, a.Length, a.Width, a.State.Heading)
}

// FootprintAt returns the box the actor would occupy at the given state.
func (a *Actor) FootprintAt(s vehicle.State) geom.Box {
	return geom.NewBox(s.Pos, a.Length, a.Width, s.Heading)
}

// Clone returns a deep copy of the actor.
func (a *Actor) Clone() *Actor {
	c := *a
	return &c
}

// Trajectory is a time-ordered sequence of states sampled at a fixed
// interval, representing X^{(i)}_{t:t+k}. Index 0 is the state at the
// trajectory's reference time t.
type Trajectory struct {
	Dt     float64
	States []vehicle.State
}

// StateAt returns the state at slice index i, clamping to the last state for
// indexes past the end (actors are assumed to hold their final state).
func (tr Trajectory) StateAt(i int) vehicle.State {
	if len(tr.States) == 0 {
		return vehicle.State{}
	}
	if i < 0 {
		i = 0
	}
	if i >= len(tr.States) {
		i = len(tr.States) - 1
	}
	return tr.States[i]
}

// Len returns the number of sampled states.
func (tr Trajectory) Len() int { return len(tr.States) }

// Duration returns the covered time span.
func (tr Trajectory) Duration() float64 {
	if len(tr.States) < 2 {
		return 0
	}
	return float64(len(tr.States)-1) * tr.Dt
}
