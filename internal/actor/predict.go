package actor

import (
	"math"

	"repro/internal/geom"
	"repro/internal/vehicle"
)

// PredictCVTR forecasts an actor's trajectory with the constant-velocity-
// and-turn-rate model used by the paper for X̂ in §IV-C: speed is held
// constant and heading evolves at the actor's current yaw rate.
//
// The returned trajectory has steps+1 states sampled every dt seconds; the
// first state is the actor's current state.
func PredictCVTR(a *Actor, steps int, dt float64) Trajectory {
	states := make([]vehicle.State, 0, steps+1)
	s := a.State
	states = append(states, s)
	for i := 0; i < steps; i++ {
		heading := geom.NormalizeAngle(s.Heading + a.YawRate*dt)
		avg := geom.NormalizeAngle(s.Heading + a.YawRate*dt/2)
		sin, cos := math.Sincos(avg)
		s = vehicle.State{
			Pos:     s.Pos.Add(geom.V(s.Speed*cos*dt, s.Speed*sin*dt)),
			Heading: heading,
			Speed:   s.Speed,
		}
		states = append(states, s)
	}
	return Trajectory{Dt: dt, States: states}
}

// PredictAll applies PredictCVTR to every actor, returning the trajectory
// set X̂_{t:t+k} in actor order.
func PredictAll(actors []*Actor, steps int, dt float64) []Trajectory {
	out := make([]Trajectory, len(actors))
	for i, a := range actors {
		out[i] = PredictCVTR(a, steps, dt)
	}
	return out
}

// Resample converts a trajectory recorded at one sampling interval to
// another by nearest-time lookup. It is used to align ground-truth
// simulator traces (0.1 s steps) with the reach-tube slice size (0.5 s).
func (tr Trajectory) Resample(dt float64, steps int) Trajectory {
	if tr.Dt <= 0 || len(tr.States) == 0 {
		return Trajectory{Dt: dt}
	}
	states := make([]vehicle.State, 0, steps+1)
	for i := 0; i <= steps; i++ {
		t := float64(i) * dt
		idx := int(math.Round(t / tr.Dt))
		states = append(states, tr.StateAt(idx))
	}
	return Trajectory{Dt: dt, States: states}
}
