package monitor

import (
	"math"
	"sync"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

func TestReset(t *testing.T) {
	mon, err := New(reach.DefaultConfig(), 0) // stride floors to 1
	if err != nil {
		t.Fatal(err)
	}
	if mon.Stride() != 1 {
		t.Errorf("stride = %d, want 1", mon.Stride())
	}
	mon.samples = []Sample{{Time: 1}}
	mon.Reset()
	if len(mon.Samples()) != 0 {
		t.Error("Reset did not clear samples")
	}
	if mon.PeakSTI() != 0 {
		t.Error("peak of empty trace should be 0")
	}
}

func TestSamplesReturnsCopy(t *testing.T) {
	mon := &Monitor{}
	mon.samples = []Sample{{Time: 1, STI: 0.5}, {Time: 2, STI: 0.7}}
	got := mon.Samples()
	got[0].STI = 99 // must not corrupt the monitor's trace
	got[1].Time = -1
	if mon.samples[0].STI != 0.5 || mon.samples[1].Time != 2 {
		t.Errorf("mutating the returned slice corrupted the trace: %+v", mon.samples)
	}
	// Appending to the copy must not leak into the monitor either.
	_ = append(got, Sample{Time: 3})
	if len(mon.samples) != 2 {
		t.Errorf("append to copy grew the trace: %d samples", len(mon.samples))
	}
}

func TestPeakSTISkipsNaN(t *testing.T) {
	mon := &Monitor{}
	mon.samples = []Sample{
		{Time: 0, STI: 0.3},
		{Time: 1, STI: math.NaN()},
		{Time: 2, STI: 0.4},
	}
	if got := mon.PeakSTI(); got != 0.4 {
		t.Errorf("PeakSTI = %v, want 0.4 (NaN skipped)", got)
	}
	mon.samples = []Sample{{Time: 0, STI: math.NaN()}}
	if got := mon.PeakSTI(); got != 0 {
		t.Errorf("PeakSTI of all-NaN trace = %v, want 0", got)
	}
}

func TestRiskyIntervals(t *testing.T) {
	mon := &Monitor{}
	mon.samples = []Sample{
		{Time: 0, STI: 0},
		{Time: 1, STI: 0.4},
		{Time: 2, STI: 0.5},
		{Time: 3, STI: 0},
		{Time: 4, STI: 0.6},
	}
	got := mon.RiskyIntervals(0.3)
	if len(got) != 2 {
		t.Fatalf("intervals = %v", got)
	}
	if got[0] != [2]float64{1, 3} {
		t.Errorf("first interval = %v", got[0])
	}
	if got[1] != [2]float64{4, 4} {
		t.Errorf("open-ended interval = %v", got[1])
	}
	if got := mon.RiskyIntervals(math.Inf(1)); len(got) != 0 {
		t.Errorf("no interval should exceed +Inf: %v", got)
	}
}

// TestObserveConcurrent exercises the streaming entry point the scoring
// service uses: many goroutines observing and querying one monitor. Run
// under -race this validates the locking.
func TestObserveConcurrent(t *testing.T) {
	mon, err := New(reach.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	road := roadmap.MustStraightRoad(2, 3.5, -100, 400)
	ego := vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}
	const goroutines, perG = 4, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				actors := []*actor.Actor{
					actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
				}
				mon.Observe(road, ego, actors, nil, float64(g*perG+i))
				mon.PeakSTI()
				mon.RiskyIntervals(0.3)
			}
		}(g)
	}
	wg.Wait()
	if got := mon.Len(); got != goroutines*perG {
		t.Errorf("samples = %d, want %d", got, goroutines*perG)
	}
	for _, s := range mon.Samples() {
		if s.STI < 0 || s.STI > 1 {
			t.Errorf("STI out of range: %v", s.STI)
		}
		if s.MostThreatening != 1 && s.MostThreatening != -1 {
			t.Errorf("unexpected most-threatening ID %d", s.MostThreatening)
		}
	}
}
