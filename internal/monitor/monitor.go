// Package monitor implements the online risk assessor of the paper's
// §V-A/V-B: a passive recorder of STI / TTC / Dist. CIPA over an episode.
// It backs both the iprism.RiskMonitor facade (wrapping a sim.Driver in a
// closed-loop episode) and the scoring service's session API
// (internal/server), where observations arrive over HTTP instead of from a
// simulator loop — hence the mutex: a Monitor may be observed and queried
// concurrently.
package monitor

import (
	"context"
	"math"
	"sync"

	"repro/internal/actor"
	"repro/internal/metrics"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/sim"
	"repro/internal/sti"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// telRecordSeconds times one monitor sample (STI + TTC + Dist. CIPA) — the
// per-tick cost of the online risk assessor of §V-A/V-B.
var telRecordSeconds = telemetry.NewHistogram("monitor.record.seconds", telemetry.LatencyBuckets())

// Sample is one instant of online risk assessment.
type Sample struct {
	Time     float64
	STI      float64 // combined STI, [0, 1]
	TTC      float64 // seconds; +Inf when no in-path closing actor
	DistCIPA float64 // metres; +Inf when no in-path actor
	// MostThreatening is the ID of the highest-STI actor, or -1.
	MostThreatening int
}

// Monitor records risk samples over a rolling episode. It never modifies
// the control of the system it observes and is safe for concurrent use.
type Monitor struct {
	eval   *sti.Evaluator
	stride int
	// warm, when set, carries this monitor's session stream state for the
	// evaluator's temporal-coherence warm start. The WarmState's own CAS
	// gate serialises concurrent observes (losers score cold), so the
	// monitor just threads it through.
	warm *sti.WarmState

	mu      sync.Mutex
	samples []Sample
}

// New builds a monitor with its own evaluator that samples every stride
// simulator steps (minimum 1).
func New(cfg reach.Config, stride int) (*Monitor, error) {
	eval, err := sti.NewEvaluator(cfg)
	if err != nil {
		return nil, err
	}
	return NewWithEvaluator(eval, stride), nil
}

// NewWithEvaluator builds a monitor on an existing evaluator — the scoring
// service shares its evaluator pool across many sessions this way. eval
// must be non-nil.
func NewWithEvaluator(eval *sti.Evaluator, stride int) *Monitor {
	if stride < 1 {
		stride = 1
	}
	return &Monitor{eval: eval, stride: stride}
}

// Stride returns the sampling stride in simulator steps.
func (m *Monitor) Stride() int { return m.stride }

// SetWarmState attaches a warm-start state for this monitor's observation
// stream (one per session; never share across monitors). Call before the
// first observation; the caller keeps ownership and is responsible for
// resetting/pooling it when the stream ends.
func (m *Monitor) SetWarmState(ws *sti.WarmState) { m.warm = ws }

// Samples returns a copy of the recorded trace; callers may mutate it
// freely without corrupting the monitor's history.
func (m *Monitor) Samples() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Len returns the number of recorded samples.
func (m *Monitor) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.samples)
}

// Reset clears the recorded trace.
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples = nil
}

// PeakSTI returns the maximum recorded combined STI. NaN samples are
// skipped, matching RiskyIntervals.
func (m *Monitor) PeakSTI() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	peak := 0.0
	for _, s := range m.samples {
		if !math.IsNaN(s.STI) && s.STI > peak {
			peak = s.STI
		}
	}
	return peak
}

// Telemetry returns a snapshot of the process-wide telemetry registry —
// the risk-assessment counters and latency histograms accumulated so far
// (all zero unless telemetry.Enable has been called).
func (m *Monitor) Telemetry() telemetry.Snapshot {
	return telemetry.Default().Snapshot()
}

// Wrap returns a Driver that delegates to inner while recording risk.
func (m *Monitor) Wrap(inner sim.Driver) sim.Driver {
	return &monitoredDriver{inner: inner, monitor: m}
}

type monitoredDriver struct {
	inner   sim.Driver
	monitor *Monitor
	steps   int
}

func (d *monitoredDriver) Reset() {
	d.inner.Reset()
	d.steps = 0
}

func (d *monitoredDriver) Act(obs sim.Observation) vehicle.Control {
	if d.steps%d.monitor.stride == 0 {
		d.monitor.record(obs)
	}
	d.steps++
	return d.inner.Act(obs)
}

// Observe records one externally supplied scene at time t — the streaming
// entry point used by the scoring service's session API. Unlike Wrap it is
// not strided: every observation the caller chose to send is recorded. It
// returns the recorded sample.
func (m *Monitor) Observe(rm roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory, t float64) Sample {
	s, _ := m.ObserveProv(context.Background(), rm, ego, actors, trajs, t)
	return s
}

// ObserveProv is Observe with request-scoped tracing (spans land on the
// trace.Recorder carried by ctx, if any) and the evaluation's risk
// provenance — the variant the scoring service uses for its wide events
// and ?explain=1 responses.
func (m *Monitor) ObserveProv(ctx context.Context, rm roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory, t float64) (Sample, sti.Provenance) {
	return m.observe(ctx, sim.Observation{Map: rm, Ego: ego, EgoParams: vehicle.DefaultParams(), Actors: actors, Time: t}, trajs)
}

func (m *Monitor) record(obs sim.Observation) Sample {
	s, _ := m.observe(context.Background(), obs, nil)
	return s
}

// observe scores one observation and appends the sample. When trajs is nil
// every actor's trajectory is CVTR-predicted (the paper's online
// configuration); explicit trajectories take precedence.
func (m *Monitor) observe(ctx context.Context, obs sim.Observation, trajs []actor.Trajectory) (Sample, sti.Provenance) {
	defer telRecordSeconds.Start().Stop()
	cfg := m.eval.Config()
	steps := cfg.NumSlices()
	if trajs == nil {
		trajs = actor.PredictAll(obs.Actors, steps, cfg.SliceDt)
	}
	// EvaluateWarmTraced degrades to a plain evaluation when m.warm is nil
	// or the evaluator was built without WarmStart, so this is the one call
	// site for both configurations.
	res, prov := m.eval.EvaluateWarmTraced(ctx, obs.Map, obs.Ego, obs.Actors, trajs, m.warm)
	scene := metrics.Scene{
		Map:       obs.Map,
		Ego:       obs.Ego,
		EgoParams: obs.EgoParams,
		Actors:    obs.Actors,
		Trajs:     trajs,
		Horizon:   cfg.Horizon,
		Dt:        cfg.SliceDt,
	}
	idx, _ := res.MostThreatening()
	id := -1
	if idx >= 0 {
		id = obs.Actors[idx].ID
	}
	s := Sample{
		Time:            obs.Time,
		STI:             res.Combined,
		TTC:             metrics.TTC(scene),
		DistCIPA:        metrics.DistCIPA(scene),
		MostThreatening: id,
	}
	m.mu.Lock()
	m.samples = append(m.samples, s)
	m.mu.Unlock()
	return s, prov
}

// RiskyIntervals returns the [start, end) time intervals during which the
// recorded STI exceeded the threshold.
func (m *Monitor) RiskyIntervals(threshold float64) [][2]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out [][2]float64
	open := false
	start := 0.0
	for _, s := range m.samples {
		risky := s.STI > threshold && !math.IsNaN(s.STI)
		switch {
		case risky && !open:
			open, start = true, s.Time
		case !risky && open:
			open = false
			out = append(out, [2]float64{start, s.Time})
		}
	}
	if open && len(m.samples) > 0 {
		out = append(out, [2]float64{start, m.samples[len(m.samples)-1].Time})
	}
	return out
}
