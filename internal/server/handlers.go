package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/scene"
	"repro/internal/sti"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// ScoreVersion tags scoring responses, mirroring the request codec's
// scene.Version.
const ScoreVersion = "iprism.score/v1"

// ScoreResponse is the JSON answer to one scored scene.
type ScoreResponse struct {
	Version  string  `json:"version"`
	Combined float64 `json:"combined_sti"`
	// MostThreatening is the ID of the highest-STI actor, or -1.
	MostThreatening int          `json:"most_threatening"`
	Actors          []ActorScore `json:"actors,omitempty"`
	BaseVolume      float64      `json:"base_volume"`
	EmptyVolume     float64      `json:"empty_volume"`
	// Provenance explains how the score was derived; present only when the
	// client asked with ?explain=1.
	Provenance *scene.Provenance `json:"provenance,omitempty"`
	// Error is set instead of scores on per-scene failures inside batch
	// responses.
	Error string `json:"error,omitempty"`
}

// ActorScore is one actor's STI and backing counterfactual volume.
type ActorScore struct {
	ID            int     `json:"id"`
	STI           float64 `json:"sti"`
	WithoutVolume float64 `json:"without_volume"`
}

// BatchRequest scores many scenes in one round-trip; the scenes fan out
// over the evaluator pool as independent jobs.
type BatchRequest struct {
	Scenes []scene.Scene `json:"scenes"`
}

// BatchResponse answers a BatchRequest, results index-aligned with the
// request's scenes.
type BatchResponse struct {
	Version string          `json:"version"`
	Results []ScoreResponse `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	// The scoring/session API gets the full observability envelope (wide
	// events, SLO accounting); the health/debug surface propagates trace
	// headers but does not pollute the flight recorder or the SLOs.
	s.mux.HandleFunc("POST /v1/score", s.traced("/v1/score", true, s.handleScore))
	s.mux.HandleFunc("POST /v1/score/batch", s.traced("/v1/score/batch", true, s.handleScoreBatch))
	s.mux.HandleFunc("POST /v1/sessions", s.traced("/v1/sessions", true, s.handleSessionCreate))
	s.mux.HandleFunc("POST /v1/sessions/{id}/observe", s.traced("/v1/sessions/observe", true, s.handleSessionObserve))
	s.mux.HandleFunc("GET /v1/sessions/{id}/risk", s.traced("/v1/sessions/risk", true, s.handleSessionRisk))
	// The stream is long-lived, so it skips the wide/SLO envelope (a
	// minutes-long stream is not a latency-SLO violation); its wide event
	// still records the disconnect via the non-wide trace wrapper.
	s.mux.HandleFunc("GET /v1/sessions/{id}/stream", s.traced("/v1/sessions/stream", false, s.handleSessionStream))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.traced("/v1/sessions/delete", true, s.handleSessionDelete))
	s.mux.HandleFunc("GET /healthz", s.traced("/healthz", false, func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	}))
	s.mux.Handle("GET /metrics", telemetry.Default().MetricsHandler())
	s.mux.Handle("GET /debug/telemetry", telemetry.Default().SnapshotHandler())
	s.mux.HandleFunc("GET /debug/requests", s.traced("/debug/requests", false, s.handleDebugRequests))
	s.mux.HandleFunc("GET /debug/slo", s.traced("/debug/slo", false, s.handleDebugSLO))
}

// handleScore scores one scene: 200 with a ScoreResponse, 400 on malformed
// input, 429 under backpressure, 504 past the request deadline. ?explain=1
// adds the risk-provenance block to the response.
func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	sc, ok := s.readScene(w, r)
	if !ok {
		return
	}
	explain := r.URL.Query().Get("explain") == "1"
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	resp, status := s.scoreScene(ctx, sc, explain)
	s.writeJSON(w, status, resp)
}

// handleScoreBatch scores up to MaxBatchScenes scenes from one request.
// Per-scene failures (saturation, invalid road) are reported per result;
// the response is 200 unless every scene was rejected for saturation, in
// which case it degrades to a plain 429 so clients back off.
func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("read body: %v", err)})
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decode batch: %v", err)})
		return
	}
	if len(req.Scenes) == 0 {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "batch has no scenes"})
		return
	}
	for i := range req.Scenes {
		if err := req.Scenes[i].Validate(); err != nil {
			telRejectedBad.Inc()
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("scene %d: %v", i, err)})
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	// Fan the scenes out over the pool as independent jobs and gather.
	resp := BatchResponse{Version: ScoreVersion, Results: make([]ScoreResponse, len(req.Scenes))}
	statuses := make([]int, len(req.Scenes))
	var wg sync.WaitGroup
	for i := range req.Scenes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp.Results[i], statuses[i] = s.scoreScene(ctx, req.Scenes[i], false)
		}(i)
	}
	wg.Wait()
	saturated := 0
	for _, st := range statuses {
		switch st {
		case http.StatusGatewayTimeout:
			s.writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "batch deadline exceeded"})
			return
		case http.StatusTooManyRequests:
			saturated++
		}
	}
	if saturated == len(req.Scenes) {
		s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "scoring queue full"})
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// scoreScene runs one validated scene through the pool, mapping failures
// onto HTTP statuses. The ScoreResponse always carries a usable body: a
// result on 200, an Error field otherwise (for batch embedding). explain
// attaches the provenance block (per-actor contributions, engine path,
// span waterfall) to successful responses.
func (s *Server) scoreScene(ctx context.Context, sc scene.Scene, explain bool) (ScoreResponse, int) {
	m, ego, actors, trajs, hasTrajs, err := sc.Materialize()
	if err != nil {
		telRejectedBad.Inc()
		return ScoreResponse{Version: ScoreVersion, Error: err.Error()}, http.StatusBadRequest
	}
	res, prov, err := s.score(ctx, m, ego, actors, completeTrajs(s.cfg.Reach, actors, trajs, hasTrajs))
	switch {
	case errors.Is(err, errSaturated):
		telRejectedFull.Inc()
		return ScoreResponse{Version: ScoreVersion, Error: "scoring queue full"}, http.StatusTooManyRequests
	case err != nil:
		return ScoreResponse{Version: ScoreVersion, Error: "deadline exceeded"}, http.StatusGatewayTimeout
	}
	out := ScoreResponse{
		Version:         ScoreVersion,
		Combined:        res.Combined,
		MostThreatening: -1,
		BaseVolume:      res.BaseVolume,
		EmptyVolume:     res.EmptyVolume,
	}
	if idx, _ := res.MostThreatening(); idx >= 0 {
		out.MostThreatening = actors[idx].ID
	}
	out.Actors = make([]ActorScore, len(actors))
	for i, a := range actors {
		out.Actors[i] = ActorScore{ID: a.ID, STI: res.PerActor[i], WithoutVolume: res.WithoutVolume[i]}
	}
	if explain {
		p := wireProvenance(ctx, prov)
		p.Actors = make([]scene.ActorProvenance, len(actors))
		for i, a := range actors {
			p.Actors[i] = scene.ActorProvenance{ID: a.ID, STI: res.PerActor[i], WithoutVolume: res.WithoutVolume[i]}
		}
		out.Provenance = p
	}
	return out, http.StatusOK
}

// wireProvenance maps an evaluation's sti.Provenance onto the versioned
// wire block, stamping the request's trace identifier and span waterfall.
// Shared by stateless scoring and the session observe path.
func wireProvenance(ctx context.Context, prov sti.Provenance) *scene.Provenance {
	rec := trace.FromContext(ctx)
	p := &scene.Provenance{
		TraceID:         rec.TraceID().String(),
		Engine:          prov.Engine,
		CacheState:      prov.CacheState,
		MaskWidth:       prov.MaskWidth,
		MaskWords:       prov.MaskWords,
		ElidedActors:    prov.ElidedActors,
		WarmHit:         prov.WarmHit,
		WarmReused:      prov.WarmReused,
		WarmInvalidated: prov.WarmInvalidated,
	}
	for _, sp := range rec.Spans() {
		p.Spans = append(p.Spans, scene.SpanTiming{Name: sp.Name, StartUS: sp.StartUS, DurUS: sp.DurUS})
	}
	return p
}

// readScene decodes and validates the request body as one scene, answering
// 400/413 itself when it fails.
func (s *Server) readScene(w http.ResponseWriter, r *http.Request) (scene.Scene, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("read body: %v", err)})
		return scene.Scene{}, false
	}
	sc, err := scene.Decode(body)
	if err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return scene.Scene{}, false
	}
	return sc, true
}

// writeJSON answers with a JSON body. 429 responses carry a Retry-After
// estimated from the live queue depth and the observed per-scene scoring
// time, so backed-off clients return when capacity is actually likely.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// queryThreshold parses the ?threshold= risky-interval cut-off (default
// 0.2, the paper's risk threshold for interval extraction).
func queryThreshold(r *http.Request) (float64, error) {
	q := r.URL.Query().Get("threshold")
	if q == "" {
		return 0.2, nil
	}
	v, err := strconv.ParseFloat(q, 64)
	if err != nil || v < 0 || v > 1 {
		return 0, fmt.Errorf("threshold %q must be a number in [0, 1]", q)
	}
	return v, nil
}
