package server

import (
	"math"
	"net/http"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// statusWriter captures the response status code for wide events and SLO
// accounting. A handler that never calls WriteHeader answered 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE handlers can stream through
// the tracing envelope (a no-op when the connection cannot flush).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traced wraps an endpoint with the request-observability envelope:
//
//   - ingest X-Trace-Id (or mint one) and propagate it on the response —
//     headers are set before the handler runs, so every path including
//     400/429/504 carries X-Trace-Id and X-Request-Id;
//   - carry a trace.Recorder in the request context for the evaluator
//     layers to annotate;
//   - observe the request latency with the trace ID as exemplar, so a p99
//     histogram bucket resolves to a replayable request;
//   - when wide is set (the scoring/session API, not the debug surface):
//     record the request against both SLOs, append one wide event to the
//     flight recorder, and journal it as event "wide_event".
func (s *Server) traced(route string, wide bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		telRequests.Inc()
		id, honoured := trace.ParseOrNew(r.Header.Get("X-Trace-Id"))
		rec := trace.NewRecorder(id)
		reqID := rec.RootSpanID().String()
		w.Header().Set("X-Trace-Id", id.String())
		w.Header().Set("X-Request-Id", reqID)
		if honoured {
			rec.Annotate("trace_id_source", "caller")
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(trace.NewContext(r.Context(), rec)))
		d := time.Since(start)
		telRequestSecs.ObserveExemplar(d.Seconds(), id.String())
		if !wide {
			return
		}
		// Availability counts deliberate backpressure (429) as good — the
		// service answered as designed; only 5xx burns that budget. Latency
		// is judged against the configured target.
		s.sloAvailability.Record(sw.status < http.StatusInternalServerError)
		s.sloLatency.Record(d <= s.cfg.SLOLatencyTarget)
		ev := rec.WideEvent(route, reqID, sw.status, d)
		s.flight.Add(ev)
		telemetry.Emit("wide_event", ev.Fields())
	}
}

// noteScore feeds one scene-scoring duration into the EWMA backing
// Retry-After estimates.
func (s *Server) noteScore(d time.Duration) {
	const alpha = 8 // EWMA weight 1/8 on the newest sample
	for {
		old := s.avgScoreNS.Load()
		nw := old + (d.Nanoseconds()-old)/alpha
		if old == 0 {
			nw = d.Nanoseconds()
		}
		if s.avgScoreNS.CompareAndSwap(old, nw) {
			return
		}
	}
}

// retryAfterSeconds estimates how long a rejected client should back off:
// the queued backlog divided over the workers (ceiling division — a queue
// of exactly w×k jobs drains in k batches, not k+1, and an empty queue is
// zero batches), priced at the observed per-scene EWMA, clamped to [1, 30]
// seconds. A cold server (no scenes scored yet) assumes 50ms per scene.
func (s *Server) retryAfterSeconds() int {
	avg := time.Duration(s.avgScoreNS.Load())
	if avg <= 0 {
		avg = 50 * time.Millisecond
	}
	workers := s.cfg.Workers
	backlog := (len(s.jobs) + workers - 1) / workers
	secs := int(math.Ceil((time.Duration(backlog) * avg).Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}
