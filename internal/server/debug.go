package server

import (
	"net/http"
	"strconv"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// DebugRequestsResponse answers /debug/requests: recent wide events from
// the in-memory flight recorder, newest first.
type DebugRequestsResponse struct {
	// Retained is how many events the ring currently holds (its capacity is
	// Config.FlightRecorderSize).
	Retained int               `json:"retained"`
	Requests []trace.WideEvent `json:"requests"`
}

// DebugSLOResponse answers /debug/slo: the live multi-window burn-rate
// status of every declared objective.
type DebugSLOResponse struct {
	SLOs []telemetry.SLOStatus `json:"slos"`
}

// handleDebugRequests serves the flight recorder. ?trace_id=<32 hex>
// resolves one trace (every retained request that carried it, e.g. a
// session's observe stream); ?limit=N bounds the unfiltered listing
// (default 32).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	resp := DebugRequestsResponse{Retained: s.flight.Len()}
	if tid := r.URL.Query().Get("trace_id"); tid != "" {
		resp.Requests = s.flight.Find(tid)
		if len(resp.Requests) == 0 {
			s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "trace_id not in flight recorder (evicted or never seen)"})
			return
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	limit := 32
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "limit must be a positive integer"})
			return
		}
		limit = v
	}
	resp.Requests = s.flight.Recent(limit)
	if resp.Requests == nil {
		resp.Requests = []trace.WideEvent{}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleDebugSLO serves the burn-rate view of the serving objectives.
func (s *Server) handleDebugSLO(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, DebugSLOResponse{
		SLOs: []telemetry.SLOStatus{s.sloAvailability.Status(), s.sloLatency.Status()},
	})
}
