package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/sti"
	"repro/internal/telemetry/trace"
)

// A session wraps one internal/monitor.Monitor — the paper's §V-A/V-B
// online risk assessor — behind HTTP: the client streams observations of a
// rolling episode and queries peak STI and risky intervals at any point.
// Observations are scored on the shared evaluator pool like stateless
// requests, so sessions obey the same backpressure and deadlines.
//
// Each observation is also published as a per-tick risk event to the
// session's SSE subscribers (GET /v1/sessions/{id}/stream, see sse.go): a
// bounded history ring backs Last-Event-ID resume, and subscribers that
// fall too far behind are disconnected rather than allowed to apply
// backpressure to the scoring path.
type session struct {
	ID  string
	mon *monitor.Monitor

	mu      sync.Mutex
	nextSeq uint64
	history []riskEvent // resume ring, oldest first, capped at historyCap
	subs    map[*streamSub]struct{}
	closed  bool

	historyCap int
}

// sessionTable is the registry of open sessions.
type sessionTable struct {
	mu   sync.Mutex
	next int
	max  int
	m    map[string]*session
}

func (t *sessionTable) init(max int) {
	t.max = max
	t.m = make(map[string]*session)
}

var (
	errSessionLimit  = errors.New("session limit reached")
	errSessionExists = errors.New("session id already exists")
)

// create registers a session. id is the client-assigned identifier (the
// gateway tier names sessions so consistent-hash routing needs no shared
// state); empty means the server mints one.
func (t *sessionTable) create(mon *monitor.Monitor, id string, historyCap int) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) >= t.max {
		return nil, errSessionLimit
	}
	if id == "" {
		t.next++
		id = fmt.Sprintf("s%06d", t.next)
	} else if _, ok := t.m[id]; ok {
		return nil, errSessionExists
	}
	s := &session{
		ID:         id,
		mon:        mon,
		subs:       make(map[*streamSub]struct{}),
		historyCap: historyCap,
	}
	t.m[s.ID] = s
	telSessionsGauge.Set(float64(len(t.m)))
	return s, nil
}

func (t *sessionTable) get(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[id]
	return s, ok
}

func (t *sessionTable) remove(id string) bool {
	t.mu.Lock()
	s, ok := t.m[id]
	if !ok {
		t.mu.Unlock()
		return false
	}
	delete(t.m, id)
	telSessionsGauge.Set(float64(len(t.m)))
	t.mu.Unlock()
	s.close()
	return true
}

// closeAll ends every session's streams (server shutdown).
func (t *sessionTable) closeAll() {
	t.mu.Lock()
	ss := make([]*session, 0, len(t.m))
	for _, s := range t.m {
		ss = append(ss, s)
	}
	t.mu.Unlock()
	for _, s := range ss {
		s.close()
	}
}

// SessionCreateRequest opens a session. All fields are optional.
type SessionCreateRequest struct {
	// Stride is accepted for parity with the in-process monitor but the
	// HTTP session records every observation the client sends (the client
	// already chose what to send); it must be >= 0.
	Stride int `json:"stride,omitempty"`
	// ID is a client-assigned session identifier ([A-Za-z0-9_.-], at most
	// 64 bytes). The gateway tier assigns IDs so a session's owner backend
	// is derivable from the ID alone by consistent hashing; an ID already
	// in use answers 409. Empty lets the server mint one.
	ID string `json:"id,omitempty"`
}

// SessionCreateResponse returns the new session's handle.
type SessionCreateResponse struct {
	ID string `json:"id"`
}

// SessionObserveResponse echoes the recorded sample. The same document is
// the `data:` payload of the session's SSE risk stream, where Seq is also
// the SSE event ID (the Last-Event-ID resume cursor).
type SessionObserveResponse struct {
	Version         string  `json:"version"`
	Seq             uint64  `json:"seq,omitempty"`
	Time            float64 `json:"time"`
	STI             float64 `json:"sti"`
	TTC             float64 `json:"ttc"`
	DistCIPA        float64 `json:"dist_cipa"`
	MostThreatening int     `json:"most_threatening"`
}

// SessionRiskResponse summarises the episode so far.
type SessionRiskResponse struct {
	Version        string       `json:"version"`
	Samples        int          `json:"samples"`
	PeakSTI        float64      `json:"peak_sti"`
	Threshold      float64      `json:"threshold"`
	RiskyIntervals [][2]float64 `json:"risky_intervals"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionCreateRequest
	// An empty body opens a default session; a malformed one is a 400.
	if err := decodeJSONBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Stride < 0 {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "stride must be >= 0"})
		return
	}
	if err := validSessionID(req.ID); err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// Sessions share the pool's evaluators: observations are scored by
	// whichever worker picks the job up, so the monitor only needs an
	// evaluator for its reach configuration.
	sess, err := s.sessions.create(monitor.NewWithEvaluator(s.pool[0], max(req.Stride, 1)), req.ID, s.cfg.SSEHistory)
	switch {
	case errors.Is(err, errSessionExists):
		s.writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	case err != nil:
		s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusCreated, SessionCreateResponse{ID: sess.ID})
}

// validSessionID bounds client-assigned session IDs to a path- and
// log-safe charset.
func validSessionID(id string) error {
	if len(id) > 64 {
		return errors.New("session id longer than 64 bytes")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return fmt.Errorf("session id byte %d outside [A-Za-z0-9_.-]", i)
		}
	}
	return nil
}

func (s *Server) handleSessionObserve(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown session"})
		return
	}
	sc, ok := s.readScene(w, r)
	if !ok {
		return
	}
	m, ego, actors, trajs, hasTrajs, err := sc.Materialize()
	if err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	rec := trace.FromContext(ctx)
	enq := time.Now()
	var sample monitor.Sample
	j, err := s.submit(ctx, func(ev *sti.Evaluator) {
		rec.Annotate("queue_wait_seconds", time.Since(enq).Seconds())
		t := telScoreSecs.Start()
		start := time.Now()
		sp := rec.StartSpan("server.observe")
		sample = sess.mon.Observe(m, ego, actors, completeTrajs(s.cfg.Reach, actors, trajs, hasTrajs), sc.Time)
		sp.End()
		t.Stop()
		s.noteScore(time.Since(start))
		telScenes.Inc()
	})
	if err != nil {
		telRejectedFull.Inc()
		s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "scoring queue full"})
		return
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		telTimeouts.Inc()
		s.writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded"})
		return
	}
	resp := SessionObserveResponse{
		Version:         ScoreVersion,
		Time:            sample.Time,
		STI:             sample.STI,
		TTC:             sample.TTC,
		DistCIPA:        sample.DistCIPA,
		MostThreatening: sample.MostThreatening,
	}
	resp.Seq = sess.publish(resp)
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionRisk(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown session"})
		return
	}
	threshold, err := queryThreshold(r)
	if err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	intervals := sess.mon.RiskyIntervals(threshold)
	if intervals == nil {
		intervals = [][2]float64{}
	}
	s.writeJSON(w, http.StatusOK, SessionRiskResponse{
		Version:        ScoreVersion,
		Samples:        sess.mon.Len(),
		PeakSTI:        sess.mon.PeakSTI(),
		Threshold:      threshold,
		RiskyIntervals: intervals,
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.remove(r.PathValue("id")) {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown session"})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// decodeJSONBody decodes an optional JSON body into v; an empty body
// leaves v at its zero value.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		return fmt.Errorf("read body: %w", err)
	}
	if len(body) == 0 {
		return nil
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	return nil
}
