package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/monitor"
	"repro/internal/scene"
	"repro/internal/sti"
	"repro/internal/telemetry/trace"
)

// A session wraps one internal/monitor.Monitor — the paper's §V-A/V-B
// online risk assessor — behind HTTP: the client streams observations of a
// rolling episode and queries peak STI and risky intervals at any point.
// Observations are scored on the shared evaluator pool like stateless
// requests, so sessions obey the same backpressure and deadlines.
//
// Each observation is also published as a per-tick risk event to the
// session's SSE subscribers (GET /v1/sessions/{id}/stream, see sse.go): a
// bounded history ring backs Last-Event-ID resume, and subscribers that
// fall too far behind are disconnected rather than allowed to apply
// backpressure to the scoring path.
type session struct {
	ID  string
	mon *monitor.Monitor
	// warm is this session's temporal-coherence state (nil when the server
	// doesn't warm-start); warmPut returns it to the server's pool exactly
	// once, on close. The monitor holds the same pointer and threads it
	// into every evaluation; the WarmState's own CAS gate keeps concurrent
	// observes of one session safe.
	warm    *sti.WarmState
	warmPut func(*sti.WarmState)

	mu      sync.Mutex
	nextSeq uint64
	history []riskEvent // resume ring, oldest first, capped at historyCap
	subs    map[*streamSub]struct{}
	closed  bool
	// lastTime/hasTime track the admitted tick-time floor: observation
	// times must be strictly increasing within a session (a stale-clock
	// client would otherwise corrupt the monitor's time-indexed windows).
	// The floor advances at admission, before scoring, so a tick that later
	// fails to score still consumes its timestamp.
	lastTime float64
	hasTime  bool

	historyCap int
}

// sessionTable is the registry of open sessions.
type sessionTable struct {
	mu   sync.Mutex
	next int
	max  int
	m    map[string]*session
}

func (t *sessionTable) init(max int) {
	t.max = max
	t.m = make(map[string]*session)
}

var (
	errSessionLimit  = errors.New("session limit reached")
	errSessionExists = errors.New("session id already exists")
)

// create registers a session. id is the client-assigned identifier (the
// gateway tier names sessions so consistent-hash routing needs no shared
// state); empty means the server mints one.
func (t *sessionTable) create(mon *monitor.Monitor, id string, historyCap int, warm *sti.WarmState, warmPut func(*sti.WarmState)) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) >= t.max {
		return nil, errSessionLimit
	}
	if id == "" {
		t.next++
		id = fmt.Sprintf("s%06d", t.next)
	} else if _, ok := t.m[id]; ok {
		return nil, errSessionExists
	}
	s := &session{
		ID:         id,
		mon:        mon,
		warm:       warm,
		warmPut:    warmPut,
		subs:       make(map[*streamSub]struct{}),
		historyCap: historyCap,
	}
	t.m[s.ID] = s
	telSessionsGauge.Set(float64(len(t.m)))
	return s, nil
}

func (t *sessionTable) get(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[id]
	return s, ok
}

func (t *sessionTable) remove(id string) bool {
	t.mu.Lock()
	s, ok := t.m[id]
	if !ok {
		t.mu.Unlock()
		return false
	}
	delete(t.m, id)
	telSessionsGauge.Set(float64(len(t.m)))
	t.mu.Unlock()
	s.close()
	return true
}

// closeAll ends every session's streams (server shutdown).
func (t *sessionTable) closeAll() {
	t.mu.Lock()
	ss := make([]*session, 0, len(t.m))
	for _, s := range t.m {
		ss = append(ss, s)
	}
	t.mu.Unlock()
	for _, s := range ss {
		s.close()
	}
}

// SessionCreateRequest opens a session. All fields are optional.
type SessionCreateRequest struct {
	// Stride is accepted for parity with the in-process monitor but the
	// HTTP session records every observation the client sends (the client
	// already chose what to send); it must be >= 0.
	Stride int `json:"stride,omitempty"`
	// ID is a client-assigned session identifier ([A-Za-z0-9_.-], at most
	// 64 bytes). The gateway tier assigns IDs so a session's owner backend
	// is derivable from the ID alone by consistent hashing; an ID already
	// in use answers 409. Empty lets the server mint one.
	ID string `json:"id,omitempty"`
}

// SessionCreateResponse returns the new session's handle.
type SessionCreateResponse struct {
	ID string `json:"id"`
}

// SessionObserveResponse echoes the recorded sample. The same document is
// the `data:` payload of the session's SSE risk stream, where Seq is also
// the SSE event ID (the Last-Event-ID resume cursor).
type SessionObserveResponse struct {
	Version         string  `json:"version"`
	Seq             uint64  `json:"seq,omitempty"`
	Time            float64 `json:"time"`
	STI             float64 `json:"sti"`
	TTC             float64 `json:"ttc"`
	DistCIPA        float64 `json:"dist_cipa"`
	MostThreatening int     `json:"most_threatening"`
	// Provenance explains how the tick was scored (engine, cache, warm-start
	// outcome); present only when the client asked with ?explain=1, and only
	// on the HTTP response — SSE risk events never carry it (it is attached
	// after the event is published).
	Provenance *scene.Provenance `json:"provenance,omitempty"`
}

// SessionRiskResponse summarises the episode so far.
type SessionRiskResponse struct {
	Version        string       `json:"version"`
	Samples        int          `json:"samples"`
	PeakSTI        float64      `json:"peak_sti"`
	Threshold      float64      `json:"threshold"`
	RiskyIntervals [][2]float64 `json:"risky_intervals"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionCreateRequest
	// An empty body opens a default session; a malformed one is a 400.
	if err := decodeJSONBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Stride < 0 {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "stride must be >= 0"})
		return
	}
	if err := validSessionID(req.ID); err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	// Sessions share the pool's evaluators: observations are scored by
	// whichever worker picks the job up, so the monitor only needs an
	// evaluator for its reach configuration. The warm-start state, by
	// contrast, is strictly per-session — it is attached to this session's
	// monitor alone and returned to the pool when the session closes.
	mon := monitor.NewWithEvaluator(s.pool[0], max(req.Stride, 1))
	warm := s.takeWarm()
	if warm != nil {
		mon.SetWarmState(warm)
	}
	sess, err := s.sessions.create(mon, req.ID, s.cfg.SSEHistory, warm, s.putWarm)
	if err != nil && warm != nil {
		s.putWarm(warm)
	}
	switch {
	case errors.Is(err, errSessionExists):
		s.writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	case err != nil:
		s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusCreated, SessionCreateResponse{ID: sess.ID})
}

// validSessionID bounds client-assigned session IDs to a path- and
// log-safe charset.
func validSessionID(id string) error {
	if len(id) > 64 {
		return errors.New("session id longer than 64 bytes")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return fmt.Errorf("session id byte %d outside [A-Za-z0-9_.-]", i)
		}
	}
	return nil
}

func (s *Server) handleSessionObserve(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown session"})
		return
	}
	sc, ok := s.readScene(w, r)
	if !ok {
		return
	}
	m, ego, actors, trajs, hasTrajs, err := sc.Materialize()
	if err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if err := sess.admitTime(sc.Time); err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	rec := trace.FromContext(ctx)
	enq := time.Now()
	var sample monitor.Sample
	var prov sti.Provenance
	j, err := s.submit(ctx, func(ev *sti.Evaluator) {
		rec.Annotate("queue_wait_seconds", time.Since(enq).Seconds())
		t := telScoreSecs.Start()
		start := time.Now()
		sp := rec.StartSpan("server.observe")
		sample, prov = sess.mon.ObserveProv(ctx, m, ego, actors, completeTrajs(s.cfg.Reach, actors, trajs, hasTrajs), sc.Time)
		sp.End()
		t.Stop()
		s.noteScore(time.Since(start))
		telScenes.Inc()
	})
	if err != nil {
		telRejectedFull.Inc()
		s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "scoring queue full"})
		return
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		telTimeouts.Inc()
		s.writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "deadline exceeded"})
		return
	}
	resp := SessionObserveResponse{
		Version:         ScoreVersion,
		Time:            sample.Time,
		STI:             sample.STI,
		TTC:             sample.TTC,
		DistCIPA:        sample.DistCIPA,
		MostThreatening: sample.MostThreatening,
	}
	resp.sanitizeNonFinite()
	resp.Seq = sess.publish(resp)
	// The provenance block rides only the HTTP response: attaching it after
	// publish keeps SSE risk events lean for every subscriber.
	if r.URL.Query().Get("explain") == "1" {
		resp.Provenance = wireProvenance(ctx, prov)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// admitTime admits an observation's tick time under the session's
// monotonic clock: NaN is never admissible, and a time below the last
// admitted one is rejected (a stale-clock client would silently corrupt
// the monitor's time-indexed windows — PeakSTI intervals, SSE resume
// order). Equal times are admitted: clients that omit the optional
// scene time send 0 on every tick, and nothing downstream needs the
// clock to advance — warm-start invalidation is driven by actor
// placement diffs, not timestamps. The floor advances on admission, so
// a tick that later fails to score still consumes its timestamp.
func (sess *session) admitTime(t float64) error {
	if math.IsNaN(t) {
		return errors.New("observation time is NaN")
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.hasTime && t < sess.lastTime {
		return fmt.Errorf("observation time %v is before the session's last tick %v", t, sess.lastTime)
	}
	sess.lastTime, sess.hasTime = t, true
	return nil
}

func (s *Server) handleSessionRisk(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown session"})
		return
	}
	threshold, err := queryThreshold(r)
	if err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	intervals := sess.mon.RiskyIntervals(threshold)
	if intervals == nil {
		intervals = [][2]float64{}
	}
	s.writeJSON(w, http.StatusOK, SessionRiskResponse{
		Version:        ScoreVersion,
		Samples:        sess.mon.Len(),
		PeakSTI:        sess.mon.PeakSTI(),
		Threshold:      threshold,
		RiskyIntervals: intervals,
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.remove(r.PathValue("id")) {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown session"})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// decodeJSONBody decodes an optional JSON body into v; an empty body
// leaves v at its zero value.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		return fmt.Errorf("read body: %w", err)
	}
	if len(body) == 0 {
		return nil
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("decode body: %w", err)
	}
	return nil
}
