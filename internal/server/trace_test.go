package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/sti"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

var hex32 = regexp.MustCompile(`^[0-9a-f]{32}$`)
var hex16 = regexp.MustCompile(`^[0-9a-f]{16}$`)

func postTraced(t *testing.T, url, traceID string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// A caller-supplied trace ID is honoured verbatim.
	callerID := trace.NewID().String()
	resp, body := postTraced(t, ts.URL+"/v1/score", callerID, sceneBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != callerID {
		t.Errorf("X-Trace-Id = %q, want caller's %q", got, callerID)
	}
	if got := resp.Header.Get("X-Request-Id"); !hex16.MatchString(got) {
		t.Errorf("X-Request-Id = %q, want 16 hex digits", got)
	}

	// No (or invalid) caller ID: the server mints a fresh valid one.
	for _, supplied := range []string{"", "not-hex", "00000000000000000000000000000000"} {
		resp, _ := postTraced(t, ts.URL+"/v1/score", supplied, sceneBody(t))
		if got := resp.Header.Get("X-Trace-Id"); !hex32.MatchString(got) || got == supplied {
			t.Errorf("supplied %q: X-Trace-Id = %q, want fresh 32 hex digits", supplied, got)
		}
	}
}

func TestErrorPathsCarryTraceHeaders(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// 400: malformed body.
	resp, _ := postTraced(t, ts.URL+"/v1/score", "", []byte("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if !hex32.MatchString(resp.Header.Get("X-Trace-Id")) || !hex16.MatchString(resp.Header.Get("X-Request-Id")) {
		t.Errorf("400 response missing trace headers: %v", resp.Header)
	}

	// 429: saturated queue. Retry-After must be a positive integer derived
	// from live state, and trace headers must still be present.
	release := gate(t, s)
	defer release()
	for i := 0; i < s.cfg.QueueDepth; i++ {
		if _, err := s.submit(context.Background(), func(*sti.Evaluator) {}); err != nil {
			t.Fatalf("queue filler rejected: %v", err)
		}
	}
	resp, _ = postTraced(t, ts.URL+"/v1/score", "", sceneBody(t))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if !hex32.MatchString(resp.Header.Get("X-Trace-Id")) || !hex16.MatchString(resp.Header.Get("X-Request-Id")) {
		t.Errorf("429 response missing trace headers: %v", resp.Header)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Errorf("Retry-After = %q, want integer in [1, 30]", resp.Header.Get("Retry-After"))
	}
}

func TestExplainProvenance(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SharedExpansion: true})

	callerID := trace.NewID().String()
	resp, body := postTraced(t, ts.URL+"/v1/score?explain=1", callerID, sceneBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out ScoreResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	p := out.Provenance
	if p == nil {
		t.Fatalf("?explain=1 returned no provenance: %s", body)
	}
	if p.TraceID != callerID {
		t.Errorf("provenance trace_id = %q, want %q", p.TraceID, callerID)
	}
	if p.Engine != "shared" {
		t.Errorf("engine = %q, want shared (multi-actor scene, shared expansion on)", p.Engine)
	}
	if p.CacheState == "" {
		t.Error("provenance missing cache_state")
	}
	if len(p.Actors) != 2 {
		t.Fatalf("provenance actors = %+v", p.Actors)
	}
	for i, a := range p.Actors {
		if a.ID != out.Actors[i].ID || a.STI != out.Actors[i].STI {
			t.Errorf("provenance actor %d = %+v diverges from score %+v", i, a, out.Actors[i])
		}
	}
	names := map[string]bool{}
	for _, sp := range p.Spans {
		names[sp.Name] = true
	}
	if !names["server.evaluate"] || !names["reach.shared_expansion"] {
		t.Errorf("provenance spans = %v, want server.evaluate and reach.shared_expansion", names)
	}

	// Without the opt-in the block is absent.
	_, body = postTraced(t, ts.URL+"/v1/score", "", sceneBody(t))
	out = ScoreResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Provenance != nil {
		t.Error("provenance present without ?explain=1")
	}
}

func TestDebugRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	callerID := trace.NewID().String()
	if resp, body := postTraced(t, ts.URL+"/v1/score", callerID, sceneBody(t)); resp.StatusCode != http.StatusOK {
		t.Fatalf("score status = %d, body %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/debug/requests?trace_id=" + callerID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests status = %d", resp.StatusCode)
	}
	var dbg DebugRequestsResponse
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Requests) != 1 {
		t.Fatalf("events for trace = %d, want 1", len(dbg.Requests))
	}
	ev := dbg.Requests[0]
	if ev.TraceID != callerID || ev.Route != "/v1/score" || ev.Status != http.StatusOK {
		t.Errorf("wide event = %+v", ev)
	}
	if ev.Seconds <= 0 {
		t.Error("wide event has no duration")
	}
	if _, ok := ev.Attrs["queue_wait_seconds"]; !ok {
		t.Errorf("wide event attrs missing queue_wait_seconds: %v", ev.Attrs)
	}
	if _, ok := ev.Attrs["engine"]; !ok {
		t.Errorf("wide event attrs missing engine: %v", ev.Attrs)
	}
	spans := map[string]bool{}
	for _, sp := range ev.Spans {
		spans[sp.Name] = true
	}
	if !spans["server.evaluate"] || !spans["reach.empty_tube"] {
		t.Errorf("wide event spans = %v, want server → evaluator → reach chain", spans)
	}

	// Unknown trace: 404. Unfiltered listing: newest-first recent events.
	if resp, _ := http.Get(ts.URL + "/debug/requests?trace_id=" + trace.NewID().String()); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	dbg = DebugRequestsResponse{}
	if err := json.NewDecoder(resp2.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Requests) == 0 || dbg.Requests[0].TraceID != callerID {
		t.Errorf("recent listing = %+v, want newest first", dbg.Requests)
	}
}

func TestDebugSLO(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	postTraced(t, ts.URL+"/v1/score", "", sceneBody(t))
	postTraced(t, ts.URL+"/v1/score", "", []byte("{bad"))

	resp, err := http.Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out DebugSLOResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.SLOs) != 2 {
		t.Fatalf("SLOs = %+v", out.SLOs)
	}
	byName := map[string]telemetry.SLOStatus{}
	for _, st := range out.SLOs {
		byName[st.Name] = st
	}
	avail, ok := byName["availability"]
	if !ok {
		t.Fatal("availability SLO missing")
	}
	if avail.Breached {
		t.Error("availability breached on a healthy server")
	}
	if len(avail.Windows) == 0 || avail.Windows[0].Total < 2 {
		t.Errorf("availability windows = %+v, want >= 2 events", avail.Windows)
	}
	// A 400 is a client error: it must not burn availability budget.
	if avail.Windows[0].Good != avail.Windows[0].Total {
		t.Errorf("availability counted a 4xx as bad: %+v", avail.Windows[0])
	}
	if _, ok := byName["latency"]; !ok {
		t.Fatal("latency SLO missing")
	}
}

func TestWideEventJournal(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	var buf bytes.Buffer
	jnl := telemetry.NewJournal(&buf)
	telemetry.SetJournal(jnl)
	t.Cleanup(func() { telemetry.SetJournal(nil) })

	_, ts := newTestServer(t, Config{Workers: 2})
	callerID := trace.NewID().String()
	if resp, body := postTraced(t, ts.URL+"/v1/score", callerID, sceneBody(t)); resp.StatusCode != http.StatusOK {
		t.Fatalf("score status = %d, body %s", resp.StatusCode, body)
	}

	events, err := telemetry.ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Event == "wide_event" && ev.Fields["trace_id"] == callerID {
			if ev.Fields["route"] != "/v1/score" {
				t.Errorf("journaled wide event route = %v", ev.Fields["route"])
			}
			return
		}
	}
	t.Fatalf("no wide_event with trace %s in journal (%d events)", callerID, len(events))
}
