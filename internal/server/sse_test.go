package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/scene"
	"repro/internal/telemetry"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	ID    uint64
	Event string
	Data  string
}

// streamReader pumps one SSE response body on a single goroutine so
// successive readSSE calls never race on the underlying reader.
type streamReader struct {
	lines chan string
	errs  chan error
}

func newStreamReader(r *bufio.Reader) *streamReader {
	sr := &streamReader{lines: make(chan string, 64), errs: make(chan error, 1)}
	go func() {
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				sr.errs <- err
				return
			}
			sr.lines <- strings.TrimRight(line, "\n")
		}
	}()
	return sr
}

// readSSE parses events off an open stream until n events arrived or the
// deadline passed. Comments (heartbeats, preambles) are skipped.
func readSSE(t *testing.T, sr *streamReader, n int, deadline time.Duration) []sseEvent {
	t.Helper()
	done := time.After(deadline)
	var events []sseEvent
	cur := sseEvent{}
	for len(events) < n {
		select {
		case line := <-sr.lines:
			switch {
			case strings.HasPrefix(line, ":"):
			case strings.HasPrefix(line, "id: "):
				id, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
				if err != nil {
					t.Fatalf("bad id line %q: %v", line, err)
				}
				cur.ID = id
			case strings.HasPrefix(line, "event: "):
				cur.Event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.Data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if cur.Data != "" {
					events = append(events, cur)
					cur = sseEvent{}
				}
			}
		case err := <-sr.errs:
			t.Fatalf("stream read after %d/%d events: %v", len(events), n, err)
		case <-done:
			t.Fatalf("deadline with %d/%d events", len(events), n)
		}
	}
	return events
}

// openStream connects to a session's SSE stream and fails on a non-200.
func openStream(t *testing.T, url, lastEventID string) (*http.Response, *streamReader) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	return resp, newStreamReader(bufio.NewReader(resp.Body))
}

func createSession(t *testing.T, base string, req SessionCreateRequest) string {
	t.Helper()
	raw, _ := json.Marshal(req)
	resp, body := postJSON(t, base+"/v1/sessions", raw)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d body %s", resp.StatusCode, body)
	}
	var created SessionCreateResponse
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	return created.ID
}

func observeAt(t *testing.T, base, id string, at float64) SessionObserveResponse {
	t.Helper()
	sc := testScene()
	sc.Time = at
	raw, _ := scene.Encode(sc)
	resp, body := postJSON(t, base+"/v1/sessions/"+id+"/observe", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe status = %d body %s", resp.StatusCode, body)
	}
	var obs SessionObserveResponse
	if err := json.Unmarshal(body, &obs); err != nil {
		t.Fatal(err)
	}
	return obs
}

// TestSessionStreamLiveEvents: a connected stream receives one risk event
// per observation, with monotonically increasing IDs matching the observe
// responses' seq.
func TestSessionStreamLiveEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := createSession(t, ts.URL, SessionCreateRequest{})
	resp, r := openStream(t, ts.URL+"/v1/sessions/"+id+"/stream", "")
	defer resp.Body.Close()

	var seqs []uint64
	for i := 0; i < 3; i++ {
		obs := observeAt(t, ts.URL, id, float64(i))
		seqs = append(seqs, obs.Seq)
	}
	events := readSSE(t, r, 3, 10*time.Second)
	for i, ev := range events {
		if ev.Event != "risk" {
			t.Errorf("event %d type = %q, want risk", i, ev.Event)
		}
		if ev.ID != seqs[i] {
			t.Errorf("event %d id = %d, want %d", i, ev.ID, seqs[i])
		}
		var obs SessionObserveResponse
		if err := json.Unmarshal([]byte(ev.Data), &obs); err != nil {
			t.Fatalf("event %d data %q: %v", i, ev.Data, err)
		}
		if obs.Seq != ev.ID {
			t.Errorf("event %d data seq = %d, want %d", i, obs.Seq, ev.ID)
		}
		if obs.Time != float64(i) {
			t.Errorf("event %d time = %v, want %v", i, obs.Time, float64(i))
		}
	}
}

// TestSessionStreamResume: a client reconnecting with Last-Event-ID gets
// exactly the events it missed.
func TestSessionStreamResume(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := createSession(t, ts.URL, SessionCreateRequest{})
	for i := 0; i < 4; i++ {
		observeAt(t, ts.URL, id, float64(i))
	}
	resp, r := openStream(t, ts.URL+"/v1/sessions/"+id+"/stream", "2")
	defer resp.Body.Close()
	events := readSSE(t, r, 2, 10*time.Second)
	if events[0].ID != 3 || events[1].ID != 4 {
		t.Fatalf("resumed ids = %d,%d, want 3,4", events[0].ID, events[1].ID)
	}
	// New observations keep flowing after the replay.
	obs := observeAt(t, ts.URL, id, 9)
	more := readSSE(t, r, 1, 10*time.Second)
	if more[0].ID != obs.Seq {
		t.Fatalf("live id after resume = %d, want %d", more[0].ID, obs.Seq)
	}

	// The query-parameter form resumes identically (for header-less clients).
	resp2, r2 := openStream(t, ts.URL+"/v1/sessions/"+id+"/stream?last_event_id=4", "")
	defer resp2.Body.Close()
	ev := readSSE(t, r2, 1, 10*time.Second)
	if ev[0].ID != 5 {
		t.Fatalf("query resume id = %d, want 5", ev[0].ID)
	}
}

// TestSessionStreamHistoryGap: a cursor older than the resume ring
// replays from the oldest retained event instead of failing.
func TestSessionStreamHistoryGap(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SSEHistory: 2})
	id := createSession(t, ts.URL, SessionCreateRequest{})
	for i := 0; i < 5; i++ {
		observeAt(t, ts.URL, id, float64(i))
	}
	resp, r := openStream(t, ts.URL+"/v1/sessions/"+id+"/stream", "1")
	defer resp.Body.Close()
	events := readSSE(t, r, 2, 10*time.Second)
	if events[0].ID != 4 || events[1].ID != 5 {
		t.Fatalf("gap replay ids = %d,%d, want 4,5 (history cap 2)", events[0].ID, events[1].ID)
	}
}

// TestSlowSubscriberKicked: a subscriber whose bounded buffer is full is
// disconnected on the next publish — publishing never blocks on a slow
// stream consumer — while healthy subscribers keep receiving.
func TestSlowSubscriberKicked(t *testing.T) {
	sess := &session{ID: "x", subs: map[*streamSub]struct{}{}, historyCap: 8}
	slow, _, _, ok := sess.subscribe(0, 2)
	if !ok {
		t.Fatal("subscribe on open session failed")
	}
	healthy, _, _, _ := sess.subscribe(0, 16)
	for i := 0; i < 3; i++ {
		sess.publish(SessionObserveResponse{Time: float64(i)})
	}
	select {
	case <-slow.drop:
	default:
		t.Fatal("slow subscriber not kicked after buffer overflow")
	}
	sess.mu.Lock()
	_, stillThere := sess.subs[slow]
	subs := len(sess.subs)
	sess.mu.Unlock()
	if stillThere || subs != 1 {
		t.Fatalf("subscriber table after kick: slow present=%v len=%d", stillThere, subs)
	}
	if got := len(healthy.events); got != 3 {
		t.Fatalf("healthy subscriber buffered %d events, want 3", got)
	}
	// The third event was published while the slow consumer was being
	// kicked; sequence numbering stays monotone.
	ev := <-healthy.events
	if ev.Seq != 1 {
		t.Fatalf("first event seq = %d, want 1", ev.Seq)
	}
}

// TestSessionStreamEndsOnDelete: deleting the session terminates its
// streams promptly.
func TestSessionStreamEndsOnDelete(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := createSession(t, ts.URL, SessionCreateRequest{})
	resp, r := openStream(t, ts.URL+"/v1/sessions/"+id+"/stream", "")
	defer resp.Body.Close()
	del, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-r.lines: // drain the close comment
		case <-r.errs:
			return // stream ended
		case <-deadline:
			t.Fatal("stream did not end after session delete")
		}
	}
}

// TestSessionCreateWithID pins client-assigned session IDs: round-trip,
// conflict on reuse, and charset validation.
func TestSessionCreateWithID(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := createSession(t, ts.URL, SessionCreateRequest{ID: "gw-abc_1.2"})
	if id != "gw-abc_1.2" {
		t.Fatalf("created id = %q, want the requested one", id)
	}
	raw, _ := json.Marshal(SessionCreateRequest{ID: "gw-abc_1.2"})
	resp, _ := postJSON(t, ts.URL+"/v1/sessions", raw)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate id status = %d, want 409", resp.StatusCode)
	}
	for _, bad := range []string{"has space", "slash/y", strings.Repeat("x", 65)} {
		raw, _ := json.Marshal(SessionCreateRequest{ID: bad})
		resp, _ := postJSON(t, ts.URL+"/v1/sessions", raw)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("id %q status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestBatchSizeObservedNotCap pins the satellite bugfix: at low load a
// worker wake-up drains one job, and the server.batch.size histogram must
// record 1, not BatchMax.
func TestBatchSizeObservedNotCap(t *testing.T) {
	telemetry.Enable()
	telBatchSize.Reset()
	_, ts := newTestServer(t, Config{Workers: 1, BatchMax: 16})
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/score", sceneBody(t))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("score status = %d body %s", resp.StatusCode, body)
		}
	}
	// Sequential requests: each wake-up drained exactly one job, so every
	// observation must be 1. Max lives in the histogram stats snapshot.
	snap := snapshotHistogram(t, "server.batch.size")
	if snap.Count == 0 {
		t.Fatal("no batch size observed")
	}
	if snap.Max > 1 {
		t.Fatalf("batch size max = %v after sequential low-load requests, want 1 (BatchMax leak)", snap.Max)
	}
}

// TestScoreTimeoutRace pins the satellite bugfix: a request whose deadline
// expires while the pool worker is mid-evaluation must not race on the
// result variables (run under -race) and must return zero values.
func TestScoreTimeoutRace(t *testing.T) {
	s, err := New(Config{Workers: 1, RequestTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	// A heavy scene: many actors so one evaluation outlives the deadline.
	sc := testScene()
	for i := 3; i < 40; i++ {
		sc.Actors = append(sc.Actors, scene.Actor{
			ID: i, Kind: "vehicle",
			State: scene.State{X: float64(20 + 3*i), Y: 1.75, Speed: 2},
		})
	}
	m, ego, actors, _, _, err := sc.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		// The deadline starts now, so the worker is typically still
		// evaluating when it fires — the racy window of the old code.
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		res, prov, err := s.score(ctx, m, ego, actors, nil)
		cancel()
		if err == nil {
			continue // fast machine scored in time; nothing to check
		}
		if res.Combined != 0 || len(res.PerActor) != 0 || prov.Engine != "" {
			t.Fatalf("timeout returned non-zero result %v / provenance %+v", res, prov)
		}
	}
}

func snapshotHistogram(t *testing.T, name string) telemetry.HistogramStats {
	t.Helper()
	h, ok := telemetry.Default().Snapshot().Histograms[name]
	if !ok {
		t.Fatalf("histogram %s not in snapshot", name)
	}
	return h
}
