// Package server is the online risk-scoring service: a stdlib net/http
// JSON API over the STI evaluator (Eqs. 4–5 of the paper). It turns the
// in-process evaluator into the network-facing runtime monitor of the
// paper's lineage — accept a scene (ego state, actors with predicted
// trajectories, road geometry), return per-actor and combined STI within a
// request deadline.
//
// Architecture (see DESIGN.md "Serving"):
//
//   - a pool of sti.Evaluators, one per scoring worker, each with its own
//     empty-world volume cache and pooled reach-tube scratch memory;
//   - a bounded job queue in front of the pool: requests that find the
//     queue full are rejected immediately with 429 + Retry-After instead
//     of stacking latency (queue-depth backpressure);
//   - per-request deadlines via context: a scene that cannot be scored in
//     time answers 504 and its queued job is skipped, not computed;
//   - opportunistic micro-batching: a worker waking up drains up to
//     BatchMax queued jobs in one go, amortising scheduler wake-ups at
//     high load while adding no latency at low load;
//   - graceful shutdown: the listener closes first, every accepted request
//     completes (zero dropped in-flight work), then the workers exit;
//   - sessions: a rolling internal/monitor.Monitor per client episode so
//     observations streamed over HTTP can be queried for PeakSTI and
//     RiskyIntervals, the §V-A/V-B online assessor as a service.
package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/sti"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
	"repro/internal/vehicle"
)

// Telemetry (collected only once telemetry.Enable has been called; visible
// at /debug/telemetry and /metrics on the server itself).
var (
	telRequests      = telemetry.NewCounter("server.http.requests")
	telScenes        = telemetry.NewCounter("server.scenes.scored")
	telRejectedFull  = telemetry.NewCounter("server.rejected.saturated")
	telRejectedBad   = telemetry.NewCounter("server.rejected.invalid")
	telTimeouts      = telemetry.NewCounter("server.timeouts")
	telRequestSecs   = telemetry.NewHistogram("server.request.seconds", telemetry.LatencyBuckets())
	telScoreSecs     = telemetry.NewHistogram("server.score.seconds", telemetry.LatencyBuckets())
	telQueueDepth    = telemetry.NewGauge("server.queue.depth")
	telBatchSize     = telemetry.NewHistogram("server.batch.size", telemetry.LinearBuckets(1, 1, 16))
	telSessionsGauge = telemetry.NewGauge("server.sessions.active")
)

// Config tunes the scoring service. The zero value serves with the paper's
// reach-tube configuration and conservative capacity defaults.
type Config struct {
	// Reach is the reach-tube configuration every evaluator in the pool
	// uses. The zero value means reach.DefaultConfig().
	Reach reach.Config
	// Workers is the number of scoring workers (and pooled evaluators).
	// 0 resolves to runtime.GOMAXPROCS(0).
	Workers int
	// EvalWorkers bounds each evaluator's internal per-actor counterfactual
	// fan-out. The default 0 resolves to 1 (serial) — the service already
	// runs one evaluator per core, so nested fan-out oversubscribes.
	EvalWorkers int
	// SharedExpansion scores multi-actor requests with the shared-expansion
	// counterfactual engine (one masked reach-tube expansion for |T| and
	// every |T^{/i}|, bitwise-identical results; see sti.Options). It cuts
	// dense-scene scoring cost from O(actors) tubes to ~one and is
	// recommended for serving; the legacy per-actor path remains available
	// as the reference oracle.
	SharedExpansion bool
	// WarmStart gives each session a temporal-coherence warm-start state
	// (sti.WarmState): consecutive /observe ticks of one session reuse the
	// previous tick's reach-expansion verdicts where provably unchanged,
	// with bitwise-identical results (see DESIGN.md "Temporal coherence").
	// Requires SharedExpansion; stateless /v1/score requests are unaffected.
	WarmStart bool
	// QueueDepth bounds the jobs waiting for a worker beyond those being
	// scored; enqueues past it answer 429. 0 resolves to 16×Workers.
	QueueDepth int
	// RequestTimeout bounds queue wait plus scoring per request; exceeding
	// it answers 504. 0 resolves to 2s.
	RequestTimeout time.Duration
	// BatchMax is the most queued jobs one worker drains per wake-up
	// (opportunistic micro-batching). 0 resolves to 8; 1 disables batching.
	BatchMax int
	// MaxSessions caps concurrently open sessions. 0 resolves to 1024.
	MaxSessions int
	// MaxBodyBytes caps request body size. 0 resolves to 1 MiB.
	MaxBodyBytes int64

	// SLOAvailability is the availability objective (good = the request was
	// answered without a 5xx; deliberate 429 backpressure counts good).
	// 0 resolves to 0.999.
	SLOAvailability float64
	// SLOLatency is the latency objective: the fraction of requests that
	// must finish within SLOLatencyTarget. 0 resolves to 0.99.
	SLOLatency float64
	// SLOLatencyTarget is the per-request latency goal the latency SLO
	// judges against. 0 resolves to 250ms.
	SLOLatencyTarget time.Duration
	// FlightRecorderSize is how many recent wide events /debug/requests
	// retains in memory. 0 resolves to 256.
	FlightRecorderSize int

	// SSEHeartbeat is the idle-comment interval on session risk streams
	// (GET /v1/sessions/{id}/stream), keeping proxies from timing out a
	// quiet stream. 0 resolves to 10s.
	SSEHeartbeat time.Duration
	// SSEHistory is how many per-tick risk events each session retains for
	// Last-Event-ID resume. 0 resolves to 256.
	SSEHistory int
	// SSEBuffer is the per-subscriber event buffer; a client that falls
	// this many events behind is disconnected (slow-consumer protection).
	// 0 resolves to 64.
	SSEBuffer int
}

func (c Config) withDefaults() Config {
	if c.Reach == (reach.Config{}) {
		c.Reach = reach.DefaultConfig()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EvalWorkers <= 0 {
		c.EvalWorkers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.SLOAvailability <= 0 || c.SLOAvailability >= 1 {
		c.SLOAvailability = 0.999
	}
	if c.SLOLatency <= 0 || c.SLOLatency >= 1 {
		c.SLOLatency = 0.99
	}
	if c.SLOLatencyTarget <= 0 {
		c.SLOLatencyTarget = 250 * time.Millisecond
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 256
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = 10 * time.Second
	}
	if c.SSEHistory <= 0 {
		c.SSEHistory = 256
	}
	if c.SSEBuffer <= 0 {
		c.SSEBuffer = 64
	}
	return c
}

// job is one unit of scoring work bound for the evaluator pool. run is
// executed by exactly one worker (unless the job's context expired first),
// then done is closed; the submitting handler owns every variable run
// writes, and reads them only after done.
type job struct {
	ctx  context.Context
	run  func(ev *sti.Evaluator)
	done chan struct{}
}

// Server is a running (or startable) scoring service.
type Server struct {
	cfg  Config
	pool []*sti.Evaluator
	jobs chan *job
	quit chan struct{}
	// closing is closed at the start of Shutdown, before the HTTP drain:
	// long-lived SSE streams must end for http.Shutdown to return, so they
	// watch this channel rather than quit (which closes after the drain).
	closing   chan struct{}
	closeOnce sync.Once
	quitOnce  sync.Once
	wg        sync.WaitGroup
	mux       *http.ServeMux
	http      *http.Server
	ln        net.Listener
	addr      atomic.Value // string
	state     atomic.Int32 // 0 idle, 1 serving, 2 shutting down

	sessions sessionTable
	// warmPool recycles per-session warm-start states (arena-sized memo
	// tables) across session lifetimes. States are Reset before reuse so no
	// expansion state ever crosses sessions.
	warmPool sync.Pool

	// Observability: per-request wide events (flight recorder), the two
	// serving SLOs, and the EWMA of scene-scoring time backing Retry-After.
	flight          *trace.FlightRecorder
	sloAvailability *telemetry.SLOTracker
	sloLatency      *telemetry.SLOTracker
	avgScoreNS      atomic.Int64
	activeStreams   atomic.Int64
}

// New builds the service: evaluator pool, queue, workers, routes. The
// workers start immediately so Handler is usable without Start (tests,
// in-process embedding).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Reach.Validate(); err != nil {
		return nil, fmt.Errorf("server: reach config: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		pool:    make([]*sti.Evaluator, cfg.Workers),
		jobs:    make(chan *job, cfg.QueueDepth),
		quit:    make(chan struct{}),
		closing: make(chan struct{}),
	}
	for i := range s.pool {
		ev, err := sti.NewEvaluatorOptions(cfg.Reach, sti.Options{
			Workers:         cfg.EvalWorkers,
			SharedExpansion: cfg.SharedExpansion,
			WarmStart:       cfg.WarmStart,
		})
		if err != nil {
			return nil, fmt.Errorf("server: evaluator %d: %w", i, err)
		}
		s.pool[i] = ev
	}
	s.warmPool.New = func() any { return sti.NewWarmState() }
	s.sessions.init(cfg.MaxSessions)
	s.flight = trace.NewFlightRecorder(cfg.FlightRecorderSize)
	s.sloAvailability = telemetry.MustNewSLOTracker(telemetry.SLOConfig{
		Name: "availability", Objective: cfg.SLOAvailability,
	})
	s.sloLatency = telemetry.MustNewSLOTracker(telemetry.SLOConfig{
		Name: "latency", Objective: cfg.SLOLatency,
	})
	// The burn-rate gauges ride the same default registry /metrics serves;
	// collectors refresh them at scrape time so they decay without traffic.
	s.sloAvailability.Register(telemetry.Default())
	s.sloLatency.Register(telemetry.Default())
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(s.pool[i])
	}
	return s, nil
}

// Handler returns the service's HTTP handler (scoring API, session API,
// /healthz, /metrics, /debug/telemetry).
func (s *Server) Handler() http.Handler { return s.mux }

// Addr returns the bound listen address after Start (useful with ":0").
func (s *Server) Addr() string {
	if v := s.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Start listens on addr and serves in the background until Shutdown.
func (s *Server) Start(addr string) error {
	if !s.state.CompareAndSwap(0, 1) {
		return fmt.Errorf("server: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.addr.Store(ln.Addr().String())
	s.http = &http.Server{Handler: s.mux}
	go s.http.Serve(ln)
	return nil
}

// Shutdown drains the service: the listener closes immediately (new
// connections refused), every in-flight request completes and is answered,
// then the scoring workers exit. ctx bounds the drain; on expiry the
// remaining connections are closed forcefully.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	// End the long-lived session streams first: their handlers hold
	// connections open indefinitely and would otherwise stall the drain.
	s.closeOnce.Do(func() { close(s.closing) })
	s.sessions.closeAll()
	if s.state.Swap(2) == 1 && s.http != nil {
		// Shutdown returns once every active request's handler has returned
		// — and handlers return only after their job was answered, so no
		// accepted work is dropped. The workers must therefore still be
		// draining the queue here; they stop below.
		err = s.http.Shutdown(ctx)
		if err != nil {
			s.http.Close()
		}
	}
	// quitOnce makes Shutdown idempotent: a supervisor (e.g. a gateway
	// test harness) may shut a backend down explicitly and again via
	// deferred cleanup.
	s.quitOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
	return err
}

// worker scores jobs until quit. Each wake-up drains up to BatchMax queued
// jobs (micro-batching); after quit it finishes whatever is still queued so
// graceful shutdown never strands an accepted request.
func (s *Server) worker(ev *sti.Evaluator) {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.jobs:
			drained := 1
			s.runJob(j, ev)
			// Opportunistic drain: score queued siblings without another
			// scheduler round-trip. The histogram records how many jobs this
			// wake-up actually drained, which is capped by — but on an empty
			// queue smaller than — BatchMax.
		drain:
			for drained < s.cfg.BatchMax {
				select {
				case j := <-s.jobs:
					s.runJob(j, ev)
					drained++
				default:
					break drain
				}
			}
			telBatchSize.Observe(float64(drained))
			telQueueDepth.Set(float64(len(s.jobs)))
		case <-s.quit:
			// Drain the residue, then exit.
			for {
				select {
				case j := <-s.jobs:
					s.runJob(j, ev)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) runJob(j *job, ev *sti.Evaluator) {
	defer close(j.done)
	if j.ctx.Err() != nil {
		return // requester gave up (timeout/disconnect); don't burn the pool
	}
	j.run(ev)
}

// takeWarm hands out a warm-start state for a new session, or nil when the
// configuration doesn't warm (WarmStart requires SharedExpansion).
func (s *Server) takeWarm() *sti.WarmState {
	if !s.cfg.WarmStart || !s.cfg.SharedExpansion {
		return nil
	}
	return s.warmPool.Get().(*sti.WarmState)
}

// putWarm returns a session's warm-start state to the pool, dropping its
// retained expansion state first. A state still claimed by an in-flight
// evaluation (the session was deleted with an observe queued) is abandoned
// to the garbage collector instead of pooled — recycling it would hand two
// sessions the same live state.
func (s *Server) putWarm(ws *sti.WarmState) {
	if !ws.TryReset() {
		return
	}
	s.warmPool.Put(ws)
}

// errSaturated reports queue-full backpressure to the handlers.
var errSaturated = fmt.Errorf("server: scoring queue full")

// submit enqueues work for the evaluator pool without blocking: a full
// queue fails fast with errSaturated (the 429 path). On success the caller
// must wait for the returned job's done channel (or its context) before
// reading anything run wrote.
func (s *Server) submit(ctx context.Context, run func(ev *sti.Evaluator)) (*job, error) {
	j := &job{ctx: ctx, run: run, done: make(chan struct{})}
	select {
	case s.jobs <- j:
		telQueueDepth.Set(float64(len(s.jobs)))
		return j, nil
	default:
		return nil, errSaturated
	}
}

// score runs one scene evaluation on the pool and waits for it under ctx.
// The recorder carried by ctx (if any) receives the queue wait, the
// evaluation spans and the risk provenance, so the request's wide event
// links server → evaluator → reach timings.
func (s *Server) score(ctx context.Context, m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory) (sti.Result, sti.Provenance, error) {
	var res sti.Result
	var prov sti.Provenance
	rec := trace.FromContext(ctx)
	enq := time.Now()
	j, err := s.submit(ctx, func(ev *sti.Evaluator) {
		rec.Annotate("queue_wait_seconds", time.Since(enq).Seconds())
		t := telScoreSecs.Start()
		start := time.Now()
		tt := trajs
		if tt == nil {
			sp := rec.StartSpan("server.predict")
			tt = actor.PredictAll(actors, s.cfg.Reach.NumSlices(), s.cfg.Reach.SliceDt)
			sp.End()
		}
		sp := rec.StartSpan("server.evaluate")
		res, prov = ev.EvaluateTraced(ctx, m, ego, actors, tt)
		sp.End()
		t.Stop()
		s.noteScore(time.Since(start))
		telScenes.Inc()
	})
	if err != nil {
		return res, prov, err
	}
	select {
	case <-j.done:
		rec.Annotate("engine", prov.Engine)
		rec.Annotate("cache_state", prov.CacheState)
		rec.Annotate("combined_sti", res.Combined)
		if len(res.PerActor) > 0 {
			rec.Annotate("per_actor_sti", append([]float64(nil), res.PerActor...))
		}
		return res, prov, nil
	case <-ctx.Done():
		// The pool worker may still be executing run and writing res/prov;
		// returning those variables here would race with it. Callers only
		// consume the values when err == nil, so return zero values instead.
		telTimeouts.Inc()
		return sti.Result{}, sti.Provenance{}, ctx.Err()
	}
}

// completeTrajs fills the gaps of a partial explicit-trajectory set with
// CVTR predictions so every actor has a trajectory aligned to the reach
// configuration. hasTrajs=false returns nil, selecting the evaluator's
// prediction path wholesale.
func completeTrajs(cfg reach.Config, actors []*actor.Actor, trajs []actor.Trajectory, hasTrajs bool) []actor.Trajectory {
	if !hasTrajs {
		return nil
	}
	steps := cfg.NumSlices()
	for i, tr := range trajs {
		if tr.Len() == 0 {
			trajs[i] = actor.PredictCVTR(actors[i], steps, cfg.SliceDt)
		}
	}
	return trajs
}
