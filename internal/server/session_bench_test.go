package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/scene"
)

// benchmarkSessionObserve measures the full HTTP session-observe path —
// decode, monotonic-clock admission, evaluator queue, warm or cold shared
// expansion, SSE publish, encode — on the canonical stop-and-go replay.
// Sessions are recycled through the warm pool exactly the way a replaying
// client drives production. Compare:
//
//	GOMAXPROCS=1 go test -bench SessionObserve -run - ./internal/server
func benchmarkSessionObserve(b *testing.B, warm bool) {
	s, err := New(Config{Workers: 1, SharedExpansion: true, WarmStart: warm})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	m, trace := scenario.StopAndGoSession(12, 60)
	bodies := make([][]byte, len(trace))
	for t, tick := range trace {
		sc, err := scene.FromParts(m, tick.Ego, tick.Actors, float64(t)*0.1)
		if err != nil {
			b.Fatal(err)
		}
		if bodies[t], err = scene.Encode(sc); err != nil {
			b.Fatal(err)
		}
	}
	client := ts.Client()
	newSession := func() string {
		resp, err := client.Post(ts.URL+"/v1/sessions", "application/json", nil)
		if err != nil {
			b.Fatal(err)
		}
		var out SessionCreateResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if out.ID == "" {
			b.Fatalf("session create: no id (status %d)", resp.StatusCode)
		}
		return out.ID
	}
	deleteSession := func(id string) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	sid := newSession()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(bodies) == 0 && i > 0 {
			b.StopTimer()
			deleteSession(sid)
			sid = newSession()
			b.StartTimer()
		}
		resp, err := client.Post(ts.URL+"/v1/sessions/"+sid+"/observe", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("observe %d: status %d", i, resp.StatusCode)
		}
	}
}

func BenchmarkSessionObserveCold(b *testing.B) { benchmarkSessionObserve(b, false) }
func BenchmarkSessionObserveWarm(b *testing.B) { benchmarkSessionObserve(b, true) }
