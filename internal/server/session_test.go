package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/scene"
)

func observeBody(t *testing.T, at float64) []byte {
	t.Helper()
	sc := testScene()
	sc.Time = at
	raw, err := scene.Encode(sc)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// Session observe times must be non-decreasing: a stale-clock client
// replaying an old tick gets a 400 instead of silently corrupting the
// monitor's time-indexed windows. Equal times pass — clients that omit
// the optional scene time send 0 every tick. The floor advances at
// admission, so a rejected tick does not reset it.
func TestSessionObserveRejectsNonMonotonicTime(t *testing.T) {
	cases := []struct {
		name  string
		times []float64
		want  []int
	}{
		{"increasing", []float64{0, 0.1, 0.2}, []int{200, 200, 200}},
		{"repeat-ok", []float64{0, 0, 0}, []int{200, 200, 200}},
		{"backwards", []float64{1.0, 0.5}, []int{200, 400}},
		{"recovers-after-reject", []float64{1.0, 0.5, 1.5}, []int{200, 400, 200}},
		{"negative-start-ok", []float64{-2, -1}, []int{200, 200}},
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			id := createSession(t, ts.URL, SessionCreateRequest{})
			for i, at := range tc.times {
				resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/observe", observeBody(t, at))
				if resp.StatusCode != tc.want[i] {
					t.Fatalf("observe %d (t=%v): status = %d, want %d, body %s", i, at, resp.StatusCode, tc.want[i], body)
				}
			}
		})
	}
}

// A warm-started server session must answer every observe with exactly the
// risk numbers a cold server answers for the same tick stream, and its
// ?explain=1 provenance must report the warm outcome.
func TestSessionObserveWarmMatchesCold(t *testing.T) {
	_, coldTS := newTestServer(t, Config{Workers: 1, SharedExpansion: true})
	_, warmTS := newTestServer(t, Config{Workers: 1, SharedExpansion: true, WarmStart: true})
	coldID := createSession(t, coldTS.URL, SessionCreateRequest{})
	warmID := createSession(t, warmTS.URL, SessionCreateRequest{})

	warmHits := 0
	for i := 0; i < 5; i++ {
		body := observeBody(t, float64(i)*0.1)
		_, coldRaw := postJSON(t, coldTS.URL+"/v1/sessions/"+coldID+"/observe", body)
		resp, warmRaw := postJSON(t, warmTS.URL+"/v1/sessions/"+warmID+"/observe?explain=1", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm observe %d: status %d, body %s", i, resp.StatusCode, warmRaw)
		}
		var cold, warm SessionObserveResponse
		if err := json.Unmarshal(coldRaw, &cold); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(warmRaw, &warm); err != nil {
			t.Fatal(err)
		}
		if warm.STI != cold.STI || warm.TTC != cold.TTC || warm.DistCIPA != cold.DistCIPA ||
			warm.MostThreatening != cold.MostThreatening {
			t.Errorf("tick %d: warm response %+v, cold %+v", i, warm, cold)
		}
		if warm.Provenance == nil {
			t.Fatalf("tick %d: ?explain=1 returned no provenance", i)
		}
		if warm.Provenance.WarmHit {
			warmHits++
		}
		if cold.Provenance != nil {
			t.Errorf("tick %d: provenance leaked without ?explain=1", i)
		}
	}
	// The test scene holds the ego bitwise-static across ticks, so every
	// tick after the first must warm-hit.
	if warmHits != 4 {
		t.Errorf("warm hits = %d across 5 ticks, want 4", warmHits)
	}
}

// Deleting a warm session and creating a new one must not leak expansion
// state across sessions: the recycled WarmState scores the new session's
// first tick cold.
func TestSessionWarmStateRecycledCold(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SharedExpansion: true, WarmStart: true})
	id := createSession(t, ts.URL, SessionCreateRequest{})
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/observe", observeBody(t, float64(i)*0.1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Same scene stream on a fresh session: tick 0 must be a cold miss even
	// though the pooled state just scored the identical scene.
	id2 := createSession(t, ts.URL, SessionCreateRequest{})
	r2, raw := postJSON(t, ts.URL+"/v1/sessions/"+id2+"/observe?explain=1", observeBody(t, 0))
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("fresh observe: status %d, body %s", r2.StatusCode, raw)
	}
	var obs SessionObserveResponse
	if err := json.Unmarshal(raw, &obs); err != nil {
		t.Fatal(err)
	}
	if obs.Provenance == nil {
		t.Fatal("no provenance")
	}
	if obs.Provenance.WarmHit {
		t.Error("recycled WarmState warm-hit a new session's first tick")
	}
}

// A scene with no in-path actor has +Inf TTC and Dist. CIPA, which JSON
// cannot carry — and by the time the encoder notices, the 200 header is
// already on the wire, so the response body would be silently empty. The
// observe path must apply the stream's documented -1 "no in-path actor"
// encoding before writing.
func TestSessionObserveNonFiniteMetricsWire(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	id := createSession(t, ts.URL, SessionCreateRequest{})
	sc := testScene()
	sc.Actors = []scene.Actor{
		// Behind the ego and falling back: never in path, TTC and
		// Dist. CIPA both +Inf.
		{ID: 1, Kind: "vehicle", State: scene.State{X: -60, Y: 1.75, Speed: 1}},
	}
	raw, err := scene.Encode(sc)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/sessions/"+id+"/observe", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: status %d, body %s", resp.StatusCode, body)
	}
	if len(body) == 0 {
		t.Fatal("observe: empty response body (non-finite metric broke the encoder)")
	}
	var obs SessionObserveResponse
	if err := json.Unmarshal(body, &obs); err != nil {
		t.Fatalf("observe: body does not parse: %v (%s)", err, body)
	}
	if obs.TTC != -1 {
		t.Errorf("ttc = %v, want -1", obs.TTC)
	}
	if obs.DistCIPA != -1 {
		t.Errorf("dist_cipa = %v, want -1", obs.DistCIPA)
	}
}
