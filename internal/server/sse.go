package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Server-sent risk streaming: GET /v1/sessions/{id}/stream pushes one SSE
// event per recorded observation instead of making clients poll
// /v1/sessions/{id}/risk. Wire contract:
//
//   - every event is `event: risk` with `id: <seq>` and a
//     SessionObserveResponse JSON `data:` payload (Seq matches the id
//     line; non-finite TTC/DistCIPA are encoded as -1, meaning "no
//     in-path actor", since JSON has no Inf);
//   - a client reconnecting with `Last-Event-ID: <seq>` (or
//     ?last_event_id=<seq>) is replayed every retained event after seq —
//     the per-session history ring holds Config.SSEHistory events, and a
//     cursor that has fallen off the ring resumes from the oldest
//     retained event after a `: resume gap` comment;
//   - an idle stream carries `: hb` comment heartbeats every
//     Config.SSEHeartbeat so intermediaries don't time it out;
//   - each subscriber has a bounded event buffer (Config.SSEBuffer); a
//     consumer that falls that far behind is disconnected (the scoring
//     path never blocks on a slow stream reader);
//   - the stream ends when the session is deleted or the server drains.
var (
	telStreamsGauge  = telemetry.NewGauge("server.sse.streams")
	telStreamEvents  = telemetry.NewCounter("server.sse.events")
	telStreamDropped = telemetry.NewCounter("server.sse.slow_disconnects")
)

// riskEvent is one published observation: the SSE id (seq) and the
// pre-marshalled data payload.
type riskEvent struct {
	Seq  uint64
	Data []byte
}

// streamSub is one connected stream client. events is the bounded buffer;
// drop is closed when the subscriber is kicked (slow consumer) or the
// session closes, after which no more sends happen.
type streamSub struct {
	events chan riskEvent
	drop   chan struct{}
}

// sanitizeNonFinite rewrites the metrics JSON cannot carry: TTC and
// Dist. CIPA are +Inf when no in-path actor exists, and encoding/json
// rejects non-finite numbers — after the 200 header is out, that failure
// would truncate the response to an empty body. -1 is the documented "no
// in-path actor" wire encoding on both the observe response and the SSE
// stream.
func (r *SessionObserveResponse) sanitizeNonFinite() {
	if math.IsInf(r.TTC, 0) || math.IsNaN(r.TTC) {
		r.TTC = -1
	}
	if math.IsInf(r.DistCIPA, 0) || math.IsNaN(r.DistCIPA) {
		r.DistCIPA = -1
	}
}

// publish assigns the next sequence number, stores the event in the resume
// ring, and fans it out to subscribers. Subscribers whose buffer is full
// are disconnected rather than waited on. Returns the assigned seq.
func (sess *session) publish(resp SessionObserveResponse) uint64 {
	resp.sanitizeNonFinite()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return sess.nextSeq
	}
	sess.nextSeq++
	resp.Seq = sess.nextSeq
	data, err := json.Marshal(resp)
	if err != nil {
		return resp.Seq // unreachable with sanitised floats; keep seq monotone
	}
	ev := riskEvent{Seq: resp.Seq, Data: data}
	sess.history = append(sess.history, ev)
	if n := len(sess.history); n > sess.historyCap {
		// Slide rather than reslice so the backing array doesn't grow
		// without bound over a long session.
		copy(sess.history, sess.history[n-sess.historyCap:])
		sess.history = sess.history[:sess.historyCap]
	}
	for sub := range sess.subs {
		select {
		case sub.events <- ev:
		default:
			telStreamDropped.Inc()
			delete(sess.subs, sub)
			close(sub.drop)
		}
	}
	return resp.Seq
}

// subscribe registers a stream client and returns the events to replay:
// every retained event with Seq > after. gapped reports that `after` has
// already fallen off the resume ring.
func (sess *session) subscribe(after uint64, buffer int) (sub *streamSub, replay []riskEvent, gapped bool, ok bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return nil, nil, false, false
	}
	sub = &streamSub{events: make(chan riskEvent, buffer), drop: make(chan struct{})}
	sess.subs[sub] = struct{}{}
	if len(sess.history) > 0 && after > 0 && sess.history[0].Seq > after+1 {
		gapped = true
	}
	for _, ev := range sess.history {
		if ev.Seq > after {
			replay = append(replay, ev)
		}
	}
	return sub, replay, gapped, true
}

func (sess *session) unsubscribe(sub *streamSub) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if _, live := sess.subs[sub]; live {
		delete(sess.subs, sub)
		close(sub.drop)
	}
}

// close ends the session's streams — marks it closed and disconnects every
// subscriber — and returns the session's warm-start state to the server
// pool (closed guards the release: close is called at most once effectively,
// so the state is returned exactly once).
func (sess *session) close() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return
	}
	sess.closed = true
	for sub := range sess.subs {
		delete(sess.subs, sub)
		close(sub.drop)
	}
	if sess.warm != nil && sess.warmPut != nil {
		sess.warmPut(sess.warm)
		sess.warm = nil
	}
}

// handleSessionStream serves the SSE risk stream for one session.
func (s *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown session"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported by connection"})
		return
	}
	after, err := lastEventID(r)
	if err != nil {
		telRejectedBad.Inc()
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	sub, replay, gapped, live := sess.subscribe(after, s.cfg.SSEBuffer)
	if !live {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "session closed"})
		return
	}
	defer sess.unsubscribe(sub)
	telStreamsGauge.Set(float64(s.activeStreams.Add(1)))
	defer func() { telStreamsGauge.Set(float64(s.activeStreams.Add(-1))) }()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Del("Content-Length")
	w.WriteHeader(http.StatusOK)
	if gapped {
		fmt.Fprintf(w, ": resume gap — events before seq %d evicted\n\n", replayStart(replay))
	} else {
		fmt.Fprint(w, ": stream open\n\n")
	}
	sent := 0
	for _, ev := range replay {
		if writeSSE(w, ev) != nil {
			return
		}
		sent++
	}
	fl.Flush()

	rec := trace.FromContext(r.Context())
	defer func() { rec.Annotate("sse_events_sent", sent) }()
	hb := time.NewTicker(s.cfg.SSEHeartbeat)
	defer hb.Stop()
	for {
		select {
		case ev := <-sub.events:
			if writeSSE(w, ev) != nil {
				return
			}
			sent++
			// Drain whatever else is already buffered before flushing once.
			for more := true; more; {
				select {
				case ev := <-sub.events:
					if writeSSE(w, ev) != nil {
						return
					}
					sent++
				default:
					more = false
				}
			}
			fl.Flush()
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-sub.drop:
			// Slow consumer kick or session close; say why, then hang up.
			fmt.Fprint(w, ": stream closed\n\n")
			fl.Flush()
			rec.Annotate("sse_closed", "dropped")
			return
		case <-s.closing:
			fmt.Fprint(w, ": server draining\n\n")
			fl.Flush()
			rec.Annotate("sse_closed", "drain")
			return
		case <-r.Context().Done():
			rec.Annotate("sse_closed", "client")
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev riskEvent) error {
	telStreamEvents.Inc()
	_, err := fmt.Fprintf(w, "id: %d\nevent: risk\ndata: %s\n\n", ev.Seq, ev.Data)
	return err
}

func replayStart(replay []riskEvent) uint64 {
	if len(replay) == 0 {
		return 0
	}
	return replay[0].Seq
}

// lastEventID extracts the resume cursor: the standard Last-Event-ID
// header (set by EventSource on reconnect), or ?last_event_id= for
// clients that cannot set headers. 0 means "from now".
func lastEventID(r *http.Request) (uint64, error) {
	raw := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("last_event_id"); q != "" {
		raw = q
	}
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("last event id %q is not a sequence number", raw)
	}
	return v, nil
}
