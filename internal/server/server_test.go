package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scene"
	"repro/internal/sti"
	"repro/internal/telemetry"
)

func testScene() scene.Scene {
	return scene.Scene{
		Version: scene.Version,
		Ego:     scene.State{X: 0, Y: 1.75, Speed: 10},
		Road: scene.Road{Kind: "straight", Straight: &scene.StraightRoad{
			Lanes: 2, LaneWidth: 3.5, XMin: -100, XMax: 400,
		}},
		Actors: []scene.Actor{
			{ID: 1, Kind: "vehicle", State: scene.State{X: 14, Y: 1.75, Speed: 3}},
			{ID: 2, Kind: "vehicle", State: scene.State{X: -40, Y: 5.25, Speed: 8}},
		},
	}
}

func sceneBody(t *testing.T) []byte {
	t.Helper()
	raw, err := scene.Encode(testScene())
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// gate occupies every pool worker with a job that blocks until release,
// making saturation and timeout behaviour deterministic.
func gate(t *testing.T, s *Server) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		j, err := s.submit(context.Background(), func(*sti.Evaluator) {
			wg.Done()
			<-ch
		})
		if err != nil {
			t.Fatalf("gate job %d rejected: %v", i, err)
		}
		_ = j
	}
	wg.Wait() // every worker is now parked inside a gate job
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func TestScoreHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/score", sceneBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out ScoreResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Version != ScoreVersion {
		t.Errorf("version = %q", out.Version)
	}
	if len(out.Actors) != 2 {
		t.Fatalf("actors = %+v", out.Actors)
	}
	if out.EmptyVolume <= 0 || out.BaseVolume <= 0 {
		t.Errorf("degenerate volumes: %+v", out)
	}
	if out.Combined < 0 || out.Combined > 1 {
		t.Errorf("combined STI out of range: %v", out.Combined)
	}
	// The slow lead one stopping-distance ahead must be the threat.
	if out.MostThreatening != 1 {
		t.Errorf("most threatening = %d, want 1", out.MostThreatening)
	}
}

// A server configured with the shared-expansion engine must answer every
// scoring request with exactly the bytes the legacy configuration answers:
// the engine is a perf choice, never an API-visible one.
func TestScoreSharedExpansionIdentical(t *testing.T) {
	_, legacyTS := newTestServer(t, Config{Workers: 2})
	_, sharedTS := newTestServer(t, Config{Workers: 2, SharedExpansion: true})

	body := sceneBody(t)
	// A denser variant so the shared path (>1 actor with real blockers)
	// actually engages.
	densScene := testScene()
	densScene.Actors = append(densScene.Actors,
		scene.Actor{ID: 3, Kind: "vehicle", State: scene.State{X: 8, Y: 5.25, Speed: 6}},
		scene.Actor{ID: 4, Kind: "vehicle", State: scene.State{X: 25, Y: 1.75, Speed: 5}},
	)
	denseBody, err := scene.Encode(densScene)
	if err != nil {
		t.Fatal(err)
	}

	for name, b := range map[string][]byte{"base": body, "dense": denseBody} {
		respL, bodyL := postJSON(t, legacyTS.URL+"/v1/score", b)
		respS, bodyS := postJSON(t, sharedTS.URL+"/v1/score", b)
		if respL.StatusCode != http.StatusOK || respS.StatusCode != http.StatusOK {
			t.Fatalf("%s: status legacy=%d shared=%d", name, respL.StatusCode, respS.StatusCode)
		}
		if !bytes.Equal(bodyL, bodyS) {
			t.Errorf("%s: responses diverge:\nlegacy: %s\nshared: %s", name, bodyL, bodyS)
		}
	}
}

func TestScoreMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct{ name, body string }{
		{"truncated", `{"version":`},
		{"missing version", `{"ego":{}}`},
		{"future version", `{"version":"iprism.scene/v99","road":{"kind":"straight"}}`},
		{"bad road", `{"version":"iprism.scene/v1","road":{"kind":"spiral"}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/score", []byte(tc.body))
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400 (body %s)", resp.StatusCode, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("400 body not a JSON error: %s", body)
			}
		})
	}
}

func TestScoreSaturationBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RequestTimeout: 5 * time.Second})
	release := gate(t, s)
	defer release()
	// The single queue slot is free; one in-flight request takes it...
	filled, err := s.submit(context.Background(), func(*sti.Evaluator) {})
	if err != nil {
		t.Fatalf("queue filler rejected: %v", err)
	}
	_ = filled
	// ...so the next scene must bounce with 429 + Retry-After.
	resp, body := postJSON(t, ts.URL+"/v1/score", sceneBody(t))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestScoreTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, RequestTimeout: 30 * time.Millisecond})
	release := gate(t, s)
	defer release()
	// Queued behind the gate, the request exceeds its deadline: 504.
	resp, body := postJSON(t, ts.URL+"/v1/score", sceneBody(t))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
}

func TestBatchScoring(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := BatchRequest{Scenes: []scene.Scene{testScene(), testScene(), testScene()}}
	raw, _ := json.Marshal(req)
	resp, body := postJSON(t, ts.URL+"/v1/score/batch", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d", len(out.Results))
	}
	for i, r := range out.Results {
		if r.Error != "" {
			t.Errorf("result %d errored: %s", i, r.Error)
		}
		if r.Combined != out.Results[0].Combined {
			t.Errorf("identical scenes scored differently: %v vs %v", r.Combined, out.Results[0].Combined)
		}
	}
	// Empty batches are client errors.
	resp, _ = postJSON(t, ts.URL+"/v1/score/batch", []byte(`{"scenes":[]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status = %d, want 400", resp.StatusCode)
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sessions", nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d, body %s", resp.StatusCode, body)
	}
	var created SessionCreateResponse
	if err := json.Unmarshal(body, &created); err != nil || created.ID == "" {
		t.Fatalf("create body %s: %v", body, err)
	}

	// Stream three observations at increasing times; the middle one is the
	// close-lead scene, so STI should be recorded and intervals non-trivial.
	for i, tt := range []float64{0, 0.5, 1.0} {
		sc := testScene()
		sc.Time = tt
		raw, _ := scene.Encode(sc)
		resp, body = postJSON(t, ts.URL+"/v1/sessions/"+created.ID+"/observe", raw)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe %d status = %d, body %s", i, resp.StatusCode, body)
		}
		var obs SessionObserveResponse
		if err := json.Unmarshal(body, &obs); err != nil {
			t.Fatal(err)
		}
		if obs.Time != tt {
			t.Errorf("observe %d time = %v, want %v", i, obs.Time, tt)
		}
	}

	r, err := http.Get(ts.URL + "/v1/sessions/" + created.ID + "/risk?threshold=0.05")
	if err != nil {
		t.Fatal(err)
	}
	var risk SessionRiskResponse
	if err := json.NewDecoder(r.Body).Decode(&risk); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if risk.Samples != 3 {
		t.Errorf("samples = %d, want 3", risk.Samples)
	}
	if risk.PeakSTI <= 0 {
		t.Errorf("peak STI = %v, want > 0 for the close-lead scene", risk.PeakSTI)
	}
	if risk.Threshold != 0.05 {
		t.Errorf("threshold = %v", risk.Threshold)
	}
	if len(risk.RiskyIntervals) == 0 {
		t.Error("no risky intervals above 0.05")
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNoContent {
		t.Errorf("delete status = %d, want 204", resp2.StatusCode)
	}
	// The session is gone: further observes are 404.
	resp, _ = postJSON(t, ts.URL+"/v1/sessions/"+created.ID+"/observe", sceneBody(t))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("observe after delete status = %d, want 404", resp.StatusCode)
	}
}

func TestSessionLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSessions: 2})
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/sessions", nil)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d status = %d, body %s", i, resp.StatusCode, body)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/sessions", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-limit create status = %d, want 429", resp.StatusCode)
	}
}

// TestGracefulShutdownCompletesInFlight pins the acceptance criterion:
// a request already accepted (queued behind a busy pool) when Shutdown
// begins must still be answered 200, not dropped.
func TestGracefulShutdownCompletesInFlight(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 4, RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	release := gate(t, s)

	type result struct {
		status int
		body   []byte
		err    error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+s.Addr()+"/v1/score", "application/json", bytes.NewReader(sceneBody(t)))
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		got <- result{status: resp.StatusCode, body: buf.Bytes()}
	}()

	// Wait until the request's job is queued behind the gate.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.jobs) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Give Shutdown a moment to close the listener, then release the pool.
	time.Sleep(20 * time.Millisecond)
	release()

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request dropped: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request status = %d, body %s", r.status, r.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown error: %v", err)
	}
	// The listener is closed: new connections must fail.
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

// TestConcurrentScoring hammers the service with parallel requests under
// the race detector: every response must be 200 or a deliberate 429.
func TestConcurrentScoring(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, RequestTimeout: 10 * time.Second})
	body := sceneBody(t)
	const clients, perClient = 8, 5
	var wg sync.WaitGroup
	var ok, rejected, other int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					ok++
				case http.StatusTooManyRequests:
					rejected++
				default:
					other++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Errorf("unexpected statuses: ok=%d rejected=%d other=%d", ok, rejected, other)
	}
	if ok == 0 {
		t.Error("no request succeeded")
	}
	// The scrape endpoints must reflect the traffic just served.
	for _, path := range []string{"/metrics", "/debug/telemetry"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		r.Body.Close()
		want := "server.request.seconds"
		if path == "/metrics" {
			want = "iprism_server_request_seconds"
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("%s missing %s:\n%.400s", path, want, buf.String())
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", r.StatusCode)
	}
}

// TestRetryAfterSeconds pins the backoff estimate for known queue depths:
// ceiling division of the backlog over the workers (an empty queue is zero
// batches, an exactly-divisible queue does not round up an extra batch),
// priced at the EWMA per-scene time, clamped to [1, 30] seconds.
func TestRetryAfterSeconds(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 4, QueueDepth: 16})
	release := gate(t, s) // park every worker so pushed jobs stay queued
	defer release()

	fill := func(n int) {
		t.Helper()
		for len(s.jobs) < n {
			s.jobs <- &job{ctx: context.Background(), run: func(*sti.Evaluator) {}, done: make(chan struct{})}
		}
	}
	cases := []struct {
		name   string
		queued int
		avg    time.Duration
		want   int
	}{
		{"empty queue is zero batches", 0, 2 * time.Second, 1},
		{"cold server assumes 50ms", 4, 0, 1},
		{"partial batch rounds up", 5, time.Second, 2},
		{"even division is exact", 8, time.Second, 2},
		{"clamped to 30s", 8, 20 * time.Second, 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fill(tc.queued)
			s.avgScoreNS.Store(tc.avg.Nanoseconds())
			if got := s.retryAfterSeconds(); got != tc.want {
				t.Errorf("queued=%d avg=%v: Retry-After %d, want %d", tc.queued, tc.avg, got, tc.want)
			}
		})
	}
}
