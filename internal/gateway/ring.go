package gateway

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Consistent-hash ring for session-affine routing. Every backend
// contributes vnodes pseudo-random points on a 64-bit ring; a session key
// is owned by the backend whose point follows the key's hash. Ejecting a
// backend does not rebuild the ring — lookups skip unhealthy owners to the
// next distinct backend — so only the keys owned by the lost backend move
// (to their successors), and they move straight back on re-admission.
// The ring itself is rebuilt only on membership change (a different
// backend set), which with vnodes points per backend relocates only
// ~1/N of the key space per added or removed backend.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // distinct backends
}

type ringPoint struct {
	hash uint64
	idx  int // backend index
}

// newRing places vnodes points per backend. Backend identity is the
// address string, so a restarted gateway with the same flag order — or a
// different gateway replica with the same backend set — builds the same
// ring and routes sessions identically (no shared state in the tier).
func newRing(addrs []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(addrs)*vnodes), n: len(addrs)}
	for i, addr := range addrs {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(addr + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// ringHash is FNV-1a with a splitmix64 finalizer: raw FNV of short,
// near-identical keys ("a:1#17" vs "b:1#17") lands clustered on the ring,
// skewing vnode ownership badly; the finalizer's avalanche restores an
// even spread.
func ringHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// successors returns every backend index in ring order starting at the
// key's owner: successors(key)[0] is the owner, the rest are the failover
// order. Each backend appears exactly once.
func (r *ring) successors(key string) []int {
	out := make([]int, 0, r.n)
	if len(r.points) == 0 {
		return out
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.n)
	for i := 0; len(out) < r.n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}

// owner is successors(key)[0].
func (r *ring) owner(key string) int {
	s := r.successors(key)
	if len(s) == 0 {
		return -1
	}
	return s[0]
}
