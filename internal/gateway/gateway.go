// Package gateway is the fleet front tier over a pool of iprism-serve
// scoring backends: one stdlib net/http process that makes N backends look
// like one fast, hard-to-kill scoring service. It is the "runtime service
// under a latency budget" story (REACT) taken to fleet scale:
//
//   - health-checked backend set: periodic /healthz probes plus passive
//     connection-error evidence eject a dead backend within a couple of
//     requests; ejected backends are re-probed with backoff and
//     re-admitted after consecutive good probes;
//   - consistent-hash session routing: the gateway names sessions (the
//     backend create API accepts client-assigned IDs), so a session's
//     owner backend is derivable from the ID alone — any gateway replica
//     with the same backend list routes identically, with no shared
//     state. A /v1/sessions/* request always lands on the owner; if the
//     owner is ejected it lands on the successor and the session is
//     transparently re-created there (history lost, stickiness regained);
//   - retry/hedging for idempotent scoring: 5xx and connection errors
//     retry on a different backend under a token budget; an optional
//     hedge duplicates a slow request after a p95-derived delay, first
//     response wins, loser cancelled. Deliberate 429 backpressure passes
//     through with its Retry-After and is never retried;
//   - SSE risk streaming: GET /v1/sessions/{id}/stream proxies the owning
//     backend's per-tick event stream (Last-Event-ID resume included);
//   - async corpus jobs: POST /v1/jobs accepts a scene corpus, a bounded
//     in-gateway scheduler fans the scenes across every healthy backend
//     respecting 429 backpressure, and the per-scene STI artifact is
//     fetched when done (see jobs.go);
//   - observability: X-Trace-Id propagation gateway -> backend, per-proxy
//     wide events in /debug/requests, per-backend counters and fleet
//     gauges on /metrics, and an X-Backend response header so clients
//     (and the loadgen stickiness assertion) can see routing decisions.
package gateway

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Fleet-level telemetry; per-backend counters live on each backend.
var (
	telRequests     = telemetry.NewCounter("gateway.http.requests")
	telProxySecs    = telemetry.NewHistogram("gateway.proxy.seconds", telemetry.LatencyBuckets())
	telRetries      = telemetry.NewCounter("gateway.proxy.retries")
	telHedges       = telemetry.NewCounter("gateway.proxy.hedges")
	telHedgeWins    = telemetry.NewCounter("gateway.proxy.hedge_wins")
	telProxyErrors  = telemetry.NewCounter("gateway.proxy.errors")
	telBadGateway   = telemetry.NewCounter("gateway.proxy.bad_gateway")
	telEjections    = telemetry.NewCounter("gateway.backend.ejections_total_all")
	telReadmissions = telemetry.NewCounter("gateway.backend.readmissions")
	telHealthyGauge = telemetry.NewGauge("gateway.backends.healthy")
	telRingGauge    = telemetry.NewGauge("gateway.ring.points")
	telResurrect    = telemetry.NewCounter("gateway.sessions.resurrected")
	telStreams      = telemetry.NewGauge("gateway.sse.proxied_streams")
)

// Config tunes the gateway. Backends is required; everything else has
// serviceable defaults.
type Config struct {
	// Backends are the scoring backends as host:port (a leading http://
	// is accepted and stripped). Order matters only for the stable
	// per-backend metric indices.
	Backends []string
	// VirtualNodes per backend on the session ring. 0 resolves to 128.
	VirtualNodes int
	// ProbeInterval between health probes per healthy backend. 0 = 1s.
	ProbeInterval time.Duration
	// ProbeTimeout per probe. 0 resolves to min(ProbeInterval, 500ms).
	ProbeTimeout time.Duration
	// ProbeBackoffMax caps the exponential probe backoff while a backend
	// stays down. 0 resolves to 8×ProbeInterval.
	ProbeBackoffMax time.Duration
	// FailThreshold is how many consecutive failures (probe or passive
	// connection error) eject a backend. 0 resolves to 2.
	FailThreshold int
	// ReadmitThreshold is how many consecutive good probes re-admit an
	// ejected backend. 0 resolves to 2.
	ReadmitThreshold int

	// MaxAttempts bounds tries per idempotent request (first + retries on
	// distinct backends). 0 resolves to 3.
	MaxAttempts int
	// RetryBudget caps retries+hedges as a fraction of proxied requests
	// (plus a fixed burst of 16), so a fleet-wide brownout cannot amplify
	// traffic. 0 resolves to 0.10.
	RetryBudget float64
	// Hedge enables tail-latency hedging for idempotent scoring requests:
	// after a delay derived from the observed proxy p95, the request is
	// duplicated to a second backend and the first answer wins.
	// HedgeOff disables it (field inverted so the zero Config hedges).
	HedgeOff bool
	// HedgeMinDelay floors the hedge delay so a cold latency tracker
	// doesn't hedge instantly. 0 resolves to 20ms.
	HedgeMinDelay time.Duration
	// RequestTimeout bounds one proxied scoring request end to end
	// (including retries and hedges). 0 resolves to 10s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (score, observe). Job submissions
	// are capped separately by MaxJobBytes. 0 resolves to 1 MiB.
	MaxBodyBytes int64

	// JobWorkers bounds concurrent in-flight scene scorings across all
	// jobs, so a bulk corpus cannot starve interactive traffic. 0 = 4.
	JobWorkers int
	// MaxJobScenes bounds one corpus. 0 resolves to 100000.
	MaxJobScenes int
	// MaxJobs bounds retained jobs (running + done); completed jobs are
	// evicted oldest-first past the cap. 0 resolves to 64.
	MaxJobs int
	// MaxJobBytes caps a corpus submission body. 0 resolves to 64 MiB.
	MaxJobBytes int64
	// JobRetryAfterCap bounds how long the scheduler honours a backend's
	// Retry-After before re-polling the fleet. 0 resolves to 5s.
	JobRetryAfterCap time.Duration

	// FlightRecorderSize is how many proxy wide events /debug/requests
	// retains. 0 resolves to 256.
	FlightRecorderSize int
	// Logf, when set, receives operational log lines (ejections,
	// re-admissions, job lifecycle). Nil is silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Backends) == 0 {
		return c, fmt.Errorf("gateway: no backends configured")
	}
	cleaned := make([]string, len(c.Backends))
	seen := map[string]bool{}
	for i, addr := range c.Backends {
		a := addr
		for _, pfx := range []string{"http://", "https://"} {
			if len(a) > len(pfx) && a[:len(pfx)] == pfx {
				a = a[len(pfx):]
			}
		}
		if a == "" || seen[a] {
			return c, fmt.Errorf("gateway: empty or duplicate backend %q", addr)
		}
		seen[a] = true
		cleaned[i] = a
	}
	c.Backends = cleaned
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 128
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = min(c.ProbeInterval, 500*time.Millisecond)
	}
	if c.ProbeBackoffMax <= 0 {
		c.ProbeBackoffMax = 8 * c.ProbeInterval
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.ReadmitThreshold <= 0 {
		c.ReadmitThreshold = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 0.10
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 20 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 4
	}
	if c.MaxJobScenes <= 0 {
		c.MaxJobScenes = 100000
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.MaxJobBytes <= 0 {
		c.MaxJobBytes = 64 << 20
	}
	if c.JobRetryAfterCap <= 0 {
		c.JobRetryAfterCap = 5 * time.Second
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 256
	}
	return c, nil
}

// Gateway is a running (or startable) fleet front tier.
type Gateway struct {
	cfg      Config
	backends []*backend
	ring     *ring
	rr       atomic.Uint64 // spread rotation for non-affine traffic

	proxyClient  *http.Client // bounded by per-request contexts
	streamClient *http.Client // no timeout: SSE lives until cancelled
	probeClient  *http.Client

	// Retry/hedge token budget: spent must stay under
	// RetryBudget×requests + burst.
	budgetSpent atomic.Int64
	budgetReqs  atomic.Int64

	lat *latencyRing // p95 estimate feeding the hedge delay

	activeStreams atomic.Int64

	jobs   jobTable
	jobSem chan struct{}

	mux    *http.ServeMux
	http   *http.Server
	ln     net.Listener
	addr   atomic.Value // string
	flight *trace.FlightRecorder

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	state     atomic.Int32 // 0 idle, 1 serving, 2 shutting down
}

// New builds the gateway: backend pool, ring, probers, routes. Probers
// start immediately so Handler is usable without Start.
func New(cfg Config) (*Gateway, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:  cfg,
		ring: newRing(cfg.Backends, cfg.VirtualNodes),
		lat:  newLatencyRing(128),
		quit: make(chan struct{}),
	}
	transport := &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     30 * time.Second,
	}
	g.proxyClient = &http.Client{Transport: transport}
	g.streamClient = &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost:   4,
		ResponseHeaderTimeout: cfg.RequestTimeout,
	}}
	g.probeClient = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
	for i, addr := range cfg.Backends {
		g.backends = append(g.backends, newBackend(i, addr))
	}
	g.jobs.init(cfg.MaxJobs)
	g.jobSem = make(chan struct{}, cfg.JobWorkers)
	g.flight = trace.NewFlightRecorder(cfg.FlightRecorderSize)
	telRingGauge.Set(float64(len(g.ring.points)))
	g.updateHealthGauge()
	g.routes()
	for _, b := range g.backends {
		g.wg.Add(1)
		go g.probe(b)
	}
	return g, nil
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Addr returns the bound listen address after Start.
func (g *Gateway) Addr() string {
	if v := g.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Start listens on addr and serves in the background until Shutdown.
func (g *Gateway) Start(addr string) error {
	if !g.state.CompareAndSwap(0, 1) {
		return fmt.Errorf("gateway: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("gateway: listen %s: %w", addr, err)
	}
	g.ln = ln
	g.addr.Store(ln.Addr().String())
	g.http = &http.Server{Handler: g.mux}
	go g.http.Serve(ln)
	return nil
}

// Shutdown stops the gateway: probers and job workers stop, in-flight
// proxied requests finish (SSE proxies are cancelled — their client can
// resume against another gateway), then the listener closes.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.closeOnce.Do(func() { close(g.quit) })
	var err error
	if g.state.Swap(2) == 1 && g.http != nil {
		err = g.http.Shutdown(ctx)
		if err != nil {
			g.http.Close()
		}
	}
	g.wg.Wait()
	return err
}

func (g *Gateway) routes() {
	g.mux = http.NewServeMux()
	// Every proxied route gets the wide-event envelope; the long-lived SSE
	// proxy and the debug surface skip it (a minutes-long stream is not a
	// latency outlier, and debug reads should not pollute the recorder).
	g.mux.HandleFunc("POST /v1/score", g.traced("/v1/score", true, g.handleScore))
	g.mux.HandleFunc("POST /v1/score/batch", g.traced("/v1/score/batch", true, g.handleScoreBatch))
	g.mux.HandleFunc("POST /v1/sessions", g.traced("/v1/sessions", true, g.handleSessionCreate))
	g.mux.HandleFunc("POST /v1/sessions/{id}/observe", g.traced("/v1/sessions/observe", true, g.handleSessionProxy))
	g.mux.HandleFunc("GET /v1/sessions/{id}/risk", g.traced("/v1/sessions/risk", true, g.handleSessionProxy))
	g.mux.HandleFunc("DELETE /v1/sessions/{id}", g.traced("/v1/sessions/delete", true, g.handleSessionProxy))
	g.mux.HandleFunc("GET /v1/sessions/{id}/stream", g.traced("/v1/sessions/stream", false, g.handleSessionStream))
	g.mux.HandleFunc("POST /v1/jobs", g.traced("/v1/jobs", true, g.handleJobSubmit))
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.traced("/v1/jobs/status", true, g.handleJobStatus))
	g.mux.HandleFunc("GET /v1/jobs/{id}/results", g.traced("/v1/jobs/results", true, g.handleJobResults))
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.Handle("GET /metrics", telemetry.Default().MetricsHandler())
	g.mux.Handle("GET /debug/telemetry", telemetry.Default().SnapshotHandler())
	g.mux.HandleFunc("GET /debug/requests", g.traced("/debug/requests", false, g.handleDebugRequests))
	g.mux.HandleFunc("GET /debug/backends", g.traced("/debug/backends", false, g.handleDebugBackends))
}

// handleHealthz: the gateway is healthy while it can route anywhere.
// A fleet with zero healthy backends answers 503 so an outer balancer can
// fail away from this gateway.
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if g.healthyCount() == 0 {
		http.Error(w, "no healthy backends", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// healthyAfter returns the candidate list for a key-affine request: the
// ring successors of key filtered to healthy backends (unhealthy ones kept
// at the tail as a last resort when everything is ejected).
func (g *Gateway) healthyAfter(key string) []*backend {
	idxs := g.ring.successors(key)
	out := make([]*backend, 0, len(idxs))
	var down []*backend
	for _, i := range idxs {
		if g.backends[i].healthy.Load() {
			out = append(out, g.backends[i])
		} else {
			down = append(down, g.backends[i])
		}
	}
	return append(out, down...)
}

// spread returns candidates for non-affine traffic: healthy backends in
// rotation order (then unhealthy as a last resort), so stateless scoring
// load spreads over the whole fleet.
func (g *Gateway) spread() []*backend {
	n := len(g.backends)
	start := int(g.rr.Add(1)) % n
	out := make([]*backend, 0, n)
	var down []*backend
	for i := 0; i < n; i++ {
		b := g.backends[(start+i)%n]
		if b.healthy.Load() {
			out = append(out, b)
		} else {
			down = append(down, b)
		}
	}
	return append(out, down...)
}

// retryAllowed spends one token from the retry/hedge budget if available.
func (g *Gateway) retryAllowed() bool {
	const burst = 16
	allowed := int64(g.cfg.RetryBudget*float64(g.budgetReqs.Load())) + burst
	if g.budgetSpent.Load() >= allowed {
		return false
	}
	g.budgetSpent.Add(1)
	return true
}

// latencyRing is a fixed ring of recent proxy latencies backing the
// p95-derived hedge delay. Cheap by design: one lock, copy-and-sort of at
// most cap samples on read, called once per hedged request arm.
type latencyRing struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
}

func newLatencyRing(n int) *latencyRing { return &latencyRing{buf: make([]float64, n)} }

func (l *latencyRing) note(seconds float64) {
	l.mu.Lock()
	l.buf[l.next] = seconds
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// p95 returns the 95th percentile of retained samples, or 0 with fewer
// than 8 samples (cold start).
func (l *latencyRing) p95() float64 {
	l.mu.Lock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	if n < 8 {
		l.mu.Unlock()
		return 0
	}
	cp := append([]float64(nil), l.buf[:n]...)
	l.mu.Unlock()
	// Insertion sort: n <= cap(buf) = 128, and this runs off the hot path.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[(len(cp)*95)/100]
}

// hedgeDelay is the p95-derived duplicate-request delay, floored so a
// cold tracker never hedges instantly and capped at half the request
// timeout so the hedge has time to answer.
func (g *Gateway) hedgeDelay() time.Duration {
	d := time.Duration(g.lat.p95() * float64(time.Second))
	if d < g.cfg.HedgeMinDelay {
		d = g.cfg.HedgeMinDelay
	}
	if m := g.cfg.RequestTimeout / 2; d > m {
		d = m
	}
	return d
}
