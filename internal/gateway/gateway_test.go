package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scene"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// --- ring ---

func TestRingSuccessorsDistinctOwnerFirst(t *testing.T) {
	r := newRing([]string{"a:1", "b:1", "c:1"}, 64)
	for _, key := range []string{"s1", "s2", "session-xyz", ""} {
		succ := r.successors(key)
		if len(succ) != 3 {
			t.Fatalf("successors(%q) = %v, want 3 distinct backends", key, succ)
		}
		seen := map[int]bool{}
		for _, idx := range succ {
			if seen[idx] {
				t.Fatalf("successors(%q) repeats backend %d", key, idx)
			}
			seen[idx] = true
		}
		if r.owner(key) != succ[0] {
			t.Errorf("owner(%q) = %d, want successors[0] = %d", key, r.owner(key), succ[0])
		}
	}
}

// Removing one backend must not move keys between the survivors: only the
// removed backend's keys relocate. This is the consistent-hash contract
// that makes the session tier survive membership edits.
func TestRingMinimalMovement(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1"}
	before := newRing(addrs, 128)
	after := newRing(addrs[:2], 128) // c removed

	const n = 2000
	moved, fromC := 0, 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("session-%d", i)
		was, is := before.owner(key), after.owner(key)
		if was == 2 {
			fromC++
			continue // c's keys must move somewhere
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving backends (want 0)", moved)
	}
	// Sanity: c owned a nontrivial share before removal (vnode balance).
	if fromC < n/6 || fromC > n/2 {
		t.Errorf("backend c owned %d/%d keys, want roughly a third", fromC, n)
	}
}

// Distribution sanity: vnodes spread ownership within a loose factor.
func TestRingBalance(t *testing.T) {
	r := newRing([]string{"a:1", "b:1", "c:1", "d:1"}, 128)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[r.owner(fmt.Sprintf("k%d", i))]++
	}
	for idx, c := range counts {
		if c < 400 || c > 2200 {
			t.Errorf("backend %d owns %d/4000 keys, badly unbalanced: %v", idx, c, counts)
		}
	}
}

// --- fake backends ---

// fakeBackend is a scriptable iprism-serve stand-in: /healthz answers 200
// while up, /v1/score is delegated to score.
type fakeBackend struct {
	srv   *httptest.Server
	up    atomic.Bool
	score atomic.Value // func(w http.ResponseWriter, r *http.Request)
	hits  atomic.Int64
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	f := &fakeBackend{}
	f.up.Store(true)
	f.score.Store(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"version":"iprism.score/v1","combined_sti":0.5,"most_threatening":1,"actors":[{"id":1,"sti":0.5}]}`)
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if !f.up.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/score", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		f.score.Load().(func(http.ResponseWriter, *http.Request))(w, r)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeBackend) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

// listenAt rebinds a specific host:port (recovering a "dead" backend's
// address); the port may have been grabbed in between, so callers skip on
// failure.
func listenAt(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	telemetry.Enable()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		g.Shutdown(ctx)
	})
	return g
}

func doGateway(t *testing.T, g *Gateway, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	g.Handler().ServeHTTP(w, req)
	return w
}

// --- failover / health ---

// A backend that stops answering is ejected by its own failing traffic
// (passive evidence), traffic flows to the survivor, and the probe loop
// re-admits it once it recovers.
func TestFailoverEjectionAndReadmission(t *testing.T) {
	f1, f2 := newFakeBackend(t), newFakeBackend(t)
	g := newTestGateway(t, Config{
		Backends:      []string{f1.addr(), f2.addr()},
		ProbeInterval: 20 * time.Millisecond,
		FailThreshold: 1,
		HedgeOff:      true,
	})

	// Kill f1 at the TCP level: requests to it fail with conn errors.
	f1.srv.CloseClientConnections()
	f1.srv.Close()

	for i := 0; i < 6; i++ {
		w := doGateway(t, g, http.MethodPost, "/v1/score", []byte("{}"))
		if w.Code != http.StatusOK {
			t.Fatalf("request %d through degraded fleet: status %d, body %s", i, w.Code, w.Body.String())
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for g.backends[0].healthy.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g.backends[0].healthy.Load() {
		t.Fatal("dead backend was never ejected")
	}
	if got := g.healthyCount(); got != 1 {
		t.Fatalf("healthyCount = %d, want 1", got)
	}

	// Every request after ejection must land on f2 only.
	before := f2.hits.Load()
	for i := 0; i < 4; i++ {
		if w := doGateway(t, g, http.MethodPost, "/v1/score", []byte("{}")); w.Code != http.StatusOK {
			t.Fatalf("post-ejection request: status %d", w.Code)
		}
	}
	if f2.hits.Load()-before != 4 {
		t.Errorf("survivor served %d of 4 post-ejection requests", f2.hits.Load()-before)
	}

	// Resurrect f1 at the same address: probes must re-admit it.
	f3 := &fakeBackend{}
	f3.up.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { fmt.Fprintln(w, "ok") })
	ln, err := listenAt(f1.addr())
	if err != nil {
		t.Skipf("could not rebind %s: %v", f1.addr(), err)
	}
	revived := &http.Server{Handler: mux}
	go revived.Serve(ln)
	defer revived.Close()

	deadline = time.Now().Add(3 * time.Second)
	for !g.backends[0].healthy.Load() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !g.backends[0].healthy.Load() {
		t.Fatal("recovered backend was never re-admitted")
	}
}

// --- hedging ---

// With one slow backend, the p95-derived hedge races a duplicate on the
// other backend and the fast answer wins well before the slow one lands.
func TestHedgingCutsTailLatency(t *testing.T) {
	slow, fast := newFakeBackend(t), newFakeBackend(t)
	const slowDelay = 600 * time.Millisecond
	slow.score.Store(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(slowDelay):
		case <-r.Context().Done():
			return
		}
		fmt.Fprintln(w, `{"version":"iprism.score/v1","combined_sti":0.1,"most_threatening":-1}`)
	})
	g := newTestGateway(t, Config{
		Backends:      []string{slow.addr(), fast.addr()},
		ProbeInterval: time.Second,
		HedgeMinDelay: 10 * time.Millisecond,
	})
	wins := telHedgeWins.Value()
	for i := 0; i < 6; i++ {
		start := time.Now()
		w := doGateway(t, g, http.MethodPost, "/v1/score", []byte("{}"))
		if w.Code != http.StatusOK {
			t.Fatalf("hedged request %d: status %d", i, w.Code)
		}
		if d := time.Since(start); d > slowDelay-100*time.Millisecond {
			t.Errorf("request %d took %v, hedge should have beaten the %v backend", i, d, slowDelay)
		}
	}
	if telHedgeWins.Value() == wins {
		t.Error("no hedge ever won despite a pathologically slow backend")
	}
}

// 429 backpressure is flow control: it passes through with Retry-After
// and is never retried onto another backend.
func Test429PassesThroughUnretried(t *testing.T) {
	busy, idle := newFakeBackend(t), newFakeBackend(t)
	busy.score.Store(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"scoring queue full"}`, http.StatusTooManyRequests)
	})
	idle.score.Store(busy.score.Load()) // both saturated
	g := newTestGateway(t, Config{
		Backends:      []string{busy.addr(), idle.addr()},
		ProbeInterval: time.Second,
		HedgeOff:      true,
	})
	hits := busy.hits.Load() + idle.hits.Load()
	w := doGateway(t, g, http.MethodPost, "/v1/score", []byte("{}"))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want pass-through %q", ra, "7")
	}
	if got := busy.hits.Load() + idle.hits.Load() - hits; got != 1 {
		t.Errorf("429 touched %d backends, want exactly 1 (no retry)", got)
	}
}

// --- sessions against real backends ---

func testFleet(t *testing.T, n int, cfg Config) (*Gateway, []*server.Server) {
	t.Helper()
	telemetry.Enable()
	var addrs []string
	var servers []*server.Server
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
	}
	cfg.Backends = addrs
	return newTestGateway(t, cfg), servers
}

// fleetScene builds one observe body at tick time `at` — session observe
// times must be strictly increasing, so callers advance it per request.
func fleetScene(at float64) []byte {
	raw, err := scene.Encode(scene.Scene{
		Version: scene.Version,
		Time:    at,
		Ego:     scene.State{X: 0, Y: 1.75, Speed: 10},
		Road:    scene.Road{Kind: "straight", Straight: &scene.StraightRoad{Lanes: 2, LaneWidth: 3.5, XMin: -50, XMax: 200}},
		Actors:  []scene.Actor{{ID: 1, Kind: "vehicle", State: scene.State{X: 25, Y: 1.75, Speed: 4}}},
	})
	if err != nil {
		panic(err)
	}
	return raw
}

// Sessions created through the gateway stick to one backend, and the
// gateway reports its routing decision via X-Backend.
func TestSessionAffinity(t *testing.T) {
	g, _ := testFleet(t, 3, Config{ProbeInterval: time.Second, HedgeOff: true})
	w := doGateway(t, g, http.MethodPost, "/v1/sessions", []byte("{}"))
	if w.Code != http.StatusCreated {
		t.Fatalf("create: status %d, body %s", w.Code, w.Body.String())
	}
	var created server.SessionCreateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" {
		t.Fatal("gateway did not mint a session ID")
	}
	owner := w.Header().Get("X-Backend")
	if owner == "" {
		t.Fatal("create response missing X-Backend")
	}
	for i := 0; i < 5; i++ {
		w := doGateway(t, g, http.MethodPost, "/v1/sessions/"+created.ID+"/observe", fleetScene(float64(i)*0.1))
		if w.Code != http.StatusOK {
			t.Fatalf("observe %d: status %d, body %s", i, w.Code, w.Body.String())
		}
		if got := w.Header().Get("X-Backend"); got != owner {
			t.Fatalf("observe %d landed on %s, session owner is %s (affinity broken)", i, got, owner)
		}
	}
	w = doGateway(t, g, http.MethodGet, "/v1/sessions/"+created.ID+"/risk", nil)
	if w.Code != http.StatusOK || w.Header().Get("X-Backend") != owner {
		t.Fatalf("risk: status %d on backend %q, want 200 on %q", w.Code, w.Header().Get("X-Backend"), owner)
	}
}

// Killing the owner backend moves the session to its ring successor: the
// next observe ejects the corpse, resurrects the session ID on the new
// owner, and succeeds — the episode continues with history reset.
func TestSessionFailoverResurrection(t *testing.T) {
	g, servers := testFleet(t, 2, Config{ProbeInterval: time.Hour, FailThreshold: 1, HedgeOff: true})
	w := doGateway(t, g, http.MethodPost, "/v1/sessions", []byte("{}"))
	if w.Code != http.StatusCreated {
		t.Fatalf("create: status %d", w.Code)
	}
	var created server.SessionCreateResponse
	json.Unmarshal(w.Body.Bytes(), &created)
	owner := w.Header().Get("X-Backend")
	if w := doGateway(t, g, http.MethodPost, "/v1/sessions/"+created.ID+"/observe", fleetScene(0)); w.Code != http.StatusOK {
		t.Fatalf("pre-failover observe: status %d", w.Code)
	}

	resurrections := telResurrect.Value()
	for _, s := range servers {
		if s.Addr() == owner {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			s.Shutdown(ctx)
			cancel()
		}
	}
	w = doGateway(t, g, http.MethodPost, "/v1/sessions/"+created.ID+"/observe", fleetScene(0.1))
	if w.Code != http.StatusOK {
		t.Fatalf("post-failover observe: status %d, body %s", w.Code, w.Body.String())
	}
	survivor := w.Header().Get("X-Backend")
	if survivor == owner {
		t.Fatalf("observe still claims dead owner %s", owner)
	}
	if telResurrect.Value() == resurrections {
		t.Error("failover succeeded without a recorded resurrection")
	}
	// Stickiness resumes on the survivor.
	if w := doGateway(t, g, http.MethodPost, "/v1/sessions/"+created.ID+"/observe", fleetScene(0.2)); w.Header().Get("X-Backend") != survivor {
		t.Errorf("session did not stick to survivor %s", survivor)
	}
}

// The SSE proxy relays live events and honours Last-Event-ID resume
// through the gateway.
func TestStreamProxyWithResume(t *testing.T) {
	g, _ := testFleet(t, 2, Config{ProbeInterval: time.Second, HedgeOff: true})
	if err := g.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + g.Addr()

	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	var created server.SessionCreateResponse
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	for i := 0; i < 5; i++ {
		r2, err := http.Post(base+"/v1/sessions/"+created.ID+"/observe", "application/json", bytes.NewReader(fleetScene(float64(i)*0.1)))
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
	}

	req, _ := http.NewRequest(http.MethodGet, base+"/v1/sessions/"+created.ID+"/stream", nil)
	req.Header.Set("Last-Event-ID", "2")
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", stream.StatusCode)
	}
	if ct := stream.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	ids := make(chan uint64, 16)
	go func() {
		defer close(ids)
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "id: ") {
				var id uint64
				fmt.Sscanf(line, "id: %d", &id)
				ids <- id
			}
		}
	}()
	want := uint64(3) // resume after 2 replays 3, 4, 5
	deadline := time.After(5 * time.Second)
	for want <= 5 {
		select {
		case id, ok := <-ids:
			if !ok {
				t.Fatalf("stream closed before id %d", want)
			}
			if id != want {
				t.Fatalf("replayed id = %d, want %d", id, want)
			}
			want++
		case <-deadline:
			t.Fatalf("timed out waiting for replayed id %d", want)
		}
	}
}

// --- jobs ---

// A corpus job completes across the fleet, honouring 429 backpressure by
// waiting out Retry-After instead of failing or retrying elsewhere.
func TestJobLifecycleUnderBackpressure(t *testing.T) {
	f1, f2 := newFakeBackend(t), newFakeBackend(t)
	var rejected atomic.Int64
	throttled := func(w http.ResponseWriter, _ *http.Request) {
		// Every backend's first two answers are saturation pushback.
		if rejected.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"scoring queue full"}`, http.StatusTooManyRequests)
			return
		}
		fmt.Fprintln(w, `{"version":"iprism.score/v1","combined_sti":0.25,"most_threatening":1,"actors":[{"id":1,"sti":0.25}]}`)
	}
	f1.score.Store(throttled)
	f2.score.Store(throttled)
	g := newTestGateway(t, Config{
		Backends:         []string{f1.addr(), f2.addr()},
		ProbeInterval:    time.Second,
		HedgeOff:         true,
		JobWorkers:       2,
		JobRetryAfterCap: 30 * time.Millisecond, // keep the test fast
	})

	sc := scene.Scene{
		Version: scene.Version,
		Ego:     scene.State{X: 0, Y: 1.75, Speed: 10},
		Road:    scene.Road{Kind: "straight", Straight: &scene.StraightRoad{Lanes: 2, LaneWidth: 3.5, XMin: -50, XMax: 200}},
		Actors:  []scene.Actor{{ID: 1, Kind: "vehicle", State: scene.State{X: 25, Y: 1.75, Speed: 4}}},
	}
	corpus, err := scene.EncodeJobRequest(scene.JobRequest{Scenes: []scene.Scene{sc, sc, sc, sc, sc}})
	if err != nil {
		t.Fatal(err)
	}
	w := doGateway(t, g, http.MethodPost, "/v1/jobs", corpus)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", w.Code, w.Body.String())
	}
	var st scene.JobStatus
	json.Unmarshal(w.Body.Bytes(), &st)
	if st.ID == "" || st.Total != 5 {
		t.Fatalf("submit status = %+v", st)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		w = doGateway(t, g, http.MethodGet, "/v1/jobs/"+st.ID, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("status poll: %d", w.Code)
		}
		json.Unmarshal(w.Body.Bytes(), &st)
		if st.State == scene.JobStateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Completed != 5 || st.Failed != 0 {
		t.Fatalf("job finished %+v, want 5 completed, 0 failed", st)
	}

	w = doGateway(t, g, http.MethodGet, "/v1/jobs/"+st.ID+"/results", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("results: status %d", w.Code)
	}
	var res scene.JobResults
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 5 {
		t.Fatalf("results = %d, want 5", len(res.Results))
	}
	for i, r := range res.Results {
		if r.Index != i || r.Error != "" || r.Combined != 0.25 {
			t.Errorf("result %d = %+v, want index-aligned combined 0.25", i, r)
		}
	}
	if rejected.Load() < 3 {
		t.Errorf("backpressure script never fired (%d scoring calls)", rejected.Load())
	}
}

// A results fetch on a still-running job answers 202 with live status.
func TestJobResultsWhileRunning(t *testing.T) {
	f := newFakeBackend(t)
	release := make(chan struct{})
	f.score.Store(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		fmt.Fprintln(w, `{"version":"iprism.score/v1","combined_sti":0.5,"most_threatening":-1}`)
	})
	g := newTestGateway(t, Config{Backends: []string{f.addr()}, ProbeInterval: time.Second, HedgeOff: true, JobWorkers: 1})

	sc := scene.Scene{
		Version: scene.Version,
		Ego:     scene.State{X: 0, Y: 1.75, Speed: 10},
		Road:    scene.Road{Kind: "straight", Straight: &scene.StraightRoad{Lanes: 2, LaneWidth: 3.5, XMin: -50, XMax: 200}},
		Actors:  []scene.Actor{{ID: 1, Kind: "vehicle", State: scene.State{X: 25, Y: 1.75, Speed: 4}}},
	}
	corpus, _ := scene.EncodeJobRequest(scene.JobRequest{Scenes: []scene.Scene{sc}})
	w := doGateway(t, g, http.MethodPost, "/v1/jobs", corpus)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d", w.Code)
	}
	var st scene.JobStatus
	json.Unmarshal(w.Body.Bytes(), &st)

	w = doGateway(t, g, http.MethodGet, "/v1/jobs/"+st.ID+"/results", nil)
	if w.Code != http.StatusAccepted {
		t.Fatalf("running results fetch: status %d, want 202", w.Code)
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		w = doGateway(t, g, http.MethodGet, "/v1/jobs/"+st.ID+"/results", nil)
		if w.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed after release")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if w := doGateway(t, g, http.MethodGet, "/v1/jobs/nope", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", w.Code)
	}
}

// Malformed and oversized corpora are rejected before any scheduling.
func TestJobSubmitRejections(t *testing.T) {
	f := newFakeBackend(t)
	g := newTestGateway(t, Config{Backends: []string{f.addr()}, ProbeInterval: time.Second, MaxJobScenes: 1})
	for name, body := range map[string]string{
		"not json":    "{",
		"bad version": `{"version":"iprism.scene/v1","scenes":[]}`,
		"empty":       `{"version":"iprism.job/v1","scenes":[]}`,
	} {
		if w := doGateway(t, g, http.MethodPost, "/v1/jobs", []byte(body)); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, w.Code)
		}
	}
	sc := scene.Scene{
		Version: scene.Version,
		Ego:     scene.State{X: 0, Y: 1.75, Speed: 10},
		Road:    scene.Road{Kind: "straight", Straight: &scene.StraightRoad{Lanes: 2, LaneWidth: 3.5, XMin: -50, XMax: 200}},
	}
	over, _ := scene.EncodeJobRequest(scene.JobRequest{Scenes: []scene.Scene{sc, sc}})
	if w := doGateway(t, g, http.MethodPost, "/v1/jobs", over); w.Code != http.StatusBadRequest {
		t.Errorf("over-limit corpus: status %d, want 400", w.Code)
	}
}

// /healthz flips to 503 when the whole fleet is gone, and /debug/backends
// reports the fleet view.
func TestGatewayHealthAndDebugBackends(t *testing.T) {
	f := newFakeBackend(t)
	g := newTestGateway(t, Config{Backends: []string{f.addr()}, ProbeInterval: time.Second})
	if w := doGateway(t, g, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz with healthy fleet: %d", w.Code)
	}
	g.backends[0].healthy.Store(false)
	if w := doGateway(t, g, http.MethodGet, "/healthz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead fleet: %d, want 503", w.Code)
	}
	w := doGateway(t, g, http.MethodGet, "/debug/backends", nil)
	var dbg DebugBackendsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &dbg); err != nil {
		t.Fatal(err)
	}
	if len(dbg.Backends) != 1 || dbg.Healthy != 0 || dbg.Backends[0].Addr != f.addr() {
		t.Errorf("debug backends = %+v", dbg)
	}
}
