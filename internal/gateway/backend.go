package gateway

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// backend is one iprism-serve process behind the gateway: its address, its
// live health verdict, and its per-backend telemetry. Health transitions
// are driven by the prober goroutine (periodic /healthz) and by passive
// evidence from proxying (connection errors count as probe failures, so a
// SIGKILL'd backend is ejected within FailThreshold requests instead of
// waiting out a probe period).
type backend struct {
	idx  int
	addr string // host:port
	base string // http://host:port

	healthy atomic.Bool
	// consecFail counts consecutive failures (probe or passive); reaching
	// FailThreshold ejects. consecOK counts consecutive probe successes
	// while ejected; reaching ReadmitThreshold re-admits.
	consecFail atomic.Int64
	consecOK   atomic.Int64
	inflight   atomic.Int64

	// Per-backend counters, named by stable pool index so the fleet's
	// /metrics stays lint-clean regardless of address syntax.
	telRequests  *telemetry.Counter
	telErrors    *telemetry.Counter
	telHedges    *telemetry.Counter
	telEjections *telemetry.Counter
}

func newBackend(idx int, addr string) *backend {
	b := &backend{
		idx:          idx,
		addr:         addr,
		base:         "http://" + addr,
		telRequests:  telemetry.NewCounter("gateway.backend." + strconv.Itoa(idx) + ".requests"),
		telErrors:    telemetry.NewCounter("gateway.backend." + strconv.Itoa(idx) + ".errors"),
		telHedges:    telemetry.NewCounter("gateway.backend." + strconv.Itoa(idx) + ".hedges"),
		telEjections: telemetry.NewCounter("gateway.backend." + strconv.Itoa(idx) + ".ejections"),
	}
	// Optimistic start: the first failed probe or request corrects it; the
	// alternative (pessimistic start) blackholes the fleet until the first
	// probe round even when every backend is fine.
	b.healthy.Store(true)
	return b
}

// noteFailure records failed contact (probe or passive). Returns true when
// this failure ejected the backend.
func (b *backend) noteFailure(threshold int) bool {
	b.consecOK.Store(0)
	if b.consecFail.Add(1) >= int64(threshold) && b.healthy.CompareAndSwap(true, false) {
		b.telEjections.Inc()
		telEjections.Inc()
		return true
	}
	return false
}

// noteProbeSuccess records a successful health probe. Returns true when it
// re-admitted an ejected backend.
func (b *backend) noteProbeSuccess(readmit int) bool {
	b.consecFail.Store(0)
	if b.healthy.Load() {
		b.consecOK.Store(0)
		return false
	}
	if b.consecOK.Add(1) >= int64(readmit) {
		b.consecOK.Store(0)
		if b.healthy.CompareAndSwap(false, true) {
			telReadmissions.Inc()
			return true
		}
	}
	return false
}

// probe runs the health-check loop for one backend until quit closes.
// Healthy backends are probed every ProbeInterval; ejected ones back off
// exponentially up to ProbeBackoffMax so a dead backend is not hammered,
// then are re-admitted after ReadmitThreshold consecutive good probes.
func (g *Gateway) probe(b *backend) {
	defer g.wg.Done()
	interval := g.cfg.ProbeInterval
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-g.quit:
			return
		case <-timer.C:
		}
		ok := g.probeOnce(b)
		wasHealthy := b.healthy.Load()
		if ok {
			if b.noteProbeSuccess(g.cfg.ReadmitThreshold) {
				g.logf("gateway: backend %s re-admitted", b.addr)
			}
			interval = g.cfg.ProbeInterval
		} else {
			if b.noteFailure(g.cfg.FailThreshold) {
				g.logf("gateway: backend %s ejected (probe)", b.addr)
			}
			if !wasHealthy {
				// Still down: back off.
				interval = min(interval*2, g.cfg.ProbeBackoffMax)
			} else {
				interval = g.cfg.ProbeInterval
			}
		}
		g.updateHealthGauge()
		timer.Reset(interval)
	}
}

func (g *Gateway) probeOnce(b *backend) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.probeClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	drain(resp)
	return resp.StatusCode == http.StatusOK
}

// healthyCount and updateHealthGauge keep the fleet-health gauge current.
func (g *Gateway) healthyCount() int {
	n := 0
	for _, b := range g.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

func (g *Gateway) updateHealthGauge() {
	telHealthyGauge.Set(float64(g.healthyCount()))
}

// BackendStatus is one backend's row in /debug/backends.
type BackendStatus struct {
	Index     int    `json:"index"`
	Addr      string `json:"addr"`
	Healthy   bool   `json:"healthy"`
	Inflight  int64  `json:"inflight"`
	Requests  int64  `json:"requests"`
	Errors    int64  `json:"errors"`
	Hedges    int64  `json:"hedges"`
	Ejections int64  `json:"ejections"`
}

func (b *backend) status() BackendStatus {
	return BackendStatus{
		Index:     b.idx,
		Addr:      b.addr,
		Healthy:   b.healthy.Load(),
		Inflight:  b.inflight.Load(),
		Requests:  b.telRequests.Value(),
		Errors:    b.telErrors.Value(),
		Hedges:    b.telHedges.Value(),
		Ejections: b.telEjections.Value(),
	}
}

func drain(resp *http.Response) {
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			return
		}
	}
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}
