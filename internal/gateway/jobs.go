package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scene"
	"repro/internal/server"
	"repro/internal/telemetry"
)

var (
	telJobsAccepted = telemetry.NewCounter("gateway.jobs.accepted")
	telJobsDone     = telemetry.NewCounter("gateway.jobs.completed")
	telJobScenes    = telemetry.NewCounter("gateway.jobs.scenes")
	telJobFails     = telemetry.NewCounter("gateway.jobs.scene_failures")
	telJobThrottled = telemetry.NewCounter("gateway.jobs.backpressure_waits")
	telJobsRunning  = telemetry.NewGauge("gateway.jobs.running")
)

// job is one corpus scoring run. Each results slot is written exactly once
// by the worker goroutine that owns that index, then read only after done
// closes — no per-slot locking needed; the progress counters are atomics
// so /v1/jobs/{id} can poll a running job cheaply.
type job struct {
	id        string
	total     int
	completed atomic.Int64
	failed    atomic.Int64
	results   []scene.JobSceneResult
	done      chan struct{}
}

func (j *job) finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

func (j *job) status() scene.JobStatus {
	st := scene.JobStatus{
		Version:   scene.JobVersion,
		ID:        j.id,
		State:     scene.JobStateRunning,
		Total:     j.total,
		Completed: int(j.completed.Load()),
		Failed:    int(j.failed.Load()),
	}
	if j.finished() {
		st.State = scene.JobStateDone
	}
	return st
}

// jobTable retains running and recently completed jobs, evicting the
// oldest completed job past the cap. Running jobs are never evicted, so a
// table full of running jobs rejects new submissions (backpressure).
type jobTable struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []string // insertion order, for eviction
	max   int
}

func (t *jobTable) init(max int) {
	t.jobs = make(map[string]*job)
	t.max = max
}

func (t *jobTable) add(j *job) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.jobs) >= t.max {
		evicted := false
		for i, id := range t.order {
			if t.jobs[id].finished() {
				delete(t.jobs, id)
				t.order = append(t.order[:i], t.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return fmt.Errorf("job table full (%d jobs running)", len(t.jobs))
		}
	}
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	return nil
}

func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// handleJobSubmit accepts a corpus (iprism.job/v1), answers 202 with the
// job handle immediately, and scores the scenes in the background across
// the healthy fleet under the JobWorkers concurrency bound.
func (g *Gateway) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxJobBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("read body: %v", err)})
		return
	}
	req, err := scene.DecodeJobRequest(body, g.cfg.MaxJobScenes)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	j := &job{
		id:      newID("job-"),
		total:   len(req.Scenes),
		results: make([]scene.JobSceneResult, len(req.Scenes)),
		done:    make(chan struct{}),
	}
	if err := g.jobs.add(j); err != nil {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	}
	telJobsAccepted.Inc()
	g.wg.Add(1)
	go g.runJob(j, req.Scenes)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (g *Gateway) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := g.jobs.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobResults serves the per-scene STI artifact: 200 JobResults once
// done, 202 with the live JobStatus while still running (poll again).
func (g *Gateway) handleJobResults(w http.ResponseWriter, r *http.Request) {
	j, ok := g.jobs.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	if !j.finished() {
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	writeJSON(w, http.StatusOK, scene.JobResults{Version: scene.JobVersion, ID: j.id, Results: j.results})
}

// runJob drives one corpus: scenes fan out over the healthy fleet, at most
// JobWorkers in flight across ALL jobs (the semaphore is gateway-global),
// so a bulk corpus cannot crowd out interactive scoring traffic.
func (g *Gateway) runJob(j *job, scenes []scene.Scene) {
	defer g.wg.Done()
	g.adjustRunningGauge(+1)
	var wg sync.WaitGroup
	for i := range scenes {
		select {
		case g.jobSem <- struct{}{}:
		case <-g.quit:
			// Shutdown: fail the not-yet-started remainder and finish.
			for k := i; k < len(scenes); k++ {
				j.results[k] = scene.JobSceneResult{Index: k, MostThreatening: -1, Error: "gateway shut down before scene was scored"}
				j.failed.Add(1)
				telJobFails.Inc()
			}
			wg.Wait()
			g.finishJob(j)
			return
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-g.jobSem }()
			g.scoreJobScene(j, i, scenes[i])
		}(i)
	}
	wg.Wait()
	g.finishJob(j)
}

// adjustRunningGauge serialises the gauge's read-modify-write under the
// table lock (Gauge has no Add, and concurrent runJob starts/exits would
// otherwise drop updates).
func (g *Gateway) adjustRunningGauge(delta float64) {
	g.jobs.mu.Lock()
	telJobsRunning.Set(telJobsRunning.Value() + delta)
	g.jobs.mu.Unlock()
}

func (g *Gateway) finishJob(j *job) {
	close(j.done)
	g.adjustRunningGauge(-1)
	telJobsDone.Inc()
	g.logf("gateway: job %s done: %d scored, %d failed", j.id, j.total-int(j.failed.Load()), j.failed.Load())
}

// scoreJobScene scores one scene against the fleet. Backpressure (429) is
// flow control, not failure: the worker sleeps out the backend's
// Retry-After (capped) and tries again — this is where the job tier's
// "respect backpressure" contract lives. Connection errors and 5xx rotate
// to the next healthy backend with bounded attempts. Job retries ride
// outside the interactive retry budget; the JobWorkers semaphore is
// already the stricter bound.
func (g *Gateway) scoreJobScene(j *job, idx int, sc scene.Scene) {
	res := scene.JobSceneResult{Index: idx, MostThreatening: -1}
	defer func() {
		j.results[idx] = res
		if res.Error != "" {
			j.failed.Add(1)
			telJobFails.Inc()
		} else {
			j.completed.Add(1)
		}
		telJobScenes.Inc()
	}()
	body, err := scene.Encode(sc)
	if err != nil {
		res.Error = err.Error()
		return
	}
	hdr := make(http.Header)
	hdr.Set("Content-Type", "application/json")
	hardFails := 0
	backoffs := 0
	for {
		select {
		case <-g.quit:
			res.Error = "gateway shut down mid-job"
			return
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), g.cfg.RequestTimeout)
		cands := g.spread()
		resp, err := g.attempt(ctx, cands[0], http.MethodPost, "/v1/score", body, hdr)
		if err != nil {
			cancel()
			hardFails++
			if hardFails >= 2*g.cfg.MaxAttempts {
				res.Error = fmt.Sprintf("scene unscorable after %d attempts: %v", hardFails, err)
				return
			}
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var sr server.ScoreResponse
			err := json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			cancel()
			if err != nil {
				res.Error = fmt.Sprintf("decode score: %v", err)
				return
			}
			res.Combined = sr.Combined
			res.MostThreatening = sr.MostThreatening
			for _, a := range sr.Actors {
				res.Actors = append(res.Actors, scene.JobActorScore{ID: a.ID, STI: a.STI})
			}
			return
		case http.StatusTooManyRequests:
			// Honour the backend's own estimate of when capacity returns.
			ra := retryAfter(resp.Header.Get("Retry-After"), g.cfg.JobRetryAfterCap)
			drain(resp)
			resp.Body.Close()
			cancel()
			telJobThrottled.Inc()
			backoffs++
			if backoffs > 60 {
				res.Error = "backend saturated: gave up after 60 backoff waits"
				return
			}
			select {
			case <-time.After(ra):
			case <-g.quit:
				res.Error = "gateway shut down mid-job"
				return
			}
		default:
			var e errorResponse
			json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e)
			drain(resp)
			resp.Body.Close()
			cancel()
			if resp.StatusCode < http.StatusInternalServerError {
				// 4xx is deterministic: retrying the same scene cannot help.
				res.Error = fmt.Sprintf("backend rejected scene (%d): %s", resp.StatusCode, e.Error)
				return
			}
			hardFails++
			if hardFails >= 2*g.cfg.MaxAttempts {
				res.Error = fmt.Sprintf("backend error (%d): %s", resp.StatusCode, e.Error)
				return
			}
		}
	}
}

// retryAfter parses a Retry-After seconds value, clamped to (0, cap].
func retryAfter(h string, cap time.Duration) time.Duration {
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 1 {
		return min(time.Second, cap)
	}
	d := time.Duration(secs) * time.Second
	return min(d, cap)
}
