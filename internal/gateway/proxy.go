package gateway

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry/trace"
)

// newID mints a short random identifier (gateway-assigned session and job
// IDs). 8 random bytes — collision across a fleet's lifetime is negligible
// and the backend answers 409 if one ever happens.
func newID(prefix string) string {
	var b [8]byte
	rand.Read(b[:])
	return prefix + hex.EncodeToString(b[:])
}

// attempt proxies one request body to one backend and reports passive
// health evidence: a connection error (not caller cancellation) counts
// toward ejection exactly like a failed probe, so a SIGKILL'd backend is
// ejected by its own failing traffic within FailThreshold requests instead
// of waiting out a probe period.
func (g *Gateway) attempt(ctx context.Context, b *backend, method, pathAndQuery string, body []byte, hdr http.Header) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	for _, k := range []string{"Content-Type", "X-Trace-Id", "Last-Event-ID", "Accept"} {
		if v := hdr.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	b.telRequests.Inc()
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	resp, err := g.proxyClient.Do(req)
	if err != nil {
		b.telErrors.Inc()
		if ctx.Err() == nil {
			if b.noteFailure(g.cfg.FailThreshold) {
				g.logf("gateway: backend %s ejected (request error: %v)", b.addr, err)
			}
			g.updateHealthGauge()
		}
		return nil, err
	}
	// Contact succeeded: clear passive failure evidence. (Re-admission of an
	// ejected backend still requires consecutive clean probes.)
	b.consecFail.Store(0)
	if resp.StatusCode >= http.StatusInternalServerError {
		b.telErrors.Inc()
	}
	return resp, nil
}

// armResult is one retry/hedge arm's outcome inside proxyIdempotent.
type armResult struct {
	resp   *http.Response
	b      *backend
	err    error
	arm    int
	hedged bool
}

// proxyIdempotent forwards an idempotent scoring request with retries and
// (optionally) a hedge:
//
//   - a connection error or 5xx retries on the next candidate backend,
//     spending one token from the shared retry budget per extra attempt so
//     a brownout cannot amplify load;
//   - while the first attempt is still pending past the p95-derived hedge
//     delay, a duplicate is raced on the next backend; first acceptable
//     response wins and the loser's context is cancelled;
//   - a 429 is deliberate backpressure, not a failure: it passes straight
//     through with its Retry-After and is never retried or hedged against
//     (retrying elsewhere would defeat the backend's flow control).
//
// The winning response and its backend are returned; the caller owns the
// body. Exhausted candidates or budget yield a nil response.
func (g *Gateway) proxyIdempotent(r *http.Request, body []byte, cands []*backend) (*http.Response, *backend, error) {
	g.budgetReqs.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()

	maxArms := min(g.cfg.MaxAttempts, len(cands))
	results := make(chan armResult, maxArms)
	cancels := make([]context.CancelFunc, 0, maxArms)
	next, inFlight := 0, 0
	launch := func(hedged bool) {
		b := cands[next]
		next++
		actx, acancel := context.WithCancel(ctx)
		arm := len(cancels)
		cancels = append(cancels, acancel)
		inFlight++
		if hedged {
			telHedges.Inc()
			b.telHedges.Inc()
		}
		go func() {
			resp, err := g.attempt(actx, b, r.Method, r.URL.RequestURI(), body, r.Header)
			results <- armResult{resp: resp, b: b, err: err, arm: arm, hedged: hedged}
		}()
	}
	launch(false)

	// One hedge per request, and only while a second backend is healthy —
	// duplicating onto a degraded fleet makes tail latency worse, not
	// better.
	var hedgeC <-chan time.Time
	if !g.cfg.HedgeOff && next < maxArms && g.healthyCount() >= 2 {
		t := time.NewTimer(g.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	for inFlight > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			if next < maxArms && g.retryAllowed() {
				launch(true)
			}
		case ar := <-results:
			inFlight--
			if ar.err == nil && ar.resp.StatusCode < http.StatusInternalServerError {
				// Winner (200, 4xx, and 429 all pass through). Cancel the
				// losing arms and reap them off the channel in the
				// background so their connections are reusable.
				if ar.hedged {
					telHedgeWins.Inc()
				}
				for i, c := range cancels {
					if i != ar.arm {
						c()
					}
				}
				if inFlight > 0 {
					go func(n int) {
						for ; n > 0; n-- {
							if lr := <-results; lr.resp != nil {
								drain(lr.resp)
								lr.resp.Body.Close()
							}
						}
					}(inFlight)
				}
				return ar.resp, ar.b, nil
			}
			if ar.err != nil {
				lastErr = ar.err
			} else {
				lastErr = fmt.Errorf("backend %s answered %d", ar.b.addr, ar.resp.StatusCode)
				drain(ar.resp)
				ar.resp.Body.Close()
			}
			if inFlight == 0 && next < maxArms && ctx.Err() == nil && g.retryAllowed() {
				telRetries.Inc()
				launch(false)
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no backend available")
	}
	return nil, nil, lastErr
}

// relay copies a backend response to the client: status, content headers,
// backend flow-control headers, and an X-Backend marker naming the serving
// backend (the loadgen's stickiness assertion reads it). X-Trace-Id is NOT
// copied — the gateway set its own (identical) ID before proxying.
func relay(w http.ResponseWriter, resp *http.Response, b *backend) {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set("X-Backend", b.addr)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	resp.Body.Close()
}

func (g *Gateway) badGateway(w http.ResponseWriter, r *http.Request, err error) {
	telProxyErrors.Inc()
	telBadGateway.Inc()
	trace.FromContext(r.Context()).Annotate("proxy_error", err.Error())
	writeJSON(w, http.StatusBadGateway, errorResponse{Error: fmt.Sprintf("no backend could serve the request: %v", err)})
}

// readBody slurps a bounded request body, answering 400/413 itself.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("read body: %v", err)})
		return nil, false
	}
	return body, true
}

// handleScore and handleScoreBatch spread stateless scoring over the whole
// healthy fleet with retry + hedging.
func (g *Gateway) handleScore(w http.ResponseWriter, r *http.Request) {
	g.proxyScore(w, r)
}

func (g *Gateway) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	g.proxyScore(w, r)
}

func (g *Gateway) proxyScore(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r, g.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	start := time.Now()
	resp, b, err := g.proxyIdempotent(r, body, g.spread())
	if err != nil {
		g.badGateway(w, r, err)
		return
	}
	// Only successful scorings feed the hedge-delay estimate: a fast 429 is
	// not evidence that scoring got faster.
	if resp.StatusCode == http.StatusOK {
		g.lat.note(time.Since(start).Seconds())
	}
	trace.FromContext(r.Context()).Annotate("backend", b.addr)
	relay(w, resp, b)
}

// handleSessionCreate names the session (unless the client did) and plants
// it on the ring owner of that name, so every later request for the ID
// routes to the same backend with no gateway-side session table.
func (g *Gateway) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r, g.cfg.MaxBodyBytes)
	if !ok {
		return
	}
	var req server.SessionCreateRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decode session request: %v", err)})
			return
		}
	}
	if req.ID == "" {
		req.ID = newID("g")
	}
	fwd, err := json.Marshal(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	r.Header.Set("Content-Type", "application/json")
	resp, b, err := g.proxyIdempotent(r, fwd, g.healthyAfter(req.ID))
	if err != nil {
		g.badGateway(w, r, err)
		return
	}
	trace.FromContext(r.Context()).Annotate("session_id", req.ID)
	trace.FromContext(r.Context()).Annotate("backend", b.addr)
	relay(w, resp, b)
}

// handleSessionProxy forwards observe/risk/delete to the session's owner
// backend (ring successor order, healthy first). Observations mutate the
// session, so only connection errors retry — a duplicated sample is
// harmless, a conn error means the request may not have arrived at all.
// A 404 from the owner after a failover is healed by resurrection: the
// gateway re-creates the session under the same ID on the current owner
// and replays the request once. Episode history before the failover is
// lost (it died with the backend) but stickiness and liveness resume.
func (g *Gateway) handleSessionProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var body []byte
	if r.Method == http.MethodPost {
		var ok bool
		if body, ok = g.readBody(w, r, g.cfg.MaxBodyBytes); !ok {
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	g.budgetReqs.Add(1)
	cands := g.healthyAfter(id)
	resurrected := false
	var lastErr error
	for i := 0; i < len(cands) && i < g.cfg.MaxAttempts; i++ {
		b := cands[i]
		resp, err := g.attempt(ctx, b, r.Method, r.URL.RequestURI(), body, r.Header)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil || !g.retryAllowed() {
				break
			}
			telRetries.Inc()
			continue
		}
		if resp.StatusCode == http.StatusNotFound && !resurrected && r.Method != http.MethodDelete {
			drain(resp)
			resp.Body.Close()
			if g.resurrect(ctx, b, id, r.Header) {
				resurrected = true
				i-- // replay on the same backend
				continue
			}
		}
		trace.FromContext(r.Context()).Annotate("backend", b.addr)
		relay(w, resp, b)
		return
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no backend available")
	}
	g.badGateway(w, r, lastErr)
}

// resurrect re-creates session id on backend b (used after a failover
// moved the session's ring ownership to a backend that never saw it).
// Both 201 (created) and 409 (another request resurrected it first) count
// as success.
func (g *Gateway) resurrect(ctx context.Context, b *backend, id string, hdr http.Header) bool {
	body, err := json.Marshal(server.SessionCreateRequest{ID: id})
	if err != nil {
		return false
	}
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	if v := hdr.Get("X-Trace-Id"); v != "" {
		h.Set("X-Trace-Id", v)
	}
	resp, err := g.attempt(ctx, b, http.MethodPost, "/v1/sessions", body, h)
	if err != nil {
		return false
	}
	drain(resp)
	resp.Body.Close()
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusConflict {
		telResurrect.Inc()
		g.logf("gateway: session %s resurrected on %s", id, b.addr)
		return true
	}
	return false
}

// handleSessionStream proxies the owner backend's SSE risk stream: bytes
// are relayed chunk by chunk with a flush per read, so heartbeats and
// events reach the client as they happen. Last-Event-ID (header or query)
// passes through, which makes resume-after-gateway-restart work exactly
// like resume-after-client-drop. On a post-failover 404 the session is
// resurrected first, so the stream attaches to the new owner (the resumed
// cursor is from the lost history — the backend replays what it has).
func (g *Gateway) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported"})
		return
	}
	id := r.PathValue("id")
	// The stream lives until the client leaves or the gateway drains.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-g.quit:
			cancel()
		case <-stop:
		}
	}()

	cands := g.healthyAfter(id)
	resurrected := false
	for i := 0; i < len(cands) && i < g.cfg.MaxAttempts; i++ {
		b := cands[i]
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+r.URL.RequestURI(), nil)
		if err != nil {
			break
		}
		for _, k := range []string{"X-Trace-Id", "Last-Event-ID", "Accept"} {
			if v := r.Header.Get(k); v != "" {
				req.Header.Set(k, v)
			}
		}
		b.telRequests.Inc()
		resp, err := g.streamClient.Do(req)
		if err != nil {
			b.telErrors.Inc()
			if ctx.Err() == nil {
				if b.noteFailure(g.cfg.FailThreshold) {
					g.logf("gateway: backend %s ejected (stream error: %v)", b.addr, err)
				}
				g.updateHealthGauge()
			}
			continue
		}
		if resp.StatusCode == http.StatusNotFound && !resurrected {
			drain(resp)
			resp.Body.Close()
			if g.resurrect(ctx, b, id, r.Header) {
				resurrected = true
				i--
				continue
			}
		}
		if resp.StatusCode != http.StatusOK {
			relay(w, resp, b)
			return
		}
		telStreams.Set(float64(g.activeStreams.Add(1)))
		defer func() { telStreams.Set(float64(g.activeStreams.Add(-1))) }()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.Header().Set("Cache-Control", "no-store")
		w.Header().Set("X-Backend", b.addr)
		w.WriteHeader(http.StatusOK)
		flusher.Flush()
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					break
				}
				flusher.Flush()
			}
			if rerr != nil {
				break
			}
		}
		resp.Body.Close()
		return
	}
	g.badGateway(w, r, fmt.Errorf("stream: no backend available"))
}
