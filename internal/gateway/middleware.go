package gateway

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

type errorResponse struct {
	Error string `json:"error"`
}

// statusWriter captures the proxied status for wide events, forwarding
// Flush so the SSE proxy can stream through the envelope.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traced wraps a gateway endpoint with the same observability envelope as
// the backends: X-Trace-Id ingested (or minted) and echoed, a Recorder in
// the context, the proxy latency histogram with the trace ID as exemplar,
// and — when wide is set — one wide event in the flight recorder. The same
// trace ID is forwarded to the chosen backend on every proxied hop, so a
// gateway /debug/requests entry and the backend's entry for the same
// request share an ID and can be joined end to end.
func (g *Gateway) traced(route string, wide bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		telRequests.Inc()
		id, honoured := trace.ParseOrNew(r.Header.Get("X-Trace-Id"))
		rec := trace.NewRecorder(id)
		reqID := rec.RootSpanID().String()
		w.Header().Set("X-Trace-Id", id.String())
		w.Header().Set("X-Request-Id", reqID)
		if honoured {
			rec.Annotate("trace_id_source", "caller")
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(trace.NewContext(r.Context(), rec)))
		d := time.Since(start)
		telProxySecs.ObserveExemplar(d.Seconds(), id.String())
		if !wide {
			return
		}
		ev := rec.WideEvent(route, reqID, sw.status, d)
		g.flight.Add(ev)
		telemetry.Emit("wide_event", ev.Fields())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// DebugRequestsResponse answers /debug/requests, mirroring the backend's
// endpoint of the same name (shared tooling works against either tier).
type DebugRequestsResponse struct {
	Retained int               `json:"retained"`
	Requests []trace.WideEvent `json:"requests"`
}

func (g *Gateway) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	resp := DebugRequestsResponse{Retained: g.flight.Len()}
	if tid := r.URL.Query().Get("trace_id"); tid != "" {
		resp.Requests = g.flight.Find(tid)
		if len(resp.Requests) == 0 {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "trace_id not in flight recorder (evicted or never seen)"})
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	limit := 32
	if q := r.URL.Query().Get("limit"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "limit must be a positive integer"})
			return
		}
		limit = v
	}
	resp.Requests = g.flight.Recent(limit)
	if resp.Requests == nil {
		resp.Requests = []trace.WideEvent{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// DebugBackendsResponse answers /debug/backends: the live fleet view.
type DebugBackendsResponse struct {
	Healthy  int             `json:"healthy"`
	Backends []BackendStatus `json:"backends"`
}

func (g *Gateway) handleDebugBackends(w http.ResponseWriter, _ *http.Request) {
	resp := DebugBackendsResponse{Healthy: g.healthyCount()}
	for _, b := range g.backends {
		resp.Backends = append(resp.Backends, b.status())
	}
	sort.Slice(resp.Backends, func(i, j int) bool { return resp.Backends[i].Index < resp.Backends[j].Index })
	writeJSON(w, http.StatusOK, resp)
}
