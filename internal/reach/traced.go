package reach

import (
	"repro/internal/roadmap"
	"repro/internal/telemetry/trace"
	"repro/internal/vehicle"
)

// ComputeCounterfactualsTraced is ComputeCounterfactuals wrapped in a
// "reach.shared_expansion" span on rec, annotated with the expansion's
// shape (worlds carried, mask words, states expanded). rec may be nil, in
// which case the cost over the plain call is one nil check — the hot path
// itself is untouched, so dense-scene benchmarks are unaffected.
func ComputeCounterfactualsTraced(rec *trace.Recorder, m roadmap.Map, obs *Obstacles, ego vehicle.State, cfg Config, scr *Scratch) SharedTubes {
	sp := rec.StartSpan("reach.shared_expansion")
	sh := ComputeCounterfactuals(m, obs, ego, cfg, scr)
	if sp != nil {
		sp.Annotate("states", sh.States).
			Annotate("represented", sh.Represented).
			Annotate("mask_words", sh.MaskWords).
			End()
	}
	return sh
}

// ComputeCounterfactualsWarmTraced is ComputeCounterfactualsWarm wrapped in
// the same "reach.shared_expansion" span, additionally annotated with the
// warm-start outcome (hit, reused/invalidated verdict counts).
func ComputeCounterfactualsWarmTraced(rec *trace.Recorder, m roadmap.Map, obs *Obstacles, ego vehicle.State, cfg Config, scr *Scratch, ws *WarmState) (SharedTubes, WarmStats) {
	sp := rec.StartSpan("reach.shared_expansion")
	sh, stats := ComputeCounterfactualsWarm(m, obs, ego, cfg, scr, ws)
	if sp != nil {
		sp.Annotate("states", sh.States).
			Annotate("represented", sh.Represented).
			Annotate("mask_words", sh.MaskWords).
			Annotate("warm_hit", stats.Hit).
			Annotate("warm_reused", stats.Reused).
			Annotate("warm_invalidated", stats.Invalidated).
			End()
	}
	return sh, stats
}
