package reach

import (
	"repro/internal/actor"
	"repro/internal/geom"
)

// Obstacles holds the predicted footprints of every actor at every time
// slice of a reach-tube computation, organised per actor so that the
// counterfactual queries of STI (remove one actor, remove all) are cheap.
type Obstacles struct {
	// boxes[i][s] is actor i's footprint during slice s, prepared once so
	// the inner SAT tests of every tube computation reuse the cached axes,
	// bounding radius and AABB.
	boxes     [][]geom.PreparedBox
	numSlices int
}

// BuildObstacles resamples each actor's trajectory at the reach-tube slice
// interval and precomputes footprints. trajs[i] must correspond to
// actors[i]; trajectories sampled at a different interval are resampled by
// nearest-time lookup.
func BuildObstacles(actors []*actor.Actor, trajs []actor.Trajectory, cfg Config) *Obstacles {
	n := cfg.NumSlices()
	o := &Obstacles{
		boxes:     make([][]geom.PreparedBox, len(actors)),
		numSlices: n,
	}
	for i, a := range actors {
		tr := trajs[i]
		if tr.Dt != cfg.SliceDt {
			tr = tr.Resample(cfg.SliceDt, n)
		}
		bs := make([]geom.PreparedBox, n+1)
		for s := 0; s <= n; s++ {
			bs[s] = a.FootprintAt(tr.StateAt(s)).Prepare()
		}
		o.boxes[i] = bs
	}
	return o
}

// NumActors returns the number of actors in the set.
func (o *Obstacles) NumActors() int { return len(o.boxes) }

// Collide returns a CollisionFunc that tests against every actor.
func (o *Obstacles) Collide() CollisionFunc { return o.collideSkipping(-1) }

// CollideWithout returns a CollisionFunc for the counterfactual world with
// actor index i removed (the paper's X^{/i}).
func (o *Obstacles) CollideWithout(i int) CollisionFunc { return o.collideSkipping(i) }

func (o *Obstacles) collideSkipping(skip int) CollisionFunc {
	return func(b *geom.PreparedBox, slice int) bool {
		if slice > o.numSlices {
			slice = o.numSlices
		}
		for i, bs := range o.boxes {
			if i == skip {
				continue
			}
			if b.Intersects(&bs[slice]) {
				return true
			}
		}
		return false
	}
}

// CollideRecording returns a CollisionFunc over every actor that
// additionally marks exclusive blockers: whenever a queried footprint
// intersects exactly one actor, that actor's entry in marks is set. An
// actor left unmarked after a full tube computation never changed a single
// collision verdict on its own, so removing it cannot alter the
// (deterministic) expansion: its counterfactual tube T^{/i} equals the base
// tube T exactly. sti.Evaluator uses this to elide counterfactual
// computations for non-blocking actors.
//
// The test stops early once two distinct actors intersect (the verdict is
// true and exclusivity is impossible), so the overhead compared to Collide
// is confined to footprints already in contact.
func (o *Obstacles) CollideRecording(marks []bool) CollisionFunc {
	return func(b *geom.PreparedBox, slice int) bool {
		if slice > o.numSlices {
			slice = o.numSlices
		}
		hit := -1
		for i := range o.boxes {
			if b.Intersects(&o.boxes[i][slice]) {
				if hit >= 0 {
					return true // second blocker: no exclusive mark
				}
				hit = i
			}
		}
		if hit >= 0 {
			marks[hit] = true
			return true
		}
		return false
	}
}

// maskHits scans the actors whose slice-s footprint collides with b and
// strikes each blocker's victims from the possible-world mask: a hit by
// actor i removes every world actor i is present in, leaving at most world
// /i (bit 1+i). The scan stops once no world survives — by then every
// world has either pruned the footprint or never examined it. Single-word
// (≤63 actors) variant; maskHitsSeg is the segmented analogue.
func (o *Obstacles) maskHits(b *geom.PreparedBox, slice int, possible uint64) uint64 {
	if slice > o.numSlices {
		slice = o.numSlices
	}
	for i := range o.boxes {
		if b.Intersects(&o.boxes[i][slice]) {
			possible &= uint64(1) << uint(1+i)
			if possible == 0 {
				return 0
			}
		}
	}
	return possible
}

// strikeOnly applies a blocker's world strike to a segmented mask: keep
// only world bit `bit` (if it was still possible), zero everything else.
// This is the word-indexed spelling of the single-word
// `possible &= 1 << bit`; it reports whether any world survives.
func strikeOnly(possible []uint64, bit int) bool {
	w, off := bit>>6, uint(bit&63)
	keep := possible[w] & (uint64(1) << off)
	clear(possible)
	possible[w] = keep
	return keep != 0
}

// maskHitsSeg is maskHits over a segmented possible-world mask, mutated in
// place. It reports whether any world survives the scan.
func (o *Obstacles) maskHitsSeg(b *geom.PreparedBox, slice int, possible []uint64) bool {
	if slice > o.numSlices {
		slice = o.numSlices
	}
	for i := range o.boxes {
		if b.Intersects(&o.boxes[i][slice]) {
			if !strikeOnly(possible, 1+i) {
				return false
			}
		}
	}
	return true
}

// activeInto appends to act the actors whose footprint during slice s or
// s+1 could intersect an ego footprint inside the window [min, max], judged
// by AABB overlap. The shared expansion derives the window from the
// frontier's swept envelope each slice, so the per-candidate collision scan
// (maskHitsActive) only visits actors near the tube instead of all of them.
// The filter is conservative: a rejected actor's AABB is disjoint from every
// footprint the slice can produce, so it cannot change any verdict.
func (o *Obstacles) activeInto(act []int32, min, max geom.Vec2, slice int) []int32 {
	s0 := slice
	if s0 > o.numSlices {
		s0 = o.numSlices
	}
	s1 := slice + 1
	if s1 > o.numSlices {
		s1 = o.numSlices
	}
	for i := range o.boxes {
		a := &o.boxes[i][s0]
		if a.Min.X <= max.X && min.X <= a.Max.X && a.Min.Y <= max.Y && min.Y <= a.Max.Y {
			act = append(act, int32(i))
			continue
		}
		a = &o.boxes[i][s1]
		if a.Min.X <= max.X && min.X <= a.Max.X && a.Min.Y <= max.Y && min.Y <= a.Max.Y {
			act = append(act, int32(i))
		}
	}
	return act
}

// maskHitsPath is the per-footprint collision scan of the shared
// expansion's path sweep: one pass over the broad-phase survivors in act,
// testing each actor's slice-s and slice-(s+1) footprints (the same pair
// pathOK tests) with an inlined AABB rejection before the SAT call. Whether
// an actor hits at s, at s+1, or both, the world-mask effect is the same
// single intersection (&= its own world bit), so folding the two scans into
// one preserves every per-world verdict. Single-word variant;
// maskHitsPathSeg is the segmented analogue.
func (o *Obstacles) maskHitsPath(b *geom.PreparedBox, slice int, possible uint64, act []int32) uint64 {
	s0 := slice
	if s0 > o.numSlices {
		s0 = o.numSlices
	}
	s1 := slice + 1
	if s1 > o.numSlices {
		s1 = o.numSlices
	}
	for _, i := range act {
		bs := o.boxes[i]
		a := &bs[s0]
		hit := b.Min.X <= a.Max.X && a.Min.X <= b.Max.X &&
			b.Min.Y <= a.Max.Y && a.Min.Y <= b.Max.Y && b.Intersects(a)
		if !hit {
			a = &bs[s1]
			hit = b.Min.X <= a.Max.X && a.Min.X <= b.Max.X &&
				b.Min.Y <= a.Max.Y && a.Min.Y <= b.Max.Y && b.Intersects(a)
		}
		if hit {
			possible &= uint64(1) << uint(1+i)
			if possible == 0 {
				return 0
			}
		}
	}
	return possible
}

// maskHitsPathSeg is maskHitsPath over a segmented possible-world mask,
// mutated in place. It reports whether any world survives the sweep.
func (o *Obstacles) maskHitsPathSeg(b *geom.PreparedBox, slice int, possible []uint64, act []int32) bool {
	s0 := slice
	if s0 > o.numSlices {
		s0 = o.numSlices
	}
	s1 := slice + 1
	if s1 > o.numSlices {
		s1 = o.numSlices
	}
	for _, i := range act {
		bs := o.boxes[i]
		a := &bs[s0]
		hit := b.Min.X <= a.Max.X && a.Min.X <= b.Max.X &&
			b.Min.Y <= a.Max.Y && a.Min.Y <= b.Max.Y && b.Intersects(a)
		if !hit {
			a = &bs[s1]
			hit = b.Min.X <= a.Max.X && a.Min.X <= b.Max.X &&
				b.Min.Y <= a.Max.Y && a.Min.Y <= b.Max.Y && b.Intersects(a)
		}
		if hit {
			if !strikeOnly(possible, 1+int(i)) {
				return false
			}
		}
	}
	return true
}

// BoxAt returns actor i's footprint at slice s (clamped to the horizon).
func (o *Obstacles) BoxAt(i, s int) geom.Box {
	if s > o.numSlices {
		s = o.numSlices
	}
	return o.boxes[i][s].Box
}
