package reach

import (
	"repro/internal/actor"
	"repro/internal/geom"
)

// Obstacles holds the predicted footprints of every actor at every time
// slice of a reach-tube computation, organised per actor so that the
// counterfactual queries of STI (remove one actor, remove all) are cheap.
type Obstacles struct {
	// boxes[i][s] is actor i's footprint during slice s, prepared once so
	// the inner SAT tests of every tube computation reuse the cached axes,
	// bounding radius and AABB.
	boxes     [][]geom.PreparedBox
	numSlices int
}

// BuildObstacles resamples each actor's trajectory at the reach-tube slice
// interval and precomputes footprints. trajs[i] must correspond to
// actors[i]; trajectories sampled at a different interval are resampled by
// nearest-time lookup.
func BuildObstacles(actors []*actor.Actor, trajs []actor.Trajectory, cfg Config) *Obstacles {
	n := cfg.NumSlices()
	o := &Obstacles{
		boxes:     make([][]geom.PreparedBox, len(actors)),
		numSlices: n,
	}
	for i, a := range actors {
		tr := trajs[i]
		if tr.Dt != cfg.SliceDt {
			tr = tr.Resample(cfg.SliceDt, n)
		}
		bs := make([]geom.PreparedBox, n+1)
		for s := 0; s <= n; s++ {
			bs[s] = a.FootprintAt(tr.StateAt(s)).Prepare()
		}
		o.boxes[i] = bs
	}
	return o
}

// NumActors returns the number of actors in the set.
func (o *Obstacles) NumActors() int { return len(o.boxes) }

// Collide returns a CollisionFunc that tests against every actor.
func (o *Obstacles) Collide() CollisionFunc { return o.collideSkipping(-1) }

// CollideWithout returns a CollisionFunc for the counterfactual world with
// actor index i removed (the paper's X^{/i}).
func (o *Obstacles) CollideWithout(i int) CollisionFunc { return o.collideSkipping(i) }

func (o *Obstacles) collideSkipping(skip int) CollisionFunc {
	return func(b *geom.PreparedBox, slice int) bool {
		if slice > o.numSlices {
			slice = o.numSlices
		}
		for i, bs := range o.boxes {
			if i == skip {
				continue
			}
			if b.Intersects(&bs[slice]) {
				return true
			}
		}
		return false
	}
}

// CollideRecording returns a CollisionFunc over every actor that
// additionally marks exclusive blockers: whenever a queried footprint
// intersects exactly one actor, that actor's entry in marks is set. An
// actor left unmarked after a full tube computation never changed a single
// collision verdict on its own, so removing it cannot alter the
// (deterministic) expansion: its counterfactual tube T^{/i} equals the base
// tube T exactly. sti.Evaluator uses this to elide counterfactual
// computations for non-blocking actors.
//
// The test stops early once two distinct actors intersect (the verdict is
// true and exclusivity is impossible), so the overhead compared to Collide
// is confined to footprints already in contact.
func (o *Obstacles) CollideRecording(marks []bool) CollisionFunc {
	return func(b *geom.PreparedBox, slice int) bool {
		if slice > o.numSlices {
			slice = o.numSlices
		}
		hit := -1
		for i := range o.boxes {
			if b.Intersects(&o.boxes[i][slice]) {
				if hit >= 0 {
					return true // second blocker: no exclusive mark
				}
				hit = i
			}
		}
		if hit >= 0 {
			marks[hit] = true
			return true
		}
		return false
	}
}

// BoxAt returns actor i's footprint at slice s (clamped to the horizon).
func (o *Obstacles) BoxAt(i, s int) geom.Box {
	if s > o.numSlices {
		s = o.numSlices
	}
	return o.boxes[i][s].Box
}
