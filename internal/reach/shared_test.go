package reach

import (
	"math/rand"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

// randomScene builds a scene with n actors scattered around the test road,
// biased towards the ego's lane so a good fraction actually block paths.
// The scatter span grows with n so crowd-scale scenes (64+) stay plausible
// traffic rather than a single impenetrable wall at the origin.
func randomScene(rng *rand.Rand, n int) (vehicle.State, []*actor.Actor) {
	ego := vehicle.State{
		Pos:   geom.V(0, 1.0+rng.Float64()*5),
		Speed: rng.Float64() * 20,
	}
	span := 60 + 3*float64(n)
	actors := make([]*actor.Actor, n)
	for i := range actors {
		actors[i] = actor.NewVehicle(i+1, vehicle.State{
			Pos:     geom.V(-20+rng.Float64()*span, 0.8+rng.Float64()*5.4),
			Speed:   rng.Float64() * 15,
			Heading: (rng.Float64() - 0.5) * 0.4,
		})
	}
	return ego, actors
}

// requireSharedMatchesLegacy checks every volume ComputeCounterfactuals
// reports against the legacy per-world tubes, bit for bit, plus the result
// metadata: every actor is represented and the mask width matches the
// world count.
func requireSharedMatchesLegacy(t *testing.T, tag string, m roadmap.Map, ego vehicle.State, actors []*actor.Actor, cfg Config) {
	t.Helper()
	trajs := actor.PredictAll(actors, cfg.NumSlices(), cfg.SliceDt)
	obs := BuildObstacles(actors, trajs, cfg)
	sh := ComputeCounterfactuals(m, obs, ego, cfg, nil)

	if sh.Represented != len(actors) {
		t.Errorf("%s: represented %d, want every actor (%d)", tag, sh.Represented, len(actors))
	}
	if want := (1 + len(actors) + 63) / 64; sh.MaskWords != want {
		t.Errorf("%s: mask words %d, want %d", tag, sh.MaskWords, want)
	}
	base := Compute(m, obs.Collide(), ego, cfg)
	if sh.BaseVolume != base.Volume {
		t.Errorf("%s: base volume %v, legacy %v", tag, sh.BaseVolume, base.Volume)
	}
	for i := range actors {
		wo := Compute(m, obs.CollideWithout(i), ego, cfg)
		if sh.WithoutVolume[i] != wo.Volume {
			t.Errorf("%s: world /%d volume %v, legacy %v", tag, i, sh.WithoutVolume[i], wo.Volume)
		}
	}
}

// The core differential property: on random scenes every per-world volume
// from the single shared expansion equals the corresponding legacy tube
// exactly — not within tolerance.
func TestSharedMatchesLegacyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := DefaultConfig()
	road := testRoad()
	for iter := 0; iter < 30; iter++ {
		ego, actors := randomScene(rng, 1+rng.Intn(8))
		requireSharedMatchesLegacy(t, "random", road, ego, actors, cfg)
	}
}

// Tiny MaxStates forces the per-slice cap to bite at different points in
// different worlds — the hardest part of the replay argument (DESIGN.md §8).
func TestSharedMatchesLegacyUnderCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	road := testRoad()
	for _, maxStates := range []int{1, 2, 3, 8, 40} {
		cfg := DefaultConfig()
		cfg.MaxStates = maxStates
		for iter := 0; iter < 12; iter++ {
			ego, actors := randomScene(rng, 2+rng.Intn(5))
			requireSharedMatchesLegacy(t, "cap", road, ego, actors, cfg)
		}
	}
}

// Coarse ε-dedup makes claim ordering decisive: many candidates share keys,
// so any deviation from the legacy per-world visit order shows up here.
func TestSharedMatchesLegacyCoarseDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	road := testRoad()
	cfg := DefaultConfig()
	cfg.PosEps = 3.0
	cfg.HeadingEps = 0.5
	cfg.SpeedEps = 4.0
	for iter := 0; iter < 12; iter++ {
		ego, actors := randomScene(rng, 2+rng.Intn(5))
		requireSharedMatchesLegacy(t, "coarse", road, ego, actors, cfg)
	}
}

// A blocked root (ego starting in contact) must zero the affected worlds
// before any expansion happens, exactly like the legacy slice-0 check.
func TestSharedRootBlocked(t *testing.T) {
	cfg := DefaultConfig()
	road := testRoad()
	ego := egoState(0, 1.75, 10)
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(0.5, 1.75)}), // on top of ego
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(20, 5.25), Speed: 5}),
	}
	requireSharedMatchesLegacy(t, "root-blocked", road, ego, actors, cfg)
}

// Segmented masks: 64+-actor scenes exercise word 1 and beyond of the
// per-state mask (the retired single-word engine capped at 63 actors and
// spilled the rest onto legacy fallback tubes). 64 actors straddle the
// first word boundary (65 worlds), 70 sits inside word 1, and 130 needs
// three words — every world must still be bitwise-legacy.
func TestSharedMatchesLegacySegmented(t *testing.T) {
	if testing.Short() {
		t.Skip("64-130-actor differential scenes")
	}
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig()
	road := testRoad()
	for _, n := range []int{64, 70, 130} {
		ego, actors := randomScene(rng, n)
		requireSharedMatchesLegacy(t, "segmented", road, ego, actors, cfg)
	}
}

// The per-slice MaxStates cap replay must hold across word boundaries too:
// different worlds of different words cap at different candidates.
func TestSharedMatchesLegacySegmentedUnderCap(t *testing.T) {
	if testing.Short() {
		t.Skip("capped 80-actor differential scenes")
	}
	rng := rand.New(rand.NewSource(19))
	road := testRoad()
	for _, maxStates := range []int{2, 8, 40} {
		cfg := DefaultConfig()
		cfg.MaxStates = maxStates
		ego, actors := randomScene(rng, 80)
		requireSharedMatchesLegacy(t, "segmented-cap", road, ego, actors, cfg)
	}
}

// The word-indexed loops must agree with the scalar fast path even when a
// scene fits one word: force extra mask words and compare against the
// dispatcher's single-word result bitwise. This keeps the segmented path
// covered by the cheap small-scene suites, not only the 64+ ones.
func TestSharedSegmentedForcedWords(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := DefaultConfig()
	road := testRoad()
	scr := NewScratch()
	for iter := 0; iter < 8; iter++ {
		n := 1 + rng.Intn(6)
		ego, actors := randomScene(rng, n)
		trajs := actor.PredictAll(actors, cfg.NumSlices(), cfg.SliceDt)
		obs := BuildObstacles(actors, trajs, cfg)
		want := ComputeCounterfactuals(road, obs, ego, cfg, nil)
		if want.MaskWords != 1 {
			t.Fatalf("iter %d: small scene took %d words", iter, want.MaskWords)
		}
		for _, words := range []int{2, 3} {
			got := SharedTubes{
				WithoutVolume: make([]float64, n),
				Represented:   n,
				MaskWords:     words,
			}
			computeSegmented(road, obs, ego, cfg, scr, &got, 1+n, words)
			if got.BaseVolume != want.BaseVolume {
				t.Errorf("iter %d words %d: base %v, single-word %v", iter, words, got.BaseVolume, want.BaseVolume)
			}
			if got.States != want.States {
				t.Errorf("iter %d words %d: states %d, single-word %d", iter, words, got.States, want.States)
			}
			for i := 0; i < n; i++ {
				if got.WithoutVolume[i] != want.WithoutVolume[i] {
					t.Errorf("iter %d words %d world /%d: %v, single-word %v",
						iter, words, i, got.WithoutVolume[i], want.WithoutVolume[i])
				}
			}
		}
	}
}

// Scratch reuse across calls (the serving hot path) must not leak state
// between evaluations, including across changing world counts and mask
// widths — a 70-actor scene between small ones forces the word count to
// grow and shrink on the same scratch.
func TestSharedScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := DefaultConfig()
	road := testRoad()
	scr := NewScratch()
	sizes := []int{3, 7, 70, 5, 66, 2, 70, 4, 130, 6}
	for iter, n := range sizes {
		ego, actors := randomScene(rng, n)
		trajs := actor.PredictAll(actors, cfg.NumSlices(), cfg.SliceDt)
		obs := BuildObstacles(actors, trajs, cfg)
		fresh := ComputeCounterfactuals(road, obs, ego, cfg, nil)
		reused := ComputeCounterfactuals(road, obs, ego, cfg, scr)
		if fresh.BaseVolume != reused.BaseVolume {
			t.Fatalf("iter %d (n=%d): base %v vs %v with reused scratch", iter, n, fresh.BaseVolume, reused.BaseVolume)
		}
		for i := range fresh.WithoutVolume {
			if fresh.WithoutVolume[i] != reused.WithoutVolume[i] {
				t.Fatalf("iter %d (n=%d) world /%d: %v vs %v with reused scratch",
					iter, n, i, fresh.WithoutVolume[i], reused.WithoutVolume[i])
			}
		}
	}
}
