package reach

import (
	"math/rand"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

// randomScene builds a scene with n actors scattered around the test road,
// biased towards the ego's lane so a good fraction actually block paths.
func randomScene(rng *rand.Rand, n int) (vehicle.State, []*actor.Actor) {
	ego := vehicle.State{
		Pos:   geom.V(0, 1.0+rng.Float64()*5),
		Speed: rng.Float64() * 20,
	}
	actors := make([]*actor.Actor, n)
	for i := range actors {
		actors[i] = actor.NewVehicle(i+1, vehicle.State{
			Pos:     geom.V(-20+rng.Float64()*60, 0.8+rng.Float64()*5.4),
			Speed:   rng.Float64() * 15,
			Heading: (rng.Float64() - 0.5) * 0.4,
		})
	}
	return ego, actors
}

// requireSharedMatchesLegacy checks every volume ComputeCounterfactuals
// reports against the legacy per-world tubes, bit for bit, and that every
// false SpillBlocked entry really certifies T^{/i} = T.
func requireSharedMatchesLegacy(t *testing.T, tag string, m roadmap.Map, ego vehicle.State, actors []*actor.Actor, cfg Config) {
	t.Helper()
	trajs := actor.PredictAll(actors, cfg.NumSlices(), cfg.SliceDt)
	obs := BuildObstacles(actors, trajs, cfg)
	sh := ComputeCounterfactuals(m, obs, ego, cfg, nil)

	base := Compute(m, obs.Collide(), ego, cfg)
	if sh.BaseVolume != base.Volume {
		t.Errorf("%s: base volume %v, legacy %v", tag, sh.BaseVolume, base.Volume)
	}
	for i := 0; i < sh.Represented; i++ {
		wo := Compute(m, obs.CollideWithout(i), ego, cfg)
		if sh.WithoutVolume[i] != wo.Volume {
			t.Errorf("%s: world /%d volume %v, legacy %v", tag, i, sh.WithoutVolume[i], wo.Volume)
		}
	}
	for j, blocked := range sh.SpillBlocked {
		i := sh.Represented + j
		wo := Compute(m, obs.CollideWithout(i), ego, cfg)
		if !blocked && wo.Volume != base.Volume {
			t.Errorf("%s: spill actor %d unblocked but |T^{/i}|=%v != |T|=%v",
				tag, i, wo.Volume, base.Volume)
		}
	}
}

// The core differential property: on random scenes every per-world volume
// from the single shared expansion equals the corresponding legacy tube
// exactly — not within tolerance.
func TestSharedMatchesLegacyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := DefaultConfig()
	road := testRoad()
	for iter := 0; iter < 30; iter++ {
		ego, actors := randomScene(rng, 1+rng.Intn(8))
		requireSharedMatchesLegacy(t, "random", road, ego, actors, cfg)
	}
}

// Tiny MaxStates forces the per-slice cap to bite at different points in
// different worlds — the hardest part of the replay argument (DESIGN.md §8).
func TestSharedMatchesLegacyUnderCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	road := testRoad()
	for _, maxStates := range []int{1, 2, 3, 8, 40} {
		cfg := DefaultConfig()
		cfg.MaxStates = maxStates
		for iter := 0; iter < 12; iter++ {
			ego, actors := randomScene(rng, 2+rng.Intn(5))
			requireSharedMatchesLegacy(t, "cap", road, ego, actors, cfg)
		}
	}
}

// Coarse ε-dedup makes claim ordering decisive: many candidates share keys,
// so any deviation from the legacy per-world visit order shows up here.
func TestSharedMatchesLegacyCoarseDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	road := testRoad()
	cfg := DefaultConfig()
	cfg.PosEps = 3.0
	cfg.HeadingEps = 0.5
	cfg.SpeedEps = 4.0
	for iter := 0; iter < 12; iter++ {
		ego, actors := randomScene(rng, 2+rng.Intn(5))
		requireSharedMatchesLegacy(t, "coarse", road, ego, actors, cfg)
	}
}

// A blocked root (ego starting in contact) must zero the affected worlds
// before any expansion happens, exactly like the legacy slice-0 check.
func TestSharedRootBlocked(t *testing.T) {
	cfg := DefaultConfig()
	road := testRoad()
	ego := egoState(0, 1.75, 10)
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(0.5, 1.75)}), // on top of ego
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(20, 5.25), Speed: 5}),
	}
	requireSharedMatchesLegacy(t, "root-blocked", road, ego, actors, cfg)
}

// Spillover: with more actors than mask bits, represented worlds must stay
// exact and SpillBlocked's false entries must certify tube equality. 70
// actors exceed MaxSharedActors=63.
func TestSharedSpillover(t *testing.T) {
	if testing.Short() {
		t.Skip("70-actor differential scene")
	}
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig()
	road := testRoad()
	ego, actors := randomScene(rng, 70)
	trajs := actor.PredictAll(actors, cfg.NumSlices(), cfg.SliceDt)
	obs := BuildObstacles(actors, trajs, cfg)
	sh := ComputeCounterfactuals(road, obs, ego, cfg, nil)
	if sh.Represented != MaxSharedActors {
		t.Fatalf("represented %d, want %d", sh.Represented, MaxSharedActors)
	}
	if len(sh.SpillBlocked) != 70-MaxSharedActors {
		t.Fatalf("spill slots %d, want %d", len(sh.SpillBlocked), 70-MaxSharedActors)
	}
	requireSharedMatchesLegacy(t, "spill", road, ego, actors, cfg)
}

// Scratch reuse across calls (the serving hot path) must not leak state
// between evaluations, including across changing world counts.
func TestSharedScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := DefaultConfig()
	road := testRoad()
	scr := NewScratch()
	for iter := 0; iter < 10; iter++ {
		ego, actors := randomScene(rng, 1+rng.Intn(8))
		trajs := actor.PredictAll(actors, cfg.NumSlices(), cfg.SliceDt)
		obs := BuildObstacles(actors, trajs, cfg)
		fresh := ComputeCounterfactuals(road, obs, ego, cfg, nil)
		reused := ComputeCounterfactuals(road, obs, ego, cfg, scr)
		if fresh.BaseVolume != reused.BaseVolume {
			t.Fatalf("iter %d: base %v vs %v with reused scratch", iter, fresh.BaseVolume, reused.BaseVolume)
		}
		for i := range fresh.WithoutVolume {
			if fresh.WithoutVolume[i] != reused.WithoutVolume[i] {
				t.Fatalf("iter %d world /%d: %v vs %v with reused scratch",
					iter, i, fresh.WithoutVolume[i], reused.WithoutVolume[i])
			}
		}
	}
}
