package reach

import (
	"math"
	"math/bits"

	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// Telemetry for the shared-expansion engine (flushed once per call, like
// ComputeScratch's counters).
var (
	telSharedComputes = telemetry.NewCounter("reach.shared.computes")
	telSharedStates   = telemetry.NewCounter("reach.shared.states_expanded")
	telSharedWorlds   = telemetry.NewHistogram("reach.shared.worlds", telemetry.LinearBuckets(0, 4, 17))
)

// MaxSharedActors is the number of actors one shared expansion can carry a
// dedicated counterfactual world for: 63 actor worlds plus the base world
// fill the 64-bit state mask. Actors beyond it ("spillover") are handled by
// the caller with legacy per-actor tubes, guided by SpillBlocked.
const MaxSharedActors = 63

// SharedTubes is the result of ComputeCounterfactuals: every reach-tube
// volume the STI per-actor evaluation needs (Eq. 4), derived from a single
// expansion instead of one expansion per counterfactual world.
type SharedTubes struct {
	// BaseVolume is |T|, the tube volume with every actor present —
	// bit-for-bit the volume ComputeScratch returns with Obstacles.Collide.
	BaseVolume float64
	// WithoutVolume[i] is |T^{/i}| for each represented actor i —
	// bit-for-bit the volume ComputeScratch returns with CollideWithout(i).
	WithoutVolume []float64
	// Represented is the number of leading actors carried as explicit
	// counterfactual worlds: min(NumActors, MaxSharedActors).
	Represented int
	// SpillBlocked[j] reports whether spillover actor Represented+j ever
	// collided with a footprint examined during the expansion. A false
	// entry certifies T^{/(Represented+j)} = T exactly (the actor never
	// changed a collision verdict anywhere the base expansion looked), so
	// the caller can skip its legacy tube; a true entry requires one.
	SpillBlocked []bool
	// States is the number of masked states expanded (diagnostics).
	States int
}

// maskedState is one state of the shared frontier: the kinematic state plus
// the set of counterfactual worlds in which it is a live, dedup-winning
// member of the tube (bit 0 = base world, bit 1+i = world without actor i).
type maskedState struct {
	st vehicle.State
	w  uint64
}

// maskedKeySet maps dedup keys to the mask of worlds that have claimed the
// key in the current slice. It is the per-world visited set of Algorithm 1,
// collapsed: world w treats key k as visited iff bit w of bitsAt(k) is set.
// Same open-addressing discipline as keySet (exact key equality, generation
// stamped O(1) reset).
type maskedKeySet struct {
	keys  []stateKey
	masks []uint64
	gen   []uint32
	cur   uint32
	n     int
}

func newMaskedKeySet() *maskedKeySet { return &maskedKeySet{cur: 1} }

func (ks *maskedKeySet) reset() {
	ks.cur++
	ks.n = 0
	if ks.cur == 0 { // stamp wrapped: old entries would look live again
		clear(ks.gen)
		ks.cur = 1
	}
}

// bitsAt returns the claimed-world mask for k (zero when unclaimed).
func (ks *maskedKeySet) bitsAt(k stateKey) uint64 {
	if len(ks.keys) == 0 {
		return 0
	}
	mask := uint64(len(ks.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		if ks.gen[i] != ks.cur {
			return 0
		}
		if ks.keys[i] == k {
			return ks.masks[i]
		}
	}
}

// or claims the worlds in bits for key k.
func (ks *maskedKeySet) or(k stateKey, bits uint64) {
	if 2*(ks.n+1) > len(ks.keys) {
		ks.grow()
	}
	mask := uint64(len(ks.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		if ks.gen[i] != ks.cur {
			ks.keys[i] = k
			ks.masks[i] = bits
			ks.gen[i] = ks.cur
			ks.n++
			return
		}
		if ks.keys[i] == k {
			ks.masks[i] |= bits
			return
		}
	}
}

func (ks *maskedKeySet) grow() {
	capOld := len(ks.keys)
	capNew := 1024
	if capOld > 0 {
		capNew = capOld * 2
	}
	oldKeys, oldMasks, oldGen := ks.keys, ks.masks, ks.gen
	ks.keys = make([]stateKey, capNew)
	ks.masks = make([]uint64, capNew)
	ks.gen = make([]uint32, capNew)
	mask := uint64(capNew - 1)
	for i, g := range oldGen {
		if g != ks.cur {
			continue
		}
		k := oldKeys[i]
		for j := hashKey(k) & mask; ; j = (j + 1) & mask {
			if ks.gen[j] != ks.cur {
				ks.keys[j] = k
				ks.masks[j] = oldMasks[i]
				ks.gen[j] = ks.cur
				break
			}
		}
	}
}

// ComputeCounterfactuals expands the reach-tubes of every counterfactual
// world the STI per-actor evaluation needs — the base world (all actors)
// and each single-actor-removed world /i — in ONE pass over the state
// space, instead of the N+1 independent ComputeScratch calls of the naive
// Algorithm 1 loop.
//
// Each frontier state carries a world mask: the set of worlds in which the
// state is a live, dedup-winning member of that world's expansion. A
// candidate transition is integrated and collision-swept once; the actors
// blocking its path determine which worlds it survives in (no blocker →
// every world; exactly actor i → only world /i; two or more distinct
// blockers → none of the represented worlds), and per-world dedup and the
// MaxStates cap are replayed exactly through the claimed-key mask and
// per-world slice counters. Because the per-world decisions — expansion
// order, ε-dedup claims, path pruning, cap cut-offs, grid cells marked —
// are replicated exactly (see DESIGN.md §8 for the induction), the
// resulting volumes are bit-for-bit equal to the legacy per-world tubes,
// not merely equal up to dedup jitter.
//
// Cost: one expansion over the union of the per-world tubes (≈ the largest
// single tube) with one collision sweep per candidate, making the STI
// evaluation ~O(1) in the number of actors rather than O(N).
//
// scr may be nil; as with ComputeScratch the result is identical either
// way. Actors beyond MaxSharedActors spill over: they get no world bit, any
// collision by them removes a path from every represented world (exactly
// what their presence does in those worlds), and SpillBlocked reports
// whether they ever blocked anything so the caller can elide or compute
// their legacy tubes.
func ComputeCounterfactuals(m roadmap.Map, obs *Obstacles, ego vehicle.State, cfg Config, scr *Scratch) SharedTubes {
	n := obs.NumActors()
	rep := n
	if rep > MaxSharedActors {
		rep = MaxSharedActors
	}
	numWorlds := 1 + rep
	allMask := ^uint64(0) >> (64 - uint(numWorlds))

	res := SharedTubes{
		WithoutVolume: make([]float64, rep),
		Represented:   rep,
	}
	if n > rep {
		res.SpillBlocked = make([]bool, n-rep)
	}
	if scr == nil {
		scr = NewScratch()
	}
	scr.resetShared(cfg.CellSize, numWorlds)
	grid := scr.mgrid
	claimed := scr.claimed
	volCount := scr.wvol
	sliceCount := scr.wslice
	numSlices := cfg.NumSlices()
	pm, _ := m.(roadmap.PreparedMap)

	telSharedComputes.Inc()
	telSharedWorlds.Observe(float64(numWorlds))

	finish := func(states, propagations, pruned int) SharedTubes {
		cs := cfg.CellSize
		// Same expression OccupancyGrid.Area evaluates, so per-world
		// volumes are bitwise what the legacy tubes report.
		res.BaseVolume = float64(volCount[0]) * cs * cs
		for i := 0; i < rep; i++ {
			res.WithoutVolume[i] = float64(volCount[1+i]) * cs * cs
		}
		res.States = states
		telSharedStates.Add(int64(states))
		telPropagations.Add(int64(propagations))
		telPruned.Add(int64(pruned))
		return res
	}

	// Root: each world checks the ego's starting footprint on its own
	// obstacle set (legacy: drivability, then one collide at slice 0).
	egoPb := cfg.Params.Footprint(ego).Prepare()
	live := uint64(0)
	if drivable(m, pm, &egoPb) {
		live = obs.maskHits(&egoPb, 0, rep, allMask, res.SpillBlocked)
	}
	if live == 0 {
		return finish(0, 0, 0)
	}

	controls := cfg.controls()
	tans := make([]float64, len(controls))
	for i, u := range controls {
		tans[i] = math.Tan(u.Steer)
	}
	pb := egoPb
	path := make([]pathState, cfg.SubSteps)
	frontier := append(scr.mfrontier[:0], maskedState{st: ego, w: live})
	next := scr.mnext[:0]
	act := scr.mactive
	states, propagations, pruned := 0, 0, 0

	for slice := 0; slice < numSlices && len(frontier) > 0; slice++ {
		claimed.reset()
		clear(sliceCount)
		// Broad phase: every footprint swept this slice stays within the
		// frontier's AABB grown by the worst-case travel (speed is clamped
		// to [0, MaxSpeed] and gains at most MaxAccel·SliceDt) plus the ego
		// footprint's bounding radius. Actors outside that window cannot
		// change any verdict, so the per-candidate scan skips them.
		fmin, fmax := frontier[0].st.Pos, frontier[0].st.Pos
		vmax := frontier[0].st.Speed
		for fi := 1; fi < len(frontier); fi++ {
			p := frontier[fi].st.Pos
			if p.X < fmin.X {
				fmin.X = p.X
			}
			if p.Y < fmin.Y {
				fmin.Y = p.Y
			}
			if p.X > fmax.X {
				fmax.X = p.X
			}
			if p.Y > fmax.Y {
				fmax.Y = p.Y
			}
			if v := frontier[fi].st.Speed; v > vmax {
				vmax = v
			}
		}
		travel := math.Min(vmax+cfg.Params.MaxAccel*cfg.SliceDt, cfg.Params.MaxSpeed) * cfg.SliceDt
		margin := travel + egoPb.Radius + 1e-6
		act = obs.activeInto(act[:0],
			geom.V(fmin.X-margin, fmin.Y-margin), geom.V(fmax.X+margin, fmax.Y+margin), slice)
		// capMask accumulates worlds whose per-slice expansion hit
		// MaxStates: legacy breaks out of the slice, so every later
		// candidate is invisible to those worlds.
		capMask := uint64(0)
		next = next[:0]
		for fi := range frontier {
			f := &frontier[fi]
			if f.w&^capMask == 0 {
				continue // every world of this parent already capped
			}
			sin0, cos0 := math.Sincos(f.st.Heading)
			for ui, u := range controls {
				s2, nsub := cfg.integrate(f.st, sin0, cos0, u, tans[ui], path)
				propagations++
				k := cfg.key(s2)
				// possible = worlds whose legacy expansion reaches this
				// candidate and has not already ε-visited its key.
				possible := f.w &^ capMask
				possible &^= claimed.bitsAt(k)
				if possible == 0 {
					continue
				}
				// One footprint sweep decides every world: drivability is
				// world-independent; each blocking actor strikes the worlds
				// it is present in. The sweep stops as soon as no candidate
				// world survives — by then every world has either pruned
				// the path or never examined it.
				for j := 0; j < nsub; j++ {
					ps := &path[j]
					pb.MoveTo(ps.st.Pos, ps.st.Heading, ps.sin, ps.cos)
					if !drivable(m, pm, &pb) {
						possible = 0
						break
					}
					possible = obs.maskHitsPath(&pb, slice, rep, possible, res.SpillBlocked, act)
					if possible == 0 {
						break
					}
				}
				if possible == 0 {
					pruned++
					continue
				}
				claimed.or(k, possible)
				for b := grid.MarkBits(s2.Pos, possible); b != 0; b &= b - 1 {
					volCount[bits.TrailingZeros64(b)]++
				}
				for b := possible; b != 0; b &= b - 1 {
					w := bits.TrailingZeros64(b)
					sliceCount[w]++
					if sliceCount[w] >= cfg.MaxStates {
						capMask |= uint64(1) << uint(w)
					}
				}
				next = append(next, maskedState{st: s2, w: possible})
				states++
			}
		}
		frontier, next = next, frontier[:0]
	}
	// Hand the (possibly re-grown) slices back for the next reuse.
	scr.mfrontier, scr.mnext, scr.mactive = frontier, next, act
	return finish(states, propagations, pruned)
}
