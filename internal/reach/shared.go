package reach

import (
	"math"
	"math/bits"

	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// Telemetry for the shared-expansion engine (flushed once per call, like
// ComputeScratch's counters).
var (
	telSharedComputes = telemetry.NewCounter("reach.shared.computes")
	telSharedStates   = telemetry.NewCounter("reach.shared.states_expanded")
	telSharedWorlds   = telemetry.NewHistogram("reach.shared.worlds", telemetry.LinearBuckets(0, 8, 18))
)

// SharedTubes is the result of ComputeCounterfactuals: every reach-tube
// volume the STI per-actor evaluation needs (Eq. 4), derived from a single
// expansion instead of one expansion per counterfactual world.
type SharedTubes struct {
	// BaseVolume is |T|, the tube volume with every actor present —
	// bit-for-bit the volume ComputeScratch returns with Obstacles.Collide.
	BaseVolume float64
	// WithoutVolume[i] is |T^{/i}| for each actor i — bit-for-bit the
	// volume ComputeScratch returns with CollideWithout(i).
	WithoutVolume []float64
	// Represented is the number of actors carried as explicit counterfactual
	// worlds. Since masks became segmented this is always NumActors: every
	// actor in the scene gets a world bit.
	Represented int
	// MaskWords is the number of 64-bit words in each state's world mask:
	// ceil((1+NumActors)/64). 1 selects the single-word fast path.
	MaskWords int
	// States is the number of masked states expanded (diagnostics).
	States int
}

// maskedState is one state of the single-word shared frontier: the kinematic
// state plus the set of counterfactual worlds in which it is a live,
// dedup-winning member of the tube (bit 0 = base world, bit 1+i = world
// without actor i).
type maskedState struct {
	st vehicle.State
	w  uint64
}

// maskedKeySet maps dedup keys to the mask of worlds that have claimed the
// key in the current slice. It is the per-world visited set of Algorithm 1,
// collapsed: world w treats key k as visited iff bit w of bitsAt(k) is set.
// Same open-addressing discipline as keySet (exact key equality, generation
// stamped O(1) reset).
type maskedKeySet struct {
	keys  []stateKey
	masks []uint64
	gen   []uint32
	cur   uint32
	n     int
}

func newMaskedKeySet() *maskedKeySet { return &maskedKeySet{cur: 1} }

func (ks *maskedKeySet) reset() {
	ks.cur++
	ks.n = 0
	if ks.cur == 0 { // stamp wrapped: old entries would look live again
		clear(ks.gen)
		ks.cur = 1
	}
}

// bitsAt returns the claimed-world mask for k (zero when unclaimed).
func (ks *maskedKeySet) bitsAt(k stateKey) uint64 {
	if len(ks.keys) == 0 {
		return 0
	}
	mask := uint64(len(ks.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		if ks.gen[i] != ks.cur {
			return 0
		}
		if ks.keys[i] == k {
			return ks.masks[i]
		}
	}
}

// probe returns the claimed-world mask for k plus the slot the probe ended
// at (k's slot if present, else the first empty slot of its chain), so the
// candidate's later claim needn't re-walk the chain. The slot stays valid
// until the next insertion; -1 means the table is unallocated.
func (ks *maskedKeySet) probe(k stateKey) (bits uint64, slot int) {
	if len(ks.keys) == 0 {
		return 0, -1
	}
	mask := uint64(len(ks.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		if ks.gen[i] != ks.cur {
			return 0, int(i)
		}
		if ks.keys[i] == k {
			return ks.masks[i], int(i)
		}
	}
}

// orAt claims the worlds in bits for k at the slot probe returned. A stale
// or unknown slot (table grown or unallocated since) falls back to a fresh
// probe; claiming into an empty slot defers to or when the insertion would
// breach the load factor.
func (ks *maskedKeySet) orAt(slot int, k stateKey, bits uint64) {
	if slot >= 0 && slot < len(ks.keys) {
		if ks.gen[slot] == ks.cur {
			if ks.keys[slot] == k {
				ks.masks[slot] |= bits
				return
			}
		} else if 2*(ks.n+1) <= len(ks.keys) {
			ks.keys[slot] = k
			ks.masks[slot] = bits
			ks.gen[slot] = ks.cur
			ks.n++
			return
		}
	}
	ks.or(k, bits)
}

// or claims the worlds in bits for key k.
func (ks *maskedKeySet) or(k stateKey, bits uint64) {
	if 2*(ks.n+1) > len(ks.keys) {
		ks.grow()
	}
	mask := uint64(len(ks.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		if ks.gen[i] != ks.cur {
			ks.keys[i] = k
			ks.masks[i] = bits
			ks.gen[i] = ks.cur
			ks.n++
			return
		}
		if ks.keys[i] == k {
			ks.masks[i] |= bits
			return
		}
	}
}

func (ks *maskedKeySet) grow() {
	capOld := len(ks.keys)
	capNew := 1024
	if capOld > 0 {
		capNew = capOld * 2
	}
	oldKeys, oldMasks, oldGen := ks.keys, ks.masks, ks.gen
	ks.keys = make([]stateKey, capNew)
	ks.masks = make([]uint64, capNew)
	ks.gen = make([]uint32, capNew)
	mask := uint64(capNew - 1)
	for i, g := range oldGen {
		if g != ks.cur {
			continue
		}
		k := oldKeys[i]
		for j := hashKey(k) & mask; ; j = (j + 1) & mask {
			if ks.gen[j] != ks.cur {
				ks.keys[j] = k
				ks.masks[j] = oldMasks[i]
				ks.gen[j] = ks.cur
				break
			}
		}
	}
}

// segKeySet is maskedKeySet with segmented masks: each slot carries `words`
// consecutive uint64s, so one claimed-key lookup covers every world of an
// arbitrarily wide scene. Bit w of word w/64 plays exactly the role bit w
// plays in the single-word set.
type segKeySet struct {
	words int
	keys  []stateKey
	masks []uint64 // stride `words` per slot
	gen   []uint32
	cur   uint32
	n     int
}

func newSegKeySet(words int) *segKeySet { return &segKeySet{words: words, cur: 1} }

// reset readies the set for a new slice with `words`-wide masks. Changing
// the width drops the table (the stride no longer matches), which only
// happens when consecutive scenes differ in actor-count word boundaries.
func (ks *segKeySet) reset(words int) {
	if ks.words != words {
		ks.words = words
		ks.keys, ks.masks, ks.gen = nil, nil, nil
		ks.n = 0
		ks.cur = 1
		return
	}
	ks.cur++
	ks.n = 0
	if ks.cur == 0 { // stamp wrapped: old entries would look live again
		clear(ks.gen)
		ks.cur = 1
	}
}

// andNot strips the worlds already claimed for k out of possible (in
// place), reporting whether any world survives. Word w of possible is
// treated exactly as maskedKeySet treats its single word: possible &^=
// claimed(k).
func (ks *segKeySet) andNot(k stateKey, possible []uint64) bool {
	if len(ks.keys) == 0 {
		return anyNonzero(possible)
	}
	mask := uint64(len(ks.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		if ks.gen[i] != ks.cur {
			return anyNonzero(possible)
		}
		if ks.keys[i] == k {
			base := int(i) * ks.words
			any := false
			for w := range possible {
				possible[w] &^= ks.masks[base+w]
				any = any || possible[w] != 0
			}
			return any
		}
	}
}

// andNotProbe is andNot returning the probe's resting slot as well, with
// the same contract as maskedKeySet.probe: k's slot if present, else the
// first empty slot of its chain, valid until the next insertion.
func (ks *segKeySet) andNotProbe(k stateKey, possible []uint64) (bool, int) {
	if len(ks.keys) == 0 {
		return anyNonzero(possible), -1
	}
	mask := uint64(len(ks.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		if ks.gen[i] != ks.cur {
			return anyNonzero(possible), int(i)
		}
		if ks.keys[i] == k {
			base := int(i) * ks.words
			any := false
			for w := range possible {
				possible[w] &^= ks.masks[base+w]
				any = any || possible[w] != 0
			}
			return any, int(i)
		}
	}
}

// orAt claims the worlds in bits for k at the slot andNotProbe returned,
// falling back to a fresh probe when the slot is stale or the insertion
// would breach the load factor.
func (ks *segKeySet) orAt(slot int, k stateKey, bits []uint64) {
	if slot >= 0 && slot < len(ks.keys) {
		if ks.gen[slot] == ks.cur {
			if ks.keys[slot] == k {
				base := slot * ks.words
				for w := range bits {
					ks.masks[base+w] |= bits[w]
				}
				return
			}
		} else if 2*(ks.n+1) <= len(ks.keys) {
			ks.keys[slot] = k
			copy(ks.masks[slot*ks.words:slot*ks.words+ks.words], bits)
			ks.gen[slot] = ks.cur
			ks.n++
			return
		}
	}
	ks.or(k, bits)
}

// or claims the worlds in bits (len words) for key k.
func (ks *segKeySet) or(k stateKey, bits []uint64) {
	if 2*(ks.n+1) > len(ks.keys) {
		ks.grow()
	}
	mask := uint64(len(ks.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		if ks.gen[i] != ks.cur {
			ks.keys[i] = k
			copy(ks.masks[int(i)*ks.words:int(i)*ks.words+ks.words], bits)
			ks.gen[i] = ks.cur
			ks.n++
			return
		}
		if ks.keys[i] == k {
			base := int(i) * ks.words
			for w := range bits {
				ks.masks[base+w] |= bits[w]
			}
			return
		}
	}
}

func (ks *segKeySet) grow() {
	capOld := len(ks.keys)
	capNew := 1024
	if capOld > 0 {
		capNew = capOld * 2
	}
	oldKeys, oldMasks, oldGen := ks.keys, ks.masks, ks.gen
	ks.keys = make([]stateKey, capNew)
	ks.masks = make([]uint64, capNew*ks.words)
	ks.gen = make([]uint32, capNew)
	mask := uint64(capNew - 1)
	for i, g := range oldGen {
		if g != ks.cur {
			continue
		}
		k := oldKeys[i]
		for j := hashKey(k) & mask; ; j = (j + 1) & mask {
			if ks.gen[j] != ks.cur {
				ks.keys[j] = k
				copy(ks.masks[int(j)*ks.words:int(j)*ks.words+ks.words], oldMasks[i*ks.words:i*ks.words+ks.words])
				ks.gen[j] = ks.cur
				break
			}
		}
	}
}

// anyNonzero reports whether any word of mask has a bit set.
func anyNonzero(mask []uint64) bool {
	for _, v := range mask {
		if v != 0 {
			return true
		}
	}
	return false
}

// anyUncapped reports whether mask has a live bit outside capMask — i.e.
// whether any world of this parent can still accept candidates this slice.
func anyUncapped(mask, capMask []uint64) bool {
	for w := range mask {
		if mask[w]&^capMask[w] != 0 {
			return true
		}
	}
	return false
}

// fullMask sets dst to the mask with the low numWorlds bits set — the
// segmented analogue of the single-word `^0 >> (64-numWorlds)` all-worlds
// mask. dst may be wider than ceil(numWorlds/64); excess words are zeroed
// (the differential tests force extra words to exercise the word loops on
// small scenes).
func fullMask(dst []uint64, numWorlds int) {
	for w := range dst {
		lo := w * 64
		switch {
		case numWorlds >= lo+64:
			dst[w] = ^uint64(0)
		case numWorlds <= lo:
			dst[w] = 0
		default:
			dst[w] = ^uint64(0) >> (64 - uint(numWorlds-lo))
		}
	}
}

// ComputeCounterfactuals expands the reach-tubes of every counterfactual
// world the STI per-actor evaluation needs — the base world (all actors)
// and each single-actor-removed world /i — in ONE pass over the state
// space, instead of the N+1 independent ComputeScratch calls of the naive
// Algorithm 1 loop.
//
// Each frontier state carries a world mask: the set of worlds in which the
// state is a live, dedup-winning member of that world's expansion. A
// candidate transition is integrated and collision-swept once; the actors
// blocking its path determine which worlds it survives in (no blocker →
// every world; exactly actor i → only world /i; two or more distinct
// blockers → none), and per-world dedup and the MaxStates cap are replayed
// exactly through the claimed-key mask and per-world slice counters.
// Because the per-world decisions — expansion order, ε-dedup claims, path
// pruning, cap cut-offs, grid cells marked — are replicated exactly (see
// DESIGN.md §8 for the induction), the resulting volumes are bit-for-bit
// equal to the legacy per-world tubes, not merely equal up to dedup jitter.
//
// The mask is segmented: ceil((1+n)/64) words of 64 bits, so EVERY actor in
// the scene gets a dedicated world (no spillover, no fallback tubes).
// Scenes with at most 63 actors take a single-word fast path whose inner
// loops are scalar; wider scenes run the word-indexed loops. The two paths
// make identical per-world decisions — bit w of word w/64 is treated
// exactly as bit w of the single word — so the choice is invisible in the
// results.
//
// Cost: one expansion over the union of the per-world tubes (≈ the largest
// single tube) with one collision sweep per candidate, making the STI
// evaluation ~O(1) in the number of actors rather than O(N).
//
// scr may be nil; as with ComputeScratch the result is identical either
// way.
func ComputeCounterfactuals(m roadmap.Map, obs *Obstacles, ego vehicle.State, cfg Config, scr *Scratch) SharedTubes {
	n := obs.NumActors()
	numWorlds := 1 + n
	words := (numWorlds + 63) / 64
	res := SharedTubes{
		WithoutVolume: make([]float64, n),
		Represented:   n,
		MaskWords:     words,
	}
	if scr == nil {
		scr = NewScratch()
	}
	telSharedComputes.Inc()
	telSharedWorlds.Observe(float64(numWorlds))
	if words == 1 {
		computeSingleWord(m, obs, ego, cfg, scr, &res, numWorlds)
	} else {
		computeSegmented(m, obs, ego, cfg, scr, &res, numWorlds, words)
	}
	return res
}

// computeSingleWord is the ≤63-actor fast path: all world masks fit one
// uint64, so the inner loops carry scalar masks exactly as the original
// shared engine did.
func computeSingleWord(m roadmap.Map, obs *Obstacles, ego vehicle.State, cfg Config, scr *Scratch, res *SharedTubes, numWorlds int) {
	n := numWorlds - 1
	allMask := ^uint64(0) >> (64 - uint(numWorlds))

	scr.resetShared(cfg.CellSize, numWorlds, 1)
	grid := scr.mgrid
	claimed := scr.claimed
	volCount := scr.wvol
	sliceCount := scr.wslice
	numSlices := cfg.NumSlices()
	pm, _ := m.(roadmap.PreparedMap)

	finish := func(states, propagations, pruned int) {
		cs := cfg.CellSize
		// Same expression OccupancyGrid.Area evaluates, so per-world
		// volumes are bitwise what the legacy tubes report.
		res.BaseVolume = float64(volCount[0]) * cs * cs
		for i := 0; i < n; i++ {
			res.WithoutVolume[i] = float64(volCount[1+i]) * cs * cs
		}
		res.States = states
		telSharedStates.Add(int64(states))
		telPropagations.Add(int64(propagations))
		telPruned.Add(int64(pruned))
	}

	// Root: each world checks the ego's starting footprint on its own
	// obstacle set (legacy: drivability, then one collide at slice 0).
	egoPb := cfg.Params.Footprint(ego).Prepare()
	live := uint64(0)
	if drivable(m, pm, &egoPb) {
		live = obs.maskHits(&egoPb, 0, allMask)
	}
	if live == 0 {
		finish(0, 0, 0)
		return
	}

	controls := cfg.controls()
	tans := make([]float64, len(controls))
	for i, u := range controls {
		tans[i] = math.Tan(u.Steer)
	}
	pb := egoPb
	path := make([]pathState, cfg.SubSteps)
	frontier := append(scr.mfrontier[:0], maskedState{st: ego, w: live})
	next := scr.mnext[:0]
	act := scr.mactive
	states, propagations, pruned := 0, 0, 0

	for slice := 0; slice < numSlices && len(frontier) > 0; slice++ {
		claimed.reset()
		clear(sliceCount)
		// Broad phase: every footprint swept this slice stays within the
		// frontier's AABB grown by the worst-case travel (speed is clamped
		// to [0, MaxSpeed] and gains at most MaxAccel·SliceDt) plus the ego
		// footprint's bounding radius. Actors outside that window cannot
		// change any verdict, so the per-candidate scan skips them.
		fmin, fmax := frontier[0].st.Pos, frontier[0].st.Pos
		vmax := frontier[0].st.Speed
		for fi := 1; fi < len(frontier); fi++ {
			p := frontier[fi].st.Pos
			if p.X < fmin.X {
				fmin.X = p.X
			}
			if p.Y < fmin.Y {
				fmin.Y = p.Y
			}
			if p.X > fmax.X {
				fmax.X = p.X
			}
			if p.Y > fmax.Y {
				fmax.Y = p.Y
			}
			if v := frontier[fi].st.Speed; v > vmax {
				vmax = v
			}
		}
		travel := math.Min(vmax+cfg.Params.MaxAccel*cfg.SliceDt, cfg.Params.MaxSpeed) * cfg.SliceDt
		margin := travel + egoPb.Radius + 1e-6
		act = obs.activeInto(act[:0],
			geom.V(fmin.X-margin, fmin.Y-margin), geom.V(fmax.X+margin, fmax.Y+margin), slice)
		// capMask accumulates worlds whose per-slice expansion hit
		// MaxStates: legacy breaks out of the slice, so every later
		// candidate is invisible to those worlds.
		capMask := uint64(0)
		next = next[:0]
		for fi := range frontier {
			f := &frontier[fi]
			if f.w&^capMask == 0 {
				continue // every world of this parent already capped
			}
			sin0, cos0 := math.Sincos(f.st.Heading)
			for ui, u := range controls {
				s2, nsub := cfg.integrate(f.st, sin0, cos0, u, tans[ui], path)
				propagations++
				k := cfg.key(s2)
				// possible = worlds whose legacy expansion reaches this
				// candidate and has not already ε-visited its key.
				possible := f.w &^ capMask
				cb, slot := claimed.probe(k)
				possible &^= cb
				if possible == 0 {
					continue
				}
				// One footprint sweep decides every world: drivability is
				// world-independent; each blocking actor strikes the worlds
				// it is present in. The sweep stops as soon as no candidate
				// world survives — by then every world has either pruned
				// the path or never examined it.
				for j := 0; j < nsub; j++ {
					ps := &path[j]
					pb.MoveTo(ps.st.Pos, ps.st.Heading, ps.sin, ps.cos)
					if !drivable(m, pm, &pb) {
						possible = 0
						break
					}
					possible = obs.maskHitsPath(&pb, slice, possible, act)
					if possible == 0 {
						break
					}
				}
				if possible == 0 {
					pruned++
					continue
				}
				claimed.orAt(slot, k, possible)
				for b := grid.MarkBits(s2.Pos, possible); b != 0; b &= b - 1 {
					volCount[bits.TrailingZeros64(b)]++
				}
				for b := possible; b != 0; b &= b - 1 {
					w := bits.TrailingZeros64(b)
					sliceCount[w]++
					if sliceCount[w] >= cfg.MaxStates {
						capMask |= uint64(1) << uint(w)
					}
				}
				next = append(next, maskedState{st: s2, w: possible})
				states++
			}
		}
		frontier, next = next, frontier[:0]
	}
	// Hand the (possibly re-grown) slices back for the next reuse.
	scr.mfrontier, scr.mnext, scr.mactive = frontier, next, act
	finish(states, propagations, pruned)
}

// computeSegmented is the 64+-actor path: world masks span `words` uint64s
// and every loop over a scalar mask becomes a loop over its words. Each
// step mirrors computeSingleWord line for line — the per-world decision for
// world w reads and writes bit w%64 of word w/64, exactly the bit the
// single-word path would use had it been wide enough — so the induction
// argument of DESIGN.md §8 carries over per word.
func computeSegmented(m roadmap.Map, obs *Obstacles, ego vehicle.State, cfg Config, scr *Scratch, res *SharedTubes, numWorlds, words int) {
	n := numWorlds - 1

	scr.resetShared(cfg.CellSize, numWorlds, words)
	grid := scr.mgrid
	claimed := scr.sclaimed
	volCount := scr.wvol
	sliceCount := scr.wslice
	numSlices := cfg.NumSlices()
	pm, _ := m.(roadmap.PreparedMap)

	finish := func(states, propagations, pruned int) {
		cs := cfg.CellSize
		res.BaseVolume = float64(volCount[0]) * cs * cs
		for i := 0; i < n; i++ {
			res.WithoutVolume[i] = float64(volCount[1+i]) * cs * cs
		}
		res.States = states
		telSharedStates.Add(int64(states))
		telPropagations.Add(int64(propagations))
		telPruned.Add(int64(pruned))
	}

	// Root: all worlds start live; drivability and the slice-0 collision
	// sweep strike the same worlds the legacy roots would reject.
	egoPb := cfg.Params.Footprint(ego).Prepare()
	possible := scr.sposs
	fullMask(possible, numWorlds)
	if !drivable(m, pm, &egoPb) || !obs.maskHitsSeg(&egoPb, 0, possible) {
		finish(0, 0, 0)
		return
	}

	controls := cfg.controls()
	tans := make([]float64, len(controls))
	for i, u := range controls {
		tans[i] = math.Tan(u.Steer)
	}
	pb := egoPb
	path := make([]pathState, cfg.SubSteps)
	// The frontier is struct-of-arrays: states in fstates, masks in the
	// flat stride-`words` arena fmasks (state fi owns fmasks[fi*words :
	// (fi+1)*words]), so growing it never allocates per-state slices.
	fstates := append(scr.sfstates[:0], ego)
	fmasks := append(scr.sfmasks[:0], possible...)
	nstates := scr.snstates[:0]
	nmasks := scr.snmasks[:0]
	act := scr.mactive
	capMask := scr.scap
	newBits := scr.snew
	states, propagations, pruned := 0, 0, 0

	for slice := 0; slice < numSlices && len(fstates) > 0; slice++ {
		claimed.reset(words)
		clear(sliceCount)
		clear(capMask)
		// Broad phase: identical to the single-word path.
		fmin, fmax := fstates[0].Pos, fstates[0].Pos
		vmax := fstates[0].Speed
		for fi := 1; fi < len(fstates); fi++ {
			p := fstates[fi].Pos
			if p.X < fmin.X {
				fmin.X = p.X
			}
			if p.Y < fmin.Y {
				fmin.Y = p.Y
			}
			if p.X > fmax.X {
				fmax.X = p.X
			}
			if p.Y > fmax.Y {
				fmax.Y = p.Y
			}
			if v := fstates[fi].Speed; v > vmax {
				vmax = v
			}
		}
		travel := math.Min(vmax+cfg.Params.MaxAccel*cfg.SliceDt, cfg.Params.MaxSpeed) * cfg.SliceDt
		margin := travel + egoPb.Radius + 1e-6
		act = obs.activeInto(act[:0],
			geom.V(fmin.X-margin, fmin.Y-margin), geom.V(fmax.X+margin, fmax.Y+margin), slice)
		nstates = nstates[:0]
		nmasks = nmasks[:0]
		for fi := range fstates {
			fmask := fmasks[fi*words : fi*words+words]
			if !anyUncapped(fmask, capMask) {
				continue // every world of this parent already capped
			}
			sin0, cos0 := math.Sincos(fstates[fi].Heading)
			for ui, u := range controls {
				s2, nsub := cfg.integrate(fstates[fi], sin0, cos0, u, tans[ui], path)
				propagations++
				k := cfg.key(s2)
				// possible = parent worlds, minus capped, minus claimed —
				// word for word the single-word expression.
				for w := 0; w < words; w++ {
					possible[w] = fmask[w] &^ capMask[w]
				}
				live, slot := claimed.andNotProbe(k, possible)
				if !live {
					continue
				}
				ok := true
				for j := 0; j < nsub; j++ {
					ps := &path[j]
					pb.MoveTo(ps.st.Pos, ps.st.Heading, ps.sin, ps.cos)
					if !drivable(m, pm, &pb) {
						ok = false
						break
					}
					if !obs.maskHitsPathSeg(&pb, slice, possible, act) {
						ok = false
						break
					}
				}
				if !ok {
					pruned++
					continue
				}
				claimed.orAt(slot, k, possible)
				grid.MarkWords(s2.Pos, possible, newBits)
				for w := 0; w < words; w++ {
					for b := newBits[w]; b != 0; b &= b - 1 {
						volCount[w<<6+bits.TrailingZeros64(b)]++
					}
				}
				for w := 0; w < words; w++ {
					for b := possible[w]; b != 0; b &= b - 1 {
						tz := bits.TrailingZeros64(b)
						wi := w<<6 + tz
						sliceCount[wi]++
						if sliceCount[wi] >= cfg.MaxStates {
							capMask[w] |= uint64(1) << uint(tz)
						}
					}
				}
				nstates = append(nstates, s2)
				nmasks = append(nmasks, possible...)
				states++
			}
		}
		fstates, nstates = nstates, fstates[:0]
		fmasks, nmasks = nmasks, fmasks[:0]
	}
	// Hand the (possibly re-grown) slices back for the next reuse.
	scr.sfstates, scr.sfmasks, scr.snstates, scr.snmasks, scr.mactive = fstates, fmasks, nstates, nmasks, act
	finish(states, propagations, pruned)
}
