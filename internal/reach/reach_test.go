package reach

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

func testRoad() *roadmap.StraightRoad {
	return roadmap.MustStraightRoad(2, 3.5, -50, 500)
}

func egoState(x, y, speed float64) vehicle.State {
	return vehicle.State{Pos: geom.V(x, y), Speed: speed}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"slice bigger than horizon", func(c *Config) { c.SliceDt = 10 }},
		{"zero pos eps", func(c *Config) { c.PosEps = 0 }},
		{"zero heading eps", func(c *Config) { c.HeadingEps = 0 }},
		{"zero speed eps", func(c *Config) { c.SpeedEps = 0 }},
		{"zero cell size", func(c *Config) { c.CellSize = 0 }},
		{"zero max states", func(c *Config) { c.MaxStates = 0 }},
		{"bad vehicle params", func(c *Config) { c.Params.WheelBase = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestNumSlices(t *testing.T) {
	c := DefaultConfig()
	if got := c.NumSlices(); got != 6 {
		t.Errorf("NumSlices = %d, want 6", got)
	}
}

func TestControlsBoundarySet(t *testing.T) {
	c := DefaultConfig()
	cs := c.controls()
	if len(cs) != 6 {
		t.Fatalf("boundary control set size = %d, want 6", len(cs))
	}
	// Must contain all four extreme combinations plus straight coasting.
	want := map[vehicle.Control]bool{
		{Accel: 0, Steer: 0}: false,
		{Accel: c.Params.MaxAccel, Steer: c.Params.MaxSteer}:  false,
		{Accel: c.Params.MaxAccel, Steer: -c.Params.MaxSteer}: false,
		{Accel: 0, Steer: c.Params.MaxSteer}:                  false,
	}
	for _, u := range cs {
		if _, ok := want[u]; ok {
			want[u] = true
		}
	}
	for u, seen := range want {
		if !seen {
			t.Errorf("boundary set missing control %+v", u)
		}
	}
}

func TestControlsWithSampling(t *testing.T) {
	c := DefaultConfig()
	c.BoundaryOnly = false
	c.Samples = 16
	cs := c.controls()
	if len(cs) < 6+16 {
		t.Errorf("sampled control set size = %d, want >= 22", len(cs))
	}
	for _, u := range cs {
		if u.Accel < c.Params.MaxBrake-1e-9 || u.Accel > c.Params.MaxAccel+1e-9 {
			t.Errorf("sampled accel out of range: %v", u.Accel)
		}
		if u.Steer < -c.Params.MaxSteer-1e-9 || u.Steer > c.Params.MaxSteer+1e-9 {
			t.Errorf("sampled steer out of range: %v", u.Steer)
		}
	}
}

func TestComputeEmptyWorld(t *testing.T) {
	tube := Compute(testRoad(), nil, egoState(0, 1.75, 10), DefaultConfig())
	if tube.Volume <= 0 {
		t.Fatal("empty-world tube should have positive volume")
	}
	if tube.Depth() != DefaultConfig().NumSlices() {
		t.Errorf("empty world should reach full depth, got %d", tube.Depth())
	}
	if tube.States == 0 {
		t.Error("tube should expand states")
	}
}

func TestComputeOffRoadStart(t *testing.T) {
	tube := Compute(testRoad(), nil, egoState(0, 20, 10), DefaultConfig())
	if tube.Volume != 0 || tube.States != 0 {
		t.Errorf("off-road start should yield empty tube, got %+v", tube)
	}
}

func TestComputeCollidingStart(t *testing.T) {
	collide := func(*geom.PreparedBox, int) bool { return true }
	tube := Compute(testRoad(), collide, egoState(0, 1.75, 10), DefaultConfig())
	if tube.Volume != 0 {
		t.Errorf("colliding start should yield empty tube, got %+v", tube)
	}
}

func TestComputeBlockedAhead(t *testing.T) {
	// A wall fully covering the road 15 m ahead shrinks the tube relative to
	// the empty world but braking keeps some escape routes alive.
	road := testRoad()
	cfg := DefaultConfig()
	wall := geom.NewBox(geom.V(20, 3.5), 2, 7, 0)
	wallPb := wall.Prepare()
	collide := func(b *geom.PreparedBox, _ int) bool { return b.Intersects(&wallPb) }
	free := Compute(road, nil, egoState(0, 1.75, 10), cfg)
	blocked := Compute(road, collide, egoState(0, 1.75, 10), cfg)
	if blocked.Volume >= free.Volume {
		t.Errorf("blocked volume %v should be < free volume %v", blocked.Volume, free.Volume)
	}
	if blocked.Volume <= 0 {
		t.Error("ego at 10 m/s 15 m from wall can still brake; tube should be non-empty")
	}
}

func TestComputeInescapableTrap(t *testing.T) {
	// Ego at high speed immediately behind a wall: every control collides.
	road := testRoad()
	cfg := DefaultConfig()
	wall := geom.NewBox(geom.V(8, 3.5), 2, 7, 0)
	wallPb := wall.Prepare()
	collide := func(b *geom.PreparedBox, _ int) bool { return b.Intersects(&wallPb) }
	tube := Compute(road, collide, egoState(0, 1.75, 25), cfg)
	if tube.Depth() == cfg.NumSlices() {
		t.Errorf("trap should cut the tube short, depth = %d", tube.Depth())
	}
}

func TestComputeVolumeGrowsWithSpeedRange(t *testing.T) {
	// A faster ego covers more ground over the horizon: volume must grow.
	cfg := DefaultConfig()
	slow := Compute(testRoad(), nil, egoState(0, 1.75, 2), cfg)
	fast := Compute(testRoad(), nil, egoState(0, 1.75, 15), cfg)
	if fast.Volume <= slow.Volume {
		t.Errorf("fast volume %v should exceed slow volume %v", fast.Volume, slow.Volume)
	}
}

func TestComputeDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := Compute(testRoad(), nil, egoState(0, 1.75, 10), cfg)
	b := Compute(testRoad(), nil, egoState(0, 1.75, 10), cfg)
	if a.Volume != b.Volume || a.States != b.States {
		t.Errorf("Compute not deterministic: %+v vs %+v", a, b)
	}
}

func TestComputeMaxStatesCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxStates = 3
	tube := Compute(testRoad(), nil, egoState(0, 1.75, 10), cfg)
	for i, n := range tube.SliceStates {
		if n > 3 {
			t.Errorf("slice %d has %d states, cap is 3", i, n)
		}
	}
}

func TestComputeSamplingCloseToBoundary(t *testing.T) {
	// The paper's optimisation 2 (boundary-control enumeration instead of
	// dense uniform sampling) changes the result only marginally (footnote
	// 5). ε-dedup makes the volume non-monotone in the number of samples, so
	// assert closeness rather than a superset relation.
	cfg := DefaultConfig()
	boundary := Compute(testRoad(), nil, egoState(0, 1.75, 10), cfg)
	cfg.BoundaryOnly = false
	cfg.Samples = 25
	sampled := Compute(testRoad(), nil, egoState(0, 1.75, 10), cfg)
	lo, hi := 0.8*boundary.Volume, 1.25*boundary.Volume
	if sampled.Volume < lo || sampled.Volume > hi {
		t.Errorf("sampled volume %v not within 20%% of boundary volume %v", sampled.Volume, boundary.Volume)
	}
}

func TestBuildObstaclesAndCollide(t *testing.T) {
	cfg := DefaultConfig()
	// One actor dead ahead, stationary.
	a := actor.NewVehicle(1, vehicle.State{Pos: geom.V(10, 1.75)})
	trajs := actor.PredictAll([]*actor.Actor{a}, cfg.NumSlices(), cfg.SliceDt)
	obs := BuildObstacles([]*actor.Actor{a}, trajs, cfg)
	if obs.NumActors() != 1 {
		t.Fatalf("NumActors = %d", obs.NumActors())
	}
	hit := geom.NewBox(geom.V(10, 1.75), 4.7, 2, 0).Prepare()
	if !obs.Collide()(&hit, 0) {
		t.Error("overlapping box should collide")
	}
	if obs.CollideWithout(0)(&hit, 0) {
		t.Error("removing the only actor should clear all collisions")
	}
	miss := geom.NewBox(geom.V(30, 1.75), 4.7, 2, 0).Prepare()
	if obs.Collide()(&miss, 0) {
		t.Error("distant box should not collide")
	}
}

func TestObstaclesMovingActor(t *testing.T) {
	cfg := DefaultConfig()
	// Actor starts at x=20 moving at 10 m/s: at slice 2 (t=1.0s) it is near
	// x=30.
	a := actor.NewVehicle(1, vehicle.State{Pos: geom.V(20, 1.75), Speed: 10})
	trajs := actor.PredictAll([]*actor.Actor{a}, cfg.NumSlices(), cfg.SliceDt)
	obs := BuildObstacles([]*actor.Actor{a}, trajs, cfg)
	probe := geom.NewBox(geom.V(30, 1.75), 4.7, 2, 0).Prepare()
	if obs.Collide()(&probe, 0) {
		t.Error("probe should not collide at t=0")
	}
	if !obs.Collide()(&probe, 2) {
		t.Error("probe should collide at slice 2 when actor arrives")
	}
	// Past-horizon slices clamp to the final footprint.
	final := geom.NewBox(geom.V(20+10*3, 1.75), 4.7, 2, 0).Prepare()
	if !obs.Collide()(&final, 99) {
		t.Error("past-horizon query should clamp to final state")
	}
}

func TestObstaclesBoxAt(t *testing.T) {
	cfg := DefaultConfig()
	a := actor.NewVehicle(1, vehicle.State{Pos: geom.V(5, 1.75), Speed: 2})
	trajs := actor.PredictAll([]*actor.Actor{a}, cfg.NumSlices(), cfg.SliceDt)
	obs := BuildObstacles([]*actor.Actor{a}, trajs, cfg)
	b0 := obs.BoxAt(0, 0)
	if b0.Center != geom.V(5, 1.75) {
		t.Errorf("BoxAt(0,0) center = %v", b0.Center)
	}
	bLast := obs.BoxAt(0, 999)
	if bLast.Center.X <= b0.Center.X {
		t.Error("clamped final box should be ahead of the initial box")
	}
}

func TestComputeActorReducesVolume(t *testing.T) {
	cfg := DefaultConfig()
	road := testRoad()
	ego := egoState(0, 1.75, 10)
	blocker := actor.NewVehicle(1, vehicle.State{Pos: geom.V(15, 1.75), Speed: 2})
	trajs := actor.PredictAll([]*actor.Actor{blocker}, cfg.NumSlices(), cfg.SliceDt)
	obs := BuildObstacles([]*actor.Actor{blocker}, trajs, cfg)

	with := Compute(road, obs.Collide(), ego, cfg)
	without := Compute(road, obs.CollideWithout(0), ego, cfg)
	if with.Volume >= without.Volume {
		t.Errorf("blocking actor must reduce volume: with=%v without=%v", with.Volume, without.Volume)
	}
}

func TestTubeDepth(t *testing.T) {
	tube := Tube{SliceStates: []int{3, 2, 0, 0}}
	if got := tube.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
	tube = Tube{SliceStates: []int{1, 1, 1}}
	if got := tube.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
}
