package reach

import (
	"math/rand"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/vehicle"
)

// Adding obstacles must never (meaningfully) grow the reach-tube: the tube
// with obstacles is bounded by the empty-world tube, and removing one actor
// from a scene is bounded by removing all. ε-dedup makes the computation
// only approximately monotone, so the properties carry a small tolerance.
func TestTubeMonotoneUnderObstacles(t *testing.T) {
	const tolerance = 1.05
	rng := rand.New(rand.NewSource(99))
	cfg := DefaultConfig()
	road := testRoad()
	for iter := 0; iter < 40; iter++ {
		ego := vehicle.State{
			Pos:   geom.V(0, 1.0+rng.Float64()*5),
			Speed: rng.Float64() * 20,
		}
		n := 1 + rng.Intn(4)
		actors := make([]*actor.Actor, n)
		for i := range actors {
			actors[i] = actor.NewVehicle(i+1, vehicle.State{
				Pos:     geom.V(-20+rng.Float64()*60, 0.8+rng.Float64()*5.4),
				Speed:   rng.Float64() * 15,
				Heading: (rng.Float64() - 0.5) * 0.4,
			})
		}
		trajs := actor.PredictAll(actors, cfg.NumSlices(), cfg.SliceDt)
		obs := BuildObstacles(actors, trajs, cfg)

		empty := Compute(road, nil, ego, cfg)
		all := Compute(road, obs.Collide(), ego, cfg)
		if all.Volume > empty.Volume*tolerance {
			t.Fatalf("iter %d: tube with obstacles (%v) exceeds empty tube (%v)",
				iter, all.Volume, empty.Volume)
		}
		for i := range actors {
			without := Compute(road, obs.CollideWithout(i), ego, cfg)
			if without.Volume > empty.Volume*tolerance {
				t.Fatalf("iter %d: tube without actor %d (%v) exceeds empty tube (%v)",
					iter, i, without.Volume, empty.Volume)
			}
			if all.Volume > without.Volume*tolerance+cfg.CellSize*cfg.CellSize {
				t.Fatalf("iter %d: full-scene tube (%v) exceeds counterfactual without actor %d (%v)",
					iter, all.Volume, i, without.Volume)
			}
		}
	}
}

// The tube must be invariant under translation along the road.
func TestTubeTranslationInvariance(t *testing.T) {
	cfg := DefaultConfig()
	road := testRoad()
	a := Compute(road, nil, egoState(0, 1.75, 10), cfg)
	b := Compute(road, nil, egoState(100, 1.75, 10), cfg)
	// Occupancy-grid alignment causes at most a minor difference.
	if diff := a.Volume - b.Volume; diff > 5 || diff < -5 {
		t.Errorf("translation changed volume: %v vs %v", a.Volume, b.Volume)
	}
}

// Mirroring the scene across the road's centre must mirror the tube.
func TestTubeMirrorSymmetry(t *testing.T) {
	cfg := DefaultConfig()
	road := testRoad() // width 7: mirror y' = 7 - y
	blocker := actor.NewVehicle(1, vehicle.State{Pos: geom.V(15, 1.75)})
	trajs := actor.PredictAll([]*actor.Actor{blocker}, cfg.NumSlices(), cfg.SliceDt)
	obs := BuildObstacles([]*actor.Actor{blocker}, trajs, cfg)
	top := Compute(road, obs.Collide(), egoState(0, 1.75, 10), cfg)

	mirrored := actor.NewVehicle(1, vehicle.State{Pos: geom.V(15, 7-1.75)})
	trajs2 := actor.PredictAll([]*actor.Actor{mirrored}, cfg.NumSlices(), cfg.SliceDt)
	obs2 := BuildObstacles([]*actor.Actor{mirrored}, trajs2, cfg)
	bottom := Compute(road, obs2.Collide(), egoState(0, 7-1.75, 10), cfg)

	if diff := top.Volume - bottom.Volume; diff > 8 || diff < -8 {
		t.Errorf("mirror symmetry violated: %v vs %v", top.Volume, bottom.Volume)
	}
}
