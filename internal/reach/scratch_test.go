package reach

import (
	"reflect"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

// A scratch carried across computations — including across different maps
// and cell sizes — must never leak state between tubes: every result equals
// the scratch-free computation.
func TestComputeScratchReuseIdentical(t *testing.T) {
	straight := roadmap.MustStraightRoad(2, 3.5, -50, 500)
	ring, err := roadmap.NewRingRoad(geom.V(0, 0), 15, 22)
	if err != nil {
		t.Fatal(err)
	}
	ringPos, ringHeading := ring.PoseAt(ring.MidRadius(), 0)

	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 10}),
	}
	cfg := DefaultConfig()
	obs := BuildObstacles(actors, actorTrajectories(actors, cfg), cfg)

	small := DefaultConfig()
	small.CellSize = 0.5

	cases := []struct {
		name    string
		m       roadmap.Map
		collide CollisionFunc
		ego     vehicle.State
		cfg     Config
	}{
		{"straight empty", straight, nil, vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}, cfg},
		{"straight obstacles", straight, obs.Collide(), vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}, cfg},
		{"straight fine grid", straight, nil, vehicle.State{Pos: geom.V(20, 5.25), Speed: 4}, small},
		{"ring", ring, nil, vehicle.State{Pos: ringPos, Heading: ringHeading, Speed: 8}, cfg},
	}

	scr := NewScratch()
	for round := 0; round < 2; round++ { // second round reuses warm scratch
		for _, tc := range cases {
			want := Compute(tc.m, tc.collide, tc.ego, tc.cfg)
			got := ComputeScratch(tc.m, tc.collide, tc.ego, tc.cfg, scr)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("round %d %s: scratch result diverges\n got %+v\nwant %+v",
					round, tc.name, got, want)
			}
		}
	}
}

func actorTrajectories(actors []*actor.Actor, cfg Config) []actor.Trajectory {
	return actor.PredictAll(actors, cfg.NumSlices(), cfg.SliceDt)
}
