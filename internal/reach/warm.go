package reach

import (
	"math"
	"math/bits"

	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// Temporal-coherence warm start for the shared-expansion engine.
//
// Session traffic scores nearly the same scene every tick: the ego root is
// often bitwise-stable across ticks and most actors move a few centimetres.
// ComputeCounterfactualsWarm exploits that by memoizing, per (exact parent
// state, slice) frontier entry, the two pure quantities the cold engine
// spends nearly all its time on — the bicycle-model integration endpoint
// and the path-sweep collision verdict of each control — and replaying
// every other decision (dedup claims, MaxStates caps, grid marks,
// per-world tallies) from scratch each tick. Because only pure functions
// of bitwise-equal inputs are substituted, the output is bit-for-bit the
// cold engine's; the differential and fuzz suites in warm_test.go / sti
// enforce that bar.
//
// Why a memoized verdict is sound to reuse (DESIGN.md §11 has the long
// form):
//
//   - A path sweep's world-mask effect always collapses to one of a few
//     forms: PASS (no substep hits any actor), ONLY(i) (every hitting
//     substep hits exactly actor i and nobody else), ZERO (two distinct
//     actors hit), or OFFROAD (a substep leaves the drivable area). Each substep
//     intersects the possible-set with the all-worlds mask, a single world
//     bit, or the empty mask; such masks are closed under intersection and
//     ZERO is absorbing, so the composition over substeps is again one of
//     the three forms, independent of the incoming possible-set.
//   - The verdict depends only on the map (immutable within a warm epoch),
//     the swept footprints (pure function of the parent state and control),
//     and the actor footprints overlapping the swept AABB. With a PASS or
//     ONLY verdict the hit-set decomposes per actor: an actor whose
//     footprints at the sweep's two obstacle slices are bitwise-unchanged
//     since the verdict was recorded, or whose changed placements (old AND
//     new) miss the recorded swept AABB, contributes exactly what it
//     contributed then. Only the remaining "suspects" are re-swept, and
//     their fresh hits are merged with the memoized hit-set; the merge is
//     exact because PASS/ONLY verdicts record the hit-set completely (PASS
//     = nobody, ONLY(i) = exactly i) and the drivability of the unchanged
//     path cannot change within an epoch.
//   - ZERO verdicts decompose the same way as long as the complete blocker
//     set was recorded: the sweep records up to three distinct hit actors
//     over the full path, and the verdict is a pure function of that set
//     (empty = PASS, singleton = ONLY, larger = ZERO). Only when a fourth
//     distinct blocker appears does the sweep stop early with an opaque
//     ZERO, which is reused only when no suspect overlaps its recorded
//     swept prefix AABB and fully re-swept otherwise (the prefix AABB
//     suffices: the causes lie entirely within the substeps already swept,
//     and the replayed prefix is bitwise the same path). OFFROAD verdicts
//     depend on no actor at all — only the path (pure) and the map
//     (epoch-immutable) — so they are reused unconditionally for as long
//     as the memo entry lives.
//   - Completeness: the swept AABB lies inside the slice's broad-phase
//     window (each substep footprint stays within the frontier envelope
//     plus the travel+radius margin that defines the window), so every
//     actor that can overlap the path was scanned when the verdict was
//     recorded. An unchanged, unscanned actor cannot newly intersect it.
//
// A WarmState is single-session state: it must never be shared between two
// concurrent computations (sti.WarmState wraps it with an ownership gate).
var (
	telWarmReused      = telemetry.NewCounter("reach.warm.reused_states")
	telWarmInvalidated = telemetry.NewCounter("reach.warm.invalidated_states")
)

// Path-sweep verdict forms (see the collapse argument above). Off-road is
// split out of ZERO because it is actor-independent: the replayed path is
// bitwise the recorded one and the map is immutable within an epoch, so an
// off-road verdict can never flip — it is reused without any suspect check
// for as long as the memo entry lives.
const (
	verdictNone       uint8 = iota // not memoized yet
	verdictPass                    // no actor hit: every incoming world survives
	verdictOnly                    // exactly one actor hit: only its world survives
	verdictZero                    // 2-3 distinct blockers, all recorded: no world survives
	verdictZeroOpaque              // 4+ distinct blockers, sweep stopped early
	verdictOffroad                 // a substep leaves the map: no world survives, ever
)

// warmMaxHits caps the recorded blocker set. A sweep that would exceed it
// degrades to an opaque ZERO — still correct, just revalidated by a full
// re-sweep instead of a per-suspect merge.
const warmMaxHits = 3

// warmMemoMaxParents caps the parent table. A tick that would exceed it
// resets the table instead — correctness is untouched (the next tick just
// runs cold-speed) and a runaway session cannot hold unbounded memory
// (with paths and substep boxes the arenas cost roughly 1.7 KiB per parent
// at the default six controls and five substeps, ~55 MiB at this cap).
const warmMemoMaxParents = 1 << 15

// warmPKey identifies a frontier entry: the exact parent state (as raw
// float bits — bitwise equality is what the engine promises, and packed
// words compare faster than floats) and the slice it propagates from (a
// verdict depends on the slice's obstacle footprints, so the same parent
// state reached in a different slice is a different candidate). All
// controls of a parent share one key; their memoized data lives in a
// contiguous block of the control arena, so the hot loop pays one hash
// probe per parent instead of one per control.
type warmPKey [5]uint64

func makeWarmKey(st vehicle.State, slice int32) warmPKey {
	return warmPKey{
		math.Float64bits(st.Pos.X),
		math.Float64bits(st.Pos.Y),
		math.Float64bits(st.Heading),
		math.Float64bits(st.Speed),
		uint64(uint32(slice)),
	}
}

func hashWarmKey(k warmPKey) uint64 {
	h := k[0]
	h = (h ^ k[1]) * 0x9e3779b97f4a7c15
	h = (h ^ k[2]) * 0xff51afd7ed558ccd
	h = (h ^ k[3] ^ k[4]) * 0x9e3779b97f4a7c15
	h ^= h >> 33
	return h
}

// warmCtrl is one memoized (parent, control) candidate: the integration
// endpoint (pure kinematics, never expires within an epoch) plus the latest
// path-sweep verdict, the complete blocker set it collapsed from (when it
// fits warmMaxHits), and the swept AABB it was judged over.
type warmCtrl struct {
	s2         vehicle.State
	pathMin    geom.Vec2
	pathMax    geom.Vec2
	skey       stateKey // dedup key of s2 (pure kinematics, cached with it)
	verdictGen uint32
	hits       [warmMaxHits]int32 // the distinct actors hit, hits[:nhits]
	child      int32              // arena base of s2's own block next slice (a hint, verified by key)
	nsub       uint8
	nhits      uint8
	verdict    uint8
}

// subBox is one substep footprint's AABB, rounded conservatively outward to
// float32. PASS/ONLY sweeps record one per substep; a suspect whose changed
// placements miss every substep box cannot have changed the verdict, so the
// entry is reused without re-integrating the path.
type subBox struct {
	minX, minY, maxX, maxY float32
}

// f32lo / f32hi round a float64 to float32 without crossing it (toward
// -Inf / +Inf), keeping stored substep boxes a superset of the true AABB.
func f32lo(x float64) float32 {
	y := float32(x)
	if float64(y) > x {
		y = math.Nextafter32(y, float32(math.Inf(-1)))
	}
	return y
}

func f32hi(x float64) float32 {
	y := float32(x)
	if float64(y) < x {
		y = math.Nextafter32(y, float32(math.Inf(1)))
	}
	return y
}

type warmParent struct {
	key  warmPKey
	base int32 // nc consecutive warmCtrl slots in the arena
}

// warmMemo is the candidate table: parents open-addressed with full key
// equality, generation-stamped so a full reset is O(1); per-control data in
// a flat arena indexed by parent.base.
type warmMemo struct {
	parents []warmParent
	gen     []uint32
	ctrls   []warmCtrl
	subs    []subBox    // stride slots per ctrl: substep AABBs of the last sweep
	paths   []pathState // stride slots per ctrl: the integrated path, never re-derived
	bkeys   []warmPKey  // one per block: the parent key it was inserted under
	nc      int
	stride  int // cfg.SubSteps at epoch start
	cur     uint32
	n       int
}

// resetAll empties the table (full invalidation / epoch boundary).
func (m *warmMemo) resetAll() {
	m.cur++
	m.n = 0
	m.ctrls = m.ctrls[:0]
	m.subs = m.subs[:0]
	m.paths = m.paths[:0]
	m.bkeys = m.bkeys[:0]
	if m.cur == 0 { // stamp wrapped: old entries would look live again
		clear(m.gen)
		m.cur = 1
	}
}

// ensureControls pins the per-parent control count and substep stride for
// this epoch; a mismatch (config change without a full invalidation —
// defensive, the caller's cfg equality check already forces one) restarts
// the table.
func (m *warmMemo) ensureControls(nc, stride int) {
	if m.nc != nc || m.stride != stride {
		m.nc = nc
		m.stride = stride
		m.resetAll()
	}
}

// lookupOrInsert returns the arena base for parent k, inserting a fresh
// zeroed control block on miss. existed reports whether the block carries
// memoized integrations. The base is stable for the rest of the tick (the
// arena only grows at parent insertion, never between controls).
func (m *warmMemo) lookupOrInsert(k warmPKey) (base int32, existed bool) {
	if 2*(m.n+1) > len(m.parents) {
		if len(m.parents) >= warmMemoMaxParents {
			// At capacity: restart the table rather than grow without bound.
			m.resetAll()
		} else {
			m.grow()
		}
	}
	mask := uint64(len(m.parents) - 1)
	for i := hashWarmKey(k) & mask; ; i = (i + 1) & mask {
		if m.gen[i] != m.cur {
			base = m.newBlock()
			m.bkeys = append(m.bkeys, k)
			m.parents[i] = warmParent{key: k, base: base}
			m.gen[i] = m.cur
			m.n++
			return base, false
		}
		if m.parents[i].key == k {
			return m.parents[i].base, true
		}
	}
}

// lookupVia resolves parent k through a producing ctrl's child hint,
// falling back to (and refreshing the hint from) the hash table. pci < 0
// means no producer is known (the root frontier entry). The hint is only
// ever trusted after its block key matches exactly, so a stale or clobbered
// hint degrades to one hash probe, never to a wrong block.
func (m *warmMemo) lookupVia(pci int32, k warmPKey) (base int32, existed bool) {
	if pci >= 0 && int(pci) < len(m.ctrls) {
		if ch := m.ctrls[pci].child; ch >= 0 && int(ch)+m.nc <= len(m.ctrls) && m.bkeys[int(ch)/m.nc] == k {
			return ch, true
		}
		base, existed = m.lookupOrInsert(k)
		if int(pci) < len(m.ctrls) { // a mid-tick reset may have shrunk the arena
			m.ctrls[pci].child = base
		}
		return base, existed
	}
	return m.lookupOrInsert(k)
}

// newBlock extends the control arena by one zeroed nc-slot block (plus the
// matching substep-AABB and path slots, which need no zeroing: they are
// only read through a ctrl entry that wrote them — paths at integration,
// substep AABBs during the sweep).
func (m *warmMemo) newBlock() int32 {
	base := len(m.ctrls)
	if base+m.nc <= cap(m.ctrls) {
		m.ctrls = m.ctrls[:base+m.nc]
		clear(m.ctrls[base:])
	} else {
		m.ctrls = append(m.ctrls, make([]warmCtrl, m.nc)...)
	}
	want := (base + m.nc) * m.stride
	if want <= cap(m.subs) {
		m.subs = m.subs[:want]
	} else {
		m.subs = append(m.subs, make([]subBox, want-len(m.subs))...)
	}
	if want <= cap(m.paths) {
		m.paths = m.paths[:want]
	} else {
		m.paths = append(m.paths, make([]pathState, want-len(m.paths))...)
	}
	return int32(base)
}

// ctrlSubs returns the substep-AABB slots for control slot ci.
func (m *warmMemo) ctrlSubs(ci int32) []subBox {
	return m.subs[int(ci)*m.stride : (int(ci)+1)*m.stride]
}

// ctrlPath returns the integrated-path slots for control slot ci.
func (m *warmMemo) ctrlPath(ci int32) []pathState {
	return m.paths[int(ci)*m.stride : (int(ci)+1)*m.stride]
}

func (m *warmMemo) grow() {
	capOld := len(m.parents)
	capNew := 4096
	if capOld > 0 {
		capNew = capOld * 2
	}
	oldParents, oldGen := m.parents, m.gen
	m.parents = make([]warmParent, capNew)
	m.gen = make([]uint32, capNew)
	if m.cur == 0 {
		m.cur = 1
	}
	mask := uint64(capNew - 1)
	for i, g := range oldGen {
		if g != m.cur {
			continue
		}
		p := &oldParents[i]
		for j := hashWarmKey(p.key) & mask; ; j = (j + 1) & mask {
			if m.gen[j] != m.cur {
				m.parents[j] = *p
				m.gen[j] = m.cur
				break
			}
		}
	}
}

// warmSuspect is one actor whose footprint changed this tick at an
// obstacle slice a given entry slice's sweeps test, with the union AABB of
// its old and new placements there. A memoized verdict whose swept AABB
// misses every suspect box is exact as-is; one that overlaps re-sweeps
// against exactly the overlapping suspects.
type warmSuspect struct {
	idx      int32
	min, max geom.Vec2
}

// roadKey snapshots a map's identity by value: the scene codec materialises
// a fresh map object per request, so pointer identity never matches across
// ticks. Only the stock roadmap types are recognised; anything else is
// never warmed (every tick fully invalidates, which is correct, just not
// fast).
type roadKey struct {
	kind     uint8 // 0 none, 1 straight, 2 ring
	straight roadmap.StraightRoad
	ring     roadmap.RingRoad
}

func roadKeyOf(m roadmap.Map) (roadKey, bool) {
	switch r := m.(type) {
	case *roadmap.StraightRoad:
		return roadKey{kind: 1, straight: *r}, true
	case *roadmap.RingRoad:
		return roadKey{kind: 2, ring: *r}, true
	}
	return roadKey{}, false
}

// WarmState carries one session's cross-tick expansion state: the candidate
// memo, the per-tick suspect lists, and the previous tick's inputs the
// invalidation compares against. It holds no per-tick working memory — that
// still comes from the caller's Scratch exactly as on the cold path.
//
// Ownership: a WarmState belongs to exactly one logical session and must
// not be used by two computations concurrently. The zero value is ready to
// use.
type WarmState struct {
	prevObs  *Obstacles
	prevEgo  vehicle.State
	prevCfg  Config
	prevRoad roadKey

	gen   uint32
	memo  warmMemo
	sus   [][]warmSuspect // per entry slice, this tick's changed actors
	susU  []warmSuspect   // per entry slice, union AABB over sus (fast reject)
	scand []warmSuspect   // per-candidate overlapping-suspect scratch
	fsrc  []int32         // per frontier entry, the ctrl slot that produced it
	nsrc  []int32         // next-frontier counterpart of fsrc
}

// NewWarmState returns an empty warm-start state.
func NewWarmState() *WarmState { return &WarmState{} }

// Reset drops all cross-tick state (session close / pool reuse), retaining
// table capacity.
func (ws *WarmState) Reset() {
	ws.prevObs = nil
	ws.prevEgo = vehicle.State{}
	ws.prevCfg = Config{}
	ws.prevRoad = roadKey{}
	ws.gen = 0
	ws.memo.resetAll()
	for i := range ws.sus {
		ws.sus[i] = ws.sus[i][:0]
	}
}

// WarmStats reports what the warm engine did for one tick.
type WarmStats struct {
	// Hit is false when the tick fully invalidated (first tick, ego root
	// moved, config/map/actor-count changed): nothing could be reused.
	Hit bool
	// Reused counts candidate propagations whose memoized path-sweep
	// verdict was still valid and reused without re-sweeping.
	Reused int
	// Invalidated counts memoized verdicts that could not be reused as-is
	// (a changed actor overlapped their swept AABB, or they were stale) and
	// had to be re-swept, partially or fully.
	Invalidated int
}

// buildSuspects collects, per entry slice, every actor whose footprint
// changed since the previous tick at an obstacle slice that entry's sweeps
// test (an entry-slice-e sweep tests obstacle slices min(e, ns) and
// min(e+1, ns), so a change at obstacle slice s < ns makes the actor a
// suspect at entry slices s-1 and s, and a change at the final obstacle
// slice ns at every entry slice from ns-1 up to the horizon), with the
// union AABB of the old and new placements at the changed slice. ne is the
// number of entry slices the expansion will run (cfg.NumSlices()).
func (ws *WarmState) buildSuspects(obs *Obstacles, ne int) {
	ns := obs.numSlices
	for cap(ws.sus) < ne {
		ws.sus = append(ws.sus[:cap(ws.sus)], nil)
	}
	ws.sus = ws.sus[:ne]
	if cap(ws.susU) < ne {
		ws.susU = make([]warmSuspect, ne)
	}
	ws.susU = ws.susU[:ne]
	for e := range ws.sus {
		ws.sus[e] = ws.sus[e][:0]
	}
	for i := range obs.boxes {
		prev, cur := ws.prevObs.boxes[i], obs.boxes[i]
		for s := 0; s <= ns; s++ {
			pb, cb := &prev[s], &cur[s]
			if pb.Box == cb.Box {
				continue
			}
			mn := geom.V(math.Min(pb.Min.X, cb.Min.X), math.Min(pb.Min.Y, cb.Min.Y))
			mx := geom.V(math.Max(pb.Max.X, cb.Max.X), math.Max(pb.Max.Y, cb.Max.Y))
			if s < ns {
				if e := s - 1; e >= 0 && e < ne {
					ws.addSuspect(e, int32(i), mn, mx)
				}
				if s < ne {
					ws.addSuspect(s, int32(i), mn, mx)
				}
			} else {
				// Final obstacle slice: clamped into every later entry.
				for e := s - 1; e < ne; e++ {
					if e >= 0 {
						ws.addSuspect(e, int32(i), mn, mx)
					}
				}
			}
		}
	}
}

// addSuspect appends actor i's changed-placement box at entry slice e,
// merging with the actor's previous entry there (an actor changed at both
// tested obstacle slices lands twice in a row — one union box suffices).
func (ws *WarmState) addSuspect(e int, i int32, mn, mx geom.Vec2) {
	l := ws.sus[e]
	if len(l) == 0 {
		ws.susU[e] = warmSuspect{min: mn, max: mx}
	} else {
		u := &ws.susU[e]
		if mn.X < u.min.X {
			u.min.X = mn.X
		}
		if mn.Y < u.min.Y {
			u.min.Y = mn.Y
		}
		if mx.X > u.max.X {
			u.max.X = mx.X
		}
		if mx.Y > u.max.Y {
			u.max.Y = mx.Y
		}
	}
	if k := len(l) - 1; k >= 0 && l[k].idx == i {
		if mn.X < l[k].min.X {
			l[k].min.X = mn.X
		}
		if mn.Y < l[k].min.Y {
			l[k].min.Y = mn.Y
		}
		if mx.X > l[k].max.X {
			l[k].max.X = mx.X
		}
		if mx.Y > l[k].max.Y {
			l[k].max.Y = mx.Y
		}
		return
	}
	ws.sus[e] = append(l, warmSuspect{idx: i, min: mn, max: mx})
}

// overlapping fills ws.scand with the suspects at entry slice e whose boxes
// overlap the swept AABB [pmin, pmax]. The per-slice union AABB rejects
// candidates clear of every changed actor with one test.
func (ws *WarmState) overlapping(e int, pmin, pmax geom.Vec2) []warmSuspect {
	l := ws.sus[e]
	if len(l) == 0 {
		return nil
	}
	if u := &ws.susU[e]; u.min.X > pmax.X || pmin.X > u.max.X || u.min.Y > pmax.Y || pmin.Y > u.max.Y {
		return nil
	}
	out := ws.scand[:0]
	for si := range l {
		sp := &l[si]
		if sp.min.X <= pmax.X && pmin.X <= sp.max.X && sp.min.Y <= pmax.Y && pmin.Y <= sp.max.Y {
			out = append(out, *sp)
		}
	}
	ws.scand = out
	return out
}

// subsOverlap reports whether any recorded substep box overlaps any of the
// overlapping suspects' changed placements. When none does, the suspects
// cannot have altered a PASS/ONLY verdict and it is reused as-is.
func subsOverlap(subs []subBox, nsub int, cand []warmSuspect) bool {
	for j := 0; j < nsub; j++ {
		sb := &subs[j]
		for si := range cand {
			sp := &cand[si]
			if float64(sb.minX) <= sp.max.X && sp.min.X <= float64(sb.maxX) &&
				float64(sb.minY) <= sp.max.Y && sp.min.Y <= float64(sb.maxY) {
				return true
			}
		}
	}
	return false
}

// ComputeCounterfactualsWarm is ComputeCounterfactuals with temporal
// coherence: ws carries the previous tick's candidate memo and the result
// is bit-for-bit identical to the cold call. ws must be owned by the
// calling session for the duration of the call; scr may be nil.
func ComputeCounterfactualsWarm(m roadmap.Map, obs *Obstacles, ego vehicle.State, cfg Config, scr *Scratch, ws *WarmState) (SharedTubes, WarmStats) {
	if ws == nil {
		return ComputeCounterfactuals(m, obs, ego, cfg, scr), WarmStats{}
	}
	n := obs.NumActors()
	numWorlds := 1 + n
	words := (numWorlds + 63) / 64
	res := SharedTubes{
		WithoutVolume: make([]float64, n),
		Represented:   n,
		MaskWords:     words,
	}
	if scr == nil {
		scr = NewScratch()
	}
	telSharedComputes.Inc()
	telSharedWorlds.Observe(float64(numWorlds))

	// Warm iff everything the memoized candidates depend on beyond the
	// suspect set is bitwise-unchanged: the exact ego root (ε = 0 — any
	// root motion re-anchors the whole expansion), the configuration, the
	// map by value, and the actor count (world-bit indices shift with it).
	rk, cacheable := roadKeyOf(m)
	warm := cacheable && ws.prevObs != nil && ws.prevEgo == ego && ws.prevCfg == cfg &&
		ws.prevRoad == rk && ws.prevObs.NumActors() == n && ws.prevObs.numSlices == obs.numSlices
	if !warm {
		ws.memo.resetAll()
	}
	ws.gen++
	if ws.gen == 0 { // generation wrapped: stale verdictGens could alias
		ws.memo.resetAll()
		ws.gen = 1
	}
	if warm {
		ws.buildSuspects(obs, cfg.NumSlices())
	} else {
		for e := range ws.sus {
			ws.sus[e] = ws.sus[e][:0]
		}
	}

	stats := WarmStats{Hit: warm}
	if words == 1 {
		warmSingleWord(m, obs, ego, cfg, scr, ws, &res, numWorlds, &stats)
	} else {
		warmSegmented(m, obs, ego, cfg, scr, ws, &res, numWorlds, words, &stats)
	}

	ws.prevEgo, ws.prevCfg, ws.prevRoad = ego, cfg, rk
	ws.prevObs = obs
	if !cacheable {
		ws.prevObs = nil // unknown map type: never warm
	}
	telWarmReused.Add(int64(stats.Reused))
	telWarmInvalidated.Add(int64(stats.Invalidated))
	return res, stats
}

// warmSweep runs the full path sweep for one candidate, filling me with the
// collapsed verdict, the complete blocker set (when it fits warmMaxHits),
// and the swept AABB (the union of every prepared substep footprint's
// AABB). It also records each substep footprint's AABB into subs,
// conservatively rounded to float32 — the prefilter later ticks use to
// reuse verdicts without re-sweeping. Unlike the cold sweep it does not
// early-exit on a strike — the complete hit-set is what makes the verdict
// decomposable for later ticks — but off-road and a fourth distinct
// blocker are terminal, so it may stop there with the partial AABB (their
// causes lie entirely within the substeps already swept).
func warmSweep(m roadmap.Map, pm roadmap.PreparedMap, obs *Obstacles, pb *geom.PreparedBox, path []pathState, slice int, act []int32, subs []subBox, me *warmCtrl) {
	s0 := slice
	if s0 > obs.numSlices {
		s0 = obs.numSlices
	}
	s1 := slice + 1
	if s1 > obs.numSlices {
		s1 = obs.numSlices
	}
	var hits [warmMaxHits]int32
	nh := 0
	var pmin, pmax geom.Vec2
	for j := range path {
		ps := &path[j]
		pb.MoveTo(ps.st.Pos, ps.st.Heading, ps.sin, ps.cos)
		subs[j] = subBox{f32lo(pb.Min.X), f32lo(pb.Min.Y), f32hi(pb.Max.X), f32hi(pb.Max.Y)}
		if j == 0 {
			pmin, pmax = pb.Min, pb.Max
		} else {
			if pb.Min.X < pmin.X {
				pmin.X = pb.Min.X
			}
			if pb.Min.Y < pmin.Y {
				pmin.Y = pb.Min.Y
			}
			if pb.Max.X > pmax.X {
				pmax.X = pb.Max.X
			}
			if pb.Max.Y > pmax.Y {
				pmax.Y = pb.Max.Y
			}
		}
		if !drivable(m, pm, pb) {
			me.verdict, me.nhits = verdictOffroad, 0
			me.pathMin, me.pathMax = pmin, pmax
			return
		}
		// Same scan as maskHitsPath: broad-phase survivors only, AABB
		// reject before SAT, footprints at both bounding slice indices.
		for _, i := range act {
			bs := obs.boxes[i]
			a := &bs[s0]
			hit := pb.Min.X <= a.Max.X && a.Min.X <= pb.Max.X &&
				pb.Min.Y <= a.Max.Y && a.Min.Y <= pb.Max.Y && pb.Intersects(a)
			if !hit {
				a = &bs[s1]
				hit = pb.Min.X <= a.Max.X && a.Min.X <= pb.Max.X &&
					pb.Min.Y <= a.Max.Y && a.Min.Y <= pb.Max.Y && pb.Intersects(a)
			}
			if hit {
				known := false
				for k := 0; k < nh; k++ {
					if hits[k] == i {
						known = true
						break
					}
				}
				if !known {
					if nh == warmMaxHits {
						me.verdict, me.nhits = verdictZeroOpaque, 0
						me.pathMin, me.pathMax = pmin, pmax
						return
					}
					hits[nh] = i
					nh++
				}
			}
		}
	}
	me.hits, me.nhits = hits, uint8(nh)
	switch nh {
	case 0:
		me.verdict = verdictPass
	case 1:
		me.verdict = verdictOnly
	default:
		me.verdict = verdictZero
	}
	me.pathMin, me.pathMax = pmin, pmax
}

// warmRevalidate re-judges a memoized PASS, ONLY, or recorded-ZERO verdict
// against only the overlapping suspects: the memoized hit-set restricted to
// non-suspects is still exact (see the soundness argument at the top of the
// file), so the suspects' fresh hits are merged into it and the verdict is
// re-collapsed from the merged set. The path is the recorded one (read from
// the memo arena, never re-integrated), the map verdict of every substep is
// settled (an off-road path never reaches here), and the stored swept AABB
// still covers it — so neither map tests nor AABB accumulation are
// repeated; substeps whose recorded conservative box misses every suspect
// are skipped outright. Should the merged set outgrow warmMaxHits the
// verdict degrades to an opaque ZERO; the stored full-path AABB remains a
// sound (if loose) cover for its future prefix-AABB reuse test.
func warmRevalidate(obs *Obstacles, pb *geom.PreparedBox, path []pathState, slice int, suspects []warmSuspect, subs []subBox, me *warmCtrl) {
	s0 := slice
	if s0 > obs.numSlices {
		s0 = obs.numSlices
	}
	s1 := slice + 1
	if s1 > obs.numSlices {
		s1 = obs.numSlices
	}
	// The union-of-old-and-new suspect boxes decided that this entry must
	// revalidate; the re-sweep itself only tests current placements, so
	// shrink each suspect box (a per-candidate copy) to the AABB of its
	// current boxes at the two tested slices. That tightens the per-substep
	// near gate below without losing any reachable hit.
	for si := range suspects {
		sp := &suspects[si]
		a0, a1 := &obs.boxes[sp.idx][s0], &obs.boxes[sp.idx][s1]
		sp.min = geom.V(math.Min(a0.Min.X, a1.Min.X), math.Min(a0.Min.Y, a1.Min.Y))
		sp.max = geom.V(math.Max(a0.Max.X, a1.Max.X), math.Max(a0.Max.Y, a1.Max.Y))
	}
	var hits [warmMaxHits]int32
	nh := 0
	for k := 0; k < int(me.nhits); k++ {
		h := me.hits[k]
		keep := true
		for si := range suspects {
			if suspects[si].idx == h {
				// A recorded blocker that is itself a suspect: its old hits
				// no longer count, the re-sweep below re-derives them.
				keep = false
				break
			}
		}
		if keep {
			hits[nh] = h
			nh++
		}
	}
	for j := range path {
		sb := &subs[j]
		near := false
		for si := range suspects {
			sp := &suspects[si]
			if float64(sb.minX) <= sp.max.X && sp.min.X <= float64(sb.maxX) &&
				float64(sb.minY) <= sp.max.Y && sp.min.Y <= float64(sb.maxY) {
				near = true
				break
			}
		}
		if !near {
			continue
		}
		ps := &path[j]
		pb.MoveTo(ps.st.Pos, ps.st.Heading, ps.sin, ps.cos)
		for si := range suspects {
			i := suspects[si].idx
			bs := obs.boxes[i]
			a := &bs[s0]
			hit := pb.Min.X <= a.Max.X && a.Min.X <= pb.Max.X &&
				pb.Min.Y <= a.Max.Y && a.Min.Y <= pb.Max.Y && pb.Intersects(a)
			if !hit {
				a = &bs[s1]
				hit = pb.Min.X <= a.Max.X && a.Min.X <= pb.Max.X &&
					pb.Min.Y <= a.Max.Y && a.Min.Y <= pb.Max.Y && pb.Intersects(a)
			}
			if hit {
				known := false
				for k := 0; k < nh; k++ {
					if hits[k] == i {
						known = true
						break
					}
				}
				if !known {
					if nh == warmMaxHits {
						me.verdict, me.nhits = verdictZeroOpaque, 0
						return
					}
					hits[nh] = i
					nh++
				}
			}
		}
	}
	me.hits, me.nhits = hits, uint8(nh)
	switch nh {
	case 0:
		me.verdict = verdictPass
	case 1:
		me.verdict = verdictOnly
	default:
		me.verdict = verdictZero
	}
}

// warmSingleWord mirrors computeSingleWord with the candidate memo spliced
// in; every bookkeeping decision (claims, caps, marks, counters) is
// replayed identically, so the volumes are bitwise the cold engine's.
func warmSingleWord(m roadmap.Map, obs *Obstacles, ego vehicle.State, cfg Config, scr *Scratch, ws *WarmState, res *SharedTubes, numWorlds int, stats *WarmStats) {
	n := numWorlds - 1
	allMask := ^uint64(0) >> (64 - uint(numWorlds))

	scr.resetShared(cfg.CellSize, numWorlds, 1)
	grid := scr.mgrid
	claimed := scr.claimed
	volCount := scr.wvol
	sliceCount := scr.wslice
	numSlices := cfg.NumSlices()
	pm, _ := m.(roadmap.PreparedMap)

	finish := func(states, propagations, pruned int) {
		cs := cfg.CellSize
		res.BaseVolume = float64(volCount[0]) * cs * cs
		for i := 0; i < n; i++ {
			res.WithoutVolume[i] = float64(volCount[1+i]) * cs * cs
		}
		res.States = states
		telSharedStates.Add(int64(states))
		telPropagations.Add(int64(propagations))
		telPruned.Add(int64(pruned))
	}

	// Root: computed cold every tick (one footprint, not worth memoizing).
	egoPb := cfg.Params.Footprint(ego).Prepare()
	live := uint64(0)
	if drivable(m, pm, &egoPb) {
		live = obs.maskHits(&egoPb, 0, allMask)
	}
	if live == 0 {
		finish(0, 0, 0)
		return
	}

	controls := cfg.controls()
	ws.memo.ensureControls(len(controls), cfg.SubSteps)
	tans := make([]float64, len(controls))
	for i, u := range controls {
		tans[i] = math.Tan(u.Steer)
	}
	pb := egoPb
	frontier := append(scr.mfrontier[:0], maskedState{st: ego, w: live})
	fsrc := append(ws.fsrc[:0], -1)
	nsrc := ws.nsrc[:0]
	next := scr.mnext[:0]
	act := scr.mactive
	states, propagations, pruned := 0, 0, 0

	for slice := 0; slice < numSlices && len(frontier) > 0; slice++ {
		claimed.reset()
		clear(sliceCount)
		// Broad phase: identical to the cold path.
		fmin, fmax := frontier[0].st.Pos, frontier[0].st.Pos
		vmax := frontier[0].st.Speed
		for fi := 1; fi < len(frontier); fi++ {
			p := frontier[fi].st.Pos
			if p.X < fmin.X {
				fmin.X = p.X
			}
			if p.Y < fmin.Y {
				fmin.Y = p.Y
			}
			if p.X > fmax.X {
				fmax.X = p.X
			}
			if p.Y > fmax.Y {
				fmax.Y = p.Y
			}
			if v := frontier[fi].st.Speed; v > vmax {
				vmax = v
			}
		}
		travel := math.Min(vmax+cfg.Params.MaxAccel*cfg.SliceDt, cfg.Params.MaxSpeed) * cfg.SliceDt
		margin := travel + egoPb.Radius + 1e-6
		act = obs.activeInto(act[:0],
			geom.V(fmin.X-margin, fmin.Y-margin), geom.V(fmax.X+margin, fmax.Y+margin), slice)
		capMask := uint64(0)
		next = next[:0]
		for fi := range frontier {
			f := &frontier[fi]
			if f.w&^capMask == 0 {
				continue // every world of this parent already capped
			}
			base, existed := ws.memo.lookupVia(fsrc[fi], makeWarmKey(f.st, int32(slice)))
			// Sincos is deferred until a memo miss actually integrates:
			// cold computes it unconditionally, but it only feeds
			// integrate, so skipping it on all-memoized parents changes
			// nothing observable.
			var sin0, cos0 float64
			haveSC := false
			for ui, u := range controls {
				ci := base + int32(ui)
				me := &ws.memo.ctrls[ci]
				if !existed {
					if !haveSC {
						sin0, cos0 = math.Sincos(f.st.Heading)
						haveSC = true
					}
					var nsub int
					me.s2, nsub = cfg.integrate(f.st, sin0, cos0, u, tans[ui], ws.memo.ctrlPath(ci))
					me.nsub = uint8(nsub)
					me.skey = cfg.key(me.s2)
				}
				propagations++
				s2 := me.s2
				k := me.skey
				// Dedup and caps first, exactly like the cold reordering:
				// a duplicate is discarded identically whether or not its
				// sweep would have pruned it, so its verdict need not be
				// resolved at all this tick.
				possible := f.w &^ capMask
				cb, slot := claimed.probe(k)
				possible &^= cb
				if possible == 0 {
					continue
				}
				// Verdict: reuse when resolved earlier this tick (duplicate
				// frontier states re-reach the same candidate), when the
				// entry is off-road (actor-independent, never expires within
				// the epoch), or when the previous tick's verdict survives
				// the suspect checks; merge a decomposable verdict with only
				// the overlapping suspects' fresh hits; fully re-sweep
				// otherwise.
				resolve := true
				if me.verdict != verdictNone {
					if me.verdictGen == ws.gen {
						resolve = false
					} else if me.verdict == verdictOffroad {
						stats.Reused++
						resolve = false
					} else if me.verdictGen == ws.gen-1 {
						sus := ws.overlapping(slice, me.pathMin, me.pathMax)
						if len(sus) == 0 {
							stats.Reused++
							resolve = false
						} else if me.verdict != verdictZeroOpaque {
							resolve = false
							if !subsOverlap(ws.memo.ctrlSubs(ci), int(me.nsub), sus) {
								stats.Reused++
							} else {
								stats.Invalidated++
								warmRevalidate(obs, &pb, ws.memo.ctrlPath(ci)[:me.nsub], slice, sus, ws.memo.ctrlSubs(ci), me)
							}
						} else {
							stats.Invalidated++
						}
					}
				}
				if resolve {
					warmSweep(m, pm, obs, &pb, ws.memo.ctrlPath(ci)[:me.nsub], slice, act, ws.memo.ctrlSubs(ci), me)
				}
				me.verdictGen = ws.gen
				switch me.verdict {
				case verdictOnly:
					possible &= uint64(1) << uint(1+me.hits[0])
				case verdictZero, verdictZeroOpaque, verdictOffroad:
					possible = 0
				}
				if possible == 0 {
					pruned++
					continue
				}
				claimed.orAt(slot, k, possible)
				for b := grid.MarkBits(s2.Pos, possible); b != 0; b &= b - 1 {
					volCount[bits.TrailingZeros64(b)]++
				}
				for b := possible; b != 0; b &= b - 1 {
					w := bits.TrailingZeros64(b)
					sliceCount[w]++
					if sliceCount[w] >= cfg.MaxStates {
						capMask |= uint64(1) << uint(w)
					}
				}
				next = append(next, maskedState{st: s2, w: possible})
				nsrc = append(nsrc, ci)
				states++
			}
		}
		frontier, next = next, frontier[:0]
		fsrc, nsrc = nsrc, fsrc[:0]
	}
	scr.mfrontier, scr.mnext, scr.mactive = frontier, next, act
	ws.fsrc, ws.nsrc = fsrc, nsrc
	finish(states, propagations, pruned)
}

// warmSegmented mirrors computeSegmented with the candidate memo spliced
// in, exactly as warmSingleWord mirrors computeSingleWord.
func warmSegmented(m roadmap.Map, obs *Obstacles, ego vehicle.State, cfg Config, scr *Scratch, ws *WarmState, res *SharedTubes, numWorlds, words int, stats *WarmStats) {
	n := numWorlds - 1

	scr.resetShared(cfg.CellSize, numWorlds, words)
	grid := scr.mgrid
	claimed := scr.sclaimed
	volCount := scr.wvol
	sliceCount := scr.wslice
	numSlices := cfg.NumSlices()
	pm, _ := m.(roadmap.PreparedMap)

	finish := func(states, propagations, pruned int) {
		cs := cfg.CellSize
		res.BaseVolume = float64(volCount[0]) * cs * cs
		for i := 0; i < n; i++ {
			res.WithoutVolume[i] = float64(volCount[1+i]) * cs * cs
		}
		res.States = states
		telSharedStates.Add(int64(states))
		telPropagations.Add(int64(propagations))
		telPruned.Add(int64(pruned))
	}

	egoPb := cfg.Params.Footprint(ego).Prepare()
	possible := scr.sposs
	fullMask(possible, numWorlds)
	if !drivable(m, pm, &egoPb) || !obs.maskHitsSeg(&egoPb, 0, possible) {
		finish(0, 0, 0)
		return
	}

	controls := cfg.controls()
	ws.memo.ensureControls(len(controls), cfg.SubSteps)
	tans := make([]float64, len(controls))
	for i, u := range controls {
		tans[i] = math.Tan(u.Steer)
	}
	pb := egoPb
	fstates := append(scr.sfstates[:0], ego)
	fmasks := append(scr.sfmasks[:0], possible...)
	fsrc := append(ws.fsrc[:0], -1)
	nsrc := ws.nsrc[:0]
	nstates := scr.snstates[:0]
	nmasks := scr.snmasks[:0]
	act := scr.mactive
	capMask := scr.scap
	newBits := scr.snew
	states, propagations, pruned := 0, 0, 0

	for slice := 0; slice < numSlices && len(fstates) > 0; slice++ {
		claimed.reset(words)
		clear(sliceCount)
		clear(capMask)
		fmin, fmax := fstates[0].Pos, fstates[0].Pos
		vmax := fstates[0].Speed
		for fi := 1; fi < len(fstates); fi++ {
			p := fstates[fi].Pos
			if p.X < fmin.X {
				fmin.X = p.X
			}
			if p.Y < fmin.Y {
				fmin.Y = p.Y
			}
			if p.X > fmax.X {
				fmax.X = p.X
			}
			if p.Y > fmax.Y {
				fmax.Y = p.Y
			}
			if v := fstates[fi].Speed; v > vmax {
				vmax = v
			}
		}
		travel := math.Min(vmax+cfg.Params.MaxAccel*cfg.SliceDt, cfg.Params.MaxSpeed) * cfg.SliceDt
		margin := travel + egoPb.Radius + 1e-6
		act = obs.activeInto(act[:0],
			geom.V(fmin.X-margin, fmin.Y-margin), geom.V(fmax.X+margin, fmax.Y+margin), slice)
		nstates = nstates[:0]
		nmasks = nmasks[:0]
		for fi := range fstates {
			fmask := fmasks[fi*words : fi*words+words]
			if !anyUncapped(fmask, capMask) {
				continue // every world of this parent already capped
			}
			base, existed := ws.memo.lookupVia(fsrc[fi], makeWarmKey(fstates[fi], int32(slice)))
			var sin0, cos0 float64
			haveSC := false
			for ui, u := range controls {
				ci := base + int32(ui)
				me := &ws.memo.ctrls[ci]
				if !existed {
					if !haveSC {
						sin0, cos0 = math.Sincos(fstates[fi].Heading)
						haveSC = true
					}
					var nsub int
					me.s2, nsub = cfg.integrate(fstates[fi], sin0, cos0, u, tans[ui], ws.memo.ctrlPath(ci))
					me.nsub = uint8(nsub)
					me.skey = cfg.key(me.s2)
				}
				propagations++
				s2 := me.s2
				k := me.skey
				for w := 0; w < words; w++ {
					possible[w] = fmask[w] &^ capMask[w]
				}
				live, slot := claimed.andNotProbe(k, possible)
				if !live {
					continue
				}
				resolve := true
				if me.verdict != verdictNone {
					if me.verdictGen == ws.gen {
						resolve = false
					} else if me.verdict == verdictOffroad {
						stats.Reused++
						resolve = false
					} else if me.verdictGen == ws.gen-1 {
						sus := ws.overlapping(slice, me.pathMin, me.pathMax)
						if len(sus) == 0 {
							stats.Reused++
							resolve = false
						} else if me.verdict != verdictZeroOpaque {
							resolve = false
							if !subsOverlap(ws.memo.ctrlSubs(ci), int(me.nsub), sus) {
								stats.Reused++
							} else {
								stats.Invalidated++
								warmRevalidate(obs, &pb, ws.memo.ctrlPath(ci)[:me.nsub], slice, sus, ws.memo.ctrlSubs(ci), me)
							}
						} else {
							stats.Invalidated++
						}
					}
				}
				if resolve {
					warmSweep(m, pm, obs, &pb, ws.memo.ctrlPath(ci)[:me.nsub], slice, act, ws.memo.ctrlSubs(ci), me)
				}
				me.verdictGen = ws.gen
				ok := true
				switch me.verdict {
				case verdictOnly:
					ok = strikeOnly(possible, 1+int(me.hits[0]))
				case verdictZero, verdictZeroOpaque, verdictOffroad:
					ok = false
				}
				if !ok {
					pruned++
					continue
				}
				claimed.orAt(slot, k, possible)
				grid.MarkWords(s2.Pos, possible, newBits)
				for w := 0; w < words; w++ {
					for b := newBits[w]; b != 0; b &= b - 1 {
						volCount[w<<6+bits.TrailingZeros64(b)]++
					}
				}
				for w := 0; w < words; w++ {
					for b := possible[w]; b != 0; b &= b - 1 {
						tz := bits.TrailingZeros64(b)
						wi := w<<6 + tz
						sliceCount[wi]++
						if sliceCount[wi] >= cfg.MaxStates {
							capMask[w] |= uint64(1) << uint(tz)
						}
					}
				}
				nstates = append(nstates, s2)
				nmasks = append(nmasks, possible...)
				nsrc = append(nsrc, ci)
				states++
			}
		}
		fstates, nstates = nstates, fstates[:0]
		fmasks, nmasks = nmasks, fmasks[:0]
		fsrc, nsrc = nsrc, fsrc[:0]
	}
	scr.sfstates, scr.sfmasks, scr.snstates, scr.snmasks, scr.mactive = fstates, fmasks, nstates, nmasks, act
	ws.fsrc, ws.nsrc = fsrc, nsrc
	finish(states, propagations, pruned)
}
