// Package reach implements Algorithm 1 of the iPrism paper: computing the
// ego vehicle's escape routes T_{t:t+k} as a reach-tube. Starting from the
// ego state, the kinematic bicycle model is propagated forward through time
// slices of Δt seconds under a set of control inputs; states that collide
// with (predicted) actor trajectories or leave the drivable area are pruned.
// The tube's state-space volume |T| — the area of the occupancy cells its
// surviving states traverse — quantifies the escape routes available.
package reach

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// Telemetry: per-Compute counts are accumulated in locals inside the
// expansion loops and flushed once per tube, keeping the hot path free of
// atomics (collection itself is gated on telemetry.Enable).
var (
	telComputes     = telemetry.NewCounter("reach.computes")
	telStates       = telemetry.NewCounter("reach.states_expanded")
	telPropagations = telemetry.NewCounter("reach.propagations")
	telPruned       = telemetry.NewCounter("reach.pruned")
	telTubeVolume   = telemetry.NewHistogram("reach.tube_volume_m2", telemetry.LinearBuckets(0, 25, 24))
)

// CollisionFunc reports whether the footprint b collides with any obstacle
// during time slice index slice (slice 0 is the current instant). The
// footprint arrives prepared so implementations can run cached broad-phase
// rejections; b is only valid for the duration of the call.
type CollisionFunc func(b *geom.PreparedBox, slice int) bool

// Config holds the reach-tube parameters. The defaults mirror the paper's
// setup: horizon k = 3 s, slices Δt = 0.5 s, boundary-control enumeration
// {0, a_max} × {φ_min, 0, φ_max} (paper optimisation 2), ε-deduplication of
// near-identical states (optimisation 1).
type Config struct {
	Horizon float64 // k: look-ahead in seconds
	SliceDt float64 // Δt: slice length in seconds

	// Samples is the number of extra uniformly spread control samples per
	// state per slice in addition to the boundary set. 0 with BoundaryOnly
	// reproduces the paper's optimised configuration.
	Samples      int
	BoundaryOnly bool

	// Deduplication thresholds (optimisation 1): a new state is ignored if a
	// previously visited state in the same slice lies within these distances.
	PosEps     float64
	HeadingEps float64
	SpeedEps   float64

	// CellSize is the occupancy-grid resolution used to measure |T|.
	CellSize float64

	// MaxStates caps the number of states expanded per slice as a safety
	// valve against pathological configurations.
	MaxStates int

	// SubSteps subdivides each Δt slice when integrating the bicycle model
	// and checking collisions, preventing fast vehicles from tunnelling
	// through obstacles between slice endpoints.
	SubSteps int

	// RecordPoints retains the position of every expanded state in
	// Tube.Points — used by the SVG renderer to draw the reach-tube.
	RecordPoints bool

	Params vehicle.Params
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Horizon:      3.0,
		SliceDt:      0.5,
		Samples:      0,
		BoundaryOnly: true,
		PosEps:       0.5,
		HeadingEps:   0.1,
		SpeedEps:     1.0,
		CellSize:     1.0,
		MaxStates:    4096,
		SubSteps:     5,
		Params:       vehicle.DefaultParams(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Horizon <= 0:
		return fmt.Errorf("reach: horizon must be positive, got %v", c.Horizon)
	case c.SliceDt <= 0 || c.SliceDt > c.Horizon:
		return fmt.Errorf("reach: slice dt %v must be in (0, horizon=%v]", c.SliceDt, c.Horizon)
	case c.PosEps <= 0 || c.HeadingEps <= 0 || c.SpeedEps <= 0:
		return fmt.Errorf("reach: dedup epsilons must be positive")
	case c.CellSize <= 0:
		return fmt.Errorf("reach: cell size must be positive, got %v", c.CellSize)
	case c.MaxStates < 1:
		return fmt.Errorf("reach: max states must be at least 1, got %d", c.MaxStates)
	case c.SubSteps < 1:
		return fmt.Errorf("reach: sub steps must be at least 1, got %d", c.SubSteps)
	}
	return c.Params.Validate()
}

// NumSlices returns the number of Δt slices covering the horizon.
func (c Config) NumSlices() int {
	return int(math.Round(c.Horizon / c.SliceDt))
}

// Tube is the result of a reach-tube computation.
type Tube struct {
	// Volume is the occupied area (m²) of the cells traversed by surviving
	// trajectories — the paper's |T|.
	Volume float64
	// States is the total number of distinct states expanded.
	States int
	// SliceStates[i] is the surviving frontier size after slice i; a zero
	// entry means no escape route extends past that slice (safety hazard).
	SliceStates []int
	// Points holds every expanded state position when
	// Config.RecordPoints is set; empty otherwise.
	Points []geom.Vec2
}

// Depth returns the number of slices with at least one surviving state.
func (t Tube) Depth() int {
	n := 0
	for _, s := range t.SliceStates {
		if s == 0 {
			break
		}
		n++
	}
	return n
}

// controls returns the control set applied at every expansion: always the
// boundary set {0, a_max} × {φ_min, 0, φ_max} (ensuring the tube boundary is
// covered, per the paper), plus an optional uniform lattice of extra samples.
func (c Config) controls() []vehicle.Control {
	p := c.Params
	out := make([]vehicle.Control, 0, 6+c.Samples)
	for _, a := range [...]float64{0, p.MaxAccel} {
		for _, phi := range [...]float64{-p.MaxSteer, 0, p.MaxSteer} {
			out = append(out, vehicle.Control{Accel: a, Steer: phi})
		}
	}
	if c.BoundaryOnly || c.Samples <= 0 {
		return out
	}
	// Deterministic stratified lattice over the full control rectangle
	// [a_min, a_max] × [-φ_max, φ_max]; determinism keeps every experiment
	// reproducible without threading RNGs through the hot path.
	na := int(math.Ceil(math.Sqrt(float64(c.Samples))))
	nphi := (c.Samples + na - 1) / na
	for i := 0; i < na; i++ {
		for j := 0; j < nphi; j++ {
			fa := (float64(i) + 0.5) / float64(na)
			fp := (float64(j) + 0.5) / float64(nphi)
			out = append(out, vehicle.Control{
				Accel: p.MaxBrake + fa*(p.MaxAccel-p.MaxBrake),
				Steer: -p.MaxSteer + fp*2*p.MaxSteer,
			})
		}
	}
	return out
}

type stateKey struct {
	ix, iy, ih, iv int32
}

func (c Config) key(s vehicle.State) stateKey {
	return stateKey{
		ix: int32(math.Floor(s.Pos.X / c.PosEps)),
		iy: int32(math.Floor(s.Pos.Y / c.PosEps)),
		ih: int32(math.Floor(s.Heading / c.HeadingEps)),
		iv: int32(math.Floor(s.Speed / c.SpeedEps)),
	}
}

// keySet is an open-addressed hash set of stateKeys. It replaces a Go map
// in the expansion loop: insertion is a single linear-probe pass (the map
// needed a lookup followed by a store), clearing is a generation bump
// instead of an O(capacity) wipe, and the hash is a fixed multiply-mix with
// no runtime hashing machinery. Exactness is preserved — membership is
// decided by full key equality, the hash only picks the probe start.
type keySet struct {
	keys []stateKey
	gen  []uint32
	cur  uint32
	n    int
}

func newKeySet() *keySet { return &keySet{cur: 1} }

// contains reports membership without modifying the set.
func (ks *keySet) contains(k stateKey) bool {
	if len(ks.keys) == 0 {
		return false
	}
	mask := uint64(len(ks.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		if ks.gen[i] != ks.cur {
			return false
		}
		if ks.keys[i] == k {
			return true
		}
	}
}

// reset empties the set in O(1) by advancing the generation stamp.
func (ks *keySet) reset() {
	ks.cur++
	ks.n = 0
	if ks.cur == 0 { // stamp wrapped: old entries would look live again
		clear(ks.gen)
		ks.cur = 1
	}
}

func hashKey(k stateKey) uint64 {
	h := uint64(uint32(k.ix)) | uint64(uint32(k.iy))<<32
	h ^= (uint64(uint32(k.ih)) | uint64(uint32(k.iv))<<32) * 0x9e3779b97f4a7c15
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// insert adds k and reports whether it was absent. The table grows before
// load factor reaches 1/2.
func (ks *keySet) insert(k stateKey) bool {
	if 2*(ks.n+1) > len(ks.keys) {
		ks.grow()
	}
	mask := uint64(len(ks.keys) - 1)
	for i := hashKey(k) & mask; ; i = (i + 1) & mask {
		if ks.gen[i] != ks.cur {
			ks.keys[i] = k
			ks.gen[i] = ks.cur
			ks.n++
			return true
		}
		if ks.keys[i] == k {
			return false
		}
	}
}

func (ks *keySet) grow() {
	capOld := len(ks.keys)
	capNew := 1024
	if capOld > 0 {
		capNew = capOld * 2
	}
	oldKeys, oldGen := ks.keys, ks.gen
	ks.keys = make([]stateKey, capNew)
	ks.gen = make([]uint32, capNew)
	mask := uint64(capNew - 1)
	for i, g := range oldGen {
		if g != ks.cur {
			continue
		}
		k := oldKeys[i]
		for j := hashKey(k) & mask; ; j = (j + 1) & mask {
			if ks.gen[j] != ks.cur {
				ks.keys[j] = k
				ks.gen[j] = ks.cur
				break
			}
		}
	}
}

// Scratch holds the reusable allocations of a reach-tube computation: the
// frontier/next state slices, the per-slice dedup map and the occupancy
// grid. A Scratch amortises the GC churn of the N+2 tube computations per
// STI evaluation; sti.Evaluator pools one per worker. A Scratch must not be
// used by two computations concurrently. The zero value is not usable;
// construct with NewScratch.
type Scratch struct {
	frontier []vehicle.State
	next     []vehicle.State
	visited  *keySet
	grid     *geom.OccupancyGrid

	// Shared-expansion working memory (ComputeCounterfactuals); allocated
	// lazily on first shared use so legacy-only scratches stay slim.
	mfrontier []maskedState
	mnext     []maskedState
	claimed   *maskedKeySet
	mgrid     *geom.MaskGrid
	wvol      []int   // per-world marked-cell counts
	wslice    []int   // per-world accepted states in the current slice
	mactive   []int32 // actors surviving the per-slice broad phase

	// Segmented-mask working memory (64+-actor scenes): struct-of-arrays
	// frontier (states plus a flat stride-words mask arena) and the
	// per-slice word buffers of computeSegmented.
	sfstates []vehicle.State
	sfmasks  []uint64
	snstates []vehicle.State
	snmasks  []uint64
	sclaimed *segKeySet
	scap     []uint64 // per-slice MaxStates cap mask
	sposs    []uint64 // per-candidate possible-world mask
	snew     []uint64 // MarkWords newly-set-bits buffer
}

// NewScratch returns an empty scratch ready for ComputeScratch.
func NewScratch() *Scratch {
	return &Scratch{
		frontier: make([]vehicle.State, 0, 64),
		next:     make([]vehicle.State, 0, 64),
		visited:  newKeySet(),
		grid:     geom.NewOccupancyGrid(1),
	}
}

// reset readies the scratch for a computation at the given grid resolution,
// retaining capacity wherever the resolution allows it.
func (s *Scratch) reset(cellSize float64) {
	s.frontier = s.frontier[:0]
	s.next = s.next[:0]
	s.visited.reset()
	if s.grid.CellSize() != cellSize {
		s.grid = geom.NewOccupancyGrid(cellSize)
	} else {
		s.grid.Reset()
	}
}

// resetShared readies the shared-expansion working memory for a
// ComputeCounterfactuals call with numWorlds counterfactual worlds packed
// into `words` 64-bit mask words (1 selects the single-word fast path).
func (s *Scratch) resetShared(cellSize float64, numWorlds, words int) {
	if words == 1 {
		if s.claimed == nil {
			s.claimed = newMaskedKeySet()
		}
		s.claimed.reset()
	} else {
		if s.sclaimed == nil {
			s.sclaimed = newSegKeySet(words)
		}
		s.sclaimed.reset(words)
		s.scap = sizeU64(s.scap, words)
		s.sposs = sizeU64(s.sposs, words)
		s.snew = sizeU64(s.snew, words)
	}
	if s.mgrid == nil || s.mgrid.CellSize() != cellSize || s.mgrid.Words() != words {
		s.mgrid = geom.NewMaskGridWords(cellSize, words)
	} else {
		s.mgrid.Reset()
	}
	if cap(s.wvol) < numWorlds {
		s.wvol = make([]int, numWorlds)
		s.wslice = make([]int, numWorlds)
	}
	s.wvol = s.wvol[:numWorlds]
	s.wslice = s.wslice[:numWorlds]
	clear(s.wvol)
	clear(s.wslice)
}

// sizeU64 returns a zeroed []uint64 of length n, reusing buf's backing
// array when it is large enough.
func sizeU64(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// Compute runs Algorithm 1: it returns the reach-tube of the ego vehicle on
// map m, with collisions judged by collide (which may be nil for an empty
// world — the T^∅ counterfactual). It allocates fresh working state; hot
// callers should use ComputeScratch.
func Compute(m roadmap.Map, collide CollisionFunc, ego vehicle.State, cfg Config) Tube {
	return ComputeScratch(m, collide, ego, cfg, nil)
}

// ComputeScratch is Compute with caller-provided working memory. scr may be
// nil (fresh allocations); the result is identical either way, and scr can
// be reused for any subsequent computation.
func ComputeScratch(m roadmap.Map, collide CollisionFunc, ego vehicle.State, cfg Config, scr *Scratch) Tube {
	numSlices := cfg.NumSlices()
	if scr == nil {
		scr = NewScratch()
	}
	scr.reset(cfg.CellSize)
	grid := scr.grid
	tube := Tube{SliceStates: make([]int, numSlices)}
	// Resolve the prepared-footprint fast path once per tube; maps outside
	// the roadmap package fall back to DrivableBox.
	pm, _ := m.(roadmap.PreparedMap)

	telComputes.Inc()
	egoPb := cfg.Params.Footprint(ego).Prepare()
	if !drivable(m, pm, &egoPb) || (collide != nil && collide(&egoPb, 0)) {
		// The ego is already off-road or in contact: no escape routes.
		telTubeVolume.Observe(0)
		return tube
	}

	controls := cfg.controls()
	// The control set is fixed for the whole tube: precompute each
	// control's steering tangent so the sub-step integrator skips the
	// per-step tan (see vehicle.Params.StepTan).
	tans := make([]float64, len(controls))
	for i, u := range controls {
		tans[i] = math.Tan(u.Steer)
	}
	// One prepared footprint reused across every sub-step of the tube —
	// seeded from the start footprint so the half-extents and bounding
	// radius (constant for the whole tube) are prepared exactly once — and
	// one path buffer holding the sub-step states of the candidate under
	// consideration.
	pb := egoPb
	path := make([]pathState, cfg.SubSteps)
	frontier := append(scr.frontier, ego)
	visited := scr.visited
	next := scr.next
	propagations, pruned := 0, 0

	for slice := 0; slice < numSlices; slice++ {
		visited.reset()
		next = next[:0]
	expand:
		for _, s := range frontier {
			// One Sincos per frontier state, shared by all its control
			// branches; StepPath rotates it incrementally per sub-step.
			sin0, cos0 := math.Sincos(s.Heading)
			for ui, u := range controls {
				// Integrate the candidate's sub-step path first — pure
				// kinematics, no footprint work — and discard duplicate
				// endpoints before paying for the drivability and collision
				// sweep. In saturated slices most propagations land on an
				// already-visited dedup cell, and a duplicate is discarded
				// identically whether or not its path would have been pruned
				// (the checks have no effect on surviving states), so this
				// reordering leaves the tube bit-for-bit unchanged.
				s2, nsub := cfg.integrate(s, sin0, cos0, u, tans[ui], path)
				propagations++
				k := cfg.key(s2)
				if visited.contains(k) {
					continue
				}
				if !cfg.pathOK(m, pm, collide, path[:nsub], slice, &pb) {
					pruned++
					continue
				}
				visited.insert(k)
				grid.Mark(s2.Pos)
				if cfg.RecordPoints {
					tube.Points = append(tube.Points, s2.Pos)
				}
				next = append(next, s2)
				if len(next) >= cfg.MaxStates {
					break expand
				}
			}
		}
		tube.SliceStates[slice] = len(next)
		tube.States += len(next)
		if len(next) == 0 {
			break
		}
		frontier, next = next, frontier[:0]
	}
	// Hand the (possibly re-grown) slices back for the next reuse.
	scr.frontier, scr.next = frontier, next
	tube.Volume = grid.Area()
	telStates.Add(int64(tube.States))
	telPropagations.Add(int64(propagations))
	telPruned.Add(int64(pruned))
	telTubeVolume.Observe(tube.Volume)
	return tube
}

func drivable(m roadmap.Map, pm roadmap.PreparedMap, b *geom.PreparedBox) bool {
	if pm != nil {
		return pm.DrivablePrepared(b)
	}
	return m.DrivableBox(b.Box)
}

// pathState is one sub-step of an integrated candidate path, carrying the
// heading sine/cosine StepPath maintains so pathOK can prepare footprints
// without recomputing the trigonometry.
type pathState struct {
	st       vehicle.State
	sin, cos float64
}

// integrate advances one Δt slice of the bicycle model in sub-increments,
// recording every intermediate state into path (pre-sized to SubSteps by
// the caller) and returning the endpoint plus the number of sub-steps
// written. sinH, cosH must hold sincos(s.Heading). The number of sub-steps
// adapts to the state's speed — enough that no sub-step covers more than
// ~half a vehicle length, capped at SubSteps — so slow states stay cheap
// and fast states cannot tunnel between the footprint checks pathOK later
// runs over the recorded states.
func (c Config) integrate(s vehicle.State, sinH, cosH float64, u vehicle.Control, tanSteer float64, path []pathState) (vehicle.State, int) {
	sub := int(math.Ceil(s.Speed * c.SliceDt / (c.Params.Length / 2)))
	if sub < 1 {
		sub = 1
	}
	if sub > c.SubSteps {
		sub = c.SubSteps
	}
	dt := c.SliceDt / float64(sub)
	for j := 0; j < sub; j++ {
		s = c.Params.StepPath(s, u, tanSteer, dt, &sinH, &cosH)
		path[j] = pathState{st: s, sin: sinH, cos: cosH}
	}
	return s, sub
}

// pathOK sweeps the footprint along an integrated sub-step path, rejecting
// the transition if any intermediate footprint leaves the map or collides.
// Intermediate collisions are tested against both bounding slice indices of
// the (moving) obstacles, a conservative sweep approximation.
func (c Config) pathOK(m roadmap.Map, pm roadmap.PreparedMap, collide CollisionFunc, path []pathState, slice int, pb *geom.PreparedBox) bool {
	for i := range path {
		ps := &path[i]
		pb.MoveTo(ps.st.Pos, ps.st.Heading, ps.sin, ps.cos)
		if !drivable(m, pm, pb) {
			return false
		}
		if collide != nil && (collide(pb, slice) || collide(pb, slice+1)) {
			return false
		}
	}
	return true
}
