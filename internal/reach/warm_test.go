package reach

import (
	"math/rand"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/scenario"
)

// requireTubesIdentical asserts got is bitwise-identical to want across
// every observable of a shared expansion — volumes, state count, mask
// shape. This is the warm path's contract: not "close", equal.
func requireTubesIdentical(t *testing.T, tag string, tick int, want, got SharedTubes) {
	t.Helper()
	if got.BaseVolume != want.BaseVolume {
		t.Errorf("%s tick %d: base volume %v, cold %v", tag, tick, got.BaseVolume, want.BaseVolume)
	}
	if got.States != want.States {
		t.Errorf("%s tick %d: states %d, cold %d", tag, tick, got.States, want.States)
	}
	if got.Represented != want.Represented || got.MaskWords != want.MaskWords {
		t.Errorf("%s tick %d: mask %d/%d words, cold %d/%d",
			tag, tick, got.Represented, got.MaskWords, want.Represented, want.MaskWords)
	}
	if len(got.WithoutVolume) != len(want.WithoutVolume) {
		t.Fatalf("%s tick %d: %d without-volumes, cold %d", tag, tick, len(got.WithoutVolume), len(want.WithoutVolume))
	}
	for i := range want.WithoutVolume {
		if got.WithoutVolume[i] != want.WithoutVolume[i] {
			t.Errorf("%s tick %d world /%d: %v, cold %v", tag, tick, i, got.WithoutVolume[i], want.WithoutVolume[i])
		}
	}
}

// replayWarmVsCold replays a recorded session trace through the warm engine
// (one WarmState across all ticks, like a server session) and the cold
// engine side by side, requiring bitwise-identical tubes at every tick.
// Returns the per-tick warm stats for reuse assertions.
func replayWarmVsCold(t *testing.T, tag string, m roadmap.Map, trace []scenario.SessionTick, cfg Config) []WarmStats {
	t.Helper()
	ws := NewWarmState()
	warmScr, coldScr := NewScratch(), NewScratch()
	stats := make([]WarmStats, len(trace))
	for tick, tk := range trace {
		trajs := actor.PredictAll(tk.Actors, cfg.NumSlices(), cfg.SliceDt)
		obs := BuildObstacles(tk.Actors, trajs, cfg)
		want := ComputeCounterfactuals(m, obs, tk.Ego, cfg, coldScr)
		var got SharedTubes
		got, stats[tick] = ComputeCounterfactualsWarm(m, obs, tk.Ego, cfg, warmScr, ws)
		requireTubesIdentical(t, tag, tick, want, got)
	}
	return stats
}

// The tentpole differential property over the three recorded fixture
// traces: straight-road stop-and-go, ring circulation, and the 64-actor
// UrbanCrush crawl (segmented masks). Warm replay must be bitwise-cold at
// every tick, and — since every fixture holds the ego bitwise-static — the
// state must validate from tick 1 on and actually reuse verdicts.
func TestWarmMatchesColdSessionTraces(t *testing.T) {
	cfg := DefaultConfig()
	type traceCase struct {
		tag   string
		m     roadmap.Map
		trace []scenario.SessionTick
	}
	var cases []traceCase
	{
		m, tr := scenario.StopAndGoSession(12, 20)
		cases = append(cases, traceCase{"stop-and-go", m, tr})
	}
	{
		m, tr := scenario.RingSession(8, 20)
		cases = append(cases, traceCase{"ring", m, tr})
	}
	if !testing.Short() {
		m, tr := scenario.UrbanCrushSession(64, 10)
		cases = append(cases, traceCase{"urban-crush-64", m, tr})
	}
	for _, tc := range cases {
		stats := replayWarmVsCold(t, tc.tag, tc.m, tc.trace, cfg)
		if stats[0].Hit {
			t.Errorf("%s: first tick reported a warm hit with no previous state", tc.tag)
		}
		reused := 0
		for tick, st := range stats[1:] {
			if !st.Hit {
				t.Errorf("%s tick %d: warm miss on a bitwise-static ego", tc.tag, tick+1)
			}
			reused += st.Reused
		}
		if reused == 0 {
			t.Errorf("%s: no verdict ever reused across %d warm ticks", tc.tag, len(stats)-1)
		}
	}
}

// Warm replay under a tiny MaxStates cap and coarse dedup: the regimes
// where claim ordering and the cap replay are decisive (the hard cases of
// the cold differential suite) must survive warm substitution too.
func TestWarmMatchesColdStressedConfigs(t *testing.T) {
	m, tr := scenario.StopAndGoSession(12, 12)
	capped := DefaultConfig()
	capped.MaxStates = 8
	replayWarmVsCold(t, "capped", m, tr, capped)

	coarse := DefaultConfig()
	coarse.PosEps = 3.0
	coarse.HeadingEps = 0.5
	coarse.SpeedEps = 4.0
	replayWarmVsCold(t, "coarse", m, tr, coarse)
}

// Every full-invalidation trigger must drop to a cold tick (Hit=false) and
// still produce bitwise-cold results: ego moved, config changed, actor
// count changed, map changed, and an uncacheable map family.
func TestWarmFullInvalidation(t *testing.T) {
	cfg := DefaultConfig()
	m, tr := scenario.StopAndGoSession(12, 2)
	ws := NewWarmState()
	scr := NewScratch()

	score := func(m roadmap.Map, tk scenario.SessionTick, cfg Config) (SharedTubes, WarmStats) {
		trajs := actor.PredictAll(tk.Actors, cfg.NumSlices(), cfg.SliceDt)
		obs := BuildObstacles(tk.Actors, trajs, cfg)
		want := ComputeCounterfactuals(m, obs, tk.Ego, cfg, nil)
		got, st := ComputeCounterfactualsWarm(m, obs, tk.Ego, cfg, scr, ws)
		requireTubesIdentical(t, "invalidation", 0, want, got)
		return got, st
	}

	if _, st := score(m, tr[0], cfg); st.Hit {
		t.Error("fresh WarmState reported a hit")
	}
	if _, st := score(m, tr[1], cfg); !st.Hit {
		t.Error("unchanged session tick missed")
	}

	moved := tr[1]
	moved.Ego.Pos = moved.Ego.Pos.Add(geom.V(0.5, 0))
	if _, st := score(m, moved, cfg); st.Hit {
		t.Error("moved ego still hit")
	}

	score(m, tr[1], cfg) // re-seed
	changed := cfg
	changed.MaxStates = 64
	if _, st := score(m, tr[1], changed); st.Hit {
		t.Error("changed config still hit")
	}

	score(m, tr[1], cfg)
	fewer := tr[1]
	fewer.Actors = fewer.Actors[:len(fewer.Actors)-1]
	if _, st := score(m, fewer, cfg); st.Hit {
		t.Error("dropped actor still hit")
	}

	score(m, tr[1], cfg)
	other := roadmap.MustStraightRoad(4, 3.5, -120, 1100)
	if _, st := score(other, tr[1], cfg); st.Hit {
		t.Error("changed map still hit")
	}
}

// A nil WarmState is the documented cold passthrough.
func TestWarmNilState(t *testing.T) {
	cfg := DefaultConfig()
	m, tr := scenario.StopAndGoSession(12, 1)
	trajs := actor.PredictAll(tr[0].Actors, cfg.NumSlices(), cfg.SliceDt)
	obs := BuildObstacles(tr[0].Actors, trajs, cfg)
	want := ComputeCounterfactuals(m, obs, tr[0].Ego, cfg, nil)
	got, st := ComputeCounterfactualsWarm(m, obs, tr[0].Ego, cfg, nil, nil)
	requireTubesIdentical(t, "nil-state", 0, want, got)
	if st.Hit || st.Reused != 0 || st.Invalidated != 0 {
		t.Errorf("nil WarmState reported warm stats %+v", st)
	}
}

// Reset must drop everything: the next tick is cold even on an identical
// scene.
func TestWarmReset(t *testing.T) {
	cfg := DefaultConfig()
	m, tr := scenario.StopAndGoSession(12, 2)
	ws := NewWarmState()
	for _, tk := range tr {
		trajs := actor.PredictAll(tk.Actors, cfg.NumSlices(), cfg.SliceDt)
		obs := BuildObstacles(tk.Actors, trajs, cfg)
		ComputeCounterfactualsWarm(m, obs, tk.Ego, cfg, nil, ws)
	}
	ws.Reset()
	trajs := actor.PredictAll(tr[1].Actors, cfg.NumSlices(), cfg.SliceDt)
	obs := BuildObstacles(tr[1].Actors, trajs, cfg)
	if _, st := ComputeCounterfactualsWarm(m, obs, tr[1].Ego, cfg, nil, ws); st.Hit {
		t.Error("warm hit straight after Reset")
	}
}

// FuzzWarmVsCold drives a warm session with one actor perturbed per tick —
// the adversarial input for the dirty-region revalidation — across both
// the single-word (12-actor) and segmented (70-actor) engines, with the
// ego occasionally nudged to interleave full invalidations. Every tick
// must stay bitwise-cold.
func FuzzWarmVsCold(f *testing.F) {
	f.Add(int64(1), 0.3, -0.2, 1.0, false, false)
	f.Add(int64(42), -4.0, 0.9, -3.0, true, false)
	f.Add(int64(7), 0.0, 0.0, 0.0, false, true)
	f.Add(int64(99), 12.0, -1.5, 6.0, true, true)
	f.Fuzz(func(t *testing.T, seed int64, dx, dy, dv float64, moveEgo, segmented bool) {
		clamp := func(v, lim float64) float64 {
			switch {
			case v != v: // NaN
				return 0
			case v < -lim:
				return -lim
			case v > lim:
				return lim
			}
			return v
		}
		dx, dy, dv = clamp(dx, 30), clamp(dy, 7), clamp(dv, 10)

		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		road := testRoad()
		n := 12
		if segmented {
			n = 70
		}
		ego, actors := randomScene(rng, n)
		ws := NewWarmState()
		scr := NewScratch()
		for tick := 0; tick < 6; tick++ {
			// Perturb exactly one actor per tick; the fuzzed deltas scale
			// by the tick so consecutive ticks dirty different regions.
			i := rng.Intn(n)
			st := actors[i].State
			st.Pos = st.Pos.Add(geom.V(dx*float64(tick%3), dy*float64(tick%2)))
			st.Speed += dv
			if st.Speed < 0 {
				st.Speed = 0
			}
			actors[i] = actor.NewVehicle(actors[i].ID, st)
			if moveEgo && tick == 3 {
				ego.Pos = ego.Pos.Add(geom.V(1.0, 0))
			}
			trajs := actor.PredictAll(actors, cfg.NumSlices(), cfg.SliceDt)
			obs := BuildObstacles(actors, trajs, cfg)
			want := ComputeCounterfactuals(road, obs, ego, cfg, nil)
			got, _ := ComputeCounterfactualsWarm(road, obs, ego, cfg, scr, ws)
			requireTubesIdentical(t, "fuzz", tick, want, got)
		}
	})
}
