// Package smc implements iPrism's Safety-hazard Mitigation Controller
// (§III-B): a Double-DQN agent that monitors the scene, and overwrites the
// ADS action with a mitigation action (braking, acceleration — lane changes
// as the extension the paper leaves to future work) to proactively reduce
// the combined Safety-Threat Indicator.
//
// The paper's SMC consumes camera frames through a CNN; this reproduction
// substitutes a ground-truth feature vector (ego kinematics, the K nearest
// actors in the ego frame, and the current STI) as documented in DESIGN.md.
// The reward is Eq. 8: α0·(1 − STI^combined) + α1·r_pc − α2·1[a ≠ No-Op].
package smc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/rl"
	"repro/internal/roadmap"
	"repro/internal/sim"
	"repro/internal/sti"
	"repro/internal/vehicle"
)

// Action is one SMC mitigation action.
type Action int

// The SMC action space. NoOp defers to the ADS; Brake and Accelerate are
// the actions evaluated in the paper; LaneLeft/LaneRight implement the
// lane-change extension discussed in §VII.
const (
	NoOp Action = iota
	Brake
	Accelerate
	LaneLeft
	LaneRight
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case NoOp:
		return "no-op"
	case Brake:
		return "brake"
	case Accelerate:
		return "accelerate"
	case LaneLeft:
		return "lane-left"
	case LaneRight:
		return "lane-right"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Config parameterises the SMC.
type Config struct {
	// Actions is the allowed action set; index 0 must be NoOp.
	Actions []Action
	// Reward weights of Eq. 8 (α2 enters negatively).
	Alpha0, Alpha1, Alpha2 float64
	// UseSTI toggles the α0 STI term; false reproduces the paper's
	// "SMC w/o STI" ablation.
	UseSTI bool
	// PerceptionRange limits which actors are featurised and enter the STI
	// computation.
	PerceptionRange float64
	// MaxActors is the number of nearest actors in the feature vector.
	MaxActors int
	// DecisionStride executes a new decision every N simulator steps,
	// holding the previous action in between.
	DecisionStride int
	// EpisodeWorkers bounds the concurrent episode runners during training.
	// 0 or 1 runs the fully serial loop (bitwise-identical to the historical
	// trainer); N>1 runs a pipelined worker pool that is run-to-run
	// deterministic for a fixed seed but follows a different (snapshot-
	// actored) schedule than the serial loop. See DESIGN.md §13.
	EpisodeWorkers int
	// Reach configures the STI evaluator.
	Reach reach.Config
	// DDQN configures the learner.
	DDQN rl.DDQNConfig
}

// DefaultConfig returns the configuration used in the evaluation: braking
// and acceleration actions, STI-dominated reward.
func DefaultConfig() Config {
	return Config{
		Actions:         []Action{NoOp, Brake, Accelerate},
		Alpha0:          1.0,
		Alpha1:          0.3,
		Alpha2:          0.02,
		UseSTI:          true,
		PerceptionRange: 60,
		MaxActors:       4,
		DecisionStride:  2,
		EpisodeWorkers:  1,
		Reach:           reach.DefaultConfig(),
		DDQN:            rl.DefaultDDQNConfig(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if len(c.Actions) < 2 || c.Actions[0] != NoOp {
		return fmt.Errorf("smc: action set must start with NoOp and offer an alternative, got %v", c.Actions)
	}
	if c.MaxActors < 1 {
		return fmt.Errorf("smc: need at least one featurised actor, got %d", c.MaxActors)
	}
	if c.PerceptionRange <= 0 {
		return fmt.Errorf("smc: perception range must be positive, got %v", c.PerceptionRange)
	}
	if c.DecisionStride < 1 {
		return fmt.Errorf("smc: decision stride must be >= 1, got %d", c.DecisionStride)
	}
	if c.EpisodeWorkers < 0 {
		return fmt.Errorf("smc: episode workers must be >= 0, got %d", c.EpisodeWorkers)
	}
	return c.Reach.Validate()
}

// FeatureDim returns the feature-vector length for the configuration.
func (c Config) FeatureDim() int { return 4 + 5*c.MaxActors }

// featurize builds the RL state S_t from an observation: normalised ego
// kinematics (expressed relative to the road geometry, so policies transfer
// between straight roads and the roundabout), the combined STI, and the K
// nearest actors expressed in the ego frame.
func featurize(obs sim.Observation, stiVal float64, cfg Config) []float64 {
	f := make([]float64, cfg.FeatureDim())
	lateral, headingErr := roadRelativePose(obs)
	f[0] = obs.Ego.Speed / 30
	f[1] = lateral
	f[2] = headingErr / math.Pi
	f[3] = stiVal

	visible := nearestActors(obs, cfg)
	sin, cos := math.Sincos(obs.Ego.Heading)
	fwd := geom.V(cos, sin)
	lat := geom.V(-sin, cos)
	egoVel := obs.Ego.Velocity()
	for i := 0; i < cfg.MaxActors && i < len(visible); i++ {
		a := visible[i]
		rel := a.State.Pos.Sub(obs.Ego.Pos)
		dv := a.State.Velocity().Sub(egoVel)
		base := 4 + 5*i
		f[base+0] = geom.Clamp(rel.Dot(fwd)/50, -1, 1)
		f[base+1] = geom.Clamp(rel.Dot(lat)/10, -1, 1)
		f[base+2] = geom.Clamp(dv.Dot(fwd)/30, -1, 1)
		f[base+3] = geom.Clamp(dv.Dot(lat)/30, -1, 1)
		f[base+4] = 1 // presence flag
	}
	return f
}

// roadRelativePose returns the ego's lateral offset from the road centre
// (normalised by the road width) and its heading error relative to the
// local travel direction, for both straight roads and ring roads.
func roadRelativePose(obs sim.Observation) (lateral, headingErr float64) {
	switch road := obs.Map.(type) {
	case *roadmap.StraightRoad:
		width := road.Width()
		if width <= 0 {
			return 0, obs.Ego.Heading
		}
		return (obs.Ego.Pos.Y - width/2) / width, obs.Ego.Heading
	case *roadmap.RingRoad:
		width := road.OuterR - road.InnerR
		radial := obs.Ego.Pos.Dist(road.Center)
		tangent := geom.NormalizeAngle(road.AngleOf(obs.Ego.Pos) + math.Pi/2)
		return (radial - road.MidRadius()) / width, geom.AngleDiff(obs.Ego.Heading, tangent)
	default:
		return 0, obs.Ego.Heading
	}
}

func nearestActors(obs sim.Observation, cfg Config) []*actor.Actor {
	visible := make([]*actor.Actor, 0, len(obs.Actors))
	for _, a := range obs.Actors {
		if a.State.Pos.Dist(obs.Ego.Pos) <= cfg.PerceptionRange {
			visible = append(visible, a)
		}
	}
	sort.Slice(visible, func(i, j int) bool {
		return visible[i].State.Pos.DistSq(obs.Ego.Pos) < visible[j].State.Pos.DistSq(obs.Ego.Pos)
	})
	return visible
}

// applyAction converts an SMC action into a control, overwriting the ADS
// control for everything except NoOp (the ⊗ operator of Fig. 2).
func applyAction(a Action, obs sim.Observation, ads vehicle.Control) vehicle.Control {
	switch a {
	case Brake:
		return vehicle.Control{Accel: obs.EgoParams.MaxBrake, Steer: ads.Steer}
	case Accelerate:
		return vehicle.Control{Accel: obs.EgoParams.MaxAccel, Steer: ads.Steer}
	case LaneLeft:
		return vehicle.Control{Accel: ads.Accel, Steer: laneChangeSteer(obs, +1)}
	case LaneRight:
		return vehicle.Control{Accel: ads.Accel, Steer: laneChangeSteer(obs, -1)}
	default:
		return ads
	}
}

// laneChangeSteer steers one lane width towards +y (dir=+1) or -y (dir=-1)
// on straight roads; on other maps it applies a gentle fixed steer.
func laneChangeSteer(obs sim.Observation, dir float64) float64 {
	if road, ok := obs.Map.(*roadmap.StraightRoad); ok {
		lane, on := road.LaneAt(obs.Ego.Pos.Y)
		if on {
			target := road.LaneCenter(lane) + dir*road.LaneWidth
			latErr := target - obs.Ego.Pos.Y
			return geom.Clamp(0.2*latErr-1.2*obs.Ego.Heading, -obs.EgoParams.MaxSteer, obs.EgoParams.MaxSteer)
		}
	}
	return geom.Clamp(dir*0.2, -obs.EgoParams.MaxSteer, obs.EgoParams.MaxSteer)
}

// SMC is the trained mitigation controller; it implements sim.Mitigator.
type SMC struct {
	cfg    Config
	policy *rl.Policy
	eval   *sti.Evaluator

	// warm retains the previous decision's shared-expansion state so that
	// re-scoring a scene whose ego root has not moved (a braked ego riding
	// out a hazard) reuses the prior tick's path-sweep verdicts. One state
	// per controller instance: CloneForRun hands every concurrent episode
	// its own.
	warm    *sti.WarmState
	prevEgo vehicle.State
	hasPrev bool

	stepsSinceDecision int
	lastAction         Action
}

var _ sim.Mitigator = (*SMC)(nil)

// New wraps a trained policy into a deployable controller.
func New(cfg Config, policy *rl.Policy) (*SMC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Suites clone controllers across an episode-level worker pool, so a
	// single-worker evaluator avoids oversubscribing that pool. The shared-
	// expansion engine (bitwise-equal to the legacy per-actor path) backs
	// the warm start used when the ego root is stationary between decisions;
	// the common moving-ego decision still takes the two-tube
	// EvaluateCombined fast path.
	eval, err := sti.NewEvaluatorOptions(cfg.Reach, sti.Options{Workers: 1, SharedExpansion: true, WarmStart: true})
	if err != nil {
		return nil, err
	}
	return &SMC{cfg: cfg, policy: policy, eval: eval, warm: sti.NewWarmState()}, nil
}

// Config returns the controller's configuration.
func (s *SMC) Config() Config { return s.cfg }

// CloneForRun returns a controller sharing this one's (read-only) policy
// and STI evaluator cache but with independent per-episode state (including
// a private warm-start state), so suites can be evaluated concurrently.
func (s *SMC) CloneForRun() *SMC {
	return &SMC{cfg: s.cfg, policy: s.policy, eval: s.eval, warm: sti.NewWarmState()}
}

// Reset implements sim.Mitigator.
func (s *SMC) Reset() {
	s.stepsSinceDecision = 0
	s.lastAction = NoOp
	s.hasPrev = false
	if s.warm != nil && !s.warm.TryReset() {
		// An evaluation still owns the state (a racing clone misuse);
		// abandon it rather than corrupt the in-flight tick.
		s.warm = sti.NewWarmState()
	}
}

// Mitigate implements sim.Mitigator: every DecisionStride steps it
// featurises the scene (including a fresh STI evaluation with CVTR-
// predicted actor trajectories) and executes the greedy policy action.
func (s *SMC) Mitigate(obs sim.Observation, ads vehicle.Control) (vehicle.Control, bool) {
	if s.stepsSinceDecision > 0 {
		s.stepsSinceDecision = (s.stepsSinceDecision + 1) % s.cfg.DecisionStride
		return applyAction(s.lastAction, obs, ads), s.lastAction != NoOp
	}
	s.stepsSinceDecision = (s.stepsSinceDecision + 1) % s.cfg.DecisionStride

	stiVal := s.currentSTI(obs)
	feats := featurize(obs, stiVal, s.cfg)
	s.lastAction = s.cfg.Actions[s.policy.Act(feats)]
	return applyAction(s.lastAction, obs, ads), s.lastAction != NoOp
}

// LastAction returns the most recent decision.
func (s *SMC) LastAction() Action { return s.lastAction }

func (s *SMC) currentSTI(obs sim.Observation) float64 {
	visible := nearestActors(obs, s.cfg)
	// A reach warm start can only validate when the ego root is bitwise
	// unchanged since the previous decision (a stopped ego riding out a
	// hazard) — any ego motion is a guaranteed cold re-expansion, where the
	// two-tube EvaluateCombined fast path is strictly cheaper than the
	// shared per-actor engine. Gate the warm path on exactly the states
	// that can hit. Both paths return bitwise-identical combined STI (the
	// shared-vs-legacy and warm-vs-cold differential suites), so the gate
	// trades only compute.
	warmable := s.warm != nil && s.hasPrev && len(visible) > 1 && obs.Ego == s.prevEgo
	s.prevEgo = obs.Ego
	s.hasPrev = true
	if warmable {
		trajs := actor.PredictAll(visible, s.cfg.Reach.NumSlices(), s.cfg.Reach.SliceDt)
		res, _ := s.eval.EvaluateWarm(obs.Map, obs.Ego, visible, trajs, s.warm)
		return res.Combined
	}
	return s.eval.CombinedWithPrediction(obs.Map, obs.Ego, visible)
}
