package smc

import (
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/rl"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Training telemetry: the gauges track the latest episode (live training
// curves over expvar), the journal records every episode for offline
// analysis.
var (
	telEpisodes       = telemetry.NewCounter("smc.episodes")
	telTrainCollide   = telemetry.NewCounter("smc.train_collisions")
	telEpisodeSeconds = telemetry.NewHistogram("smc.episode.seconds", telemetry.LatencyBuckets())
	telReward         = telemetry.NewGauge("smc.reward")
	telEpsilon        = telemetry.NewGauge("smc.epsilon")
	telLoss           = telemetry.NewGauge("smc.loss")
	telStepsPerSec    = telemetry.NewGauge("smc.steps_per_sec")
)

// TrainResult summarises an SMC training run.
type TrainResult struct {
	Episodes       int
	EpisodeRewards []float64
	Collisions     int
	// FinalEpsilon is the exploration rate at the end of training.
	FinalEpsilon float64
}

// Train learns the mitigation policy ψ* on the given scenario instances
// (the paper trains on the highest-average-STI accident scenario of each
// typology) with the supplied ADS in the loop. makeDriver must return a
// fresh (or resettable) Driver; it is invoked once.
func Train(scns []scenario.Scenario, makeDriver func() sim.Driver, cfg Config, episodes int) (*SMC, TrainResult, error) {
	var res TrainResult
	if err := cfg.Validate(); err != nil {
		return nil, res, err
	}
	if len(scns) == 0 {
		return nil, res, fmt.Errorf("smc: no training scenarios")
	}
	if episodes < 1 {
		return nil, res, fmt.Errorf("smc: episodes must be >= 1, got %d", episodes)
	}
	learner, err := rl.NewDDQN(cfg.FeatureDim(), len(cfg.Actions), cfg.DDQN)
	if err != nil {
		return nil, res, err
	}
	trainer := &episodeRunner{cfg: cfg, learner: learner}
	if trainer.smc, err = New(cfg, learner.Policy()); err != nil {
		return nil, res, err
	}
	driver := makeDriver()

	for ep := 0; ep < episodes; ep++ {
		scn := scns[ep%len(scns)]
		w, err := scn.Build()
		if err != nil {
			return nil, res, fmt.Errorf("smc: build episode %d: %w", ep, err)
		}
		start := time.Now()
		st, err := trainer.runEpisode(w, driver, scn.MaxSteps)
		if err != nil {
			return nil, res, err
		}
		elapsed := time.Since(start)
		res.EpisodeRewards = append(res.EpisodeRewards, st.reward)
		if st.collided {
			res.Collisions++
			telTrainCollide.Inc()
		}
		eps := learner.Epsilon()
		stepsPerSec := 0.0
		if s := elapsed.Seconds(); s > 0 {
			stepsPerSec = float64(st.steps) / s
		}
		telEpisodes.Inc()
		telEpisodeSeconds.Observe(elapsed.Seconds())
		telReward.Set(st.reward)
		telEpsilon.Set(eps)
		telLoss.Set(st.meanLoss())
		telStepsPerSec.Set(stepsPerSec)
		if telemetry.JournalActive() {
			telemetry.Emit("smc.episode", map[string]any{
				"episode":       ep,
				"scenario":      scn.ID,
				"reward":        st.reward,
				"epsilon":       eps,
				"loss":          st.meanLoss(),
				"steps":         st.steps,
				"steps_per_sec": stepsPerSec,
				"collided":      st.collided,
				"seconds":       elapsed.Seconds(),
			})
		}
	}
	res.Episodes = episodes
	res.FinalEpsilon = learner.Epsilon()

	final, err := New(cfg, learner.Policy())
	if err != nil {
		return nil, res, err
	}
	return final, res, nil
}

// episodeRunner holds the pieces shared across training episodes.
type episodeRunner struct {
	cfg     Config
	learner *rl.DDQN
	smc     *SMC // used only for its STI evaluator
}

// episodeStats summarises one training episode for TrainResult and the
// telemetry journal.
type episodeStats struct {
	reward   float64
	steps    int // simulator steps advanced
	lossSum  float64
	lossN    int // learner updates that actually ran
	collided bool
}

// meanLoss returns the mean D-DQN training loss over the episode's updates
// (0 during the replay warm-up, when no update runs).
func (s episodeStats) meanLoss() float64 {
	if s.lossN == 0 {
		return 0
	}
	return s.lossSum / float64(s.lossN)
}

// runEpisode plays one episode with ε-greedy exploration, pushing every
// DecisionStride-spaced transition into the learner.
func (t *episodeRunner) runEpisode(w *sim.World, driver sim.Driver, maxSteps int) (episodeStats, error) {
	var st episodeStats
	driver.Reset()
	for _, b := range w.Behaviors {
		b.Reset()
	}
	if maxSteps <= 0 {
		maxSteps = 400
	}
	obs := w.Observe()
	stiNow := t.smc.currentSTI(obs)
	state := featurize(obs, stiNow, t.cfg)

	for step := 0; step < maxSteps; step += t.cfg.DecisionStride {
		aIdx := t.learner.SelectAction(state, true)
		action := t.cfg.Actions[aIdx]

		// Hold the decision for DecisionStride simulator steps.
		var ev sim.Events
		collided := false
		progress := 0.0
		before := obs.Ego.Pos
		for k := 0; k < t.cfg.DecisionStride; k++ {
			stepObs := w.Observe()
			control := applyAction(action, stepObs, driver.Act(stepObs))
			ev = w.Advance(control)
			st.steps++
			if ev.EgoCollision {
				collided = true
				break
			}
		}
		next := w.Observe()
		progress = next.Ego.Pos.Sub(before).Dot(goalDir(next))

		stiNext := t.smc.currentSTI(next)
		reward := t.reward(action, stiNext, progress, next)
		if collided {
			// A collision is the terminal safety violation: the escape
			// routes are gone, and distance covered while crashing is not
			// path completion.
			stiNext = 1
			reward = t.reward(action, 1, 0, next)
		}
		done := collided || next.Ego.Pos.X >= w.Goal.X || step+t.cfg.DecisionStride >= maxSteps
		nextState := featurize(next, stiNext, t.cfg)
		if loss := t.learner.Observe(rl.Transition{
			State:  state,
			Action: aIdx,
			Reward: reward,
			Next:   nextState,
			Done:   done,
		}); loss != 0 {
			st.lossSum += loss
			st.lossN++
		}
		st.reward += reward
		state = nextState
		obs = next
		if done {
			st.collided = collided
			return st, nil
		}
	}
	return st, nil
}

// reward implements Eq. 8; the α0 term is dropped for the w/o-STI ablation.
func (t *episodeRunner) reward(a Action, stiVal, progress float64, obs sim.Observation) float64 {
	r := 0.0
	if t.cfg.UseSTI {
		r += t.cfg.Alpha0 * (1 - stiVal)
	}
	// Path completion, normalised by the distance an ego at cruise speed
	// covers per decision.
	ideal := obs.EgoParams.MaxSpeed * obs.Dt * float64(t.cfg.DecisionStride)
	if ideal > 0 {
		r += t.cfg.Alpha1 * clampF(progress/ideal, -1, 1)
	}
	if a != NoOp {
		r -= t.cfg.Alpha2
	}
	return r
}

// goalDir is the unit direction towards the goal; degenerate goals (the
// ring road's unbounded goal) fall back to the ego heading.
func goalDir(obs sim.Observation) geom.Vec2 {
	to := obs.Goal.Sub(obs.Ego.Pos)
	if math.IsInf(to.X, 0) || math.IsInf(to.Y, 0) || to.Norm() < 1e-9 {
		sin, cos := math.Sincos(obs.Ego.Heading)
		return geom.V(cos, sin)
	}
	return to.Unit()
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
