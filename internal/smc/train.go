package smc

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/rl"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Training telemetry: the gauges track the latest episode (live training
// curves over expvar), the journal records every episode for offline
// analysis.
var (
	telEpisodes       = telemetry.NewCounter("smc.episodes")
	telTrainCollide   = telemetry.NewCounter("smc.train_collisions")
	telEpisodeSeconds = telemetry.NewHistogram("smc.episode.seconds", telemetry.LatencyBuckets())
	telReward         = telemetry.NewGauge("smc.reward")
	telEpsilon        = telemetry.NewGauge("smc.epsilon")
	telLoss           = telemetry.NewGauge("smc.loss")
	telStepsPerSec    = telemetry.NewGauge("smc.steps_per_sec")
	telEpisodeWorkers = telemetry.NewGauge("smc.episode_workers")
	// telQueueDepth tracks the pipeline's in-flight episode window at each
	// learner consume — the backlog between simulation and the central
	// replay/learner. Serial training holds it at 1 by construction.
	telQueueDepth = telemetry.NewHistogram("smc.replay.queue_depth", telemetry.LinearBuckets(0, 1, 33))
)

// TrainResult summarises an SMC training run.
type TrainResult struct {
	Episodes       int
	EpisodeRewards []float64
	Collisions     int
	// FinalEpsilon is the exploration rate at the end of training.
	FinalEpsilon float64
	// StartEpisode is the first episode this run executed (non-zero when
	// resumed from a checkpoint; EpisodeRewards still covers all episodes).
	StartEpisode int
	// Interrupted reports that the run stopped early on context
	// cancellation; Episodes then counts the episodes actually completed
	// and, with a checkpoint path configured, a final checkpoint holds the
	// exact state to continue from.
	Interrupted bool
}

// TrainOptions configures checkpoint/resume behaviour for TrainContext.
// The zero value trains without checkpoints, like the historical trainer.
type TrainOptions struct {
	// CheckpointPath, when non-empty, receives an atomic checkpoint every
	// CheckpointEvery episodes, at the end of training and on cancellation.
	CheckpointPath string
	// CheckpointEvery is the episode cadence (<=0 defaults to 25). The
	// cadence is on the absolute episode index, so a resumed run keeps the
	// original schedule.
	CheckpointEvery int
	// Resume loads CheckpointPath and continues the run it describes —
	// same ε schedule, same episode sequence, bitwise-equal to never having
	// stopped. A missing checkpoint file starts fresh (so "always pass
	// -resume" is safe for restartable jobs); a corrupt one fails.
	Resume bool
	// RunID stamps journal events for cross-run comparison; defaults to
	// "train-<seed>".
	RunID string
}

// Train learns the mitigation policy ψ* on the given scenario instances
// (the paper trains on the highest-average-STI accident scenario of each
// typology) with the supplied ADS in the loop. makeDriver must return a
// fresh (or resettable) Driver; it is invoked once per episode worker.
func Train(scns []scenario.Scenario, makeDriver func() sim.Driver, cfg Config, episodes int) (*SMC, TrainResult, error) {
	return TrainContext(context.Background(), scns, makeDriver, cfg, episodes, TrainOptions{})
}

// TrainContext is Train with cancellation and checkpoint/resume: on ctx
// cancellation it stops at the next episode boundary, writes a final
// checkpoint (when configured) and returns the partial result with
// Interrupted set and a nil error. cfg.EpisodeWorkers selects the engine:
// 1 is the serial loop, N>1 the pipelined worker pool (see DESIGN.md §13).
func TrainContext(ctx context.Context, scns []scenario.Scenario, makeDriver func() sim.Driver, cfg Config, episodes int, opts TrainOptions) (*SMC, TrainResult, error) {
	var res TrainResult
	if err := cfg.Validate(); err != nil {
		return nil, res, err
	}
	if len(scns) == 0 {
		return nil, res, fmt.Errorf("smc: no training scenarios")
	}
	if episodes < 1 {
		return nil, res, fmt.Errorf("smc: episodes must be >= 1, got %d", episodes)
	}
	if opts.Resume && opts.CheckpointPath == "" {
		return nil, res, fmt.Errorf("smc: resume requested without a checkpoint path")
	}
	workers := cfg.EpisodeWorkers
	if workers < 1 {
		workers = 1
	}
	if opts.RunID == "" {
		opts.RunID = fmt.Sprintf("train-%d", cfg.DDQN.Seed)
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 25
	}

	run := &trainRun{cfg: cfg, opts: opts, scns: scns, episodes: episodes, workers: workers}
	if opts.Resume {
		if _, err := os.Stat(opts.CheckpointPath); err == nil {
			ck, err := LoadCheckpoint(opts.CheckpointPath)
			if err != nil {
				return nil, res, err
			}
			if err := run.restore(ck, &res); err != nil {
				return nil, res, err
			}
		} else if !os.IsNotExist(err) {
			return nil, res, fmt.Errorf("smc: stat checkpoint: %w", err)
		}
	}
	if run.learner == nil {
		learner, err := rl.NewDDQN(cfg.FeatureDim(), len(cfg.Actions), cfg.DDQN)
		if err != nil {
			return nil, res, err
		}
		run.learner = learner
	}
	res.StartEpisode = run.start
	telEpisodeWorkers.Set(float64(workers))

	if run.start < episodes {
		var err error
		if workers == 1 {
			err = run.serial(ctx, makeDriver, &res)
		} else {
			err = run.parallel(ctx, makeDriver, &res)
		}
		if err != nil {
			return nil, res, err
		}
	}
	res.Episodes = len(res.EpisodeRewards)
	res.FinalEpsilon = run.learner.Epsilon()

	final, err := New(cfg, run.learner.Policy())
	if err != nil {
		return nil, res, err
	}
	return final, res, nil
}

// trainRun carries the state shared by the serial and parallel engines.
type trainRun struct {
	cfg      Config
	opts     TrainOptions
	scns     []scenario.Scenario
	episodes int
	workers  int

	learner *rl.DDQN
	start   int // first episode to execute (resume offset)
	// inflight is the parallel engine's acting-snapshot ring restored from
	// a checkpoint: learner snapshots S_k (state after consuming episodes
	// [0,k)) still needed by episodes that were in flight.
	inflight map[int]*actingSnap
}

// actingSnap pins the (policy, ε) pair an episode acts from in the
// pipelined engine.
type actingSnap struct {
	episode int
	epsilon float64
	policy  *rl.Policy
}

// restore loads a checkpoint into the run, validating that it belongs to
// this configuration.
func (r *trainRun) restore(ck *Checkpoint, res *TrainResult) error {
	if ck.Seed != r.cfg.DDQN.Seed {
		return fmt.Errorf("smc: checkpoint seed %d does not match config seed %d", ck.Seed, r.cfg.DDQN.Seed)
	}
	if ck.Workers != r.workers {
		return fmt.Errorf("smc: checkpoint was taken with %d episode workers, run configured for %d", ck.Workers, r.workers)
	}
	learner, err := rl.RestoreDDQN(len(r.cfg.Actions), r.cfg.DDQN, ck.Learner)
	if err != nil {
		return err
	}
	r.learner = learner
	r.start = ck.NextEpisode
	res.EpisodeRewards = append([]float64(nil), ck.Rewards...)
	res.Collisions = ck.Collisions
	if r.workers > 1 {
		r.inflight = make(map[int]*actingSnap, len(ck.Inflight))
		for _, s := range ck.Inflight {
			r.inflight[s.Episode] = &actingSnap{episode: s.Episode, epsilon: s.Epsilon, policy: s.Policy}
		}
		if _, ok := r.inflight[snapKey(r.start, r.workers)]; !ok && r.start < r.episodes {
			return fmt.Errorf("smc: checkpoint lacks the acting snapshot for episode %d", r.start)
		}
	}
	return nil
}

// snapKey is the acting-snapshot index for an episode under the pipelined
// schedule: episode ep acts from S_{max(0, ep-W+1)}, the newest snapshot
// the W-deep pipeline guarantees is published before ep can be dispatched.
// It is a pure function of the episode index, which is what makes the
// parallel engine's transition stream independent of worker scheduling.
func snapKey(ep, workers int) int {
	return max(0, ep-workers+1)
}

// checkpoint writes the run state after `done` consumed episodes; snaps is
// nil for the serial engine.
func (r *trainRun) checkpoint(done int, res *TrainResult, snaps map[int]*actingSnap) error {
	if r.opts.CheckpointPath == "" {
		return nil
	}
	ck := &Checkpoint{
		Version:     checkpointVersion,
		RunID:       r.opts.RunID,
		Seed:        r.cfg.DDQN.Seed,
		Workers:     r.workers,
		NextEpisode: done,
		Rewards:     res.EpisodeRewards,
		Collisions:  res.Collisions,
		Learner:     r.learner.State(),
	}
	for _, s := range snaps {
		ck.Inflight = append(ck.Inflight, actingSnapshot{Episode: s.episode, Epsilon: s.epsilon, Policy: s.policy})
	}
	start := time.Now()
	bytes, err := saveCheckpoint(r.opts.CheckpointPath, ck)
	if err != nil {
		return err
	}
	if telemetry.JournalActive() {
		telemetry.Emit("smc.checkpoint", map[string]any{
			"run_id":       r.opts.RunID,
			"seed":         r.cfg.DDQN.Seed,
			"next_episode": done,
			"workers":      r.workers,
			"path":         r.opts.CheckpointPath,
			"bytes":        bytes,
			"seconds":      time.Since(start).Seconds(),
		})
	}
	return nil
}

// checkpointDue reports whether the cadence fires after `done` consumed
// episodes (absolute index, so resumed runs keep the original schedule).
func (r *trainRun) checkpointDue(done int) bool {
	return r.opts.CheckpointPath != "" && (done%r.opts.CheckpointEvery == 0 || done == r.episodes)
}

// record folds one finished episode into the result and telemetry.
func (r *trainRun) record(ep, worker int, scn scenario.Scenario, st episodeStats, elapsed time.Duration, res *TrainResult) {
	res.EpisodeRewards = append(res.EpisodeRewards, st.reward)
	if st.collided {
		res.Collisions++
		telTrainCollide.Inc()
	}
	eps := r.learner.Epsilon()
	stepsPerSec := 0.0
	if s := elapsed.Seconds(); s > 0 {
		stepsPerSec = float64(st.steps) / s
	}
	telEpisodes.Inc()
	telEpisodeSeconds.Observe(elapsed.Seconds())
	telReward.Set(st.reward)
	telEpsilon.Set(eps)
	telLoss.Set(st.meanLoss())
	telStepsPerSec.Set(stepsPerSec)
	if telemetry.JournalActive() {
		telemetry.Emit("smc.episode", map[string]any{
			"run_id":        r.opts.RunID,
			"seed":          r.cfg.DDQN.Seed,
			"episode":       ep,
			"worker":        worker,
			"scenario":      scn.ID,
			"reward":        st.reward,
			"epsilon":       eps,
			"loss":          st.meanLoss(),
			"steps":         st.steps,
			"steps_per_sec": stepsPerSec,
			"collided":      st.collided,
			"seconds":       elapsed.Seconds(),
		})
	}
}

// serial is the historical training loop: one driver, the learner consulted
// inline at every decision. Its learner call sequence — and therefore every
// weight, ε and reward — is bitwise-identical to the pre-pipeline trainer;
// context checks and checkpoint writes only read state between episodes.
func (r *trainRun) serial(ctx context.Context, makeDriver func() sim.Driver, res *TrainResult) error {
	trainer := &episodeRunner{
		cfg: r.cfg,
		act: func(state []float64) int { return r.learner.SelectAction(state, true) },
		observe: func(t rl.Transition) float64 {
			telQueueDepth.Observe(1)
			return r.learner.Observe(t)
		},
	}
	var err error
	if trainer.smc, err = New(r.cfg, r.learner.Policy()); err != nil {
		return err
	}
	driver := makeDriver()

	for ep := r.start; ep < r.episodes; ep++ {
		if ctx.Err() != nil {
			res.Interrupted = true
			return r.checkpoint(ep, res, nil)
		}
		scn := r.scns[ep%len(r.scns)]
		w, err := scn.Build()
		if err != nil {
			return fmt.Errorf("smc: build episode %d: %w", ep, err)
		}
		start := time.Now()
		st, err := trainer.runEpisode(w, driver, scn.MaxSteps)
		if err != nil {
			return err
		}
		r.record(ep, 0, scn, st, time.Since(start), res)
		if r.checkpointDue(ep + 1) {
			if err := r.checkpoint(ep+1, res, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// episodeJob hands one episode to a worker: the episode index (which fixes
// the scenario and the exploration RNG) and the pinned acting snapshot.
type episodeJob struct {
	ep   int
	snap *actingSnap
	res  chan<- episodeResult
}

// episodeResult is a finished episode travelling back to the learner.
type episodeResult struct {
	ep          int
	worker      int
	stats       episodeStats
	transitions []rl.Transition
	elapsed     time.Duration
	err         error
}

// parallel is the pipelined engine: W workers simulate episodes against
// frozen policy snapshots while the coordinator consumes finished episodes
// strictly in episode order, feeding every transition to the single
// learner. Episode ep acts from snapshot S_{snapKey(ep)} with an
// exploration RNG derived from (seed, ep), so the transition stream the
// learner sees is a pure function of the configuration — run-to-run
// deterministic regardless of worker scheduling — and a checkpoint carrying
// the live snapshot ring resumes bitwise-exactly.
func (r *trainRun) parallel(ctx context.Context, makeDriver func() sim.Driver, res *TrainResult) error {
	base, err := New(r.cfg, r.learner.Policy())
	if err != nil {
		return err
	}

	jobs := make(chan episodeJob)
	var wg sync.WaitGroup
	for i := 0; i < r.workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r.worker(id, makeDriver, base, jobs)
		}(i)
	}
	defer func() {
		close(jobs)
		wg.Wait()
	}()

	snaps := r.inflight
	if snaps == nil {
		// Fresh start: every episode in the first window acts from S_0.
		snaps = map[int]*actingSnap{0: {episode: 0, epsilon: r.learner.Epsilon(), policy: r.learner.Policy()}}
	}
	pending := make(map[int]chan episodeResult, r.workers)
	next := r.start // next episode to dispatch

	for c := r.start; c < r.episodes; c++ {
		if ctx.Err() != nil {
			res.Interrupted = true
		}
		if !res.Interrupted {
			for next < r.episodes && next < c+r.workers {
				ch := make(chan episodeResult, 1)
				pending[next] = ch
				jobs <- episodeJob{ep: next, snap: snaps[snapKey(next, r.workers)], res: ch}
				next++
			}
		}
		if c == next {
			// Interrupted with nothing left in flight.
			return r.checkpoint(c, res, snaps)
		}
		telQueueDepth.Observe(float64(next - c))
		rr := <-pending[c]
		delete(pending, c)
		if rr.err != nil {
			return rr.err
		}
		// The learner consumes the episode's transitions in simulation
		// order; losses are attributed here because in the pipelined
		// schedule updates happen at consume time, not act time.
		st := rr.stats
		st.lossSum, st.lossN = 0, 0
		for _, tr := range rr.transitions {
			if loss := r.learner.Observe(tr); loss != 0 {
				st.lossSum += loss
				st.lossN++
			}
		}
		r.record(c, rr.worker, r.scns[c%len(r.scns)], st, rr.elapsed, res)

		done := c + 1
		snaps[done] = &actingSnap{episode: done, epsilon: r.learner.Epsilon(), policy: r.learner.Policy()}
		for k := range snaps {
			if k < snapKey(done, r.workers) {
				delete(snaps, k)
			}
		}
		if r.checkpointDue(done) || (res.Interrupted && done == next) {
			if err := r.checkpoint(done, res, snaps); err != nil {
				return err
			}
		}
		if res.Interrupted && done == next {
			return nil
		}
	}
	return nil
}

// worker runs episodes from the job channel: pure simulation + STI scoring
// against the job's frozen snapshot, no shared mutable state. Each worker
// owns a driver and an SMC clone (private warm-start state; the evaluator
// itself is concurrency-safe).
func (r *trainRun) worker(id int, makeDriver func() sim.Driver, base *SMC, jobs <-chan episodeJob) {
	driver := makeDriver()
	runner := &episodeRunner{cfg: r.cfg, smc: base.CloneForRun()}
	for job := range jobs {
		scn := r.scns[job.ep%len(r.scns)]
		w, err := scn.Build()
		if err != nil {
			job.res <- episodeResult{ep: job.ep, worker: id, err: fmt.Errorf("smc: build episode %d: %w", job.ep, err)}
			continue
		}
		rng := rand.New(rand.NewSource(episodeSeed(r.cfg.DDQN.Seed, job.ep)))
		var trans []rl.Transition
		runner.act = func(state []float64) int {
			return job.snap.policy.ActEpsilonGreedy(state, job.snap.epsilon, rng, len(r.cfg.Actions))
		}
		runner.observe = func(t rl.Transition) float64 {
			trans = append(trans, t)
			return 0
		}
		start := time.Now()
		st, err := runner.runEpisode(w, driver, scn.MaxSteps)
		job.res <- episodeResult{ep: job.ep, worker: id, stats: st, transitions: trans, elapsed: time.Since(start), err: err}
	}
}

// episodeSeed derives the exploration stream for one episode from the root
// seed and the absolute episode index (splitmix64), so streams are
// independent across episodes and identical across runs and resumes.
func episodeSeed(root int64, ep int) int64 {
	z := uint64(root) + uint64(ep+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z >> 1) // non-negative; rand.NewSource takes any int64 but keep it tidy
}

// episodeRunner holds the pieces shared across training episodes: the
// configuration, the action/observation hooks (inline learner calls for the
// serial engine, snapshot acting + transition capture for workers) and an
// SMC used only for its STI evaluator.
type episodeRunner struct {
	cfg     Config
	act     func(state []float64) int
	observe func(t rl.Transition) float64
	smc     *SMC // used only for its STI evaluator
}

// episodeStats summarises one training episode for TrainResult and the
// telemetry journal.
type episodeStats struct {
	reward   float64
	steps    int // simulator steps advanced
	lossSum  float64
	lossN    int // learner updates that actually ran
	collided bool
}

// meanLoss returns the mean D-DQN training loss over the episode's updates
// (0 during the replay warm-up, when no update runs).
func (s episodeStats) meanLoss() float64 {
	if s.lossN == 0 {
		return 0
	}
	return s.lossSum / float64(s.lossN)
}

// runEpisode plays one episode with ε-greedy exploration, pushing every
// DecisionStride-spaced transition through the observe hook.
func (t *episodeRunner) runEpisode(w *sim.World, driver sim.Driver, maxSteps int) (episodeStats, error) {
	var st episodeStats
	driver.Reset()
	for _, b := range w.Behaviors {
		b.Reset()
	}
	if maxSteps <= 0 {
		maxSteps = 400
	}
	obs := w.Observe()
	stiNow := t.smc.currentSTI(obs)
	state := featurize(obs, stiNow, t.cfg)

	for step := 0; step < maxSteps; step += t.cfg.DecisionStride {
		aIdx := t.act(state)
		action := t.cfg.Actions[aIdx]

		// Hold the decision for DecisionStride simulator steps.
		var ev sim.Events
		collided := false
		progress := 0.0
		before := obs.Ego.Pos
		for k := 0; k < t.cfg.DecisionStride; k++ {
			stepObs := w.Observe()
			control := applyAction(action, stepObs, driver.Act(stepObs))
			ev = w.Advance(control)
			st.steps++
			if ev.EgoCollision {
				collided = true
				break
			}
		}
		next := w.Observe()
		progress = next.Ego.Pos.Sub(before).Dot(goalDir(next))

		stiNext := t.smc.currentSTI(next)
		reward := t.reward(action, stiNext, progress, next)
		if collided {
			// A collision is the terminal safety violation: the escape
			// routes are gone, and distance covered while crashing is not
			// path completion.
			stiNext = 1
			reward = t.reward(action, 1, 0, next)
		}
		done := collided || next.Ego.Pos.X >= w.Goal.X || step+t.cfg.DecisionStride >= maxSteps
		nextState := featurize(next, stiNext, t.cfg)
		if loss := t.observe(rl.Transition{
			State:  state,
			Action: aIdx,
			Reward: reward,
			Next:   nextState,
			Done:   done,
		}); loss != 0 {
			st.lossSum += loss
			st.lossN++
		}
		st.reward += reward
		state = nextState
		obs = next
		if done {
			st.collided = collided
			return st, nil
		}
	}
	return st, nil
}

// reward implements Eq. 8; the α0 term is dropped for the w/o-STI ablation.
func (t *episodeRunner) reward(a Action, stiVal, progress float64, obs sim.Observation) float64 {
	r := 0.0
	if t.cfg.UseSTI {
		r += t.cfg.Alpha0 * (1 - stiVal)
	}
	// Path completion, normalised by the distance an ego at cruise speed
	// covers per decision.
	ideal := obs.EgoParams.MaxSpeed * obs.Dt * float64(t.cfg.DecisionStride)
	if ideal > 0 {
		r += t.cfg.Alpha1 * clampF(progress/ideal, -1, 1)
	}
	if a != NoOp {
		r -= t.cfg.Alpha2
	}
	return r
}

// goalDir is the unit direction towards the goal; degenerate goals (the
// ring road's unbounded goal) fall back to the ego heading.
func goalDir(obs sim.Observation) geom.Vec2 {
	to := obs.Goal.Sub(obs.Ego.Pos)
	if math.IsInf(to.X, 0) || math.IsInf(to.Y, 0) || to.Norm() < 1e-9 {
		sin, cos := math.Sincos(obs.Ego.Heading)
		return geom.V(cos, sin)
	}
	return to.Unit()
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
