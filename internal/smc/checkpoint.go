package smc

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/rl"
)

// checkpointVersion guards the on-disk training-checkpoint schema.
const checkpointVersion = 1

// actingSnapshot is one pinned (policy, ε) pair from the parallel
// pipeline's snapshot ring: the learner state after consuming episodes
// [0, Episode). In-flight episodes act from these, so a checkpoint must
// carry the live ring for a resumed run to re-dispatch those episodes
// against the exact snapshots the uninterrupted run used.
type actingSnapshot struct {
	Episode int        `json:"episode"`
	Epsilon float64    `json:"epsilon"`
	Policy  *rl.Policy `json:"policy"`
}

// Checkpoint is the resumable state of a training run: the full learner
// (both networks with Adam moments, replay ring, step counters, RNG
// position), the episode ledger, and — in parallel mode — the acting-
// snapshot ring for the in-flight window. Restoring it and continuing is
// bitwise-equivalent to never having stopped.
type Checkpoint struct {
	Version     int       `json:"version"`
	RunID       string    `json:"run_id"`
	Seed        int64     `json:"seed"`
	Workers     int       `json:"workers"`
	NextEpisode int       `json:"next_episode"`
	Rewards     []float64 `json:"episode_rewards"`
	Collisions  int       `json:"collisions"`

	Learner  rl.DDQNState     `json:"learner"`
	Inflight []actingSnapshot `json:"inflight,omitempty"`
}

// saveCheckpoint writes ck atomically (see writeFileAtomic); a crash
// mid-save leaves the previous checkpoint intact.
func saveCheckpoint(path string, ck *Checkpoint) (int, error) {
	data, err := json.Marshal(ck)
	if err != nil {
		return 0, fmt.Errorf("smc: encode checkpoint: %w", err)
	}
	if err := writeFileAtomic(path, data); err != nil {
		return 0, fmt.Errorf("smc: write checkpoint: %w", err)
	}
	return len(data), nil
}

// LoadCheckpoint reads a training checkpoint written by a checkpointing
// TrainContext run. A torn or truncated file fails cleanly (the atomic
// writer makes one impossible through crashes, but a copy can be cut).
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("smc: read checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("smc: decode checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("smc: checkpoint %s has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	if ck.NextEpisode < 0 || len(ck.Rewards) != ck.NextEpisode {
		return nil, fmt.Errorf("smc: checkpoint %s is inconsistent: %d rewards for next episode %d", path, len(ck.Rewards), ck.NextEpisode)
	}
	for _, snap := range ck.Inflight {
		if snap.Policy == nil {
			return nil, fmt.Errorf("smc: checkpoint %s: in-flight snapshot %d has no policy", path, snap.Episode)
		}
	}
	return &ck, nil
}
