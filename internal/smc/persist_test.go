package smc

import (
	"path/filepath"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/rl"
	"repro/internal/vehicle"
)

func TestSMCSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Actions = []Action{NoOp, Brake, Accelerate, LaneLeft}
	cfg.Alpha1 = 0.42
	cfg.UseSTI = false
	cfg.MaxActors = 3
	learner, err := rl.NewDDQN(cfg.FeatureDim(), len(cfg.Actions), cfg.DDQN)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := New(cfg, learner.Policy())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "smc.json")
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	got := loaded.Config()
	if len(got.Actions) != 4 || got.Actions[3] != LaneLeft {
		t.Errorf("actions = %v", got.Actions)
	}
	if got.Alpha1 != 0.42 || got.UseSTI || got.MaxActors != 3 {
		t.Errorf("config not restored: %+v", got)
	}

	// Same decision on the same observation.
	obs := testObs(vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}, []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(12, 1.75), Speed: 2}),
	})
	ads := vehicle.Control{Accel: 1}
	orig.Reset()
	loaded.Reset()
	uA, mA := orig.Mitigate(obs, ads)
	uB, mB := loaded.Mitigate(obs, ads)
	if uA != uB || mA != mB {
		t.Errorf("decision mismatch: %+v/%v vs %+v/%v", uA, mA, uB, mB)
	}
}

func TestSMCLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json"), DefaultConfig()); err == nil {
		t.Error("missing file accepted")
	}
}
