package smc

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/agent"
	"repro/internal/rl"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/sti"
)

// trainTestConfig shrinks the learner and ε schedule so training exercises
// replay warm-up, Adam updates and target syncs within a few short episodes.
func trainTestConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.DDQN.Seed = seed
	cfg.DDQN.Hidden = []int{24}
	cfg.DDQN.WarmUp = 60
	cfg.DDQN.BatchSize = 16
	cfg.DDQN.TargetSync = 40
	cfg.DDQN.ReplayCap = 600
	cfg.DDQN.EpsDecaySteps = 300
	return cfg
}

// trainTestScenarios returns a small seeded scenario set with episodes
// clipped short enough for the race detector.
func trainTestScenarios(t *testing.T, n int) []scenario.Scenario {
	t.Helper()
	scns := scenario.Generate(scenario.GhostCutIn, n, 7)
	for i := range scns {
		scns[i].MaxSteps = 80
	}
	return scns
}

func lbcFactory() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }

// policyBytes serialises a trained controller's policy network for bitwise
// comparison between runs.
func policyBytes(t *testing.T, ctrl *SMC) []byte {
	t.Helper()
	raw, err := json.Marshal(ctrl.policy)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// oracleTrain replays the pre-pipeline serial trainer verbatim: a legacy
// single-worker evaluator, the learner consulted inline at every decision,
// no hooks, no checkpoints. It is the frozen reference the refactored
// serial engine must reproduce bitwise.
func oracleTrain(t *testing.T, scns []scenario.Scenario, cfg Config, episodes int) []float64 {
	t.Helper()
	learner, err := rl.NewDDQN(cfg.FeatureDim(), len(cfg.Actions), cfg.DDQN)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := sti.NewEvaluatorOptions(cfg.Reach, sti.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rw := &episodeRunner{cfg: cfg} // reward math only
	driver := lbcFactory()
	var rewards []float64
	for ep := 0; ep < episodes; ep++ {
		scn := scns[ep%len(scns)]
		w, err := scn.Build()
		if err != nil {
			t.Fatal(err)
		}
		driver.Reset()
		for _, b := range w.Behaviors {
			b.Reset()
		}
		maxSteps := scn.MaxSteps
		if maxSteps <= 0 {
			maxSteps = 400
		}
		obs := w.Observe()
		state := featurize(obs, eval.CombinedWithPrediction(obs.Map, obs.Ego, nearestActors(obs, cfg)), cfg)
		epReward := 0.0
		for step := 0; step < maxSteps; step += cfg.DecisionStride {
			aIdx := learner.SelectAction(state, true)
			action := cfg.Actions[aIdx]
			collided := false
			before := obs.Ego.Pos
			for k := 0; k < cfg.DecisionStride; k++ {
				stepObs := w.Observe()
				control := applyAction(action, stepObs, driver.Act(stepObs))
				if ev := w.Advance(control); ev.EgoCollision {
					collided = true
					break
				}
			}
			next := w.Observe()
			progress := next.Ego.Pos.Sub(before).Dot(goalDir(next))
			stiNext := eval.CombinedWithPrediction(next.Map, next.Ego, nearestActors(next, cfg))
			reward := rw.reward(action, stiNext, progress, next)
			if collided {
				stiNext = 1
				reward = rw.reward(action, 1, 0, next)
			}
			done := collided || next.Ego.Pos.X >= w.Goal.X || step+cfg.DecisionStride >= maxSteps
			nextState := featurize(next, stiNext, cfg)
			learner.Observe(rl.Transition{State: state, Action: aIdx, Reward: reward, Next: nextState, Done: done})
			epReward += reward
			state = nextState
			obs = next
			if done {
				break
			}
		}
		rewards = append(rewards, epReward)
	}
	return rewards
}

// The refactored serial engine (EpisodeWorkers:1, hybrid shared-expansion
// evaluator, hook-based episode runner) must reproduce the pre-change
// trainer bitwise on a seeded multi-scenario run: same learner call
// sequence, same STI values, same rewards.
func TestTrainSerialMatchesPreChangeOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("training run; skipped in -short")
	}
	const episodes = 8
	scns := trainTestScenarios(t, 2)
	cfg := trainTestConfig(21)

	want := oracleTrain(t, scns, cfg, episodes)
	_, res, err := Train(scns, lbcFactory, cfg, episodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpisodeRewards) != len(want) {
		t.Fatalf("episode count %d, oracle ran %d", len(res.EpisodeRewards), len(want))
	}
	for i := range want {
		if res.EpisodeRewards[i] != want[i] {
			t.Fatalf("episode %d reward %v, oracle %v (serial engine diverged from pre-change trainer)", i, res.EpisodeRewards[i], want[i])
		}
	}
}

// The pipelined engine must be run-to-run deterministic: two EpisodeWorkers:4
// runs with the same seed produce identical rewards, ε and policy weights
// regardless of goroutine scheduling. Run under -race in CI.
func TestTrainParallelRunToRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("training run; skipped in -short")
	}
	const episodes = 10
	scns := trainTestScenarios(t, 2)
	cfg := trainTestConfig(33)
	cfg.EpisodeWorkers = 4

	ctrl1, res1, err := Train(scns, lbcFactory, cfg, episodes)
	if err != nil {
		t.Fatal(err)
	}
	ctrl2, res2, err := Train(scns, lbcFactory, cfg, episodes)
	if err != nil {
		t.Fatal(err)
	}
	if res1.FinalEpsilon != res2.FinalEpsilon {
		t.Errorf("final epsilon diverged between runs: %v != %v", res1.FinalEpsilon, res2.FinalEpsilon)
	}
	if res1.Collisions != res2.Collisions {
		t.Errorf("collision count diverged between runs: %d != %d", res1.Collisions, res2.Collisions)
	}
	for i := range res1.EpisodeRewards {
		if res1.EpisodeRewards[i] != res2.EpisodeRewards[i] {
			t.Fatalf("episode %d reward diverged between runs: %v != %v", i, res1.EpisodeRewards[i], res2.EpisodeRewards[i])
		}
	}
	if !bytes.Equal(policyBytes(t, ctrl1), policyBytes(t, ctrl2)) {
		t.Error("trained policy weights diverged between identical parallel runs")
	}
}

// resumeMatchesUninterrupted trains to `prefix` episodes (writing the
// end-of-run checkpoint), resumes to the full budget, and requires the
// stitched run to match a one-shot run bitwise.
func resumeMatchesUninterrupted(t *testing.T, workers int) {
	const prefix, episodes = 4, 10
	scns := trainTestScenarios(t, 2)
	cfg := trainTestConfig(44)
	cfg.EpisodeWorkers = workers
	ck := filepath.Join(t.TempDir(), "ck.json")

	ctrlFull, resFull, err := Train(scns, lbcFactory, cfg, episodes)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := TrainContext(context.Background(), scns, lbcFactory, cfg, prefix,
		TrainOptions{CheckpointPath: ck}); err != nil {
		t.Fatal(err)
	}
	ctrlRes, resRes, err := TrainContext(context.Background(), scns, lbcFactory, cfg, episodes,
		TrainOptions{CheckpointPath: ck, Resume: true})
	if err != nil {
		t.Fatal(err)
	}

	if resRes.StartEpisode != prefix {
		t.Fatalf("resumed run started at episode %d, want %d", resRes.StartEpisode, prefix)
	}
	if resRes.Episodes != episodes || resFull.Episodes != episodes {
		t.Fatalf("episode counts: resumed %d, uninterrupted %d, want %d", resRes.Episodes, resFull.Episodes, episodes)
	}
	if resRes.FinalEpsilon != resFull.FinalEpsilon {
		t.Errorf("final epsilon: resumed %v, uninterrupted %v (ε schedule did not continue)", resRes.FinalEpsilon, resFull.FinalEpsilon)
	}
	for i := range resFull.EpisodeRewards {
		if resRes.EpisodeRewards[i] != resFull.EpisodeRewards[i] {
			t.Fatalf("episode %d reward: resumed %v, uninterrupted %v", i, resRes.EpisodeRewards[i], resFull.EpisodeRewards[i])
		}
	}
	if !bytes.Equal(policyBytes(t, ctrlRes), policyBytes(t, ctrlFull)) {
		t.Error("resumed policy weights differ from the uninterrupted run")
	}
}

func TestTrainResumeMatchesUninterruptedSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("training run; skipped in -short")
	}
	resumeMatchesUninterrupted(t, 1)
}

func TestTrainResumeMatchesUninterruptedParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("training run; skipped in -short")
	}
	resumeMatchesUninterrupted(t, 3)
}

// cancellingDriver cancels the run's context at the start of episode
// `after` (counting driver resets), simulating a SIGINT mid-run.
type cancellingDriver struct {
	sim.Driver
	cancel context.CancelFunc
	resets int
	after  int
}

func (d *cancellingDriver) Reset() {
	d.resets++
	if d.resets > d.after {
		d.cancel()
	}
	d.Driver.Reset()
}

// Cancellation must return a partial result with Interrupted set, write a
// final checkpoint, and resuming from it must complete the run bitwise
// identically to one that was never interrupted.
func TestTrainCancellationCheckpointsAndResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("training run; skipped in -short")
	}
	const episodes = 10
	scns := trainTestScenarios(t, 2)
	cfg := trainTestConfig(55)
	ck := filepath.Join(t.TempDir(), "ck.json")

	ctrlFull, resFull, err := Train(scns, lbcFactory, cfg, episodes)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mk := func() sim.Driver { return &cancellingDriver{Driver: lbcFactory(), cancel: cancel, after: 3} }
	_, resCut, err := TrainContext(ctx, scns, mk, cfg, episodes, TrainOptions{CheckpointPath: ck})
	if err != nil {
		t.Fatal(err)
	}
	if !resCut.Interrupted {
		t.Fatal("cancelled run did not report Interrupted")
	}
	if resCut.Episodes == 0 || resCut.Episodes >= episodes {
		t.Fatalf("cancelled run completed %d episodes, want a strict partial run", resCut.Episodes)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("no final checkpoint after cancellation: %v", err)
	}

	ctrlRes, resRes, err := TrainContext(context.Background(), scns, lbcFactory, cfg, episodes,
		TrainOptions{CheckpointPath: ck, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resRes.StartEpisode != resCut.Episodes {
		t.Fatalf("resume started at %d, checkpoint was after %d episodes", resRes.StartEpisode, resCut.Episodes)
	}
	for i := range resFull.EpisodeRewards {
		if resRes.EpisodeRewards[i] != resFull.EpisodeRewards[i] {
			t.Fatalf("episode %d reward after interrupt+resume %v, uninterrupted %v", i, resRes.EpisodeRewards[i], resFull.EpisodeRewards[i])
		}
	}
	if !bytes.Equal(policyBytes(t, ctrlRes), policyBytes(t, ctrlFull)) {
		t.Error("policy after interrupt+resume differs from the uninterrupted run")
	}
}

// A truncated checkpoint (torn write, partial copy) must fail LoadCheckpoint
// and a resume against it must fail rather than silently restart.
func TestTruncatedCheckpointFailsLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("training run; skipped in -short")
	}
	const episodes = 3
	scns := trainTestScenarios(t, 1)
	cfg := trainTestConfig(66)
	ck := filepath.Join(t.TempDir(), "ck.json")

	if _, _, err := TrainContext(context.Background(), scns, lbcFactory, cfg, episodes,
		TrainOptions{CheckpointPath: ck}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ck, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(ck); err == nil {
		t.Error("LoadCheckpoint accepted a truncated checkpoint")
	}
	if _, _, err := TrainContext(context.Background(), scns, lbcFactory, cfg, episodes,
		TrainOptions{CheckpointPath: ck, Resume: true}); err == nil {
		t.Error("resume from a truncated checkpoint did not fail")
	}
}

// A truncated controller file must fail Load cleanly — Save's atomic
// temp+rename means a crash can no longer leave one behind, and a partial
// copy must not load as a half-initialised policy.
func TestTruncatedControllerFailsLoad(t *testing.T) {
	cfg := trainTestConfig(77)
	learner, err := rl.NewDDQN(cfg.FeatureDim(), len(cfg.Actions), cfg.DDQN)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(cfg, learner.Policy())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "smc.json")
	if err := ctrl.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, cfg); err != nil {
		t.Fatalf("intact controller failed to load: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, cfg); err == nil {
		t.Error("Load accepted a truncated controller file")
	}
}

// Resume must refuse a checkpoint taken under a different seed or worker
// count instead of continuing a subtly different run.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("training run; skipped in -short")
	}
	const episodes = 3
	scns := trainTestScenarios(t, 1)
	cfg := trainTestConfig(88)
	ck := filepath.Join(t.TempDir(), "ck.json")
	if _, _, err := TrainContext(context.Background(), scns, lbcFactory, cfg, episodes,
		TrainOptions{CheckpointPath: ck}); err != nil {
		t.Fatal(err)
	}

	badSeed := cfg
	badSeed.DDQN.Seed = 89
	if _, _, err := TrainContext(context.Background(), scns, lbcFactory, badSeed, episodes,
		TrainOptions{CheckpointPath: ck, Resume: true}); err == nil {
		t.Error("resume accepted a checkpoint from a different seed")
	}
	badWorkers := cfg
	badWorkers.EpisodeWorkers = 4
	if _, _, err := TrainContext(context.Background(), scns, lbcFactory, badWorkers, episodes,
		TrainOptions{CheckpointPath: ck, Resume: true}); err == nil {
		t.Error("resume accepted a checkpoint from a different worker count")
	}
}
