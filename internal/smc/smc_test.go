package smc

import (
	"math"
	"testing"

	"repro/internal/actor"
	"repro/internal/agent"
	"repro/internal/geom"
	"repro/internal/rl"
	"repro/internal/roadmap"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func testObs(ego vehicle.State, actors []*actor.Actor) sim.Observation {
	return sim.Observation{
		Map:       roadmap.MustStraightRoad(2, 3.5, -200, 1000),
		Ego:       ego,
		EgoParams: vehicle.DefaultParams(),
		Goal:      geom.V(300, 1.75),
		Dt:        0.1,
		Actors:    actors,
	}
}

func TestActionString(t *testing.T) {
	tests := []struct {
		give Action
		want string
	}{
		{NoOp, "no-op"},
		{Brake, "brake"},
		{Accelerate, "accelerate"},
		{LaneLeft, "lane-left"},
		{LaneRight, "lane-right"},
		{Action(9), "Action(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty actions", func(c *Config) { c.Actions = nil }},
		{"no NoOp first", func(c *Config) { c.Actions = []Action{Brake, NoOp} }},
		{"single action", func(c *Config) { c.Actions = []Action{NoOp} }},
		{"zero max actors", func(c *Config) { c.MaxActors = 0 }},
		{"zero perception", func(c *Config) { c.PerceptionRange = 0 }},
		{"zero stride", func(c *Config) { c.DecisionStride = 0 }},
		{"bad reach", func(c *Config) { c.Reach.CellSize = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestFeatureDim(t *testing.T) {
	c := DefaultConfig()
	c.MaxActors = 4
	if got := c.FeatureDim(); got != 24 {
		t.Errorf("FeatureDim = %d, want 24", got)
	}
}

func TestFeaturizeEgoFields(t *testing.T) {
	cfg := DefaultConfig()
	obs := testObs(vehicle.State{Pos: geom.V(0, 1.75), Heading: 0.1, Speed: 15}, nil)
	f := featurize(obs, 0.4, cfg)
	if f[0] != 0.5 {
		t.Errorf("speed feature = %v", f[0])
	}
	// Lane-0 centre on a 7 m road: (1.75 − 3.5) / 7 = −0.25 from centre.
	if f[1] != -0.25 {
		t.Errorf("lateral feature = %v", f[1])
	}
	if math.Abs(f[2]-0.1/math.Pi) > 1e-12 {
		t.Errorf("heading feature = %v", f[2])
	}
	if f[3] != 0.4 {
		t.Errorf("STI feature = %v", f[3])
	}
	// No actors: all presence flags zero.
	for i := 0; i < cfg.MaxActors; i++ {
		if f[4+5*i+4] != 0 {
			t.Errorf("presence flag %d set with no actors", i)
		}
	}
}

func TestFeaturizeNearestActorsOrdered(t *testing.T) {
	cfg := DefaultConfig()
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(40, 1.75), Speed: 5}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(10, 1.75), Speed: 5}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(500, 1.75), Speed: 5}), // out of range
	}
	obs := testObs(vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}, actors)
	f := featurize(obs, 0, cfg)
	// Nearest (id 2, dx=10) first.
	if math.Abs(f[4]-10.0/50) > 1e-9 {
		t.Errorf("nearest dx feature = %v, want 0.2", f[4])
	}
	if f[8] != 1 {
		t.Error("nearest presence flag unset")
	}
	// Second nearest (id 1, dx=40).
	if math.Abs(f[9]-40.0/50) > 1e-9 {
		t.Errorf("second dx feature = %v, want 0.8", f[9])
	}
	// Out-of-range actor excluded: third slot empty.
	if f[4+5*2+4] != 0 {
		t.Error("out-of-range actor should not be featurised")
	}
}

func TestFeaturizeRearActorNegativeDx(t *testing.T) {
	cfg := DefaultConfig()
	rear := actor.NewVehicle(1, vehicle.State{Pos: geom.V(-20, 1.75), Speed: 20})
	obs := testObs(vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}, []*actor.Actor{rear})
	f := featurize(obs, 0, cfg)
	if f[4] >= 0 {
		t.Errorf("rear actor dx feature = %v, want negative", f[4])
	}
	if f[6] <= 0 {
		t.Errorf("closing rear actor dvx = %v, want positive", f[6])
	}
}

func TestApplyAction(t *testing.T) {
	obs := testObs(vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}, nil)
	ads := vehicle.Control{Accel: 1.5, Steer: 0.05}
	p := obs.EgoParams

	if got := applyAction(NoOp, obs, ads); got != ads {
		t.Errorf("NoOp = %+v", got)
	}
	if got := applyAction(Brake, obs, ads); got.Accel != p.MaxBrake || got.Steer != ads.Steer {
		t.Errorf("Brake = %+v", got)
	}
	if got := applyAction(Accelerate, obs, ads); got.Accel != p.MaxAccel {
		t.Errorf("Accelerate = %+v", got)
	}
	left := applyAction(LaneLeft, obs, ads)
	if left.Steer <= 0 {
		t.Errorf("LaneLeft steer = %v, want positive (+y)", left.Steer)
	}
	right := applyAction(LaneRight, obs, ads)
	if right.Steer >= 0 {
		t.Errorf("LaneRight steer = %v, want negative", right.Steer)
	}
}

func TestLaneChangeSteerOffRoadFallback(t *testing.T) {
	obs := testObs(vehicle.State{Pos: geom.V(0, 50), Speed: 10}, nil) // off-road y
	if got := laneChangeSteer(obs, +1); got <= 0 {
		t.Errorf("fallback steer = %v, want positive", got)
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Actions = nil
	if _, err := New(cfg, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

// policyFor builds an SMC with a tiny fixed-weight policy for plumbing
// tests (the network is untrained; only the mechanics matter).
func policyFor(t *testing.T, cfg Config) *SMC {
	t.Helper()
	learner, err := rl.NewDDQN(cfg.FeatureDim(), len(cfg.Actions), cfg.DDQN)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, learner.Policy())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMitigateDecisionStride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DecisionStride = 3
	s := policyFor(t, cfg)
	s.Reset()
	obs := testObs(vehicle.State{Pos: geom.V(0, 1.75), Speed: 10}, nil)
	ads := vehicle.Control{Accel: 1}
	// First call decides; following two hold the same action.
	s.Mitigate(obs, ads)
	first := s.LastAction()
	for i := 0; i < 2; i++ {
		s.Mitigate(obs, ads)
		if s.LastAction() != first {
			t.Fatal("action changed inside the decision stride")
		}
	}
}

func TestTrainValidation(t *testing.T) {
	mk := func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }
	cfg := DefaultConfig()
	if _, _, err := Train(nil, mk, cfg, 5); err == nil {
		t.Error("no scenarios accepted")
	}
	scns := scenario.Generate(scenario.GhostCutIn, 1, 1)
	if _, _, err := Train(scns, mk, cfg, 0); err == nil {
		t.Error("zero episodes accepted")
	}
	bad := cfg
	bad.MaxActors = 0
	if _, _, err := Train(scns, mk, bad, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

// The headline integration test: training the SMC with the STI reward on
// crash-prone ghost cut-in instances must reduce the collision rate
// relative to the bare LBC baseline.
func TestTrainedSMCReducesGhostCutInCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("RL training")
	}
	suite := scenario.Generate(scenario.GhostCutIn, 30, 77)
	lbc := func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }

	// Find crash scenarios under the bare baseline.
	var crashes []scenario.Scenario
	for _, s := range suite {
		w, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		out := sim.Run(w, lbc(), nil, sim.RunConfig{MaxSteps: s.MaxSteps})
		if out.Collision {
			crashes = append(crashes, s)
		}
	}
	if len(crashes) < 5 {
		t.Fatalf("baseline produced only %d crashes; calibration drifted", len(crashes))
	}

	cfg := DefaultConfig()
	cfg.DDQN.EpsDecaySteps = 2500
	cfg.DDQN.Seed = 3
	ctrl, res, err := Train(crashes[:2], lbc, cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 40 || len(res.EpisodeRewards) != 40 {
		t.Errorf("train result malformed: %+v", res)
	}

	before, after := 0, 0
	for _, s := range crashes {
		w, _ := s.Build()
		out := sim.Run(w, lbc(), nil, sim.RunConfig{MaxSteps: s.MaxSteps})
		if out.Collision {
			before++
		}
		w2, _ := s.Build()
		out2 := sim.Run(w2, lbc(), ctrl, sim.RunConfig{MaxSteps: s.MaxSteps})
		if out2.Collision {
			after++
		}
	}
	t.Logf("ghost cut-in crashes: baseline %d/%d, with SMC %d/%d", before, len(crashes), after, len(crashes))
	if after >= before {
		t.Errorf("SMC did not reduce crashes: %d -> %d", before, after)
	}
}

func TestTrainCyclesMultipleScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("RL training")
	}
	scns := scenario.Generate(scenario.GhostCutIn, 3, 5)
	lbc := func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }
	cfg := DefaultConfig()
	_, res, err := Train(scns, lbc, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Episodes != 7 || len(res.EpisodeRewards) != 7 {
		t.Errorf("result = %+v", res)
	}
}

func TestTrainAblationConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("RL training")
	}
	scns := scenario.Generate(scenario.LeadSlowdown, 1, 5)
	lbc := func() sim.Driver { return agent.NewLBC(agent.DefaultLBCConfig()) }
	cfg := DefaultConfig()
	cfg.UseSTI = false
	ctrl, _, err := Train(scns, lbc, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Config().UseSTI {
		t.Error("ablation flag not carried into the trained controller")
	}
}

func TestRoadRelativePoseRing(t *testing.T) {
	ring, err := roadmap.NewRingRoad(geom.V(0, 0), 18, 27)
	if err != nil {
		t.Fatal(err)
	}
	pos, heading := ring.PoseAt(22.5, 1.2) // centreline of the ring
	obs := sim.Observation{Map: ring, Ego: vehicle.State{Pos: pos, Heading: heading}}
	lat, hErr := roadRelativePose(obs)
	if math.Abs(lat) > 1e-9 {
		t.Errorf("centreline lateral = %v, want 0", lat)
	}
	if math.Abs(hErr) > 1e-9 {
		t.Errorf("tangent heading error = %v, want 0", hErr)
	}
	// Outer edge: positive lateral offset.
	pos2, heading2 := ring.PoseAt(26, 0.3)
	obs2 := sim.Observation{Map: ring, Ego: vehicle.State{Pos: pos2, Heading: heading2}}
	lat2, _ := roadRelativePose(obs2)
	if lat2 <= 0 {
		t.Errorf("outer-edge lateral = %v, want > 0", lat2)
	}
}

func TestRoadRelativePoseUnknownMap(t *testing.T) {
	obs := sim.Observation{Ego: vehicle.State{Heading: 0.4}}
	lat, hErr := roadRelativePose(obs)
	if lat != 0 || hErr != 0.4 {
		t.Errorf("fallback pose = %v %v", lat, hErr)
	}
}
