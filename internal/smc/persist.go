package smc

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/rl"
)

// smcFile is the on-disk representation of a trained controller: its
// configuration (so the feature layout and action set round-trip) plus the
// Q-network weights.
type smcFile struct {
	Actions         []Action   `json:"actions"`
	Alpha0          float64    `json:"alpha0"`
	Alpha1          float64    `json:"alpha1"`
	Alpha2          float64    `json:"alpha2"`
	UseSTI          bool       `json:"useSti"`
	PerceptionRange float64    `json:"perceptionRangeM"`
	MaxActors       int        `json:"maxActors"`
	DecisionStride  int        `json:"decisionStride"`
	Policy          *rl.Policy `json:"policy"`
}

// Save writes the controller to path as JSON. The reach configuration is
// not persisted; the loader supplies it (it is an evaluation-environment
// concern, not a learned artefact).
func (s *SMC) Save(path string) error {
	f := smcFile{
		Actions:         s.cfg.Actions,
		Alpha0:          s.cfg.Alpha0,
		Alpha1:          s.cfg.Alpha1,
		Alpha2:          s.cfg.Alpha2,
		UseSTI:          s.cfg.UseSTI,
		PerceptionRange: s.cfg.PerceptionRange,
		MaxActors:       s.cfg.MaxActors,
		DecisionStride:  s.cfg.DecisionStride,
		Policy:          s.policy,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("smc: encode: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("smc: write: %w", err)
	}
	return nil
}

// Load restores a controller saved with Save, attaching the given base
// configuration's reach and DDQN settings.
func Load(path string, base Config) (*SMC, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("smc: read: %w", err)
	}
	var f smcFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("smc: decode: %w", err)
	}
	cfg := base
	cfg.Actions = f.Actions
	cfg.Alpha0, cfg.Alpha1, cfg.Alpha2 = f.Alpha0, f.Alpha1, f.Alpha2
	cfg.UseSTI = f.UseSTI
	cfg.PerceptionRange = f.PerceptionRange
	cfg.MaxActors = f.MaxActors
	cfg.DecisionStride = f.DecisionStride
	if f.Policy == nil {
		return nil, fmt.Errorf("smc: file %s has no policy", path)
	}
	return New(cfg, f.Policy)
}
