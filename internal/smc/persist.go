package smc

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/rl"
)

// writeFileAtomic writes data to path through a same-directory temp file,
// an fsync, an os.Rename, and a directory fsync, so a crash mid-write can
// never leave a torn file at path: readers see either the old content or
// the new, never a prefix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// smcFile is the on-disk representation of a trained controller: its
// configuration (so the feature layout and action set round-trip) plus the
// Q-network weights.
type smcFile struct {
	Actions         []Action   `json:"actions"`
	Alpha0          float64    `json:"alpha0"`
	Alpha1          float64    `json:"alpha1"`
	Alpha2          float64    `json:"alpha2"`
	UseSTI          bool       `json:"useSti"`
	PerceptionRange float64    `json:"perceptionRangeM"`
	MaxActors       int        `json:"maxActors"`
	DecisionStride  int        `json:"decisionStride"`
	Policy          *rl.Policy `json:"policy"`
}

// Save atomically writes the controller to path as JSON (temp file +
// rename, see writeFileAtomic). The reach configuration is not persisted;
// the loader supplies it (it is an evaluation-environment concern, not a
// learned artefact).
func (s *SMC) Save(path string) error {
	f := smcFile{
		Actions:         s.cfg.Actions,
		Alpha0:          s.cfg.Alpha0,
		Alpha1:          s.cfg.Alpha1,
		Alpha2:          s.cfg.Alpha2,
		UseSTI:          s.cfg.UseSTI,
		PerceptionRange: s.cfg.PerceptionRange,
		MaxActors:       s.cfg.MaxActors,
		DecisionStride:  s.cfg.DecisionStride,
		Policy:          s.policy,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("smc: encode: %w", err)
	}
	if err := writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("smc: write: %w", err)
	}
	return nil
}

// Load restores a controller saved with Save, attaching the given base
// configuration's reach and DDQN settings.
func Load(path string, base Config) (*SMC, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("smc: read: %w", err)
	}
	var f smcFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("smc: decode: %w", err)
	}
	cfg := base
	cfg.Actions = f.Actions
	cfg.Alpha0, cfg.Alpha1, cfg.Alpha2 = f.Alpha0, f.Alpha1, f.Alpha2
	cfg.UseSTI = f.UseSTI
	cfg.PerceptionRange = f.PerceptionRange
	cfg.MaxActors = f.MaxActors
	cfg.DecisionStride = f.DecisionStride
	if f.Policy == nil {
		return nil, fmt.Errorf("smc: file %s has no policy", path)
	}
	return New(cfg, f.Policy)
}
