package agent

import (
	"math"

	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// RingPilotConfig parameterises the roundabout driver used in the §V-C
// generalisation study (RIP on the roundabout typology).
type RingPilotConfig struct {
	Radius      float64 // target circulating radius
	TargetSpeed float64
	// BrakeArc is the arc (radians) ahead within which a same-radius actor
	// triggers braking.
	BrakeArc float64
	// RadialBand is the radial tolerance for considering an actor "in my
	// circle". Like RIP's lane-following prediction, the pilot assumes
	// actors hold their radius, so a cutter squeezing outward is ignored
	// until it has already entered the band — the OOD misprediction.
	RadialBand float64
}

// DefaultRingPilotConfig returns the evaluation configuration.
func DefaultRingPilotConfig() RingPilotConfig {
	return RingPilotConfig{
		Radius:      24.8,
		TargetSpeed: 8,
		BrakeArc:    0.35,
		RadialBand:  1.6,
	}
}

// RingPilot circulates a ring road, reacting only to actors already in its
// radial band — the ring-road analogue of the RIP agent's imitation-prior
// planning.
type RingPilot struct {
	cfg RingPilotConfig
}

var _ sim.Driver = (*RingPilot)(nil)

// NewRingPilot constructs the driver.
func NewRingPilot(cfg RingPilotConfig) *RingPilot { return &RingPilot{cfg: cfg} }

// Reset implements sim.Driver.
func (p *RingPilot) Reset() {}

// Act implements sim.Driver.
func (p *RingPilot) Act(obs sim.Observation) vehicle.Control {
	ring, ok := obs.Map.(*roadmap.RingRoad)
	if !ok {
		return vehicle.Control{}
	}
	// Track the target circle.
	lookAhead := 0.25
	target, targetHeading := ring.PoseAt(p.cfg.Radius, ring.AngleOf(obs.Ego.Pos)+lookAhead)
	toTarget := target.Sub(obs.Ego.Pos)
	headingErr := geom.AngleDiff(toTarget.Angle(), obs.Ego.Heading)
	alignErr := geom.AngleDiff(targetHeading, obs.Ego.Heading)
	steer := geom.Clamp(1.0*headingErr+0.3*alignErr, -obs.EgoParams.MaxSteer, obs.EgoParams.MaxSteer)

	accel := geom.Clamp(1.2*(p.cfg.TargetSpeed-obs.Ego.Speed), obs.EgoParams.MaxBrake, obs.EgoParams.MaxAccel)
	egoAngle := ring.AngleOf(obs.Ego.Pos)
	for _, a := range obs.Actors {
		radial := a.State.Pos.Dist(ring.Center)
		if math.Abs(radial-p.cfg.Radius) > p.cfg.RadialBand {
			continue // assumed to keep its own circle
		}
		arc := geom.AngleDiff(ring.AngleOf(a.State.Pos), egoAngle)
		if arc > 0 && arc < p.cfg.BrakeArc {
			accel = obs.EgoParams.MaxBrake
			break
		}
	}
	return vehicle.Control{Accel: accel, Steer: steer}
}
