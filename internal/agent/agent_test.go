package agent

import (
	"math"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func road() *roadmap.StraightRoad {
	return roadmap.MustStraightRoad(2, 3.5, -100, 2000)
}

func worldWith(t *testing.T, ego vehicle.State, actors []*actor.Actor, behaviors []sim.Behavior) *sim.World {
	t.Helper()
	w, err := sim.NewWorld(road(), ego, geom.V(1500, 1.75), 0.1, actors, behaviors)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func obsFor(ego vehicle.State, actors []*actor.Actor) sim.Observation {
	return sim.Observation{
		Map:       road(),
		Ego:       ego,
		EgoParams: vehicle.DefaultParams(),
		Goal:      geom.V(1500, 1.75),
		Dt:        0.1,
		Actors:    actors,
	}
}

func TestLBCCruisesAtTargetSpeed(t *testing.T) {
	lbc := NewLBC(DefaultLBCConfig())
	w := worldWith(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 0}, nil, nil)
	out := sim.Run(w, lbc, nil, sim.RunConfig{MaxSteps: 400})
	if out.Collision {
		t.Fatal("no collision expected on an empty road")
	}
	if math.Abs(w.Ego.State.Speed-DefaultLBCConfig().TargetSpeed) > 1.0 && !out.Completed {
		t.Errorf("speed = %v, want ~%v", w.Ego.State.Speed, DefaultLBCConfig().TargetSpeed)
	}
	if math.Abs(w.Ego.State.Pos.Y-1.75) > 0.3 {
		t.Errorf("lane offset = %v", w.Ego.State.Pos.Y)
	}
}

func TestLBCBrakesForStoppedLead(t *testing.T) {
	// A stopped lead far ahead: LBC sees it in range and stops in time.
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(120, 1.75)})
	lbc := NewLBC(DefaultLBCConfig())
	w := worldWith(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 12},
		[]*actor.Actor{lead}, []sim.Behavior{&sim.Stationary{}})
	out := sim.Run(w, lbc, nil, sim.RunConfig{MaxSteps: 600})
	if out.Collision {
		t.Fatalf("LBC should stop for a visible stopped lead: %+v", out)
	}
	if w.Ego.State.Pos.X < 50 {
		t.Errorf("ego barely moved: %v", w.Ego.State.Pos)
	}
}

func TestLBCBlindToAdjacentLaneActor(t *testing.T) {
	// An actor alongside in the adjacent lane must not trigger braking.
	ghost := actor.NewVehicle(1, vehicle.State{Pos: geom.V(10, 5.25), Speed: 12})
	lbc := NewLBC(DefaultLBCConfig())
	lbc.Reset()
	u := lbc.Act(obsFor(vehicle.State{Pos: geom.V(0, 1.75), Speed: 12}, []*actor.Actor{ghost}))
	if u.Accel < 0 {
		t.Errorf("LBC braked for an adjacent-lane actor: accel = %v", u.Accel)
	}
}

func TestLBCBlindToRearActor(t *testing.T) {
	rear := actor.NewVehicle(1, vehicle.State{Pos: geom.V(-8, 1.75), Speed: 25})
	lbc := NewLBC(DefaultLBCConfig())
	lbc.Reset()
	for i := 0; i < 10; i++ { // exceed any reaction delay
		u := lbc.Act(obsFor(vehicle.State{Pos: geom.V(0, 1.75), Speed: 12}, []*actor.Actor{rear}))
		if u.Accel < 0 {
			t.Fatalf("LBC reacted to a rear actor: accel = %v", u.Accel)
		}
	}
}

func TestLBCReactionDelay(t *testing.T) {
	cfg := DefaultLBCConfig()
	cfg.ReactionSteps = 5
	lbc := NewLBC(cfg)
	lbc.Reset()
	// Threat close ahead in lane.
	threat := actor.NewVehicle(1, vehicle.State{Pos: geom.V(12, 1.75)})
	obs := obsFor(vehicle.State{Pos: geom.V(0, 1.75), Speed: 12}, []*actor.Actor{threat})
	for i := 0; i < cfg.ReactionSteps; i++ {
		if u := lbc.Act(obs); u.Accel < 0 {
			t.Fatalf("braked during reaction window at step %d", i)
		}
	}
	if u := lbc.Act(obs); u.Accel >= 0 {
		t.Error("should brake after the reaction window")
	}
}

func TestLBCHardBrakeWhenVeryClose(t *testing.T) {
	cfg := DefaultLBCConfig()
	cfg.ReactionSteps = 0
	lbc := NewLBC(cfg)
	lbc.Reset()
	threat := actor.NewVehicle(1, vehicle.State{Pos: geom.V(9, 1.75)})
	u := lbc.Act(obsFor(vehicle.State{Pos: geom.V(0, 1.75), Speed: 12}, []*actor.Actor{threat}))
	if u.Accel != vehicle.DefaultParams().MaxBrake {
		t.Errorf("accel = %v, want max brake", u.Accel)
	}
}

func TestACAEmergencyBrakesOnLowTTC(t *testing.T) {
	aca := NewACA(DefaultACAConfig())
	aca.Reset()
	// Stopped lead 12 m ahead, ego at 12 m/s: TTC ≈ 0.6 s < 1.5 s.
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(12, 1.75)})
	u, fired := aca.Mitigate(obsFor(vehicle.State{Pos: geom.V(0, 1.75), Speed: 12},
		[]*actor.Actor{lead}), vehicle.Control{Accel: 2})
	if !fired {
		t.Fatal("ACA should fire at TTC < threshold")
	}
	if u.Accel != vehicle.DefaultParams().MaxBrake {
		t.Errorf("accel = %v, want max brake", u.Accel)
	}
}

func TestACAIdleWhenSafe(t *testing.T) {
	aca := NewACA(DefaultACAConfig())
	aca.Reset()
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(80, 1.75), Speed: 12})
	ads := vehicle.Control{Accel: 1.0}
	u, fired := aca.Mitigate(obsFor(vehicle.State{Pos: geom.V(0, 1.75), Speed: 12},
		[]*actor.Actor{lead}), ads)
	if fired || u != ads {
		t.Errorf("ACA should pass through: fired=%v u=%+v", fired, u)
	}
}

func TestACABlindToSideThreat(t *testing.T) {
	aca := NewACA(DefaultACAConfig())
	aca.Reset()
	// Ghost cutter alongside, still lane-keeping: TTC is infinite.
	ghost := actor.NewVehicle(1, vehicle.State{Pos: geom.V(-2, 5.25), Speed: 20})
	_, fired := aca.Mitigate(obsFor(vehicle.State{Pos: geom.V(0, 1.75), Speed: 12},
		[]*actor.Actor{ghost}), vehicle.Control{})
	if fired {
		t.Error("ACA must be blind to a lane-keeping side actor")
	}
}

func TestRIPDrivesOnEmptyRoad(t *testing.T) {
	rip := NewRIP(DefaultRIPConfig())
	w := worldWith(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 5}, nil, nil)
	out := sim.Run(w, rip, nil, sim.RunConfig{MaxSteps: 500})
	if out.Collision {
		t.Fatal("RIP collided on an empty road")
	}
	if w.Ego.State.Pos.X < 30 && !out.Completed {
		t.Errorf("RIP made little progress: %v", w.Ego.State.Pos)
	}
}

func TestRIPDeterministicGivenSeed(t *testing.T) {
	obs := obsFor(vehicle.State{Pos: geom.V(0, 1.75), Speed: 10},
		[]*actor.Actor{actor.NewVehicle(1, vehicle.State{Pos: geom.V(20, 1.75), Speed: 5})})
	a := NewRIP(DefaultRIPConfig()).Act(obs)
	b := NewRIP(DefaultRIPConfig()).Act(obs)
	if a != b {
		t.Errorf("RIP not deterministic: %+v vs %+v", a, b)
	}
}

func TestRIPMispredictsCutIn(t *testing.T) {
	// An actor diagonally cutting toward the ego lane: RIP's lane-following
	// prediction projects it straight down its lane, so RIP plans as if the
	// path were clear and does not emergency-brake.
	cutter := actor.NewVehicle(1, vehicle.State{
		Pos: geom.V(15, 4.8), Speed: 12, Heading: -0.3,
	})
	rip := NewRIP(DefaultRIPConfig())
	u := rip.Act(obsFor(vehicle.State{Pos: geom.V(0, 1.75), Speed: 12}, []*actor.Actor{cutter}))
	if u.Accel <= -3 {
		t.Errorf("RIP hard-braked (%v) despite its benign lane-following prediction", u.Accel)
	}
}

func TestRIPEnsembleSizeFloor(t *testing.T) {
	cfg := DefaultRIPConfig()
	cfg.EnsembleSize = 0
	rip := NewRIP(cfg)
	if len(rip.weights) != 1 {
		t.Errorf("ensemble size floored to %d, want 1", len(rip.weights))
	}
}

func TestVisibleActors(t *testing.T) {
	near := actor.NewVehicle(1, vehicle.State{Pos: geom.V(10, 1.75)})
	far := actor.NewVehicle(2, vehicle.State{Pos: geom.V(500, 1.75)})
	obs := obsFor(vehicle.State{Pos: geom.V(0, 1.75)}, []*actor.Actor{near, far})
	got := VisibleActors(obs, 50)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("VisibleActors = %v", got)
	}
}

func TestLaneKeepSteerDirection(t *testing.T) {
	p := vehicle.DefaultParams()
	left := laneKeepSteer(vehicle.State{Pos: geom.V(0, 0)}, 3.5, p)
	if left <= 0 {
		t.Errorf("steer toward +y should be positive, got %v", left)
	}
	right := laneKeepSteer(vehicle.State{Pos: geom.V(0, 3.5)}, 0, p)
	if right >= 0 {
		t.Errorf("steer toward -y should be negative, got %v", right)
	}
}

func TestACAReleaseAtLowSpeed(t *testing.T) {
	aca := NewACA(DefaultACAConfig())
	aca.Reset()
	// Ego crawling next to a close lead: below ReleaseSpeed the override
	// lifts so the episode can continue once the hazard has passed.
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(6, 1.75)})
	ads := vehicle.Control{Accel: 0.5}
	_, fired := aca.Mitigate(obsFor(vehicle.State{Pos: geom.V(0, 1.75), Speed: 0.2},
		[]*actor.Actor{lead}), ads)
	if fired {
		t.Error("ACA should release below the minimum speed")
	}
}

func TestLBCConfigKnobsMatter(t *testing.T) {
	// Shrinking the detection range makes LBC blind to a lead it would
	// otherwise brake for.
	threat := actor.NewVehicle(1, vehicle.State{Pos: geom.V(30, 1.75)})
	obs := obsFor(vehicle.State{Pos: geom.V(0, 1.75), Speed: 12}, []*actor.Actor{threat})

	cfg := DefaultLBCConfig()
	cfg.ReactionSteps = 0
	seeing := NewLBC(cfg)
	seeing.Reset()
	if u := seeing.Act(obs); u.Accel >= 0 {
		t.Errorf("LBC with default range should brake, accel = %v", u.Accel)
	}

	cfg.DetectRange = 20
	blind := NewLBC(cfg)
	blind.Reset()
	if u := blind.Act(obs); u.Accel < 0 {
		t.Errorf("LBC with short range should not react, accel = %v", u.Accel)
	}
}

func TestRIPRespectsCruiseSpeedPrior(t *testing.T) {
	// The imitation prior penalises speeding: on an empty road RIP settles
	// near its nominal cruise speed rather than the vehicle maximum.
	rip := NewRIP(DefaultRIPConfig())
	w := worldWith(t, vehicle.State{Pos: geom.V(0, 1.75), Speed: 12}, nil, nil)
	for i := 0; i < 300; i++ {
		w.Advance(rip.Act(w.Observe()))
	}
	if w.Ego.State.Speed > DefaultRIPConfig().TargetSpeed+4 {
		t.Errorf("RIP speed = %v, want near cruise %v (no runaway acceleration)",
			w.Ego.State.Speed, DefaultRIPConfig().TargetSpeed)
	}
}
