// Package agent implements the autonomous driving systems (ADSes) and
// non-RL safety controllers of the paper's evaluation: a behavioural
// analogue of the Learning-by-Cheating baseline (§IV-A), the TTC-based
// automatic collision avoidance controller (§IV-D), and an ensemble
// worst-case planner standing in for RIP-WCM.
//
// The neural agents of the paper are replaced by explicit behavioural
// models that reproduce their operationally relevant properties: LBC drives
// competently towards its goal but reacts only to frontal, in-lane threats
// after a perception delay; RIP selects pessimistically among imitation-
// prior manoeuvres whose likelihoods misjudge out-of-distribution cut-ins.
package agent

import (
	"math"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// LBCConfig parameterises the baseline ADS.
type LBCConfig struct {
	TargetSpeed float64 // cruise speed (m/s)
	LaneY       float64 // target lane centre
	DetectRange float64 // perception range (m)
	FOVDeg      float64 // half-angle of the forward field of view (degrees)
	// LaneMargin is the half-width of the "my lane" band used to decide
	// whether a detected actor is an in-lane threat.
	LaneMargin float64
	// ReactionSteps is the perception-to-action latency in simulation steps.
	ReactionSteps int
	// ComfortBrake is the deceleration used for anticipated slowdowns;
	// the full MaxBrake is reserved for emergencies.
	ComfortBrake float64
	// HardBrakeGap is the bumper gap (m) below which LBC brakes maximally.
	HardBrakeGap float64
	// Headway is the desired time gap (s) behind a slower lead.
	Headway float64
}

// DefaultLBCConfig returns the configuration used across the evaluation.
func DefaultLBCConfig() LBCConfig {
	return LBCConfig{
		TargetSpeed:   12,
		LaneY:         1.75,
		DetectRange:   35,
		FOVDeg:        60,
		LaneMargin:    1.6,
		ReactionSteps: 4,
		ComfortBrake:  -4,
		HardBrakeGap:  6,
		Headway:       0.9,
	}
}

// LBC is the behavioural Learning-by-Cheating analogue. It keeps its lane
// at the target speed and brakes for in-lane frontal threats with a
// reaction delay — and is blind to side and rear threats, the deficit the
// NHTSA typologies exploit.
type LBC struct {
	cfg LBCConfig

	sawThreat int // consecutive steps a threat has been visible
}

var _ sim.Driver = (*LBC)(nil)

// NewLBC constructs the baseline agent.
func NewLBC(cfg LBCConfig) *LBC { return &LBC{cfg: cfg} }

// Reset implements sim.Driver.
func (l *LBC) Reset() { l.sawThreat = 0 }

// Act implements sim.Driver.
func (l *LBC) Act(obs sim.Observation) vehicle.Control {
	steer := laneKeepSteer(obs.Ego, l.cfg.LaneY, obs.EgoParams)
	threat, gap, lead := l.closestThreat(obs)

	if !threat {
		l.sawThreat = 0
		accel := geom.Clamp(1.5*(l.cfg.TargetSpeed-obs.Ego.Speed),
			obs.EgoParams.MaxBrake, obs.EgoParams.MaxAccel)
		return vehicle.Control{Accel: accel, Steer: steer}
	}

	l.sawThreat++
	if l.sawThreat <= l.cfg.ReactionSteps {
		// Perception latency: keep the previous intent (cruise).
		accel := geom.Clamp(1.5*(l.cfg.TargetSpeed-obs.Ego.Speed),
			obs.EgoParams.MaxBrake, obs.EgoParams.MaxAccel)
		return vehicle.Control{Accel: accel, Steer: steer}
	}

	closing := obs.Ego.Speed - lead
	followGap := math.Max(l.cfg.Headway*obs.Ego.Speed, 8)
	// Deceleration needed to equalise speeds before the gap shrinks to the
	// hard-brake margin.
	required := 0.0
	if closing > 0 {
		required = closing * closing / (2 * math.Max(gap-l.cfg.HardBrakeGap, 0.5))
	}
	switch {
	case gap < l.cfg.HardBrakeGap:
		return vehicle.Control{Accel: obs.EgoParams.MaxBrake, Steer: steer}
	case required >= -l.cfg.ComfortBrake*0.5:
		// An imitation learner trained on benign driving rarely brakes
		// harder than comfort level until the situation is already dire.
		return vehicle.Control{Accel: l.cfg.ComfortBrake, Steer: steer}
	case gap < followGap:
		// Close enough: track the lead's speed.
		return vehicle.Control{Accel: geom.Clamp(1.0*(lead-obs.Ego.Speed),
			l.cfg.ComfortBrake, obs.EgoParams.MaxAccel), Steer: steer}
	default:
		accel := geom.Clamp(1.5*(l.cfg.TargetSpeed-obs.Ego.Speed),
			obs.EgoParams.MaxBrake, obs.EgoParams.MaxAccel)
		return vehicle.Control{Accel: accel, Steer: steer}
	}
}

// closestThreat finds the nearest visible in-lane frontal actor. Returns
// whether one exists, the bumper gap, and the threat's forward speed.
func (l *LBC) closestThreat(obs sim.Observation) (found bool, gap, leadSpeed float64) {
	fov := l.cfg.FOVDeg * math.Pi / 180
	heading := geom.V(math.Cos(obs.Ego.Heading), math.Sin(obs.Ego.Heading))
	bestGap := math.Inf(1)
	for _, a := range obs.Actors {
		rel := a.State.Pos.Sub(obs.Ego.Pos)
		dist := rel.Norm()
		if dist > l.cfg.DetectRange {
			continue
		}
		longitudinal := rel.Dot(heading)
		if longitudinal <= 0 {
			continue // behind: invisible to LBC's planner
		}
		if math.Abs(geom.AngleDiff(rel.Angle(), obs.Ego.Heading)) > fov {
			continue // outside the forward field of view
		}
		if math.Abs(a.State.Pos.Y-l.cfg.LaneY) > l.cfg.LaneMargin {
			continue // not in my lane: LBC does not anticipate cut-ins
		}
		g := longitudinal - obs.EgoParams.Length/2 - a.Length/2
		if g < 0 {
			g = 0
		}
		if g < bestGap {
			bestGap = g
			leadSpeed = a.State.Velocity().Dot(heading)
			found = true
		}
	}
	return found, bestGap, leadSpeed
}

// laneKeepSteer is the PD lane-keeping law shared by the agents.
func laneKeepSteer(ego vehicle.State, targetY float64, params vehicle.Params) float64 {
	latErr := targetY - ego.Pos.Y
	headingErr := -ego.Heading
	return geom.Clamp(0.2*latErr+1.2*headingErr, -params.MaxSteer, params.MaxSteer)
}

// VisibleActors applies a range-based perception filter; reused by the SMC
// feature extractor so that every controller sees the same world.
func VisibleActors(obs sim.Observation, rangeM float64) []*actor.Actor {
	out := make([]*actor.Actor, 0, len(obs.Actors))
	for _, a := range obs.Actors {
		if a.State.Pos.Dist(obs.Ego.Pos) <= rangeM {
			out = append(out, a)
		}
	}
	return out
}
