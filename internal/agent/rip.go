package agent

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// RIPConfig parameterises the RIP-WCM analogue (robust imitative planning
// with the worst-case model, Filos et al. [16]).
type RIPConfig struct {
	TargetSpeed float64
	LaneY       float64
	// EnsembleSize is the number of perturbed imitation cost models.
	EnsembleSize int
	// Seed derives the deterministic weight perturbations.
	Seed int64
	// Horizon/Dt parameterise candidate rollouts.
	Horizon float64
	Dt      float64
}

// DefaultRIPConfig returns the evaluation configuration.
func DefaultRIPConfig() RIPConfig {
	return RIPConfig{
		TargetSpeed:  12,
		LaneY:        1.75,
		EnsembleSize: 5,
		Seed:         1,
		Horizon:      2.0,
		Dt:           0.5,
	}
}

// RIP plans by scoring a small candidate manoeuvre set under an ensemble of
// imitation-prior cost models and executing the candidate whose *worst-case*
// cost is lowest (WCM aggregation).
//
// Two properties are carried over from the original and drive its §V-C
// failure modes on OOD scenarios:
//
//  1. The imitation prior was fitted to benign driving, so deviation from
//     nominal driving (hard braking, swerving) carries high cost — the
//     likelihood term dominates the collision term.
//  2. Other actors are predicted to continue *along their lane* at constant
//     speed (the behaviour seen in training data); a cut-in trajectory is
//     mispredicted until the actor has substantially entered the ego lane.
type RIP struct {
	cfg     RIPConfig
	weights [][4]float64 // per-model: collision, proximity, deviation, progress-loss
}

var _ sim.Driver = (*RIP)(nil)

// NewRIP constructs the agent with deterministic ensemble perturbations.
func NewRIP(cfg RIPConfig) *RIP {
	if cfg.EnsembleSize < 1 {
		cfg.EnsembleSize = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	weights := make([][4]float64, cfg.EnsembleSize)
	for i := range weights {
		// The imitation prior: deviation from nominal driving costs about as
		// much as proximity to other vehicles, and far more than the
		// under-weighted collision term — likelihoods misjudge risk OOD.
		weights[i] = [4]float64{
			1.0 + 0.4*rng.Float64(), // collision (under-weighted vs a safety planner)
			0.6 + 0.3*rng.Float64(), // proximity
			1.2 + 0.5*rng.Float64(), // deviation from nominal manoeuvre
			0.8 + 0.3*rng.Float64(), // progress loss
		}
	}
	return &RIP{cfg: cfg, weights: weights}
}

// Reset implements sim.Driver.
func (r *RIP) Reset() {}

// candidate manoeuvres: accelerations × lane offsets, mirroring the PKL
// planner but with the braking intensity capped at comfort level (the
// imitation data contains no emergency stops).
var ripAccels = [3]float64{-3, 0, 2}
var ripLatOffsets = [3]float64{-3.5, 0, 3.5}

// Act implements sim.Driver.
func (r *RIP) Act(obs sim.Observation) vehicle.Control {
	n := int(math.Round(r.cfg.Horizon / r.cfg.Dt))
	if n < 1 {
		n = 1
	}
	bestWorst := math.Inf(1)
	var bestAccel, bestLat float64
	for _, a := range ripAccels {
		for _, lat := range ripLatOffsets {
			feats := r.rolloutFeatures(obs, a, lat, n)
			worst := math.Inf(-1)
			for _, w := range r.weights {
				cost := w[0]*feats[0] + w[1]*feats[1] + w[2]*feats[2] + w[3]*feats[3]
				if cost > worst {
					worst = cost
				}
			}
			if worst < bestWorst {
				bestWorst, bestAccel, bestLat = worst, a, lat
			}
		}
	}
	targetY := obs.Ego.Pos.Y + bestLat
	steer := laneKeepSteer(obs.Ego, targetY, obs.EgoParams)
	// Track the cruise speed on top of the selected longitudinal profile.
	accel := bestAccel
	if accel == 0 {
		accel = geom.Clamp(1.0*(r.cfg.TargetSpeed-obs.Ego.Speed), -1, obs.EgoParams.MaxAccel)
	}
	return vehicle.Control{Accel: accel, Steer: steer}
}

// rolloutFeatures simulates one candidate and extracts (collision,
// proximity, deviation, progress-loss) under the lane-following constant-
// speed prediction of other actors.
func (r *RIP) rolloutFeatures(obs sim.Observation, accel, latOffset float64, n int) [4]float64 {
	var f [4]float64
	ego := obs.Ego
	heading0 := ego.Heading
	lateral := geom.V(-math.Sin(heading0), math.Cos(heading0))
	target := ego.Pos.Add(lateral.Scale(latOffset))
	minDist := math.Inf(1)
	start := ego.Pos
	for t := 1; t <= n; t++ {
		latErr := target.Sub(ego.Pos).Dot(lateral)
		headingErr := geom.AngleDiff(heading0, ego.Heading)
		steer := geom.Clamp(0.15*latErr+0.8*headingErr, -obs.EgoParams.MaxSteer, obs.EgoParams.MaxSteer)
		ego = obs.EgoParams.Step(ego, vehicle.Control{Accel: accel, Steer: steer}, r.cfg.Dt)
		fp := obs.EgoParams.Footprint(ego)
		if obs.Map != nil && !obs.Map.DrivableBox(fp) {
			f[0] = 1 // off-road treated as a collision
		}
		tau := float64(t) * r.cfg.Dt
		for _, a := range obs.Actors {
			// Lane-following constant-velocity prediction: the actor keeps
			// its current speed along its *lane* axis (+x on straight
			// roads), discarding its lateral motion — the OOD misprediction.
			pred := a.State.Pos.Add(geom.V(a.State.Speed*tau, 0))
			ab := geom.NewBox(pred, a.Length, a.Width, 0)
			if fp.Intersects(ab) {
				f[0] = 1
			}
			if d := fp.Center.Dist(ab.Center) - fp.BoundingRadius() - ab.BoundingRadius(); d < minDist {
				minDist = d
			}
		}
	}
	if !math.IsInf(minDist, 1) {
		if minDist < 0 {
			minDist = 0
		}
		f[1] = math.Exp(-minDist / 4)
	}
	// Deviation from nominal driving (the imitation likelihood surrogate):
	// braking, lane changes, and speeds beyond the demonstrated cruise
	// speed are all rare in the training distribution.
	f[2] = math.Abs(latOffset)/3.5 + math.Abs(math.Min(accel, 0))/3 +
		math.Max(0, ego.Speed-r.cfg.TargetSpeed)/4
	ideal := math.Max(obs.Ego.Speed*r.cfg.Horizon, 1)
	progress := ego.Pos.Sub(start).Dot(geom.V(math.Cos(heading0), math.Sin(heading0)))
	f[3] = geom.Clamp(1-progress/ideal, 0, 1)
	return f
}
