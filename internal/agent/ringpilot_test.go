package agent

import (
	"math"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func ringWorld(t *testing.T, actors []*actor.Actor, behaviors []sim.Behavior) (*sim.World, *roadmap.RingRoad) {
	t.Helper()
	ring, err := roadmap.NewRingRoad(geom.V(0, 0), 18, 27)
	if err != nil {
		t.Fatal(err)
	}
	pos, heading := ring.PoseAt(24.8, 0)
	w, err := sim.NewWorld(ring, vehicle.State{Pos: pos, Heading: heading, Speed: 8},
		geom.V(math.Inf(1), 0), 0.1, actors, behaviors)
	if err != nil {
		t.Fatal(err)
	}
	return w, ring
}

func TestRingPilotCirculates(t *testing.T) {
	w, ring := ringWorld(t, nil, nil)
	pilot := NewRingPilot(DefaultRingPilotConfig())
	pilot.Reset()
	for i := 0; i < 600; i++ {
		w.Advance(pilot.Act(w.Observe()))
		if !ring.Drivable(w.Ego.State.Pos) {
			t.Fatalf("pilot left the ring at step %d: %v", i, w.Ego.State.Pos)
		}
	}
	// Angular progress around the ring.
	if math.Abs(geom.AngleDiff(ring.AngleOf(w.Ego.State.Pos), 0)) < 0.5 {
		t.Error("pilot made no angular progress")
	}
	if math.Abs(w.Ego.State.Speed-8) > 1.5 {
		t.Errorf("pilot speed = %v, want ~8", w.Ego.State.Speed)
	}
}

func TestRingPilotBrakesForSameRadiusActor(t *testing.T) {
	_, ring := ringWorld(t, nil, nil)
	cfg := DefaultRingPilotConfig()
	pilot := NewRingPilot(cfg)
	// Actor just ahead on the same radius.
	pos, heading := ring.PoseAt(cfg.Radius, 0.2)
	blocker := actor.NewVehicle(1, vehicle.State{Pos: pos, Heading: heading, Speed: 2})
	egoPos, egoHeading := ring.PoseAt(cfg.Radius, 0)
	obs := sim.Observation{
		Map:       ring,
		Ego:       vehicle.State{Pos: egoPos, Heading: egoHeading, Speed: 8},
		EgoParams: vehicle.DefaultParams(),
		Actors:    []*actor.Actor{blocker},
	}
	u := pilot.Act(obs)
	if u.Accel != obs.EgoParams.MaxBrake {
		t.Errorf("pilot should emergency-brake for an in-circle blocker, accel = %v", u.Accel)
	}
}

func TestRingPilotIgnoresInnerCircleActor(t *testing.T) {
	// The OOD misprediction: an actor on the inner circle — even one about
	// to squeeze outward — is assumed to keep its radius.
	_, ring := ringWorld(t, nil, nil)
	cfg := DefaultRingPilotConfig()
	pilot := NewRingPilot(cfg)
	pos, heading := ring.PoseAt(20.5, 0.2)
	inner := actor.NewVehicle(1, vehicle.State{Pos: pos, Heading: heading, Speed: 10})
	egoPos, egoHeading := ring.PoseAt(cfg.Radius, 0)
	obs := sim.Observation{
		Map:       ring,
		Ego:       vehicle.State{Pos: egoPos, Heading: egoHeading, Speed: 8},
		EgoParams: vehicle.DefaultParams(),
		Actors:    []*actor.Actor{inner},
	}
	u := pilot.Act(obs)
	if u.Accel == obs.EgoParams.MaxBrake {
		t.Error("pilot should not react to an inner-circle actor (lane-following prior)")
	}
}

func TestRingPilotOffRingMapNoop(t *testing.T) {
	pilot := NewRingPilot(DefaultRingPilotConfig())
	obs := sim.Observation{
		Map:       roadmap.MustStraightRoad(2, 3.5, 0, 100),
		Ego:       vehicle.State{Speed: 5},
		EgoParams: vehicle.DefaultParams(),
	}
	if u := pilot.Act(obs); u != (vehicle.Control{}) {
		t.Errorf("pilot on a non-ring map should be inert, got %+v", u)
	}
}
