package agent

import (
	"repro/internal/actor"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// ACAConfig parameterises the TTC-based automatic collision avoidance
// controller (the "LBC+TTC-based ACA" baseline of §IV-D).
type ACAConfig struct {
	// TTCThreshold triggers emergency braking when the minimum TTC over
	// in-path actors drops below it (seconds).
	TTCThreshold float64
	// Horizon / Dt parameterise the in-path trajectory prediction.
	Horizon float64
	Dt      float64
	// ReleaseSpeed stops overriding once the ego is this slow, so the
	// episode can continue after the hazard passes.
	ReleaseSpeed float64
}

// DefaultACAConfig returns the standard AEB-style configuration.
func DefaultACAConfig() ACAConfig {
	return ACAConfig{
		TTCThreshold: 2.0,
		Horizon:      3.0,
		Dt:           0.5,
		ReleaseSpeed: 0.5,
	}
}

// ACA is a reactive rule-based mitigator: full braking whenever TTC to an
// in-path actor falls below the threshold. It is the standard dedicated
// safety controller baseline: effective against frontal slowdowns, blind to
// out-of-path actors approaching from the side or rear.
type ACA struct {
	cfg ACAConfig
}

var _ sim.Mitigator = (*ACA)(nil)

// NewACA constructs the controller.
func NewACA(cfg ACAConfig) *ACA { return &ACA{cfg: cfg} }

// Reset implements sim.Mitigator.
func (c *ACA) Reset() {}

// Mitigate implements sim.Mitigator.
func (c *ACA) Mitigate(obs sim.Observation, ads vehicle.Control) (vehicle.Control, bool) {
	scene := metrics.Scene{
		Map:       obs.Map,
		Ego:       obs.Ego,
		EgoParams: obs.EgoParams,
		Actors:    obs.Actors,
		Horizon:   c.cfg.Horizon,
		Dt:        c.cfg.Dt,
	}
	steps := int(c.cfg.Horizon / c.cfg.Dt)
	scene.Trajs = actor.PredictAll(obs.Actors, steps, c.cfg.Dt)
	ttc := metrics.TTC(scene)
	if ttc < c.cfg.TTCThreshold && obs.Ego.Speed > c.cfg.ReleaseSpeed {
		return vehicle.Control{Accel: obs.EgoParams.MaxBrake, Steer: ads.Steer}, true
	}
	return ads, false
}
