package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); got != tt.want {
				t.Errorf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %v", got)
	}
	if got := StdDev([]float64{3}); got != 0 {
		t.Errorf("StdDev(single) = %v", got)
	}
	// Population SD of {2, 4, 4, 4, 5, 5, 7, 9} is 2.
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMeanStd(t *testing.T) {
	m, sd := MeanStd([]float64{1, 3})
	if m != 2 || sd != 1 {
		t.Errorf("MeanStd = %v %v", m, sd)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{-5, 15},
		{105, 50},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
	if got := Percentile(xs, 75); got != 7.5 {
		t.Errorf("p75 = %v, want 7.5", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	got := Percentiles(xs, 0, 100)
	if got[0] != 1 || got[1] != 4 {
		t.Errorf("Percentiles = %v", got)
	}
	if got := Percentiles(nil, 50, 90); got[0] != 0 || got[1] != 0 {
		t.Errorf("Percentiles(nil) = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(nil); !math.IsInf(got, 1) {
		t.Errorf("Min(nil) = %v", got)
	}
	if got := Max(nil); !math.IsInf(got, -1) {
		t.Errorf("Max(nil) = %v", got)
	}
}

func TestAggregate(t *testing.T) {
	traces := [][]float64{
		{1, 2, 3},
		{3, 4},
	}
	s := Aggregate(traces)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Mean[0] != 2 || s.Mean[1] != 3 || s.Mean[2] != 3 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.N[0] != 2 || s.N[2] != 1 {
		t.Errorf("N = %v", s.N)
	}
	if s.SD[0] != 1 {
		t.Errorf("SD[0] = %v, want 1", s.SD[0])
	}
	if s.SD[2] != 0 {
		t.Errorf("SD[2] = %v, want 0 (single trace)", s.SD[2])
	}
}

func TestAggregateEmpty(t *testing.T) {
	s := Aggregate(nil)
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestFormatMeanSD(t *testing.T) {
	if got := FormatMeanSD(3.694, 0.125); got != "3.69 (0.12)" {
		t.Errorf("FormatMeanSD = %q", got)
	}
}

// Property: the percentile function is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Abs(math.Mod(p1, 100))
		p2 = math.Abs(math.Mod(p2, 100))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		return v1 <= v2+1e-9 && v1 >= Min(xs)-1e-9 && v2 <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean lies between min and max.
func TestMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile of a sorted singleton expansion equals the element.
func TestPercentileConstantSeries(t *testing.T) {
	xs := []float64{7, 7, 7, 7}
	for _, p := range []float64{0, 25, 50, 75, 100} {
		if got := Percentile(xs, p); got != 7 {
			t.Errorf("Percentile(%v) of constant = %v", p, got)
		}
	}
	if !sort.Float64sAreSorted(xs) {
		t.Error("input unexpectedly unsorted")
	}
}

func TestWelchT(t *testing.T) {
	a := []float64{5.1, 4.9, 5.0, 5.2, 4.8}
	b := []float64{3.0, 3.2, 2.9, 3.1, 2.8}
	tt, df := WelchT(a, b)
	if tt < 10 {
		t.Errorf("clearly separated samples: t = %v, want large", tt)
	}
	if df <= 0 || df > 8 {
		t.Errorf("df = %v, want in (0, 8]", df)
	}
	// Symmetric in sign.
	tr, _ := WelchT(b, a)
	if math.Abs(tt+tr) > 1e-9 {
		t.Errorf("t not antisymmetric: %v vs %v", tt, tr)
	}
	// Degenerate inputs.
	if tt, df := WelchT([]float64{1}, b); tt != 0 || df != 0 {
		t.Error("tiny sample should return zeros")
	}
	if tt, _ := WelchT([]float64{2, 2, 2}, []float64{2, 2, 2}); tt != 0 {
		t.Errorf("identical constants t = %v", tt)
	}
}

func TestCohenD(t *testing.T) {
	a := []float64{10, 11, 9, 10, 10}
	b := []float64{0, 1, -1, 0, 0}
	if d := CohenD(a, b); d < 5 {
		t.Errorf("effect size = %v, want large", d)
	}
	if d := CohenD([]float64{1}, b); d != 0 {
		t.Errorf("degenerate d = %v", d)
	}
	if d := CohenD([]float64{3, 3}, []float64{3, 3}); d != 0 {
		t.Errorf("zero-variance d = %v", d)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Pearson(xs, xs); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %v", got)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if got := Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti correlation = %v", got)
	}
	if got := Pearson(xs, []float64{2, 2, 2, 2, 2}); got != 0 {
		t.Errorf("zero-variance correlation = %v", got)
	}
	if got := Pearson(xs, xs[:3]); got != 0 {
		t.Errorf("length mismatch correlation = %v", got)
	}
	if got := Pearson(nil, nil); got != 0 {
		t.Errorf("empty correlation = %v", got)
	}
}
