// Package stats provides the small set of descriptive statistics used when
// reporting the paper's tables and figures: mean, standard deviation,
// percentiles, and histogram-style series summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 for fewer
// than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// MeanStd returns both the mean and standard deviation in one pass over the
// pre-computed mean.
func MeanStd(xs []float64) (mean, sd float64) {
	return Mean(xs), StdDev(xs)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice. The
// input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// Percentiles returns several percentiles of xs with a single sort.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	min := math.Inf(1)
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Series summarises a collection of time-aligned traces: for each time step
// it reports the mean and standard deviation across traces, padding shorter
// traces by exclusion (each step averages only the traces that reach it).
// This is the aggregation behind the paper's Fig. 4 line plots.
type Series struct {
	Mean []float64
	SD   []float64
	N    []int // number of traces contributing at each step
}

// Aggregate builds a Series from the given traces.
func Aggregate(traces [][]float64) Series {
	maxLen := 0
	for _, tr := range traces {
		if len(tr) > maxLen {
			maxLen = len(tr)
		}
	}
	s := Series{
		Mean: make([]float64, maxLen),
		SD:   make([]float64, maxLen),
		N:    make([]int, maxLen),
	}
	var buf []float64
	for i := 0; i < maxLen; i++ {
		buf = buf[:0]
		for _, tr := range traces {
			if i < len(tr) {
				buf = append(buf, tr[i])
			}
		}
		s.Mean[i] = Mean(buf)
		s.SD[i] = StdDev(buf)
		s.N[i] = len(buf)
	}
	return s
}

// Len returns the series length.
func (s Series) Len() int { return len(s.Mean) }

// FormatMeanSD renders "mean (sd)" rows in the style of the paper's tables.
func FormatMeanSD(mean, sd float64) string {
	return fmt.Sprintf("%.2f (%.2f)", mean, sd)
}

// WelchT computes Welch's t-statistic for the difference in means of two
// samples with (possibly) unequal variances, along with the
// Welch–Satterthwaite degrees of freedom. It backs the paper's §V-B claim
// that combined STI is statistically different between safe and accident
// scenario populations.
func WelchT(a, b []float64) (t, df float64) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0
	}
	ma, sa := MeanStd(a)
	mb, sb := MeanStd(b)
	na, nb := float64(len(a)), float64(len(b))
	va, vb := sa*sa/na, sb*sb/nb
	se := math.Sqrt(va + vb)
	if se == 0 {
		return 0, 0
	}
	t = (ma - mb) / se
	denom := va*va/(na-1) + vb*vb/(nb-1)
	if denom == 0 {
		return t, 0
	}
	df = (va + vb) * (va + vb) / denom
	return t, df
}

// CohenD returns Cohen's d effect size between two samples (pooled SD).
func CohenD(a, b []float64) float64 {
	if len(a) < 2 || len(b) < 2 {
		return 0
	}
	ma, sa := MeanStd(a)
	mb, sb := MeanStd(b)
	na, nb := float64(len(a)), float64(len(b))
	pooled := math.Sqrt(((na-1)*sa*sa + (nb-1)*sb*sb) / (na + nb - 2))
	if pooled == 0 {
		return 0
	}
	return (ma - mb) / pooled
}

// Pearson returns the Pearson correlation coefficient between two equal-
// length samples, or 0 when undefined (fewer than two points or zero
// variance).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
