package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// SLO support: the serving tier declares latency/error objectives and the
// tracker maintains multi-window burn rates over per-second buckets.
//
// Burn rate is the standard SRE quantity: the observed bad-event ratio over
// a window divided by the budgeted bad ratio (1 − objective). Burn 1.0
// consumes exactly the error budget over the window; the fast-burn gate
// fires when BOTH a short and a long window exceed the threshold, which
// filters blips (short-only) and stale incidents (long-only) the way the
// multi-window multi-burn-rate alerting recipe prescribes.

// SLOConfig declares one objective.
type SLOConfig struct {
	// Name labels the objective ("availability", "latency") in metric names
	// and /debug/slo.
	Name string
	// Objective is the target good-event ratio in (0, 1), e.g. 0.999.
	Objective float64
	// Windows are the burn-rate evaluation windows, shortest first. Empty
	// resolves to {5m, 1h}. The longest window bounds the tracker's memory
	// (one 24-byte bucket per second).
	Windows []time.Duration
	// FastBurnThreshold is the burn rate above which, when every window
	// exceeds it simultaneously, the objective reports Breached. 0 resolves
	// to 14.4 (the 2%-of-monthly-budget-in-one-hour page threshold).
	FastBurnThreshold float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if len(c.Windows) == 0 {
		c.Windows = []time.Duration{5 * time.Minute, time.Hour}
	}
	if c.FastBurnThreshold <= 0 {
		c.FastBurnThreshold = 14.4
	}
	return c
}

// sloBucket accumulates one second of events.
type sloBucket struct {
	sec   int64 // unix second this bucket currently represents
	good  uint64
	total uint64
}

// SLOTracker maintains one objective's event stream. Safe for concurrent
// use; Record is O(1).
type SLOTracker struct {
	cfg SLOConfig
	now func() time.Time // test hook

	mu   sync.Mutex
	ring []sloBucket // one bucket per second, sized to the longest window
}

// NewSLOTracker builds a tracker for cfg.
func NewSLOTracker(cfg SLOConfig) (*SLOTracker, error) {
	cfg = cfg.withDefaults()
	if cfg.Name == "" {
		return nil, fmt.Errorf("telemetry: SLO needs a name")
	}
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		return nil, fmt.Errorf("telemetry: SLO %s objective %v outside (0, 1)", cfg.Name, cfg.Objective)
	}
	for i := 1; i < len(cfg.Windows); i++ {
		if cfg.Windows[i] < cfg.Windows[i-1] {
			return nil, fmt.Errorf("telemetry: SLO %s windows not ascending", cfg.Name)
		}
	}
	longest := cfg.Windows[len(cfg.Windows)-1]
	secs := int(longest/time.Second) + 1
	if secs < 2 {
		secs = 2
	}
	return &SLOTracker{cfg: cfg, now: time.Now, ring: make([]sloBucket, secs)}, nil
}

// MustNewSLOTracker is NewSLOTracker for known-good configurations.
func MustNewSLOTracker(cfg SLOConfig) *SLOTracker {
	t, err := NewSLOTracker(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the resolved configuration.
func (t *SLOTracker) Config() SLOConfig { return t.cfg }

// Record counts one event.
func (t *SLOTracker) Record(good bool) {
	sec := t.now().Unix()
	t.mu.Lock()
	defer t.mu.Unlock()
	b := &t.ring[sec%int64(len(t.ring))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.total++
	if good {
		b.good++
	}
}

// counts sums the buckets inside window ending now.
func (t *SLOTracker) counts(window time.Duration) (good, total uint64) {
	now := t.now().Unix()
	oldest := now - int64(window/time.Second) + 1
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.ring {
		if b := t.ring[i]; b.sec >= oldest && b.sec <= now {
			good += b.good
			total += b.total
		}
	}
	return good, total
}

// BurnRate returns the burn rate over the window: the bad-event ratio
// divided by the budgeted ratio (1 − objective). Zero when the window saw
// no events.
func (t *SLOTracker) BurnRate(window time.Duration) float64 {
	good, total := t.counts(window)
	if total == 0 {
		return 0
	}
	bad := float64(total-good) / float64(total)
	return bad / (1 - t.cfg.Objective)
}

// SLOWindowStatus is one window's burn-rate reading.
type SLOWindowStatus struct {
	Window   string  `json:"window"`
	Seconds  float64 `json:"seconds"`
	Good     uint64  `json:"good"`
	Total    uint64  `json:"total"`
	BurnRate float64 `json:"burn_rate"`
}

// SLOStatus is the full /debug/slo view of one objective.
type SLOStatus struct {
	Name      string  `json:"name"`
	Objective float64 `json:"objective"`
	Threshold float64 `json:"fast_burn_threshold"`
	// Breached reports the multi-window gate: every window's burn rate
	// exceeds the threshold simultaneously.
	Breached bool `json:"breached"`
	// BudgetRemaining is the error budget left over the longest window, in
	// [0, 1] of the budget (1 = untouched, 0 = exhausted or overdrawn).
	BudgetRemaining float64           `json:"budget_remaining"`
	Windows         []SLOWindowStatus `json:"windows"`
}

// Status evaluates every window at the current instant.
func (t *SLOTracker) Status() SLOStatus {
	st := SLOStatus{
		Name:      t.cfg.Name,
		Objective: t.cfg.Objective,
		Threshold: t.cfg.FastBurnThreshold,
		Breached:  true,
	}
	for _, w := range t.cfg.Windows {
		good, total := t.counts(w)
		ws := SLOWindowStatus{
			Window:  w.String(),
			Seconds: w.Seconds(),
			Good:    good,
			Total:   total,
		}
		if total > 0 {
			bad := float64(total-good) / float64(total)
			ws.BurnRate = bad / (1 - t.cfg.Objective)
		}
		if ws.BurnRate <= t.cfg.FastBurnThreshold {
			st.Breached = false
		}
		st.Windows = append(st.Windows, ws)
	}
	if n := len(st.Windows); n > 0 {
		st.BudgetRemaining = clampUnit(1 - st.Windows[n-1].BurnRate)
	} else {
		st.Breached = false
		st.BudgetRemaining = 1
	}
	return st
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Register exposes the tracker through reg: a gauge per window named
// "slo.<name>.burn_rate.<window>" plus "slo.<name>.budget_remaining" and a
// 0/1 "slo.<name>.breached" gate, refreshed at every scrape/snapshot via a
// registry collector so the exported burn rates decay even without traffic.
func (t *SLOTracker) Register(reg *Registry) {
	gauges := make([]*Gauge, len(t.cfg.Windows))
	for i, w := range t.cfg.Windows {
		gauges[i] = reg.Gauge(fmt.Sprintf("slo.%s.burn_rate.%s", t.cfg.Name, windowLabel(w)))
	}
	budget := reg.Gauge(fmt.Sprintf("slo.%s.budget_remaining", t.cfg.Name))
	breached := reg.Gauge(fmt.Sprintf("slo.%s.breached", t.cfg.Name))
	reg.AddCollector(func() {
		st := t.Status()
		for i, ws := range st.Windows {
			gauges[i].Set(ws.BurnRate)
		}
		budget.Set(st.BudgetRemaining)
		if st.Breached {
			breached.Set(1)
		} else {
			breached.Set(0)
		}
	})
}

// windowLabel renders a window for a metric name in its largest whole
// unit: 5m, 1h, 30s.
func windowLabel(w time.Duration) string {
	switch {
	case w >= time.Hour && w%time.Hour == 0:
		return fmt.Sprintf("%dh", w/time.Hour)
	case w >= time.Minute && w%time.Minute == 0:
		return fmt.Sprintf("%dm", w/time.Minute)
	}
	return fmt.Sprintf("%ds", w/time.Second)
}
