package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Server is a running telemetry HTTP endpoint.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// SnapshotHandler serves the registry snapshot as pretty-printed JSON;
// mounted at /debug/telemetry by Serve and by the scoring service.
func (r *Registry) SnapshotHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
}

// Serve publishes the default registry through expvar and starts an HTTP
// server on addr exposing:
//
//	/debug/vars       expvar JSON (includes the "iprism" metric snapshot)
//	/debug/telemetry  the bare registry snapshot, pretty-printed
//	/metrics          Prometheus text-format exposition
//	/debug/pprof/*    the standard net/http/pprof profiles
//
// The server runs until Close. Serving is opt-in and independent of
// Enable; commands flip both from the same flag.
func Serve(addr string) (*Server, error) {
	std.PublishExpvar("iprism")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/telemetry", std.SnapshotHandler())
	mux.Handle("/metrics", std.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
