package telemetry

import (
	"fmt"
	"os"
)

// Setup wires the observability command-line options shared by the iprism
// commands: a non-empty addr serves expvar+pprof there, a non-empty
// journalPath opens a JSONL journal and installs it as the process-wide
// event sink, and either being set enables metric collection. The returned
// cleanup stops the server, then flushes and detaches the journal; it is
// safe to call when both options were empty.
func Setup(addr, journalPath string) (func() error, error) {
	return SetupRotating(addr, journalPath, 0)
}

// SetupRotating is Setup with a journal size cap: the journal rotates to
// <path>.1 when it would exceed journalMaxBytes (0 = unbounded), so
// long-running commands cannot fill the disk.
func SetupRotating(addr, journalPath string, journalMaxBytes int64) (func() error, error) {
	var (
		srv *Server
		jnl *Journal
		err error
	)
	if addr != "" {
		if srv, err = Serve(addr); err != nil {
			return nil, err
		}
		// stderr: several commands stream CSV/markdown on stdout.
		fmt.Fprintf(os.Stderr, "telemetry: serving expvar and pprof on http://%s/debug/vars\n", srv.Addr)
	}
	if journalPath != "" {
		if jnl, err = OpenJournalRotating(journalPath, journalMaxBytes); err != nil {
			if srv != nil {
				srv.Close()
			}
			return nil, err
		}
		SetJournal(jnl)
	}
	if srv != nil || jnl != nil {
		Enable()
	}
	return func() error {
		var first error
		if srv != nil {
			first = srv.Close()
		}
		if jnl != nil {
			SetJournal(nil)
			if cerr := jnl.Close(); first == nil {
				first = cerr
			}
		}
		return first
	}, nil
}
