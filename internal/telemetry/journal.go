package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Event is one line of the JSONL run journal. Fields carries the
// event-specific payload (episode reward, epsilon, suite progress, ...);
// numeric field values round-trip as float64 per encoding/json.
type Event struct {
	TS     time.Time      `json:"ts"`
	Event  string         `json:"event"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Journal appends structured events to a writer as JSON Lines. It is safe
// for concurrent use; write errors are sticky and reported by Err/Close so
// per-event call sites stay unconditional.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	err    error

	// Size-capped rotation (OpenJournalRotating): when appending would push
	// the current file past maxBytes it is renamed to path+".1" (replacing
	// any previous rotation) and a fresh file is started, bounding a
	// long-running iprism-serve's disk use at ~2x the cap.
	path     string
	maxBytes int64
	written  int64
	bw       *bufio.Writer
	f        *os.File
}

// NewJournal wraps an existing writer. The caller keeps ownership of w.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w}
}

// OpenJournal creates (truncating) a journal file at path with no size cap.
// Close flushes and closes the file.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalRotating(path, 0)
}

// OpenJournalRotating creates (truncating) a journal file at path that
// rotates to path+".1" whenever appending would exceed maxBytes (0
// disables rotation). At most two files exist at any time: the live
// journal and the previous generation, so disk use stays bounded on
// long-running services.
func OpenJournalRotating(path string, maxBytes int64) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open journal: %w", err)
	}
	bw := bufio.NewWriter(f)
	return &Journal{
		w:      bw,
		closer: &flushCloser{bw: bw, f: f},
		path:   path, maxBytes: maxBytes,
		bw: bw, f: f,
	}, nil
}

type flushCloser struct {
	bw *bufio.Writer
	f  *os.File
}

func (fc *flushCloser) Close() error {
	ferr := fc.bw.Flush()
	if cerr := fc.f.Close(); ferr == nil {
		ferr = cerr
	}
	return ferr
}

// Emit appends one event stamped with the current wall-clock time.
func (j *Journal) Emit(event string, fields map[string]any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	line, err := json.Marshal(Event{TS: time.Now(), Event: event, Fields: fields})
	if err != nil {
		j.err = err
		return
	}
	line = append(line, '\n')
	if j.maxBytes > 0 && j.written > 0 && j.written+int64(len(line)) > j.maxBytes {
		if err := j.rotate(); err != nil {
			j.err = err
			return
		}
	}
	_, j.err = j.w.Write(line)
	j.written += int64(len(line))
}

// rotate closes the live file, shifts it to path+".1" (replacing the
// previous generation) and starts a fresh file. Callers hold j.mu.
func (j *Journal) rotate() error {
	if err := j.bw.Flush(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(j.path, j.path+".1"); err != nil {
		return err
	}
	f, err := os.Create(j.path)
	if err != nil {
		return err
	}
	j.f, j.bw, j.written = f, bufio.NewWriter(f), 0
	j.w = j.bw
	j.closer = &flushCloser{bw: j.bw, f: f}
	return nil
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and closes the underlying file when the journal owns one
// (OpenJournal); it returns the first write error either way.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closer != nil {
		if cerr := j.closer.Close(); j.err == nil {
			j.err = cerr
		}
		j.closer = nil
	}
	return j.err
}

// ReadJournal parses a JSONL event stream; blank lines are skipped.
func ReadJournal(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return out, fmt.Errorf("telemetry: journal line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
	return out, sc.Err()
}

// ReadJournalFile parses the JSONL journal at path.
func ReadJournalFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}
