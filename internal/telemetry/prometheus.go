package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
)

// Prometheus exposition for the registry, so the production service story
// can be scraped by any Prometheus-compatible collector without adding a
// client-library dependency. Two wire formats are spoken:
//
//   - text format 0.0.4 (the default): HELP/TYPE comments and plain
//     samples, safe for every scraper;
//   - OpenMetrics 1.0 (negotiated via `Accept: application/openmetrics-text`):
//     adds histogram bucket exemplars — `# {trace_id="..."} value ts` —
//     linking latency buckets to the TraceIDs that landed in them, and the
//     mandatory `# EOF` terminator.
//
// Metric names are sanitised to the Prometheus charset and prefixed with
// "iprism_": the counter "sti.evaluations" becomes
// "iprism_sti_evaluations_total", the histogram "sti.evaluate.seconds"
// becomes "iprism_sti_evaluate_seconds" with cumulative _bucket/_sum/_count
// series.

// WritePrometheus writes every registered metric in Prometheus text format
// 0.0.4. Output is sorted by metric name so scrapes are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics writes the registry in OpenMetrics format, including
// histogram exemplars and the `# EOF` terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	r.collect()
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	help := make(map[string]string, len(r.help))
	for name, h := range r.help {
		help[name] = h
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		// The text format conventionally declares the full sample name; the
		// OpenMetrics metric family drops the _total suffix, which reappears
		// on the sample line.
		family := promName(name) + "_total"
		sample := family
		if openMetrics {
			family = promName(name)
		}
		if err := writeHeader(w, family, "counter", helpFor(help, name, "counter")); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", sample, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		if err := writeHeader(w, pn, "gauge", helpFor(help, name, "gauge")); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", pn, promFloat(gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		pn := promName(name)
		if err := writeHeader(w, pn, "histogram", helpFor(help, name, "histogram")); err != nil {
			return err
		}
		if err := writePromHistogram(w, pn, hists[name], openMetrics); err != nil {
			return err
		}
	}
	if openMetrics {
		if _, err := io.WriteString(w, "# EOF\n"); err != nil {
			return err
		}
	}
	return nil
}

// writeHeader emits the HELP then TYPE comment pair for one metric family
// (HELP first, the order promlint and the OpenMetrics ABNF require).
func writeHeader(w io.Writer, family, typ, help string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", family, escapeHelp(help), family, typ)
	return err
}

// helpFor resolves a metric's HELP text: the registered string, or a
// generated default naming the registry metric.
func helpFor(help map[string]string, name, kind string) string {
	if h, ok := help[name]; ok && h != "" {
		return h
	}
	return fmt.Sprintf("iprism %s %s.", kind, name)
}

func writePromHistogram(w io.Writer, pn string, h *Histogram, exemplars bool) error {
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = promFloat(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d", pn, le, cum); err != nil {
			return err
		}
		if exemplars {
			if ex := h.exemplarAt(i); ex != nil {
				if _, err := fmt.Fprintf(w, " # {trace_id=\"%s\"} %s %.3f",
					escapeLabelValue(ex.TraceID), promFloat(ex.Value), float64(ex.TS.UnixMilli())/1000); err != nil {
					return err
				}
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	sum := math.Float64frombits(h.sumBits.Load())
	if cum == 0 {
		sum = 0
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(sum), pn, cum)
	return err
}

// MetricsHandler serves the registry in Prometheus text format, upgrading
// to OpenMetrics (with exemplars) when the scraper asks for it; mounted at
// /metrics by telemetry.Serve and by the scoring service.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// promName maps a registry metric name onto the Prometheus charset
// [a-zA-Z0-9_] under the iprism_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("iprism_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects: shortest exact
// representation, with the text forms +Inf/-Inf/NaN.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// escapeHelp escapes a HELP string per the exposition format: backslash
// and newline (HELP text may contain raw double quotes).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value: backslash, newline and double
// quote.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
