package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) for the registry, so
// the production service story can be scraped by any Prometheus-compatible
// collector without adding a client-library dependency.
//
// Metric names are sanitised to the Prometheus charset and prefixed with
// "iprism_": the counter "sti.evaluations" becomes
// "iprism_sti_evaluations_total", the histogram "sti.evaluate.seconds"
// becomes "iprism_sti_evaluate_seconds" with cumulative _bucket/_sum/_count
// series.

// WritePrometheus writes every registered metric in Prometheus text format.
// Output is sorted by metric name so scrapes are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		if err := writePromHistogram(w, promName(name), hists[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, pn string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = promFloat(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
			return err
		}
	}
	sum := math.Float64frombits(h.sumBits.Load())
	if cum == 0 {
		sum = 0
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(sum), pn, cum)
	return err
}

// MetricsHandler serves the registry in Prometheus text format; mounted at
// /metrics by telemetry.Serve and by the scoring service.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// promName maps a registry metric name onto the Prometheus charset
// [a-zA-Z0-9_] under the iprism_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("iprism_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects: shortest exact
// representation, with the text forms +Inf/-Inf/NaN.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
