// Package telemetry is the observability core of the repository: a
// stdlib-only, goroutine-safe metrics layer (atomic counters, gauges and
// fixed-bucket latency histograms with percentile estimation), a structured
// JSONL event journal for episode/training events, and an opt-in HTTP
// serving mode exposing expvar and pprof.
//
// Design constraints, in priority order:
//
//  1. Zero measurable overhead when disabled. Every mutating call is gated
//     on a single atomic bool load, no time.Now is taken, and no memory is
//     allocated. Instrumentation can therefore live permanently on hot
//     paths (sti.Evaluate, reach.Compute, sim.Run) without a build tag.
//  2. Safe under concurrency. The experiment suites run episodes on a
//     worker pool; all metric mutation is lock-free (atomics) and the
//     journal serialises writes behind a mutex.
//  3. No dependencies beyond the standard library.
//
// Metrics are registered by name in a Registry (get-or-create, so package
// init order does not matter); the default registry is published through
// expvar and snapshotted to JSON by Serve and by cmd/iprism-bench.
package telemetry

import "sync/atomic"

// enabled is the global collection gate. It is off by default so library
// users and the deterministic experiment reproductions pay nothing.
var enabled atomic.Bool

// Enable turns on metric collection globally.
func Enable() { enabled.Store(true) }

// Disable turns off metric collection globally. Existing metric values are
// retained; use Default().Reset() to zero them.
func Disable() { enabled.Store(false) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// defaultJournal is the process-wide journal used by instrumented packages
// via Emit. Nil (the default) means events are dropped.
var defaultJournal atomic.Pointer[Journal]

// SetJournal installs j as the process-wide journal consumed by Emit.
// Passing nil detaches the current journal (events are dropped again).
func SetJournal(j *Journal) { defaultJournal.Store(j) }

// JournalActive reports whether a process-wide journal is installed. Call
// sites that build event field maps per tick should gate on this to avoid
// the allocation when nobody is listening.
func JournalActive() bool { return defaultJournal.Load() != nil }

// Emit writes an event to the process-wide journal, if one is installed.
func Emit(event string, fields map[string]any) {
	if j := defaultJournal.Load(); j != nil {
		j.Emit(event, fields)
	}
}

// Package-level get-or-create helpers on the default registry. These are
// what instrumented packages call in their var blocks:
//
//	var evals = telemetry.NewCounter("sti.evaluations")

// NewCounter returns the named counter from the default registry.
func NewCounter(name string) *Counter { return std.Counter(name) }

// NewGauge returns the named gauge from the default registry.
func NewGauge(name string) *Gauge { return std.Gauge(name) }

// NewHistogram returns the named histogram from the default registry. The
// bounds are used only on first creation (see Registry.Histogram).
func NewHistogram(name string, bounds []float64) *Histogram {
	return std.Histogram(name, bounds)
}
