package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"
)

// enableForTest turns collection on and restores the disabled default (and
// a clean registry) when the test ends.
func enableForTest(t *testing.T) {
	t.Helper()
	Enable()
	t.Cleanup(func() {
		Disable()
		std.Reset()
	})
}

func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	c := NewCounter("test.disabled.counter")
	g := NewGauge("test.disabled.gauge")
	h := NewHistogram("test.disabled.hist", LinearBuckets(0, 1, 4))
	c.Inc()
	c.Add(10)
	g.Set(3.5)
	h.Observe(2)
	h.Start().Stop()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("disabled telemetry mutated metrics: counter=%d gauge=%v hist=%d",
			c.Value(), g.Value(), h.Count())
	}
	if st := h.stats(); st.Count != 0 || st.Min != 0 || st.Max != 0 {
		t.Errorf("empty histogram stats not zeroed: %+v", st)
	}
}

func TestCounterAndGauge(t *testing.T) {
	enableForTest(t)
	c := NewCounter("test.counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := NewGauge("test.gauge")
	g.Set(1.5)
	g.Set(-2.25)
	if got := g.Value(); got != -2.25 {
		t.Errorf("gauge = %v, want -2.25", got)
	}
	// Get-or-create must return the same handle.
	if NewCounter("test.counter") != c {
		t.Error("NewCounter returned a different handle for the same name")
	}
}

// TestHistogramPercentiles checks interpolated percentiles against a known
// uniform distribution: 1..1000 observed once each into 5-wide buckets.
// The interpolation error is bounded by one bucket width.
func TestHistogramPercentiles(t *testing.T) {
	enableForTest(t)
	h := NewHistogram("test.percentiles", LinearBuckets(5, 5, 200))
	for v := 1; v <= 1000; v++ {
		h.Observe(float64(v))
	}
	st := h.stats()
	if st.Count != 1000 {
		t.Fatalf("count = %d, want 1000", st.Count)
	}
	if st.Min != 1 || st.Max != 1000 {
		t.Errorf("min/max = %v/%v, want 1/1000", st.Min, st.Max)
	}
	if want := 500.5; math.Abs(st.Mean-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", st.Mean, want)
	}
	for _, tc := range []struct{ got, want float64 }{
		{st.P50, 500}, {st.P95, 950}, {st.P99, 990},
	} {
		if math.Abs(tc.got-tc.want) > 5 {
			t.Errorf("quantile = %v, want %v ± 5 (one bucket width)", tc.got, tc.want)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	enableForTest(t)
	h := NewHistogram("test.overflow", LinearBuckets(1, 1, 3)) // bounds 1,2,3
	for _, v := range []float64{0.5, 10, 20, 30, math.NaN()} {
		h.Observe(v)
	}
	st := h.stats()
	if st.Count != 4 {
		t.Errorf("count = %d, want 4 (NaN dropped)", st.Count)
	}
	// Overflow bucket holds 10/20/30 and reports the observed max as Le.
	last := st.Buckets[len(st.Buckets)-1]
	if last.Count != 3 || last.Le != 30 {
		t.Errorf("overflow bucket = %+v, want {Le:30 Count:3}", last)
	}
	// The p99 estimate must stay inside the data range.
	if st.P99 < st.Min || st.P99 > st.Max {
		t.Errorf("p99 = %v outside [%v, %v]", st.P99, st.Min, st.Max)
	}
}

// TestConcurrentMetrics hammers every metric type from multiple goroutines;
// meaningful mainly under -race, but the totals are asserted too.
func TestConcurrentMetrics(t *testing.T) {
	enableForTest(t)
	c := NewCounter("test.concurrent.counter")
	g := NewGauge("test.concurrent.gauge")
	h := NewHistogram("test.concurrent.hist", LatencyBuckets())
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(w*perWorker+i) * 1e-6)
				if i%100 == 0 {
					std.Snapshot() // readers race against writers
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	st := h.stats()
	if st.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", st.Count, workers*perWorker)
	}
	wantSum := 1e-6 * float64(workers*perWorker) * float64(workers*perWorker-1) / 2
	if math.Abs(st.Sum-wantSum) > wantSum*1e-9 {
		t.Errorf("histogram sum = %v, want %v", st.Sum, wantSum)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	want := []struct {
		event  string
		fields map[string]any
	}{
		{"smc.episode", map[string]any{"episode": float64(0), "reward": 12.5, "collided": false}},
		{"smc.episode", map[string]any{"episode": float64(1), "reward": -3.25, "collided": true}},
		{"suite", map[string]any{"typology": "ghost-cut-in", "scenarios": float64(40)}},
	}
	for _, w := range want {
		j.Emit(w.event, w.fields)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(want) {
		t.Fatalf("read %d events, want %d", len(events), len(want))
	}
	for i, ev := range events {
		if ev.Event != want[i].event {
			t.Errorf("event %d = %q, want %q", i, ev.Event, want[i].event)
		}
		if len(ev.Fields) != len(want[i].fields) {
			t.Errorf("event %d fields = %v, want %v", i, ev.Fields, want[i].fields)
		}
		for k, v := range want[i].fields {
			if got := ev.Fields[k]; got != v {
				t.Errorf("event %d field %q = %v (%T), want %v (%T)", i, k, got, got, v, v)
			}
		}
		if ev.TS.IsZero() {
			t.Errorf("event %d has zero timestamp", i)
		}
		if i > 0 && ev.TS.Before(events[i-1].TS) {
			t.Errorf("event %d timestamp precedes event %d", i, i-1)
		}
	}
}

func TestJournalFile(t *testing.T) {
	path := t.TempDir() + "/run.jsonl"
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit("hello", map[string]any{"n": 1.0})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Event != "hello" {
		t.Fatalf("round-trip through file: %+v", events)
	}
}

func TestDefaultJournalEmit(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	SetJournal(j)
	t.Cleanup(func() { SetJournal(nil) })
	if !JournalActive() {
		t.Fatal("JournalActive = false after SetJournal")
	}
	Emit("ping", nil)
	events, err := ReadJournal(&buf)
	if err != nil || len(events) != 1 {
		t.Fatalf("events = %v, err = %v", events, err)
	}
	SetJournal(nil)
	if JournalActive() {
		t.Error("JournalActive = true after detach")
	}
	Emit("dropped", nil) // must not panic
}

func TestSnapshotMarshalsCleanly(t *testing.T) {
	enableForTest(t)
	NewCounter("test.snap.counter").Add(3)
	NewGauge("test.snap.gauge").Set(2.5)
	NewHistogram("test.snap.hist", LatencyBuckets()).Observe(0.01)
	NewHistogram("test.snap.empty", LatencyBuckets()) // never observed: must not emit ±Inf
	raw, err := json.Marshal(std.Snapshot())
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["test.snap.counter"] != 3 {
		t.Errorf("counter lost in round-trip: %v", back.Counters)
	}
	if back.Histograms["test.snap.hist"].Count != 1 {
		t.Errorf("histogram lost in round-trip: %v", back.Histograms)
	}
}

func TestRegistryReset(t *testing.T) {
	enableForTest(t)
	c := NewCounter("test.reset.counter")
	h := NewHistogram("test.reset.hist", LinearBuckets(0, 1, 4))
	c.Inc()
	h.Observe(2)
	std.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Errorf("reset left values: counter=%d hist=%d", c.Value(), h.Count())
	}
	// The histogram must keep working after Reset.
	h.Observe(3)
	if st := h.stats(); st.Count != 1 || st.Min != 3 || st.Max != 3 {
		t.Errorf("post-reset stats = %+v", st)
	}
}

func TestSpan(t *testing.T) {
	enableForTest(t)
	sp := StartSpan("test_region")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Errorf("span duration = %v, want >= 1ms", d)
	}
	h := NewHistogram("span.test_region.seconds", LatencyBuckets())
	if h.Count() != 1 {
		t.Errorf("span histogram count = %d, want 1", h.Count())
	}
	// Zero span (telemetry disabled at start) is inert.
	Disable()
	if d := StartSpan("off").End(); d != 0 {
		t.Errorf("disabled span measured %v", d)
	}
	Enable()
}

func TestServe(t *testing.T) {
	enableForTest(t)
	NewCounter("test.serve.counter").Add(7)
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	// /debug/vars must be valid JSON containing the published snapshot.
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["iprism"], &snap); err != nil {
		t.Fatalf("expvar iprism var: %v", err)
	}
	if snap.Counters["test.serve.counter"] != 7 {
		t.Errorf("expvar snapshot counter = %d, want 7", snap.Counters["test.serve.counter"])
	}
	// /debug/telemetry serves the bare snapshot.
	if err := json.Unmarshal(get("/debug/telemetry"), &snap); err != nil {
		t.Fatalf("/debug/telemetry is not JSON: %v", err)
	}
	// One pprof endpoint as a smoke test.
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("/debug/pprof/cmdline returned empty body")
	}
}
