package telemetry

import (
	"expvar"
	"math"
	"sync"
)

// Registry is a named collection of metrics. Lookup is get-or-create so
// any package can claim its metrics in a var block regardless of init
// order; the returned handles are then mutated lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string

	// collectors run at the start of every Snapshot and Prometheus scrape,
	// letting derived metrics (SLO burn rates) refresh themselves lazily
	// instead of on a background ticker.
	cmu        sync.Mutex
	collectors []func()

	publishOnce sync.Once
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// AddCollector registers fn to run at the start of every Snapshot and
// Prometheus exposition. fn must not call Snapshot/WritePrometheus itself.
func (r *Registry) AddCollector(fn func()) {
	r.cmu.Lock()
	defer r.cmu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// collect runs the registered collectors.
func (r *Registry) collect() {
	r.cmu.Lock()
	fns := r.collectors
	r.cmu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// SetHelp attaches a HELP string to the named metric for the Prometheus
// exposition. Metrics without help text get a generated default.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// std is the default registry backing the package-level helpers.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. Later calls return the existing histogram and ignore
// bounds, so every registration site should agree on them.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric (the metric handles stay valid).
// Used between benchmark workloads and in tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
	for _, h := range r.hists {
		h.Reset()
	}
}

// Snapshot is a JSON-serialisable copy of every metric at one instant.
// All values are finite (empty histograms report zeros, not ±Inf), so the
// snapshot always marshals cleanly.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// HistogramStats summarises one histogram: moments, extrema, interpolated
// percentiles, and the non-empty buckets.
type HistogramStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets lists the non-empty buckets; Le is the bucket's inclusive
	// upper bound (the overflow bucket reports the observed max).
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Snapshot captures every metric in the registry.
func (r *Registry) Snapshot() Snapshot {
	r.collect()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramStats, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		v := g.Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		s.Gauges[name] = v
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.stats()
	}
	return s
}

// stats summarises the histogram. Concurrent Observe calls may land between
// the per-bucket loads; the summary is a near-consistent view, which is all
// a monitoring snapshot needs.
func (h *Histogram) stats() HistogramStats {
	counts := make([]uint64, len(h.counts))
	total := uint64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	st := HistogramStats{Count: total}
	if total == 0 {
		return st
	}
	st.Sum = math.Float64frombits(h.sumBits.Load())
	st.Min = math.Float64frombits(h.minBits.Load())
	st.Max = math.Float64frombits(h.maxBits.Load())
	st.Mean = st.Sum / float64(total)
	st.P50 = h.quantile(0.50, counts, total, st.Min, st.Max)
	st.P95 = h.quantile(0.95, counts, total, st.Min, st.Max)
	st.P99 = h.quantile(0.99, counts, total, st.Min, st.Max)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		le := st.Max
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		st.Buckets = append(st.Buckets, Bucket{Le: le, Count: c})
	}
	return st
}

// quantile estimates the q-th quantile by linear interpolation inside the
// bucket containing the target rank, with the bucket edges clamped to the
// observed extrema so the estimate never leaves the data range.
func (h *Histogram) quantile(q float64, counts []uint64, total uint64, min, max float64) float64 {
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo, hi := min, max
		if i > 0 && h.bounds[i-1] > lo {
			lo = h.bounds[i-1]
		}
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		return lo + (rank-prev)/float64(c)*(hi-lo)
	}
	return max
}

// PublishExpvar publishes the registry under the given expvar name (the
// default registry is published as "iprism" by Serve). Safe to call more
// than once; only the first call registers.
func (r *Registry) PublishExpvar(name string) {
	r.publishOnce.Do(func() {
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}
