// Package trace is the request-scoped tracing layer of the observability
// stack: W3C-style trace/span identifiers propagated through context, a
// per-request span recorder feeding one "wide event" per scored scene, and
// a ring-buffer flight recorder the serving tier exposes at
// /debug/requests.
//
// Design constraints mirror internal/telemetry:
//
//  1. Zero overhead off the request path. Recorder methods are nil-safe, so
//     instrumented packages (sti, reach) write `rec.Annotate(...)` without a
//     guard; an untraced call costs one nil check.
//  2. Safe under concurrency. One Recorder belongs to one request, but the
//     request fans out over the evaluator pool, so the recorder serialises
//     its appends behind a mutex.
//  3. No dependencies beyond the standard library.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"
)

// ID is a 128-bit trace identifier, rendered as 32 lowercase hex digits
// (the W3C traceparent trace-id field). The zero ID is invalid.
type ID [16]byte

// SpanID is a 64-bit span identifier, rendered as 16 lowercase hex digits.
// The zero SpanID is invalid.
type SpanID [8]byte

// idRand is a process-local PRNG for identifier generation, seeded once
// from the OS entropy pool. Identifiers need uniqueness, not secrecy, so a
// fast seeded generator beats a syscall per request.
var idRand = func() *rand.Rand {
	var seed [32]byte
	if _, err := crand.Read(seed[:]); err != nil {
		// Entropy pool unavailable: fall back to the clock. Uniqueness per
		// process still holds via the ChaCha8 stream.
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	return rand.New(rand.NewChaCha8(seed))
}()

var idMu sync.Mutex

// NewID returns a fresh non-zero trace ID.
func NewID() ID {
	idMu.Lock()
	defer idMu.Unlock()
	var id ID
	for id == (ID{}) {
		binary.LittleEndian.PutUint64(id[:8], idRand.Uint64())
		binary.LittleEndian.PutUint64(id[8:], idRand.Uint64())
	}
	return id
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	idMu.Lock()
	defer idMu.Unlock()
	var id SpanID
	for id == (SpanID{}) {
		binary.LittleEndian.PutUint64(id[:], idRand.Uint64())
	}
	return id
}

// String renders the ID as 32 hex digits.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid zero value.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the span ID as 16 hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseID parses a 32-hex-digit trace ID. The zero ID is rejected, so a
// successfully parsed ID is always valid.
func ParseID(s string) (ID, bool) {
	var id ID
	if len(s) != 2*len(id) {
		return ID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return ID{}, false
	}
	return id, true
}

// ParseOrNew returns the trace ID encoded in s (a caller-supplied
// X-Trace-Id header) when valid, or a freshly generated one. The second
// result reports whether the caller's ID was honoured.
func ParseOrNew(s string) (ID, bool) {
	if id, ok := ParseID(s); ok {
		return id, true
	}
	return NewID(), false
}

// Span is one completed timed region of a request. Offsets are relative to
// the enclosing recorder's start, so a wide event replays as a waterfall
// without clock bookkeeping.
type Span struct {
	Name    string         `json:"name"`
	SpanID  string         `json:"span_id"`
	Parent  string         `json:"parent_span_id,omitempty"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Recorder accumulates the spans and annotations of one request. It is
// created by the serving middleware, travels in the request context, and is
// drained into a WideEvent when the request completes. All methods are safe
// on a nil receiver (no-ops), so deep layers can record unconditionally.
type Recorder struct {
	traceID ID
	rootID  SpanID
	start   time.Time

	mu    sync.Mutex
	spans []Span
	attrs map[string]any
}

// NewRecorder starts a recorder for one request under the given trace ID,
// minting a fresh root span ID.
func NewRecorder(id ID) *Recorder {
	return &Recorder{traceID: id, rootID: NewSpanID(), start: time.Now()}
}

// TraceID returns the trace this recorder belongs to (zero ID when nil).
func (r *Recorder) TraceID() ID {
	if r == nil {
		return ID{}
	}
	return r.traceID
}

// RootSpanID returns the request's root span ID (zero when nil).
func (r *Recorder) RootSpanID() SpanID {
	if r == nil {
		return SpanID{}
	}
	return r.rootID
}

// Start returns when the recorder was created (zero time when nil).
func (r *Recorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Annotate attaches a request-level key/value (risk provenance, queue wait,
// cache state). Later writes to the same key win.
func (r *Recorder) Annotate(key string, value any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.attrs == nil {
		r.attrs = make(map[string]any, 8)
	}
	r.attrs[key] = value
}

// StartSpan opens a child of the root span. End completes it; an
// unfinished span is simply absent from the wide event. Safe on nil.
func (r *Recorder) StartSpan(name string) *ActiveSpan {
	if r == nil {
		return nil
	}
	return &ActiveSpan{rec: r, name: name, parent: r.rootID, id: NewSpanID(), start: time.Now()}
}

// ActiveSpan is an open span; nil is inert.
type ActiveSpan struct {
	rec    *Recorder
	name   string
	parent SpanID
	id     SpanID
	start  time.Time
	attrs  map[string]any
}

// Annotate attaches a span-level key/value. Safe on nil.
func (s *ActiveSpan) Annotate(key string, value any) *ActiveSpan {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	return s
}

// End completes the span, appending it to the recorder, and returns its
// duration. Safe on nil.
func (s *ActiveSpan) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = append(r.spans, Span{
		Name:    s.name,
		SpanID:  s.id.String(),
		Parent:  s.parent.String(),
		StartUS: s.start.Sub(r.start).Microseconds(),
		DurUS:   d.Microseconds(),
		Attrs:   s.attrs,
	})
	return d
}

// Spans returns a copy of the completed spans so far.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Attrs returns a copy of the request-level annotations so far.
func (r *Recorder) Attrs() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.attrs))
	for k, v := range r.attrs {
		out[k] = v
	}
	return out
}

// ctxKey keys the recorder in a context.
type ctxKey struct{}

// NewContext returns ctx carrying rec.
func NewContext(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, rec)
}

// FromContext returns the recorder carried by ctx, or nil. The nil result
// composes with the nil-safe Recorder methods, so callers never branch.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(ctxKey{}).(*Recorder)
	return rec
}
