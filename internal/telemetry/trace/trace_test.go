package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	id := NewID()
	if id.IsZero() {
		t.Fatal("NewID returned the zero ID")
	}
	s := id.String()
	if len(s) != 32 || strings.ToLower(s) != s {
		t.Fatalf("ID string %q not 32 lowercase hex digits", s)
	}
	got, ok := ParseID(s)
	if !ok || got != id {
		t.Fatalf("ParseID(%q) = %v, %v; want %v, true", s, got, ok, id)
	}
}

func TestParseIDRejects(t *testing.T) {
	for _, bad := range []string{
		"", "abc", strings.Repeat("0", 32), strings.Repeat("g", 32),
		strings.Repeat("a", 31), strings.Repeat("a", 33),
	} {
		if _, ok := ParseID(bad); ok {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}

func TestParseOrNew(t *testing.T) {
	want := NewID()
	got, honoured := ParseOrNew(want.String())
	if !honoured || got != want {
		t.Errorf("valid caller ID not honoured: %v, %v", got, honoured)
	}
	got, honoured = ParseOrNew("not-a-trace-id")
	if honoured || got.IsZero() {
		t.Errorf("invalid caller ID: got %v honoured=%v, want fresh ID", got, honoured)
	}
}

func TestIDsUnique(t *testing.T) {
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate ID %v after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestRecorderSpansAndAttrs(t *testing.T) {
	rec := NewRecorder(NewID())
	rec.Annotate("engine", "shared")
	sp := rec.StartSpan("reach.shared_expansion").Annotate("states", 42)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Errorf("span duration %v, want > 0", d)
	}
	spans := rec.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "reach.shared_expansion" || s.DurUS <= 0 || s.Attrs["states"] != 42 {
		t.Errorf("span = %+v", s)
	}
	if s.Parent != rec.RootSpanID().String() {
		t.Errorf("span parent %q != root %q", s.Parent, rec.RootSpanID())
	}
	if got := rec.Attrs()["engine"]; got != "shared" {
		t.Errorf("attr engine = %v", got)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var rec *Recorder
	rec.Annotate("k", "v") // must not panic
	sp := rec.StartSpan("x")
	sp.Annotate("k", 1)
	if d := sp.End(); d != 0 {
		t.Errorf("nil span duration %v", d)
	}
	if rec.Spans() != nil || rec.Attrs() != nil || !rec.TraceID().IsZero() {
		t.Error("nil recorder leaked state")
	}
	ev := rec.WideEvent("/x", "r1", 200, time.Second)
	if ev.Status != 200 || ev.Seconds != 1 {
		t.Errorf("nil recorder wide event = %+v", ev)
	}
}

func TestContextRoundTrip(t *testing.T) {
	rec := NewRecorder(NewID())
	ctx := NewContext(context.Background(), rec)
	if got := FromContext(ctx); got != rec {
		t.Errorf("FromContext = %p, want %p", got, rec)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Errorf("FromContext(empty) = %p, want nil", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(NewID())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rec.Annotate(fmt.Sprintf("k%d", i), j)
				rec.StartSpan("s").End()
			}
		}(i)
	}
	wg.Wait()
	if got := len(rec.Spans()); got != 8*50 {
		t.Errorf("got %d spans, want %d", got, 8*50)
	}
}

func TestWideEvent(t *testing.T) {
	rec := NewRecorder(NewID())
	rec.Annotate("queue_wait_seconds", 0.001)
	rec.StartSpan("server.evaluate").End()
	ev := rec.WideEvent("POST /v1/score", "req1", 200, 5*time.Millisecond)
	if ev.TraceID != rec.TraceID().String() || ev.Route != "POST /v1/score" || ev.Status != 200 {
		t.Errorf("wide event = %+v", ev)
	}
	if len(ev.Spans) != 1 || ev.Attrs["queue_wait_seconds"] != 0.001 {
		t.Errorf("wide event spans/attrs = %+v", ev)
	}
	f := ev.Fields()
	if f["trace_id"] != ev.TraceID || f["status"] != 200 {
		t.Errorf("fields = %+v", f)
	}
}

func TestFlightRecorder(t *testing.T) {
	f := NewFlightRecorder(4)
	ids := make([]string, 6)
	for i := range ids {
		ids[i] = NewID().String()
		f.Add(WideEvent{TraceID: ids[i], Status: 200 + i})
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	recent := f.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent = %d events, want 4", len(recent))
	}
	// Newest first; the two oldest were evicted.
	for i, ev := range recent {
		if want := ids[5-i]; ev.TraceID != want {
			t.Errorf("recent[%d] = %s, want %s", i, ev.TraceID, want)
		}
	}
	if got := f.Recent(2); len(got) != 2 || got[0].TraceID != ids[5] {
		t.Errorf("Recent(2) = %+v", got)
	}
	if got := f.Find(ids[0]); len(got) != 0 {
		t.Errorf("evicted trace still found: %+v", got)
	}
	if got := f.Find(ids[4]); len(got) != 1 || got[0].Status != 204 {
		t.Errorf("Find = %+v", got)
	}
	// Duplicate trace IDs accumulate.
	f.Add(WideEvent{TraceID: ids[4], Status: 500})
	if got := f.Find(ids[4]); len(got) != 2 || got[0].Status != 500 {
		t.Errorf("Find after duplicate = %+v", got)
	}
}
