package trace

import (
	"sync"
	"time"
)

// WideEvent is the one-record-per-request observability artifact: every
// dimension of a scored scene (identity, route, outcome, queue wait, engine
// path, risk provenance, span waterfall) in a single structured record.
// It is appended to the JSONL journal as event "wide_event" and retained in
// the in-memory FlightRecorder for /debug/requests lookups.
type WideEvent struct {
	TraceID   string    `json:"trace_id"`
	RequestID string    `json:"request_id"`
	Route     string    `json:"route"`
	Status    int       `json:"status"`
	Start     time.Time `json:"start"`
	Seconds   float64   `json:"seconds"`
	// Attrs carries request-level annotations: queue_wait_seconds, engine,
	// empty_cache, per-actor STI contributions, ...
	Attrs map[string]any `json:"attrs,omitempty"`
	Spans []Span         `json:"spans,omitempty"`
}

// Fields flattens the event into a journal field map (the journal stamps
// its own timestamp; Start is kept since it is the request's start, not the
// emission time).
func (e WideEvent) Fields() map[string]any {
	f := map[string]any{
		"trace_id":   e.TraceID,
		"request_id": e.RequestID,
		"route":      e.Route,
		"status":     e.Status,
		"start":      e.Start.Format(time.RFC3339Nano),
		"seconds":    e.Seconds,
	}
	if len(e.Attrs) > 0 {
		f["attrs"] = e.Attrs
	}
	if len(e.Spans) > 0 {
		f["spans"] = e.Spans
	}
	return f
}

// WideEvent drains the recorder into a wide event for a completed request.
// Safe on a nil recorder (returns an event without spans or attrs).
func (r *Recorder) WideEvent(route, requestID string, status int, d time.Duration) WideEvent {
	ev := WideEvent{
		TraceID:   r.TraceID().String(),
		RequestID: requestID,
		Route:     route,
		Status:    status,
		Start:     r.Start(),
		Seconds:   d.Seconds(),
	}
	if r != nil {
		ev.Attrs = r.Attrs()
		ev.Spans = r.Spans()
		if len(ev.Attrs) == 0 {
			ev.Attrs = nil
		}
	}
	return ev
}

// FlightRecorder retains the most recent wide events in a fixed-size ring
// so an operator can resolve a TraceID (from a p99 exemplar, a client log,
// a loadgen report) into the full request record without log infrastructure.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []WideEvent
	next int
	n    int
}

// NewFlightRecorder returns a recorder retaining the last size events
// (minimum 1).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	return &FlightRecorder{ring: make([]WideEvent, size)}
}

// Add retains ev, evicting the oldest event when full.
func (f *FlightRecorder) Add(ev WideEvent) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ring[f.next] = ev
	f.next = (f.next + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
}

// Len returns the number of retained events.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Recent returns up to limit retained events, newest first. limit <= 0
// returns everything retained.
func (f *FlightRecorder) Recent(limit int) []WideEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.n
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]WideEvent, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, f.ring[(f.next-i+len(f.ring)*2)%len(f.ring)])
	}
	return out
}

// Find returns every retained event with the given trace ID, newest first.
// One trace may span several requests (a session's observe stream, a batch
// retried after a 429), so the result is a slice.
func (f *FlightRecorder) Find(traceID string) []WideEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []WideEvent
	for i := 1; i <= f.n; i++ {
		if ev := f.ring[(f.next-i+len(f.ring)*2)%len(f.ring)]; ev.TraceID == traceID {
			out = append(out, ev)
		}
	}
	return out
}
