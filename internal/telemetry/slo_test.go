package telemetry

import (
	"strings"
	"testing"
	"time"
)

// fakeClock drives an SLOTracker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func withClock(t *SLOTracker, c *fakeClock) *SLOTracker {
	t.now = c.now
	return t
}

func TestSLOConfigValidation(t *testing.T) {
	if _, err := NewSLOTracker(SLOConfig{Objective: 0.99}); err == nil {
		t.Error("nameless SLO accepted")
	}
	for _, obj := range []float64{0, 1, -1, 2} {
		if _, err := NewSLOTracker(SLOConfig{Name: "x", Objective: obj}); err == nil {
			t.Errorf("objective %v accepted", obj)
		}
	}
	if _, err := NewSLOTracker(SLOConfig{
		Name: "x", Objective: 0.9,
		Windows: []time.Duration{time.Hour, time.Minute},
	}); err == nil {
		t.Error("descending windows accepted")
	}
	tr := MustNewSLOTracker(SLOConfig{Name: "x", Objective: 0.99})
	cfg := tr.Config()
	if len(cfg.Windows) != 2 || cfg.Windows[0] != 5*time.Minute || cfg.Windows[1] != time.Hour {
		t.Errorf("default windows = %v", cfg.Windows)
	}
	if cfg.FastBurnThreshold != 14.4 {
		t.Errorf("default threshold = %v", cfg.FastBurnThreshold)
	}
}

func TestSLOBurnRate(t *testing.T) {
	clk := newFakeClock()
	tr := withClock(MustNewSLOTracker(SLOConfig{
		Name: "availability", Objective: 0.99,
		Windows: []time.Duration{time.Minute, 10 * time.Minute},
	}), clk)

	// No traffic: zero burn, nothing breached.
	if br := tr.BurnRate(time.Minute); br != 0 {
		t.Errorf("idle burn = %v", br)
	}
	if st := tr.Status(); st.Breached || st.BudgetRemaining != 1 {
		t.Errorf("idle status = %+v", st)
	}

	// 100 events, 1 bad: bad ratio 1% = exactly the budget, burn 1.0.
	for i := 0; i < 100; i++ {
		tr.Record(i != 0)
	}
	if br := tr.BurnRate(time.Minute); br < 0.99 || br > 1.01 {
		t.Errorf("burn = %v, want ~1.0", br)
	}

	// All-bad traffic burns at 1/(1-objective) = 100x.
	clk.advance(2 * time.Minute)
	for i := 0; i < 50; i++ {
		tr.Record(false)
	}
	if br := tr.BurnRate(time.Minute); br < 99.99 || br > 100.01 {
		t.Errorf("all-bad burn = %v, want ~100", br)
	}
	// The short window sees only the bad burst; the long window still
	// includes the earlier good traffic.
	if short, long := tr.BurnRate(time.Minute), tr.BurnRate(10*time.Minute); long >= short {
		t.Errorf("long burn %v >= short burn %v", long, short)
	}
	st := tr.Status()
	if !st.Breached {
		t.Errorf("status not breached with burn 100 on both windows: %+v", st)
	}
	if st.BudgetRemaining != 0 {
		t.Errorf("budget remaining = %v, want 0", st.BudgetRemaining)
	}

	// Events age out of the window.
	clk.advance(15 * time.Minute)
	if br := tr.BurnRate(10 * time.Minute); br != 0 {
		t.Errorf("aged-out burn = %v", br)
	}
	if st := tr.Status(); st.Breached {
		t.Errorf("aged-out status still breached: %+v", st)
	}
}

func TestSLOMultiWindowGate(t *testing.T) {
	clk := newFakeClock()
	tr := withClock(MustNewSLOTracker(SLOConfig{
		Name: "latency", Objective: 0.9, FastBurnThreshold: 2,
		Windows: []time.Duration{time.Minute, time.Hour},
	}), clk)
	// A burst of bad events inside the short window but diluted over the
	// long window must NOT breach (that is the point of multi-window).
	clk.advance(30 * time.Minute)
	for i := 0; i < 1000; i++ {
		tr.Record(true)
	}
	clk.advance(20 * time.Minute)
	for i := 0; i < 30; i++ {
		tr.Record(false)
	}
	st := tr.Status()
	if st.Windows[0].BurnRate <= 2 {
		t.Fatalf("short window burn %v, want > 2", st.Windows[0].BurnRate)
	}
	if st.Windows[1].BurnRate > 2 {
		t.Fatalf("long window burn %v, want <= 2 (diluted)", st.Windows[1].BurnRate)
	}
	if st.Breached {
		t.Error("short-window blip breached the multi-window gate")
	}
}

func TestSLORegisterExportsGauges(t *testing.T) {
	Enable()
	t.Cleanup(Disable)
	clk := newFakeClock()
	tr := withClock(MustNewSLOTracker(SLOConfig{
		Name: "availability", Objective: 0.99,
		Windows: []time.Duration{5 * time.Minute, time.Hour},
	}), clk)
	reg := NewRegistry()
	tr.Register(reg)
	for i := 0; i < 10; i++ {
		tr.Record(false)
	}
	snap := reg.Snapshot() // collectors run here
	if got := snap.Gauges["slo.availability.burn_rate.5m"]; got < 99.99 || got > 100.01 {
		t.Errorf("burn_rate.5m gauge = %v, want ~100", got)
	}
	if got := snap.Gauges["slo.availability.burn_rate.1h"]; got < 99.99 || got > 100.01 {
		t.Errorf("burn_rate.1h gauge = %v, want ~100", got)
	}
	if got := snap.Gauges["slo.availability.breached"]; got != 1 {
		t.Errorf("breached gauge = %v, want 1", got)
	}
	if got := snap.Gauges["slo.availability.budget_remaining"]; got != 0 {
		t.Errorf("budget gauge = %v, want 0", got)
	}
	// The same gauges must surface in the Prometheus exposition.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "iprism_slo_availability_burn_rate_5m 99.9") &&
		!strings.Contains(sb.String(), "iprism_slo_availability_burn_rate_5m 100") {
		t.Errorf("exposition missing burn-rate gauge:\n%s", sb.String())
	}
}

func TestWindowLabel(t *testing.T) {
	for _, tc := range []struct {
		w    time.Duration
		want string
	}{
		{5 * time.Minute, "5m"}, {time.Hour, "1h"}, {30 * time.Second, "30s"},
		{90 * time.Second, "90s"}, {6 * time.Hour, "6h"},
	} {
		if got := windowLabel(tc.w); got != tc.want {
			t.Errorf("windowLabel(%v) = %q, want %q", tc.w, got, tc.want)
		}
	}
}
