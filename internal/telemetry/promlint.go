package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintExposition is a promlint-style conformance checker for the /metrics
// output: it validates the structural contract scrapers rely on, so a
// regression in the hand-rolled exposition writer fails a table test (and
// the verify.sh observability smoke) instead of a production scrape.
//
// Checks, per metric family:
//
//   - `# HELP` precedes `# TYPE`; each is declared at most once;
//   - TYPE is a known metric type; sample names match the Prometheus
//     charset; counters end in `_total`;
//   - samples follow their family's declaration without interleaving, and
//     no sample (name + label set) repeats;
//   - label syntax is well-formed, with escape sequences limited to
//     \\ \" \n;
//   - histograms expose `_sum` and `_count`, a `+Inf` bucket equal to
//     `_count`, and cumulative bucket counts that are monotone in le order;
//   - in OpenMetrics mode: the exposition ends with `# EOF`, and bucket
//     exemplars (` # {...} value [ts]`) carry well-formed label sets.
//
// The returned slice is empty for a conformant exposition.
func LintExposition(data []byte, openMetrics bool) []error {
	l := &linter{openMetrics: openMetrics, types: map[string]string{}, help: map[string]bool{}}
	lines := strings.Split(string(data), "\n")
	sawEOF := false
	for i, line := range lines {
		no := i + 1
		switch {
		case line == "":
			if i != len(lines)-1 && openMetrics {
				l.errf(no, "blank line inside OpenMetrics exposition")
			}
		case sawEOF:
			l.errf(no, "content after # EOF")
		case line == "# EOF":
			if !openMetrics {
				l.errf(no, "# EOF terminator in text-format exposition")
			}
			sawEOF = true
		case strings.HasPrefix(line, "# HELP "):
			l.helpLine(no, line)
		case strings.HasPrefix(line, "# TYPE "):
			l.typeLine(no, line)
		case strings.HasPrefix(line, "#"):
			if openMetrics {
				l.errf(no, "comment %q not allowed in OpenMetrics", line)
			}
		default:
			l.sampleLine(no, line)
		}
	}
	if openMetrics && !sawEOF {
		l.errf(len(lines), "missing # EOF terminator")
	}
	l.finishFamily()
	return l.errs
}

type linter struct {
	openMetrics bool
	errs        []error
	types       map[string]string // family -> type
	help        map[string]bool
	seen        map[string]bool // samples of the current family

	family     string // family currently accepting samples
	histBucket histState
}

// histState accumulates histogram-shape evidence while a histogram
// family's samples stream by.
type histState struct {
	prevLe  float64
	prev    float64
	started bool
	infSeen bool
	inf     float64
	sum     bool
	count   float64
	hasCnt  bool
}

func (l *linter) errf(line int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true,
	"untyped": true, "unknown": true,
}

func validName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

func (l *linter) helpLine(no int, line string) {
	rest := strings.TrimPrefix(line, "# HELP ")
	name, _, ok := strings.Cut(rest, " ")
	if !ok || !validName(name) {
		l.errf(no, "malformed HELP line %q", line)
		return
	}
	if l.help[name] {
		l.errf(no, "duplicate HELP for %s", name)
	}
	if _, declared := l.types[name]; declared {
		l.errf(no, "HELP for %s after its TYPE (HELP must come first)", name)
	}
	l.help[name] = true
}

func (l *linter) typeLine(no int, line string) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		l.errf(no, "malformed TYPE line %q", line)
		return
	}
	name, typ := fields[2], fields[3]
	if !validName(name) {
		l.errf(no, "invalid metric name %q", name)
	}
	if !validTypes[typ] {
		l.errf(no, "unknown metric type %q", typ)
	}
	if _, dup := l.types[name]; dup {
		l.errf(no, "duplicate TYPE for %s", name)
	}
	if !l.help[name] {
		l.errf(no, "TYPE for %s without preceding HELP", name)
	}
	if typ == "counter" && !l.openMetrics && !strings.HasSuffix(name, "_total") {
		// In the text format the declared sample name carries the suffix;
		// OpenMetrics families drop it.
		l.errf(no, "counter %s should end in _total", name)
	}
	l.types[name] = typ
	l.finishFamily()
	l.family = name
	l.seen = map[string]bool{}
	l.histBucket = histState{prevLe: math.Inf(-1)}
}

// familyOf maps a sample name onto the family it must belong to, given the
// declared families.
func (l *linter) familyOf(sample string) (string, bool) {
	if _, ok := l.types[sample]; ok {
		return sample, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count", "_total"} {
		base := strings.TrimSuffix(sample, suffix)
		if base != sample {
			if _, ok := l.types[base]; ok {
				return base, true
			}
		}
	}
	return "", false
}

func (l *linter) sampleLine(no int, line string) {
	name, labels, rest, err := splitSample(line)
	if err != nil {
		l.errf(no, "%v", err)
		return
	}
	if !validName(name) {
		l.errf(no, "invalid sample name %q", name)
		return
	}
	family, ok := l.familyOf(name)
	if !ok {
		l.errf(no, "sample %s without a TYPE declaration", name)
		return
	}
	if family != l.family {
		l.errf(no, "sample %s interleaved: family %s is not the most recently declared (%s)", name, family, l.family)
	}
	if l.seen != nil {
		key := name + "{" + labels + "}"
		if l.seen[key] {
			l.errf(no, "duplicate sample %s", key)
		}
		l.seen[key] = true
	}
	labelMap, err := parseLabels(labels)
	if err != nil {
		l.errf(no, "sample %s: %v", name, err)
		return
	}

	// Value, optionally followed by a timestamp, optionally followed by an
	// exemplar (OpenMetrics buckets only).
	valuePart, exemplar, hasExemplar := strings.Cut(rest, " # ")
	if hasExemplar {
		if !l.openMetrics {
			l.errf(no, "exemplar on %s in text-format exposition", name)
		} else if !strings.HasSuffix(name, "_bucket") && !strings.HasSuffix(name, "_total") {
			l.errf(no, "exemplar on %s (only buckets and counters may carry exemplars)", name)
		} else if err := lintExemplar(exemplar); err != nil {
			l.errf(no, "sample %s exemplar: %v", name, err)
		}
	}
	valueFields := strings.Fields(valuePart)
	if len(valueFields) < 1 || len(valueFields) > 2 {
		l.errf(no, "sample %s: want 'value [timestamp]', got %q", name, valuePart)
		return
	}
	value, err := parsePromFloat(valueFields[0])
	if err != nil {
		l.errf(no, "sample %s: bad value %q", name, valueFields[0])
		return
	}

	// Histogram-shape accounting for the current family.
	if l.types[family] == "histogram" {
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, ok := labelMap["le"]
			if !ok {
				l.errf(no, "bucket %s without le label", name)
				return
			}
			leV, err := parsePromFloat(le)
			if err != nil {
				l.errf(no, "bucket %s: bad le %q", name, le)
				return
			}
			hb := &l.histBucket
			if hb.started && leV <= hb.prevLe {
				l.errf(no, "bucket le=%q out of order", le)
			}
			if value < hb.prev {
				l.errf(no, "bucket le=%q count %v below previous bucket %v (not cumulative)", le, value, hb.prev)
			}
			hb.prev, hb.prevLe, hb.started = value, leV, true
			if math.IsInf(leV, 1) {
				hb.infSeen, hb.inf = true, value
			}
		case strings.HasSuffix(name, "_sum"):
			l.histBucket.sum = true
		case strings.HasSuffix(name, "_count"):
			l.histBucket.count, l.histBucket.hasCnt = value, true
		}
	}
}

// finishFamily closes out histogram-shape checks for the family whose
// samples just ended.
func (l *linter) finishFamily() {
	if l.family == "" {
		return
	}
	if l.types[l.family] == "histogram" {
		hb := l.histBucket
		if !hb.infSeen {
			l.errs = append(l.errs, fmt.Errorf("histogram %s: missing +Inf bucket", l.family))
		}
		if !hb.sum {
			l.errs = append(l.errs, fmt.Errorf("histogram %s: missing _sum", l.family))
		}
		if !hb.hasCnt {
			l.errs = append(l.errs, fmt.Errorf("histogram %s: missing _count", l.family))
		} else if hb.infSeen && hb.inf != hb.count {
			l.errs = append(l.errs, fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", l.family, hb.inf, hb.count))
		}
	}
	l.family = ""
}

// splitSample splits `name{labels} value ...` into its parts; labels is the
// raw text between the braces ("" when absent).
func splitSample(line string) (name, labels, rest string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		// The closing brace must be found outside quoted label values.
		j, e := closingBrace(line, i)
		if e != nil {
			return "", "", "", e
		}
		labels = line[i+1 : j]
		rest = strings.TrimPrefix(line[j+1:], " ")
		return name, labels, rest, nil
	}
	name, rest, ok := strings.Cut(line, " ")
	if !ok {
		return "", "", "", fmt.Errorf("malformed sample %q", line)
	}
	return name, "", rest, nil
}

// closingBrace finds the index of the brace closing the label set opened at
// open, skipping quoted values.
func closingBrace(line string, open int) (int, error) {
	inQuote := false
	for i := open + 1; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("unterminated label set in %q", line)
}

// parseLabels parses `k="v",k2="v2"` (trailing comma tolerated in the text
// format) into a map, validating names, quoting and escape sequences.
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	s = strings.TrimSuffix(s, ",")
	if s == "" {
		return out, nil
	}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", s)
		}
		name := s[:eq]
		if !validName(name) || strings.ContainsRune(name, ':') {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", name)
		}
		val, remainder, err := unquoteLabel(s)
		if err != nil {
			return nil, fmt.Errorf("label %s: %w", name, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val
		s = remainder
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		} else if len(s) > 0 {
			return nil, fmt.Errorf("unexpected %q after label value", s)
		}
	}
	return out, nil
}

// unquoteLabel consumes a quoted label value, validating escapes (\\ \" \n
// only), returning the decoded value and the unconsumed remainder.
func unquoteLabel(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling backslash")
			}
			switch s[i+1] {
			case '\\', '"':
				b.WriteByte(s[i+1])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i+1])
			}
			i++
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quote")
}

// lintExemplar validates ` # {labels} value [ts]` payload after the ` # `.
func lintExemplar(s string) error {
	if !strings.HasPrefix(s, "{") {
		return fmt.Errorf("want '{' opening exemplar labels, got %q", s)
	}
	j, err := closingBrace(s, 0)
	if err != nil {
		return err
	}
	if _, err := parseLabels(s[1:j]); err != nil {
		return err
	}
	fields := strings.Fields(s[j+1:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("want 'value [timestamp]' after labels, got %q", s[j+1:])
	}
	for _, f := range fields {
		if _, err := parsePromFloat(f); err != nil {
			return fmt.Errorf("bad number %q", f)
		}
	}
	return nil
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// LintErrors renders lint findings one per line (empty string when clean),
// for the promlint CLI and test failure messages.
func LintErrors(errs []error) string {
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	sort.Strings(msgs)
	return strings.Join(msgs, "\n")
}
