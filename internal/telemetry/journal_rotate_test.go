package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournalRotating(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	// Each event is ~120 bytes; write enough to force several rotations.
	for i := 0; i < 200; i++ {
		j.Emit("rotate.test", map[string]any{"i": i, "pad": "0123456789012345678901234567890123456789"})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	live, err := os.Stat(path)
	if err != nil {
		t.Fatalf("live journal missing: %v", err)
	}
	prev, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatalf("rotated journal missing: %v", err)
	}
	// Disk use is bounded: both generations respect the cap.
	if live.Size() > 2048 || prev.Size() > 2048 {
		t.Errorf("cap exceeded: live %d, prev %d", live.Size(), prev.Size())
	}
	// Only one previous generation exists.
	if _, err := os.Stat(path + ".1.1"); err == nil {
		t.Error("more than one rotated generation on disk")
	}
	if _, err := os.Stat(path + ".2"); err == nil {
		t.Error("unexpected .2 generation on disk")
	}

	// Both files must remain valid JSONL, and the newest events must be in
	// the live file (rotation never reorders or drops the tail).
	liveEvents, err := ReadJournalFile(path)
	if err != nil {
		t.Fatalf("live journal corrupt: %v", err)
	}
	prevEvents, err := ReadJournalFile(path + ".1")
	if err != nil {
		t.Fatalf("rotated journal corrupt: %v", err)
	}
	if len(liveEvents) == 0 || len(prevEvents) == 0 {
		t.Fatalf("events: live %d, prev %d; want both non-empty", len(liveEvents), len(prevEvents))
	}
	last := liveEvents[len(liveEvents)-1]
	if got := last.Fields["i"].(float64); got != 199 {
		t.Errorf("last event i = %v, want 199", got)
	}
	// prev's last event immediately precedes live's first.
	pl := prevEvents[len(prevEvents)-1].Fields["i"].(float64)
	lf := liveEvents[0].Fields["i"].(float64)
	if pl+1 != lf {
		t.Errorf("rotation dropped events: prev ends at %v, live starts at %v", pl, lf)
	}
}

func TestJournalNoRotationWithoutCap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		j.Emit("nocap.test", map[string]any{"i": i, "pad": fmt.Sprintf("%0100d", i)})
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); err == nil {
		t.Error("uncapped journal rotated")
	}
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 500 {
		t.Errorf("got %d events, want 500", len(events))
	}
}

func TestJournalRotationOversizedEvent(t *testing.T) {
	// A single event larger than the cap must still be written (rotation
	// bounds steady-state growth; it must not deadlock or drop).
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := OpenJournalRotating(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit("big", map[string]any{"pad": fmt.Sprintf("%0200d", 1)})
	j.Emit("big", map[string]any{"pad": fmt.Sprintf("%0200d", 2)})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prevEvents, _ := ReadJournalFile(path + ".1")
	if len(events)+len(prevEvents) != 2 {
		t.Errorf("events across generations = %d+%d, want 2", len(prevEvents), len(events))
	}
}
