package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 && enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a last-value-wins float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set records v as the current value.
func (g *Gauge) Set(v float64) {
	if enabled.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last recorded value (0 before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.bits.Store(0) }

// Histogram is a fixed-bucket distribution metric. Bucket i counts
// observations in (bounds[i-1], bounds[i]]; one implicit overflow bucket
// counts observations above the last bound. Observation is lock-free.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	// ex[i] is the latest exemplar landing in bucket i (last-write-wins),
	// linking the bucket — a p99 spike, say — to the TraceID that caused it.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar ties one observation to the trace that produced it, exposed in
// the OpenMetrics exposition as `# {trace_id="..."} value timestamp`.
type Exemplar struct {
	TraceID string
	Value   float64
	TS      time.Time
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	h := &Histogram{
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
		ex:     make([]atomic.Pointer[Exemplar], len(bs)+1),
	}
	h.resetExtrema()
	return h
}

func (h *Histogram) resetExtrema() {
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
}

// Observe records one sample. NaN samples are dropped.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() || math.IsNaN(v) {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
}

// ObserveExemplar records one sample like Observe and, when traceID is
// non-empty, additionally stamps the sample's bucket with an exemplar so
// the exposition can link latency buckets to offending traces. It belongs
// on request-scoped paths (one call per HTTP request), not per-tick inner
// loops: each call allocates one Exemplar.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if !enabled.Load() || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
	atomicMinFloat(&h.minBits, v)
	atomicMaxFloat(&h.maxBits, v)
	if traceID != "" {
		h.ex[i].Store(&Exemplar{TraceID: traceID, Value: v, TS: time.Now()})
	}
}

// exemplarAt returns bucket i's latest exemplar, or nil.
func (h *Histogram) exemplarAt(i int) *Exemplar {
	if i >= len(h.ex) {
		return nil
	}
	return h.ex[i].Load()
}

// Count returns the total number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	for i := range h.ex {
		h.ex[i].Store(nil)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
	h.resetExtrema()
}

// Start begins a latency measurement that Stop records into the histogram
// in seconds. When telemetry is disabled no clock is read and Stop is a
// no-op, so `defer h.Start().Stop()` is safe on hot paths.
func (h *Histogram) Start() Timer {
	if !enabled.Load() {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Timer measures one duration into a histogram. The zero Timer is inert.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Stop records the elapsed time since Start in seconds and returns it.
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}

// Span is a named timed region recorded into the default registry under
// "span.<name>.seconds". Unlike Timer it needs no pre-registered histogram,
// making it suitable for coarse one-off regions (suite builds, training
// runs) rather than per-tick hot paths. The zero Span is inert.
type Span struct {
	name  string
	start time.Time
}

// StartSpan begins a named timed region.
func StartSpan(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	return Span{name: name, start: time.Now()}
}

// End records the region's duration and returns it. It also emits a
// journal event carrying the duration when a journal is installed.
func (s Span) End() time.Duration {
	if s.name == "" {
		return 0
	}
	d := time.Since(s.start)
	NewHistogram("span."+s.name+".seconds", LatencyBuckets()).Observe(d.Seconds())
	if JournalActive() {
		Emit("span", map[string]any{"name": s.name, "seconds": d.Seconds()})
	}
	return d
}

// atomicAddFloat adds v to the float64 stored as bits in p.
func atomicAddFloat(p *atomic.Uint64, v float64) {
	for {
		old := p.Load()
		if p.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func atomicMinFloat(p *atomic.Uint64, v float64) {
	for {
		old := p.Load()
		if math.Float64frombits(old) <= v || p.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func atomicMaxFloat(p *atomic.Uint64, v float64) {
	for {
		old := p.Load()
		if math.Float64frombits(old) >= v || p.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// LatencyBuckets returns exponential bucket bounds in seconds covering
// 1 µs to ~8.4 s (doubling), the range of every latency in this repo from
// a single simulator step to a full suite build.
func LatencyBuckets() []float64 {
	return ExponentialBuckets(1e-6, 2, 24)
}

// ExponentialBuckets returns n bounds starting at start, multiplied by
// factor at each step.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds starting at start, spaced width apart.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
