package telemetry

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parseExposition is a minimal parser for the Prometheus text format:
// sample name (with label set, if any) -> value, plus TYPE declarations.
func parseExposition(t *testing.T, body string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = make(map[string]float64)
	types = make(map[string]string)
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		samples[line[:idx]] = v
	}
	return samples, types
}

func TestPrometheusExposition(t *testing.T) {
	Enable()
	t.Cleanup(Disable)
	reg := NewRegistry()
	reg.Counter("prom.test.requests").Add(42)
	reg.Gauge("prom.test.queue-depth").Set(3.5)
	h := reg.Histogram("prom.test.seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	srv := httptest.NewServer(reg.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, types := parseExposition(t, sb.String())

	if got := types["iprism_prom_test_requests_total"]; got != "counter" {
		t.Errorf("counter TYPE = %q", got)
	}
	if got := samples["iprism_prom_test_requests_total"]; got != 42 {
		t.Errorf("counter = %v, want 42", got)
	}
	// The '-' in the gauge name must be sanitised to '_'.
	if got := types["iprism_prom_test_queue_depth"]; got != "gauge" {
		t.Errorf("gauge TYPE = %q", got)
	}
	if got := samples["iprism_prom_test_queue_depth"]; got != 3.5 {
		t.Errorf("gauge = %v, want 3.5", got)
	}

	if got := types["iprism_prom_test_seconds"]; got != "histogram" {
		t.Errorf("histogram TYPE = %q", got)
	}
	wantBuckets := map[string]float64{
		`iprism_prom_test_seconds_bucket{le="0.1"}`:  1,
		`iprism_prom_test_seconds_bucket{le="1"}`:    3,
		`iprism_prom_test_seconds_bucket{le="10"}`:   4,
		`iprism_prom_test_seconds_bucket{le="+Inf"}`: 5,
	}
	prev := -1.0
	for name, want := range wantBuckets {
		got, ok := samples[name]
		if !ok {
			t.Fatalf("missing bucket %s in:\n%s", name, sb.String())
		}
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// Cumulative buckets must be monotonic in le order.
	for _, name := range []string{
		`iprism_prom_test_seconds_bucket{le="0.1"}`,
		`iprism_prom_test_seconds_bucket{le="1"}`,
		`iprism_prom_test_seconds_bucket{le="10"}`,
		`iprism_prom_test_seconds_bucket{le="+Inf"}`,
	} {
		if samples[name] < prev {
			t.Errorf("bucket %s not monotonic (%v < %v)", name, samples[name], prev)
		}
		prev = samples[name]
	}
	if got := samples["iprism_prom_test_seconds_count"]; got != 5 {
		t.Errorf("count = %v, want 5", got)
	}
	if got := samples["iprism_prom_test_seconds_sum"]; got != 0.05+0.5+0.5+5+50 {
		t.Errorf("sum = %v", got)
	}
	// The +Inf bucket must equal the count, per the exposition contract.
	if samples[`iprism_prom_test_seconds_bucket{le="+Inf"}`] != samples["iprism_prom_test_seconds_count"] {
		t.Error("+Inf bucket != count")
	}
}

func TestPrometheusEmptyHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("prom.empty.seconds", []float64{1, 2})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, _ := parseExposition(t, sb.String())
	if got := samples["iprism_prom_empty_seconds_count"]; got != 0 {
		t.Errorf("count = %v, want 0", got)
	}
	if got := samples["iprism_prom_empty_seconds_sum"]; got != 0 {
		t.Errorf("sum = %v, want 0 (never NaN/Inf for empty histograms)", got)
	}
}
