package telemetry

import (
	"strings"
	"testing"
)

// buildRegistry populates a registry the way the serving tier does:
// counters, gauges, histograms, an exemplar and SLO gauges.
func buildLintRegistry(t *testing.T) *Registry {
	t.Helper()
	Enable()
	t.Cleanup(Disable)
	reg := NewRegistry()
	reg.Counter("lint.requests").Add(17)
	reg.Gauge("lint.queue.depth").Set(3)
	h := reg.Histogram("lint.request.seconds", []float64{0.001, 0.01, 0.1, 1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.ObserveExemplar(0.5, "0123456789abcdef0123456789abcdef")
	reg.SetHelp("lint.requests", `HTTP requests with "quotes" and a \ backslash`)
	MustNewSLOTracker(SLOConfig{Name: "lint", Objective: 0.99}).Register(reg)
	return reg
}

// TestExpositionConformance is the promlint-style table test over
// MetricsHandler output: both wire formats the handler speaks must pass
// every structural check the linter knows.
func TestExpositionConformance(t *testing.T) {
	reg := buildLintRegistry(t)
	for _, tc := range []struct {
		name        string
		openMetrics bool
	}{
		{"text-0.0.4", false},
		{"openmetrics", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			var err error
			if tc.openMetrics {
				err = reg.WriteOpenMetrics(&sb)
			} else {
				err = reg.WritePrometheus(&sb)
			}
			if err != nil {
				t.Fatal(err)
			}
			if errs := LintExposition([]byte(sb.String()), tc.openMetrics); len(errs) > 0 {
				t.Errorf("exposition not conformant:\n%s\n---\n%s", LintErrors(errs), sb.String())
			}
		})
	}
}

func TestOpenMetricsExemplar(t *testing.T) {
	reg := buildLintRegistry(t)
	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="0123456789abcdef0123456789abcdef"} 0.5`) {
		t.Errorf("OpenMetrics output missing exemplar:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("OpenMetrics output missing # EOF terminator")
	}
	// The default text format must NOT leak exemplars (scrapers of 0.0.4
	// reject them) nor the EOF terminator.
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "trace_id=") || strings.Contains(sb.String(), "# EOF") {
		t.Errorf("text exposition leaked OpenMetrics syntax:\n%s", sb.String())
	}
}

func TestHelpPrecedesType(t *testing.T) {
	reg := buildLintRegistry(t)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	helpSeen := map[string]int{}
	for i, line := range lines {
		if strings.HasPrefix(line, "# HELP ") {
			helpSeen[strings.Fields(line)[2]] = i
		}
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			hi, ok := helpSeen[name]
			if !ok || hi != i-1 {
				t.Errorf("TYPE %s at line %d without HELP immediately before", name, i+1)
			}
		}
	}
	// Registered help text must be escaped, not raw.
	if !strings.Contains(sb.String(), `with "quotes" and a \\ backslash`) {
		t.Errorf("help escaping wrong:\n%s", sb.String())
	}
}

// TestLintCatchesViolations feeds the linter hand-broken expositions; a
// checker that passes everything would make the conformance test above
// meaningless.
func TestLintCatchesViolations(t *testing.T) {
	for _, tc := range []struct {
		name string
		body string
		om   bool
		want string
	}{
		{
			name: "type-before-help",
			body: "# TYPE x_total counter\n# HELP x_total help\nx_total 1\n",
			want: "without preceding HELP",
		},
		{
			name: "counter-missing-total",
			body: "# HELP x help\n# TYPE x counter\nx 1\n",
			want: "should end in _total",
		},
		{
			name: "undeclared-sample",
			body: "# HELP x_total help\n# TYPE x_total counter\nx_total 1\ny 2\n",
			want: "without a TYPE declaration",
		},
		{
			name: "duplicate-sample",
			body: "# HELP x help\n# TYPE x gauge\nx 1\nx 2\n",
			want: "duplicate sample",
		},
		{
			name: "histogram-missing-sum",
			body: "# HELP h help\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
			want: "missing _sum",
		},
		{
			name: "histogram-missing-inf",
			body: "# HELP h help\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
			want: "missing +Inf",
		},
		{
			name: "histogram-inf-count-mismatch",
			body: "# HELP h help\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			want: "+Inf bucket 2 != _count 3",
		},
		{
			name: "histogram-not-cumulative",
			body: "# HELP h help\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			want: "not cumulative",
		},
		{
			name: "bad-label-escape",
			body: "# HELP x help\n# TYPE x gauge\nx{a=\"\\t\"} 1\n",
			want: "invalid escape",
		},
		{
			name: "unterminated-label",
			body: "# HELP x help\n# TYPE x gauge\nx{a=\"v 1\n",
			want: "unterminated",
		},
		{
			name: "bad-metric-name",
			body: "# HELP 9x help\n# TYPE 9x gauge\n9x 1\n",
			want: "invalid",
		},
		{
			name: "exemplar-in-text-format",
			body: "# HELP h help\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"a\"} 1\nh_sum 1\nh_count 1\n",
			want: "exemplar",
		},
		{
			name: "missing-eof",
			body: "# HELP x help\n# TYPE x gauge\nx 1\n",
			om:   true,
			want: "missing # EOF",
		},
		{
			name: "content-after-eof",
			body: "# HELP x help\n# TYPE x gauge\nx 1\n# EOF\nx 2\n",
			om:   true,
			want: "after # EOF",
		},
		{
			name: "interleaved-families",
			body: "# HELP a help\n# TYPE a gauge\n# HELP b help\n# TYPE b gauge\nb 1\na 1\n",
			want: "interleaved",
		},
		{
			name: "bad-exemplar-labels",
			body: "# HELP h help\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=} 1\nh_sum 1\nh_count 1\n# EOF\n",
			om:   true,
			want: "exemplar",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			errs := LintExposition([]byte(tc.body), tc.om)
			if len(errs) == 0 {
				t.Fatalf("linter passed broken exposition:\n%s", tc.body)
			}
			if !strings.Contains(LintErrors(errs), tc.want) {
				t.Errorf("findings missing %q:\n%s", tc.want, LintErrors(errs))
			}
		})
	}
}

func TestLintAcceptsConformant(t *testing.T) {
	body := "# HELP x_total help\n# TYPE x_total counter\nx_total 1\n" +
		"# HELP g help\n# TYPE g gauge\ng{shard=\"a\",zone=\"b\"} 2.5\n" +
		"# HELP h help\n# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 4.5\nh_count 3\n"
	if errs := LintExposition([]byte(body), false); len(errs) > 0 {
		t.Errorf("conformant exposition rejected:\n%s", LintErrors(errs))
	}
}
