package sti

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// counterDeltas snapshots the cache counters so tests can assert deltas
// regardless of what earlier tests in the package accumulated.
type cacheCounts struct{ hits, misses, bypass int64 }

func readCacheCounts() cacheCounts {
	return cacheCounts{
		hits:   telCacheHits.Value(),
		misses: telCacheMisses.Value(),
		bypass: telCacheBypass.Value(),
	}
}

func (c cacheCounts) sub(o cacheCounts) cacheCounts {
	return cacheCounts{hits: c.hits - o.hits, misses: c.misses - o.misses, bypass: c.bypass - o.bypass}
}

// TestCacheCountersMatchBehaviour verifies that the telemetry hit/miss
// counters agree with the emptyCache's actual behaviour: every miss
// inserts exactly one bucket, every further lookup of a quantised-equal
// state is a hit, and non-cacheable states are counted as bypasses.
func TestCacheCountersMatchBehaviour(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)

	e := MustNewEvaluator(reach.DefaultConfig())
	m := testRoad()
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
	}
	trajs := groundTruth(e, actors)

	before := readCacheCounts()
	lookups := 0

	// Three quantisation-distinct ego speeds, each evaluated three times:
	// first call per speed is a miss, the other two are hits. The ego sits
	// at x=100 so the direction-aware segment-end guard (see
	// Evaluator.xClearance) is satisfied in both directions at every speed.
	const perSpeed = 3
	speeds := []float64{8, 10, 12} // 0.5 m/s buckets: all distinct keys
	for _, v := range speeds {
		for i := 0; i < perSpeed; i++ {
			e.EvaluateCombined(m, ego(100, 1.75, v), actors, trajs)
			lookups++
		}
	}

	d := readCacheCounts().sub(before)
	if got, want := d.misses, int64(len(speeds)); got != want {
		t.Errorf("misses = %d, want %d (one per distinct quantised state)", got, want)
	}
	if got, want := d.hits, int64(lookups-len(speeds)); got != want {
		t.Errorf("hits = %d, want %d", got, want)
	}
	if d.bypass != 0 {
		t.Errorf("bypass = %d, want 0 (all states cacheable)", d.bypass)
	}
	// The counters must agree with the cache's own bucket count.
	if got, want := int64(e.cache.Len()), d.misses; got != want {
		t.Errorf("cache.Len() = %d, want %d (one bucket per miss)", got, want)
	}
	if d.hits+d.misses != int64(lookups) {
		t.Errorf("hits+misses = %d, want %d lookups", d.hits+d.misses, lookups)
	}

	// A state near the segment end is not cacheable: it must bypass the
	// cache without touching hit/miss or inserting a bucket.
	buckets := e.cache.Len()
	mid := readCacheCounts()
	e.EvaluateCombined(m, ego(499, 1.75, 10), actors, trajs)
	d = readCacheCounts().sub(mid)
	if d.bypass != 1 || d.hits != 0 || d.misses != 0 {
		t.Errorf("near-end state: deltas = %+v, want exactly one bypass", d)
	}
	if e.cache.Len() != buckets {
		t.Errorf("bypass inserted a bucket: %d -> %d", buckets, e.cache.Len())
	}
}

// TestCacheCountersRingRoad covers the ring-road cache family: the same
// relative pose re-evaluated at a different absolute angle must hit.
func TestCacheCountersRingRoad(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)

	e := MustNewEvaluator(reach.DefaultConfig())
	ring, err := roadmap.NewRingRoad(geom.V(0, 0), 26.5, 33.5)
	if err != nil {
		t.Fatal(err)
	}
	aPos, aHeading := ring.PoseAt(30, 0.3)
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: aPos, Heading: aHeading, Speed: 5}),
	}
	trajs := groundTruth(e, actors)

	before := readCacheCounts()
	// Two rotationally equivalent ego poses (same radius, tangent heading
	// and speed at different ring angles) must share one cache bucket.
	pos1, h1 := ring.PoseAt(30, 0)
	pos2, h2 := ring.PoseAt(30, 2.0)
	e.EvaluateCombined(ring, vehicle.State{Pos: pos1, Heading: h1, Speed: 6}, actors, trajs)
	e.EvaluateCombined(ring, vehicle.State{Pos: pos2, Heading: h2, Speed: 6}, actors, trajs)

	d := readCacheCounts().sub(before)
	if d.misses != 1 || d.hits != 1 {
		t.Errorf("ring road deltas = %+v, want 1 miss then 1 hit", d)
	}
}
