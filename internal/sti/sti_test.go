package sti

import (
	"math"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

func testRoad() *roadmap.StraightRoad {
	return roadmap.MustStraightRoad(2, 3.5, -50, 500)
}

func ego(x, y, speed float64) vehicle.State {
	return vehicle.State{Pos: geom.V(x, y), Speed: speed}
}

func eval(t *testing.T) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(reach.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func groundTruth(e *Evaluator, actors []*actor.Actor) []actor.Trajectory {
	return actor.PredictAll(actors, e.cfg.NumSlices(), e.cfg.SliceDt)
}

func TestNewEvaluatorRejectsInvalidConfig(t *testing.T) {
	cfg := reach.DefaultConfig()
	cfg.Horizon = -1
	if _, err := NewEvaluator(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMustNewEvaluatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewEvaluator should panic on invalid config")
		}
	}()
	cfg := reach.DefaultConfig()
	cfg.CellSize = 0
	MustNewEvaluator(cfg)
}

func TestEmptySceneZeroSTI(t *testing.T) {
	e := eval(t)
	res := e.Evaluate(testRoad(), ego(0, 1.75, 10), nil, nil)
	if res.Combined != 0 {
		t.Errorf("combined STI with no actors = %v, want 0", res.Combined)
	}
	if len(res.PerActor) != 0 {
		t.Errorf("PerActor = %v", res.PerActor)
	}
	if res.BaseVolume != res.EmptyVolume {
		t.Errorf("base %v != empty %v with no actors", res.BaseVolume, res.EmptyVolume)
	}
}

func TestDistantActorZeroSTI(t *testing.T) {
	e := eval(t)
	// An actor far behind on the other lane, driving away: no influence on
	// escape routes within the 3 s horizon.
	far := actor.NewVehicle(1, vehicle.State{Pos: geom.V(-200, 5.25), Speed: 0})
	actors := []*actor.Actor{far}
	res := e.Evaluate(testRoad(), ego(0, 1.75, 10), actors, groundTruth(e, actors))
	if res.PerActor[0] != 0 {
		t.Errorf("distant actor STI = %v, want 0", res.PerActor[0])
	}
	if res.Combined != 0 {
		t.Errorf("combined = %v, want 0", res.Combined)
	}
}

func TestBlockingActorPositiveSTI(t *testing.T) {
	e := eval(t)
	// A stopped vehicle 12 m ahead in the ego lane removes escape routes.
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(12, 1.75), Speed: 0})
	actors := []*actor.Actor{lead}
	res := e.Evaluate(testRoad(), ego(0, 1.75, 10), actors, groundTruth(e, actors))
	if res.PerActor[0] <= 0 {
		t.Errorf("blocking actor STI = %v, want > 0", res.PerActor[0])
	}
	if res.Combined <= 0 {
		t.Errorf("combined = %v, want > 0", res.Combined)
	}
	if res.Combined < res.PerActor[0]-1e-9 {
		t.Errorf("combined %v should be >= per-actor %v for a single actor", res.Combined, res.PerActor[0])
	}
}

func TestSingleActorCombinedEqualsPerActor(t *testing.T) {
	e := eval(t)
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(15, 1.75), Speed: 2})
	actors := []*actor.Actor{lead}
	res := e.Evaluate(testRoad(), ego(0, 1.75, 10), actors, groundTruth(e, actors))
	// With exactly one actor, T^{/0} == T^∅ up to the bounded quantisation
	// error of the cached empty-world volume (see cache.go), so STI_0 must
	// closely track the combined value.
	if diff := math.Abs(res.PerActor[0] - res.Combined); diff > 0.05 {
		t.Errorf("single-actor STI %v != combined %v (diff %v)", res.PerActor[0], res.Combined, diff)
	}
}

func TestSTIBoundedZeroOne(t *testing.T) {
	e := eval(t)
	// Surround the ego closely on all sides.
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(7, 1.75)}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(-7, 1.75), Speed: 10}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(0, 5.25)}),
		actor.NewVehicle(4, vehicle.State{Pos: geom.V(7, 5.25)}),
	}
	res := e.Evaluate(testRoad(), ego(0, 1.75, 8), actors, groundTruth(e, actors))
	if res.Combined < 0 || res.Combined > 1 {
		t.Errorf("combined out of range: %v", res.Combined)
	}
	for i, v := range res.PerActor {
		if v < 0 || v > 1 {
			t.Errorf("actor %d STI out of range: %v", i, v)
		}
	}
}

func TestFullyTrappedCombinedNearOne(t *testing.T) {
	e := eval(t)
	// Ego boxed in at speed: lead stopped just ahead, walls of traffic on the
	// adjacent lane and behind — escape routes vanish.
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(6, 1.75)}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(6, 5.25)}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(0, 5.25)}),
		actor.NewVehicle(4, vehicle.State{Pos: geom.V(12, 1.75)}),
		actor.NewVehicle(5, vehicle.State{Pos: geom.V(12, 5.25)}),
	}
	res := e.Evaluate(testRoad(), ego(0, 1.75, 15), actors, groundTruth(e, actors))
	if res.Combined < 0.8 {
		t.Errorf("boxed-in combined STI = %v, want >= 0.8", res.Combined)
	}
}

func TestOutOfPathActorHasSTI(t *testing.T) {
	// The paper's key claim vs TTC/CIPA: an actor that never intersects the
	// ego's path still removes escape routes (Fig. 7(b)). A vehicle driving
	// alongside in the adjacent lane blocks the lane-change escape.
	e := eval(t)
	alongside := actor.NewVehicle(1, vehicle.State{Pos: geom.V(2, 5.25), Speed: 10})
	actors := []*actor.Actor{alongside}
	res := e.Evaluate(testRoad(), ego(0, 1.75, 10), actors, groundTruth(e, actors))
	if res.PerActor[0] <= 0 {
		t.Errorf("out-of-path alongside actor STI = %v, want > 0", res.PerActor[0])
	}
}

func TestCloserActorMoreThreatening(t *testing.T) {
	e := eval(t)
	egoS := ego(0, 1.75, 10)
	near := []*actor.Actor{actor.NewVehicle(1, vehicle.State{Pos: geom.V(10, 1.75)})}
	farther := []*actor.Actor{actor.NewVehicle(1, vehicle.State{Pos: geom.V(30, 1.75)})}
	rNear := e.Evaluate(testRoad(), egoS, near, groundTruth(e, near))
	rFar := e.Evaluate(testRoad(), egoS, farther, groundTruth(e, farther))
	if rNear.PerActor[0] <= rFar.PerActor[0] {
		t.Errorf("near actor STI %v should exceed far actor STI %v",
			rNear.PerActor[0], rFar.PerActor[0])
	}
}

func TestEvaluateCombinedMatchesEvaluate(t *testing.T) {
	e := eval(t)
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 10}),
	}
	trajs := groundTruth(e, actors)
	full := e.Evaluate(testRoad(), ego(0, 1.75, 10), actors, trajs)
	fast := e.EvaluateCombined(testRoad(), ego(0, 1.75, 10), actors, trajs)
	if full.Combined != fast {
		t.Errorf("EvaluateCombined %v != Evaluate().Combined %v", fast, full.Combined)
	}
}

func TestEvaluateWithPredictionMatchesManualCVTR(t *testing.T) {
	e := eval(t)
	actors := []*actor.Actor{actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3})}
	manual := e.Evaluate(testRoad(), ego(0, 1.75, 10), actors, groundTruth(e, actors))
	auto := e.EvaluateWithPrediction(testRoad(), ego(0, 1.75, 10), actors)
	if manual.Combined != auto.Combined || manual.PerActor[0] != auto.PerActor[0] {
		t.Errorf("prediction wrapper mismatch: %+v vs %+v", manual, auto)
	}
	c := e.CombinedWithPrediction(testRoad(), ego(0, 1.75, 10), actors)
	if c != manual.Combined {
		t.Errorf("CombinedWithPrediction = %v, want %v", c, manual.Combined)
	}
}

func TestOffRoadEgoZeroSTI(t *testing.T) {
	e := eval(t)
	actors := []*actor.Actor{actor.NewVehicle(1, vehicle.State{Pos: geom.V(10, 1.75)})}
	res := e.Evaluate(testRoad(), ego(0, 50, 10), actors, groundTruth(e, actors))
	if res.Combined != 0 || res.PerActor[0] != 0 {
		t.Errorf("off-road ego should yield zero STI: %+v", res)
	}
	if res.EmptyVolume != 0 {
		t.Errorf("EmptyVolume = %v, want 0", res.EmptyVolume)
	}
}

func TestMostThreatening(t *testing.T) {
	r := Result{PerActor: []float64{0.1, 0.7, 0.3}}
	i, v := r.MostThreatening()
	if i != 1 || v != 0.7 {
		t.Errorf("MostThreatening = (%d, %v)", i, v)
	}
	i, v = Result{}.MostThreatening()
	if i != -1 || v != 0 {
		t.Errorf("empty MostThreatening = (%d, %v)", i, v)
	}
}

func TestClamp01(t *testing.T) {
	for _, tt := range []struct{ give, want float64 }{
		{-0.5, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1},
	} {
		if got := clamp01(tt.give); got != tt.want {
			t.Errorf("clamp01(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestConfigAccessor(t *testing.T) {
	e := eval(t)
	if e.Config().Horizon != reach.DefaultConfig().Horizon {
		t.Error("Config() should round-trip the construction config")
	}
}
