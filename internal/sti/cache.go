package sti

import (
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// Cache telemetry: hits/misses count lookup outcomes on the cacheable map
// families (a lookup that waits for another goroutine's in-flight
// computation counts as a hit); bypasses count empty-world computations on
// map families the cache cannot serve (and near-segment-end straight-road
// states).
var (
	telCacheHits   = telemetry.NewCounter("sti.empty_cache.hits")
	telCacheMisses = telemetry.NewCounter("sti.empty_cache.misses")
	telCacheBypass = telemetry.NewCounter("sti.empty_cache.bypass")
)

// The empty-world tube volume |T^∅| depends only on the ego state relative
// to the road geometry: on a straight road it is invariant along x (far
// from the segment ends), on a ring road it is rotationally invariant.
// Caching it on a quantised relative pose removes one of the two
// reach-tube computations from the EvaluateCombined hot path.
//
// Values are computed at the quantisation bucket's representative state, so
// the cache is deterministic: a state always maps to the same volume
// regardless of call order.

type emptyKey struct {
	lat, heading, speed int32
}

// cacheEntry is a singleflight slot: the first goroutine to miss on a key
// owns the computation; later arrivals block on done instead of paying a
// redundant reach-tube computation. val is written exactly once, before
// done is closed.
type cacheEntry struct {
	done chan struct{}
	val  float64
}

type emptyCache struct {
	mu sync.Mutex
	m  map[emptyKey]*cacheEntry
}

const (
	cacheLatQ     = 0.25 // metres
	cacheHeadingQ = 0.05 // radians
	cacheSpeedQ   = 0.5  // m/s
)

func newEmptyCache() *emptyCache {
	return &emptyCache{m: make(map[emptyKey]*cacheEntry, 256)}
}

// emptyVolume returns |T^∅| for the ego on map m, consulting the cache for
// translation-invariant map families. scr is the caller's scratch; it is
// only used if this goroutine ends up computing a tube itself.
func (e *Evaluator) emptyVolume(m roadmap.Map, ego vehicle.State, scr *reach.Scratch) float64 {
	v, _ := e.emptyVolumeState(m, ego, scr)
	return v
}

// emptyVolumeState is emptyVolume plus the cache outcome (CacheHit,
// CacheMiss or CacheBypass) for risk provenance.
func (e *Evaluator) emptyVolumeState(m roadmap.Map, ego vehicle.State, scr *reach.Scratch) (float64, string) {
	switch road := m.(type) {
	case *roadmap.StraightRoad:
		// The cached volume is computed at the segment centre, so it is only
		// valid where the tube cannot interact with either segment end. The
		// required clearance is direction-aware: a tube extends a full
		// stopping-free path length towards where the ego is heading, but
		// against its heading only what remains after turning around at
		// maximum curvature (the bicycle model has no reverse gear).
		if road.XMax-ego.Pos.X < e.xClearance(ego, 0) ||
			ego.Pos.X-road.XMin < e.xClearance(ego, math.Pi) {
			break // near a segment end: x matters, compute directly
		}
		key := emptyKey{
			lat:     quantize(ego.Pos.Y, cacheLatQ),
			heading: quantize(ego.Heading, cacheHeadingQ),
			speed:   quantize(ego.Speed, cacheSpeedQ),
		}
		rep := vehicle.State{
			Pos:     geom.V(ego.Pos.X, dequantize(key.lat, cacheLatQ)),
			Heading: dequantize(key.heading, cacheHeadingQ),
			Speed:   dequantize(key.speed, cacheSpeedQ),
		}
		// Normalise x to the segment centre so the key is position-free.
		rep.Pos.X = (road.XMin + road.XMax) / 2
		v, hit := e.cache.lookup(key, func() float64 {
			return reach.ComputeScratch(m, nil, rep, e.cfg, scr).Volume
		})
		return v, cacheStateOf(hit)
	case *roadmap.RingRoad:
		radial := ego.Pos.Dist(road.Center)
		tangent := geom.NormalizeAngle(road.AngleOf(ego.Pos) + math.Pi/2)
		relHeading := geom.AngleDiff(ego.Heading, tangent)
		key := emptyKey{
			lat:     quantize(radial, cacheLatQ),
			heading: quantize(relHeading, cacheHeadingQ),
			speed:   quantize(ego.Speed, cacheSpeedQ),
		}
		rep := vehicle.State{Speed: dequantize(key.speed, cacheSpeedQ)}
		rep.Pos, rep.Heading = road.PoseAt(dequantize(key.lat, cacheLatQ), 0)
		rep.Heading = geom.NormalizeAngle(rep.Heading + dequantize(key.heading, cacheHeadingQ))
		v, hit := e.cache.lookup(key, func() float64 {
			return reach.ComputeScratch(m, nil, rep, e.cfg, scr).Volume
		})
		return v, cacheStateOf(hit)
	}
	telCacheBypass.Inc()
	return reach.ComputeScratch(m, nil, ego, e.cfg, scr).Volume, CacheBypass
}

func cacheStateOf(hit bool) string {
	if hit {
		return CacheHit
	}
	return CacheMiss
}

// xClearance bounds how far a reach tube rooted at ego can extend along the
// road direction dirAngle (0 for +x, π for −x), in metres. The bound is the
// maximum path length within the horizon — min(v₀·k + ½·a_max·k²,
// v_max·k) — reduced, when the ego heads away from that direction, by the
// arc it must cover at maximum curvature before its heading gains a
// component towards it, plus a footprint length of margin. It is
// deliberately conservative (curvature is bounded by tan(φ_max)/L
// irrespective of the speed-dependent lateral-acceleration cap, and path
// length ignores braking), never under-estimating the tube's extent.
func (e *Evaluator) xClearance(ego vehicle.State, dirAngle float64) float64 {
	p := e.cfg.Params
	k := e.cfg.Horizon
	// Speed enters the cache key quantised; pad so the bound also covers the
	// bucket's representative state.
	v0 := math.Min(ego.Speed+cacheSpeedQ/2, p.MaxSpeed)
	dist := math.Min(v0*k+0.5*p.MaxAccel*k*k, p.MaxSpeed*k)
	alpha := math.Abs(geom.AngleDiff(ego.Heading, dirAngle))
	if alpha > math.Pi/2 {
		// The heading points away: progress requires rotating by
		// (alpha − π/2) first, which costs arc length at bounded curvature.
		if minR := minTurnRadius(p); minR > 0 {
			dist -= (alpha - math.Pi/2) * minR
		}
	}
	return math.Max(dist, 0) + p.Length
}

// minTurnRadius is the tightest radius the bicycle model can trace:
// wheelbase over the maximum steering tangent. Zero means "unknown — assume
// turning is free" (conservative for xClearance).
func minTurnRadius(p vehicle.Params) float64 {
	if p.WheelBase <= 0 || p.MaxSteer <= 0 || p.MaxSteer >= math.Pi/2 {
		return 0
	}
	return p.WheelBase / math.Tan(p.MaxSteer)
}

// lookup returns the cached value for key, computing it via compute on the
// first request, plus whether the lookup was a hit (a wait on another
// goroutine's in-flight computation counts as one). Concurrent misses on
// the same key are collapsed (singleflight): exactly one caller runs
// compute, the others block until the value is published. compute runs
// outside the cache mutex so distinct keys compute concurrently.
func (c *emptyCache) lookup(key emptyKey, compute func() float64) (float64, bool) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		telCacheHits.Inc()
		<-e.done
		return e.val, true
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()
	telCacheMisses.Inc()
	defer close(e.done)
	e.val = compute()
	return e.val, false
}

// Len returns the number of cached buckets (diagnostics).
func (c *emptyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func quantize(x, q float64) int32           { return int32(math.Round(x / q)) }
func dequantize(i int32, q float64) float64 { return float64(i) * q }
