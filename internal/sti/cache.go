package sti

import (
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// Cache telemetry: hits/misses count lookup outcomes on the cacheable map
// families; bypasses count empty-world computations on map families the
// cache cannot serve (and near-segment-end straight-road states).
var (
	telCacheHits   = telemetry.NewCounter("sti.empty_cache.hits")
	telCacheMisses = telemetry.NewCounter("sti.empty_cache.misses")
	telCacheBypass = telemetry.NewCounter("sti.empty_cache.bypass")
)

// The empty-world tube volume |T^∅| depends only on the ego state relative
// to the road geometry: on a straight road it is invariant along x (far
// from the segment ends), on a ring road it is rotationally invariant.
// Caching it on a quantised relative pose removes one of the two
// reach-tube computations from the EvaluateCombined hot path.
//
// Values are computed at the quantisation bucket's representative state, so
// the cache is deterministic: a state always maps to the same volume
// regardless of call order.

type emptyKey struct {
	lat, heading, speed int32
}

type emptyCache struct {
	mu sync.Mutex
	m  map[emptyKey]float64
}

const (
	cacheLatQ     = 0.25 // metres
	cacheHeadingQ = 0.05 // radians
	cacheSpeedQ   = 0.5  // m/s
)

func newEmptyCache() *emptyCache {
	return &emptyCache{m: make(map[emptyKey]float64, 256)}
}

// emptyVolume returns |T^∅| for the ego on map m, consulting the cache for
// translation-invariant map families.
func (e *Evaluator) emptyVolume(m roadmap.Map, ego vehicle.State) float64 {
	switch road := m.(type) {
	case *roadmap.StraightRoad:
		span := e.cfg.Params.MaxSpeed*e.cfg.Horizon + e.cfg.Params.Length
		if road.XMax-ego.Pos.X < span || ego.Pos.X-road.XMin < e.cfg.Params.Length {
			break // near a segment end: x matters, compute directly
		}
		key := emptyKey{
			lat:     quantize(ego.Pos.Y, cacheLatQ),
			heading: quantize(ego.Heading, cacheHeadingQ),
			speed:   quantize(ego.Speed, cacheSpeedQ),
		}
		rep := vehicle.State{
			Pos:     geom.V(ego.Pos.X, dequantize(key.lat, cacheLatQ)),
			Heading: dequantize(key.heading, cacheHeadingQ),
			Speed:   dequantize(key.speed, cacheSpeedQ),
		}
		// Normalise x to the segment centre so the key is position-free.
		rep.Pos.X = (road.XMin + road.XMax) / 2
		return e.cache.lookup(key, func() float64 {
			return reach.Compute(m, nil, rep, e.cfg).Volume
		})
	case *roadmap.RingRoad:
		radial := ego.Pos.Dist(road.Center)
		tangent := geom.NormalizeAngle(road.AngleOf(ego.Pos) + math.Pi/2)
		relHeading := geom.AngleDiff(ego.Heading, tangent)
		key := emptyKey{
			lat:     quantize(radial, cacheLatQ),
			heading: quantize(relHeading, cacheHeadingQ),
			speed:   quantize(ego.Speed, cacheSpeedQ),
		}
		rep := vehicle.State{Speed: dequantize(key.speed, cacheSpeedQ)}
		rep.Pos, rep.Heading = road.PoseAt(dequantize(key.lat, cacheLatQ), 0)
		rep.Heading = geom.NormalizeAngle(rep.Heading + dequantize(key.heading, cacheHeadingQ))
		return e.cache.lookup(key, func() float64 {
			return reach.Compute(m, nil, rep, e.cfg).Volume
		})
	}
	telCacheBypass.Inc()
	return reach.Compute(m, nil, ego, e.cfg).Volume
}

func (c *emptyCache) lookup(key emptyKey, compute func() float64) float64 {
	c.mu.Lock()
	v, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		telCacheHits.Inc()
		return v
	}
	telCacheMisses.Inc()
	v = compute()
	c.mu.Lock()
	c.m[key] = v
	c.mu.Unlock()
	return v
}

// Len returns the number of cached buckets (diagnostics).
func (c *emptyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func quantize(x, q float64) int32           { return int32(math.Round(x / q)) }
func dequantize(i int32, q float64) float64 { return float64(i) * q }
