package sti

import (
	"sync"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// parallelScenes returns a mix of straight-road and ring-road scenes with
// several actors each: generated suite instances plus a dense hand-built
// scene, so the serial/parallel comparison exercises both map families and
// a fan-out wider than the worker count.
func parallelScenes(t *testing.T) []sim.Observation {
	t.Helper()
	var scenes []sim.Observation
	for _, ty := range []scenario.Typology{scenario.GhostCutIn, scenario.RoundaboutCutIn} {
		for _, s := range scenario.GenerateValid(ty, 2, 7) {
			w, err := s.Build()
			if err != nil {
				t.Fatalf("build %v: %v", ty, err)
			}
			scenes = append(scenes, w.Observe())
		}
	}
	dense := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 10}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(-15, 1.75), Speed: 15}),
		actor.NewVehicle(4, vehicle.State{Pos: geom.V(28, 5.25), Speed: 8}),
		actor.NewVehicle(5, vehicle.State{Pos: geom.V(-8, 5.25), Speed: 12}),
		actor.NewVehicle(6, vehicle.State{Pos: geom.V(40, 1.75), Speed: 5}),
	}
	scenes = append(scenes, sim.Observation{
		Map:    roadmap.MustStraightRoad(2, 3.5, -100, 1000),
		Ego:    ego(0, 1.75, 10),
		Actors: dense,
	})
	return scenes
}

func requireIdentical(t *testing.T, scene int, serial, parallel Result) {
	t.Helper()
	if serial.Combined != parallel.Combined ||
		serial.BaseVolume != parallel.BaseVolume ||
		serial.EmptyVolume != parallel.EmptyVolume {
		t.Errorf("scene %d: scalar fields diverge: serial %+v parallel %+v", scene, serial, parallel)
	}
	if len(serial.PerActor) != len(parallel.PerActor) {
		// Errorf, not Fatalf: this helper also runs on non-test goroutines.
		t.Errorf("scene %d: PerActor length %d vs %d", scene, len(serial.PerActor), len(parallel.PerActor))
		return
	}
	for i := range serial.PerActor {
		if serial.PerActor[i] != parallel.PerActor[i] {
			t.Errorf("scene %d actor %d: STI %v vs %v", scene, i, serial.PerActor[i], parallel.PerActor[i])
		}
		if serial.WithoutVolume[i] != parallel.WithoutVolume[i] {
			t.Errorf("scene %d actor %d: |T^{/i}| %v vs %v", scene, i, serial.WithoutVolume[i], parallel.WithoutVolume[i])
		}
	}
}

// The tentpole determinism contract: Evaluate is bitwise-identical at every
// worker count. Run under -race this also proves the fan-out is data-race
// free.
func TestParallelEvaluateMatchesSerial(t *testing.T) {
	cfg := reach.DefaultConfig()
	serialEval, err := NewEvaluatorOptions(cfg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallelEval, err := NewEvaluatorOptions(cfg, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serialEval.Workers() != 1 || parallelEval.Workers() != 8 {
		t.Fatalf("worker resolution: %d/%d", serialEval.Workers(), parallelEval.Workers())
	}
	for si, obs := range parallelScenes(t) {
		trajs := actor.PredictAll(obs.Actors, cfg.NumSlices(), cfg.SliceDt)
		serial := serialEval.Evaluate(obs.Map, obs.Ego, obs.Actors, trajs)
		parallel := parallelEval.Evaluate(obs.Map, obs.Ego, obs.Actors, trajs)
		requireIdentical(t, si, serial, parallel)
	}
}

// One evaluator shared by concurrent callers (the suite/SMC deployment
// shape) must stay deterministic: every goroutine sees the serial results.
func TestSharedEvaluatorConcurrentUse(t *testing.T) {
	cfg := reach.DefaultConfig()
	shared, err := NewEvaluatorOptions(cfg, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	serialEval, err := NewEvaluatorOptions(cfg, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	scenes := parallelScenes(t)
	trajs := make([][]actor.Trajectory, len(scenes))
	want := make([]Result, len(scenes))
	for i, obs := range scenes {
		trajs[i] = actor.PredictAll(obs.Actors, cfg.NumSlices(), cfg.SliceDt)
		want[i] = serialEval.Evaluate(obs.Map, obs.Ego, obs.Actors, trajs[i])
	}

	const callers = 4
	var wg sync.WaitGroup
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func() {
			defer wg.Done()
			for i, obs := range scenes {
				got := shared.Evaluate(obs.Map, obs.Ego, obs.Actors, trajs[i])
				requireIdentical(t, i, want[i], got)
			}
		}()
	}
	wg.Wait()
}
