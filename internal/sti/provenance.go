package sti

// Engine and cache-state labels reported by Provenance. Strings, not
// enums, because they go straight onto the wire (scene provenance block)
// and into wide events.
const (
	EngineShared = "shared" // one masked expansion (reach.ComputeCounterfactuals)
	EngineLegacy = "legacy" // per-actor counterfactual tubes
	EngineEmpty  = "empty"  // actor-free scene, single tube

	CacheHit    = "hit"
	CacheMiss   = "miss"
	CacheBypass = "bypass"
)

// Provenance explains how an evaluation arrived at its Result: which
// counterfactual engine ran, how the empty-volume cache behaved, and how
// much per-actor work the certificates skipped. It is returned by
// EvaluateTraced and carried into the serving tier's wide events and the
// ?explain=1 response block; the untraced Evaluate discards it.
type Provenance struct {
	// Engine is EngineShared, EngineLegacy or EngineEmpty.
	Engine string
	// CacheState is the empty-volume cache outcome for |T^∅|: CacheHit,
	// CacheMiss, or CacheBypass (map family not cacheable, or a straight
	// road scored near a segment end).
	CacheState string
	// MaskWidth is the number of actors carried as explicit world-mask bits
	// by the shared expansion (zero on the legacy engine). Since masks
	// became segmented this is every actor in the scene.
	MaskWidth int
	// MaskWords is the number of 64-bit words in each state's world mask:
	// ceil((1+MaskWidth)/64), 1 on the single-word fast path, zero on the
	// legacy engine.
	MaskWords int
	// ElidedActors is the number of per-actor counterfactual tubes skipped
	// by a certificate (never an exclusive blocker, or the dead-band
	// certificate covering the whole scene).
	ElidedActors int
	// WarmHit reports whether a warm evaluation validated its previous-tick
	// state (ego root, config, map and actor count all unchanged) and could
	// reuse path-sweep verdicts. Always false on cold entry points.
	WarmHit bool
	// WarmReused / WarmInvalidated count previous-tick path-sweep verdicts
	// that were reused versus recomputed because an actor's swept AABB
	// touched the verdict's path region. Both zero unless WarmHit.
	WarmReused      int
	WarmInvalidated int
}
