package sti

import (
	"sync"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/vehicle"
)

func TestRank(t *testing.T) {
	r := Result{PerActor: []float64{0.1, 0.7, 0.3, 0.7}}
	ranks := r.Rank()
	if len(ranks) != 4 {
		t.Fatalf("rank size = %d", len(ranks))
	}
	if ranks[0].Index != 1 || ranks[1].Index != 3 {
		t.Errorf("ties must be stable: %v", ranks)
	}
	if ranks[3].Index != 0 {
		t.Errorf("least threatening = %v", ranks[3])
	}
}

func TestRiskEnvelope(t *testing.T) {
	r := Result{PerActor: []float64{0.05, 0.6, 0.3, 0.0}}
	tests := []struct {
		fraction float64
		want     []int
	}{
		{0.5, []int{1}},       // 0.6/0.95 ≈ 0.63 ≥ 0.5
		{0.9, []int{1, 2}},    // 0.9/0.95 ≈ 0.95 ≥ 0.9
		{1.0, []int{1, 2, 0}}, // zero-STI actor excluded
		{-1, []int{1}},        // clamped to 0 → first nonzero actor
		{2, []int{1, 2, 0}},   // clamped to 1
	}
	for _, tt := range tests {
		got := r.RiskEnvelope(tt.fraction)
		if len(got) != len(tt.want) {
			t.Errorf("RiskEnvelope(%v) = %v, want %v", tt.fraction, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("RiskEnvelope(%v) = %v, want %v", tt.fraction, got, tt.want)
				break
			}
		}
	}
	if got := (Result{}).RiskEnvelope(0.9); got != nil {
		t.Errorf("empty envelope = %v", got)
	}
}

func TestThreatening(t *testing.T) {
	r := Result{PerActor: []float64{0.05, 0.6, 0.3}}
	got := r.Threatening(0.1)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Threatening = %v", got)
	}
	if got := r.Threatening(0.9); len(got) != 0 {
		t.Errorf("Threatening(high) = %v", got)
	}
}

// The evaluator must be safe for concurrent use: the |T^∅| cache is the
// only shared mutable state. Run with -race to validate.
func TestEvaluatorConcurrentUse(t *testing.T) {
	e := MustNewEvaluator(reach.DefaultConfig())
	m := testRoad()
	var wg sync.WaitGroup
	results := make([]float64, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			actors := []*actor.Actor{
				actor.NewVehicle(1, vehicle.State{Pos: geom.V(12+float64(i%4), 1.75), Speed: 2}),
			}
			results[i] = e.CombinedWithPrediction(m, ego(0, 1.75, 10), actors)
		}(i)
	}
	wg.Wait()
	// Same inputs must give identical outputs regardless of interleaving.
	for i := 4; i < 16; i++ {
		if results[i] != results[i%4] {
			t.Errorf("concurrent evaluation nondeterministic: %v vs %v", results[i], results[i%4])
		}
	}
}

// Failure injection: degenerate inputs must neither panic nor produce
// out-of-range STI.
func TestEvaluatorRobustness(t *testing.T) {
	e := MustNewEvaluator(reach.DefaultConfig())
	m := testRoad()
	cases := []struct {
		name   string
		ego    vehicle.State
		actors []*actor.Actor
	}{
		{"actor off-map", ego(0, 1.75, 10), []*actor.Actor{
			actor.NewVehicle(1, vehicle.State{Pos: geom.V(0, 500)}),
		}},
		{"actor on top of ego", ego(0, 1.75, 10), []*actor.Actor{
			actor.NewVehicle(1, vehicle.State{Pos: geom.V(0, 1.75)}),
		}},
		{"huge speed actor", ego(0, 1.75, 10), []*actor.Actor{
			actor.NewVehicle(1, vehicle.State{Pos: geom.V(-50, 1.75), Speed: 1e3}),
		}},
		{"zero-size world speeds", vehicle.State{Pos: geom.V(0, 1.75)}, []*actor.Actor{
			actor.NewVehicle(1, vehicle.State{Pos: geom.V(6, 1.75)}),
		}},
		{"many actors", ego(0, 1.75, 10), manyActors(40)},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			res := e.EvaluateWithPrediction(m, tt.ego, tt.actors)
			if res.Combined < 0 || res.Combined > 1 {
				t.Errorf("combined out of range: %v", res.Combined)
			}
			for i, v := range res.PerActor {
				if v < 0 || v > 1 {
					t.Errorf("actor %d STI out of range: %v", i, v)
				}
			}
		})
	}
}

func manyActors(n int) []*actor.Actor {
	out := make([]*actor.Actor, n)
	for i := range out {
		out[i] = actor.NewVehicle(i+1, vehicle.State{
			Pos:   geom.V(float64(10+i*7), 1.75+float64(i%2)*3.5),
			Speed: float64(i % 15),
		})
	}
	return out
}

// Degenerate trajectories (empty, mismatched sampling) must not panic.
func TestEvaluateDegenerateTrajectories(t *testing.T) {
	e := MustNewEvaluator(reach.DefaultConfig())
	m := testRoad()
	a := actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 2})
	trajs := []actor.Trajectory{{Dt: 0.25}} // empty states, odd dt
	res := e.Evaluate(m, ego(0, 1.75, 10), []*actor.Actor{a}, trajs)
	if res.Combined < 0 || res.Combined > 1 {
		t.Errorf("combined = %v", res.Combined)
	}
}
