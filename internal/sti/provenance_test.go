package sti

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/actor"
	"repro/internal/reach"
	"repro/internal/telemetry/trace"
	"repro/internal/vehicle"
)

func blockingActors(n int) []*actor.Actor {
	actors := make([]*actor.Actor, n)
	for i := range actors {
		// Stopped vehicles straddling the ego's lane directly ahead, so every
		// one of them blocks escape routes and the counterfactuals matter.
		actors[i] = actor.NewVehicle(i, vehicle.State{Pos: ego(12+float64(6*i), 1.75, 0).Pos})
	}
	return actors
}

// TestEvaluateTracedMatchesEvaluate: tracing must observe, never perturb.
func TestEvaluateTracedMatchesEvaluate(t *testing.T) {
	for _, shared := range []bool{false, true} {
		e, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{SharedExpansion: shared})
		if err != nil {
			t.Fatal(err)
		}
		actors := blockingActors(3)
		trajs := groundTruth(e, actors)
		want := e.Evaluate(testRoad(), ego(0, 1.75, 10), actors, trajs)
		ctx := trace.NewContext(context.Background(), trace.NewRecorder(trace.NewID()))
		got, _ := e.EvaluateTraced(ctx, testRoad(), ego(0, 1.75, 10), actors, trajs)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shared=%v: traced result diverged:\nwant %+v\ngot  %+v", shared, want, got)
		}
	}
}

func TestProvenanceEngines(t *testing.T) {
	ctxOf := func() (context.Context, *trace.Recorder) {
		rec := trace.NewRecorder(trace.NewID())
		return trace.NewContext(context.Background(), rec), rec
	}
	spanNames := func(rec *trace.Recorder) map[string]bool {
		names := map[string]bool{}
		for _, sp := range rec.Spans() {
			names[sp.Name] = true
		}
		return names
	}

	legacy := MustNewEvaluator(reach.DefaultConfig())
	shared, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{SharedExpansion: true})
	if err != nil {
		t.Fatal(err)
	}
	actors := blockingActors(3)
	trajs := groundTruth(legacy, actors)

	ctx, rec := ctxOf()
	_, prov := legacy.EvaluateTraced(ctx, testRoad(), ego(0, 1.75, 10), actors, trajs)
	if prov.Engine != EngineLegacy {
		t.Errorf("legacy engine = %q", prov.Engine)
	}
	if prov.CacheState != CacheMiss {
		t.Errorf("first legacy eval cache state = %q, want %q", prov.CacheState, CacheMiss)
	}
	if names := spanNames(rec); !names["reach.empty_tube"] || !names["reach.base_tube"] || !names["reach.counterfactual_tubes"] {
		t.Errorf("legacy spans = %v", names)
	}

	ctx, rec = ctxOf()
	_, prov = shared.EvaluateTraced(ctx, testRoad(), ego(0, 1.75, 10), actors, trajs)
	if prov.Engine != EngineShared {
		t.Errorf("shared engine = %q", prov.Engine)
	}
	if prov.MaskWidth != len(actors) {
		t.Errorf("mask width = %d, want %d", prov.MaskWidth, len(actors))
	}
	if names := spanNames(rec); !names["reach.empty_tube"] || !names["reach.shared_expansion"] {
		t.Errorf("shared spans = %v", names)
	}
	// Second evaluation of the same pose hits the empty-volume cache.
	ctx, _ = ctxOf()
	_, prov = shared.EvaluateTraced(ctx, testRoad(), ego(0, 1.75, 10), actors, trajs)
	if prov.CacheState != CacheHit {
		t.Errorf("repeat cache state = %q, want %q", prov.CacheState, CacheHit)
	}

	ctx, _ = ctxOf()
	_, prov = legacy.EvaluateTraced(ctx, testRoad(), ego(0, 1.75, 10), nil, nil)
	if prov.Engine != EngineEmpty || prov.CacheState != CacheBypass {
		t.Errorf("empty-scene provenance = %+v", prov)
	}

	// No recorder in context: identical results, no spans, no panic.
	res, prov := shared.EvaluateTraced(context.Background(), testRoad(), ego(0, 1.75, 10), actors, trajs)
	if prov.Engine != EngineShared {
		t.Errorf("untraced ctx engine = %q", prov.Engine)
	}
	if want := shared.Evaluate(testRoad(), ego(0, 1.75, 10), actors, trajs); !reflect.DeepEqual(res, want) {
		t.Error("untraced-ctx result diverged from Evaluate")
	}
}
