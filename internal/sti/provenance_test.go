package sti

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/actor"
	"repro/internal/reach"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
	"repro/internal/vehicle"
)

func blockingActors(n int) []*actor.Actor {
	actors := make([]*actor.Actor, n)
	for i := range actors {
		// Stopped vehicles straddling the ego's lane directly ahead, so every
		// one of them blocks escape routes and the counterfactuals matter.
		actors[i] = actor.NewVehicle(i, vehicle.State{Pos: ego(12+float64(6*i), 1.75, 0).Pos})
	}
	return actors
}

// TestEvaluateTracedMatchesEvaluate: tracing must observe, never perturb.
func TestEvaluateTracedMatchesEvaluate(t *testing.T) {
	for _, shared := range []bool{false, true} {
		e, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{SharedExpansion: shared})
		if err != nil {
			t.Fatal(err)
		}
		actors := blockingActors(3)
		trajs := groundTruth(e, actors)
		want := e.Evaluate(testRoad(), ego(0, 1.75, 10), actors, trajs)
		ctx := trace.NewContext(context.Background(), trace.NewRecorder(trace.NewID()))
		got, _ := e.EvaluateTraced(ctx, testRoad(), ego(0, 1.75, 10), actors, trajs)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shared=%v: traced result diverged:\nwant %+v\ngot  %+v", shared, want, got)
		}
	}
}

func TestProvenanceEngines(t *testing.T) {
	ctxOf := func() (context.Context, *trace.Recorder) {
		rec := trace.NewRecorder(trace.NewID())
		return trace.NewContext(context.Background(), rec), rec
	}
	spanNames := func(rec *trace.Recorder) map[string]bool {
		names := map[string]bool{}
		for _, sp := range rec.Spans() {
			names[sp.Name] = true
		}
		return names
	}

	legacy := MustNewEvaluator(reach.DefaultConfig())
	shared, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{SharedExpansion: true})
	if err != nil {
		t.Fatal(err)
	}
	actors := blockingActors(3)
	trajs := groundTruth(legacy, actors)

	ctx, rec := ctxOf()
	_, prov := legacy.EvaluateTraced(ctx, testRoad(), ego(0, 1.75, 10), actors, trajs)
	if prov.Engine != EngineLegacy {
		t.Errorf("legacy engine = %q", prov.Engine)
	}
	if prov.CacheState != CacheMiss {
		t.Errorf("first legacy eval cache state = %q, want %q", prov.CacheState, CacheMiss)
	}
	if names := spanNames(rec); !names["reach.empty_tube"] || !names["reach.base_tube"] || !names["reach.counterfactual_tubes"] {
		t.Errorf("legacy spans = %v", names)
	}

	ctx, rec = ctxOf()
	_, prov = shared.EvaluateTraced(ctx, testRoad(), ego(0, 1.75, 10), actors, trajs)
	if prov.Engine != EngineShared {
		t.Errorf("shared engine = %q", prov.Engine)
	}
	if prov.MaskWidth != len(actors) {
		t.Errorf("mask width = %d, want %d", prov.MaskWidth, len(actors))
	}
	if names := spanNames(rec); !names["reach.empty_tube"] || !names["reach.shared_expansion"] {
		t.Errorf("shared spans = %v", names)
	}
	// Second evaluation of the same pose hits the empty-volume cache.
	ctx, _ = ctxOf()
	_, prov = shared.EvaluateTraced(ctx, testRoad(), ego(0, 1.75, 10), actors, trajs)
	if prov.CacheState != CacheHit {
		t.Errorf("repeat cache state = %q, want %q", prov.CacheState, CacheHit)
	}

	ctx, _ = ctxOf()
	_, prov = legacy.EvaluateTraced(ctx, testRoad(), ego(0, 1.75, 10), nil, nil)
	if prov.Engine != EngineEmpty || prov.CacheState != CacheBypass {
		t.Errorf("empty-scene provenance = %+v", prov)
	}

	// No recorder in context: identical results, no spans, no panic.
	res, prov := shared.EvaluateTraced(context.Background(), testRoad(), ego(0, 1.75, 10), actors, trajs)
	if prov.Engine != EngineShared {
		t.Errorf("untraced ctx engine = %q", prov.Engine)
	}
	if want := shared.Evaluate(testRoad(), ego(0, 1.75, 10), actors, trajs); !reflect.DeepEqual(res, want) {
		t.Error("untraced-ctx result diverged from Evaluate")
	}
}

// Provenance.ElidedActors must agree with the sti.counterfactuals.elided
// counter delta of the same evaluation — the accounting is additive, so a
// path that elides in more than one place (or a rewritten one that elides
// in a different place than before) cannot under-report by overwriting an
// earlier count. Exercised on the scene classes that elide: a legacy marks
// pass (some actors never block), a legacy dead-band certificate (far-away
// actor, combined snaps to zero), and the shared engine's dead-band
// certificate.
func TestProvenanceElidedMatchesCounter(t *testing.T) {
	telemetry.Enable()
	t.Cleanup(telemetry.Disable)
	legacy := MustNewEvaluator(reach.DefaultConfig())
	shared, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{SharedExpansion: true})
	if err != nil {
		t.Fatal(err)
	}
	// Mixed scene: two blockers dead ahead plus actors far beyond the
	// horizon that can never block, so the legacy marks pass elides some
	// but not all actors.
	mixed := append(blockingActors(2),
		actor.NewVehicle(90, vehicle.State{Pos: ego(400, 1.75, 0).Pos}),
		actor.NewVehicle(91, vehicle.State{Pos: ego(450, 5.25, 0).Pos}),
	)
	// Dead-band scene: a single crawler at the horizon's edge nudges the
	// base tube by less than the dead band, so the certificate elides all.
	farOnly := []*actor.Actor{
		actor.NewVehicle(95, vehicle.State{Pos: ego(420, 1.75, 0).Pos}),
		actor.NewVehicle(96, vehicle.State{Pos: ego(470, 5.25, 0).Pos}),
	}
	cases := []struct {
		name   string
		eval   *Evaluator
		actors []*actor.Actor
	}{
		{"legacy-marks", legacy, mixed},
		{"legacy-deadband", legacy, farOnly},
		{"shared-deadband", shared, farOnly},
		{"shared-dense", shared, blockingActors(3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trajs := groundTruth(tc.eval, tc.actors)
			before := telElided.Value()
			_, prov := tc.eval.evaluate(nil, testRoad(), ego(0, 1.75, 10), tc.actors, trajs)
			delta := telElided.Value() - before
			if int64(prov.ElidedActors) != delta {
				t.Errorf("Provenance.ElidedActors = %d, counter delta = %d", prov.ElidedActors, delta)
			}
		})
	}
}

// The shared engine reports its mask geometry: width = every actor in the
// scene, words = ceil((1+width)/64).
func TestProvenanceMaskWords(t *testing.T) {
	shared, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{SharedExpansion: true})
	if err != nil {
		t.Fatal(err)
	}
	actors := blockingActors(3)
	trajs := groundTruth(shared, actors)
	_, prov := shared.evaluate(nil, testRoad(), ego(0, 1.75, 10), actors, trajs)
	if prov.MaskWidth != 3 || prov.MaskWords != 1 {
		t.Errorf("mask width/words = %d/%d, want 3/1", prov.MaskWidth, prov.MaskWords)
	}
	legacy := MustNewEvaluator(reach.DefaultConfig())
	_, prov = legacy.evaluate(nil, testRoad(), ego(0, 1.75, 10), actors, trajs)
	if prov.MaskWidth != 0 || prov.MaskWords != 0 {
		t.Errorf("legacy mask width/words = %d/%d, want 0/0", prov.MaskWidth, prov.MaskWords)
	}
}
