package sti

import (
	"context"
	"sync/atomic"

	"repro/internal/actor"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/telemetry/trace"
	"repro/internal/vehicle"
)

// WarmState carries the previous tick's shared-expansion state for one
// session stream. It is owned by exactly one caller at a time: EvaluateWarm
// claims it with a compare-and-swap for the duration of the call, and a
// concurrent call that loses the race scores cold rather than share the
// state (sharing would interleave two ticks' bookkeeping and corrupt the
// memo). The zero value is not usable — construct with NewWarmState.
type WarmState struct {
	busy atomic.Bool
	rs   reach.WarmState
}

// NewWarmState returns a fresh warm-start state ready for its first tick
// (which always scores cold and seeds the memo).
func NewWarmState() *WarmState { return &WarmState{} }

// Reset drops all retained expansion state, returning the WarmState to its
// just-constructed condition. The caller must own the state exclusively —
// no EvaluateWarm may be in flight on it.
func (w *WarmState) Reset() { w.rs.Reset() }

// TryReset is Reset under the ownership gate: it claims the state, drops
// the retained expansion, and reports success. It fails (and does nothing)
// when an evaluation is mid-flight on the state — the caller recycling
// pooled states should then abandon this one to the garbage collector
// rather than wait, since the in-flight evaluation still holds it.
func (w *WarmState) TryReset() bool {
	if !w.busy.CompareAndSwap(false, true) {
		return false
	}
	w.rs.Reset()
	w.busy.Store(false)
	return true
}

// warmHits/warmTotal feed the sti.warm.hit_ratio gauge: the fraction of
// warm-capable evaluations (EvaluateWarm with a usable WarmState and a
// multi-actor scene) whose previous-tick state actually validated.
var (
	warmHits  atomic.Int64
	warmTotal atomic.Int64
)

func noteWarmOutcome(hit bool) {
	if hit {
		warmHits.Add(1)
	}
	t := warmTotal.Add(1)
	telWarmHitRatio.Set(float64(warmHits.Load()) / float64(t))
}

// EvaluateWarm is Evaluate with temporal coherence: ws retains the previous
// tick's expansion state, and path-sweep verdicts that provably cannot have
// changed since that tick are reused instead of recomputed. The Result is
// bitwise-identical to Evaluate on the same scene — warm start substitutes
// memoised values only where exact revalidation proves them unchanged
// (see reach.ComputeCounterfactualsWarm). ws may be nil, and the evaluator
// may have been built without Options.WarmStart; both degrade to a plain
// cold evaluation.
func (e *Evaluator) EvaluateWarm(m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory, ws *WarmState) (Result, Provenance) {
	return e.evaluateWarm(nil, m, ego, actors, trajs, ws)
}

// EvaluateWarmTraced is EvaluateWarm with request-scoped tracing, the warm
// analogue of EvaluateTraced.
func (e *Evaluator) EvaluateWarmTraced(ctx context.Context, m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory, ws *WarmState) (Result, Provenance) {
	return e.evaluateWarm(trace.FromContext(ctx), m, ego, actors, trajs, ws)
}

func (e *Evaluator) evaluateWarm(rec *trace.Recorder, m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory, ws *WarmState) (Result, Provenance) {
	// Warm start only exists for the shared engine on multi-actor scenes
	// (see Options.WarmStart); everything else is a plain evaluation.
	if ws == nil || !e.warm || len(actors) <= 1 {
		return e.evaluate(rec, m, ego, actors, trajs)
	}
	// Single-owner gate: a WarmState must never be mutated by two
	// evaluations at once. Losing the CAS means another call is mid-tick on
	// this state — score cold rather than block the request path.
	if !ws.busy.CompareAndSwap(false, true) {
		return e.evaluate(rec, m, ego, actors, trajs)
	}
	defer ws.busy.Store(false)

	defer telEvalSeconds.Start().Stop()
	telEvaluations.Inc()
	telActorsPerEval.Observe(float64(len(actors)))
	scr := e.takeScratch()
	defer e.putScratch(scr)
	return e.evaluateShared(rec, m, ego, actors, trajs, scr, &ws.rs)
}
