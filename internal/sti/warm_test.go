package sti

import (
	"sync"
	"testing"

	"repro/internal/actor"
	"repro/internal/reach"
	"repro/internal/scenario"
)

func warmEvaluator(t testing.TB, workers int) *Evaluator {
	t.Helper()
	e, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{Workers: workers, SharedExpansion: true, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !e.WarmStart() {
		t.Fatal("WarmStart option not reflected by evaluator")
	}
	return e
}

// End-to-end warm contract: replaying a session trace through EvaluateWarm
// with one WarmState yields Results bitwise-identical to the stateless
// Evaluate at every tick, with provenance reporting a hit (and real verdict
// reuse) from tick 1 on.
func TestEvaluateWarmMatchesColdSessionTraces(t *testing.T) {
	e := warmEvaluator(t, 1)
	type traceCase struct {
		tag   string
		ticks int
		n     int
	}
	for _, tc := range []traceCase{{"stop-and-go-12", 20, 12}, {"stop-and-go-16", 10, 16}} {
		m, tr := scenario.StopAndGoSession(tc.n, tc.ticks)
		ws := NewWarmState()
		hits, reused := 0, 0
		for tick, tk := range tr {
			trajs := actor.PredictAll(tk.Actors, e.cfg.NumSlices(), e.cfg.SliceDt)
			want := e.Evaluate(m, tk.Ego, tk.Actors, trajs)
			got, prov := e.EvaluateWarm(m, tk.Ego, tk.Actors, trajs, ws)
			requireIdentical(t, tick, want, got)
			if prov.Engine != EngineShared {
				t.Fatalf("%s tick %d: engine %q, want shared", tc.tag, tick, prov.Engine)
			}
			if prov.WarmHit {
				hits++
				reused += prov.WarmReused
			} else if tick > 0 {
				t.Errorf("%s tick %d: warm miss on a bitwise-static ego", tc.tag, tick)
			}
		}
		if hits != tc.ticks-1 {
			t.Errorf("%s: %d warm hits across %d ticks, want %d", tc.tag, hits, tc.ticks, tc.ticks-1)
		}
		if reused == 0 {
			t.Errorf("%s: provenance never reported a reused verdict", tc.tag)
		}
	}
}

// The segmented engine (64+ actors) through the full sti pipeline: warm
// replay of the UrbanCrush crawl must match cold exactly.
func TestEvaluateWarmSegmented(t *testing.T) {
	if testing.Short() {
		t.Skip("64-actor warm replay")
	}
	e := warmEvaluator(t, 1)
	m, tr := scenario.UrbanCrushSession(64, 6)
	ws := NewWarmState()
	for tick, tk := range tr {
		trajs := actor.PredictAll(tk.Actors, e.cfg.NumSlices(), e.cfg.SliceDt)
		want := e.Evaluate(m, tk.Ego, tk.Actors, trajs)
		got, prov := e.EvaluateWarm(m, tk.Ego, tk.Actors, trajs, ws)
		requireIdentical(t, tick, want, got)
		if tick > 0 && !prov.WarmHit {
			t.Errorf("tick %d: warm miss on the static crush ego", tick)
		}
	}
}

// Degradation ladder: EvaluateWarm must behave exactly like Evaluate when
// warm start cannot apply — nil state, evaluator without the option, or a
// scene outside the shared gate (0/1 actors).
func TestEvaluateWarmDegradesToCold(t *testing.T) {
	m, tr := scenario.StopAndGoSession(12, 1)
	tk := tr[0]
	trajs := actor.PredictAll(tk.Actors, reach.DefaultConfig().NumSlices(), reach.DefaultConfig().SliceDt)

	warm := warmEvaluator(t, 1)
	want := warm.Evaluate(m, tk.Ego, tk.Actors, trajs)
	got, prov := warm.EvaluateWarm(m, tk.Ego, tk.Actors, trajs, nil)
	requireIdentical(t, 0, want, got)
	if prov.WarmHit || prov.WarmReused != 0 {
		t.Errorf("nil WarmState produced warm provenance %+v", prov)
	}

	shared, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{SharedExpansion: true})
	if err != nil {
		t.Fatal(err)
	}
	got, prov = shared.EvaluateWarm(m, tk.Ego, tk.Actors, trajs, NewWarmState())
	requireIdentical(t, 1, want, got)
	if prov.WarmHit {
		t.Error("evaluator without WarmStart reported a warm hit")
	}

	// WarmStart without SharedExpansion must resolve to a cold evaluator.
	legacyWarm, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if legacyWarm.WarmStart() {
		t.Error("WarmStart without SharedExpansion should be off")
	}

	one := tk.Actors[:1]
	oneTrajs := actor.PredictAll(one, warm.cfg.NumSlices(), warm.cfg.SliceDt)
	wantOne := warm.Evaluate(m, tk.Ego, one, oneTrajs)
	gotOne, prov := warm.EvaluateWarm(m, tk.Ego, one, oneTrajs, NewWarmState())
	requireIdentical(t, 2, wantOne, gotOne)
	if prov.Engine == EngineShared {
		t.Error("single-actor scene scored on the shared engine")
	}
}

// A WarmState hammered by concurrent EvaluateWarm calls must stay correct:
// the CAS gate admits one owner per tick and every loser scores cold, so
// all results are bitwise-identical to Evaluate regardless of interleaving.
func TestEvaluateWarmContention(t *testing.T) {
	e := warmEvaluator(t, 1)
	m, tr := scenario.StopAndGoSession(12, 8)
	ws := NewWarmState()
	want := make([]Result, len(tr))
	trajs := make([][]actor.Trajectory, len(tr))
	for i, tk := range tr {
		trajs[i] = actor.PredictAll(tk.Actors, e.cfg.NumSlices(), e.cfg.SliceDt)
		want[i] = e.Evaluate(m, tk.Ego, tk.Actors, trajs[i])
	}
	const goroutines = 8
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i, tk := range tr {
				got, _ := e.EvaluateWarm(m, tk.Ego, tk.Actors, trajs[i], ws)
				requireIdentical(t, i, want[i], got)
			}
		}()
	}
	wg.Wait()
}
