package sti

import "sort"

// ActorRank pairs an actor index with its STI value.
type ActorRank struct {
	Index int
	STI   float64
}

// Rank returns the actors ordered from most to least threatening; ties
// preserve the original actor order (stable).
func (r Result) Rank() []ActorRank {
	out := make([]ActorRank, len(r.PerActor))
	for i, v := range r.PerActor {
		out[i] = ActorRank{Index: i, STI: v}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].STI > out[j].STI })
	return out
}

// RiskEnvelope returns the indices of the actors whose STI values are
// needed to explain at least the given fraction of the summed per-actor
// risk — the paper's "risk envelope": the minimal set of actors that
// collectively dominate the threat. fraction is clamped to [0, 1]; actors
// with zero STI are never included.
func (r Result) RiskEnvelope(fraction float64) []int {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	total := 0.0
	for _, v := range r.PerActor {
		total += v
	}
	if total <= 0 {
		return nil
	}
	var out []int
	acc := 0.0
	for _, ar := range r.Rank() {
		if ar.STI <= 0 {
			break
		}
		out = append(out, ar.Index)
		acc += ar.STI
		if acc >= fraction*total {
			break
		}
	}
	return out
}

// Threatening returns the indices of actors with STI above the threshold,
// in descending STI order.
func (r Result) Threatening(threshold float64) []int {
	var out []int
	for _, ar := range r.Rank() {
		if ar.STI > threshold {
			out = append(out, ar.Index)
		}
	}
	return out
}
