package sti

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/scenario"
	"repro/internal/vehicle"
)

// BenchmarkEvaluateCombined measures the SMC-loop fast path (§V-E reports
// 0.61 s for the authors' Python implementation of the full evaluation).
func BenchmarkEvaluateCombined(b *testing.B) {
	e := MustNewEvaluator(reach.DefaultConfig())
	m := testRoad()
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 10}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(-15, 1.75), Speed: 15}),
	}
	egoS := ego(0, 1.75, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CombinedWithPrediction(m, egoS, actors)
	}
}

// BenchmarkEvaluateFull measures the full per-actor counterfactual
// evaluation (N+2 reach-tube computations).
func BenchmarkEvaluateFull(b *testing.B) {
	e := MustNewEvaluator(reach.DefaultConfig())
	m := testRoad()
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 10}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(-15, 1.75), Speed: 15}),
	}
	egoS := ego(0, 1.75, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvaluateWithPrediction(m, egoS, actors)
	}
}

// benchmarkDense12 measures the full evaluation on the dense 12-actor
// scene — the workload class the shared-expansion engine targets — with the
// engine on or off. Compare:
//
//	go test -bench 'EvaluateDense12' -run - ./internal/sti
func benchmarkDense12(b *testing.B, opts Options) {
	e, err := NewEvaluatorOptions(reach.DefaultConfig(), opts)
	if err != nil {
		b.Fatal(err)
	}
	m, egoS, actors := dense12Scene()
	trajs := actor.PredictAll(actors, e.cfg.NumSlices(), e.cfg.SliceDt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Evaluate(m, egoS, actors, trajs)
	}
}

func BenchmarkEvaluateDense12Legacy(b *testing.B) {
	benchmarkDense12(b, Options{Workers: 1})
}

func BenchmarkEvaluateDense12Shared(b *testing.B) {
	benchmarkDense12(b, Options{Workers: 1, SharedExpansion: true})
}

// The parallel legacy path is the strongest baseline: even against a
// worker-per-counterfactual fan-out, one shared expansion should win on
// total work (it runs the state space once instead of N+1 times).
func BenchmarkEvaluateDense12LegacyParallel(b *testing.B) {
	benchmarkDense12(b, Options{Workers: 8})
}

// benchmarkSession12 replays the canonical 12-actor stop-and-go session
// trace through one evaluator, measuring the per-tick cost of session
// scoring. Warm keeps one WarmState across the whole replay (ticks after
// the first revalidate the previous expansion); cold recomputes every tick.
// Compare:
//
//	go test -bench 'EvaluateSession12' -run - ./internal/sti
func benchmarkSession12(b *testing.B, warm bool) {
	e, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{Workers: 1, SharedExpansion: true, WarmStart: warm})
	if err != nil {
		b.Fatal(err)
	}
	m, trace := scenario.StopAndGoSession(12, 40)
	var ws *WarmState
	if warm {
		ws = NewWarmState()
	}
	trajs := make([][]actor.Trajectory, len(trace))
	for t, tick := range trace {
		trajs[t] = actor.PredictAll(tick.Actors, e.cfg.NumSlices(), e.cfg.SliceDt)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick := trace[i%len(trace)]
		e.EvaluateWarm(m, tick.Ego, tick.Actors, trajs[i%len(trace)], ws)
	}
}

func BenchmarkEvaluateSession12Cold(b *testing.B) { benchmarkSession12(b, false) }
func BenchmarkEvaluateSession12Warm(b *testing.B) { benchmarkSession12(b, true) }
