package sti

import (
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/vehicle"
)

// BenchmarkEvaluateCombined measures the SMC-loop fast path (§V-E reports
// 0.61 s for the authors' Python implementation of the full evaluation).
func BenchmarkEvaluateCombined(b *testing.B) {
	e := MustNewEvaluator(reach.DefaultConfig())
	m := testRoad()
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 10}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(-15, 1.75), Speed: 15}),
	}
	egoS := ego(0, 1.75, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CombinedWithPrediction(m, egoS, actors)
	}
}

// BenchmarkEvaluateFull measures the full per-actor counterfactual
// evaluation (N+2 reach-tube computations).
func BenchmarkEvaluateFull(b *testing.B) {
	e := MustNewEvaluator(reach.DefaultConfig())
	m := testRoad()
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(14, 1.75), Speed: 3}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(5, 5.25), Speed: 10}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(-15, 1.75), Speed: 15}),
	}
	egoS := ego(0, 1.75, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvaluateWithPrediction(m, egoS, actors)
	}
}
