// Package sti implements the Safety-Threat Indicator — the iPrism paper's
// primary contribution (§III-A). STI answers the counterfactual query "how
// many more escape routes would the ego vehicle have if actor i were not
// present?", using reach-tube volumes as the measure of escape routes:
//
//	STI_i        = (|T^{/i}| − |T|) / |T^∅|        (Eq. 4)
//	STI_combined = (|T^∅|   − |T|) / |T^∅|        (Eq. 5)
//
// where |T| is the tube with every actor present, |T^{/i}| without actor i,
// and |T^∅| in an empty world.
package sti

import (
	"math"

	"repro/internal/actor"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/telemetry"
	"repro/internal/vehicle"
)

// Telemetry (collected only when telemetry.Enable has been called; see
// DESIGN.md "Observability" for the metric index).
var (
	telEvaluations     = telemetry.NewCounter("sti.evaluations")
	telEvalSeconds     = telemetry.NewHistogram("sti.evaluate.seconds", telemetry.LatencyBuckets())
	telCombinedSeconds = telemetry.NewHistogram("sti.evaluate_combined.seconds", telemetry.LatencyBuckets())
	telActorsPerEval   = telemetry.NewHistogram("sti.actors_per_eval", telemetry.LinearBuckets(0, 1, 16))
)

// Result holds STI values for one evaluation instant.
type Result struct {
	// PerActor[i] is STI of actors[i] in [0, 1].
	PerActor []float64
	// Combined is STI^(combined) in [0, 1].
	Combined float64

	// Raw tube volumes backing the ratios, useful for diagnostics and the
	// paper's Fig. 7 visualisations.
	BaseVolume    float64   // |T|
	EmptyVolume   float64   // |T^∅|
	WithoutVolume []float64 // |T^{/i}|
}

// MostThreatening returns the index and value of the highest per-actor STI,
// or (-1, 0) if there are no actors.
func (r Result) MostThreatening() (int, float64) {
	best, bestV := -1, 0.0
	for i, v := range r.PerActor {
		if best == -1 || v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// Evaluator computes STI for scenes. It is stateless apart from
// configuration and safe for concurrent use.
type Evaluator struct {
	cfg   reach.Config
	cache *emptyCache
}

// NewEvaluator returns an evaluator with the given reach-tube configuration.
func NewEvaluator(cfg reach.Config) (*Evaluator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Evaluator{cfg: cfg, cache: newEmptyCache()}, nil
}

// MustNewEvaluator is NewEvaluator for known-good configurations.
func MustNewEvaluator(cfg reach.Config) *Evaluator {
	e, err := NewEvaluator(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Config returns the evaluator's reach configuration.
func (e *Evaluator) Config() reach.Config { return e.cfg }

// Evaluate computes per-actor and combined STI for the ego at state ego on
// map m, given each actor's (predicted or ground-truth) trajectory.
// trajs[i] must correspond to actors[i].
func (e *Evaluator) Evaluate(m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory) Result {
	defer telEvalSeconds.Start().Stop()
	telEvaluations.Inc()
	telActorsPerEval.Observe(float64(len(actors)))
	if len(actors) == 0 {
		vol := reach.Compute(m, nil, ego, e.cfg).Volume
		return Result{BaseVolume: vol, EmptyVolume: vol}
	}
	obs := reach.BuildObstacles(actors, trajs, e.cfg)

	emptyVol := e.emptyVolume(m, ego)
	base := reach.Compute(m, obs.Collide(), ego, e.cfg)

	res := Result{
		PerActor:      make([]float64, len(actors)),
		WithoutVolume: make([]float64, len(actors)),
		BaseVolume:    base.Volume,
		EmptyVolume:   emptyVol,
	}
	if emptyVol <= 0 {
		// The ego has no escape routes even in an empty world (off-road or
		// wedged); actors cannot be responsible, so STI is defined as zero.
		return res
	}
	res.Combined = snap(clamp01((emptyVol - base.Volume) / emptyVol))
	for i := range actors {
		wo := reach.Compute(m, obs.CollideWithout(i), ego, e.cfg)
		res.WithoutVolume[i] = wo.Volume
		res.PerActor[i] = snap(clamp01((wo.Volume - base.Volume) / emptyVol))
	}
	return res
}

// deadBand absorbs the bounded quantisation error of the cached empty-world
// volume: ratios below it are reported as exactly zero risk.
const deadBand = 0.03

func snap(v float64) float64 {
	if v < deadBand {
		return 0
	}
	return v
}

// EvaluateCombined computes only STI^(combined), skipping the per-actor
// counterfactuals. This is the fast path used inside the SMC reward loop,
// costing two reach-tube computations instead of N+2.
func (e *Evaluator) EvaluateCombined(m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory) float64 {
	defer telCombinedSeconds.Start().Stop()
	telEvaluations.Inc()
	telActorsPerEval.Observe(float64(len(actors)))
	if len(actors) == 0 {
		return 0
	}
	obs := reach.BuildObstacles(actors, trajs, e.cfg)
	emptyVol := e.emptyVolume(m, ego)
	if emptyVol <= 0 {
		return 0
	}
	base := reach.Compute(m, obs.Collide(), ego, e.cfg)
	return snap(clamp01((emptyVol - base.Volume) / emptyVol))
}

// EvaluateWithPrediction is a convenience wrapper that forecasts every
// actor's trajectory with the CVTR model before evaluating STI — the
// configuration used online by the SMC (§IV-C).
func (e *Evaluator) EvaluateWithPrediction(m roadmap.Map, ego vehicle.State, actors []*actor.Actor) Result {
	trajs := actor.PredictAll(actors, e.cfg.NumSlices(), e.cfg.SliceDt)
	return e.Evaluate(m, ego, actors, trajs)
}

// CombinedWithPrediction is EvaluateCombined with CVTR-predicted actor
// trajectories.
func (e *Evaluator) CombinedWithPrediction(m roadmap.Map, ego vehicle.State, actors []*actor.Actor) float64 {
	trajs := actor.PredictAll(actors, e.cfg.NumSlices(), e.cfg.SliceDt)
	return e.EvaluateCombined(m, ego, actors, trajs)
}

func clamp01(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
