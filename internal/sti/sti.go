// Package sti implements the Safety-Threat Indicator — the iPrism paper's
// primary contribution (§III-A). STI answers the counterfactual query "how
// many more escape routes would the ego vehicle have if actor i were not
// present?", using reach-tube volumes as the measure of escape routes:
//
//	STI_i        = (|T^{/i}| − |T|) / |T^∅|        (Eq. 4)
//	STI_combined = (|T^∅|   − |T|) / |T^∅|        (Eq. 5)
//
// where |T| is the tube with every actor present, |T^{/i}| without actor i,
// and |T^∅| in an empty world.
package sti

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/actor"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
	"repro/internal/vehicle"
)

// Telemetry (collected only when telemetry.Enable has been called; see
// DESIGN.md "Observability" for the metric index).
var (
	telEvaluations     = telemetry.NewCounter("sti.evaluations")
	telEvalSeconds     = telemetry.NewHistogram("sti.evaluate.seconds", telemetry.LatencyBuckets())
	telCombinedSeconds = telemetry.NewHistogram("sti.evaluate_combined.seconds", telemetry.LatencyBuckets())
	telActorsPerEval   = telemetry.NewHistogram("sti.actors_per_eval", telemetry.LinearBuckets(0, 1, 16))
	// telParallelWorkers records the fan-out width of the latest Evaluate;
	// telActorTubeSeconds the per-counterfactual tube latency each worker
	// observes (serial path included, so the histogram is always populated).
	telParallelWorkers  = telemetry.NewGauge("sti.parallel.workers")
	telActorTubeSeconds = telemetry.NewHistogram("sti.actor_tube.seconds", telemetry.LatencyBuckets())
	// telElided counts per-actor counterfactual tubes skipped because the
	// actor provably could not change the base tube (never an exclusive
	// blocker, sole actor, or dead-band certificate).
	telElided = telemetry.NewCounter("sti.counterfactuals.elided")
	// Shared-expansion path (Options.SharedExpansion): evaluation latency,
	// how many actors each evaluation carried as explicit world-mask bits,
	// and how many mask words the expansion needed (1 = single-word fast
	// path).
	telSharedSeconds   = telemetry.NewHistogram("sti.shared_expansion.seconds", telemetry.LatencyBuckets())
	telSharedEvals     = telemetry.NewCounter("sti.shared_expansion.evals")
	telSharedMaskWidth = telemetry.NewHistogram("sti.shared_expansion.mask_width", telemetry.LinearBuckets(0, 8, 18))
	telSharedMaskWords = telemetry.NewHistogram("sti.shared_expansion.mask_words", telemetry.LinearBuckets(0, 1, 5))
	// Warm-start path (Options.WarmStart): the fraction of warm-capable
	// evaluations whose previous-tick expansion state was actually usable
	// (ego root bitwise-stable, same config/map/actor count).
	telWarmHitRatio = telemetry.NewGauge("sti.warm.hit_ratio")
)

// Result holds STI values for one evaluation instant.
type Result struct {
	// PerActor[i] is STI of actors[i] in [0, 1].
	PerActor []float64
	// Combined is STI^(combined) in [0, 1].
	Combined float64

	// Raw tube volumes backing the ratios, useful for diagnostics and the
	// paper's Fig. 7 visualisations.
	BaseVolume    float64   // |T|
	EmptyVolume   float64   // |T^∅|
	WithoutVolume []float64 // |T^{/i}|
}

// MostThreatening returns the index and value of the highest per-actor STI,
// or (-1, 0) if there are no actors.
func (r Result) MostThreatening() (int, float64) {
	best, bestV := -1, 0.0
	for i, v := range r.PerActor {
		if best == -1 || v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// Options tunes evaluator behaviour beyond the reach-tube configuration.
type Options struct {
	// Workers bounds the goroutines fanning the per-actor counterfactual
	// tubes of Evaluate out. 0 (the default) resolves to
	// runtime.GOMAXPROCS(0); 1 forces the serial path. Results are
	// bitwise-identical at every setting — each counterfactual is an
	// independent deterministic computation written to its own index — so
	// the knob trades only CPU against latency. Callers that already run
	// episodes on their own worker pool (experiment suites, SMC training)
	// should pass 1 to avoid oversubscription.
	Workers int

	// SharedExpansion selects the shared-expansion counterfactual engine
	// (reach.ComputeCounterfactuals): the base tube |T| and every per-actor
	// tube |T^{/i}| are derived from ONE masked expansion instead of up to
	// N+1 independent ones, making Evaluate ~O(1) in the number of actors.
	// Results are bitwise-identical to the legacy path — each world's
	// expansion order, ε-dedup, pruning and MaxStates cut-off are replayed
	// exactly through per-state world masks (DESIGN.md §8) — so the knob
	// trades nothing but memory locality for a superlinear speedup on
	// multi-actor scenes. Masks are segmented (ceil((1+N)/64) words), so
	// every actor in the scene is carried by the one expansion; scenes of
	// at most 63 actors take a scalar single-word fast path.
	SharedExpansion bool

	// WarmStart arms the temporal-coherence warm start for the shared
	// engine: EvaluateWarm calls holding a *WarmState reuse the previous
	// tick's path-sweep verdicts where provably unchanged
	// (reach.ComputeCounterfactualsWarm), with results bitwise-identical
	// to the cold path. It only affects EvaluateWarm/EvaluateWarmTraced —
	// the stateless Evaluate entry points have no previous tick to warm
	// from — and requires SharedExpansion (single-actor scenes and the
	// legacy engine always score cold).
	WarmStart bool
}

// Evaluator computes STI for scenes. It is stateless apart from
// configuration, the empty-world volume cache and pooled scratch memory,
// and is safe for concurrent use.
type Evaluator struct {
	cfg     reach.Config
	workers int
	shared  bool
	warm    bool
	cache   *emptyCache
	// scratch pools *reach.Scratch so the N+2 tube computations per
	// evaluation reuse frontier slices, dedup maps and occupancy grids
	// instead of churning the GC (one scratch per concurrent worker).
	scratch sync.Pool
}

// NewEvaluator returns an evaluator with the given reach-tube configuration
// and default Options.
func NewEvaluator(cfg reach.Config) (*Evaluator, error) {
	return NewEvaluatorOptions(cfg, Options{})
}

// NewEvaluatorOptions returns an evaluator with explicit options.
func NewEvaluatorOptions(cfg reach.Config, opts Options) (*Evaluator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Evaluator{cfg: cfg, workers: workers, shared: opts.SharedExpansion, warm: opts.WarmStart && opts.SharedExpansion, cache: newEmptyCache()}
	e.scratch.New = func() any { return reach.NewScratch() }
	return e, nil
}

// MustNewEvaluator is NewEvaluator for known-good configurations.
func MustNewEvaluator(cfg reach.Config) *Evaluator {
	e, err := NewEvaluator(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Config returns the evaluator's reach configuration.
func (e *Evaluator) Config() reach.Config { return e.cfg }

// Workers returns the resolved counterfactual fan-out bound.
func (e *Evaluator) Workers() int { return e.workers }

// SharedExpansion reports whether the evaluator uses the shared-expansion
// counterfactual engine.
func (e *Evaluator) SharedExpansion() bool { return e.shared }

// WarmStart reports whether EvaluateWarm calls may warm-start the shared
// expansion from a caller-held WarmState.
func (e *Evaluator) WarmStart() bool { return e.warm }

// Evaluate computes per-actor and combined STI for the ego at state ego on
// map m, given each actor's (predicted or ground-truth) trajectory.
// trajs[i] must correspond to actors[i].
func (e *Evaluator) Evaluate(m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory) Result {
	res, _ := e.evaluate(nil, m, ego, actors, trajs)
	return res
}

// EvaluateTraced is Evaluate with request-scoped tracing and risk
// provenance: spans land on the trace.Recorder carried by ctx (if any), and
// the returned Provenance reports which engine scored the scene, the
// empty-volume cache outcome and the certificate work skipped. With no
// recorder in ctx the result is identical to Evaluate.
func (e *Evaluator) EvaluateTraced(ctx context.Context, m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory) (Result, Provenance) {
	return e.evaluate(trace.FromContext(ctx), m, ego, actors, trajs)
}

// evaluate is the shared body of Evaluate and EvaluateTraced. rec may be
// nil (the common untraced path); every span call is nil-safe, so tracing
// costs the hot path one pointer check per call site.
func (e *Evaluator) evaluate(rec *trace.Recorder, m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory) (Result, Provenance) {
	defer telEvalSeconds.Start().Stop()
	telEvaluations.Inc()
	telActorsPerEval.Observe(float64(len(actors)))
	scr := e.takeScratch()
	defer e.putScratch(scr)
	if len(actors) == 0 {
		sp := rec.StartSpan("reach.empty_tube")
		vol := reach.ComputeScratch(m, nil, ego, e.cfg, scr).Volume
		sp.End()
		return Result{BaseVolume: vol, EmptyVolume: vol}, Provenance{Engine: EngineEmpty, CacheState: CacheBypass}
	}
	// Single-actor scenes stay on the legacy path even under
	// SharedExpansion: |T^{/0}| = |T^∅| comes from the empty-volume cache,
	// so the legacy path is already two tubes (one on a cache hit) and the
	// masked expansion has nothing to share.
	if e.shared && len(actors) > 1 {
		return e.evaluateShared(rec, m, ego, actors, trajs, scr, nil)
	}
	prov := Provenance{Engine: EngineLegacy}
	obs := reach.BuildObstacles(actors, trajs, e.cfg)

	sp := rec.StartSpan("reach.empty_tube")
	emptyVol, cacheState := e.emptyVolumeState(m, ego, scr)
	sp.Annotate("cache_state", cacheState).End()
	prov.CacheState = cacheState
	// The base tube records which actors ever exclusively blocked a
	// candidate footprint. An unmarked actor never changed a collision
	// verdict on its own, so the deterministic expansion without it is
	// identical: T^{/i} = T exactly, and its counterfactual tube can be
	// skipped (the dominant cost on sparse scenes, where most actors never
	// touch the tube).
	marks := make([]bool, len(actors))
	sp = rec.StartSpan("reach.base_tube")
	base := reach.ComputeScratch(m, obs.CollideRecording(marks), ego, e.cfg, scr)
	sp.End()

	res := Result{
		PerActor:      make([]float64, len(actors)),
		WithoutVolume: make([]float64, len(actors)),
		BaseVolume:    base.Volume,
		EmptyVolume:   emptyVol,
	}
	if emptyVol <= 0 {
		// The ego has no escape routes even in an empty world (off-road or
		// wedged); actors cannot be responsible, so STI is defined as zero.
		return res, prov
	}
	res.Combined = snap(clamp01((emptyVol - base.Volume) / emptyVol))

	// Dead-band certificate: |T| ≤ |T^{/i}| ≤ |T^∅| (up to the dedup
	// jitter the dead band exists to absorb), so every per-actor ratio is
	// bounded by the combined ratio. A combined STI snapped to zero
	// certifies every per-actor STI snaps to zero too — report |T| for the
	// without-volumes (correct to within deadBand·|T^∅|) and skip all N
	// counterfactual tubes.
	if res.Combined == 0 {
		telElided.Add(int64(len(actors)))
		prov.ElidedActors += len(actors)
		for i := range actors {
			res.WithoutVolume[i] = base.Volume
		}
		return res, prov
	}

	// work collects the actors whose counterfactual actually needs a tube.
	work := make([]int, 0, len(actors))
	for i := range actors {
		switch {
		case !marks[i]:
			// Never an exclusive blocker: T^{/i} = T, STI exactly zero.
			res.WithoutVolume[i] = base.Volume
		case len(actors) == 1:
			// Removing the only actor leaves the empty world: T^{/i} = T^∅,
			// with the same cached |T^∅| the combined ratio uses.
			res.WithoutVolume[i] = emptyVol
			res.PerActor[i] = res.Combined
		default:
			work = append(work, i)
		}
	}
	// Elision accounting is additive on purpose: a single evaluation can
	// elide in more than one place (dead-band certificate above, the marks
	// pass here), and Provenance must agree with the telElided counter
	// delta rather than reporting only the last writer.
	telElided.Add(int64(len(actors) - len(work)))
	prov.ElidedActors += len(actors) - len(work)
	if len(work) == 0 {
		return res, prov
	}

	// Fan the remaining independent |T^{/i}| counterfactuals out over a
	// bounded worker pool. Each index is claimed atomically and written to
	// its own slot of the pre-sized result slices, so the output is
	// identical to the serial loop regardless of scheduling.
	sp = rec.StartSpan("reach.counterfactual_tubes")
	e.fanOut(work, scr, func(i int, ws *reach.Scratch) {
		t := telActorTubeSeconds.Start()
		wo := reach.ComputeScratch(m, obs.CollideWithout(i), ego, e.cfg, ws)
		t.Stop()
		res.WithoutVolume[i] = wo.Volume
		res.PerActor[i] = snap(clamp01((wo.Volume - base.Volume) / emptyVol))
	})
	sp.Annotate("tubes", len(work)).End()
	return res, prov
}

// fanOut runs fn(i, scratch) for every index in work over the evaluator's
// bounded worker pool, serially (reusing the caller's scratch) when the
// bound or the workload is 1. fn must confine its writes to index-owned
// slots; the output is then identical regardless of scheduling.
func (e *Evaluator) fanOut(work []int, scr *reach.Scratch, fn func(i int, ws *reach.Scratch)) {
	workers := e.workers
	if workers > len(work) {
		workers = len(work)
	}
	telParallelWorkers.Set(float64(workers))
	if workers <= 1 {
		for _, i := range work {
			fn(i, scr)
		}
		return
	}
	var nextIdx atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws := e.takeScratch()
			defer e.putScratch(ws)
			for {
				k := int(nextIdx.Add(1)) - 1
				if k >= len(work) {
					return
				}
				fn(work[k], ws)
			}
		}()
	}
	wg.Wait()
}

// evaluateShared is Evaluate on the shared-expansion engine: one masked
// expansion (reach.ComputeCounterfactuals) yields |T| and every per-actor
// |T^{/i}| at once. The masks are segmented, so every actor in the scene —
// not just the first 63 — is carried by that single expansion; the
// spillover fan-out the old single-word engine needed is gone. The
// observable Result is bitwise-identical to the legacy path, including its
// reporting conventions: the cached |T^∅| backs every ratio, every
// per-actor value passes through the same snap(clamp01(·)) pipeline, and
// the dead-band certificate reports |T| for the without-volumes it skips.
func (e *Evaluator) evaluateShared(rec *trace.Recorder, m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory, scr *reach.Scratch, ws *reach.WarmState) (Result, Provenance) {
	defer telSharedSeconds.Start().Stop()
	telSharedEvals.Inc()
	prov := Provenance{Engine: EngineShared}
	obs := reach.BuildObstacles(actors, trajs, e.cfg)
	sp := rec.StartSpan("reach.empty_tube")
	emptyVol, cacheState := e.emptyVolumeState(m, ego, scr)
	sp.Annotate("cache_state", cacheState).End()
	prov.CacheState = cacheState
	var sh reach.SharedTubes
	if ws != nil {
		var stats reach.WarmStats
		sh, stats = reach.ComputeCounterfactualsWarmTraced(rec, m, obs, ego, e.cfg, scr, ws)
		prov.WarmHit = stats.Hit
		prov.WarmReused = stats.Reused
		prov.WarmInvalidated = stats.Invalidated
		noteWarmOutcome(stats.Hit)
	} else {
		sh = reach.ComputeCounterfactualsTraced(rec, m, obs, ego, e.cfg, scr)
	}
	telSharedMaskWidth.Observe(float64(sh.Represented))
	telSharedMaskWords.Observe(float64(sh.MaskWords))
	prov.MaskWidth = sh.Represented
	prov.MaskWords = sh.MaskWords

	res := Result{
		PerActor:      make([]float64, len(actors)),
		WithoutVolume: make([]float64, len(actors)),
		BaseVolume:    sh.BaseVolume,
		EmptyVolume:   emptyVol,
	}
	if emptyVol <= 0 {
		// No escape routes even in an empty world; STI is defined as zero.
		return res, prov
	}
	res.Combined = snap(clamp01((emptyVol - sh.BaseVolume) / emptyVol))

	// Dead-band certificate (see Evaluate): a combined STI snapped to zero
	// certifies every per-actor STI snaps to zero. Match the legacy
	// reporting exactly — |T| stands in for the without-volumes.
	if res.Combined == 0 {
		telElided.Add(int64(len(actors)))
		prov.ElidedActors += len(actors)
		for i := range actors {
			res.WithoutVolume[i] = sh.BaseVolume
		}
		return res, prov
	}

	for i := range actors {
		wo := sh.WithoutVolume[i]
		res.WithoutVolume[i] = wo
		res.PerActor[i] = snap(clamp01((wo - sh.BaseVolume) / emptyVol))
	}
	return res, prov
}

// deadBand absorbs the bounded quantisation error of the cached empty-world
// volume: ratios below it are reported as exactly zero risk.
const deadBand = 0.03

func snap(v float64) float64 {
	if v < deadBand {
		return 0
	}
	return v
}

// EvaluateCombined computes only STI^(combined), skipping the per-actor
// counterfactuals. This is the fast path used inside the SMC reward loop,
// costing two reach-tube computations instead of N+2.
func (e *Evaluator) EvaluateCombined(m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory) float64 {
	defer telCombinedSeconds.Start().Stop()
	telEvaluations.Inc()
	telActorsPerEval.Observe(float64(len(actors)))
	if len(actors) == 0 {
		return 0
	}
	scr := e.takeScratch()
	defer e.putScratch(scr)
	obs := reach.BuildObstacles(actors, trajs, e.cfg)
	emptyVol := e.emptyVolume(m, ego, scr)
	if emptyVol <= 0 {
		return 0
	}
	base := reach.ComputeScratch(m, obs.Collide(), ego, e.cfg, scr)
	return snap(clamp01((emptyVol - base.Volume) / emptyVol))
}

func (e *Evaluator) takeScratch() *reach.Scratch { return e.scratch.Get().(*reach.Scratch) }
func (e *Evaluator) putScratch(s *reach.Scratch) { e.scratch.Put(s) }

// EvaluateWithPrediction is a convenience wrapper that forecasts every
// actor's trajectory with the CVTR model before evaluating STI — the
// configuration used online by the SMC (§IV-C).
func (e *Evaluator) EvaluateWithPrediction(m roadmap.Map, ego vehicle.State, actors []*actor.Actor) Result {
	trajs := actor.PredictAll(actors, e.cfg.NumSlices(), e.cfg.SliceDt)
	return e.Evaluate(m, ego, actors, trajs)
}

// CombinedWithPrediction is EvaluateCombined with CVTR-predicted actor
// trajectories.
func (e *Evaluator) CombinedWithPrediction(m roadmap.Map, ego vehicle.State, actors []*actor.Actor) float64 {
	trajs := actor.PredictAll(actors, e.cfg.NumSlices(), e.cfg.SliceDt)
	return e.EvaluateCombined(m, ego, actors, trajs)
}

func clamp01(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
