package sti

import (
	"math/rand"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

// dense12Scene is the dense workload of the shared-expansion engine: a
// fast ego on a three-lane road rolling up on two ranks of slow traffic
// (one per lane each), fast vehicles closing from behind and a far rank at
// the horizon's edge. The base tube is large and half the actors clip it at
// the periphery, so the legacy path re-expands a nearly full-size tube for
// each of ~6 blockers while the shared expansion covers the union once.
// Benchmarks and cmd/iprism-bench's sti_evaluate_dense12 workload mirror it.
func dense12Scene() (roadmap.Map, vehicle.State, []*actor.Actor) {
	m := roadmap.MustStraightRoad(3, 3.5, -100, 1000)
	e := ego(0, 5.25, 12)
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(30, 1.75), Speed: 6}),
		actor.NewVehicle(2, vehicle.State{Pos: geom.V(36, 5.25), Speed: 6}),
		actor.NewVehicle(3, vehicle.State{Pos: geom.V(33, 8.75), Speed: 6}),
		actor.NewVehicle(4, vehicle.State{Pos: geom.V(40, 1.75), Speed: 6}),
		actor.NewVehicle(5, vehicle.State{Pos: geom.V(46, 5.25), Speed: 6}),
		actor.NewVehicle(6, vehicle.State{Pos: geom.V(43, 8.75), Speed: 6}),
		actor.NewVehicle(7, vehicle.State{Pos: geom.V(-14, 5.25), Speed: 15}),
		actor.NewVehicle(8, vehicle.State{Pos: geom.V(-18, 1.75), Speed: 16}),
		actor.NewVehicle(9, vehicle.State{Pos: geom.V(-16, 8.75), Speed: 17}),
		actor.NewVehicle(10, vehicle.State{Pos: geom.V(55, 5.25), Speed: 5}),
		actor.NewVehicle(11, vehicle.State{Pos: geom.V(52, 1.75), Speed: 5}),
		actor.NewVehicle(12, vehicle.State{Pos: geom.V(53, 8.75), Speed: 5}),
	}
	return m, e, actors
}

func sharedAndLegacy(t testing.TB, workers int) (legacy, shared *Evaluator) {
	cfg := reach.DefaultConfig()
	legacy, err := NewEvaluatorOptions(cfg, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	shared, err = NewEvaluatorOptions(cfg, Options{Workers: workers, SharedExpansion: true})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.SharedExpansion() || !shared.SharedExpansion() {
		t.Fatal("SharedExpansion option not reflected by evaluators")
	}
	return legacy, shared
}

// The differential contract of the tentpole: with SharedExpansion on,
// Evaluate is bitwise-identical to the legacy path — every Result field,
// after snap and dead-band handling — on the full scene mix used by the
// parallel determinism suite, at both worker counts.
func TestSharedExpansionMatchesLegacyScenes(t *testing.T) {
	for _, workers := range []int{1, 8} {
		legacy, shared := sharedAndLegacy(t, workers)
		for si, obs := range parallelScenes(t) {
			trajs := actor.PredictAll(obs.Actors, legacy.cfg.NumSlices(), legacy.cfg.SliceDt)
			want := legacy.Evaluate(obs.Map, obs.Ego, obs.Actors, trajs)
			got := shared.Evaluate(obs.Map, obs.Ego, obs.Actors, trajs)
			requireIdentical(t, si, want, got)
		}
	}
}

// The dense 12-actor workload — the scene class the shared engine exists
// for — must also be exact, and most actors must really block (otherwise
// the scene would not exercise the engine).
func TestSharedExpansionDense12(t *testing.T) {
	legacy, shared := sharedAndLegacy(t, 4)
	m, e, actors := dense12Scene()
	trajs := actor.PredictAll(actors, legacy.cfg.NumSlices(), legacy.cfg.SliceDt)
	want := legacy.Evaluate(m, e, actors, trajs)
	got := shared.Evaluate(m, e, actors, trajs)
	requireIdentical(t, -12, want, got)
	if want.Combined == 0 {
		t.Fatal("dense12 scene has zero combined STI; workload does not exercise counterfactuals")
	}
	blockers := 0
	for i := range want.WithoutVolume {
		if want.WithoutVolume[i] != want.BaseVolume {
			blockers++
		}
	}
	if blockers < 4 {
		t.Fatalf("dense12 scene has only %d blocking actors; want >= 4", blockers)
	}
}

// Randomized property sweep: shared and legacy agree bitwise across small
// scene sizes (single-word fast path), with a mix of blocked and free
// roads.
func TestSharedExpansionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	legacy, shared := sharedAndLegacy(t, 4)
	road := testRoad()
	for iter := 0; iter < 25; iter++ {
		n := rng.Intn(10)
		actors := make([]*actor.Actor, n)
		for i := range actors {
			actors[i] = actor.NewVehicle(i+1, vehicle.State{
				Pos:     geom.V(-20+rng.Float64()*70, 0.8+rng.Float64()*5.4),
				Speed:   rng.Float64() * 15,
				Heading: (rng.Float64() - 0.5) * 0.4,
			})
		}
		e := ego(0, 1.0+rng.Float64()*5, rng.Float64()*20)
		trajs := actor.PredictAll(actors, legacy.cfg.NumSlices(), legacy.cfg.SliceDt)
		want := legacy.Evaluate(road, e, actors, trajs)
		got := shared.Evaluate(road, e, actors, trajs)
		requireIdentical(t, iter, want, got)
	}
}

// Segmented scenes: 64+-actor evaluations must be scored entirely by the
// one shared expansion — a mask as wide as the scene — and stay
// bitwise-identical to the legacy oracle. This is the acceptance criterion
// of the segmented-mask change plus the regression test for the old
// spillover bug where never-blocking excess actors got a raw (unsnapped)
// PerActor value: every per-actor STI must now come out of the same
// snap(clamp01(·)) pipeline, so values in (0, deadBand) are impossible.
func TestSharedExpansionSegmented(t *testing.T) {
	if testing.Short() {
		t.Skip("64-130-actor differential scenes")
	}
	rng := rand.New(rand.NewSource(5))
	legacy, shared := sharedAndLegacy(t, 4)
	road := testRoad()
	for _, n := range []int{64, 70, 130} {
		span := 60 + 3*float64(n)
		actors := make([]*actor.Actor, n)
		for i := range actors {
			actors[i] = actor.NewVehicle(i+1, vehicle.State{
				Pos:     geom.V(-20+rng.Float64()*span, 0.8+rng.Float64()*5.4),
				Speed:   rng.Float64() * 15,
				Heading: (rng.Float64() - 0.5) * 0.4,
			})
		}
		e := ego(0, 1.75, 10)
		trajs := actor.PredictAll(actors, legacy.cfg.NumSlices(), legacy.cfg.SliceDt)
		want := legacy.Evaluate(road, e, actors, trajs)
		got, prov := shared.evaluate(nil, road, e, actors, trajs)
		requireIdentical(t, n, want, got)
		if prov.MaskWidth != n {
			t.Errorf("n=%d: mask width %d, want every actor represented", n, prov.MaskWidth)
		}
		if words := (1 + n + 63) / 64; prov.MaskWords != words {
			t.Errorf("n=%d: mask words %d, want %d", n, prov.MaskWords, words)
		}
		for i, v := range got.PerActor {
			if v != 0 && v < deadBand {
				t.Errorf("n=%d actor %d: PerActor %v inside the dead band — escaped the snap pipeline", n, i, v)
			}
		}
	}
}

// One evaluator under SharedExpansion shared by concurrent callers must
// stay deterministic (scratch pooling, empty-volume cache, fan-out).
func TestSharedExpansionConcurrentUse(t *testing.T) {
	legacy, shared := sharedAndLegacy(t, 4)
	scenes := parallelScenes(t)
	trajs := make([][]actor.Trajectory, len(scenes))
	want := make([]Result, len(scenes))
	for i, obs := range scenes {
		trajs[i] = actor.PredictAll(obs.Actors, legacy.cfg.NumSlices(), legacy.cfg.SliceDt)
		want[i] = legacy.Evaluate(obs.Map, obs.Ego, obs.Actors, trajs[i])
	}
	done := make(chan struct{})
	for c := 0; c < 4; c++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i, obs := range scenes {
				got := shared.Evaluate(obs.Map, obs.Ego, obs.Actors, trajs[i])
				requireIdentical(t, i, want[i], got)
			}
		}()
	}
	for c := 0; c < 4; c++ {
		<-done
	}
	close(done)
}

// fuzzScene decodes the fuzz inputs into a deterministic scene: seed drives
// actor placement, n the actor count (0..130, so values past 64 exercise
// word 1+ of the segmented masks), egoLane/egoSpeed the ego. The scatter
// span grows with the actor count so crowd-scale scenes stay plausible
// traffic rather than one impenetrable wall.
func fuzzScene(seed int64, n uint8, egoY, egoSpeed float64) (vehicle.State, []*actor.Actor) {
	if egoY < 0.8 || egoY > 6.2 || egoY != egoY {
		egoY = 1.75
	}
	if egoSpeed < 0 || egoSpeed > 25 || egoSpeed != egoSpeed {
		egoSpeed = 10
	}
	rng := rand.New(rand.NewSource(seed))
	count := int(n) % 131
	span := 70 + 3*float64(count)
	actors := make([]*actor.Actor, count)
	for i := range actors {
		actors[i] = actor.NewVehicle(i+1, vehicle.State{
			Pos:     geom.V(-20+rng.Float64()*span, 0.8+rng.Float64()*5.4),
			Speed:   rng.Float64() * 15,
			Heading: (rng.Float64() - 0.5) * 0.4,
		})
	}
	return ego(0, egoY, egoSpeed), actors
}

// FuzzSharedVsLegacy drives randomized scenes through both evaluator paths
// and requires bitwise-equal Results. The corpus seeds mirror the suite's
// hand-picked regressions: a ghost-cut-in-like close leading blocker, the
// dense straight-road scene's shape, a ring-of-actors configuration, and
// crowd-scale scenes whose world masks need two and three words.
func FuzzSharedVsLegacy(f *testing.F) {
	f.Add(int64(101), uint8(1), 1.75, 10.0)  // ghost cut-in shape: one close blocker
	f.Add(int64(202), uint8(6), 1.75, 10.0)  // dense straight-road shape
	f.Add(int64(303), uint8(12), 3.5, 15.0)  // ring of actors around a mid-road ego
	f.Add(int64(404), uint8(0), 5.25, 0.0)   // empty scene, stationary ego
	f.Add(int64(505), uint8(64), 1.75, 12.0) // first scene past the old 63-actor cap
	f.Add(int64(606), uint8(70), 3.5, 10.0)  // word-1 masks (71 worlds)
	f.Add(int64(707), uint8(130), 1.75, 8.0) // word-2 masks (131 worlds)
	legacy, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{Workers: 2})
	if err != nil {
		f.Fatal(err)
	}
	shared, err := NewEvaluatorOptions(reach.DefaultConfig(), Options{Workers: 2, SharedExpansion: true})
	if err != nil {
		f.Fatal(err)
	}
	road := testRoad()
	f.Fuzz(func(t *testing.T, seed int64, n uint8, egoY, egoSpeed float64) {
		e, actors := fuzzScene(seed, n, egoY, egoSpeed)
		trajs := actor.PredictAll(actors, legacy.cfg.NumSlices(), legacy.cfg.SliceDt)
		want := legacy.Evaluate(road, e, actors, trajs)
		got := shared.Evaluate(road, e, actors, trajs)
		requireIdentical(t, int(seed), want, got)
	})
}
