package sti

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/vehicle"
)

// Regression for the asymmetric segment-end guard: the cache used to demand
// a full tube length of clearance towards XMax but only a footprint length
// towards XMin, so an ego close behind the segment start was served the
// segment-centre volume even though its tube was clipped by the boundary.
func TestCacheGuardSymmetricNearSegmentStart(t *testing.T) {
	e := eval(t)
	m := testRoad() // x ∈ [-50, 500]
	scr := reach.NewScratch()

	// 10 m from XMin, heading towards it at speed: the tube runs past the
	// segment start and is clipped, so the cache must not serve the
	// translation-invariant centre volume. (The pre-fix guard only demanded
	// a footprint length of clearance on this side.)
	near := vehicle.State{Pos: geom.V(-40, 1.75), Heading: math.Pi, Speed: 12}
	got := e.emptyVolume(m, near, scr)
	if n := e.cache.Len(); n != 0 {
		t.Fatalf("near-XMin state was cached (%d entries), want guard bypass", n)
	}
	direct := reach.Compute(m, nil, near, e.cfg).Volume
	if got != direct {
		t.Errorf("bypassed emptyVolume = %v, want direct computation %v", got, direct)
	}

	// The same relative pose far from both ends is cacheable, and its volume
	// differs from the clipped one — the value the old guard handed out.
	mid := vehicle.State{Pos: geom.V(225, 1.75), Heading: math.Pi, Speed: 12}
	center := e.emptyVolume(m, mid, scr)
	if n := e.cache.Len(); n != 1 {
		t.Fatalf("mid-segment state not cached (%d entries)", n)
	}
	if center == got {
		t.Errorf("clipped volume %v equals centre volume: guard regression test is vacuous", got)
	}
	if center < got {
		t.Errorf("centre volume %v < boundary-clipped volume %v", center, got)
	}
}

func TestXClearanceDirectionAware(t *testing.T) {
	e := eval(t)
	s := ego(0, 1.75, 10)
	fwd := e.xClearance(s, 0)
	bwd := e.xClearance(s, math.Pi)
	if bwd >= fwd {
		t.Errorf("clearance against heading (%v) should be below clearance along it (%v)", bwd, fwd)
	}
	if min := e.cfg.Params.Length; bwd < min || fwd < min {
		t.Errorf("clearances %v/%v must include the footprint margin %v", fwd, bwd, min)
	}
}

// Concurrent misses on one key must collapse to a single computation, with
// every caller observing the same published value.
func TestEmptyCacheSingleflight(t *testing.T) {
	c := newEmptyCache()
	key := emptyKey{lat: 7, heading: 0, speed: 20}

	var computes atomic.Int64
	var release = make(chan struct{})
	compute := func() float64 {
		computes.Add(1)
		<-release // hold the flight open so every goroutine joins it
		return 42.5
	}

	const callers = 8
	results := make([]float64, callers)
	var started, done sync.WaitGroup
	started.Add(callers)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			started.Done()
			results[i], _ = c.lookup(key, compute)
		}(i)
	}
	started.Wait()
	close(release)
	done.Wait()

	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times for one key, want 1", n)
	}
	for i, v := range results {
		if v != 42.5 {
			t.Errorf("caller %d got %v, want 42.5", i, v)
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}
