package scene

import (
	"strings"
	"testing"
)

func jobScene() Scene {
	return Scene{
		Version: Version,
		Ego:     State{X: 0, Y: 1.75, Speed: 10},
		Road:    Road{Kind: "straight", Straight: &StraightRoad{Lanes: 2, LaneWidth: 3.5, XMin: -50, XMax: 200}},
		Actors:  []Actor{{ID: 1, Kind: "vehicle", State: State{X: 20, Y: 1.75, Speed: 5}}},
	}
}

func TestJobRequestRoundTrip(t *testing.T) {
	raw, err := EncodeJobRequest(JobRequest{Scenes: []Scene{jobScene(), jobScene()}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJobRequest(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != JobVersion {
		t.Errorf("version = %q, want %q", got.Version, JobVersion)
	}
	if len(got.Scenes) != 2 {
		t.Errorf("scenes = %d, want 2", len(got.Scenes))
	}
}

func TestJobRequestRejections(t *testing.T) {
	valid, _ := EncodeJobRequest(JobRequest{Scenes: []Scene{jobScene()}})
	cases := []struct {
		name string
		data string
		max  int
		want string
	}{
		{"not json", "{", 0, "decode"},
		{"missing version", `{"scenes":[]}`, 0, "missing version"},
		{"future version", `{"version":"iprism.job/v9","scenes":[]}`, 0, "unsupported version"},
		{"wrong document", `{"version":"iprism.scene/v1","scenes":[]}`, 0, "not a job document"},
		{"empty corpus", `{"version":"iprism.job/v1","scenes":[]}`, 0, "no scenes"},
		{"over limit", string(valid), 0, ""}, // placeholder, set below
		{"bad scene", `{"version":"iprism.job/v1","scenes":[{"version":"iprism.scene/v1","road":{"kind":"moebius"}}]}`, 0, "scene 0"},
	}
	cases[5].max = 1
	cases[5].data = `{"version":"iprism.job/v1","scenes":[` +
		strings.TrimSuffix(strings.TrimPrefix(string(mustScene(jobScene())), ""), "") + "," + string(mustScene(jobScene())) + `]}`
	cases[5].want = "limit 1"
	for _, tc := range cases {
		if _, err := DecodeJobRequest([]byte(tc.data), tc.max); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func mustScene(s Scene) []byte {
	raw, err := Encode(s)
	if err != nil {
		panic(err)
	}
	return raw
}
