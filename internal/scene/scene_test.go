package scene

import (
	"strings"
	"testing"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

func straightScene() Scene {
	return Scene{
		Version: Version,
		Time:    2.5,
		Ego:     State{X: 0, Y: 1.75, Heading: 0, Speed: 10},
		Road: Road{Kind: "straight", Straight: &StraightRoad{
			Lanes: 2, LaneWidth: 3.5, XMin: -100, XMax: 400,
		}},
		Actors: []Actor{
			{ID: 1, Kind: "vehicle", State: State{X: 14, Y: 1.75, Speed: 3}, Length: 4.7, Width: 2.0},
			{ID: 2, Kind: "pedestrian", State: State{X: 30, Y: 5.25, Speed: 1.2}},
		},
	}
}

func TestRoundTripStraight(t *testing.T) {
	in := straightScene()
	raw, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != Version {
		t.Errorf("version = %q, want %q", out.Version, Version)
	}
	if out.Time != in.Time || out.Ego != in.Ego {
		t.Errorf("ego/time changed: %+v vs %+v", out, in)
	}
	if len(out.Actors) != 2 || out.Actors[0].State != in.Actors[0].State ||
		out.Actors[0].ID != in.Actors[0].ID || out.Actors[1].Kind != "pedestrian" {
		t.Errorf("actors changed: %+v", out.Actors)
	}
	if *out.Road.Straight != *in.Road.Straight {
		t.Errorf("road changed: %+v", out.Road.Straight)
	}
}

func TestRoundTripRingWithTrajectory(t *testing.T) {
	in := Scene{
		Version: Version,
		Ego:     State{X: 20, Y: 0, Heading: 1.57, Speed: 8},
		Road:    Road{Kind: "ring", Ring: &RingRoad{InnerR: 14, OuterR: 24}},
		Actors: []Actor{{
			ID: 7, Kind: "vehicle", State: State{X: 0, Y: 20, Heading: 3.14, Speed: 8},
			Trajectory:   []State{{X: 0, Y: 20}, {X: -4, Y: 19}, {X: -8, Y: 17}},
			TrajectoryDt: 0.5,
		}},
	}
	raw, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	m, ego, actors, trajs, hasTrajs, err := out.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*roadmap.RingRoad); !ok {
		t.Fatalf("map type %T, want *roadmap.RingRoad", m)
	}
	if ego.Speed != 8 || ego.Pos != geom.V(20, 0) {
		t.Errorf("ego = %v", ego)
	}
	if !hasTrajs {
		t.Fatal("explicit trajectory lost")
	}
	if trajs[0].Dt != 0.5 || trajs[0].Len() != 3 {
		t.Errorf("trajectory = %+v", trajs[0])
	}
	if actors[0].Kind != actor.KindVehicle || actors[0].ID != 7 {
		t.Errorf("actor = %+v", actors[0])
	}
	// Wire omitted the footprint: the vehicle default must be applied.
	if actors[0].Length != 4.7 || actors[0].Width != 2.0 {
		t.Errorf("default footprint not applied: %v x %v", actors[0].Length, actors[0].Width)
	}
}

func TestMaterializeMatchesFromParts(t *testing.T) {
	road := roadmap.MustStraightRoad(3, 3.5, -50, 500)
	ego := vehicle.State{Pos: geom.V(5, 1.75), Heading: 0.1, Speed: 12}
	actors := []*actor.Actor{
		actor.NewVehicle(1, vehicle.State{Pos: geom.V(25, 5.25), Speed: 9}),
		actor.NewPedestrian(2, vehicle.State{Pos: geom.V(40, 8), Speed: 1}),
	}
	s, err := FromParts(road, ego, actors, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	m2, ego2, actors2, _, hasTrajs, err := out.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if hasTrajs {
		t.Error("no trajectories were encoded")
	}
	if *m2.(*roadmap.StraightRoad) != *road {
		t.Errorf("road = %+v, want %+v", m2, road)
	}
	if ego2 != ego {
		t.Errorf("ego = %v, want %v", ego2, ego)
	}
	if len(actors2) != len(actors) {
		t.Fatalf("actors = %d, want %d", len(actors2), len(actors))
	}
	for i := range actors {
		if *actors2[i] != *actors[i] {
			t.Errorf("actor %d = %+v, want %+v", i, actors2[i], actors[i])
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"not json", `{`, "decode"},
		{"missing version", `{"ego":{}}`, "missing version"},
		{"future version", `{"version":"iprism.scene/v99"}`, "unsupported version"},
		{"wrong document", `{"version":"iprism.trace/v1"}`, "not a scene document"},
		{"unknown road", `{"version":"iprism.scene/v1","road":{"kind":"moebius"}}`, "unknown road kind"},
		{"straight without params", `{"version":"iprism.scene/v1","road":{"kind":"straight"}}`, "without straight parameters"},
		{"bad actor kind", `{"version":"iprism.scene/v1","road":{"kind":"ring","ring":{"inner_r":5,"outer_r":9}},"actors":[{"id":1,"kind":"tank"}]}`, "unknown kind"},
		{"trajectory without dt", `{"version":"iprism.scene/v1","road":{"kind":"ring","ring":{"inner_r":5,"outer_r":9}},"actors":[{"id":1,"kind":"vehicle","trajectory":[{"x":1}]}]}`, "trajectory_dt"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.body))
			if err == nil {
				t.Fatal("decode accepted invalid document")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestMaterializeRejectsInvalidRoad(t *testing.T) {
	s := straightScene()
	s.Road.Straight.XMax = s.Road.Straight.XMin // empty extent
	if _, _, _, _, _, err := s.Materialize(); err == nil {
		t.Error("invalid road materialised")
	}
}
