package scene

// Provenance is the optional explanation block of a scoring response,
// returned when the client opts in with ?explain=1. It answers "where did
// this risk number come from": the engine that scored the scene, the cache
// and certificate shortcuts taken, each actor's counterfactual
// contribution, and the span timings of the evaluation — enough to replay
// the request's waterfall without server-side state. The block is part of
// the versioned wire format; absent fields marshal away so v1 decoders
// ignore it entirely.
type Provenance struct {
	// TraceID is the request's trace identifier (32 hex digits), matching
	// the X-Trace-Id response header and the server's wide-event journal.
	TraceID string `json:"trace_id"`
	// Engine is the counterfactual engine used: "shared", "legacy" or
	// "empty" (actor-free scene).
	Engine string `json:"engine"`
	// CacheState is the empty-volume cache outcome: "hit", "miss" or
	// "bypass".
	CacheState string `json:"cache_state"`
	// MaskWidth is the number of actors the shared expansion carried as
	// world-mask bits (zero on the legacy engine). Segmented masks carry
	// every actor, so on the shared engine this equals the actor count.
	MaskWidth int `json:"mask_width,omitempty"`
	// MaskWords is the number of 64-bit words in the shared expansion's
	// world masks (1 = single-word fast path; zero on the legacy engine).
	MaskWords int `json:"mask_words,omitempty"`
	// ElidedActors counts per-actor counterfactual tubes skipped by a
	// certificate (never-blocking actor or dead-band).
	ElidedActors int `json:"elided_actors,omitempty"`
	// WarmHit reports that a session evaluation validated its previous
	// tick's expansion state and reused path-sweep verdicts (temporal
	// coherence). Always absent on stateless scoring.
	WarmHit bool `json:"warm_hit,omitempty"`
	// WarmReused / WarmInvalidated count previous-tick verdicts reused
	// versus recomputed on a warm hit.
	WarmReused      int `json:"warm_reused,omitempty"`
	WarmInvalidated int `json:"warm_invalidated,omitempty"`
	// Actors is each actor's STI contribution and backing counterfactual
	// volume, index-aligned with the request's actors.
	Actors []ActorProvenance `json:"actors,omitempty"`
	// Spans is the evaluation's timing waterfall, offsets relative to
	// request start.
	Spans []SpanTiming `json:"spans,omitempty"`
}

// ActorProvenance is one actor's contribution to the scene's risk.
type ActorProvenance struct {
	ID            int     `json:"id"`
	STI           float64 `json:"sti"`
	WithoutVolume float64 `json:"without_volume"`
}

// SpanTiming is one timed region of the request, in microseconds relative
// to the request's start.
type SpanTiming struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}
