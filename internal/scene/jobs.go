package scene

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Async corpus-job wire format (iprism.job/v1), spoken by the gateway
// tier's bulk-scoring API:
//
//	POST /v1/jobs            JobRequest  -> 202 JobStatus
//	GET  /v1/jobs/{id}       -> 200 JobStatus
//	GET  /v1/jobs/{id}/results -> 200 JobResults (202 JobStatus while running)
//
// A corpus is submitted once, fanned out across the scoring fleet by the
// gateway's bounded scheduler, and fetched as one per-scene STI artifact —
// the mitigation-policy-evaluation workload (thousands of scenes per
// experiment) without one HTTP round-trip per scene. Like the scene codec,
// the format is versioned so stored corpora and archived result artifacts
// survive schema evolution.

// JobVersion is the corpus-job wire-format identifier.
const JobVersion = "iprism.job/v1"

// JobRequest submits a scene corpus for asynchronous scoring.
type JobRequest struct {
	Version string  `json:"version"`
	Scenes  []Scene `json:"scenes"`
}

// Job lifecycle states reported by JobStatus.
const (
	JobStateRunning = "running"
	JobStateDone    = "done"
)

// JobStatus reports a job's identity and progress. Completed + Failed ==
// Total once State is "done"; Failed scenes carry their error in the
// results artifact.
type JobStatus struct {
	Version   string `json:"version"`
	ID        string `json:"id"`
	State     string `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
}

// JobSceneResult is one scene's slot in the results artifact,
// index-aligned with the submitted corpus. Either the scores or Error is
// populated.
type JobSceneResult struct {
	Index           int             `json:"index"`
	Combined        float64         `json:"combined_sti"`
	MostThreatening int             `json:"most_threatening"`
	Actors          []JobActorScore `json:"actors,omitempty"`
	Error           string          `json:"error,omitempty"`
}

// JobActorScore is one actor's STI inside a job result.
type JobActorScore struct {
	ID  int     `json:"id"`
	STI float64 `json:"sti"`
}

// JobResults is the per-scene STI artifact of a completed job.
type JobResults struct {
	Version string           `json:"version"`
	ID      string           `json:"id"`
	Results []JobSceneResult `json:"results"`
}

// EncodeJobRequest marshals a corpus submission, stamping JobVersion.
func EncodeJobRequest(r JobRequest) ([]byte, error) {
	r.Version = JobVersion
	return json.Marshal(r)
}

// DecodeJobRequest unmarshals and validates one corpus submission. Every
// scene is validated structurally; maxScenes bounds the corpus size
// (0 = unbounded).
func DecodeJobRequest(data []byte, maxScenes int) (JobRequest, error) {
	var r JobRequest
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("job: decode: %w", err)
	}
	switch {
	case r.Version == "":
		return r, fmt.Errorf("job: missing version (want %q)", JobVersion)
	case r.Version != JobVersion:
		if strings.HasPrefix(r.Version, "iprism.job/") {
			return r, fmt.Errorf("job: unsupported version %q (this build speaks %q)", r.Version, JobVersion)
		}
		return r, fmt.Errorf("job: not a job document: version %q", r.Version)
	}
	if len(r.Scenes) == 0 {
		return r, fmt.Errorf("job: corpus has no scenes")
	}
	if maxScenes > 0 && len(r.Scenes) > maxScenes {
		return r, fmt.Errorf("job: corpus has %d scenes, limit %d", len(r.Scenes), maxScenes)
	}
	for i := range r.Scenes {
		if err := r.Scenes[i].Validate(); err != nil {
			return r, fmt.Errorf("job: scene %d: %w", i, err)
		}
	}
	return r, nil
}
