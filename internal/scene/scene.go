// Package scene defines the versioned JSON wire format for risk-scoring
// scenes: the ego vehicle state, the surrounding actors with optional
// predicted trajectories, and the road geometry. It is the request codec
// shared by the scoring service (internal/server), the load generator
// (cmd/iprism-loadgen) and future dataset tooling; the iprism facade
// re-exports it for library users.
//
// The format is versioned so stored corpora survive schema evolution: every
// document carries `"version": "iprism.scene/v1"` and decoding rejects
// versions it does not understand instead of silently misreading them.
package scene

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

// Version is the wire-format identifier this package encodes and decodes.
const Version = "iprism.scene/v1"

// Scene is one scoring request: a road, an ego state, and actors.
type Scene struct {
	Version string `json:"version"`
	// Time stamps the observation in episode seconds; used by the session
	// API's rolling trace, ignored by stateless scoring.
	Time   float64 `json:"time,omitempty"`
	Ego    State   `json:"ego"`
	Road   Road    `json:"road"`
	Actors []Actor `json:"actors,omitempty"`
}

// State is a kinematic vehicle state on the wire.
type State struct {
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Heading float64 `json:"heading"`
	Speed   float64 `json:"speed"`
}

// Actor is a road user on the wire. Trajectory, when present, is the
// client's own prediction sampled every TrajectoryDt seconds (index 0 at
// the scene time); when absent the server predicts with the CVTR model, the
// paper's online configuration.
type Actor struct {
	ID      int     `json:"id"`
	Kind    string  `json:"kind"` // "vehicle" | "pedestrian" | "static"
	State   State   `json:"state"`
	Length  float64 `json:"length,omitempty"`
	Width   float64 `json:"width,omitempty"`
	YawRate float64 `json:"yaw_rate,omitempty"`

	Trajectory   []State `json:"trajectory,omitempty"`
	TrajectoryDt float64 `json:"trajectory_dt,omitempty"`
}

// Road is the drivable-area model, a tagged union over the two map
// families of the paper's evaluation.
type Road struct {
	Kind     string        `json:"kind"` // "straight" | "ring"
	Straight *StraightRoad `json:"straight,omitempty"`
	Ring     *RingRoad     `json:"ring,omitempty"`
}

// StraightRoad mirrors roadmap.StraightRoad.
type StraightRoad struct {
	Lanes     int     `json:"lanes"`
	LaneWidth float64 `json:"lane_width"`
	XMin      float64 `json:"x_min"`
	XMax      float64 `json:"x_max"`
}

// RingRoad mirrors roadmap.RingRoad.
type RingRoad struct {
	CenterX float64 `json:"center_x"`
	CenterY float64 `json:"center_y"`
	InnerR  float64 `json:"inner_r"`
	OuterR  float64 `json:"outer_r"`
}

// toState converts a wire state to the internal representation.
func (s State) toState() vehicle.State {
	return vehicle.State{Pos: geom.V(s.X, s.Y), Heading: s.Heading, Speed: s.Speed}
}

// fromState converts an internal state to the wire representation.
func fromState(s vehicle.State) State {
	return State{X: s.Pos.X, Y: s.Pos.Y, Heading: s.Heading, Speed: s.Speed}
}

var kindByName = map[string]actor.Kind{
	"vehicle":    actor.KindVehicle,
	"pedestrian": actor.KindPedestrian,
	"static":     actor.KindStatic,
}

// Encode marshals a scene, stamping the current Version.
func Encode(s Scene) ([]byte, error) {
	s.Version = Version
	return json.Marshal(s)
}

// Decode unmarshals and validates one scene document.
func Decode(data []byte) (Scene, error) {
	var s Scene
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("scene: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// DecodeReader is Decode over a stream (an HTTP request body).
func DecodeReader(r io.Reader) (Scene, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Scene{}, fmt.Errorf("scene: read: %w", err)
	}
	return Decode(data)
}

// Validate checks the version tag and structural invariants without
// materialising the scene.
func (s Scene) Validate() error {
	switch {
	case s.Version == "":
		return fmt.Errorf("scene: missing version (want %q)", Version)
	case s.Version != Version:
		if strings.HasPrefix(s.Version, "iprism.scene/") {
			return fmt.Errorf("scene: unsupported version %q (this build speaks %q)", s.Version, Version)
		}
		return fmt.Errorf("scene: not a scene document: version %q", s.Version)
	}
	switch s.Road.Kind {
	case "straight":
		if s.Road.Straight == nil {
			return fmt.Errorf("scene: road kind %q without straight parameters", s.Road.Kind)
		}
	case "ring":
		if s.Road.Ring == nil {
			return fmt.Errorf("scene: road kind %q without ring parameters", s.Road.Kind)
		}
	default:
		return fmt.Errorf("scene: unknown road kind %q (want straight|ring)", s.Road.Kind)
	}
	for i, a := range s.Actors {
		if _, ok := kindByName[a.Kind]; !ok {
			return fmt.Errorf("scene: actor %d: unknown kind %q (want vehicle|pedestrian|static)", i, a.Kind)
		}
		if len(a.Trajectory) > 0 && a.TrajectoryDt <= 0 {
			return fmt.Errorf("scene: actor %d: trajectory without positive trajectory_dt", i)
		}
	}
	return nil
}

// Materialize converts the wire scene into the internal types an
// sti.Evaluator consumes. trajs[i] is non-zero only for actors carrying an
// explicit trajectory; hasTrajs reports whether any actor did, in which
// case the caller should pass trajs to Evaluate (missing ones CVTR-predicted)
// rather than predicting everything.
func (s Scene) Materialize() (m roadmap.Map, ego vehicle.State, actors []*actor.Actor, trajs []actor.Trajectory, hasTrajs bool, err error) {
	if err = s.Validate(); err != nil {
		return nil, vehicle.State{}, nil, nil, false, err
	}
	switch s.Road.Kind {
	case "straight":
		r := s.Road.Straight
		m, err = roadmap.NewStraightRoad(r.Lanes, r.LaneWidth, r.XMin, r.XMax)
	case "ring":
		r := s.Road.Ring
		m, err = roadmap.NewRingRoad(geom.V(r.CenterX, r.CenterY), r.InnerR, r.OuterR)
	}
	if err != nil {
		return nil, vehicle.State{}, nil, nil, false, fmt.Errorf("scene: road: %w", err)
	}
	ego = s.Ego.toState()
	actors = make([]*actor.Actor, len(s.Actors))
	trajs = make([]actor.Trajectory, len(s.Actors))
	for i, wa := range s.Actors {
		a := &actor.Actor{
			ID:      wa.ID,
			Kind:    kindByName[wa.Kind],
			State:   wa.State.toState(),
			Length:  wa.Length,
			Width:   wa.Width,
			YawRate: wa.YawRate,
		}
		// Default footprints per kind so terse hand-written scenes work.
		if a.Length <= 0 || a.Width <= 0 {
			proto := actor.NewVehicle(0, vehicle.State{})
			if a.Kind == actor.KindPedestrian {
				proto = actor.NewPedestrian(0, vehicle.State{})
			}
			if a.Length <= 0 {
				a.Length = proto.Length
			}
			if a.Width <= 0 {
				a.Width = proto.Width
			}
		}
		actors[i] = a
		if len(wa.Trajectory) > 0 {
			states := make([]vehicle.State, len(wa.Trajectory))
			for j, ws := range wa.Trajectory {
				states[j] = ws.toState()
			}
			trajs[i] = actor.Trajectory{Dt: wa.TrajectoryDt, States: states}
			hasTrajs = true
		}
	}
	return m, ego, actors, trajs, hasTrajs, nil
}

// FromParts builds a wire scene from internal types — the inverse of
// Materialize for scenes without explicit trajectories. Supported map
// families are StraightRoad and RingRoad.
func FromParts(m roadmap.Map, ego vehicle.State, actors []*actor.Actor, t float64) (Scene, error) {
	s := Scene{Version: Version, Time: t, Ego: fromState(ego)}
	switch r := m.(type) {
	case *roadmap.StraightRoad:
		s.Road = Road{Kind: "straight", Straight: &StraightRoad{
			Lanes: r.NumLanes, LaneWidth: r.LaneWidth, XMin: r.XMin, XMax: r.XMax,
		}}
	case *roadmap.RingRoad:
		s.Road = Road{Kind: "ring", Ring: &RingRoad{
			CenterX: r.Center.X, CenterY: r.Center.Y, InnerR: r.InnerR, OuterR: r.OuterR,
		}}
	default:
		return s, fmt.Errorf("scene: unsupported map type %T", m)
	}
	s.Actors = make([]Actor, len(actors))
	for i, a := range actors {
		s.Actors[i] = Actor{
			ID:      a.ID,
			Kind:    a.Kind.String(),
			State:   fromState(a.State),
			Length:  a.Length,
			Width:   a.Width,
			YawRate: a.YawRate,
		}
	}
	return s, nil
}
