package scenario

import (
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// passiveDriver coasts to a stop without steering: used to validate
// front-accident instances (the NPC–NPC crash must happen regardless of the
// ego's behaviour).
type passiveDriver struct{}

func (passiveDriver) Reset() {}
func (passiveDriver) Act(obs sim.Observation) vehicle.Control {
	return vehicle.Control{Accel: -2}
}

// Valid reports whether a scenario instance is usable. For the
// front-accident typology this requires that the two NPCs actually collide
// when the ego stays passive (the paper discarded 190/1000 instances on
// this criterion); every other typology is valid by construction.
func (s Scenario) Valid() bool {
	if s.Typology != FrontAccident {
		return true
	}
	w, err := s.Build()
	if err != nil {
		return false
	}
	out := sim.Run(w, passiveDriver{}, nil, sim.RunConfig{
		MaxSteps:       s.MaxSteps,
		StopOnNPCCrash: true,
	})
	return out.NPCCollision
}

// GenerateValid samples n instances and keeps only the valid ones,
// mirroring the paper's front-accident filtering (1000 sampled, 810 kept).
func GenerateValid(t Typology, n int, seed int64) []Scenario {
	all := Generate(t, n, seed)
	if t != FrontAccident {
		return all
	}
	valid := make([]Scenario, 0, n)
	for _, s := range all {
		if s.Valid() {
			valid = append(valid, s)
		}
	}
	return valid
}
