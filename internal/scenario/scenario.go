// Package scenario generates the safety-critical driving scenarios of the
// paper's evaluation (§IV-B1): five multi-actor typologies derived from the
// NHTSA pre-crash scenario typology report — ghost cut-in, lead cut-in,
// lead slowdown, front accident, rear-end — plus the roundabout cut-in
// extension used in the RIP generalisation study (§V-C).
//
// A typology is a high-level description; a scenario instance fixes its
// hyperparameters (Table I). Instances are sampled uniformly at random from
// per-typology ranges under a deterministic seed, so every suite is
// reproducible.
package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

// Typology enumerates the scenario families.
type Typology int

// The five NHTSA-derived typologies and the roundabout extension.
const (
	GhostCutIn Typology = iota + 1
	LeadCutIn
	LeadSlowdown
	FrontAccident
	RearEnd
	RoundaboutCutIn
)

// Typologies lists the five NHTSA typologies in Table I order.
var Typologies = []Typology{GhostCutIn, LeadCutIn, LeadSlowdown, FrontAccident, RearEnd}

// String implements fmt.Stringer.
func (t Typology) String() string {
	switch t {
	case GhostCutIn:
		return "ghost cut-in"
	case LeadCutIn:
		return "lead cut-in"
	case LeadSlowdown:
		return "lead slowdown"
	case FrontAccident:
		return "front accident"
	case RearEnd:
		return "rear-end"
	case RoundaboutCutIn:
		return "roundabout cut-in"
	default:
		return fmt.Sprintf("Typology(%d)", int(t))
	}
}

// Road geometry shared by the straight-road typologies.
const (
	laneWidth = 3.5
	egoLaneY  = laneWidth / 2     // 1.75
	sideLaneY = 3 * laneWidth / 2 // 5.25
	egoSpeed  = 12.0
)

// Scenario is one concrete instance: a typology plus hyperparameter values.
// Build constructs a fresh simulation world (behaviour state is per-run).
type Scenario struct {
	Typology Typology
	ID       int
	Hyper    map[string]float64
	Dt       float64
	MaxSteps int
	GoalX    float64
}

// Hyperparameters returns the hyperparameter names for a typology, matching
// Table I.
func Hyperparameters(t Typology) []string {
	switch t {
	case GhostCutIn:
		return []string{"distance_same_lane", "distance_lane_change", "speed_lane_change"}
	case LeadCutIn:
		return []string{"event_trigger_distance", "distance_lane_change", "speed_lane_change"}
	case LeadSlowdown:
		return []string{"npc_vehicle_location", "npc_vehicle_speed", "event_trigger_distance"}
	case FrontAccident:
		return []string{"distance_lane_change", "distance_same_lane", "event_trigger_distance"}
	case RearEnd:
		return []string{"npc_vehicle_1_speed", "npc_vehicle_2_speed", "npc_vehicle_1_location"}
	case RoundaboutCutIn:
		return []string{"trigger_arc", "speed_lane_change", "distance_same_lane"}
	default:
		return nil
	}
}

// ranges returns the uniform sampling interval for each hyperparameter.
func ranges(t Typology) map[string][2]float64 {
	switch t {
	case GhostCutIn:
		return map[string][2]float64{
			// How far behind the ego the cutter starts in the side lane.
			"distance_same_lane": {20, 45},
			// How far ahead of the ego it is when it swerves in; the smallest
			// values are side-swipes that braking cannot dodge.
			"distance_lane_change": {0.5, 13},
			// Its speed during and after the cut-in (brake-check range).
			"speed_lane_change": {3, 12},
		}
	case LeadCutIn:
		return map[string][2]float64{
			// Ego-to-cutter gap that triggers the merge.
			"event_trigger_distance": {12, 50},
			// How far ahead of the ego the cutter starts in the side lane.
			"distance_lane_change": {45, 80},
			// Its (slow) speed during the merge.
			"speed_lane_change": {3, 10},
		}
	case LeadSlowdown:
		return map[string][2]float64{
			// Initial gap to the lead.
			"npc_vehicle_location": {8, 50},
			// Lead cruise speed.
			"npc_vehicle_speed": {5, 12},
			// Ego-to-lead gap that triggers the hard stop.
			"event_trigger_distance": {8, 40},
		}
	case FrontAccident:
		return map[string][2]float64{
			// Longitudinal position at which the merger swerves.
			"distance_lane_change": {60, 120},
			// Initial gap between the two NPCs.
			"distance_same_lane": {0, 14},
			// Initial distance of the NPC pair ahead of the ego.
			"event_trigger_distance": {45, 90},
		}
	case RearEnd:
		return map[string][2]float64{
			// Rammer speed approaching from behind.
			"npc_vehicle_1_speed": {8, 26},
			// Lead speed; slow leads pin the ego down (unavoidable band),
			// faster leads leave acceleration as a viable escape.
			"npc_vehicle_2_speed": {6, 20},
			// Rammer start distance behind the ego.
			"npc_vehicle_1_location": {20, 80},
		}
	case RoundaboutCutIn:
		return map[string][2]float64{
			// Arc gap (radians) behind the ego at which the cut fires.
			"trigger_arc": {0.15, 0.5},
			// Cutter speed.
			"speed_lane_change": {7, 12},
			// Cutter start arc behind the ego.
			"distance_same_lane": {0.6, 1.5},
		}
	default:
		return nil
	}
}

// Generate samples n scenario instances of the typology under the seed.
func Generate(t Typology, n int, seed int64) []Scenario {
	rng := rand.New(rand.NewSource(seed))
	rs := ranges(t)
	names := Hyperparameters(t)
	out := make([]Scenario, n)
	for i := range out {
		h := make(map[string]float64, len(names))
		for _, name := range names {
			r := rs[name]
			h[name] = r[0] + rng.Float64()*(r[1]-r[0])
		}
		out[i] = Scenario{
			Typology: t,
			ID:       i,
			Hyper:    h,
			Dt:       0.1,
			MaxSteps: 400,
			GoalX:    300,
		}
	}
	return out
}

// Build constructs a fresh world for the scenario. Each call returns
// independent actors and behaviour state, so a scenario can be replayed
// under different agents.
func (s Scenario) Build() (*sim.World, error) {
	switch s.Typology {
	case GhostCutIn:
		return s.buildGhostCutIn()
	case LeadCutIn:
		return s.buildLeadCutIn()
	case LeadSlowdown:
		return s.buildLeadSlowdown()
	case FrontAccident:
		return s.buildFrontAccident()
	case RearEnd:
		return s.buildRearEnd()
	case RoundaboutCutIn:
		return s.buildRoundabout()
	default:
		return nil, fmt.Errorf("scenario: unknown typology %d", int(s.Typology))
	}
}

func straightRoad() *roadmap.StraightRoad {
	return roadmap.MustStraightRoad(2, laneWidth, -200, 1000)
}

func egoStart() vehicle.State {
	return vehicle.State{Pos: geom.V(0, egoLaneY), Speed: egoSpeed}
}

func (s Scenario) world(m roadmap.Map, ego vehicle.State, actors []*actor.Actor, behaviors []sim.Behavior) (*sim.World, error) {
	return sim.NewWorld(m, ego, geom.V(s.GoalX, egoLaneY), s.Dt, actors, behaviors)
}

// buildGhostCutIn: the cutter starts behind the ego in the side lane,
// overtakes at speed, and swerves into the ego lane once slightly ahead —
// a side threat invisible to frontal metrics until it is too late.
func (s Scenario) buildGhostCutIn() (*sim.World, error) {
	startBehind := s.Hyper["distance_same_lane"]
	cutAhead := s.Hyper["distance_lane_change"]
	cutSpeed := s.Hyper["speed_lane_change"]
	// Modest overtaking margin: the cutter rides alongside before swerving,
	// so it is still fast (and close) when the manoeuvre starts.
	approach := egoSpeed + 4

	cutter := actor.NewVehicle(1, vehicle.State{Pos: geom.V(-startBehind, sideLaneY), Speed: approach})
	b := &sim.CutIn{
		FromY: sideLaneY, ToY: egoLaneY,
		CruiseSpeed: approach, CutSpeed: cutSpeed,
		TriggerDX: cutAhead, TriggerWhenAhead: true,
	}
	return s.world(straightRoad(), egoStart(), []*actor.Actor{cutter}, []sim.Behavior{b})
}

// buildLeadCutIn: the cutter waits ahead in the side lane and merges slowly
// into the ego lane as the ego approaches.
func (s Scenario) buildLeadCutIn() (*sim.World, error) {
	trigger := s.Hyper["event_trigger_distance"]
	startAhead := s.Hyper["distance_lane_change"]
	cutSpeed := s.Hyper["speed_lane_change"]

	cutter := actor.NewVehicle(1, vehicle.State{Pos: geom.V(startAhead, sideLaneY), Speed: cutSpeed})
	b := &sim.CutIn{
		FromY: sideLaneY, ToY: egoLaneY,
		CruiseSpeed: cutSpeed, CutSpeed: cutSpeed,
		TriggerDX: trigger, TriggerWhenAhead: false,
	}
	return s.world(straightRoad(), egoStart(), []*actor.Actor{cutter}, []sim.Behavior{b})
}

// buildLeadSlowdown: a lead in the ego lane brakes to a stop once the ego
// closes within the trigger gap.
func (s Scenario) buildLeadSlowdown() (*sim.World, error) {
	location := s.Hyper["npc_vehicle_location"]
	speed := s.Hyper["npc_vehicle_speed"]
	trigger := s.Hyper["event_trigger_distance"]

	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(location, egoLaneY), Speed: speed})
	b := &sim.Slowdown{TargetY: egoLaneY, CruiseSpeed: speed, TriggerDX: trigger, Decel: 8}
	return s.world(straightRoad(), egoStart(), []*actor.Actor{lead}, []sim.Behavior{b})
}

// buildFrontAccident: two NPCs ahead of the ego in different lanes; the
// side-lane NPC merges into the ego-lane NPC, wrecking both ahead of the
// ego.
func (s Scenario) buildFrontAccident() (*sim.World, error) {
	mergeX := s.Hyper["distance_lane_change"]
	gap := s.Hyper["distance_same_lane"]
	ahead := s.Hyper["event_trigger_distance"]

	speed := 11.0
	inLane := actor.NewVehicle(1, vehicle.State{Pos: geom.V(ahead, egoLaneY), Speed: speed})
	merger := actor.NewVehicle(2, vehicle.State{Pos: geom.V(ahead+gap-4, sideLaneY), Speed: speed})
	bs := []sim.Behavior{
		&sim.Cruise{TargetY: egoLaneY, TargetSpeed: speed},
		&sim.Merger{FromY: sideLaneY, ToY: egoLaneY, TargetSpeed: speed, TriggerX: mergeX},
	}
	return s.world(straightRoad(), egoStart(), []*actor.Actor{inLane, merger}, bs)
}

// buildRearEnd: a slow lead pins the ego down while a fast follower tracks
// the ego's lane from behind and rams it — the typology braking cannot fix.
func (s Scenario) buildRearEnd() (*sim.World, error) {
	ramSpeed := s.Hyper["npc_vehicle_1_speed"]
	leadSpeed := s.Hyper["npc_vehicle_2_speed"]
	ramBehind := s.Hyper["npc_vehicle_1_location"]

	// The lead starts with enough headroom that acceleration is a viable
	// escape for moderately fast rammers — the §V-C extension's premise.
	lead := actor.NewVehicle(1, vehicle.State{Pos: geom.V(60, egoLaneY), Speed: leadSpeed})
	rammer := actor.NewVehicle(2, vehicle.State{Pos: geom.V(-ramBehind, egoLaneY), Speed: ramSpeed})
	// A side-lane convoy blocks the lateral escape, per the typology
	// description ("multiple actors ... in multiple lanes").
	side := actor.NewVehicle(3, vehicle.State{Pos: geom.V(5, sideLaneY), Speed: leadSpeed})
	bs := []sim.Behavior{
		&sim.Cruise{TargetY: egoLaneY, TargetSpeed: leadSpeed},
		&sim.Follower{TargetSpeed: ramSpeed, TrackEgoLane: true},
		&sim.Cruise{TargetY: sideLaneY, TargetSpeed: leadSpeed},
	}
	return s.world(straightRoad(), egoStart(), []*actor.Actor{lead, rammer, side}, bs)
}

// buildRoundabout: ego circulates a ring road; a faster actor approaches on
// the inner radius and squeezes outward into the ego's path.
func (s Scenario) buildRoundabout() (*sim.World, error) {
	ring, err := roadmap.NewRingRoad(geom.V(0, 0), 18, 27)
	if err != nil {
		return nil, err
	}
	triggerArc := s.Hyper["trigger_arc"]
	cutSpeed := s.Hyper["speed_lane_change"]
	startArc := s.Hyper["distance_same_lane"]

	egoRadius := 24.8
	innerRadius := 20.5
	egoPos, egoHeading := ring.PoseAt(egoRadius, 0)
	ego := vehicle.State{Pos: egoPos, Heading: egoHeading, Speed: 8}

	cutPos, cutHeading := ring.PoseAt(innerRadius, -startArc)
	cutter := actor.NewVehicle(1, vehicle.State{Pos: cutPos, Heading: cutHeading, Speed: cutSpeed + 3})
	b := &sim.RingCruise{
		Radius: innerRadius, TargetSpeed: cutSpeed + 3,
		CutRadius: egoRadius, TriggerArc: triggerArc, CutIn: true,
	}
	w, err := sim.NewWorld(ring, ego, geom.V(math.Inf(1), 0), s.Dt, []*actor.Actor{cutter}, []sim.Behavior{b})
	if err != nil {
		return nil, err
	}
	return w, nil
}
