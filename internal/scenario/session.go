package scenario

import (
	"fmt"
	"math"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

// SessionTick is one observed instant of a recorded monitoring session: the
// ego state and every actor's state at that tick. Trajectories are not
// recorded — replayers forecast them with the CVTR model exactly as the
// online monitor does, so a replayed tick scores identically to the live
// session it stands in for.
type SessionTick struct {
	Ego    vehicle.State
	Actors []*actor.Actor
}

// sessionDt is the tick period of every recorded session fixture (10 Hz,
// the control rate of the paper's deployment story §V-A).
const sessionDt = 0.1

// Stop-and-go queue pulse: creepPulse creep ticks at creepSpeed, then a
// hold, every creepCycle ticks. Positions are a pure function of the tick
// index (no accumulation), so a trace slice replays identically from any
// offset.
const (
	creepSpeed = 0.4
	creepCycle = 10
	creepPulse = 3
)

// creepTicks returns how many of the first t ticks fell inside a creep
// pulse of the stop-and-go cycle.
func creepTicks(t int) int {
	k := t % creepCycle
	if k > creepPulse {
		k = creepPulse
	}
	return creepPulse*(t/creepCycle) + k
}

// stopGoActor is one recorded vehicle of the stop-and-go fixture: its state
// at tick 0 plus the creep phase of its rank (the cycle offset at which its
// pulse starts), or -1 for constant motion at its recorded speed.
type stopGoActor struct {
	st    vehicle.State
	phase int
}

// place advances a to tick t. Ranks creep creepPulse ticks out of every
// creepCycle, offset by their phase, and report speed 0 while held — the
// way a queue reads off a recorded odometry stream.
func (a stopGoActor) place(t int) vehicle.State {
	st := a.st
	if a.phase < 0 {
		st.Pos.X += st.Speed * sessionDt * float64(t)
		return st
	}
	shift := creepCycle - a.phase
	st.Pos.X += creepSpeed * sessionDt * float64(creepTicks(t+shift)-creepTicks(shift))
	if (t+shift)%creepCycle >= creepPulse {
		st.Speed = 0
	} else {
		st.Speed = creepSpeed
	}
	return st
}

// StopAndGoSession records a stop-and-go monitoring session on a four-lane
// straight road: the ego is stopped at a yield (bitwise-identical state at
// every tick — the case the warm-start engine exists for), boxed in by a
// lead queue and a tailgater, while through-traffic streams past in the
// outer lanes. The queue moves the way a real queue does — short creep
// pulses separated by holds (creepPulse of every creepCycle ticks), frozen
// bitwise-identical in between — and everything advances by pure
// arithmetic from the tick index (no RNG), so every call with the same
// arguments returns the identical trace. n must be at least 12 (the
// canonical session12 workload); extra actors join the far ranks of the
// lead queue. ticks must be positive.
func StopAndGoSession(n, ticks int) (roadmap.Map, []SessionTick) {
	if n < 12 {
		panic(fmt.Sprintf("scenario: StopAndGoSession needs n >= 12, got %d", n))
	}
	if ticks < 1 {
		panic(fmt.Sprintf("scenario: StopAndGoSession needs ticks >= 1, got %d", ticks))
	}
	m := roadmap.MustStraightRoad(4, laneWidth, -120, 1200)
	lanes := [...]float64{laneWidth / 2, 3 * laneWidth / 2, 5 * laneWidth / 2, 7 * laneWidth / 2}
	ego := vehicle.State{Pos: geom.V(0, lanes[1])} // stopped at the yield line

	// The twelve canonical actors: a creeping lead queue dead ahead, a
	// stopped left-lane rank pinning the inside, a stopped tailgater, a
	// right-lane rank queued alongside (creeping on the opposite half of
	// the cycle — neighbouring ranks in a jam do not pulse in unison), and
	// a free-flow stream escaping the jam in the far lane.
	base := []stopGoActor{
		{vehicle.State{Pos: geom.V(10, lanes[1]), Speed: creepSpeed}, 0},  // lead queue
		{vehicle.State{Pos: geom.V(16, lanes[1]), Speed: creepSpeed}, 0},  // second in queue
		{vehicle.State{Pos: geom.V(22, lanes[1]), Speed: creepSpeed}, 0},  // third in queue
		{vehicle.State{Pos: geom.V(9, lanes[0])}, -1},                     // left-lane rank, stopped
		{vehicle.State{Pos: geom.V(15, lanes[0])}, -1},                    // left-lane rank
		{vehicle.State{Pos: geom.V(-8, lanes[1])}, -1},                    // tailgater, stopped
		{vehicle.State{Pos: geom.V(-18, lanes[2]), Speed: creepSpeed}, 5}, // right-lane rank
		{vehicle.State{Pos: geom.V(-11, lanes[2]), Speed: creepSpeed}, 5}, // right-lane rank
		{vehicle.State{Pos: geom.V(-4, lanes[2]), Speed: creepSpeed}, 5},  // right-lane rank
		{vehicle.State{Pos: geom.V(-75, lanes[3]), Speed: 10}, -1},        // far-lane stream
		{vehicle.State{Pos: geom.V(-45, lanes[3]), Speed: 10}, -1},        // far-lane stream
		{vehicle.State{Pos: geom.V(-15, lanes[3]), Speed: 10}, -1},        // far-lane stream
	}
	for i := 12; i < n; i++ {
		// Extra actors extend the lead queue beyond the horizon's reach,
		// cycling lanes 0/1 every 6 m from x = 30.
		k := i - 12
		base = append(base, stopGoActor{vehicle.State{
			Pos:   geom.V(30+float64(k/2)*6, lanes[k%2]),
			Speed: creepSpeed,
		}, 0})
	}

	out := make([]SessionTick, ticks)
	for t := 0; t < ticks; t++ {
		actors := make([]*actor.Actor, len(base))
		for i, a := range base {
			actors[i] = actor.NewVehicle(i+1, a.place(t))
		}
		out[t] = SessionTick{Ego: ego, Actors: actors}
	}
	return m, out
}

// RingSession records a roundabout monitoring session: the ego is parked on
// the outer edge of the ring (yielding at an entry) while a platoon of
// vehicles circulates past at constant angular velocity. All motion is
// arithmetic in the polar angle, so the trace is deterministic. n is the
// circulating-platoon size (at least 2); ticks must be positive.
func RingSession(n, ticks int) (roadmap.Map, []SessionTick) {
	if n < 2 {
		panic(fmt.Sprintf("scenario: RingSession needs n >= 2, got %d", n))
	}
	if ticks < 1 {
		panic(fmt.Sprintf("scenario: RingSession needs ticks >= 1, got %d", ticks))
	}
	ring, err := roadmap.NewRingRoad(geom.V(0, 0), 18, 30)
	if err != nil {
		panic(err)
	}
	mid := ring.MidRadius()
	egoPos, egoHeading := ring.PoseAt(ring.OuterR-1.5, 0)
	ego := vehicle.State{Pos: egoPos, Heading: egoHeading} // parked at the entry

	const speed = 7.0
	omega := speed / mid // rad/s of the circulating platoon
	out := make([]SessionTick, ticks)
	for t := 0; t < ticks; t++ {
		actors := make([]*actor.Actor, n)
		for i := 0; i < n; i++ {
			// Platoon members are spread evenly around the ring and advance
			// together; recomputing the angle from the tick index keeps the
			// trace independent of iteration order.
			angle := float64(i)*(2*math.Pi/float64(n)) + omega*sessionDt*float64(t)
			pos, heading := ring.PoseAt(mid, angle)
			actors[i] = actor.NewVehicle(i+1, vehicle.State{Pos: pos, Heading: heading, Speed: speed})
		}
		out[t] = SessionTick{Ego: ego, Actors: actors}
	}
	return ring, out
}

// UrbanCrushSession records a session in the UrbanCrush fixture with the
// crush at a standstill tick: the ego is wedged stationary while every
// other vehicle creeps forward from its UrbanCrush position at one tenth of
// its fixture speed (stop-and-go traffic, not free flow). It is the
// 64-actor segmented-mask trace of the warm-vs-cold differential suite.
// n has the same floor as UrbanCrush (12); ticks must be positive.
func UrbanCrushSession(n, ticks int) (roadmap.Map, []SessionTick) {
	if ticks < 1 {
		panic(fmt.Sprintf("scenario: UrbanCrushSession needs ticks >= 1, got %d", ticks))
	}
	m, ego, actors := UrbanCrush(n)
	ego.Speed = 0 // wedged at a standstill; the crush inches around it
	base := make([]vehicle.State, len(actors))
	for i, a := range actors {
		base[i] = a.State
		base[i].Speed /= 10
	}
	return m, advanceSession(ego, base, ticks)
}

// advanceSession replays base forward: tick t places actor i at its base
// position advanced by t·dt along its heading at its (constant) speed. The
// per-tick positions are computed from the tick index, not accumulated, so
// a trace slice can be replayed from any offset without drift.
func advanceSession(ego vehicle.State, base []vehicle.State, ticks int) []SessionTick {
	out := make([]SessionTick, ticks)
	for t := 0; t < ticks; t++ {
		actors := make([]*actor.Actor, len(base))
		for i, st := range base {
			st.Pos.X += st.Speed * sessionDt * float64(t) // headings are 0 in every straight-road fixture
			actors[i] = actor.NewVehicle(i+1, st)
		}
		out[t] = SessionTick{Ego: ego, Actors: actors}
	}
	return out
}
