package scenario

import (
	"math"
	"testing"

	"repro/internal/agent"
	"repro/internal/sim"
	"repro/internal/vehicle"
)

func TestTypologyString(t *testing.T) {
	tests := []struct {
		give Typology
		want string
	}{
		{GhostCutIn, "ghost cut-in"},
		{LeadCutIn, "lead cut-in"},
		{LeadSlowdown, "lead slowdown"},
		{FrontAccident, "front accident"},
		{RearEnd, "rear-end"},
		{RoundaboutCutIn, "roundabout cut-in"},
		{Typology(42), "Typology(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestHyperparametersMatchTableI(t *testing.T) {
	want := map[Typology][]string{
		GhostCutIn:    {"distance_same_lane", "distance_lane_change", "speed_lane_change"},
		LeadCutIn:     {"event_trigger_distance", "distance_lane_change", "speed_lane_change"},
		LeadSlowdown:  {"npc_vehicle_location", "npc_vehicle_speed", "event_trigger_distance"},
		FrontAccident: {"distance_lane_change", "distance_same_lane", "event_trigger_distance"},
		RearEnd:       {"npc_vehicle_1_speed", "npc_vehicle_2_speed", "npc_vehicle_1_location"},
	}
	for ty, names := range want {
		got := Hyperparameters(ty)
		if len(got) != len(names) {
			t.Fatalf("%v: %v", ty, got)
		}
		for i := range names {
			if got[i] != names[i] {
				t.Errorf("%v hyper %d = %q, want %q", ty, i, got[i], names[i])
			}
		}
	}
	if Hyperparameters(Typology(0)) != nil {
		t.Error("unknown typology should have no hyperparameters")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GhostCutIn, 10, 42)
	b := Generate(GhostCutIn, 10, 42)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		for k, v := range a[i].Hyper {
			if b[i].Hyper[k] != v {
				t.Fatalf("instance %d hyper %q differs: %v vs %v", i, k, v, b[i].Hyper[k])
			}
		}
	}
	c := Generate(GhostCutIn, 10, 43)
	same := true
	for k, v := range a[0].Hyper {
		if c[0].Hyper[k] != v {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different instances")
	}
}

func TestGenerateRespectsRanges(t *testing.T) {
	for _, ty := range append(Typologies, RoundaboutCutIn) {
		rs := ranges(ty)
		for _, s := range Generate(ty, 50, 7) {
			for name, r := range rs {
				v, ok := s.Hyper[name]
				if !ok {
					t.Fatalf("%v missing hyper %q", ty, name)
				}
				if v < r[0] || v > r[1] {
					t.Errorf("%v hyper %q = %v outside [%v, %v]", ty, name, v, r[0], r[1])
				}
			}
		}
	}
}

func TestBuildAllTypologies(t *testing.T) {
	for _, ty := range append(Typologies, RoundaboutCutIn) {
		t.Run(ty.String(), func(t *testing.T) {
			for _, s := range Generate(ty, 5, 11) {
				w, err := s.Build()
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				if len(w.Actors) == 0 {
					t.Error("no actors")
				}
				if len(w.Actors) != len(w.Behaviors) {
					t.Error("actors/behaviors mismatch")
				}
				// The world must be steppable.
				w.Advance(vehicle.Control{})
			}
		})
	}
}

func TestBuildUnknownTypology(t *testing.T) {
	s := Scenario{Typology: Typology(99)}
	if _, err := s.Build(); err == nil {
		t.Error("unknown typology should error")
	}
}

func TestBuildIsIndependentPerCall(t *testing.T) {
	s := Generate(GhostCutIn, 1, 3)[0]
	w1, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating one world must not affect the other.
	w1.Actors[0].State.Speed = 0
	if w2.Actors[0].State.Speed == 0 {
		t.Error("worlds share actor state")
	}
}

func TestFrontAccidentValidation(t *testing.T) {
	suite := GenerateValid(FrontAccident, 60, 42)
	if len(suite) == 0 {
		t.Fatal("no valid front-accident scenarios")
	}
	frac := float64(len(suite)) / 60
	if frac < 0.3 || frac > 0.99 {
		t.Errorf("valid fraction = %.2f, want a nontrivial filter (paper kept 81%%)", frac)
	}
	// Every kept instance really produces an NPC crash.
	for _, s := range suite[:3] {
		if !s.Valid() {
			t.Error("kept instance fails validation on recheck")
		}
	}
}

func TestGenerateValidPassesThroughOtherTypologies(t *testing.T) {
	if got := len(GenerateValid(GhostCutIn, 10, 1)); got != 10 {
		t.Errorf("GenerateValid(ghost) = %d, want 10", got)
	}
}

// Calibration check: the LBC baseline must crash on a substantial fraction
// of ghost cut-in and rear-end scenarios, a moderate fraction of lead
// cut-in and lead slowdown scenarios, and never in front-accident scenarios
// — Table I's qualitative shape.
func TestBaselineCrashRateShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	const n = 60
	rates := make(map[Typology]float64, len(Typologies))
	for _, ty := range Typologies {
		suite := GenerateValid(ty, n, 2024)
		crashes := 0
		for _, s := range suite {
			w, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			out := sim.Run(w, agent.NewLBC(agent.DefaultLBCConfig()), nil,
				sim.RunConfig{MaxSteps: s.MaxSteps})
			if out.Collision {
				crashes++
			}
		}
		rates[ty] = float64(crashes) / float64(len(suite))
		t.Logf("%-15s crash rate = %.2f (%d/%d)", ty, rates[ty], crashes, len(suite))
	}
	if rates[FrontAccident] != 0 {
		t.Errorf("front accident crash rate = %.2f, want 0 (paper: 0/810)", rates[FrontAccident])
	}
	if rates[GhostCutIn] < 0.25 || rates[GhostCutIn] > 0.8 {
		t.Errorf("ghost cut-in crash rate = %.2f, want ~0.52", rates[GhostCutIn])
	}
	if rates[RearEnd] < 0.5 || rates[RearEnd] > 0.95 {
		t.Errorf("rear-end crash rate = %.2f, want ~0.77", rates[RearEnd])
	}
	if rates[LeadCutIn] < 0.05 || rates[LeadCutIn] > 0.45 {
		t.Errorf("lead cut-in crash rate = %.2f, want ~0.17", rates[LeadCutIn])
	}
	if rates[LeadSlowdown] < 0.03 || rates[LeadSlowdown] > 0.4 {
		t.Errorf("lead slowdown crash rate = %.2f, want ~0.12", rates[LeadSlowdown])
	}
	if !(rates[RearEnd] > rates[GhostCutIn] && rates[GhostCutIn] > rates[LeadCutIn]) {
		t.Errorf("crash-rate ordering violated: %+v", rates)
	}
	if math.IsNaN(rates[GhostCutIn]) {
		t.Error("NaN rate")
	}
}
