package scenario

import "testing"

func TestUrbanCrushShape(t *testing.T) {
	for _, n := range []int{12, 64, 70, 128, 130} {
		m, ego, actors := UrbanCrush(n)
		if len(actors) != n {
			t.Fatalf("UrbanCrush(%d) returned %d actors", n, len(actors))
		}
		ids := map[int]bool{}
		for _, a := range actors {
			if ids[a.ID] {
				t.Fatalf("UrbanCrush(%d): duplicate actor id %d", n, a.ID)
			}
			ids[a.ID] = true
			if !m.Drivable(a.State.Pos) {
				t.Fatalf("UrbanCrush(%d): actor %d off-road at %v", n, a.ID, a.State.Pos)
			}
		}
		if !m.Drivable(ego.Pos) {
			t.Fatalf("UrbanCrush(%d): ego off-road at %v", n, ego.Pos)
		}
		// The dead-ahead lead blocker is by construction the last actor:
		// same lane as the ego, close and slow.
		last := actors[n-1].State
		if last.Pos.Y != ego.Pos.Y || last.Pos.X <= 0 || last.Pos.X > 40 || last.Speed >= ego.Speed {
			t.Fatalf("UrbanCrush(%d): last actor %+v is not the dead-ahead lead blocker", n, last)
		}
	}
}

func TestUrbanCrushDeterministic(t *testing.T) {
	_, ego1, a1 := UrbanCrush(64)
	_, ego2, a2 := UrbanCrush(64)
	if ego1 != ego2 {
		t.Fatalf("ego differs across calls: %+v vs %+v", ego1, ego2)
	}
	for i := range a1 {
		if a1[i].State != a2[i].State || a1[i].ID != a2[i].ID {
			t.Fatalf("actor %d differs across calls", i)
		}
	}
}

func TestUrbanCrushTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UrbanCrush(5) did not panic")
		}
	}()
	UrbanCrush(5)
}
