package scenario

import (
	"fmt"

	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/vehicle"
)

// UrbanCrush builds the crowd-scale bench fixture: an urban-intersection
// crush on a four-lane road where the ego is wedged between a slow crush
// ring (lead vehicles, lane pincers, tailgaters) and ranks of stop-and-go
// traffic filling every lane ahead, with a rear platoon closing from
// behind. It is the dense64/dense128 workload of cmd/iprism-bench and the
// 64+-actor scene class of the segmented-mask differential suites.
//
// Placement is pure arithmetic — no RNG — so every call with the same n
// returns the identical scene. The crush ring is deliberately LAST in the
// actor order: under the retired single-word mask engine actors past the
// 63rd had no world bit, so ordering the scene's most critical blockers at
// the tail put them exactly on the spillover fallback path this fixture
// exists to measure.
//
// n must be at least 12 (the crush ring plus one filler rank).
func UrbanCrush(n int) (roadmap.Map, vehicle.State, []*actor.Actor) {
	if n < 12 {
		panic(fmt.Sprintf("scenario: UrbanCrush needs n >= 12, got %d", n))
	}
	m := roadmap.MustStraightRoad(4, laneWidth, -120, 1200)
	lanes := [...]float64{laneWidth / 2, 3 * laneWidth / 2, 5 * laneWidth / 2, 7 * laneWidth / 2}
	ego := vehicle.State{Pos: geom.V(0, lanes[1]), Speed: 12}

	// The crush ring: the actors that actually carve the ego's reach-tube.
	// The ego has a two-lane corridor (lanes 0 and 1) running deep to the
	// slow front rank at x=30, so the base tube is a large state set every
	// world shares. The right lane is sealed by REDUNDANT pacing pincers
	// (twins too close together for the ego to slot between), the rear is
	// closed by doubled tailgaters, and the left-lane front-rank vehicle is
	// backed by its own straggler — removing any one of those changes
	// (next to) nothing, so their counterfactual worlds collapse onto the
	// base tube. The dead-ahead lead, the very last actor in the scene, is
	// the one exclusive blocker: its world opens the corridor past x=30.
	// Under the old single-word engine that actor spilled past bit 63 and
	// cost one *full* legacy re-expansion of base corridor plus opened
	// corridor — the fallback cliff this fixture exists to measure, which
	// segmented masks amortize to the opened stretch alone.
	ring := []vehicle.State{
		{Pos: geom.V(5, lanes[2]), Speed: 12},   // right-lane pacing pincer
		{Pos: geom.V(10, lanes[2]), Speed: 12},  // right-lane twin (gap too short to enter)
		{Pos: geom.V(8, lanes[3]), Speed: 12},   // far-lane screen
		{Pos: geom.V(-18, lanes[1]), Speed: 14}, // tailgater punishing braking states
		{Pos: geom.V(-24, lanes[1]), Speed: 14}, // tailgater's own backup
		{Pos: geom.V(-20, lanes[0]), Speed: 14}, // rear-left closer
		{Pos: geom.V(-26, lanes[0]), Speed: 14}, // rear-left backup
		{Pos: geom.V(30, lanes[0]), Speed: 3},   // left-lane front rank
		{Pos: geom.V(33, lanes[0]), Speed: 3},   // left-lane front rank's backup
		{Pos: geom.V(33, lanes[1]), Speed: 3},   // second row tight behind the lead
		{Pos: geom.V(30, lanes[1]), Speed: 3},   // dead-ahead lead blocker
	}

	actors := make([]*actor.Actor, 0, n)
	// Fillers: ranks of stop-and-go traffic ahead across all four lanes
	// (rows every 7 m from x = 60, beyond the horizon's reach so they tally
	// as present-but-never-blocking crowd), interleaved with a rear platoon
	// every fourth vehicle (rows every 9 m behind x = -28). Speeds cycle so
	// neighbouring ranks drift rather than move in lockstep.
	fillers := n - len(ring)
	fwd, rear := 0, 0
	for i := 0; i < fillers; i++ {
		var st vehicle.State
		if i%4 == 3 {
			st = vehicle.State{
				Pos:   geom.V(-28-float64(rear/4)*9, lanes[rear%4]),
				Speed: 13 + float64(rear%3),
			}
			rear++
		} else {
			st = vehicle.State{
				Pos:   geom.V(60+float64(fwd/4)*7, lanes[fwd%4]),
				Speed: 5 + float64(fwd%3),
			}
			fwd++
		}
		actors = append(actors, actor.NewVehicle(i+1, st))
	}
	for j, st := range ring {
		actors = append(actors, actor.NewVehicle(fillers+j+1, st))
	}
	return m, ego, actors
}
