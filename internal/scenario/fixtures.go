package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/scene"
	"repro/internal/vehicle"
)

// ParseTypology resolves a typology from a CLI-friendly name: display names
// ("lead slowdown") and separator-free or hyphen/underscore variants
// ("lead-slowdown", "ghost_cut_in") all match.
func ParseTypology(name string) (Typology, error) {
	want := normalizeTypology(name)
	known := make([]string, 0, len(typologyByName))
	for display, ty := range typologyByName {
		if normalizeTypology(display) == want {
			return ty, nil
		}
		known = append(known, display)
	}
	sort.Strings(known)
	return 0, fmt.Errorf("scenario: unknown typology %q (one of: %s)", name, strings.Join(known, ", "))
}

// normalizeTypology strips everything but letters and digits, lowercased.
func normalizeTypology(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Fixtures turns sampled scenario instances into wire-format scenes for
// driving the scoring service (cmd/iprism-loadgen, verify.sh smoke). Each
// scenario is built, advanced warmupSteps with a coasting ego (zero
// control) so the threat manoeuvres are under way, then snapshotted.
//
// n scenes are produced per call: scenario i of ceil(n / len(warmups))
// sampled instances is snapshotted at every warmup depth in warmups,
// giving a mix of benign early frames and critical mid-manoeuvre frames.
func Fixtures(t Typology, n int, seed int64) ([]scene.Scene, error) {
	if n <= 0 {
		return nil, fmt.Errorf("scenario: fixtures n must be positive, got %d", n)
	}
	// Snapshot depths in steps of the scenario Dt (0.1s): 0.5s through 8s,
	// spanning scenario onset, the developing manoeuvre and the critical
	// window every typology reaches by its final seconds.
	warmups := []int{5, 20, 40, 60, 80}
	perScenario := len(warmups)
	instances := Generate(t, (n+perScenario-1)/perScenario, seed)
	out := make([]scene.Scene, 0, n)
	for _, inst := range instances {
		w, err := inst.Build()
		if err != nil {
			return nil, fmt.Errorf("scenario: fixture build %s #%d: %w", t, inst.ID, err)
		}
		prev := 0
		for _, steps := range warmups {
			for s := prev; s < steps; s++ {
				w.Advance(vehicle.Control{})
			}
			prev = steps
			obs := w.Observe()
			sc, err := scene.FromParts(obs.Map, obs.Ego, obs.Actors, obs.Time)
			if err != nil {
				return nil, fmt.Errorf("scenario: fixture snapshot %s #%d: %w", t, inst.ID, err)
			}
			out = append(out, sc)
			if len(out) == n {
				return out, nil
			}
		}
	}
	return out, nil
}
