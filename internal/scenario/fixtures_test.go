package scenario

import (
	"testing"

	"repro/internal/scene"
)

func TestFixturesCountAndValidity(t *testing.T) {
	for _, typ := range append(append([]Typology{}, Typologies...), RoundaboutCutIn) {
		scenes, err := Fixtures(typ, 7, 42)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if len(scenes) != 7 {
			t.Fatalf("%s: got %d scenes, want 7", typ, len(scenes))
		}
		for i, sc := range scenes {
			if err := sc.Validate(); err != nil {
				t.Errorf("%s scene %d invalid: %v", typ, i, err)
			}
			if _, _, _, _, _, err := sc.Materialize(); err != nil {
				t.Errorf("%s scene %d does not materialize: %v", typ, i, err)
			}
		}
		// Warmup depths differ, so snapshot times must not all coincide.
		if scenes[0].Time == scenes[1].Time {
			t.Errorf("%s: consecutive fixtures share time %v", typ, scenes[0].Time)
		}
	}
}

func TestFixturesDeterministic(t *testing.T) {
	a, err := Fixtures(LeadSlowdown, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fixtures(LeadSlowdown, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		ra, _ := scene.Encode(a[i])
		rb, _ := scene.Encode(b[i])
		if string(ra) != string(rb) {
			t.Fatalf("fixture %d differs across same-seed runs", i)
		}
	}
}
