package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSuiteSaveLoadRoundTrip(t *testing.T) {
	scns := Generate(GhostCutIn, 5, 3)
	scns = append(scns, Generate(RearEnd, 5, 4)...)
	path := filepath.Join(t.TempDir(), "suite.json")
	if err := SaveSuite(scns, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSuite(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(scns) {
		t.Fatalf("loaded %d, want %d", len(loaded), len(scns))
	}
	for i := range scns {
		if loaded[i].Typology != scns[i].Typology || loaded[i].ID != scns[i].ID {
			t.Fatalf("instance %d identity mismatch", i)
		}
		for k, v := range scns[i].Hyper {
			if loaded[i].Hyper[k] != v {
				t.Fatalf("instance %d hyper %q = %v, want %v", i, k, loaded[i].Hyper[k], v)
			}
		}
		// Round-tripped instances must build identical worlds.
		w1, err := scns[i].Build()
		if err != nil {
			t.Fatal(err)
		}
		w2, err := loaded[i].Build()
		if err != nil {
			t.Fatal(err)
		}
		if w1.Actors[0].State != w2.Actors[0].State {
			t.Fatalf("instance %d builds differ", i)
		}
	}
}

func TestLoadSuiteErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadSuite(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSuite(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	unknown := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"scenarios":[{"typology":"warp drive","dtSeconds":0.1,"maxSteps":10}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSuite(unknown); err == nil {
		t.Error("unknown typology accepted")
	}
	missingHyper := filepath.Join(dir, "nohyper.json")
	if err := os.WriteFile(missingHyper, []byte(`{"scenarios":[{"typology":"rear-end","dtSeconds":0.1,"maxSteps":10,"hyperparameters":{}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSuite(missingHyper); err == nil {
		t.Error("missing hyperparameters accepted")
	}
}

func TestValidateSpec(t *testing.T) {
	s := Generate(LeadSlowdown, 1, 1)[0]
	if err := s.ValidateSpec(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := s
	bad.Dt = 0
	if err := bad.ValidateSpec(); err == nil {
		t.Error("zero dt accepted")
	}
	bad = s
	bad.MaxSteps = 0
	if err := bad.ValidateSpec(); err == nil {
		t.Error("zero max steps accepted")
	}
	bad = s
	bad.Typology = Typology(99)
	if err := bad.ValidateSpec(); err == nil {
		t.Error("unknown typology accepted")
	}
}
