package scenario

import (
	"encoding/json"
	"fmt"
	"os"
)

// scenarioFile is the JSON representation of one scenario instance. The
// paper publishes its 4810 scenarios as a reusable benchmark; SaveSuite /
// LoadSuite provide the same artefact for this reproduction.
type scenarioFile struct {
	Typology string             `json:"typology"`
	ID       int                `json:"id"`
	Hyper    map[string]float64 `json:"hyperparameters"`
	Dt       float64            `json:"dtSeconds"`
	MaxSteps int                `json:"maxSteps"`
	GoalX    float64            `json:"goalX"`
}

type suiteFile struct {
	Scenarios []scenarioFile `json:"scenarios"`
}

var typologyByName = func() map[string]Typology {
	out := make(map[string]Typology, len(Typologies)+1)
	for _, ty := range append(append([]Typology(nil), Typologies...), RoundaboutCutIn) {
		out[ty.String()] = ty
	}
	return out
}()

// SaveSuite writes scenario instances to path as JSON.
func SaveSuite(scns []Scenario, path string) error {
	f := suiteFile{Scenarios: make([]scenarioFile, len(scns))}
	for i, s := range scns {
		f.Scenarios[i] = scenarioFile{
			Typology: s.Typology.String(),
			ID:       s.ID,
			Hyper:    s.Hyper,
			Dt:       s.Dt,
			MaxSteps: s.MaxSteps,
			GoalX:    s.GoalX,
		}
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encode suite: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("scenario: write suite: %w", err)
	}
	return nil
}

// LoadSuite reads a suite saved by SaveSuite.
func LoadSuite(path string) ([]Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: read suite: %w", err)
	}
	var f suiteFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("scenario: decode suite: %w", err)
	}
	out := make([]Scenario, len(f.Scenarios))
	for i, sf := range f.Scenarios {
		ty, ok := typologyByName[sf.Typology]
		if !ok {
			return nil, fmt.Errorf("scenario: unknown typology %q in %s", sf.Typology, path)
		}
		out[i] = Scenario{
			Typology: ty,
			ID:       sf.ID,
			Hyper:    sf.Hyper,
			Dt:       sf.Dt,
			MaxSteps: sf.MaxSteps,
			GoalX:    sf.GoalX,
		}
		if err := out[i].ValidateSpec(); err != nil {
			return nil, fmt.Errorf("scenario: instance %d: %w", i, err)
		}
	}
	return out, nil
}

// ValidateSpec checks that a (possibly deserialised) scenario has the
// hyperparameters its typology requires and sane timing.
func (s Scenario) ValidateSpec() error {
	if s.Dt <= 0 {
		return fmt.Errorf("dt %v must be positive", s.Dt)
	}
	if s.MaxSteps < 1 {
		return fmt.Errorf("max steps %d must be positive", s.MaxSteps)
	}
	names := Hyperparameters(s.Typology)
	if names == nil {
		return fmt.Errorf("unknown typology %d", int(s.Typology))
	}
	for _, name := range names {
		if _, ok := s.Hyper[name]; !ok {
			return fmt.Errorf("missing hyperparameter %q for %v", name, s.Typology)
		}
	}
	return nil
}
