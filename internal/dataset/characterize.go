package dataset

import (
	"repro/internal/stats"
	"repro/internal/sti"
)

// Characterization aggregates the STI values observed across a corpus —
// the data behind Fig. 6.
type Characterization struct {
	// ActorSTI collects every per-actor STI sample.
	ActorSTI []float64
	// CombinedSTI collects the combined STI at every sampled step.
	CombinedSTI []float64
}

// Characterize evaluates STI over the corpus, sampling every stride-th step
// of each log and using the recorded ground-truth future trajectories.
func Characterize(logs []*Log, eval *sti.Evaluator, stride int) Characterization {
	if stride < 1 {
		stride = 1
	}
	var c Characterization
	for _, l := range logs {
		if l.Dt <= 0 {
			continue
		}
		// Skip the tail where the recorded future no longer covers the
		// reach-tube horizon.
		horizonSteps := int(eval.Config().Horizon / l.Dt)
		last := l.Steps() - horizonSteps - 1
		for t := 0; t < last; t += stride {
			actors := l.ActorsAt(t)
			trajs := l.FutureTrajectories(t)
			res := eval.Evaluate(l.Map, l.Ego[t], actors, trajs)
			c.ActorSTI = append(c.ActorSTI, res.PerActor...)
			c.CombinedSTI = append(c.CombinedSTI, res.Combined)
		}
	}
	return c
}

// PercentileRow reports the p50/p75/p90/p99 row of Fig. 6 for a sample set.
type PercentileRow struct {
	P50, P75, P90, P99 float64
}

// Row computes the Fig. 6 percentile row.
func Row(samples []float64) PercentileRow {
	ps := stats.Percentiles(samples, 50, 75, 90, 99)
	return PercentileRow{P50: ps[0], P75: ps[1], P90: ps[2], P99: ps[3]}
}

// ZeroFraction returns the fraction of samples that are exactly zero.
func ZeroFraction(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	zero := 0
	for _, v := range samples {
		if v == 0 {
			zero++
		}
	}
	return float64(zero) / float64(len(samples))
}
