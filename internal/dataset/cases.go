package dataset

import (
	"repro/internal/actor"
	"repro/internal/geom"
	"repro/internal/roadmap"
	"repro/internal/sti"
	"repro/internal/vehicle"
)

// CaseStudy is one of the four §V-D scenes mined from real-world data
// (Fig. 7), rebuilt synthetically: a map, an ego state, and the actor set
// with ground-truth short-horizon motion.
type CaseStudy struct {
	Name   string
	Map    roadmap.Map
	Ego    vehicle.State
	Actors []*actor.Actor
	// KeyActor indexes the actor the paper highlights.
	KeyActor int
}

// Evaluate runs the STI evaluator on the case with CVTR-predicted
// trajectories (the actors carry their recorded yaw rates).
func (c CaseStudy) Evaluate(eval *sti.Evaluator) sti.Result {
	return eval.EvaluateWithPrediction(c.Map, c.Ego, c.Actors)
}

// CaseStudies returns the four Fig. 7 scenes.
//
//	(a) pedestrian crossing — the crossing pedestrian dominates risk;
//	(b) oversized actor — an out-of-path vehicle intruding into the ego
//	    lane poses risk despite never crossing the ego's trajectory;
//	(c) cluttered street — an exiting actor carries no risk, an entering
//	    one does, and a badly parked vehicle blocks escape routes;
//	(d) actor pulling out — parked-to-moving actor plus adjacent-lane
//	    traffic constrain the escape routes jointly.
func CaseStudies() []CaseStudy {
	road := roadmap.MustStraightRoad(2, 3.5, -200, 1000)

	pedestrian := func() CaseStudy {
		// The pedestrian is part-way across the road directly ahead; over
		// the 3 s horizon it sweeps both lanes, forcing the ego to stop and
		// yield — it eliminates nearly every forward escape route.
		ped := actor.NewPedestrian(1, vehicle.State{
			Pos: geom.V(10, 1.5), Heading: 1.5708, Speed: 1.0,
		})
		// A vehicle in the adjacent lane has already stopped to yield,
		// closing the lane-1 detour around the pedestrian.
		yielding := actor.NewVehicle(2, vehicle.State{Pos: geom.V(16, 5.25)})
		return CaseStudy{
			Name:     "pedestrian crossing",
			Map:      road,
			Ego:      vehicle.State{Pos: geom.V(0, 1.75), Speed: 9},
			Actors:   []*actor.Actor{ped, yielding},
			KeyActor: 0,
		}
	}()

	oversized := func() CaseStudy {
		truck := actor.NewVehicle(1, vehicle.State{Pos: geom.V(16, 4.3), Speed: 7})
		truck.Length, truck.Width = 10, 3.2 // oversized, spilling into the ego lane
		return CaseStudy{
			Name:     "oversized actor",
			Map:      road,
			Ego:      vehicle.State{Pos: geom.V(0, 1.75), Speed: 9},
			Actors:   []*actor.Actor{truck},
			KeyActor: 0,
		}
	}()

	cluttered := func() CaseStudy {
		exiting := actor.NewVehicle(1, vehicle.State{
			Pos: geom.V(-18, 1.75), Heading: -0.25, Speed: 6, // leaving the road behind the ego
		})
		entering := actor.NewVehicle(2, vehicle.State{
			Pos: geom.V(22, 6.2), Heading: -0.3, Speed: 5, // merging into traffic ahead
		})
		parked := actor.NewVehicle(3, vehicle.State{Pos: geom.V(14, 3.1), Heading: 0.1})
		parked.Kind = actor.KindStatic
		return CaseStudy{
			Name: "cluttered street",
			Map:  road,
			Ego:  vehicle.State{Pos: geom.V(0, 1.75), Speed: 8},
			// The badly parked vehicle partially blocking the ego lane is
			// the scene's dominant threat (the orange box of Fig. 7(c));
			// the entering actor carries secondary risk, the exiting one
			// none.
			Actors:   []*actor.Actor{exiting, entering, parked},
			KeyActor: 2,
		}
	}()

	pullOut := func() CaseStudy {
		top1 := actor.NewVehicle(1, vehicle.State{Pos: geom.V(8, 5.25), Speed: 8})
		top2 := actor.NewVehicle(2, vehicle.State{Pos: geom.V(25, 5.25), Speed: 8})
		puller := actor.NewVehicle(3, vehicle.State{
			Pos: geom.V(18, 0.7), Heading: 0.35, Speed: 3, // pulling out of a kerb spot
		})
		return CaseStudy{
			Name:     "actor pulling out",
			Map:      road,
			Ego:      vehicle.State{Pos: geom.V(0, 1.75), Speed: 8},
			Actors:   []*actor.Actor{top1, top2, puller},
			KeyActor: 2,
		}
	}()

	return []CaseStudy{pedestrian, oversized, cluttered, pullOut}
}
