package dataset

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/reach"
	"repro/internal/sti"
	"repro/internal/vehicle"
)

func vehicleBox(s vehicle.State) geom.Box {
	return geom.NewBox(s.Pos, 4.7, 2.0, s.Heading)
}

func smallCorpus(t *testing.T) []*Log {
	t.Helper()
	cfg := DefaultCorpusConfig()
	cfg.Logs = 8
	cfg.Steps = 80
	logs, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return logs
}

func TestGenerateCorpusValidation(t *testing.T) {
	bad := []CorpusConfig{
		{Logs: 0, Steps: 10, Dt: 0.1},
		{Logs: 1, Steps: 1, Dt: 0.1},
		{Logs: 1, Steps: 10, Dt: 0},
	}
	for _, cfg := range bad {
		if _, err := GenerateCorpus(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	logs := smallCorpus(t)
	if len(logs) != 8 {
		t.Fatalf("logs = %d", len(logs))
	}
	for i, l := range logs {
		if l.Steps() != 80 {
			t.Errorf("log %d steps = %d", i, l.Steps())
		}
		if len(l.Actors) == 0 || len(l.Meta) != len(l.Actors) {
			t.Errorf("log %d actor bookkeeping broken", i)
		}
		for _, states := range l.Actors {
			if len(states) != l.Steps() {
				t.Errorf("log %d actor trace length mismatch", i)
			}
		}
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Logs, cfg.Steps = 3, 40
	a, _ := GenerateCorpus(cfg)
	b, _ := GenerateCorpus(cfg)
	for i := range a {
		if a[i].Ego[39] != b[i].Ego[39] {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestCorpusIsAccidentFree(t *testing.T) {
	// Real-world datasets are collected by compliant human drivers; the
	// generator must not produce ego collisions.
	logs := smallCorpus(t)
	for li, l := range logs {
		for t0 := 0; t0 < l.Steps(); t0++ {
			egoBox := vehicleBox(l.Ego[t0])
			for ai := range l.Actors {
				a := l.ActorsAt(t0)[ai]
				if egoBox.Intersects(a.Footprint()) {
					t.Fatalf("log %d: ego collides with actor %d at step %d", li, a.ID, t0)
				}
			}
		}
	}
}

func TestActorsAtYawRate(t *testing.T) {
	logs := smallCorpus(t)
	l := logs[0]
	a0 := l.ActorsAt(0)
	for _, a := range a0 {
		if a.YawRate != 0 {
			t.Error("yaw rate at step 0 should be 0 (no history)")
		}
	}
	// Later steps carry finite yaw estimates.
	aN := l.ActorsAt(10)
	if len(aN) != len(l.Actors) {
		t.Fatalf("ActorsAt size = %d", len(aN))
	}
}

func TestFutureTrajectories(t *testing.T) {
	logs := smallCorpus(t)
	l := logs[0]
	trajs := l.FutureTrajectories(20)
	if len(trajs) != len(l.Actors) {
		t.Fatalf("trajectories = %d", len(trajs))
	}
	if trajs[0].Len() != l.Steps()-20 {
		t.Errorf("future length = %d, want %d", trajs[0].Len(), l.Steps()-20)
	}
	if trajs[0].StateAt(0) != l.Actors[0][20] {
		t.Error("future trajectory must start at the query step")
	}
}

func TestCharacterizeLongTail(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Logs = 12
	cfg.Steps = 120
	logs, err := GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eval := sti.MustNewEvaluator(reach.DefaultConfig())
	c := Characterize(logs, eval, 10)
	if len(c.ActorSTI) == 0 || len(c.CombinedSTI) == 0 {
		t.Fatal("no samples")
	}
	actorRow := Row(c.ActorSTI)
	if actorRow.P50 != 0 || actorRow.P75 != 0 {
		t.Errorf("actor STI p50/p75 = %v/%v, want 0/0 (long tail)", actorRow.P50, actorRow.P75)
	}
	if zf := ZeroFraction(c.ActorSTI); zf < 0.7 {
		t.Errorf("actor STI zero fraction = %v, want >= 0.7", zf)
	}
	combinedRow := Row(c.CombinedSTI)
	if combinedRow.P99 > 1 || combinedRow.P50 < 0 {
		t.Errorf("combined row out of range: %+v", combinedRow)
	}
	// The combined risk must dominate the per-actor risk.
	if combinedRow.P90 < actorRow.P90 {
		t.Errorf("combined p90 %v < actor p90 %v", combinedRow.P90, actorRow.P90)
	}
}

func TestCharacterizeStrideFloor(t *testing.T) {
	logs := smallCorpus(t)[:1]
	eval := sti.MustNewEvaluator(reach.DefaultConfig())
	c := Characterize(logs, eval, 0) // floors to 1
	if len(c.CombinedSTI) == 0 {
		t.Fatal("stride floor broken")
	}
}

func TestRowAndZeroFraction(t *testing.T) {
	row := Row([]float64{0, 0, 0, 1})
	if row.P50 != 0 || row.P99 < 0.9 {
		t.Errorf("Row = %+v", row)
	}
	if got := ZeroFraction([]float64{0, 0, 1, 1}); got != 0.5 {
		t.Errorf("ZeroFraction = %v", got)
	}
	if got := ZeroFraction(nil); got != 0 {
		t.Errorf("ZeroFraction(nil) = %v", got)
	}
}

func TestCaseStudies(t *testing.T) {
	cases := CaseStudies()
	if len(cases) != 4 {
		t.Fatalf("cases = %d, want 4", len(cases))
	}
	eval := sti.MustNewEvaluator(reach.DefaultConfig())
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			res := c.Evaluate(eval)
			if len(res.PerActor) != len(c.Actors) {
				t.Fatalf("per-actor size = %d", len(res.PerActor))
			}
			key := res.PerActor[c.KeyActor]
			if key <= 0 {
				t.Errorf("key actor STI = %v, want > 0", key)
			}
			// The key actor is the most threatening in the scene.
			idx, _ := res.MostThreatening()
			if idx != c.KeyActor {
				t.Errorf("most threatening = %d (%v), want %d", idx, res.PerActor, c.KeyActor)
			}
			if res.Combined < key-1e-9 {
				t.Errorf("combined %v < key actor %v", res.Combined, key)
			}
		})
	}
}

func TestCaseStudyExitingActorZeroSTI(t *testing.T) {
	// Fig. 7(c): the actor exiting the road behind the ego has STI 0.
	cases := CaseStudies()
	eval := sti.MustNewEvaluator(reach.DefaultConfig())
	for _, c := range cases {
		if c.Name != "cluttered street" {
			continue
		}
		res := c.Evaluate(eval)
		if res.PerActor[0] != 0 {
			t.Errorf("exiting actor STI = %v, want 0", res.PerActor[0])
		}
		if res.PerActor[1] <= 0 {
			t.Errorf("entering actor STI = %v, want > 0", res.PerActor[1])
		}
		return
	}
	t.Fatal("cluttered street case missing")
}
